package parj

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"parj/internal/core"
	"parj/internal/testutil"
)

// chainStore builds a ring of <knows> edges, so the two-pattern chain query
// probes a bound key on every binding — the code path the probe fault hook
// intercepts.
func chainStore(n int) *Store {
	b := NewBuilder(LoadOptions{PosIndex: true})
	for i := 0; i < n; i++ {
		b.Add(fmt.Sprintf("<s%d>", i), "<knows>", fmt.Sprintf("<s%d>", (i+1)%n))
	}
	return b.Build()
}

const chainQuery = `SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <knows> ?z }`

var allStrategies = []struct {
	name string
	s    Strategy
}{
	{"AdaptiveBinary", AdaptiveBinary},
	{"BinaryOnly", BinaryOnly},
	{"IndexOnly", IndexOnly},
	{"AdaptiveIndex", AdaptiveIndex},
}

// TestWorkerPanicContained is the fault-containment acceptance criterion:
// a panic injected into the probe path of one worker surfaces as a
// *PanicError from Query on every strategy — the process never crashes and
// no goroutine leaks.
func TestWorkerPanicContained(t *testing.T) {
	db := chainStore(2000)
	defer testutil.LeakCheck(t)()

	for _, tc := range allStrategies {
		t.Run(tc.name, func(t *testing.T) {
			// Panic exactly once, partway through the probe stream, so the
			// other workers are mid-flight when the fault lands.
			var probes atomic.Int64
			restore := core.SetProbeFaultHook(func() {
				if probes.Add(1) == 100 {
					panic("injected probe fault")
				}
			})
			defer restore()

			res, err := db.Query(chainQuery, QueryOptions{Silent: true, Threads: 4, Strategy: tc.s})
			if err == nil {
				t.Fatalf("Query returned nil error (count %d), want contained panic", res.Count)
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *PanicError", err)
			}
			if pe.Value != "injected probe fault" {
				t.Errorf("panic value = %v, want the injected fault", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Errorf("panic stack not captured")
			}
		})
	}
}

// TestWorkerPanicContainedStream: the same containment on the streaming
// path — QueryStream returns the error and the collector pipeline drains.
func TestWorkerPanicContainedStream(t *testing.T) {
	db := chainStore(2000)
	defer testutil.LeakCheck(t)()

	for _, tc := range allStrategies {
		t.Run(tc.name, func(t *testing.T) {
			var probes atomic.Int64
			restore := core.SetProbeFaultHook(func() {
				if probes.Add(1) == 100 {
					panic("injected probe fault")
				}
			})
			defer restore()

			_, err := db.QueryStream(chainQuery, QueryOptions{Threads: 4, Strategy: tc.s},
				func(row []string) bool { return true })
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("stream err = %v, want *PanicError", err)
			}
		})
	}
}

// TestAllWorkersPanic: even when every worker panics at its very first
// probe, the query returns exactly one contained error.
func TestAllWorkersPanic(t *testing.T) {
	db := chainStore(2000)
	defer testutil.LeakCheck(t)()

	restore := core.SetProbeFaultHook(func() { panic("total fault") })
	defer restore()

	_, err := db.Query(chainQuery, QueryOptions{Silent: true, Threads: 4})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "total fault" {
		t.Errorf("panic value = %v", pe.Value)
	}
}

// TestPanicDoesNotPoisonStore: after a contained panic the same store keeps
// answering queries correctly — containment must not corrupt shared state.
func TestPanicDoesNotPoisonStore(t *testing.T) {
	db := chainStore(500)
	defer testutil.LeakCheck(t)()

	restore := core.SetProbeFaultHook(func() { panic("one-shot fault") })
	if _, err := db.Query(chainQuery, QueryOptions{Silent: true, Threads: 4}); err == nil {
		t.Fatal("faulted query unexpectedly succeeded")
	}
	restore()

	res, err := db.Query(chainQuery, QueryOptions{Silent: true, Threads: 4})
	if err != nil {
		t.Fatalf("query after contained panic failed: %v", err)
	}
	if res.Count != 500 {
		t.Fatalf("count after contained panic = %d, want 500", res.Count)
	}
}
