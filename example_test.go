package parj_test

import (
	"fmt"

	"parj"
)

// Example demonstrates the basic build-and-query cycle.
func Example() {
	b := parj.NewBuilder(parj.LoadOptions{})
	b.Add("<alice>", "<knows>", "<bob>")
	b.Add("<bob>", "<knows>", "<carol>")
	db := b.Build()

	res, err := db.Query(`SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <knows> ?z }`,
		parj.QueryOptions{})
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0], "->", row[1])
	}
	// Output: <alice> -> <carol>
}

// ExampleStore_Count shows the silent counting mode used for measurement.
func ExampleStore_Count() {
	b := parj.NewBuilder(parj.LoadOptions{})
	b.Add("<a>", "<p>", "<b>")
	b.Add("<a>", "<p>", "<c>")
	b.Add("<b>", "<p>", "<c>")
	db := b.Build()

	n, err := db.Count(`SELECT ?s ?o WHERE { ?s <p> ?o }`, parj.QueryOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output: 3
}

// ExampleStore_Explain prints the optimizer's plan for a query.
func ExampleStore_Explain() {
	b := parj.NewBuilder(parj.LoadOptions{})
	b.Add("<a>", "<p>", "<b>")
	db := b.Build()

	plan, err := db.Explain(`SELECT ?x WHERE { ?x <p> <b> }`)
	if err != nil {
		panic(err)
	}
	fmt.Print(plan)
	// Output:
	// plan cost=1.0 card=1.0
	//   0: ?x <p> <b>  [O-S]
}

// ExampleStore_QueryStream delivers rows incrementally with bounded memory.
func ExampleStore_QueryStream() {
	b := parj.NewBuilder(parj.LoadOptions{})
	b.Add("<a>", "<p>", "<x>")
	b.Add("<b>", "<p>", "<y>")
	db := b.Build()

	n, err := db.QueryStream(`SELECT ?s WHERE { ?s <p> ?o }`, parj.QueryOptions{Threads: 1},
		func(row []string) bool {
			fmt.Println(row[0])
			return true
		})
	if err != nil {
		panic(err)
	}
	fmt.Println("total:", n)
	// Output:
	// <a>
	// <b>
	// total: 2
}

// ExampleStore_Prepare reuses a plan across executions.
func ExampleStore_Prepare() {
	b := parj.NewBuilder(parj.LoadOptions{})
	b.Add("<a>", "<p>", "<b>")
	db := b.Build()

	prep, err := db.Prepare(`SELECT ?x WHERE { ?x <p> ?y }`, false)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 2; i++ {
		n, err := prep.Count(parj.QueryOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Println(n)
	}
	// Output:
	// 1
	// 1
}
