package parj

import (
	"fmt"
	"testing"

	"parj/internal/testutil"
	"parj/internal/wal"
)

// durable_crash_test.go — recovery interleaved with the write path's other
// moving parts: reconciliation (which rebuilds base tables in memory and is
// deliberately NOT durable on its own), pending un-reconciled deltas, and
// checkpoint pruning. Each scenario kills the simulated filesystem at the
// awkward moment and demands the reopened store equal the oracle exactly.

func crashTriple(i int) Triple {
	return Triple{
		S: fmt.Sprintf("<urn:crash:s%d>", i),
		P: fmt.Sprintf("<urn:crash:p%d>", i%3),
		O: fmt.Sprintf("<urn:crash:o%d>", i),
	}
}

func crashSeed(n int) []Triple {
	out := make([]Triple, n)
	for i := range out {
		out[i] = crashTriple(i)
	}
	return out
}

// durableTriples reconciles and decodes the store's full triple set.
func durableTriples(s *Store) map[Triple]bool {
	s.Reconcile()
	st := s.live.View().Base()
	out := make(map[Triple]bool, st.NumTriples())
	st.Triples(func(sub, p, o uint32) bool {
		out[Triple{
			S: st.Resources.Decode(sub),
			P: st.Predicates.Decode(p),
			O: st.Resources.Decode(o),
		}] = true
		return true
	})
	return out
}

func assertTripleSet(t *testing.T, s *Store, want map[Triple]bool) {
	t.Helper()
	got := durableTriples(s)
	if len(got) != len(want) {
		t.Fatalf("recovered %d triples, oracle has %d", len(got), len(want))
	}
	for tr := range want {
		if !got[tr] {
			t.Fatalf("recovered store missing oracle triple %v", tr)
		}
	}
}

func openCrash(t *testing.T, fs *wal.MemFS, seed []Triple, segBytes int64) *Store {
	t.Helper()
	s, err := Open(LoadOptions{DB: DBOptions{Durability: Durability{FS: fs, SegmentBytes: segBytes}}},
		func() ([]Triple, error) { return seed, nil })
	if err != nil {
		t.Fatalf("open durable store: %v", err)
	}
	return s
}

// TestDurableRecoverAfterReconcile kills the store right after a
// reconciliation. Reconcile merges the pending delta into fresh base tables
// purely in memory — nothing about it reaches disk — so recovery must
// rebuild the same state from the checkpoint plus WAL replay alone.
func TestDurableRecoverAfterReconcile(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := wal.NewMemFS()
	seed := crashSeed(8)
	oracle := make(map[Triple]bool)
	for _, tr := range seed {
		oracle[tr] = true
	}
	s := openCrash(t, fs, seed, 0)
	for i := 8; i < 20; i++ {
		tr := crashTriple(i)
		if _, err := s.Write([]Triple{tr}, nil); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		oracle[tr] = true
	}
	// Delete a slice of the seed, then reconcile: base tables are rebuilt
	// without the deleted rows and the delta is emptied.
	dels := []Triple{crashTriple(1), crashTriple(3), crashTriple(10)}
	if _, err := s.Write(nil, dels); err != nil {
		t.Fatalf("delete batch: %v", err)
	}
	for _, tr := range dels {
		delete(oracle, tr)
	}
	s.Reconcile()
	if s.PendingWrites() != 0 {
		t.Fatalf("pending writes after reconcile: %d", s.PendingWrites())
	}
	wantSeq := s.WriteSeq()

	fs.Crash()
	s.Close() // the close itself fails against a dead filesystem

	r := openCrash(t, fs.Recover(), seed, 0)
	defer r.Close()
	if got := r.WriteSeq(); got != wantSeq {
		t.Fatalf("recovered seq %d, want %d", got, wantSeq)
	}
	assertTripleSet(t, r, oracle)
}

// TestDurableRecoverPendingDelta crashes mid-burst — an fsync that never
// happens — with the delta never reconciled. Every acknowledged write must
// survive; the batch whose fsync died must be the only loss boundary.
func TestDurableRecoverPendingDelta(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := wal.NewMemFS()
	seed := crashSeed(5)
	oracle := make(map[Triple]bool)
	for _, tr := range seed {
		oracle[tr] = true
	}
	s := openCrash(t, fs, seed, 0)
	fs.FailAt(wal.OpSync, 4, wal.CrashBefore) // boot consumed some syncs; die a few batches in
	var acked uint64
	for i := 5; i < 40; i++ {
		tr := crashTriple(i)
		seq, err := s.Write([]Triple{tr}, nil)
		if err != nil {
			break // the crash point: this batch was never acknowledged
		}
		acked = seq
		oracle[tr] = true
	}
	if acked == 0 {
		t.Fatal("crash fired before any write was acknowledged")
	}
	if !fs.Crashed() {
		t.Fatal("fault never fired")
	}
	s.Close()

	r := openCrash(t, fs.Recover(), seed, 0)
	defer r.Close()
	if got := r.WriteSeq(); got < acked {
		t.Fatalf("recovered seq %d lost acknowledged writes (acked %d)", got, acked)
	}
	if r.PendingWrites() == 0 {
		t.Fatal("expected replayed writes to sit in the pending delta")
	}
	assertTripleSet(t, r, oracle)
}

// TestDurableCheckpointCrashBeforePrune publishes a checkpoint and dies
// before pruning the segments it obsoletes. Recovery must prefer the new
// checkpoint, tolerate the stale segments, and keep accepting writes.
func TestDurableCheckpointCrashBeforePrune(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := wal.NewMemFS()
	seed := crashSeed(4)
	oracle := make(map[Triple]bool)
	for _, tr := range seed {
		oracle[tr] = true
	}
	// Tiny segments force rotation, so the checkpoint has segments to prune.
	s := openCrash(t, fs, seed, 256)
	for i := 4; i < 24; i++ {
		tr := crashTriple(i)
		if _, err := s.Write([]Triple{tr}, nil); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		oracle[tr] = true
	}
	wantSeq := s.WriteSeq()
	before := s.DurabilityStats()
	if before.Segments < 2 {
		t.Fatalf("expected rotated segments before checkpoint, have %d", before.Segments)
	}
	fs.FailAt(wal.OpRemove, 1, wal.CrashBefore)
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint survived the injected prune crash")
	}
	if !fs.Crashed() {
		t.Fatal("fault never fired")
	}
	s.Close()

	r := openCrash(t, fs.Recover(), seed, 256)
	defer r.Close()
	if got := r.WriteSeq(); got != wantSeq {
		t.Fatalf("recovered seq %d, want %d", got, wantSeq)
	}
	if ck := r.DurabilityStats().CheckpointSeq; ck != wantSeq {
		t.Fatalf("recovery ignored the published checkpoint: covers %d, want %d", ck, wantSeq)
	}
	assertTripleSet(t, r, oracle)

	// The stream must continue: write past the crash, checkpoint cleanly
	// (pruning now succeeds), and verify one more recovery round-trip.
	tr := crashTriple(99)
	seq, err := r.Write([]Triple{tr}, nil)
	if err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
	if seq != wantSeq+1 {
		t.Fatalf("post-recovery write got seq %d, want %d", seq, wantSeq+1)
	}
	oracle[tr] = true
	if err := r.Checkpoint(); err != nil {
		t.Fatalf("post-recovery checkpoint: %v", err)
	}
	assertTripleSet(t, r, oracle)
}
