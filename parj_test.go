package parj

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func familyStore(t *testing.T, opts LoadOptions) *Store {
	t.Helper()
	b := NewBuilder(opts)
	b.Add("<alice>", "<knows>", "<bob>")
	b.Add("<bob>", "<knows>", "<carol>")
	b.Add("<carol>", "<knows>", "<dave>")
	b.Add("<alice>", "<age>", `"30"`)
	b.Add("<bob>", "<age>", `"25"`)
	return b.Build()
}

func TestBuilderAndQuery(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	if db.NumTriples() != 5 || db.NumPredicates() != 2 {
		t.Fatalf("triples=%d predicates=%d", db.NumTriples(), db.NumPredicates())
	}
	res, err := db.Query(`SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <knows> ?z }`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Vars, []string{"x", "z"}) {
		t.Errorf("Vars = %v", res.Vars)
	}
	want := map[string]bool{"<alice> <carol>": true, "<bob> <dave>": true}
	if int(res.Count) != len(want) || len(res.Rows) != len(want) {
		t.Fatalf("count=%d rows=%v", res.Count, res.Rows)
	}
	for _, row := range res.Rows {
		if !want[strings.Join(row, " ")] {
			t.Errorf("unexpected row %v", row)
		}
	}
}

func TestLiteralObjects(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	res, err := db.Query(`SELECT ?x WHERE { ?x <age> "30" }`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 || res.Rows[0][0] != "<alice>" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSilentCountAndCountHelper(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	res, err := db.Query(`SELECT ?x ?y WHERE { ?x <knows> ?y }`, QueryOptions{Silent: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 || res.Rows != nil {
		t.Errorf("silent: count=%d rows=%v", res.Count, res.Rows)
	}
	n, err := db.Count(`SELECT ?x ?y WHERE { ?x <knows> ?y }`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Count = %d, want 3", n)
	}
}

func TestIndexStrategies(t *testing.T) {
	db := familyStore(t, LoadOptions{PosIndex: true})
	for _, strat := range []Strategy{IndexOnly, AdaptiveIndex} {
		res, err := db.Query(`SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <knows> ?z }`,
			QueryOptions{Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.Count != 2 {
			t.Errorf("%v: count = %d, want 2", strat, res.Count)
		}
	}
	// Without the index, the strategies must fail loudly.
	plain := familyStore(t, LoadOptions{})
	if _, err := plain.Query(`SELECT ?x WHERE { ?x <knows> ?y . ?y <knows> ?z }`,
		QueryOptions{Strategy: IndexOnly}); err == nil {
		t.Error("IndexOnly without PosIndex succeeded")
	}
}

func TestLoadFromReaderAndFile(t *testing.T) {
	doc := `<http://a> <http://p> <http://b> .
<http://b> <http://p> <http://c> .
`
	db, err := Load(strings.NewReader(doc), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTriples() != 2 {
		t.Fatalf("NumTriples = %d", db.NumTriples())
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "data.nt")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := db2.Count(`SELECT ?x ?z WHERE { ?x <http://p> ?y . ?y <http://p> ?z }`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Count = %d, want 1", n)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not ntriples\n"), LoadOptions{}); err == nil {
		t.Error("malformed N-Triples accepted")
	}
	if _, err := LoadFile("/nonexistent/file.nt", LoadOptions{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestQueryErrors(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	if _, err := db.Query(`not sparql`, QueryOptions{}); err == nil {
		t.Error("malformed SPARQL accepted")
	}
	if _, err := db.Query(`SELECT ?p WHERE { ?s ?p ?o . ?p <knows> ?x }`, QueryOptions{}); err == nil {
		t.Error("namespace-mixing query accepted")
	}
}

func TestExplain(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	exp, err := db.Explain(`SELECT ?x WHERE { ?x <knows> <bob> }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp, "O-S") {
		t.Errorf("Explain = %q, want O-S replica choice", exp)
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	db := familyStore(t, LoadOptions{PosIndex: true})
	if db.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
	if db.NumResources() == 0 {
		t.Error("NumResources zero")
	}
}

func TestUnknownConstantGivesEmptyResult(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	res, err := db.Query(`SELECT ?x WHERE { ?x <knows> <nobody> }`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 || len(res.Rows) != 0 {
		t.Errorf("expected empty result, got %v", res.Rows)
	}
	if !reflect.DeepEqual(res.Vars, []string{"x"}) {
		t.Errorf("empty result lost header: %v", res.Vars)
	}
}

func TestQueryStream(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	var rows [][]string
	n, err := db.QueryStream(`SELECT ?x ?y WHERE { ?x <knows> ?y }`, QueryOptions{},
		func(row []string) bool {
			rows = append(rows, row)
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(rows) != 3 {
		t.Fatalf("streamed %d rows (callback %d), want 3", n, len(rows))
	}
	for _, r := range rows {
		if len(r) != 2 || r[0] == "" {
			t.Errorf("bad row %v", r)
		}
	}
	// Early cancel.
	count := 0
	if _, err := db.QueryStream(`SELECT ?x ?y WHERE { ?x <knows> ?y }`, QueryOptions{},
		func([]string) bool { count++; return false }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("cancelled stream ran callback %d times, want 1", count)
	}
	// DISTINCT rejected.
	if _, err := db.QueryStream(`SELECT DISTINCT ?x WHERE { ?x <knows> ?y }`, QueryOptions{},
		func([]string) bool { return true }); err == nil {
		t.Error("DISTINCT stream accepted")
	}
}

func TestPreparedQuery(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	p, err := db.Prepare(`SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <knows> ?z }`, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := p.Query(QueryOptions{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 2 {
			t.Fatalf("run %d: count = %d, want 2", i, res.Count)
		}
	}
	n, err := p.Count(QueryOptions{})
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v", n, err)
	}
	if p.Explain() == "" {
		t.Error("empty Explain")
	}
	if _, err := db.Prepare(`broken`, false); err == nil {
		t.Error("broken query prepared")
	}
}

func TestPredicateInfos(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	infos := db.PredicateInfos()
	if len(infos) != 2 {
		t.Fatalf("infos = %d, want 2", len(infos))
	}
	byIRI := map[string]PredicateInfo{}
	for _, pi := range infos {
		byIRI[pi.IRI] = pi
	}
	k := byIRI["<knows>"]
	if k.Triples != 3 || k.DistinctSubjects != 3 || k.DistinctObjects != 3 {
		t.Errorf("knows info = %+v", k)
	}
}

func TestOrderByAndOffset(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	res, err := db.Query(`SELECT ?x ?y WHERE { ?x <knows> ?y } ORDER BY ?x`, QueryOptions{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"<alice>", "<bob>"}, {"<bob>", "<carol>"}, {"<carol>", "<dave>"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("ORDER BY ?x: %v", res.Rows)
	}
	res, err = db.Query(`SELECT ?x ?y WHERE { ?x <knows> ?y } ORDER BY DESC(?x)`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "<carol>" || res.Rows[2][0] != "<alice>" {
		t.Fatalf("DESC order: %v", res.Rows)
	}
	// OFFSET skips after ordering; LIMIT caps after the offset.
	res, err = db.Query(`SELECT ?x ?y WHERE { ?x <knows> ?y } ORDER BY ?x LIMIT 1 OFFSET 1`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 || res.Rows[0][0] != "<bob>" {
		t.Fatalf("LIMIT 1 OFFSET 1: count=%d rows=%v", res.Count, res.Rows)
	}
	// Offset beyond the result set.
	n, err := db.Count(`SELECT ?x ?y WHERE { ?x <knows> ?y } OFFSET 10`, QueryOptions{})
	if err != nil || n != 0 {
		t.Fatalf("big offset: n=%d err=%v", n, err)
	}
	// ORDER BY must reference a projected variable.
	if _, err := db.Query(`SELECT ?x WHERE { ?x <knows> ?y } ORDER BY ?y`, QueryOptions{}); err == nil {
		t.Error("ORDER BY on unprojected variable accepted")
	}
}
