// Benchmarks regenerating each table and figure of the paper at small
// scale. One sub-benchmark per engine/configuration; each iteration runs
// the experiment's full query workload in silent mode. For paper-style
// formatted tables at larger scales use cmd/parj-bench.
package parj_test

import (
	"fmt"
	"sync"
	"testing"

	"parj/internal/bench"
	"parj/internal/cachesim"
	"parj/internal/core"
	"parj/internal/lubm"
	"parj/internal/optimizer"
	"parj/internal/sparql"
	"parj/internal/store"
	"parj/internal/watdiv"
)

const (
	benchLUBMScale   = 8
	benchWatDivScale = 2
)

var (
	lubmOnce sync.Once
	lubmData *bench.Dataset

	watdivOnce sync.Once
	watdivData *bench.Dataset
)

func lubmDataset() *bench.Dataset {
	lubmOnce.Do(func() {
		lubmData = bench.NewDataset(lubm.Triples(benchLUBMScale, lubm.Config{}), 0)
	})
	return lubmData
}

func watdivDataset() *bench.Dataset {
	watdivOnce.Do(func() {
		watdivData = bench.NewDataset(watdiv.Triples(benchWatDivScale, watdiv.Config{}), 0)
	})
	return watdivData
}

func parseAll(b *testing.B, qs []bench.NamedQuery) []*sparql.Query {
	b.Helper()
	out := make([]*sparql.Query, len(qs))
	for i, nq := range qs {
		q, err := sparql.Parse(nq.SPARQL)
		if err != nil {
			b.Fatalf("%s: %v", nq.Name, err)
		}
		out[i] = q
	}
	return out
}

func lubmNamed() []bench.NamedQuery {
	var out []bench.NamedQuery
	for _, q := range lubm.Queries() {
		out = append(out, bench.NamedQuery{Name: q.Name, Group: "LUBM", SPARQL: q.SPARQL})
	}
	return out
}

func watdivNamed(qs []watdiv.Query) []bench.NamedQuery {
	var out []bench.NamedQuery
	for _, q := range qs {
		out = append(out, bench.NamedQuery{Name: q.Name, Group: q.Group, SPARQL: q.SPARQL})
	}
	return out
}

// runWorkload executes every query once on the engine.
func runWorkload(b *testing.B, e bench.Engine, queries []*sparql.Query) {
	b.Helper()
	for _, q := range queries {
		if _, err := e.Count(q); err != nil {
			b.Fatal(err)
		}
	}
}

// runWorkloadTimed additionally sums the engine-reported elapsed time,
// which for multi-thread PARJ on an under-provisioned host is the
// simulated parallel time (max over shards) rather than serial wall clock.
func runWorkloadTimed(b *testing.B, e bench.Engine, queries []*sparql.Query) float64 {
	b.Helper()
	te, ok := e.(bench.TimedEngine)
	if !ok {
		runWorkload(b, e, queries)
		return 0
	}
	total := 0.0
	for _, q := range queries {
		_, elapsed, err := te.CountTimed(q)
		if err != nil {
			b.Fatal(err)
		}
		total += float64(elapsed.Microseconds()) / 1000
	}
	return total
}

// benchEngines runs the engine matrix over a query workload, one
// sub-benchmark per engine.
func benchEngines(b *testing.B, engines []bench.Engine, queries []*sparql.Query) {
	for _, e := range engines {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			runWorkload(b, e, queries) // warmup + lazily build the engine
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runWorkload(b, e, queries)
			}
		})
	}
}

// BenchmarkTable2 is the LUBM engine comparison (paper Table 2).
func BenchmarkTable2(b *testing.B) {
	d := lubmDataset()
	queries := parseAll(b, lubmNamed())
	benchEngines(b, []bench.Engine{
		d.PARJ("PARJ-1", 1, core.AdaptiveIndex),
		d.HashJoin(),
		d.RDF3X(),
		d.PARJ("PARJ-N", 0, core.AdaptiveIndex),
		d.TriAD(0),
		d.TriAD(256),
	}, queries)
}

// BenchmarkTable3 is the WatDiv basic workload comparison (paper Table 3).
func BenchmarkTable3(b *testing.B) {
	d := watdivDataset()
	queries := parseAll(b, watdivNamed(watdiv.BasicQueries()))
	benchEngines(b, []bench.Engine{
		d.PARJ("PARJ-1", 1, core.AdaptiveIndex),
		d.HashJoin(),
		d.RDF3X(),
		d.PARJ("PARJ-N", 0, core.AdaptiveIndex),
		d.TriAD(0),
		d.TriAD(256),
	}, queries)
}

// BenchmarkTable4 is the WatDiv IL/ML workload comparison (paper Table 4).
// The unbounded IL-3 family explodes with scale, so this stays small.
func BenchmarkTable4(b *testing.B) {
	d := watdivDataset()
	qs := append(watdivNamed(watdiv.ILQueries()), watdivNamed(watdiv.MLQueries())...)
	queries := parseAll(b, qs)
	benchEngines(b, []bench.Engine{
		d.PARJ("PARJ-1", 1, core.AdaptiveIndex),
		d.HashJoin(),
		d.RDF3X(),
		d.PARJ("PARJ-N", 0, core.AdaptiveIndex),
		d.TriAD(0),
		d.TriAD(256),
	}, queries)
}

// BenchmarkTable5 is the probe-strategy ablation (paper Table 5): the LUBM
// workload single-threaded under each strategy.
func BenchmarkTable5(b *testing.B) {
	d := lubmDataset()
	queries := parseAll(b, lubmNamed())
	benchEngines(b, []bench.Engine{
		d.PARJ("Binary", 1, core.BinaryOnly),
		d.PARJ("AdBinary", 1, core.AdaptiveBinary),
		d.PARJ("Index", 1, core.IndexOnly),
		d.PARJ("AdIndex", 1, core.AdaptiveIndex),
	}, queries)
}

// BenchmarkTable6 replays the LUBM workload through the cache-hierarchy
// simulator, once per probe backend (paper Table 6's instrumented runs).
func BenchmarkTable6(b *testing.B) {
	d := lubmDataset()
	st, ss := d.Store()
	var plans []*optimizer.Plan
	for _, nq := range lubmNamed() {
		q, err := sparql.Parse(nq.SPARQL)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := optimizer.Optimize(q, st, ss)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, plan)
	}
	for _, strat := range []core.Strategy{core.AdaptiveBinary, core.AdaptiveIndex} {
		strat := strat
		b.Run("traced-"+strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := cachesim.New(cachesim.DefaultConfig())
				for _, plan := range plans {
					if _, err := core.Execute(st, plan, core.Options{
						Threads: 1, Silent: true, Strategy: strat, MemTracer: h,
					}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(h.Cycles()), "simcycles")
				b.ReportMetric(float64(h.Misses(2)), "L3miss")
			}
		})
	}
}

// BenchmarkFig2 is the thread-scalability sweep (paper Figure 2).
func BenchmarkFig2(b *testing.B) {
	d := lubmDataset()
	var qs []bench.NamedQuery
	for _, q := range lubm.Queries() {
		if q.Name == "L4" || q.Name == "L5" || q.Name == "L6" {
			continue
		}
		qs = append(qs, bench.NamedQuery{Name: q.Name, Group: "LUBM", SPARQL: q.SPARQL})
	}
	queries := parseAll(b, qs)
	for _, threads := range []int{1, 2, 4, 8, 16} {
		threads := threads
		e := d.PARJ(fmt.Sprintf("threads-%d", threads), threads, core.AdaptiveIndex)
		b.Run(e.Name(), func(b *testing.B) {
			runWorkload(b, e, queries)
			b.ResetTimer()
			var simMS float64
			for i := 0; i < b.N; i++ {
				simMS = runWorkloadTimed(b, e, queries)
			}
			if simMS > 0 {
				// Simulated parallel elapsed per workload pass; on hosts
				// with >= threads cores this equals real wall clock.
				b.ReportMetric(simMS, "parallel-ms/op")
			}
		})
	}
}

// BenchmarkFig3 is the dataset-size sweep (paper Figure 3).
func BenchmarkFig3(b *testing.B) {
	var qs []bench.NamedQuery
	for _, q := range lubm.Queries() {
		if q.Name == "L4" || q.Name == "L5" || q.Name == "L6" {
			continue
		}
		qs = append(qs, bench.NamedQuery{Name: q.Name, Group: "LUBM", SPARQL: q.SPARQL})
	}
	queries := parseAll(b, qs)
	for _, scale := range []int{1, 2, 4, 8} {
		scale := scale
		b.Run(fmt.Sprintf("scale-%d", scale), func(b *testing.B) {
			d := bench.NewDataset(lubm.Triples(scale, lubm.Config{}), 16)
			e := d.PARJ("PARJ-N", 16, core.AdaptiveIndex)
			runWorkload(b, e, queries)
			b.ResetTimer()
			var simMS float64
			for i := 0; i < b.N; i++ {
				simMS = runWorkloadTimed(b, e, queries)
			}
			if simMS > 0 {
				b.ReportMetric(simMS, "parallel-ms/op")
			}
		})
	}
}

// BenchmarkLoad measures store construction throughput.
func BenchmarkLoad(b *testing.B) {
	triples := lubm.Triples(2, lubm.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.LoadTriples(triples, store.BuildOptions{BuildPosIndex: true})
	}
	b.SetBytes(int64(len(triples)))
}

// BenchmarkOptimizer measures planning latency on a 9-pattern star (the
// paper notes WatDiv S1's optimization time dominates its execution).
func BenchmarkOptimizer(b *testing.B) {
	d := watdivDataset()
	st, ss := d.Store()
	var s1 string
	for _, q := range watdiv.BasicQueries() {
		if q.Name == "S1" {
			s1 = q.SPARQL
		}
	}
	q, err := sparql.Parse(s1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.Optimize(q, st, ss); err != nil {
			b.Fatal(err)
		}
	}
}
