package parj

import (
	"errors"
	"fmt"
	"io"
	"time"

	"parj/internal/live"
	"parj/internal/store"
	"parj/internal/wal"
)

// durable.go — the public durability surface. A Store opened through Open
// journals every write batch to a write-ahead log before acknowledging it
// and recovers its state on the next Open from the newest checkpoint plus
// the log suffix. See docs/DURABILITY.md for the format and the recovery
// protocol; internal/wal holds the implementation.

// SyncPolicy selects when the write-ahead log fsyncs; see the constants.
type SyncPolicy = wal.SyncPolicy

const (
	// SyncAlways (the default) acknowledges a write only after an fsync
	// covers it. Concurrent writers coalesce into one group commit, so
	// the cost is shared across a burst.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs on a timer (Durability.SyncInterval); a crash
	// loses at most the last interval of acknowledged writes.
	SyncInterval = wal.SyncInterval
	// SyncNever leaves fsync to the OS; a crash loses whatever the page
	// cache held. Bulk loads only.
	SyncNever = wal.SyncNever
)

// ParseSyncPolicy parses "always", "interval" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// ErrCorruptWAL reports that the write-ahead log failed its integrity
// checks in a way recovery cannot repair: damage strictly before the tail
// (the tail alone can legitimately be torn by a crash and is truncated
// instead). Dispatch with errors.Is.
var ErrCorruptWAL = wal.ErrCorruptWAL

// Durability configures the write-ahead log of a store opened with Open.
// The zero value disables durability.
type Durability struct {
	// Dir is the log directory; it is created if missing. Required
	// unless FS is set.
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncInterval (default 50ms).
	SyncInterval time.Duration
	// SegmentBytes caps a log segment before rotation (default 4 MiB).
	// Checkpoints prune whole segments, so smaller segments reclaim
	// space sooner at the cost of more files.
	SegmentBytes int64
	// PerOpSync forces one fsync per write batch instead of group
	// commit. Benchmarks use it as the baseline; production should not.
	PerOpSync bool
	// FS overrides the filesystem (crash-injection tests). When set,
	// Dir is ignored.
	FS wal.FS
}

// Enabled reports whether this configuration turns durability on.
func (d Durability) Enabled() bool { return d.Dir != "" || d.FS != nil }

func (d Durability) walOptions() wal.Options {
	return wal.Options{
		Dir:          d.Dir,
		FS:           d.FS,
		Sync:         d.Sync,
		Interval:     d.SyncInterval,
		SegmentBytes: d.SegmentBytes,
		PerOpSync:    d.PerOpSync,
	}
}

// DurabilityStats describes a store's durable position; the zero value
// means "volatile store".
type DurabilityStats = live.DurabilityStats

// Open opens (or creates) a durable store in opts.DB.Durability.Dir:
// it recovers the newest loadable checkpoint, replays the write-ahead
// log suffix past it, and journals every subsequent write batch.
//
// seed supplies the initial triples when the directory holds no prior
// state — the first boot; nil starts empty. The seed is checkpointed
// before Open returns, so it survives any later crash.
//
// The returned store must be released with Close; writes issued through
// Write (or Insert/Delete) after Close fail with the log's closed error.
func Open(opts LoadOptions, seed func() ([]Triple, error)) (*Store, error) {
	d := opts.DB.Durability
	if !d.Enabled() {
		return nil, errors.New("parj: Open requires DBOptions.Durability (use NewBuilder/Load for a volatile store)")
	}
	log, err := wal.Open(d.walOptions())
	if err != nil {
		return nil, fmt.Errorf("parj: open wal: %w", err)
	}
	bo := opts.buildOptions()
	var seedFn func() (*store.Store, uint64, error)
	if seed != nil {
		seedFn = func() (*store.Store, uint64, error) {
			ts, err := seed()
			if err != nil {
				return nil, 0, err
			}
			return store.LoadTriples(toRDF(ts), bo), 0, nil
		}
	}
	h, err := live.OpenDurable(log, seedFn, bo)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("parj: recover: %w", err)
	}
	s := &Store{live: h, wal: log}
	s.applyDB(opts.DB)
	return s, nil
}

// Write applies one batch — deletes first, then inserts — and, on a
// durable store, returns only once the sync policy has acknowledged it.
// Insert and Delete are equivalent but drop the error; durable callers
// should use Write. A returned error after a non-zero sequence means the
// batch is visible to queries but its durability is unknown — the store
// should be closed and recovered.
func (s *Store) Write(inserts, deletes []Triple) (uint64, error) {
	return s.live.Apply(0, toRDF(inserts), toRDF(deletes))
}

// Checkpoint publishes the current view as a snapshot checkpoint paired
// with its write sequence and prunes log segments it covers. Queries and
// writes keep running throughout. No-op on a volatile store.
func (s *Store) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	return live.Checkpoint(s.live, s.wal)
}

// DurabilityStats reports the store's durable position (zero value for a
// volatile store).
func (s *Store) DurabilityStats() DurabilityStats { return s.live.Durability() }

// Close quiesces background work and closes the write-ahead log, flushing
// any unsynced suffix. Volatile stores need not call it (it is then a
// no-op), but durable stores must: writes acknowledged under SyncInterval
// or SyncNever become durable at the latest here.
func (s *Store) Close() error {
	s.live.Quiesce()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	if err != nil && errors.Is(err, wal.ErrClosed) {
		return nil
	}
	return err
}

// SaveCheckpointTo is a convenience for tooling: it streams the newest
// checkpoint the log holds, without opening the store. Returns the
// checkpoint's sequence.
func SaveCheckpointTo(d Durability, w io.Writer) (uint64, error) {
	log, err := wal.Open(d.walOptions())
	if err != nil {
		return 0, err
	}
	defer log.Close()
	cks := log.Checkpoints()
	if len(cks) == 0 {
		return 0, errors.New("parj: no checkpoint")
	}
	rc, err := log.OpenCheckpoint(cks[0])
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	if _, err := io.Copy(w, rc); err != nil {
		return 0, err
	}
	return cks[0], nil
}
