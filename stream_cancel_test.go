package parj

import (
	"fmt"
	"testing"

	"parj/internal/testutil"
)

// TestQueryStreamEarlyTermination cancels a multi-worker stream from the
// sink callback mid-stream and checks that (a) delivery stops promptly,
// (b) the reported count matches the rows actually delivered, and (c) no
// worker goroutines are left behind — ExecuteStream must drain its
// pipeline even when the consumer walks away.
func TestQueryStreamEarlyTermination(t *testing.T) {
	b := NewBuilder(LoadOptions{})
	for i := 0; i < 2000; i++ {
		b.Add(fmt.Sprintf("<s%d>", i), "<p>", fmt.Sprintf("<o%d>", i%50))
	}
	db := b.Build()

	checkLeak := testutil.LeakCheck(t)

	for round := 0; round < 5; round++ {
		delivered := 0
		n, err := db.QueryStream(`SELECT ?s ?o WHERE { ?s <p> ?o }`,
			QueryOptions{Threads: 4},
			func(row []string) bool {
				delivered++
				return delivered < 10 // cancel mid-stream
			})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// The row on which the callback cancels is delivered but, per the
		// ExecuteStream contract, not counted.
		if int(n) != delivered-1 {
			t.Errorf("round %d: count %d, want %d (rows before the cancel)", round, n, delivered-1)
		}
		if delivered < 10 {
			t.Errorf("round %d: stream ended after %d rows, before the callback cancelled", round, delivered)
		}
		// A cancel must not deliver unboundedly past the false return; the
		// sink runs on one goroutine, so not even one extra row may arrive.
		if delivered > 10 {
			t.Errorf("round %d: %d rows delivered after cancellation", round, delivered-10)
		}
	}

	// Workers park on channel sends when the consumer stops; the leak
	// checker gives the runtime a moment to unwind them.
	checkLeak()
}
