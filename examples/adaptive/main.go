// Adaptive: a close-up of the paper's core mechanism. Builds a dataset
// where probe keys arrive almost sorted (so sequential search should win)
// and one where they arrive scattered (so binary search should win), then
// shows what the adaptive method chooses in each case and how calibration
// (Algorithm 2) derives the switching threshold.
//
// Usage: go run ./examples/adaptive
package main

import (
	"fmt"
	"math/rand"
	"time"

	"parj"
	"parj/internal/search"
)

func main() {
	fmt.Println("== calibration (Algorithm 2)")
	// Calibrate the sequential-vs-binary window on a large sorted array.
	arr := make([]uint32, 1<<21)
	v := uint32(0)
	rng := rand.New(rand.NewSource(1))
	for i := range arr {
		v += uint32(1 + rng.Intn(6))
		arr[i] = v
	}
	window := search.Calibrate(arr, func(a []uint32, val uint32, cur *int) (int, bool) {
		return search.Binary(a, val, cur)
	}, search.CalibrateOptions{})
	fmt.Printf("calibrated window vs binary search: %d positions (paper reports ~200 on its Xeon)\n",
		window)
	fmt.Printf("value threshold for this array: %d\n\n", search.ValueThreshold(arr, window))

	// A graph whose second join probes arrive nearly sorted: subject-
	// subject joins preserve the outer scan order (paper Example 4.1).
	sorted := parj.NewBuilder(parj.LoadOptions{PosIndex: true})
	for i := 0; i < 200000; i++ {
		s := fmt.Sprintf("<e%08d>", i)
		sorted.Add(s, "<p1>", fmt.Sprintf("<v%08d>", i))
		sorted.Add(s, "<p2>", fmt.Sprintf("<w%08d>", i))
	}
	sortedDB := sorted.Build()

	// A graph whose second join probes are scattered: the object of p1
	// points to random entities, so probing p2 jumps around.
	scattered := parj.NewBuilder(parj.LoadOptions{PosIndex: true})
	rng = rand.New(rand.NewSource(2))
	for i := 0; i < 200000; i++ {
		scattered.Add(fmt.Sprintf("<e%08d>", i), "<p1>", fmt.Sprintf("<e%08d>", rng.Intn(200000)))
		scattered.Add(fmt.Sprintf("<e%08d>", i), "<p2>", fmt.Sprintf("<w%08d>", i))
	}
	scatteredDB := scattered.Build()

	run := func(db *parj.Store, src, label string) {
		for _, s := range []struct {
			name string
			s    parj.Strategy
		}{
			{"Binary  ", parj.BinaryOnly},
			{"AdBinary", parj.AdaptiveBinary},
			{"Index   ", parj.IndexOnly},
			{"AdIndex ", parj.AdaptiveIndex},
		} {
			opts := parj.QueryOptions{Threads: 1, Silent: true, Strategy: s.s}
			if _, err := db.Query(src, opts); err != nil { // warmup
				panic(err)
			}
			start := time.Now()
			res, err := db.Query(src, opts)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %s %10v  seq=%-8d binary=%-8d index=%-8d\n",
				s.name, time.Since(start).Round(time.Microsecond),
				res.ProbeStats.Sequential, res.ProbeStats.Binary, res.ProbeStats.Index)
		}
		fmt.Println()
	}

	fmt.Println("== sorted probe stream (subject-subject join): adaptive picks sequential")
	run(sortedDB, `SELECT ?x ?a ?b WHERE { ?x <p1> ?a . ?x <p2> ?b }`, "sorted")

	fmt.Println("== scattered probe stream (object->subject join): adaptive picks point lookups")
	run(scatteredDB, `SELECT ?x ?y ?b WHERE { ?x <p1> ?y . ?y <p2> ?b }`, "scattered")

	fmt.Println("Both graphs give the same answers under every strategy; the adaptive")
	fmt.Println("method just chooses the cheaper probe each time (paper Table 5).")
}
