// Entailment: the paper's §6 future-work extension in action — query
// answering with respect to RDFS class and property hierarchies by
// unioning tables inside the join pipeline, with no materialization.
//
// Usage: go run ./examples/entailment
package main

import (
	"fmt"
	"log"

	"parj"
)

const (
	subClassOf    = "<http://www.w3.org/2000/01/rdf-schema#subClassOf>"
	subPropertyOf = "<http://www.w3.org/2000/01/rdf-schema#subPropertyOf>"
	rdfType       = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
)

func main() {
	b := parj.NewBuilder(parj.LoadOptions{PosIndex: true})

	// A small university ontology ...
	b.Add("<UndergradStudent>", subClassOf, "<Student>")
	b.Add("<GradStudent>", subClassOf, "<Student>")
	b.Add("<Student>", subClassOf, "<Person>")
	b.Add("<Professor>", subClassOf, "<Person>")
	b.Add("<advisorOf>", subPropertyOf, "<mentors>")
	b.Add("<tutorOf>", subPropertyOf, "<mentors>")

	// ... and instance data using only the most specific terms.
	b.Add("<ann>", rdfType, "<UndergradStudent>")
	b.Add("<ben>", rdfType, "<GradStudent>")
	b.Add("<cat>", rdfType, "<Professor>")
	b.Add("<cat>", "<advisorOf>", "<ben>")
	b.Add("<ben>", "<tutorOf>", "<ann>")
	db := b.Build()

	// The SPARQL keyword "a" parses to the full rdf:type IRI, so queries
	// can use it directly.
	queries := []string{
		`SELECT ?x WHERE { ?x a <Person> }`,
		`SELECT ?x WHERE { ?x a <Student> }`,
		`SELECT ?m ?s WHERE { ?m <mentors> ?s }`,
		`SELECT ?m ?s WHERE { ?m <mentors> ?s . ?s a <Student> }`,
	}
	for _, q := range queries {
		plain, err := db.Query(q, parj.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		entailed, err := db.Query(q, parj.QueryOptions{Entailment: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  plain:    %d rows %v\n  entailed: %d rows %v\n\n",
			q, plain.Count, plain.Rows, entailed.Count, entailed.Rows)
	}
	fmt.Println("No implied triples were materialized: the engine unions the")
	fmt.Println("subclass/subproperty tables during the pipelined join (paper §6).")
}
