// University: generate a LUBM-like dataset, load it, and run the paper's
// ten-query workload at one thread and at all cores, printing the speedup —
// a miniature of the paper's Table 2 / Figure 2 experiment.
//
// Usage: go run ./examples/university [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"parj"
	"parj/internal/lubm"
	"parj/internal/rdf"
)

func main() {
	scale := flag.Int("scale", 16, "number of universities")
	flag.Parse()

	start := time.Now()
	b := parj.NewBuilder(parj.LoadOptions{PosIndex: true})
	n := 0
	lubm.Generate(*scale, lubm.Config{}, func(t rdf.Triple) {
		b.Add(t.S, t.P, t.O)
		n++
	})
	db := b.Build()
	fmt.Printf("generated and loaded %d triples (scale %d) in %v; tables use %.1f MB\n",
		db.NumTriples(), *scale, time.Since(start).Round(time.Millisecond),
		float64(db.MemoryBytes())/(1<<20))

	threads := runtime.GOMAXPROCS(0)
	fmt.Printf("%-6s %12s %12s %10s %8s\n", "query", "1 thread", fmt.Sprintf("%d threads", threads), "speedup", "rows")
	for _, q := range lubm.Queries() {
		t1 := timeQuery(db, q.SPARQL, 1)
		tN := timeQuery(db, q.SPARQL, threads)
		rows, err := db.Count(q.SPARQL, parj.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %12v %12v %9.1fx %8d\n", q.Name, t1.Round(time.Microsecond),
			tN.Round(time.Microsecond), float64(t1)/float64(tN), rows)
	}
	fmt.Println("\nComplex queries (L1-L3, L7-L10) should scale nearly linearly;")
	fmt.Println("the selective L4-L6 finish in microseconds and cannot improve.")
}

func timeQuery(db *parj.Store, src string, threads int) time.Duration {
	opts := parj.QueryOptions{Threads: threads, Silent: true, Strategy: parj.AdaptiveIndex}
	// Warmup once, then report the best of three (steadier than the mean
	// for a demo).
	if _, err := db.Query(src, opts); err != nil {
		log.Fatal(err)
	}
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := db.Query(src, opts); err != nil {
			log.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
