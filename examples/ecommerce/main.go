// Ecommerce: generate a WatDiv-like dataset and walk through the query
// shapes of the paper's Table 3/4 workloads — linear, star, snowflake,
// complex, and long path queries — showing plans and result sizes.
//
// Usage: go run ./examples/ecommerce [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"parj"
	"parj/internal/rdf"
	"parj/internal/watdiv"
)

func main() {
	scale := flag.Int("scale", 4, "WatDiv scale units")
	flag.Parse()

	b := parj.NewBuilder(parj.LoadOptions{PosIndex: true})
	watdiv.Generate(*scale, watdiv.Config{}, func(t rdf.Triple) { b.Add(t.S, t.P, t.O) })
	db := b.Build()
	fmt.Printf("loaded %d triples, %d predicates\n\n", db.NumTriples(), db.NumPredicates())

	// One representative per shape class.
	picks := map[string]string{
		"L2":     "linear path anchored at a user",
		"S1":     "nine-pattern star (every attribute of a user)",
		"F1":     "snowflake: user star joined to a product star",
		"C3":     "complex: friends liking same-genre products",
		"IL-3-5": "unbounded 5-hop path (results explode)",
		"ML-1-7": "7-hop path anchored at the far end",
	}
	for _, q := range watdiv.AllQueries() {
		desc, ok := picks[q.Name]
		if !ok {
			continue
		}
		fmt.Printf("== %s: %s\n", q.Name, desc)
		plan, err := db.Explain(q.SPARQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(plan)
		start := time.Now()
		n, err := db.Count(q.SPARQL, parj.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-> %d rows in %v\n\n", n, time.Since(start).Round(time.Microsecond))
	}

	// The probe-strategy ablation of Table 5 in miniature: the same path
	// query under all four strategies.
	src := ""
	for _, q := range watdiv.ILQueries() {
		if q.Name == "IL-3-6" {
			src = q.SPARQL
		}
	}
	fmt.Println("== probe strategies on IL-3-6 (1 thread)")
	for _, s := range []struct {
		name string
		s    parj.Strategy
	}{
		{"Binary  ", parj.BinaryOnly},
		{"AdBinary", parj.AdaptiveBinary},
		{"Index   ", parj.IndexOnly},
		{"AdIndex ", parj.AdaptiveIndex},
	} {
		start := time.Now()
		res, err := db.Query(src, parj.QueryOptions{Threads: 1, Silent: true, Strategy: s.s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s %10v  (probes: %d seq, %d binary, %d index)\n",
			s.name, time.Since(start).Round(time.Microsecond),
			res.ProbeStats.Sequential, res.ProbeStats.Binary, res.ProbeStats.Index)
	}
}
