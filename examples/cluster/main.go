// Cluster: the paper's §6 cluster extension — full replication, each node
// processes a disjoint set of shards, no inter-node communication during
// the join. This demo builds a LUBM-like store, "deploys" it to several
// replicated nodes, and shows that any node count returns identical
// results while spreading the rows produced across nodes.
//
// Usage: go run ./examples/cluster [-scale N] [-nodes N]
package main

import (
	"flag"
	"fmt"
	"log"

	"parj/internal/cluster"
	"parj/internal/core"
	"parj/internal/lubm"
	"parj/internal/optimizer"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
)

func main() {
	scale := flag.Int("scale", 8, "number of universities")
	nodes := flag.Int("nodes", 4, "number of replicated nodes")
	flag.Parse()

	st := store.LoadTriples(lubm.Triples(*scale, lubm.Config{}), store.BuildOptions{BuildPosIndex: true})
	ss := stats.New(st)
	fmt.Printf("replicated store: %d triples on %d nodes (full replication)\n\n",
		st.NumTriples(), *nodes)

	c := cluster.New(st, cluster.Options{
		Nodes:          *nodes,
		ThreadsPerNode: 2,
		Strategy:       core.AdaptiveIndex,
	})

	for _, q := range lubm.Queries() {
		parsed, err := sparql.Parse(q.SPARQL)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := optimizer.Optimize(parsed, st, ss)
		if err != nil {
			log.Fatal(err)
		}
		if plan.Distinct || plan.Limit > 0 {
			continue
		}
		single, err := core.Execute(st, plan, core.Options{Threads: 2, Silent: true})
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Execute(plan, true)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if res.Count != single.Count {
			status = "MISMATCH"
		}
		fmt.Printf("%-5s cluster=%8d single=%8d  per-node=%v  %s\n",
			q.Name, res.Count, single.Count, res.PerNode, status)
	}
	fmt.Println("\nEvery node worked on its own shard range of the first relation;")
	fmt.Println("no data crossed node boundaries until the final gather.")
}
