// Quickstart: build a small graph with the Builder API and run a join.
package main

import (
	"fmt"
	"log"

	"parj"
)

func main() {
	b := parj.NewBuilder(parj.LoadOptions{})

	// A tiny social graph in N-Triples term syntax.
	b.Add("<alice>", "<knows>", "<bob>")
	b.Add("<bob>", "<knows>", "<carol>")
	b.Add("<carol>", "<knows>", "<dave>")
	b.Add("<alice>", "<worksAt>", "<acme>")
	b.Add("<carol>", "<worksAt>", "<acme>")
	b.Add("<alice>", "<name>", `"Alice"`)
	b.Add("<carol>", "<name>", `"Carol"`)

	db := b.Build()
	fmt.Printf("store: %d triples, %d predicates, %d resources\n",
		db.NumTriples(), db.NumPredicates(), db.NumResources())

	// Friends-of-friends who share an employer with the starting person.
	res, err := db.Query(`
		SELECT ?x ?z WHERE {
			?x <knows> ?y .
			?y <knows> ?z .
			?x <worksAt> ?w .
			?z <worksAt> ?w .
		}`, parj.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("friend-of-friend colleagues (%d):\n", res.Count)
	for _, row := range res.Rows {
		fmt.Printf("  %s -> %s\n", row[0], row[1])
	}

	// The same query, counted in silent mode (the paper's measurement
	// mode: no row materialization or dictionary decoding).
	n, err := db.Count(`SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <knows> ?z .
		?x <worksAt> ?w . ?z <worksAt> ?w }`, parj.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("silent count: %d\n", n)

	// Inspect the plan the optimizer chose.
	plan, err := db.Explain(`SELECT ?x WHERE { ?x <worksAt> <acme> . ?x <knows> ?y }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("plan for the filtered query:\n", plan)
}
