// Package parj is a main-memory, parallel RDF store with adaptive join
// processing — a Go implementation of the PARJ system from "Scalable
// Parallelization of RDF Joins on Multicore Architectures" (Bilidas &
// Koubarakis, EDBT 2019).
//
// RDF data is dictionary-encoded and vertically partitioned: every
// predicate gets a two-column table kept in two sort orders (subject-object
// and object-subject) with compact CSR storage. SPARQL Basic Graph Patterns
// are compiled to left-deep join pipelines that workers execute over
// disjoint shards of the first relation, with zero inter-thread
// communication. Each probe adaptively switches between cursor-resuming
// sequential search (merge-join-like) and binary search or an
// ID-to-Position index (index-nested-loop-like).
//
// Quickstart:
//
//	b := parj.NewBuilder(parj.LoadOptions{})
//	b.Add("<alice>", "<knows>", "<bob>")
//	b.Add("<bob>", "<knows>", "<carol>")
//	db := b.Build()
//	res, err := db.Query(`SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <knows> ?z }`,
//		parj.QueryOptions{})
package parj

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"parj/internal/core"
	"parj/internal/optimizer"
	"parj/internal/rdf"
	"parj/internal/rdfs"
	"parj/internal/search"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
)

// Strategy selects the key-probe method; see the package documentation of
// internal/core and Table 5 of the paper.
type Strategy = core.Strategy

// Probe strategies.
const (
	// AdaptiveBinary switches per probe between sequential and binary
	// search (the paper's AdBinary; the default).
	AdaptiveBinary = core.AdaptiveBinary
	// BinaryOnly always binary-searches the key array.
	BinaryOnly = core.BinaryOnly
	// IndexOnly always uses the ID-to-Position index (requires
	// LoadOptions.PosIndex).
	IndexOnly = core.IndexOnly
	// AdaptiveIndex switches between sequential search and the
	// ID-to-Position index (requires LoadOptions.PosIndex).
	AdaptiveIndex = core.AdaptiveIndex
)

// LoadOptions configures data loading.
type LoadOptions struct {
	// PosIndex builds the ID-to-Position index for every table, enabling
	// the IndexOnly and AdaptiveIndex strategies at ~N/8 bytes per table
	// extra memory.
	PosIndex bool
	// Calibrate runs the paper's timing-based calibration (Algorithm 2)
	// after loading to derive adaptive thresholds; when false, the
	// paper-reported defaults are used (deterministic, and accurate on
	// commodity hardware).
	Calibrate bool
}

func (o LoadOptions) buildOptions() store.BuildOptions {
	return store.BuildOptions{
		Calibrate:     o.Calibrate,
		BuildPosIndex: o.PosIndex,
	}
}

// QueryOptions configures one query execution.
type QueryOptions struct {
	// Threads is the number of worker threads; 0 uses GOMAXPROCS.
	Threads int
	// Strategy is the probe strategy (default AdaptiveBinary).
	Strategy Strategy
	// Silent counts results without materializing or decoding rows — the
	// measurement mode used in the paper's experiments.
	Silent bool
	// Entailment evaluates the query with respect to the rdfs:subClassOf
	// and rdfs:subPropertyOf hierarchies found in the data, by unioning
	// tables inside the join pipeline instead of materializing implied
	// triples (the paper's §6 extension). Patterns over rdf:type match
	// subclasses; patterns over a property match its subproperties.
	Entailment bool
}

// Results holds a query's outcome.
type Results struct {
	// Vars names the projected columns.
	Vars []string
	// Rows holds the decoded result rows (nil in silent mode).
	Rows [][]string
	// Count is the number of result rows after DISTINCT/LIMIT.
	Count int64
	// ProbeStats reports how many probes used each search strategy.
	ProbeStats search.Stats
}

// Store is an immutable, fully in-memory RDF database. It is safe for
// concurrent queries.
type Store struct {
	st    *store.Store
	stats *stats.Stats

	hierOnce sync.Once
	hier     *rdfs.Hierarchy
}

// hierarchy lazily computes the RDFS closures on first entailment query.
func (s *Store) hierarchy() *rdfs.Hierarchy {
	s.hierOnce.Do(func() {
		s.hier = rdfs.New(s.st, "", "", "")
	})
	return s.hier
}

// Builder accumulates triples for a Store.
type Builder struct {
	b    *store.Builder
	opts LoadOptions
}

// NewBuilder returns an empty Builder.
func NewBuilder(opts LoadOptions) *Builder {
	return &Builder{b: store.NewBuilder(), opts: opts}
}

// Add inserts one triple given in N-Triples term syntax (IRIs in angle
// brackets, literals quoted).
func (b *Builder) Add(subject, predicate, object string) {
	b.b.Add(subject, predicate, object)
}

// Build freezes the builder into a Store. The Builder must not be used
// afterwards.
func (b *Builder) Build() *Store {
	st := b.b.Build(b.opts.buildOptions())
	return &Store{st: st, stats: stats.New(st)}
}

// Load reads an N-Triples document and builds a Store.
func Load(r io.Reader, opts LoadOptions) (*Store, error) {
	b := NewBuilder(opts)
	rd := rdf.NewReader(r)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		b.b.AddTriple(t)
	}
	return b.Build(), nil
}

// LoadFile reads an N-Triples file (or a .snapshot file written by
// SaveSnapshotFile) and builds a Store.
func LoadFile(path string, opts LoadOptions) (*Store, error) {
	if strings.HasSuffix(path, ".snapshot") {
		return LoadSnapshotFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, opts)
}

// SaveSnapshot writes a binary snapshot of the store that LoadSnapshot can
// reload without re-parsing or re-sorting — the role the paper's SQLite
// backing store played for its prototype.
func (s *Store) SaveSnapshot(w io.Writer) error { return s.st.Save(w) }

// SaveSnapshotFile writes the snapshot to a file.
func (s *Store) SaveSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.st.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshot reloads a store saved with SaveSnapshot.
func LoadSnapshot(r io.Reader) (*Store, error) {
	st, err := store.LoadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &Store{st: st, stats: stats.New(st)}, nil
}

// LoadSnapshotFile reloads a store from a snapshot file.
func LoadSnapshotFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(f)
}

// NumTriples reports the number of distinct triples stored.
func (s *Store) NumTriples() int { return s.st.NumTriples() }

// NumPredicates reports the number of distinct predicates.
func (s *Store) NumPredicates() int { return s.st.NumPredicates() }

// NumResources reports the number of distinct subjects/objects.
func (s *Store) NumResources() int { return s.st.Resources.Len() }

// MemoryBytes reports the table payload size in bytes (dictionaries
// excluded), the figure the paper quotes for storage compactness.
func (s *Store) MemoryBytes() int { return s.st.Bytes() }

// PredicateInfo describes one predicate's tables.
type PredicateInfo struct {
	IRI              string
	Triples          int
	DistinctSubjects int
	DistinctObjects  int
}

// PredicateInfos lists every predicate with its table statistics (the
// paper's 2×#properties directory, §3, decoded for humans).
func (s *Store) PredicateInfos() []PredicateInfo {
	out := make([]PredicateInfo, s.st.NumPredicates())
	for p := 1; p <= s.st.NumPredicates(); p++ {
		out[p-1] = PredicateInfo{
			IRI:              s.st.Predicates.Decode(uint32(p)),
			Triples:          s.st.SO(uint32(p)).NumTriples(),
			DistinctSubjects: s.st.SO(uint32(p)).NumKeys(),
			DistinctObjects:  s.st.OS(uint32(p)).NumKeys(),
		}
	}
	return out
}

// Query parses, optimizes and executes a SPARQL query. ORDER BY sorts the
// decoded terms lexicographically (ascending unless DESC); OFFSET skips
// rows after ordering and before LIMIT.
func (s *Store) Query(src string, opts QueryOptions) (*Results, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}
	var x optimizer.Expander
	if opts.Entailment {
		x = s.hierarchy()
	}
	plan, err := optimizer.OptimizeExpanded(q, s.st, s.stats, x)
	if err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}

	post := len(q.OrderBy) > 0 || q.Offset > 0
	execOpts := core.Options{Threads: opts.Threads, Strategy: opts.Strategy, Silent: opts.Silent}
	if post {
		// Ordering and offsets need the full, materialized result: the
		// engine must not truncate early, and rows must be decoded to sort
		// by term.
		plan.Limit = 0
		execOpts.Silent = false
	}
	res, err := core.Execute(s.st, plan, execOpts)
	if err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}
	out := &Results{Vars: res.Vars, Count: res.Count, ProbeStats: res.Stats}
	if !post {
		if !opts.Silent {
			out.Rows = res.StringRows(s.st)
		}
		return out, nil
	}

	rows := res.StringRows(s.st)
	if len(q.OrderBy) > 0 {
		cols := make([]int, len(q.OrderBy))
		for i, k := range q.OrderBy {
			cols[i] = -1
			for j, v := range out.Vars {
				if v == k.Var {
					cols[i] = j
				}
			}
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for i, c := range cols {
				if c < 0 || rows[a][c] == rows[b][c] {
					continue
				}
				less := rows[a][c] < rows[b][c]
				if q.OrderBy[i].Desc {
					return !less
				}
				return less
			}
			return false
		})
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = rows[:0]
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.HasLimit && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	out.Count = int64(len(rows))
	if !opts.Silent {
		out.Rows = rows
	}
	return out, nil
}

// QueryStream executes src and delivers decoded rows to fn as they are
// produced, without buffering the result set — the paper's iterator-style
// full-result handling (§5.2), which keeps memory bounded even for
// billion-row results. fn runs on a single goroutine and returns false to
// cancel. DISTINCT and LIMIT require buffering and are rejected; use Query.
// The returned count is the number of rows delivered.
func (s *Store) QueryStream(src string, opts QueryOptions, fn func(row []string) bool) (int64, error) {
	plan, err := s.plan(src, opts.Entailment)
	if err != nil {
		return 0, err
	}
	return core.ExecuteStream(s.st, plan, core.Options{
		Threads:  opts.Threads,
		Strategy: opts.Strategy,
	}, func(row []uint32) bool {
		dec := make([]string, len(row))
		for i, id := range row {
			slot := plan.Project[i]
			if plan.SlotIsPred[slot] {
				dec[i] = s.st.Predicates.Decode(id)
			} else {
				dec[i] = s.st.Resources.Decode(id)
			}
		}
		return fn(dec)
	})
}

// Prepared is a parsed and optimized query, reusable across executions.
// The paper observes that for fast star queries (WatDiv S1) planning
// dominates the total time; preparing once removes that cost from repeated
// executions. Prepared queries are immutable and safe for concurrent use.
type Prepared struct {
	s    *Store
	plan *optimizer.Plan
}

// Prepare parses and optimizes src once. Entailment selects
// hierarchy-aware planning, as in QueryOptions.
func (s *Store) Prepare(src string, entailment bool) (*Prepared, error) {
	plan, err := s.plan(src, entailment)
	if err != nil {
		return nil, err
	}
	return &Prepared{s: s, plan: plan}, nil
}

// Query executes the prepared plan.
func (p *Prepared) Query(opts QueryOptions) (*Results, error) {
	res, err := core.Execute(p.s.st, p.plan, core.Options{
		Threads:  opts.Threads,
		Strategy: opts.Strategy,
		Silent:   opts.Silent,
	})
	if err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}
	out := &Results{Vars: res.Vars, Count: res.Count, ProbeStats: res.Stats}
	if !opts.Silent {
		out.Rows = res.StringRows(p.s.st)
	}
	return out, nil
}

// Count executes the prepared plan in silent mode.
func (p *Prepared) Count(opts QueryOptions) (int64, error) {
	opts.Silent = true
	res, err := p.Query(opts)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// Explain describes the prepared plan.
func (p *Prepared) Explain() string { return p.plan.Explain() }

// Count executes src in silent mode and returns only the result count.
func (s *Store) Count(src string, opts QueryOptions) (int64, error) {
	opts.Silent = true
	res, err := s.Query(src, opts)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// Explain returns a human-readable description of the plan chosen for src.
func (s *Store) Explain(src string) (string, error) {
	plan, err := s.plan(src, false)
	if err != nil {
		return "", err
	}
	return plan.Explain(), nil
}

func (s *Store) plan(src string, entail bool) (*optimizer.Plan, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}
	var x optimizer.Expander
	if entail {
		x = s.hierarchy()
	}
	plan, err := optimizer.OptimizeExpanded(q, s.st, s.stats, x)
	if err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}
	return plan, nil
}

