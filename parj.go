// Package parj is a main-memory, parallel RDF store with adaptive join
// processing — a Go implementation of the PARJ system from "Scalable
// Parallelization of RDF Joins on Multicore Architectures" (Bilidas &
// Koubarakis, EDBT 2019).
//
// RDF data is dictionary-encoded and vertically partitioned: every
// predicate gets a two-column table kept in two sort orders (subject-object
// and object-subject) with compact CSR storage. SPARQL Basic Graph Patterns
// are compiled to left-deep join pipelines that workers execute over
// disjoint shards of the first relation, with zero inter-thread
// communication. Each probe adaptively switches between cursor-resuming
// sequential search (merge-join-like) and binary search or an
// ID-to-Position index (index-nested-loop-like).
//
// Quickstart:
//
//	b := parj.NewBuilder(parj.LoadOptions{})
//	b.Add("<alice>", "<knows>", "<bob>")
//	b.Add("<bob>", "<knows>", "<carol>")
//	db := b.Build()
//	res, err := db.Query(`SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <knows> ?z }`,
//		parj.QueryOptions{})
package parj

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"parj/internal/core"
	"parj/internal/governance"
	"parj/internal/live"
	"parj/internal/optimizer"
	"parj/internal/rdf"
	"parj/internal/rdfs"
	"parj/internal/search"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
	"parj/internal/wal"
)

// Typed governance errors. Every error returned by Query, QueryStream and
// friends that stems from resource governance wraps exactly one of these;
// dispatch with errors.Is. ErrCanceled and ErrDeadlineExceeded also match
// context.Canceled and context.DeadlineExceeded respectively. See
// docs/ROBUSTNESS.md for the full taxonomy.
var (
	// ErrCanceled reports that QueryOptions.Context was canceled.
	ErrCanceled = governance.ErrCanceled
	// ErrDeadlineExceeded reports that the query's deadline or
	// QueryOptions.Timeout expired mid-execution.
	ErrDeadlineExceeded = governance.ErrDeadlineExceeded
	// ErrBudgetExceeded reports that the query exceeded
	// QueryOptions.MaxResultRows or QueryOptions.MemoryBudget.
	ErrBudgetExceeded = governance.ErrBudgetExceeded
	// ErrOverloaded is the load-shedding error: the store was running
	// DBOptions.MaxConcurrentQueries queries and this one could not be
	// admitted within DBOptions.AdmissionWait.
	ErrOverloaded = governance.ErrOverloaded
	// ErrCorruptSnapshot reports that a snapshot failed its integrity
	// checks (bad structure or checksum mismatch).
	ErrCorruptSnapshot = store.ErrCorruptSnapshot
)

// PanicError is a worker panic contained to a query error: the process
// keeps serving, and the offending goroutine's stack is preserved. Extract
// it with errors.As.
type PanicError = governance.PanicError

// RetryAfter extracts the suggested client backoff carried by an
// ErrOverloaded shed from the adaptive admission controller (0 when the
// error carries no hint). Servers surface it as the Retry-After header.
func RetryAfter(err error) time.Duration {
	return governance.RetryAfterHint(err, 0)
}

// Strategy selects the key-probe method; see the package documentation of
// internal/core and Table 5 of the paper.
type Strategy = core.Strategy

// JoinAlgo selects the join operator; see internal/core's wcoj.go.
type JoinAlgo = core.JoinAlgo

// Join operators.
const (
	// JoinAuto (the default) follows the optimizer's shape classifier:
	// acyclic BGPs run the left-deep pipeline, cyclic and self-join BGPs
	// run the worst-case-optimal operator when its cost estimate wins.
	JoinAuto = core.JoinAuto
	// JoinPipeline forces the left-deep binary-join pipeline.
	JoinPipeline = core.JoinPipeline
	// JoinWCOJ forces the worst-case-optimal operator on eligible plans
	// (constant, unexpanded predicates); ineligible plans fall back to the
	// pipeline.
	JoinWCOJ = core.JoinWCOJ
)

// Probe strategies.
const (
	// AdaptiveBinary switches per probe between sequential and binary
	// search (the paper's AdBinary; the default).
	AdaptiveBinary = core.AdaptiveBinary
	// BinaryOnly always binary-searches the key array.
	BinaryOnly = core.BinaryOnly
	// IndexOnly always uses the ID-to-Position index (requires
	// LoadOptions.PosIndex).
	IndexOnly = core.IndexOnly
	// AdaptiveIndex switches between sequential search and the
	// ID-to-Position index (requires LoadOptions.PosIndex).
	AdaptiveIndex = core.AdaptiveIndex
)

// LoadOptions configures data loading.
type LoadOptions struct {
	// PosIndex builds the ID-to-Position index for every table, enabling
	// the IndexOnly and AdaptiveIndex strategies at ~N/8 bytes per table
	// extra memory.
	PosIndex bool
	// Calibrate runs the paper's timing-based calibration (Algorithm 2)
	// after loading to derive adaptive thresholds; when false, the
	// paper-reported defaults are used (deterministic, and accurate on
	// commodity hardware).
	Calibrate bool
	// DB configures store-wide governance (admission control) from the
	// moment the store exists; SetDBOptions can change it later.
	DB DBOptions
}

// DBOptions configures store-wide resource governance.
type DBOptions struct {
	// MaxConcurrentQueries caps how many queries execute at once; further
	// queries wait up to AdmissionWait and are then shed with
	// ErrOverloaded. 0 = unlimited. Under overload the store degrades
	// gracefully — shedding queries with a typed error — instead of
	// accumulating unbounded concurrent result buffers.
	MaxConcurrentQueries int
	// AdmissionWait bounds how long an over-admission query queues before
	// it is shed. 0 means shed immediately when saturated.
	AdmissionWait time.Duration
	// AdmissionTarget > 0 replaces the fixed-wait admission queue with a
	// CoDel-style adaptive controller: when queue sojourn stays above this
	// target for a full AdmissionInterval the store enters shedding mode,
	// rejecting excess arrivals after only the target (with a Retry-After
	// hint on the error) instead of letting every query wait the full
	// AdmissionWait. Admitted queries keep a bounded queue delay under
	// sustained overload. Requires MaxConcurrentQueries > 0.
	AdmissionTarget time.Duration
	// AdmissionInterval is the adaptive controller's control window
	// (0 = 100ms default).
	AdmissionInterval time.Duration
	// SharedMemoryBudget bounds the bytes of materialized result rows
	// across ALL concurrently executing queries, complementing the
	// per-query QueryOptions.MemoryBudget: N concurrent queries race one
	// budget, so a burst cannot multiply the per-query bound into process
	// exhaustion. The query that would tip the store over fails with
	// ErrBudgetExceeded. 0 = unlimited.
	SharedMemoryBudget int64
	// AutoReconcileOps arms the background reconciler: once at least this
	// many write verdicts are pending, a goroutine merges them into fresh
	// base tables and swaps the epoch. 0 leaves reconciliation to explicit
	// Reconcile calls — the deterministic mode tests use.
	AutoReconcileOps int
	// Durability configures write-ahead logging. It takes effect only
	// through Open (recovery must happen before the store exists);
	// Builder.Build, Load and SetDBOptions ignore it.
	Durability Durability
}

func (o LoadOptions) buildOptions() store.BuildOptions {
	return store.BuildOptions{
		Calibrate:     o.Calibrate,
		BuildPosIndex: o.PosIndex,
	}
}

// QueryOptions configures one query execution.
type QueryOptions struct {
	// Threads is the number of worker threads; 0 uses GOMAXPROCS.
	Threads int
	// Strategy is the probe strategy (default AdaptiveBinary).
	Strategy Strategy
	// Silent counts results without materializing or decoding rows — the
	// measurement mode used in the paper's experiments.
	Silent bool
	// Join selects the join operator: JoinAuto (default) lets the
	// optimizer's shape classifier decide, JoinPipeline and JoinWCOJ force
	// one operator — the knob the differential tests and benchmarks use to
	// A/B the pipeline against the worst-case-optimal join.
	Join JoinAlgo
	// Entailment evaluates the query with respect to the rdfs:subClassOf
	// and rdfs:subPropertyOf hierarchies found in the data, by unioning
	// tables inside the join pipeline instead of materializing implied
	// triples (the paper's §6 extension). Patterns over rdf:type match
	// subclasses; patterns over a property match its subproperties.
	Entailment bool

	// Context carries the query's cancellation signal and deadline into
	// the worker inner loops: canceling it stops the query within a
	// fraction of a millisecond with ErrCanceled (or ErrDeadlineExceeded
	// when the context's own deadline expired). nil means no cancellation.
	Context context.Context
	// Timeout, when positive, bounds the query's wall-clock time on top of
	// (and independently of) Context; expiry yields ErrDeadlineExceeded.
	Timeout time.Duration
	// MaxResultRows bounds the rows the engine produces across all
	// workers, before final DISTINCT/LIMIT compaction; exceeding it yields
	// ErrBudgetExceeded. 0 = unlimited.
	MaxResultRows int64
	// MemoryBudget bounds the bytes of materialized result rows across all
	// workers; exceeding it yields ErrBudgetExceeded. Silent counting and
	// QueryStream charge no memory. 0 = unlimited.
	MemoryBudget int64
}

// execContext derives the execution context from Context and Timeout. The
// returned cancel must be called when execution finishes (it is a no-op
// when no timeout was requested).
func (o *QueryOptions) execContext() (context.Context, context.CancelFunc) {
	ctx := o.Context
	if o.Timeout <= 0 {
		return ctx, func() {}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithTimeout(ctx, o.Timeout)
}

// execOptions assembles the engine options for one execution of plan. The
// optimizer's cardinality estimate tunes how often workers check for
// cancellation: plans expected to run long are checked more often. pool is
// the store's shared memory budget (nil when off).
func (o *QueryOptions) execOptions(ctx context.Context, plan *optimizer.Plan, pool *governance.Pool) core.Options {
	return core.Options{
		Threads:       o.Threads,
		Strategy:      o.Strategy,
		Silent:        o.Silent,
		Join:          o.Join,
		Context:       ctx,
		MaxResultRows: o.MaxResultRows,
		MemoryBudget:  o.MemoryBudget,
		MemPool:       pool,
		CheckInterval: governance.IntervalForEstimate(plan.EstResultRows()),
	}
}

// Results holds a query's outcome.
type Results struct {
	// Vars names the projected columns.
	Vars []string
	// Rows holds the decoded result rows (nil in silent mode).
	Rows [][]string
	// Count is the number of result rows after DISTINCT/LIMIT.
	Count int64
	// ProbeStats reports how many probes used each search strategy.
	ProbeStats search.Stats
}

// admitController abstracts the two admission controllers a Store can run:
// the fixed-wait governance.Limiter and the adaptive CoDel controller.
type admitController interface {
	Acquire(ctx context.Context) error
	Release()
	InFlight() int
}

// Store is a fully in-memory RDF database, safe for concurrent queries and
// — since the live write path — concurrent Insert/Delete. Reads run on
// immutable epoch views: each query pins the view current at admission and
// sees a consistent base-plus-delta state for its whole lifetime, while
// writes publish new views and a reconciler folds accumulated deltas into
// fresh base tables. With no writes pending, the read path is exactly the
// original immutable engine plus one atomic load.
type Store struct {
	live *live.Handle

	// wal is the store's write-ahead log when it was opened with
	// DBOptions.Durability (see Open); nil for volatile stores.
	wal *wal.Log

	// limiter implements DB-level admission control; a typed-nil value
	// admits everything. adaptive aliases it when the CoDel controller is
	// in use (the source of shed counters and the queue-delay estimate).
	limiter  admitController
	adaptive *governance.AdaptiveLimiter
	// memPool is the store-wide shared memory budget; nil = unlimited.
	memPool *governance.Pool

	// hier caches the RDFS closures per epoch: entailment queries against a
	// mutated store must see hierarchies derived from their own view.
	hierMu  sync.Mutex
	hierVer uint64
	hier    *rdfs.Hierarchy
}

// SetDBOptions (re)configures store-wide governance. It must not be called
// concurrently with queries; set it once right after loading. Queries
// already admitted keep their slots (and their shared-pool reservations).
func (s *Store) SetDBOptions(opts DBOptions) {
	s.applyDB(opts)
}

func (s *Store) applyDB(opts DBOptions) {
	if opts.AdmissionTarget > 0 {
		s.adaptive = governance.NewAdaptiveLimiter(governance.AdmissionOptions{
			MaxConcurrent: opts.MaxConcurrentQueries,
			MaxWait:       opts.AdmissionWait,
			Target:        opts.AdmissionTarget,
			Interval:      opts.AdmissionInterval,
		})
		s.limiter = s.adaptive
	} else {
		s.adaptive = nil
		s.limiter = governance.NewLimiter(opts.MaxConcurrentQueries, opts.AdmissionWait)
	}
	s.memPool = governance.NewPool(opts.SharedMemoryBudget)
	s.live.SetAutoReconcile(opts.AutoReconcileOps)
}

// InFlightQueries reports how many queries are currently admitted (always 0
// when admission control is off) — a cheap load signal for health checks.
func (s *Store) InFlightQueries() int { return s.limiter.InFlight() }

// AdmissionStats is a snapshot of the store's admission and shared-memory
// counters — what parj-server surfaces on /statz so the shedding behavior
// is operator-visible.
type AdmissionStats struct {
	// InFlight is the number of currently executing queries.
	InFlight int
	// Admitted/Sheds/Expired count adaptive-admission outcomes since the
	// controller was configured (0 under the fixed-wait limiter).
	Admitted int64
	Sheds    int64
	Expired  int64
	// QueueDelay is the adaptive controller's sojourn-time estimate.
	QueueDelay time.Duration
	// Shedding reports whether the controller is currently in shed mode.
	Shedding bool
	// PoolUsed/PoolCapacity report the shared memory budget (0 when off).
	PoolUsed     int64
	PoolCapacity int64
}

// AdmissionStats snapshots the store's admission counters.
func (s *Store) AdmissionStats() AdmissionStats {
	a := s.adaptive.Stats()
	return AdmissionStats{
		InFlight:     s.limiter.InFlight(),
		Admitted:     a.Admitted,
		Sheds:        a.Sheds,
		Expired:      a.Expired,
		QueueDelay:   a.QueueDelay,
		Shedding:     a.Shedding,
		PoolUsed:     s.memPool.Used(),
		PoolCapacity: s.memPool.Capacity(),
	}
}

// admit reserves an execution slot, shedding with ErrOverloaded when the
// store is saturated longer than the admission wait (or, under adaptive
// admission, as soon as the controller is in shed mode). The caller must
// call the returned release exactly once; on error there is nothing to
// release.
func (s *Store) admit(ctx context.Context) (release func(), err error) {
	if err := s.limiter.Acquire(ctx); err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}
	return s.limiter.Release, nil
}

// hierarchy computes (and caches per epoch) the RDFS closures for v.
func (s *Store) hierarchy(v *live.View) *rdfs.Hierarchy {
	s.hierMu.Lock()
	defer s.hierMu.Unlock()
	if s.hier == nil || s.hierVer != v.Version() {
		s.hier = rdfs.New(v.Store(), "", "", "")
		s.hierVer = v.Version()
	}
	return s.hier
}

// Builder accumulates triples for a Store.
type Builder struct {
	b    *store.Builder
	opts LoadOptions
}

// NewBuilder returns an empty Builder.
func NewBuilder(opts LoadOptions) *Builder {
	return &Builder{b: store.NewBuilder(), opts: opts}
}

// Add inserts one triple given in N-Triples term syntax (IRIs in angle
// brackets, literals quoted).
func (b *Builder) Add(subject, predicate, object string) {
	b.b.Add(subject, predicate, object)
}

// Build freezes the builder into a Store. The Builder must not be used
// afterwards.
func (b *Builder) Build() *Store {
	bo := b.opts.buildOptions()
	st := b.b.Build(bo)
	s := &Store{live: live.New(st, stats.New(st), bo)}
	s.applyDB(b.opts.DB)
	return s
}

// Load reads an N-Triples document and builds a Store.
func Load(r io.Reader, opts LoadOptions) (*Store, error) {
	b := NewBuilder(opts)
	rd := rdf.NewReader(r)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		b.b.AddTriple(t)
	}
	return b.Build(), nil
}

// LoadFile reads an N-Triples file (or a .snapshot file written by
// SaveSnapshotFile) and builds a Store.
func LoadFile(path string, opts LoadOptions) (*Store, error) {
	if strings.HasSuffix(path, ".snapshot") {
		return LoadSnapshotFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, opts)
}

// SaveSnapshot writes a binary snapshot of the store that LoadSnapshot can
// reload without re-parsing or re-sorting — the role the paper's SQLite
// backing store played for its prototype. The snapshot captures the
// current epoch's effective state: pending unreconciled writes are merged
// into the stream, so a snapshot taken mid-churn loads identically to one
// taken after the next reconcile.
func (s *Store) SaveSnapshot(w io.Writer) error { return s.live.View().Store().Save(w) }

// SaveSnapshotFile writes the snapshot to a file.
func (s *Store) SaveSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.SaveSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshot reloads a store saved with SaveSnapshot.
func LoadSnapshot(r io.Reader) (*Store, error) {
	st, err := store.LoadSnapshot(r)
	if err != nil {
		return nil, err
	}
	s := &Store{live: live.New(st, stats.New(st), store.InferBuildOptions(st))}
	s.applyDB(DBOptions{})
	return s, nil
}

// LoadSnapshotFile reloads a store from a snapshot file.
func LoadSnapshotFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(f)
}

// NumTriples reports the number of distinct triples stored. While writes
// are pending it is a fast estimate (base plus net delta) so health checks
// never force a merge; after a reconcile it is exact.
func (s *Store) NumTriples() int { return s.live.View().ApproxTriples() }

// NumPredicates reports the number of distinct predicates.
func (s *Store) NumPredicates() int { return s.live.View().Base().NumPredicates() }

// NumResources reports the number of distinct subjects/objects.
func (s *Store) NumResources() int { return s.live.View().Base().Resources.Len() }

// MemoryBytes reports the table payload size in bytes (dictionaries
// excluded), the figure the paper quotes for storage compactness.
func (s *Store) MemoryBytes() int { return s.live.View().Base().Bytes() }

// Triple is one RDF statement in N-Triples term syntax (IRIs in angle
// brackets, literals quoted) — the unit of the live write path.
type Triple struct {
	S, P, O string
}

// Insert adds triples to the live store while queries run. Duplicates of
// already-stored triples are no-ops (RDF graphs are sets). The write lands
// in the current epoch's delta overlay; queries admitted afterwards see it
// immediately, queries already running keep their pinned epoch. Returns
// the write-batch sequence number.
func (s *Store) Insert(triples []Triple) uint64 {
	return s.live.Insert(toRDF(triples))
}

// Delete removes triples from the live store while queries run. Deleting
// an absent triple is a no-op. Same epoch semantics as Insert.
func (s *Store) Delete(triples []Triple) uint64 {
	return s.live.Delete(toRDF(triples))
}

// Reconcile synchronously merges all pending write deltas into fresh base
// tables and swaps the epoch. Queries in flight keep their views; writes
// landing during the merge stay pending into the next epoch. After
// Reconcile (with no further writes), reads are overlay-free again.
func (s *Store) Reconcile() { s.live.Reconcile() }

// PendingWrites reports the write verdicts not yet reconciled.
func (s *Store) PendingWrites() int { return s.live.Pending() }

// WriteSeq reports the sequence number of the last applied write batch.
func (s *Store) WriteSeq() uint64 { return s.live.Seq() }

// Epoch reports the current view version; it advances on every write batch
// and every reconcile.
func (s *Store) Epoch() uint64 { return s.live.View().Version() }

// Quiesce blocks until any background reconciliation (DBOptions.
// AutoReconcileOps) has finished. Stop writing before calling it.
func (s *Store) Quiesce() { s.live.Quiesce() }

func toRDF(triples []Triple) []rdf.Triple {
	out := make([]rdf.Triple, len(triples))
	for i, t := range triples {
		out[i] = rdf.Triple(t)
	}
	return out
}

// PredicateInfo describes one predicate's tables.
type PredicateInfo struct {
	IRI              string
	Triples          int
	DistinctSubjects int
	DistinctObjects  int
}

// PredicateInfos lists every predicate with its table statistics (the
// paper's 2×#properties directory, §3, decoded for humans). Pending writes
// are merged into the reported numbers.
func (s *Store) PredicateInfos() []PredicateInfo {
	st := s.live.View().Store()
	out := make([]PredicateInfo, st.NumPredicates())
	for p := 1; p <= st.NumPredicates(); p++ {
		out[p-1] = PredicateInfo{
			IRI:              st.Predicates.Decode(uint32(p)),
			Triples:          st.SO(uint32(p)).NumTriples(),
			DistinctSubjects: st.SO(uint32(p)).NumKeys(),
			DistinctObjects:  st.OS(uint32(p)).NumKeys(),
		}
	}
	return out
}

// Query parses, optimizes and executes a SPARQL query. ORDER BY sorts the
// decoded terms lexicographically (ascending unless DESC); OFFSET skips
// rows after ordering and before LIMIT.
//
// Governance (QueryOptions.Context, Timeout, MaxResultRows, MemoryBudget,
// and the store's admission control) fails the query with one of the typed
// errors; when execution had already started, the returned *Results is
// non-nil and carries partial progress — the count of rows produced so far
// and the probe statistics — but never partial rows.
func (s *Store) Query(src string, opts QueryOptions) (*Results, error) {
	ctx, cancel := opts.execContext()
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	q, err := sparql.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}
	// Pin one epoch view for planning AND execution: constants resolved
	// against its dictionary-visible state, statistics, and the executed
	// tables all agree, however many writes land meanwhile.
	v := s.live.View()
	st := v.Store()
	var x optimizer.Expander
	if opts.Entailment {
		x = s.hierarchy(v)
	}
	plan, err := optimizer.OptimizeExpanded(q, st, v.Stats(), x)
	if err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}

	post := len(q.OrderBy) > 0 || q.Offset > 0
	execOpts := opts.execOptions(ctx, plan, s.memPool)
	if post {
		// Ordering and offsets need the full, materialized result: the
		// engine must not truncate early, and rows must be decoded to sort
		// by term.
		plan.Limit = 0
		execOpts.Silent = false
	}
	res, err := core.Execute(st, plan, execOpts)
	if err != nil {
		if res != nil {
			return &Results{Vars: res.Vars, Count: res.Count, ProbeStats: res.Stats},
				fmt.Errorf("parj: %w", err)
		}
		return nil, fmt.Errorf("parj: %w", err)
	}
	out := &Results{Vars: res.Vars, Count: res.Count, ProbeStats: res.Stats}
	if !post {
		if !opts.Silent {
			out.Rows = res.StringRows(st)
		}
		return out, nil
	}

	rows := res.StringRows(st)
	if len(q.OrderBy) > 0 {
		cols := make([]int, len(q.OrderBy))
		for i, k := range q.OrderBy {
			cols[i] = -1
			for j, v := range out.Vars {
				if v == k.Var {
					cols[i] = j
				}
			}
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for i, c := range cols {
				if c < 0 || rows[a][c] == rows[b][c] {
					continue
				}
				less := rows[a][c] < rows[b][c]
				if q.OrderBy[i].Desc {
					return !less
				}
				return less
			}
			return false
		})
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = rows[:0]
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.HasLimit && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	out.Count = int64(len(rows))
	if !opts.Silent {
		out.Rows = rows
	}
	return out, nil
}

// QueryStream executes src and delivers decoded rows to fn as they are
// produced, without buffering the result set — the paper's iterator-style
// full-result handling (§5.2), which keeps memory bounded even for
// billion-row results. fn runs on a single goroutine and returns false to
// cancel. DISTINCT and LIMIT require buffering and are rejected; use Query.
// The returned count is the number of rows delivered.
func (s *Store) QueryStream(src string, opts QueryOptions, fn func(row []string) bool) (int64, error) {
	ctx, cancel := opts.execContext()
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		return 0, err
	}
	defer release()

	v := s.live.View()
	st := v.Store()
	plan, err := s.planView(v, src, opts.Entailment)
	if err != nil {
		return 0, err
	}
	n, err := core.ExecuteStream(st, plan, opts.execOptions(ctx, plan, s.memPool), func(row []uint32) bool {
		dec := make([]string, len(row))
		for i, id := range row {
			slot := plan.Project[i]
			if plan.SlotIsPred[slot] {
				dec[i] = st.Predicates.Decode(id)
			} else {
				dec[i] = st.Resources.Decode(id)
			}
		}
		return fn(dec)
	})
	if err != nil {
		return n, fmt.Errorf("parj: %w", err)
	}
	return n, nil
}

// Prepared is a parsed and optimized query, reusable across executions.
// The paper observes that for fast star queries (WatDiv S1) planning
// dominates the total time; preparing once removes that cost from repeated
// executions. Prepared queries are safe for concurrent use. A prepared
// plan is bound to the epoch it was optimized on; when writes move the
// epoch, the next execution transparently replans (constants resolved
// against the old view — or its emptiness proof — may not hold on the new
// one).
type Prepared struct {
	s      *Store
	src    string
	entail bool

	mu      sync.Mutex
	version uint64
	plan    *optimizer.Plan
	st      *store.Store // the view's store the plan was optimized against
}

// Prepare parses and optimizes src once. Entailment selects
// hierarchy-aware planning, as in QueryOptions.
func (s *Store) Prepare(src string, entailment bool) (*Prepared, error) {
	p := &Prepared{s: s, src: src, entail: entailment}
	if _, _, err := p.current(); err != nil {
		return nil, err
	}
	return p, nil
}

// current returns a (plan, store) pair consistent with the live epoch,
// replanning if writes moved it since the last execution.
func (p *Prepared) current() (*optimizer.Plan, *store.Store, error) {
	v := p.s.live.View()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.plan == nil || p.version != v.Version() {
		plan, err := p.s.planView(v, p.src, p.entail)
		if err != nil {
			return nil, nil, err
		}
		p.plan, p.st, p.version = plan, v.Store(), v.Version()
	}
	return p.plan, p.st, nil
}

// Query executes the prepared plan under the same governance semantics as
// Store.Query.
func (p *Prepared) Query(opts QueryOptions) (*Results, error) {
	ctx, cancel := opts.execContext()
	defer cancel()
	release, err := p.s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	plan, st, err := p.current()
	if err != nil {
		return nil, err
	}
	res, err := core.Execute(st, plan, opts.execOptions(ctx, plan, p.s.memPool))
	if err != nil {
		if res != nil {
			return &Results{Vars: res.Vars, Count: res.Count, ProbeStats: res.Stats},
				fmt.Errorf("parj: %w", err)
		}
		return nil, fmt.Errorf("parj: %w", err)
	}
	out := &Results{Vars: res.Vars, Count: res.Count, ProbeStats: res.Stats}
	if !opts.Silent {
		out.Rows = res.StringRows(st)
	}
	return out, nil
}

// Count executes the prepared plan in silent mode.
func (p *Prepared) Count(opts QueryOptions) (int64, error) {
	opts.Silent = true
	res, err := p.Query(opts)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// Explain describes the prepared plan (replanned if the epoch moved).
func (p *Prepared) Explain() string {
	plan, _, err := p.current()
	if err != nil {
		return "prepared plan invalid on current epoch: " + err.Error()
	}
	return plan.Explain()
}

// Count executes src in silent mode and returns only the result count.
func (s *Store) Count(src string, opts QueryOptions) (int64, error) {
	opts.Silent = true
	res, err := s.Query(src, opts)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// Explain returns a human-readable description of the plan chosen for src.
func (s *Store) Explain(src string) (string, error) {
	plan, err := s.plan(src, false)
	if err != nil {
		return "", err
	}
	return plan.Explain(), nil
}

func (s *Store) plan(src string, entail bool) (*optimizer.Plan, error) {
	return s.planView(s.live.View(), src, entail)
}

// planView optimizes src against one pinned epoch view.
func (s *Store) planView(v *live.View, src string, entail bool) (*optimizer.Plan, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}
	var x optimizer.Expander
	if entail {
		x = s.hierarchy(v)
	}
	plan, err := optimizer.OptimizeExpanded(q, v.Store(), v.Stats(), x)
	if err != nil {
		return nil, fmt.Errorf("parj: %w", err)
	}
	return plan, nil
}
