// Command parj-node serves one full replica of a store as a shard node of
// the distributed serving tier. A coordinator (internal/cluster.Remote)
// POSTs shard-range execution requests to /exec; the node parses, plans and
// evaluates them against its local replica and streams back dictionary-
// encoded rows. Because every node is a full replica and the sharding is a
// pure function of the plan, any node can serve any shard range — which is
// what lets the coordinator retry, hedge and fail over freely.
//
// Usage:
//
//	parj-node -data graph.nt -addr :7070 -max-concurrent 8
//	parj-node -warm-from http://peer1:7070,http://peer2:7070 -addr :7071
//
// Endpoints:
//
//	POST /exec       evaluate a shard range (internal/remote wire protocol)
//	POST /write      apply a sequenced write batch to the live store
//	POST /reconcile  merge pending writes into a fresh base store
//	GET  /healthz    liveness
//	GET  /readyz     readiness: 503 while loading or draining
//	GET  /statz     cumulative serving stats (queries, rejections, sched)
//	GET  /snapshot  CRC-checked snapshot stream (X-Parj-Write-Seq: stream position)
//
// The listener comes up before the replica finishes loading; /readyz flips
// to 200 once the store is resident and back to 503 when a drain starts.
// SIGINT/SIGTERM drains in-flight requests before exiting.
//
// -warm-from bootstraps a joining replica from a running peer instead of a
// local file: the node pulls a peer's /snapshot stream (CRC-verified; a
// peer that is draining still serves snapshots, so a successor can warm
// from the node it replaces), retrying across the listed peers until one
// succeeds. Only once the snapshot is resident does /readyz report 200 —
// which is exactly when a coordinator's Reconfigure will agree to admit
// the node into the routing table.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"parj/internal/live"
	"parj/internal/rdf"
	"parj/internal/remote"
	"parj/internal/store"
	"parj/internal/wal"
)

func main() {
	var (
		dataPath      = flag.String("data", "", "N-Triples or .snapshot file to load")
		warmFrom      = flag.String("warm-from", "", "comma-separated peer base URLs to warm a joining replica from (alternative to -data)")
		warmTimeout   = flag.Duration("warm-timeout", 5*time.Minute, "give up warming from peers after this long")
		addr          = flag.String("addr", ":7070", "listen address")
		noIndex       = flag.Bool("noindex", false, "skip building ID-to-Position indexes")
		maxConcurrent = flag.Int("max-concurrent", 8, "shard requests executing at once; further ones queue then shed (0 = unlimited)")
		admissionWait = flag.Duration("admission-wait", 2*time.Second, "how long an over-admission request queues before 503")
		admissionTgt  = flag.Duration("admission-target", 0, "acceptable admission-queue sojourn; > 0 enables the adaptive (CoDel-style) controller")
		admissionIntv = flag.Duration("admission-interval", 0, "adaptive controller window (0 = default)")
		drainTimeout  = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain limit")
		reconcileOps  = flag.Int("reconcile-ops", 4096, "pending write verdicts that trigger background reconciliation (0 = only on explicit /reconcile)")
		walDir        = flag.String("wal", "", "write-ahead-log directory; makes the replica durable (recovers on start, journals every write)")
		walSync       = flag.String("wal-sync", "always", "WAL fsync policy: always (group commit), interval, never")
		walSyncIntv   = flag.Duration("wal-sync-interval", 50*time.Millisecond, "flush period under -wal-sync=interval")
		walSegBytes   = flag.Int64("wal-segment-bytes", 0, "WAL segment size before rotation (0 = default 4 MiB)")
		ckptOps       = flag.Int("checkpoint-ops", 4096, "write batches between automatic checkpoints (0 = never checkpoint automatically)")
		ckptIntv      = flag.Duration("checkpoint-interval", time.Minute, "how often the checkpoint loop looks at the write position")
	)
	flag.Parse()
	if *walDir == "" {
		if (*dataPath == "") == (*warmFrom == "") {
			fmt.Fprintln(os.Stderr, "parj-node: exactly one of -data or -warm-from is required")
			flag.Usage()
			os.Exit(2)
		}
	} else if *dataPath != "" && *warmFrom != "" {
		// A durable node can also start bare: recovery alone rebuilds the
		// replica from its own WAL directory.
		fmt.Fprintln(os.Stderr, "parj-node: -data and -warm-from are mutually exclusive")
		flag.Usage()
		os.Exit(2)
	}
	syncPolicy, err := wal.ParseSyncPolicy(*walSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parj-node:", err)
		os.Exit(2)
	}

	// Listen before loading: the node answers /readyz with 503 while the
	// replica loads, so the coordinator's health checks see "starting".
	var nodePtr atomic.Pointer[remote.Node]
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		node := nodePtr.Load()
		if node == nil {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"kind":"overload","error":"replica is still loading"}`, http.StatusServiceUnavailable)
			return
		}
		node.Handler().ServeHTTP(w, r)
	})
	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	start := time.Now()
	bo := store.BuildOptions{BuildPosIndex: !*noIndex}
	// seed supplies the base state when there is no WAL (the volatile path)
	// or the WAL directory is empty (a durable node's first boot). A
	// snapshot warmed from a peer embeds that peer's write-stream position:
	// the node resumes the stream there, so the coordinator's resync
	// replays exactly the batches the snapshot does not contain.
	seed := func() (*store.Store, uint64, error) {
		switch {
		case *warmFrom != "":
			return warmFromPeers(strings.Split(*warmFrom, ","), *warmTimeout)
		case *dataPath != "":
			st, err := loadStore(*dataPath, !*noIndex)
			return st, 0, err
		default:
			return store.LoadTriples(nil, bo), 0, nil
		}
	}
	var h *live.Handle
	var wlog *wal.Log
	if *walDir != "" {
		wlog, err = wal.Open(wal.Options{
			Dir:          *walDir,
			Sync:         syncPolicy,
			Interval:     *walSyncIntv,
			SegmentBytes: *walSegBytes,
		})
		if err == nil {
			// Recovery: newest loadable checkpoint plus the log suffix. The
			// seed runs only when the directory holds no prior state — a
			// restarted replica rebuilds itself without touching -data or
			// its peers, then the coordinator resyncs just the missing tail.
			h, err = live.OpenDurable(wlog, seed, bo)
		}
	} else {
		var st *store.Store
		var seq uint64
		st, seq, err = seed()
		if err == nil {
			h = live.New(st, nil, store.InferBuildOptions(st))
			h.SeedSeq(seq)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parj-node: load:", err)
		srv.Close()
		os.Exit(1)
	}
	node := remote.NewNodeHandle(h, remote.NodeOptions{
		MaxConcurrent:     *maxConcurrent,
		AdmissionWait:     *admissionWait,
		AdmissionTarget:   *admissionTgt,
		AdmissionInterval: *admissionIntv,
		AutoReconcileOps:  *reconcileOps,
	})
	nodePtr.Store(node)
	v := h.View()
	fmt.Fprintf(os.Stderr, "replica loaded: %d triples at write seq %d in %v; serving on %s\n",
		v.ApproxTriples(), v.Seq(), time.Since(start).Round(time.Millisecond), *addr)

	// The checkpoint loop bounds replay time: once enough write batches
	// accumulate past the newest checkpoint, the current view is published
	// as a snapshot and the covered WAL segments are pruned.
	ckptStop := make(chan struct{})
	var ckptDone chan struct{}
	if wlog != nil && *ckptOps > 0 {
		ckptDone = make(chan struct{})
		go func() {
			defer close(ckptDone)
			t := time.NewTicker(*ckptIntv)
			defer t.Stop()
			for {
				select {
				case <-ckptStop:
					return
				case <-t.C:
					if h.Seq() >= wlog.Stats().CheckpointSeq+uint64(*ckptOps) {
						if err := live.Checkpoint(h, wlog); err != nil {
							fmt.Fprintln(os.Stderr, "parj-node: checkpoint:", err)
						}
					}
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "parj-node: draining in-flight requests...")
		node.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		if ckptDone != nil {
			close(ckptStop)
			<-ckptDone
		}
		h.Quiesce()
		if wlog != nil {
			if err := wlog.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "parj-node: wal close:", err)
			}
		}
	}()

	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "parj-node:", err)
		os.Exit(1)
	}
	<-done
}

// warmFromPeers pulls a CRC-checked snapshot stream from the first peer
// that serves one, cycling through the list with backoff until the timeout.
// A truncated or corrupt stream fails verification and moves on to the next
// peer, so a peer dying mid-transfer delays the warmup but never poisons it.
func warmFromPeers(peers []string, timeout time.Duration) (*store.Store, uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	delay := time.Second
	var lastErr error
	for {
		for _, peer := range peers {
			peer = strings.TrimSpace(peer)
			if peer == "" {
				continue
			}
			c := remote.NewClient(peer, 0)
			st, seq, err := c.SnapshotSeq(ctx)
			c.Close()
			if err == nil {
				fmt.Fprintf(os.Stderr, "parj-node: warmed from %s at write seq %d\n", peer, seq)
				return st, seq, nil
			}
			lastErr = err
			fmt.Fprintf(os.Stderr, "parj-node: warm-from %s: %v\n", peer, err)
		}
		select {
		case <-ctx.Done():
			return nil, 0, fmt.Errorf("warm-from: no peer served a snapshot in %v: %w", timeout, lastErr)
		case <-time.After(delay):
		}
		if delay *= 2; delay > 10*time.Second {
			delay = 10 * time.Second
		}
	}
}

// loadStore reads an N-Triples file or a .snapshot into an internal store.
func loadStore(path string, posIndex bool) (*store.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".snapshot") {
		return store.LoadSnapshot(f)
	}
	var triples []rdf.Triple
	rd := rdf.NewReader(f)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		triples = append(triples, t)
	}
	return store.LoadTriples(triples, store.BuildOptions{BuildPosIndex: posIndex}), nil
}
