package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"parj/internal/lubm"
	"parj/internal/remote"
	"parj/internal/store"
)

func TestWarmFromPeers(t *testing.T) {
	st := store.LoadTriples(lubm.Triples(1, lubm.Config{}), store.BuildOptions{BuildPosIndex: true})
	peer := remote.NewNode(st, nil, remote.NodeOptions{})
	srv := httptest.NewServer(peer.Handler())
	defer srv.Close()

	// First peer in the list is dead: warmup must skip past it.
	warmed, seq, err := warmFromPeers([]string{"http://127.0.0.1:1", srv.URL}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if warmed.NumTriples() != st.NumTriples() {
		t.Fatalf("warmed %d triples, peer has %d", warmed.NumTriples(), st.NumTriples())
	}
	if seq != 0 {
		t.Fatalf("peer has applied no writes, warmup reported seq %d", seq)
	}
}

func TestWarmFromPeersTimeout(t *testing.T) {
	if _, _, err := warmFromPeers([]string{"http://127.0.0.1:1"}, 50*time.Millisecond); err == nil {
		t.Fatal("warming from a dead peer must eventually fail")
	}
}
