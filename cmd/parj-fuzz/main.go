// Command parj-fuzz soaks the differential harness: random datasets ×
// random BGP queries × every engine configuration, diffed against the
// naive oracle, indefinitely or for a fixed number of trials.
//
// Usage:
//
//	parj-fuzz                       # one batch with a time-derived seed
//	parj-fuzz -trials 0             # run forever (Ctrl-C to stop)
//	parj-fuzz -seed 7 -v            # reproduce a batch, with progress
//	parj-fuzz -triples 1000 -queries 20
//
// On a divergence it prints the failure, a shrunk ready-to-paste Go
// regression test (see internal/difftest/regress_test.go), and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parj/internal/difftest"
)

func main() {
	var (
		seed     = flag.Int64("seed", 0, "base seed (0 = derive from current time)")
		trials   = flag.Int("trials", 1, "number of batches to run (0 = forever)")
		datasets = flag.Int("datasets", 25, "datasets per batch")
		queries  = flag.Int("queries", 8, "completed query pairs per dataset")
		triples  = flag.Int("triples", 300, "max triples per dataset")
		budget   = flag.Int64("oracle-budget", 2_000_000, "oracle backtracking budget per query")
		verbose  = flag.Bool("v", false, "per-dataset progress on stderr")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}

	start := time.Now()
	var pairs, runs, skipped int
	for batch := 0; *trials == 0 || batch < *trials; batch++ {
		cfg := difftest.Config{
			// Batches must not overlap: Run derives every dataset seed
			// from cfg.Seed, so stride past the seeds batch 0 used.
			Seed:              *seed + int64(batch)*1_000_000_007,
			Datasets:          *datasets,
			QueriesPerDataset: *queries,
			MaxTriples:        *triples,
			OracleBudget:      *budget,
		}
		if *verbose {
			cfg.Log = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		rep := difftest.Run(cfg)
		pairs += rep.Pairs
		runs += rep.EngineRuns
		skipped += rep.Skipped

		if len(rep.Failures) > 0 {
			for i := range rep.Failures {
				f := &rep.Failures[i]
				fmt.Printf("FAIL (batch seed %d): %s\n", cfg.Seed, f.String())
				if f.Repro != "" {
					fmt.Printf("\n%s\n", f.Repro)
				}
			}
			fmt.Printf("after %d pairs, %d engine runs in %s\n",
				pairs, runs, time.Since(start).Round(time.Millisecond))
			os.Exit(1)
		}
		fmt.Printf("batch %d ok (seed %d): %d pairs, %d engine runs, %d skipped — %d pairs total in %s\n",
			batch+1, cfg.Seed, rep.Pairs, rep.EngineRuns, rep.Skipped,
			pairs, time.Since(start).Round(time.Millisecond))
	}
}
