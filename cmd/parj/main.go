// Command parj loads an N-Triples file into memory and runs SPARQL queries
// against it.
//
// Usage:
//
//	parj -data graph.nt -query 'SELECT ?s WHERE { ?s <p> ?o }'
//	parj -data graph.nt -queryfile q.rq -threads 8 -strategy adindex
//	parj -data graph.nt -query '...' -explain
//	parj -data graph.nt            # REPL: one query per line on stdin
//
// With -silent only the result count and timing are printed, matching the
// measurement mode of the paper's experiments.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"parj"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "N-Triples file to load (required)")
		queryText = flag.String("query", "", "SPARQL query to run")
		queryFile = flag.String("queryfile", "", "file containing the SPARQL query")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		strategy  = flag.String("strategy", "adbinary", "probe strategy: binary, adbinary, index, adindex")
		silent    = flag.Bool("silent", false, "count results without printing rows")
		explain   = flag.Bool("explain", false, "print the chosen plan instead of executing")
		noIndex   = flag.Bool("noindex", false, "skip building ID-to-Position indexes")
		calibrate = flag.Bool("calibrate", false, "run timing calibration for adaptive thresholds")
		maxRows   = flag.Int("maxrows", 20, "maximum rows to print (0 = all)")
		timeout   = flag.Duration("timeout", 0, "per-query wall-clock limit (e.g. 500ms, 10s; 0 = none)")
		saveSnap  = flag.String("savesnapshot", "", "write a binary snapshot after loading (reload it by passing the .snapshot file to -data)")
		showStats = flag.Bool("stats", false, "print per-predicate table statistics after loading")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "parj: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parj:", err)
		os.Exit(2)
	}
	if strat.NeedsIndex() && *noIndex {
		fmt.Fprintln(os.Stderr, "parj: -noindex conflicts with an index strategy")
		os.Exit(2)
	}

	start := time.Now()
	db, err := parj.LoadFile(*dataPath, parj.LoadOptions{
		PosIndex:  !*noIndex,
		Calibrate: *calibrate,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "parj: load:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loaded %d triples, %d predicates, %d resources in %v (%.1f MB tables)\n",
		db.NumTriples(), db.NumPredicates(), db.NumResources(),
		time.Since(start).Round(time.Millisecond), float64(db.MemoryBytes())/(1<<20))

	if *showStats {
		fmt.Printf("%-60s %10s %10s %10s\n", "predicate", "triples", "subjects", "objects")
		for _, pi := range db.PredicateInfos() {
			fmt.Printf("%-60s %10d %10d %10d\n", pi.IRI, pi.Triples, pi.DistinctSubjects, pi.DistinctObjects)
		}
	}

	if *saveSnap != "" {
		if err := db.SaveSnapshotFile(*saveSnap); err != nil {
			fmt.Fprintln(os.Stderr, "parj: snapshot:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s\n", *saveSnap)
	}

	opts := parj.QueryOptions{Threads: *threads, Strategy: strat, Silent: *silent, Timeout: *timeout}

	runOne := func(src string) {
		if *explain {
			plan, err := db.Explain(src)
			if err != nil {
				fmt.Fprintln(os.Stderr, "parj:", err)
				return
			}
			fmt.Print(plan)
			return
		}
		// Ctrl-C cancels the in-flight query (typed ErrCanceled, partial
		// stats printed below) instead of killing the process; a second
		// Ctrl-C while idle terminates as usual.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		qOpts := opts
		qOpts.Context = ctx
		qStart := time.Now()
		res, err := db.Query(src, qOpts)
		stop()
		if err != nil {
			fmt.Fprintln(os.Stderr, "parj:", err)
			if res != nil && (errors.Is(err, parj.ErrCanceled) || errors.Is(err, parj.ErrDeadlineExceeded)) {
				fmt.Fprintf(os.Stderr, "parj: partial progress before stop: %d rows produced in %v (probes: %d sequential, %d binary, %d index)\n",
					res.Count, time.Since(qStart).Round(time.Microsecond),
					res.ProbeStats.Sequential, res.ProbeStats.Binary, res.ProbeStats.Index)
			}
			return
		}
		elapsed := time.Since(qStart)
		if !*silent {
			fmt.Println(strings.Join(res.Vars, "\t"))
			for i, row := range res.Rows {
				if *maxRows > 0 && i >= *maxRows {
					fmt.Printf("... (%d more rows)\n", len(res.Rows)-i)
					break
				}
				fmt.Println(strings.Join(row, "\t"))
			}
		}
		fmt.Fprintf(os.Stderr, "%d rows in %v (probes: %d sequential, %d binary, %d index)\n",
			res.Count, elapsed.Round(time.Microsecond),
			res.ProbeStats.Sequential, res.ProbeStats.Binary, res.ProbeStats.Index)
	}

	switch {
	case *queryText != "":
		runOne(*queryText)
	case *queryFile != "":
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parj:", err)
			os.Exit(1)
		}
		runOne(string(b))
	default:
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		fmt.Fprintln(os.Stderr, "enter one SPARQL query per line (empty line quits):")
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				break
			}
			runOne(line)
		}
	}
}

func parseStrategy(s string) (parj.Strategy, error) {
	switch strings.ToLower(s) {
	case "binary":
		return parj.BinaryOnly, nil
	case "adbinary", "":
		return parj.AdaptiveBinary, nil
	case "index":
		return parj.IndexOnly, nil
	case "adindex":
		return parj.AdaptiveIndex, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (binary, adbinary, index, adindex)", s)
	}
}
