// Command datagen writes LUBM-like or WatDiv-like synthetic RDF datasets
// as N-Triples.
//
// Usage:
//
//	datagen -benchmark lubm -scale 64 -out lubm64.nt
//	datagen -benchmark watdiv -scale 10            # writes to stdout
//	datagen -benchmark lubm -scale 4 -queries      # print the workload
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"parj/internal/lubm"
	"parj/internal/rdf"
	"parj/internal/watdiv"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "lubm", "dataset family: lubm or watdiv")
		scale     = flag.Int("scale", 1, "scale factor (universities for lubm, scale units for watdiv)")
		out       = flag.String("out", "", "output file (default stdout)")
		queries   = flag.Bool("queries", false, "print the benchmark's query workload instead of data")
	)
	flag.Parse()

	if *queries {
		printQueries(*benchmark)
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		w = bw
	}
	nt := rdf.NewWriter(w)
	n := 0
	emit := func(t rdf.Triple) {
		if err := nt.Write(t); err != nil {
			fmt.Fprintln(os.Stderr, "datagen: write:", err)
			os.Exit(1)
		}
		n++
	}
	switch *benchmark {
	case "lubm":
		lubm.Generate(*scale, lubm.Config{}, emit)
	case "watdiv":
		watdiv.Generate(*scale, watdiv.Config{}, emit)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown benchmark %q (lubm, watdiv)\n", *benchmark)
		os.Exit(2)
	}
	if err := nt.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen: flush:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d triples (%s scale %d)\n", n, *benchmark, *scale)
}

func printQueries(benchmark string) {
	switch benchmark {
	case "lubm":
		for _, q := range lubm.Queries() {
			fmt.Printf("# %s\n%s\n\n", q.Name, q.SPARQL)
		}
	case "watdiv":
		for _, q := range watdiv.AllQueries() {
			fmt.Printf("# %s (%s)\n%s\n\n", q.Name, q.Group, q.SPARQL)
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown benchmark %q\n", benchmark)
		os.Exit(2)
	}
}
