// Command parj-bench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	parj-bench -exp table2                 # LUBM engine comparison
//	parj-bench -exp table3 -watdiv-scale 20
//	parj-bench -exp table5 -repeats 10
//	parj-bench -exp all -lubm-scale 32    # everything, smaller LUBM
//	parj-bench -exp table5 -json -out docs/results   # machine-readable medians
//
// Experiments: table2, table3, table4, table5, table6, fig2, fig3, skew,
// cyclic. Scales default to laptop-friendly sizes; the paper's own scales
// (LUBM 10240, WatDiv 1000) need a large-memory server, exactly as in the
// paper.
//
// With -json, the experiment (table5, skew or cyclic) is measured over
// interleaved A/B blocks and written as BENCH_<name>.json into -out; CI
// diffs these files across commits (see internal/bench/json.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"parj/internal/bench"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment id or 'all'")
		lubmScale   = flag.Int("lubm-scale", 64, "LUBM universities")
		watdivScale = flag.Int("watdiv-scale", 10, "WatDiv scale units")
		threads     = flag.Int("threads", 0, "multi-thread worker count (0 = 16, simulated if the host has fewer cores)")
		repeats     = flag.Int("repeats", 3, "timed runs per query")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-query timeout")
		quiet       = flag.Bool("quiet", false, "suppress per-measurement progress on stderr")
		format      = flag.String("format", "table", "output format: table or csv")
		jsonMode    = flag.Bool("json", false, "write machine-readable BENCH_<name>.json reports instead of tables")
		outDir      = flag.String("out", ".", "directory for -json reports")
		blocks      = flag.Int("blocks", 5, "interleaved measurement blocks per query in -json mode")
	)
	flag.Parse()
	if *exp == "" {
		fmt.Fprintf(os.Stderr, "parj-bench: -exp is required (one of %s, or 'all')\n",
			strings.Join(bench.Experiments(), ", "))
		os.Exit(2)
	}
	cfg := bench.ExpConfig{
		LUBMScale:   *lubmScale,
		WatDivScale: *watdivScale,
		Threads:     *threads,
		Repeats:     *repeats,
		Timeout:     *timeout,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	names := []string{*exp}
	if *exp == "all" {
		names = bench.Experiments()
		if *jsonMode {
			names = bench.JSONExperiments()
		}
	}
	if *jsonMode {
		for _, name := range names {
			start := time.Now()
			rep, err := bench.RunJSONExperiment(name, cfg, *blocks)
			if err != nil {
				fmt.Fprintln(os.Stderr, "parj-bench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, "BENCH_"+name+".json")
			if err := rep.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "parj-bench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "[%s written to %s in %v]\n", name, path, time.Since(start).Round(time.Second))
		}
		return
	}
	for _, name := range names {
		start := time.Now()
		tab, err := bench.Run(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parj-bench:", err)
			os.Exit(1)
		}
		if *format == "csv" {
			fmt.Print(tab.CSV())
			fmt.Println()
		} else {
			fmt.Println(tab.String())
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Second))
	}
}
