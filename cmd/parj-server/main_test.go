package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"parj"
)

func testDB(t *testing.T, n int, opts parj.DBOptions) *parj.Store {
	t.Helper()
	b := parj.NewBuilder(parj.LoadOptions{DB: opts})
	for i := 0; i < n; i++ {
		b.Add(fmt.Sprintf("<l%d>", i), "<p>", fmt.Sprintf("<r%d>", i))
		b.Add(fmt.Sprintf("<x%d>", i), "<q>", fmt.Sprintf("<y%d>", i))
	}
	return b.Build()
}

func TestQueryEndpoint(t *testing.T) {
	db := testDB(t, 10, parj.DBOptions{})
	srv := httptest.NewServer(newHandler(db, parj.QueryOptions{Timeout: 5 * time.Second}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query?query=" + url.QueryEscape(`SELECT ?a ?b WHERE { ?a <p> ?b }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 10 || len(out.Rows) != 10 || len(out.Vars) != 2 {
		t.Fatalf("got %+v", out)
	}

	// POST body form.
	resp2, err := http.PostForm(srv.URL+"/query", url.Values{"query": {`SELECT ?a WHERE { ?a <p> ?b }`}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("POST form status %d", resp2.StatusCode)
	}

	// POST raw body.
	resp3, err := http.Post(srv.URL+"/query", "application/sparql-query",
		strings.NewReader(`SELECT ?a WHERE { ?a <p> ?b }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("POST body status %d", resp3.StatusCode)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	db := testDB(t, 200, parj.DBOptions{})
	srv := httptest.NewServer(newHandler(db, parj.QueryOptions{Timeout: 5 * time.Second}))
	defer srv.Close()

	get := func(t *testing.T, q string, extra string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + "/query?query=" + url.QueryEscape(q) + extra)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get(t, `SELECT WHERE garbage`, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("parse error status %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(srv.URL + "/query"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query status %d, want 400", resp.StatusCode)
	}
}

func TestBudgetMapsTo413(t *testing.T) {
	db := testDB(t, 200, parj.DBOptions{})
	srv := httptest.NewServer(newHandler(db, parj.QueryOptions{MaxResultRows: 100}))
	defer srv.Close()

	// 200×200 cross product against a 100-row budget.
	resp, err := http.Get(srv.URL + "/query?silent=1&query=" +
		url.QueryEscape(`SELECT ?a ?b ?c ?d WHERE { ?a <p> ?b . ?c <q> ?d }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("budget status %d, want 413", resp.StatusCode)
	}
	var out errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Error == "" {
		t.Fatalf("error body %+v (%v)", out, err)
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	db := testDB(t, 4000, parj.DBOptions{})
	srv := httptest.NewServer(newHandler(db, parj.QueryOptions{Timeout: 10 * time.Millisecond}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query?silent=1&query=" +
		url.QueryEscape(`SELECT ?a ?b ?c ?d WHERE { ?a <p> ?b . ?c <q> ?d }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline status %d, want 504", resp.StatusCode)
	}
}

func TestOverloadMapsTo503(t *testing.T) {
	db := testDB(t, 4000, parj.DBOptions{MaxConcurrentQueries: 1})
	srv := httptest.NewServer(newHandler(db, parj.QueryOptions{Timeout: 30 * time.Second}))
	defer srv.Close()

	// Saturate the single slot with a slow cross product, then probe.
	slow := make(chan struct{})
	go func() {
		defer close(slow)
		resp, err := http.Get(srv.URL + "/query?silent=1&query=" +
			url.QueryEscape(`SELECT ?a ?b ?c ?d WHERE { ?a <p> ?b . ?c <q> ?d }`))
		if err == nil {
			resp.Body.Close()
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/query?silent=1&query=" +
			url.QueryEscape(`SELECT ?a WHERE { ?a <p> ?b }`))
		if err != nil {
			t.Fatal(err)
		}
		status := resp.StatusCode
		retry := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if status == http.StatusServiceUnavailable {
			if retry == "" {
				t.Error("503 without Retry-After")
			}
			break
		}
		// The slow query may not be admitted yet (or already finished —
		// then the test dataset needs to be slower); keep probing briefly.
		if time.Now().After(deadline) {
			t.Fatalf("never observed 503; last status %d", status)
		}
		time.Sleep(time.Millisecond)
	}
	<-slow
}

func TestHealthz(t *testing.T) {
	db := testDB(t, 5, parj.DBOptions{MaxConcurrentQueries: 4})
	srv := httptest.NewServer(newHandler(db, parj.QueryOptions{}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" || out["triples"] != float64(10) || out["inflight"] != float64(0) {
		t.Fatalf("healthz body %+v", out)
	}
}

// TestReadyzLifecycle walks the serving lifecycle: not-ready while the
// store loads (queries shed with 503 + Retry-After), ready after load,
// not-ready again the moment draining starts.
func TestReadyzLifecycle(t *testing.T) {
	state := &serverState{}
	srv := httptest.NewServer(newStateHandler(state, parj.QueryOptions{}))
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while loading = %d, want 503", resp.StatusCode)
	}
	resp := get("/query?query=" + url.QueryEscape(`SELECT ?a ?b WHERE { ?a <p> ?b }`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while loading = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 while loading missing Retry-After")
	}
	// Liveness stays 200 throughout: the process is up, just not serving.
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while loading = %d, want 200", resp.StatusCode)
	}

	state.setStore(testDB(t, 5, parj.DBOptions{}))
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after load = %d, want 200", resp.StatusCode)
	}
	if resp := get("/query?query=" + url.QueryEscape(`SELECT ?a ?b WHERE { ?a <p> ?b }`)); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after load = %d, want 200", resp.StatusCode)
	}

	state.startDrain()
	if resp := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", resp.StatusCode)
	}
}

func TestStatusForTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{parj.ErrOverloaded, http.StatusServiceUnavailable},
		{parj.ErrDeadlineExceeded, http.StatusGatewayTimeout},
		{parj.ErrCanceled, http.StatusGatewayTimeout},
		{parj.ErrBudgetExceeded, http.StatusRequestEntityTooLarge},
		{&parj.PanicError{Value: "boom"}, http.StatusInternalServerError},
		{fmt.Errorf("parse error"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
