// Command parj-server exposes a loaded store over HTTP — the hardened
// serving path of the robustness layer. Every request runs under a deadline,
// a row/memory budget, and the store-wide admission limiter, so a hostile
// query (the 1.6-billion-row cross products of the paper's §5.2 discussion)
// degrades into a typed HTTP error instead of taking the process down.
//
// Usage:
//
//	parj-server -data graph.nt -addr :8080 -timeout 30s -max-concurrent 8
//
// Endpoints:
//
//	GET  /query?query=SELECT...   execute a SPARQL query, JSON response
//	POST /query                   query in the body (or form field "query")
//	POST /write                   apply a write batch ({"inserts":[...],"deletes":[...]})
//	POST /reconcile               merge pending writes into a fresh base store
//	GET  /healthz                 liveness + load signal
//	GET  /readyz                  readiness: 503 while loading or draining
//
// The listener comes up before the store load finishes, so orchestrators
// can watch /readyz flip from 503 to 200 instead of timing out on a closed
// port; /readyz flips back to 503 the moment a drain starts.
//
// Status mapping: 400 unparsable query, 413 budget exceeded, 503 overloaded
// (with Retry-After), 504 deadline exceeded or client gone, 500 contained
// engine fault. SIGINT/SIGTERM drains in-flight queries before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"parj"
	"parj/internal/rdf"
)

func main() {
	var (
		dataPath      = flag.String("data", "", "N-Triples or .snapshot file to load (required)")
		addr          = flag.String("addr", ":8080", "listen address")
		threads       = flag.Int("threads", 0, "worker threads per query (0 = GOMAXPROCS)")
		noIndex       = flag.Bool("noindex", false, "skip building ID-to-Position indexes")
		timeout       = flag.Duration("timeout", 30*time.Second, "per-query wall-clock limit (0 = none)")
		maxConcurrent = flag.Int("max-concurrent", 8, "queries executing at once; further ones queue then shed (0 = unlimited)")
		admissionWait = flag.Duration("admission-wait", 2*time.Second, "how long an over-admission query queues before 503")
		admTarget     = flag.Duration("admission-target", 0, "adaptive admission: shed once queue sojourn stays above this target (0 = fixed-wait queue)")
		admInterval   = flag.Duration("admission-interval", 0, "adaptive admission control window (0 = 100ms default)")
		maxRows       = flag.Int64("max-rows", 10_000_000, "per-query produced-row budget (0 = unlimited)")
		memBudget     = flag.Int64("memory-budget", 1<<30, "per-query materialized-result byte budget (0 = unlimited)")
		sharedBudget  = flag.Int64("shared-memory-budget", 0, "materialized-result byte budget shared across ALL concurrent queries (0 = unlimited)")
		drainTimeout  = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain limit")
		reconcileOps  = flag.Int("reconcile-ops", 4096, "pending write verdicts that trigger background reconciliation (0 = only on explicit /reconcile)")
		walDir        = flag.String("wal", "", "write-ahead-log directory; makes the store durable (recovers on start, journals every write)")
		walSync       = flag.String("wal-sync", "always", "WAL fsync policy: always (group commit), interval, never")
		walSyncIntv   = flag.Duration("wal-sync-interval", 50*time.Millisecond, "flush period under -wal-sync=interval")
		ckptOps       = flag.Int("checkpoint-ops", 4096, "write batches between automatic checkpoints (0 = never checkpoint automatically)")
		ckptIntv      = flag.Duration("checkpoint-interval", time.Minute, "how often the checkpoint loop looks at the write position")
	)
	flag.Parse()
	// A durable server can start bare: recovery rebuilds the store from its
	// own WAL directory, -data only seeds the very first boot.
	if *dataPath == "" && *walDir == "" {
		fmt.Fprintln(os.Stderr, "parj-server: -data is required (or -wal for a durable store)")
		flag.Usage()
		os.Exit(2)
	}
	syncPolicy, err := parj.ParseSyncPolicy(*walSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parj-server:", err)
		os.Exit(2)
	}

	// Listen first, load second: /readyz answers 503 while the store loads
	// so orchestrators see "starting", not "dead".
	state := &serverState{}
	srv := &http.Server{
		Addr: *addr,
		Handler: newStateHandler(state, parj.QueryOptions{
			Threads:       *threads,
			Timeout:       *timeout,
			MaxResultRows: *maxRows,
			MemoryBudget:  *memBudget,
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	start := time.Now()
	loadOpts := parj.LoadOptions{
		PosIndex: !*noIndex,
		DB: parj.DBOptions{
			MaxConcurrentQueries: *maxConcurrent,
			AdmissionWait:        *admissionWait,
			AdmissionTarget:      *admTarget,
			AdmissionInterval:    *admInterval,
			SharedMemoryBudget:   *sharedBudget,
			AutoReconcileOps:     *reconcileOps,
		},
	}
	var db *parj.Store
	if *walDir != "" {
		loadOpts.DB.Durability = parj.Durability{
			Dir:          *walDir,
			Sync:         syncPolicy,
			SyncInterval: *walSyncIntv,
		}
		var seed func() ([]parj.Triple, error)
		if *dataPath != "" {
			seed = func() ([]parj.Triple, error) { return readNTriples(*dataPath) }
		}
		db, err = parj.Open(loadOpts, seed)
	} else {
		db, err = parj.LoadFile(*dataPath, loadOpts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parj-server: load:", err)
		srv.Close()
		os.Exit(1)
	}
	state.setStore(db)
	fmt.Fprintf(os.Stderr, "loaded %d triples in %v; serving on %s\n",
		db.NumTriples(), time.Since(start).Round(time.Millisecond), *addr)

	// The checkpoint loop bounds recovery time: once enough write batches
	// accumulate past the newest checkpoint, the current view is snapshotted
	// and the covered WAL segments pruned.
	ckptStop := make(chan struct{})
	var ckptDone chan struct{}
	if *walDir != "" && *ckptOps > 0 {
		ckptDone = make(chan struct{})
		go func() {
			defer close(ckptDone)
			t := time.NewTicker(*ckptIntv)
			defer t.Stop()
			for {
				select {
				case <-ckptStop:
					return
				case <-t.C:
					d := db.DurabilityStats()
					if db.WriteSeq() >= d.CheckpointSeq+uint64(*ckptOps) {
						if err := db.Checkpoint(); err != nil {
							fmt.Fprintln(os.Stderr, "parj-server: checkpoint:", err)
						}
					}
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "parj-server: draining in-flight queries...")
		state.startDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Drain limit hit: sever the remaining connections; their
			// request contexts cancel the still-running queries.
			srv.Close()
		}
		if ckptDone != nil {
			close(ckptStop)
			<-ckptDone
		}
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "parj-server: close:", err)
		}
	}()

	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "parj-server:", err)
		os.Exit(1)
	}
	<-done
}

// serverState tracks the serving lifecycle: the store appears once loading
// finishes, and draining flips readiness off while in-flight work drains.
type serverState struct {
	db       atomic.Pointer[parj.Store]
	draining atomic.Bool
}

func (s *serverState) setStore(db *parj.Store) { s.db.Store(db) }
func (s *serverState) startDrain()             { s.draining.Store(true) }
func (s *serverState) store() *parj.Store      { return s.db.Load() }
func (s *serverState) ready() bool             { return s.db.Load() != nil && !s.draining.Load() }

// queryResponse is the JSON shape of a successful /query call.
type queryResponse struct {
	Vars  []string   `json:"vars"`
	Rows  [][]string `json:"rows,omitempty"`
	Count int64      `json:"count"`
	Took  string     `json:"took"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeRequest is the JSON shape of a /write body: term-string triples to
// insert and delete. Deletes apply before inserts.
type writeRequest struct {
	Inserts []parj.Triple `json:"inserts,omitempty"`
	Deletes []parj.Triple `json:"deletes,omitempty"`
}

// writeResponse reports the store's write-stream position after a write or
// a reconciliation.
type writeResponse struct {
	Seq     uint64 `json:"seq"`
	Pending int    `json:"pending"`
	Epoch   uint64 `json:"epoch"`
}

// newHandler wires the serving mux for an already-loaded db; split from
// main so tests can drive it through httptest without a process or sockets.
func newHandler(db *parj.Store, base parj.QueryOptions) http.Handler {
	state := &serverState{}
	state.setStore(db)
	return newStateHandler(state, base)
}

// newStateHandler wires the mux over the serving lifecycle: before the
// store is loaded, /query sheds with 503 and /readyz reports not-ready.
func newStateHandler(state *serverState, base parj.QueryOptions) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		db := state.store()
		if db == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("server is still loading"))
			return
		}
		src, err := querySource(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		opts := base
		// The request context carries the client disconnect; Timeout layers
		// the server's deadline on top.
		opts.Context = r.Context()
		opts.Silent = r.URL.Query().Get("silent") == "1"

		start := time.Now()
		res, err := db.Query(src, opts)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(queryResponse{
			Vars:  res.Vars,
			Rows:  res.Rows,
			Count: res.Count,
			Took:  time.Since(start).Round(time.Microsecond).String(),
		})
	})

	mux.HandleFunc("/write", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		db := state.store()
		if db == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("server is still loading"))
			return
		}
		const maxWriteBytes = 64 << 20
		r.Body = http.MaxBytesReader(w, r.Body, maxWriteBytes)
		var req writeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding write: %w", err))
			return
		}
		// One batch, deletes before inserts — the batch order of the write
		// path. On a durable store Write returns only once the WAL's sync
		// policy acknowledged the batch; a failure after a non-zero
		// sequence means durability is unknown and the client must treat
		// the write as lost.
		if _, err := db.Write(req.Inserts, req.Deletes); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(writeResponse{
			Seq:     db.WriteSeq(),
			Pending: db.PendingWrites(),
			Epoch:   db.Epoch(),
		})
	})

	mux.HandleFunc("/reconcile", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		db := state.store()
		if db == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("server is still loading"))
			return
		}
		db.Reconcile()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(writeResponse{
			Seq:     db.WriteSeq(),
			Pending: db.PendingWrites(),
			Epoch:   db.Epoch(),
		})
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var triples, inflight int64
		if db := state.store(); db != nil {
			triples = int64(db.NumTriples())
			inflight = int64(db.InFlightQueries())
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":   "ok",
			"triples":  triples,
			"inflight": inflight,
			"ready":    state.ready(),
		})
	})

	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !state.ready() {
			writeError(w, http.StatusServiceUnavailable, errors.New("not ready"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"ready": true})
	})

	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{"ready": state.ready()}
		if db := state.store(); db != nil {
			a := db.AdmissionStats()
			body["triples"] = db.NumTriples()
			body["in_flight"] = a.InFlight
			body["admitted"] = a.Admitted
			body["sheds"] = a.Sheds
			body["expired"] = a.Expired
			body["queue_delay_ms"] = float64(a.QueueDelay) / float64(time.Millisecond)
			body["shedding"] = a.Shedding
			body["pool_used"] = a.PoolUsed
			body["pool_capacity"] = a.PoolCapacity
			body["write_seq"] = db.WriteSeq()
			if d := db.DurabilityStats(); d.Enabled {
				body["wal_enabled"] = true
				body["wal_durable_seq"] = d.DurableSeq
				body["wal_first_seq"] = d.FirstSeq
				body["wal_checkpoint_seq"] = d.CheckpointSeq
				body["wal_segments"] = d.Segments
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	})

	return mux
}

// readNTriples parses an N-Triples file into public triples — the seed for
// a durable store's first boot.
func readNTriples(path string) ([]parj.Triple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []parj.Triple
	rd := rdf.NewReader(f)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, parj.Triple(t))
	}
}

// querySource extracts the SPARQL text from a query parameter, a form
// field, or the raw request body, in that order. Bodies are capped so a
// parser bomb is a 400, not an allocation.
func querySource(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("query"); q != "" {
		return q, nil
	}
	if r.Method == http.MethodPost {
		const maxQueryBytes = 1 << 20
		r.Body = http.MaxBytesReader(nil, r.Body, maxQueryBytes)
		if err := r.ParseForm(); err == nil {
			if q := r.PostForm.Get("query"); q != "" {
				return q, nil
			}
		}
		b, err := io.ReadAll(r.Body)
		if err != nil {
			return "", fmt.Errorf("reading query body: %w", err)
		}
		if q := strings.TrimSpace(string(b)); q != "" {
			return q, nil
		}
	}
	return "", errors.New("missing query: pass ?query=, a form field, or a POST body")
}

// statusFor maps the typed governance taxonomy onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, parj.ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, parj.ErrDeadlineExceeded), errors.Is(err, parj.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, parj.ErrBudgetExceeded):
		return http.StatusRequestEntityTooLarge
	default:
		var pe *parj.PanicError
		if errors.As(err, &pe) {
			return http.StatusInternalServerError
		}
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		// The adaptive admission controller attaches a backoff hint to its
		// sheds; surface it (rounded up to whole seconds, minimum 1).
		secs := int((parj.RetryAfter(err) + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
