package parj

import (
	"errors"
	"testing"
	"time"

	"parj/internal/testutil"
)

// TestSharedMemoryPoolRace pins the store-wide memory pool's contract
// under contention: when two materializing queries race for a budget that
// can only hold one, the loser fails with typed ErrBudgetExceeded, the
// winner's result is oracle-exact, and every failed or finished query
// returns all of its bytes to the pool.
func TestSharedMemoryPoolRace(t *testing.T) {
	defer testutil.LeakCheck(t)()
	const n = 64 // 4096-row cross product, ~tens of KB materialized
	db := crossStore(n)
	want := int64(n * n)

	// Calibrate the smallest power-of-two budget that admits ONE query.
	// Every failing budget below it doubles as a typed-error check, and
	// because the query did not fit in budget/2, two concurrent runs
	// cannot both fit in budget — the race below has a guaranteed loser.
	budget := int64(1 << 8)
	for {
		db.SetDBOptions(DBOptions{SharedMemoryBudget: budget})
		res, err := db.Query(crossQuery, QueryOptions{Threads: 2})
		if err == nil {
			if res.Count != want {
				t.Fatalf("calibration query count %d, want %d", res.Count, want)
			}
			break
		}
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("budget %d failure is not typed ErrBudgetExceeded: %v", budget, err)
		}
		if used := db.AdmissionStats().PoolUsed; used != 0 {
			t.Fatalf("failed query left %d bytes charged in the pool", used)
		}
		budget <<= 1
		if budget > 1<<32 {
			t.Fatal("calibration runaway — query never fits")
		}
	}
	if budget == 1<<8 {
		t.Fatalf("query fits in %d bytes — fixture too small to contend for the pool", budget)
	}

	// The race: pairs of concurrent queries at a budget that holds exactly
	// one. Charging is amortized per worker, so an unlucky interleaving can
	// fail both — rounds repeat until both a winner and a loser have been
	// seen. Each round must drain the pool completely.
	type out struct {
		count int64
		err   error
	}
	var sawWin, sawLose bool
	for round := 0; round < 50 && !(sawWin && sawLose); round++ {
		start := make(chan struct{})
		outs := make(chan out, 2)
		for w := 0; w < 2; w++ {
			go func(w int) {
				<-start
				if w == 1 {
					// A head start for worker 0 biases toward a clean
					// winner/loser split without removing the race.
					time.Sleep(200 * time.Microsecond)
				}
				res, err := db.Query(crossQuery, QueryOptions{Threads: 2})
				if err != nil {
					outs <- out{0, err}
					return
				}
				outs <- out{res.Count, nil}
			}(w)
		}
		close(start)
		for i := 0; i < 2; i++ {
			o := <-outs
			if o.err == nil {
				if o.count != want {
					t.Fatalf("round %d: winner count %d, want %d — partial result under pool pressure", round, o.count, want)
				}
				sawWin = true
			} else {
				if !errors.Is(o.err, ErrBudgetExceeded) {
					t.Fatalf("round %d: loser error is not typed ErrBudgetExceeded: %v", round, o.err)
				}
				sawLose = true
			}
		}
		if used := db.AdmissionStats().PoolUsed; used != 0 {
			t.Fatalf("round %d left %d bytes charged in the pool", round, used)
		}
	}
	if !sawWin || !sawLose {
		t.Fatalf("50 rounds of racing never produced both outcomes (winner=%v, loser=%v)", sawWin, sawLose)
	}

	// The pool is drained, so a lone query still has the whole budget.
	res, err := db.Query(crossQuery, QueryOptions{Threads: 2})
	if err != nil {
		t.Fatalf("post-race query failed: %v", err)
	}
	if res.Count != want {
		t.Fatalf("post-race count %d, want %d", res.Count, want)
	}
}
