package parj

import "testing"

func ontologyStore(t *testing.T) *Store {
	t.Helper()
	b := NewBuilder(LoadOptions{PosIndex: true})
	b.Add("<Student>", "<http://www.w3.org/2000/01/rdf-schema#subClassOf>", "<Person>")
	b.Add("<hasAdvisor>", "<http://www.w3.org/2000/01/rdf-schema#subPropertyOf>", "<knows>")
	b.Add("<alice>", "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>", "<Student>")
	b.Add("<bob>", "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>", "<Person>")
	b.Add("<alice>", "<hasAdvisor>", "<carol>")
	b.Add("<dave>", "<knows>", "<alice>")
	return b.Build()
}

func TestEntailmentOption(t *testing.T) {
	db := ontologyStore(t)
	const personQ = `SELECT ?x WHERE { ?x a <Person> }`
	plain, err := db.Count(personQ, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain != 1 {
		t.Errorf("plain persons = %d, want 1 (bob)", plain)
	}
	entailed, err := db.Count(personQ, QueryOptions{Entailment: true})
	if err != nil {
		t.Fatal(err)
	}
	if entailed != 2 {
		t.Errorf("entailed persons = %d, want 2 (bob + alice via Student)", entailed)
	}

	const knowsQ = `SELECT ?x ?y WHERE { ?x <knows> ?y }`
	plain, _ = db.Count(knowsQ, QueryOptions{})
	entailed, _ = db.Count(knowsQ, QueryOptions{Entailment: true})
	if plain != 1 || entailed != 2 {
		t.Errorf("knows: plain=%d (want 1), entailed=%d (want 2)", plain, entailed)
	}
}

func TestEntailmentWithoutOntologyIsPlain(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	q := `SELECT ?x ?y WHERE { ?x <knows> ?y }`
	plain, err := db.Count(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	entailed, err := db.Count(q, QueryOptions{Entailment: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain != entailed {
		t.Errorf("no-ontology data: plain=%d entailed=%d", plain, entailed)
	}
}
