package parj

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSnapshotAPIRoundTrip(t *testing.T) {
	db := familyStore(t, LoadOptions{PosIndex: true})
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	db2, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if db2.NumTriples() != db.NumTriples() {
		t.Fatalf("triples %d != %d", db2.NumTriples(), db.NumTriples())
	}
	n, err := db2.Count(`SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <knows> ?z }`,
		QueryOptions{Strategy: AdaptiveIndex})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("count after snapshot reload = %d, want 2", n)
	}
}

func TestSnapshotFileRoundTripViaLoadFile(t *testing.T) {
	db := familyStore(t, LoadOptions{})
	path := filepath.Join(t.TempDir(), "family.snapshot")
	if err := db.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	// LoadFile dispatches on the .snapshot suffix.
	db2, err := LoadFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := db2.Count(`SELECT ?x ?y WHERE { ?x <knows> ?y }`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("count = %d, want 3", n)
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := LoadSnapshot(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
}
