module parj

go 1.22
