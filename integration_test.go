package parj_test

// End-to-end integration tests: generate benchmark data, round-trip it
// through N-Triples, load it into every engine, and cross-check results —
// the full pipeline a user of the repository exercises.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"parj"
	"parj/internal/baseline/hashjoin"
	"parj/internal/baseline/rdf3x"
	"parj/internal/baseline/triad"
	"parj/internal/lubm"
	"parj/internal/rdf"
	"parj/internal/sparql"
	"parj/internal/watdiv"
)

// TestPipelineLUBM drives generate → serialize → parse → load → query for
// the LUBM-like workload and cross-checks all engines.
func TestPipelineLUBM(t *testing.T) {
	triples := lubm.Triples(2, lubm.Config{})

	// Round-trip through N-Triples bytes, as a user loading a file would.
	var buf bytes.Buffer
	w := rdf.NewWriter(&buf)
	for _, tr := range triples {
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	db, err := parj.Load(&buf, parj.LoadOptions{PosIndex: true})
	if err != nil {
		t.Fatal(err)
	}

	hj := hashjoin.Load(triples)
	r3x := rdf3x.Load(triples)
	tr := triad.Load(triples, triad.Options{Workers: 4})

	if db.NumTriples() != hj.NumTriples() || db.NumTriples() != r3x.NumTriples() ||
		db.NumTriples() != tr.NumTriples() {
		t.Fatalf("engines loaded different triple counts: %d %d %d %d",
			db.NumTriples(), hj.NumTriples(), r3x.NumTriples(), tr.NumTriples())
	}

	for _, q := range lubm.Queries() {
		parsed, err := sparql.Parse(q.SPARQL)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		want, err := db.Count(q.SPARQL, parj.QueryOptions{Threads: 3, Strategy: parj.AdaptiveIndex})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		for name, count := range map[string]func() (int64, error){
			"hashjoin": func() (int64, error) { return hj.Count(parsed) },
			"rdf3x":    func() (int64, error) { return r3x.Count(parsed) },
			"triad":    func() (int64, error) { return tr.Count(parsed) },
		} {
			got, err := count()
			if err != nil {
				t.Fatalf("%s/%s: %v", q.Name, name, err)
			}
			if got != want {
				t.Errorf("%s: %s count %d != parj %d", q.Name, name, got, want)
			}
		}
	}
}

// TestPipelineWatDiv cross-checks the full WatDiv workload between PARJ
// strategies and the triad baseline (the fastest competitor).
func TestPipelineWatDiv(t *testing.T) {
	triples := watdiv.Triples(1, watdiv.Config{})
	b := parj.NewBuilder(parj.LoadOptions{PosIndex: true})
	for _, tr := range triples {
		b.Add(tr.S, tr.P, tr.O)
	}
	db := b.Build()
	tri := triad.Load(triples, triad.Options{Workers: 3, SummaryBuckets: 32})

	for _, q := range watdiv.AllQueries() {
		parsed, err := sparql.Parse(q.SPARQL)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		base, err := db.Count(q.SPARQL, parj.QueryOptions{Threads: 1, Strategy: parj.AdaptiveBinary})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		multi, err := db.Count(q.SPARQL, parj.QueryOptions{Threads: 5, Strategy: parj.IndexOnly})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		tc, err := tri.Count(parsed)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if base != multi || base != tc {
			t.Errorf("%s: counts diverge: 1-thread=%d 5-thread-index=%d triad-sg=%d",
				q.Name, base, multi, tc)
		}
	}
}

// TestSnapshotPreservesQueryResults loads LUBM data, snapshots it, reloads,
// and verifies every workload query returns identical results.
func TestSnapshotPreservesQueryResults(t *testing.T) {
	b := parj.NewBuilder(parj.LoadOptions{PosIndex: true})
	lubm.Generate(1, lubm.Config{}, func(tr rdf.Triple) { b.Add(tr.S, tr.P, tr.O) })
	db := b.Build()

	var snap bytes.Buffer
	if err := db.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	db2, err := parj.LoadSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range lubm.Queries() {
		a, err := db.Query(q.SPARQL, parj.QueryOptions{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		b, err := db2.Query(q.SPARQL, parj.QueryOptions{Threads: 2, Strategy: parj.AdaptiveIndex})
		if err != nil {
			t.Fatal(err)
		}
		if a.Count != b.Count {
			t.Errorf("%s: %d rows before snapshot, %d after", q.Name, a.Count, b.Count)
		}
	}
}

// TestStreamingMatchesBufferedOnWorkload compares QueryStream against Query
// on the WatDiv basic workload.
func TestStreamingMatchesBufferedOnWorkload(t *testing.T) {
	b := parj.NewBuilder(parj.LoadOptions{})
	for _, tr := range watdiv.Triples(1, watdiv.Config{}) {
		b.Add(tr.S, tr.P, tr.O)
	}
	db := b.Build()
	for _, q := range watdiv.BasicQueries() {
		parsed, err := sparql.Parse(q.SPARQL)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.Distinct || parsed.Limit > 0 {
			continue
		}
		res, err := db.Query(q.SPARQL, parj.QueryOptions{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]int{}
		n, err := db.QueryStream(q.SPARQL, parj.QueryOptions{Threads: 2}, func(row []string) bool {
			seen[fmt.Sprint(row)]++
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if n != res.Count {
			t.Errorf("%s: streamed %d rows, buffered %d", q.Name, n, res.Count)
		}
		want := map[string]int{}
		for _, row := range res.Rows {
			want[fmt.Sprint(row)]++
		}
		if !reflect.DeepEqual(seen, want) {
			t.Errorf("%s: streamed row multiset differs", q.Name)
		}
	}
}
