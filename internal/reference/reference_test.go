package reference

import (
	"reflect"
	"testing"

	"parj/internal/rdf"
	"parj/internal/sparql"
)

var data = []rdf.Triple{
	{S: "<ProfA>", P: "<teaches>", O: "<Math>"},
	{S: "<ProfB>", P: "<teaches>", O: "<Chem>"},
	{S: "<ProfA>", P: "<teaches>", O: "<Phys>"},
	{S: "<ProfA>", P: "<worksFor>", O: "<Uni1>"},
	{S: "<ProfB>", P: "<worksFor>", O: "<Uni2>"},
}

func eval(t *testing.T, src string, triples []rdf.Triple) [][]string {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Canon(Evaluate(q, triples))
}

func TestSinglePattern(t *testing.T) {
	got := eval(t, `SELECT ?x WHERE { ?x <worksFor> <Uni1> }`, data)
	want := [][]string{{"<ProfA>"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestJoin(t *testing.T) {
	got := eval(t, `SELECT ?x ?c ?u WHERE { ?x <teaches> ?c . ?x <worksFor> ?u }`, data)
	want := [][]string{
		{"<ProfA>", "<Math>", "<Uni1>"},
		{"<ProfA>", "<Phys>", "<Uni1>"},
		{"<ProfB>", "<Chem>", "<Uni2>"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestProjectionDuplicatesAndDistinct(t *testing.T) {
	got := eval(t, `SELECT ?x WHERE { ?x <teaches> ?c }`, data)
	if len(got) != 3 {
		t.Errorf("bag projection rows = %d, want 3", len(got))
	}
	got = eval(t, `SELECT DISTINCT ?x WHERE { ?x <teaches> ?c }`, data)
	if len(got) != 2 {
		t.Errorf("distinct rows = %d, want 2", len(got))
	}
}

func TestRepeatedVariableInPattern(t *testing.T) {
	loops := append(append([]rdf.Triple{}, data...), rdf.Triple{S: "<X>", P: "<knows>", O: "<X>"})
	got := eval(t, `SELECT ?x WHERE { ?x <knows> ?x }`, loops)
	want := [][]string{{"<X>"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestVariablePredicate(t *testing.T) {
	got := eval(t, `SELECT ?p WHERE { <ProfA> ?p <Uni1> }`, data)
	want := [][]string{{"<worksFor>"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNoMatches(t *testing.T) {
	got := eval(t, `SELECT ?x WHERE { ?x <teaches> <Nothing> }`, data)
	if len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestCartesianProduct(t *testing.T) {
	got := eval(t, `SELECT ?a ?b WHERE { ?a <worksFor> <Uni1> . ?b <worksFor> <Uni2> }`, data)
	want := [][]string{{"<ProfA>", "<ProfB>"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestDedupPreservesOrder(t *testing.T) {
	rows := [][]string{{"b"}, {"a"}, {"b"}, {"c"}, {"a"}}
	got := Dedup(rows)
	want := [][]string{{"b"}, {"a"}, {"c"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestCanonOrdersRows(t *testing.T) {
	rows := [][]string{{"b", "x"}, {"a", "z"}, {"a", "y"}}
	got := Canon(rows)
	want := [][]string{{"a", "y"}, {"a", "z"}, {"b", "x"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}
