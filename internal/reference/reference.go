// Package reference provides a deliberately naive BGP evaluator used as the
// test oracle for every engine in this repository. It matches patterns by
// backtracking over a plain triple slice — O(n^k), no indexes, no cleverness
// — so its answers are easy to trust.
package reference

import (
	"sort"
	"strings"

	"parj/internal/rdf"
	"parj/internal/sparql"
)

// Evaluate computes the projected result rows of q over triples. Rows
// follow bag semantics (one row per distinct full-BGP binding, so
// projection can produce duplicates) unless q.Distinct is set. A positive
// LIMIT is ignored (the oracle's callers compare complete result
// multisets), but LIMIT 0 yields no rows, as in SPARQL.
func Evaluate(q *sparql.Query, triples []rdf.Triple) [][]string {
	if q.HasLimit && q.Limit == 0 {
		return nil
	}
	proj := q.Projection()
	binding := map[string]string{}
	var rows [][]string
	match(q.Patterns, triples, binding, func() {
		row := make([]string, len(proj))
		for i, v := range proj {
			row[i] = binding[v]
		}
		rows = append(rows, row)
	})
	if q.Distinct {
		rows = Dedup(rows)
	}
	return rows
}

func match(patterns []sparql.TriplePattern, triples []rdf.Triple, binding map[string]string, emit func()) {
	if len(patterns) == 0 {
		emit()
		return
	}
	tp := patterns[0]
	for _, tr := range triples {
		var bound []string
		ok := true
		for _, pair := range [3]struct {
			term  sparql.Term
			value string
		}{{tp.S, tr.S}, {tp.P, tr.P}, {tp.O, tr.O}} {
			if !pair.term.IsVar() {
				if pair.term.Value != pair.value {
					ok = false
					break
				}
				continue
			}
			if prev, exists := binding[pair.term.Var]; exists {
				if prev != pair.value {
					ok = false
					break
				}
				continue
			}
			binding[pair.term.Var] = pair.value
			bound = append(bound, pair.term.Var)
		}
		if ok {
			match(patterns[1:], triples, binding, emit)
		}
		for _, v := range bound {
			delete(binding, v)
		}
	}
}

// Dedup removes duplicate rows, preserving first occurrence order.
func Dedup(rows [][]string) [][]string {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		key := strings.Join(r, "\x00")
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}

// Canon sorts rows lexicographically so result multisets can be compared
// with reflect.DeepEqual. It sorts in place and returns its argument.
func Canon(rows [][]string) [][]string {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return rows
}
