// Package reference provides a deliberately naive BGP evaluator used as the
// test oracle for every engine in this repository. It matches patterns by
// backtracking over a plain triple slice — O(n^k), no indexes, no cleverness
// — so its answers are easy to trust.
package reference

import (
	"fmt"
	"sort"
	"strings"

	"parj/internal/rdf"
	"parj/internal/sparql"
)

// Evaluate computes the projected result rows of q over triples. Rows
// follow bag semantics (one row per distinct full-BGP binding, so
// projection can produce duplicates) unless q.Distinct is set. A positive
// LIMIT is ignored (the oracle's callers compare complete result
// multisets), but LIMIT 0 yields no rows, as in SPARQL.
func Evaluate(q *sparql.Query, triples []rdf.Triple) [][]string {
	rows, _ := EvaluateBudget(q, triples, 0)
	return rows
}

// EvaluateBudget is Evaluate with a cost cap: every triple examined during
// backtracking counts one unit, and the evaluation aborts once the count
// exceeds budget (budget <= 0 means unlimited). It reports the rows and
// whether the evaluation completed within budget; on abort the partial rows
// must not be used. Differential harnesses use the cap to skip randomly
// generated (dataset, query) pairs whose naive cost explodes, keeping skip
// decisions deterministic.
func EvaluateBudget(q *sparql.Query, triples []rdf.Triple, budget int64) ([][]string, bool) {
	if q.HasLimit && q.Limit == 0 {
		return nil, true
	}
	proj := q.Projection()
	binding := map[string]string{}
	var rows [][]string
	ok := match(q.Patterns, triples, binding, &budget, func() {
		row := make([]string, len(proj))
		for i, v := range proj {
			row[i] = binding[v]
		}
		rows = append(rows, row)
	})
	if !ok {
		return nil, false
	}
	if q.Distinct {
		rows = Dedup(rows)
	}
	return rows, true
}

// match backtracks over the patterns; budget points at the remaining cost
// allowance when positive, no limit when zero or negative at entry. It
// returns false when the budget ran out.
func match(patterns []sparql.TriplePattern, triples []rdf.Triple, binding map[string]string, budget *int64, emit func()) bool {
	if len(patterns) == 0 {
		emit()
		return true
	}
	tp := patterns[0]
	limited := *budget > 0
	for _, tr := range triples {
		if limited {
			*budget--
			if *budget <= 0 {
				return false
			}
		}
		var bound []string
		ok := true
		for _, pair := range [3]struct {
			term  sparql.Term
			value string
		}{{tp.S, tr.S}, {tp.P, tr.P}, {tp.O, tr.O}} {
			if !pair.term.IsVar() {
				if pair.term.Value != pair.value {
					ok = false
					break
				}
				continue
			}
			if prev, exists := binding[pair.term.Var]; exists {
				if prev != pair.value {
					ok = false
					break
				}
				continue
			}
			binding[pair.term.Var] = pair.value
			bound = append(bound, pair.term.Var)
		}
		if ok && !match(patterns[1:], triples, binding, budget, emit) {
			return false
		}
		for _, v := range bound {
			delete(binding, v)
		}
	}
	return true
}

// Dedup removes duplicate rows, preserving first occurrence order. It
// leaves rows untouched: compacting into the input's backing array would
// silently corrupt the caller's slice, which the difftest metamorphic
// checks compare against afterwards.
func Dedup(rows [][]string) [][]string {
	seen := make(map[string]bool, len(rows))
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		key := strings.Join(r, "\x00")
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}

// Multiset counts the rows of a result by their joined key, so two results
// can be compared regardless of row order.
func Multiset(rows [][]string) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[strings.Join(r, "\x00")]++
	}
	return m
}

// DiffMultisets compares two results as multisets of rows and returns a
// human-readable description of the difference, or "" when they are equal.
// want/got naming follows the differential-testing convention: want is the
// oracle's answer.
func DiffMultisets(want, got [][]string) string {
	wm, gm := Multiset(want), Multiset(got)
	var missing, extra []string
	for k, n := range wm {
		if d := n - gm[k]; d > 0 {
			missing = append(missing, fmt.Sprintf("%dx [%s]", d, strings.ReplaceAll(k, "\x00", " | ")))
		}
	}
	for k, n := range gm {
		if d := n - wm[k]; d > 0 {
			extra = append(extra, fmt.Sprintf("%dx [%s]", d, strings.ReplaceAll(k, "\x00", " | ")))
		}
	}
	if len(missing) == 0 && len(extra) == 0 {
		return ""
	}
	sort.Strings(missing)
	sort.Strings(extra)
	const maxShow = 5
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d rows expected, %d produced", len(want), len(got))
	describe := func(label string, rows []string) {
		if len(rows) == 0 {
			return
		}
		shown := rows
		if len(shown) > maxShow {
			shown = shown[:maxShow]
		}
		fmt.Fprintf(&sb, "; %s %d distinct: %s", label, len(rows), strings.Join(shown, ", "))
		if len(rows) > maxShow {
			sb.WriteString(", ...")
		}
	}
	describe("missing", missing)
	describe("unexpected", extra)
	return sb.String()
}

// Canon sorts rows lexicographically so result multisets can be compared
// with reflect.DeepEqual. It sorts in place and returns its argument.
func Canon(rows [][]string) [][]string {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return rows
}
