// Package posindex implements the ID-to-Position index of PARJ (paper §4.2).
//
// Given a sorted array of distinct IDs (the key array of an S-O or O-S
// table), the index answers "at which array position does ID p sit?" in
// O(1) without binary search. It is a rank bitmap: one presence bit per ID
// in the dictionary's ID space plus an anchor integer every Interval bits
// holding the number of set bits before the block. A lookup reads one
// anchor and popcounts at most Interval bits — with the paper's layout
// (anchor + following bits packed per cache line) that is a single memory
// access plus popcount instructions.
//
// Memory use is N/8 + (N/Interval)·4 bytes for a dictionary with N IDs,
// matching the paper's formula (§4.2). The paper uses Interval = 480 so
// that a 4-byte anchor plus 60 bytes of bits fill one 64-byte cache line;
// Go gives no control over that packing, so we default to 512 (a multiple
// of 64) which preserves the same arithmetic.
package posindex

import (
	"fmt"
	"math/bits"
)

// DefaultInterval is the default anchor spacing in bits.
const DefaultInterval = 512

// Index is an immutable ID-to-Position index over one table's key array.
// It is safe for concurrent lookups.
type Index struct {
	words    []uint64 // presence bitmap, bit id set iff id is a key
	anchors  []uint32 // anchors[k] = number of set bits in [0, k*interval)
	interval uint32   // anchor spacing in bits; multiple of 64
	maxID    uint32   // largest representable ID
}

// Build constructs the index for the given sorted, distinct key array over
// an ID space of [1, maxID]. Interval must be a positive multiple of 64;
// pass 0 for DefaultInterval. Keys outside [1, maxID] are a programming
// error and cause a panic.
func Build(keys []uint32, maxID uint32, interval int) *Index {
	if interval == 0 {
		interval = DefaultInterval
	}
	if interval <= 0 || interval%64 != 0 {
		panic(fmt.Sprintf("posindex: interval %d must be a positive multiple of 64", interval))
	}
	nbits := uint64(maxID) + 1 // bit 0 unused; IDs start at 1
	nwords := (nbits + 63) / 64
	x := &Index{
		words:    make([]uint64, nwords),
		interval: uint32(interval),
		maxID:    maxID,
	}
	prev := uint32(0)
	for _, k := range keys {
		if k == 0 || k > maxID {
			panic(fmt.Sprintf("posindex: key %d outside ID space [1,%d]", k, maxID))
		}
		if k <= prev && prev != 0 {
			panic(fmt.Sprintf("posindex: keys not sorted/distinct at %d", k))
		}
		prev = k
		x.words[k/64] |= 1 << (k % 64)
	}
	nblocks := (nbits + uint64(interval) - 1) / uint64(interval)
	x.anchors = make([]uint32, nblocks+1)
	wordsPerBlock := interval / 64
	rank := uint32(0)
	for b := uint64(0); b < nblocks; b++ {
		x.anchors[b] = rank
		start := int(b) * wordsPerBlock
		end := start + wordsPerBlock
		if end > len(x.words) {
			end = len(x.words)
		}
		for _, w := range x.words[start:end] {
			rank += uint32(bits.OnesCount64(w))
		}
	}
	x.anchors[nblocks] = rank
	return x
}

// Lookup returns the position of id in the key array the index was built
// from, and whether id is present. IDs outside the ID space return
// (0, false).
func (x *Index) Lookup(id uint32) (int, bool) {
	if id == 0 || id > x.maxID {
		return 0, false
	}
	word := x.words[id/64]
	bit := uint64(1) << (id % 64)
	if word&bit == 0 {
		return 0, false
	}
	block := id / x.interval
	rank := x.anchors[block]
	// Count set bits from the block start up to (and excluding) id.
	firstWord := int(block * (x.interval / 64))
	lastWord := int(id / 64)
	for w := firstWord; w < lastWord; w++ {
		rank += uint32(bits.OnesCount64(x.words[w]))
	}
	rank += uint32(bits.OnesCount64(word & (bit - 1)))
	return int(rank), true
}

// Contains reports whether id is present, without computing its position.
func (x *Index) Contains(id uint32) bool {
	if id == 0 || id > x.maxID {
		return false
	}
	return x.words[id/64]&(1<<(id%64)) != 0
}

// Count returns the number of keys indexed.
func (x *Index) Count() int {
	return int(x.anchors[len(x.anchors)-1])
}

// Bytes reports the memory footprint of the index payload, for comparison
// with the paper's N/8 + (N/A)·M formula.
func (x *Index) Bytes() int {
	return len(x.words)*8 + len(x.anchors)*4
}

// Interval returns the anchor spacing in bits.
func (x *Index) Interval() int { return int(x.interval) }
