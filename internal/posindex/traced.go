package posindex

import "math/bits"

// Tracer observes simulated memory accesses; it matches search.Tracer and
// is implemented by cachesim.Hierarchy.
type Tracer interface {
	Access(addr uint64)
}

// Bases are the simulated base addresses of an index's two payload arrays.
// They only need to be disjoint from each other and from the table arrays.
type Bases struct {
	Words   uint64
	Anchors uint64
}

// LookupTraced is Lookup with every word and anchor access reported to t.
func (x *Index) LookupTraced(id uint32, b Bases, t Tracer) (int, bool) {
	if id == 0 || id > x.maxID {
		return 0, false
	}
	wi := id / 64
	t.Access(b.Words + uint64(wi)*8)
	word := x.words[wi]
	bit := uint64(1) << (id % 64)
	if word&bit == 0 {
		return 0, false
	}
	block := id / x.interval
	t.Access(b.Anchors + uint64(block)*4)
	rank := x.anchors[block]
	firstWord := int(block * (x.interval / 64))
	lastWord := int(id / 64)
	for w := firstWord; w < lastWord; w++ {
		t.Access(b.Words + uint64(w)*8)
		rank += uint32(bits.OnesCount64(x.words[w]))
	}
	rank += uint32(bits.OnesCount64(word & (bit - 1)))
	return int(rank), true
}
