package posindex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type countingTracer struct{ n int }

func (c *countingTracer) Access(uint64) { c.n++ }

// Property: LookupTraced agrees with Lookup for every probe.
func TestQuickTracedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		maxID := uint32(64 + r.Intn(1<<14))
		n := r.Intn(500)
		if uint32(n) > maxID/2 {
			// randomKeys draws distinct IDs from [1, maxID]; asking for
			// more than the space holds would loop forever.
			n = int(maxID / 2)
		}
		keys := randomKeys(r, n, maxID)
		x := Build(keys, maxID, 512)
		tr := &countingTracer{}
		b := Bases{Words: 0, Anchors: 1 << 40}
		for trial := 0; trial < 300; trial++ {
			id := uint32(r.Intn(int(maxID) + 2))
			p1, ok1 := x.Lookup(id)
			p2, ok2 := x.LookupTraced(id, b, tr)
			if p1 != p2 || ok1 != ok2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTracedAccessBound(t *testing.T) {
	// With interval 512 a hit touches at most 1 anchor + 512/64 = 8 words.
	rng := rand.New(rand.NewSource(77))
	const maxID = 1 << 16
	keys := randomKeys(rng, 4096, maxID)
	x := Build(keys, maxID, 512)
	b := Bases{Words: 0, Anchors: 1 << 40}
	for _, k := range keys {
		tr := &countingTracer{}
		if _, ok := x.LookupTraced(k, b, tr); !ok {
			t.Fatalf("key %d not found", k)
		}
		if tr.n > 9 {
			t.Fatalf("lookup of %d touched %d words, want <= 9", k, tr.n)
		}
	}
}
