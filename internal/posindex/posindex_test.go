package posindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomKeys(rng *rand.Rand, n int, maxID uint32) []uint32 {
	seen := make(map[uint32]bool, n)
	for len(seen) < n {
		seen[uint32(1+rng.Intn(int(maxID)))] = true
	}
	keys := make([]uint32, 0, n)
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func TestLookupAllPresentKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const maxID = 100000
	keys := randomKeys(rng, 5000, maxID)
	for _, interval := range []int{64, 128, 512, 4096} {
		x := Build(keys, maxID, interval)
		for i, k := range keys {
			pos, ok := x.Lookup(k)
			if !ok || pos != i {
				t.Fatalf("interval %d: Lookup(%d) = (%d,%v), want (%d,true)", interval, k, pos, ok, i)
			}
		}
		if x.Count() != len(keys) {
			t.Fatalf("Count = %d, want %d", x.Count(), len(keys))
		}
	}
}

func TestLookupAbsentKeys(t *testing.T) {
	keys := []uint32{2, 5, 9, 1000, 65537}
	x := Build(keys, 70000, 0)
	for _, absent := range []uint32{0, 1, 3, 4, 6, 999, 1001, 65536, 65538, 70000, 70001, 1 << 30} {
		if _, ok := x.Lookup(absent); ok {
			t.Errorf("Lookup(%d) found, want absent", absent)
		}
		if x.Contains(absent) {
			t.Errorf("Contains(%d) = true, want false", absent)
		}
	}
	for _, present := range keys {
		if !x.Contains(present) {
			t.Errorf("Contains(%d) = false, want true", present)
		}
	}
}

func TestEmptyKeys(t *testing.T) {
	x := Build(nil, 1000, 0)
	if x.Count() != 0 {
		t.Errorf("Count = %d, want 0", x.Count())
	}
	if _, ok := x.Lookup(500); ok {
		t.Error("Lookup on empty index found something")
	}
}

func TestBoundaryIDs(t *testing.T) {
	const maxID = 1024
	keys := []uint32{1, 63, 64, 65, 511, 512, 513, 1023, 1024}
	x := Build(keys, maxID, 512)
	for i, k := range keys {
		pos, ok := x.Lookup(k)
		if !ok || pos != i {
			t.Errorf("Lookup(%d) = (%d,%v), want (%d,true)", k, pos, ok, i)
		}
	}
}

func TestBuildPanics(t *testing.T) {
	cases := []struct {
		name     string
		keys     []uint32
		maxID    uint32
		interval int
	}{
		{"zero key", []uint32{0, 1}, 10, 0},
		{"key beyond maxID", []uint32{11}, 10, 0},
		{"unsorted", []uint32{5, 3}, 10, 0},
		{"duplicate", []uint32{3, 3}, 10, 0},
		{"bad interval", []uint32{1}, 10, 100},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("Build did not panic")
				}
			}()
			Build(c.keys, c.maxID, c.interval)
		})
	}
}

func TestBytesMatchesFormula(t *testing.T) {
	const maxID = 1 << 20
	x := Build([]uint32{1, maxID}, maxID, 512)
	// N/8 bitmap bytes plus one 4-byte anchor per 512-bit block (+1 slack
	// word/anchor for the unused bit 0 and the closing anchor).
	wantWords := (maxID/64 + 1) * 8
	wantAnchors := (maxID/512 + 2) * 4
	if got := x.Bytes(); got > wantWords+wantAnchors+16 {
		t.Errorf("Bytes = %d, want about %d", got, wantWords+wantAnchors)
	}
	if x.Interval() != 512 {
		t.Errorf("Interval = %d, want 512", x.Interval())
	}
}

// Property: Lookup(k) equals the position of k in the key slice for every
// key, and misses for every non-key, under random key sets and intervals.
func TestQuickLookupEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, sizeSeed uint16) bool {
		r := rand.New(rand.NewSource(seed))
		maxID := uint32(64 + r.Intn(1<<16))
		n := int(sizeSeed) % 2000
		if uint32(n) > maxID {
			n = int(maxID)
		}
		keys := randomKeys(r, n, maxID)
		intervals := []int{64, 512, 1024}
		x := Build(keys, maxID, intervals[r.Intn(len(intervals))])
		// All keys found at the right position.
		for i, k := range keys {
			pos, ok := x.Lookup(k)
			if !ok || pos != i {
				return false
			}
		}
		// Random probes agree with sort.SearchInts semantics.
		for trial := 0; trial < 200; trial++ {
			probe := uint32(rng.Intn(int(maxID) + 2))
			i := sort.Search(len(keys), func(j int) bool { return keys[j] >= probe })
			want := i < len(keys) && keys[i] == probe
			pos, ok := x.Lookup(probe)
			if ok != want {
				return false
			}
			if ok && pos != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const maxID = 1 << 22
	keys := randomKeys(rng, 1<<18, maxID)
	x := Build(keys, maxID, 512)
	probes := make([]uint32, 1024)
	for i := range probes {
		probes[i] = keys[rng.Intn(len(keys))]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Lookup(probes[i&1023])
	}
}

func BenchmarkBinarySearchComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const maxID = 1 << 22
	keys := randomKeys(rng, 1<<18, maxID)
	probes := make([]uint32, 1024)
	for i := range probes {
		probes[i] = keys[rng.Intn(len(keys))]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probes[i&1023]
		sort.Search(len(keys), func(j int) bool { return keys[j] >= p })
	}
}
