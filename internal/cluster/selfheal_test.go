package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parj/internal/core"
	"parj/internal/lubm"
	"parj/internal/remote"
	"parj/internal/resilience"
	"parj/internal/resilience/chaos"
	"parj/internal/testutil"
)

// driveClock runs a FakeClock forward whenever any coordinator timer
// (backoff sleep, hedge delay, health tick) is parked on it, so every
// time-based decision in a chaos test is driven by the deterministic fake
// schedule instead of the wall clock. Returns a stop function.
func driveClock(clk *resilience.FakeClock) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if clk.Waiters() > 0 {
				clk.Advance(50 * time.Millisecond)
			} else {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	return func() { close(stop); <-done }
}

// TestReconfigureEpochSemantics pins the core contract: a query in flight
// when Reconfigure swaps the table finishes on the epoch it started on
// (routing to a replica the new table no longer lists), new queries route
// on the new table only, and the retired epoch + endpoint are released
// once the straggler drains.
func TestReconfigureEpochSemantics(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	nodeA, srvA := startNode(t, f)
	defer srvA.Close()
	nodeB, srvB := startNode(t, f)
	defer srvB.Close()

	// Gate the first /exec on A so the query is provably mid-flight while
	// the topology changes under it.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	nodeA.ExecStarted = func(*remote.ExecRequest) {
		once.Do(func() { close(entered); <-release })
	}

	r, err := NewRemote(RemoteOptions{Replicas: [][]string{{srvA.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := remoteQueries[0]
	type out struct {
		res *RemoteResult
		err error
	}
	got := make(chan out, 1)
	go func() {
		res, err := r.Execute(context.Background(), q.src, false)
		got <- out{res, err}
	}()
	<-entered

	// Swap A out for B while the query sits inside A's handler.
	v, err := r.Reconfigure(context.Background(), [][]string{{srvB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("version after first reconfigure = %d, want 2", v)
	}
	if n := r.DrainingEpochs(); n != 1 {
		t.Fatalf("draining epochs = %d, want 1 (in-flight query pins the old epoch)", n)
	}

	// A new query admitted now must route on the new table — node B only.
	if _, err := r.Execute(context.Background(), q.src, true); err != nil {
		t.Fatal(err)
	}
	if szB := nodeB.Statz(); szB.Queries == 0 {
		t.Fatal("post-swap query did not reach the new replica")
	}

	// Release the straggler: it must complete against A (its epoch) with
	// oracle-exact rows, and its drain must release the retired epoch and
	// close A out of the registry.
	close(release)
	o := <-got
	if o.err != nil {
		t.Fatalf("in-flight query failed across reconfigure: %v", o.err)
	}
	checkAgainstOracle(t, f, q, o.res.Count, o.res.Rows)
	waitForCond(t, func() bool { return r.DrainingEpochs() == 0 })
	if eps := r.Endpoints(); len(eps) != 1 || eps[0] != srvB.URL {
		t.Fatalf("registry after drain = %v, want just %s", eps, srvB.URL)
	}
	if szA := nodeA.Statz(); szA.Queries != 1 {
		t.Fatalf("node A served %d queries, want exactly the pinned one", szA.Queries)
	}
}

// TestReconfigureAdmissionGate: a warming replica cannot enter the routing
// table; once it reports ready it can. A dead endpoint can never be
// (re-)admitted.
func TestReconfigureAdmissionGate(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, srvA := startNode(t, f)
	defer srvA.Close()
	warming := remote.NewNode(f.st, f.ss, remote.NodeOptions{NotReady: true})
	srvW := httptest.NewServer(warming.Handler())
	defer srvW.Close()

	r, err := NewRemote(RemoteOptions{Replicas: [][]string{{srvA.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.AddReplica(context.Background(), 0, srvW.URL); !errors.Is(err, remote.ErrNotReady) {
		t.Fatalf("admitting a warming replica returned %v, want ErrNotReady", err)
	}
	if v, replicas := r.Topology(); v != 1 || len(replicas[0]) != 1 {
		t.Fatalf("refused admission must not change the table: v%d %v", v, replicas)
	}
	warming.SetReady(true)
	if _, err := r.AddReplica(context.Background(), 0, srvW.URL); err != nil {
		t.Fatalf("admitting a ready replica: %v", err)
	}
	if _, replicas := r.Topology(); len(replicas[0]) != 2 {
		t.Fatalf("table after admission = %v, want 2 replicas in group 0", replicas)
	}

	// And a dead endpoint is refused outright.
	dead := deadEndpoint(t)
	var te *remote.TransportError
	if _, err := r.AddReplica(context.Background(), 0, dead); !errors.As(err, &te) {
		t.Fatalf("admitting a dead endpoint returned %v, want TransportError", err)
	}
}

// TestReconfigureBreakerCarryOver: an endpoint surviving a reconfiguration
// keeps its tripped breaker — the new epoch must not grant a dead replica
// a fresh reputation.
func TestReconfigureBreakerCarryOver(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	dead := deadEndpoint(t)

	r, err := NewRemote(RemoteOptions{
		Replicas:    [][]string{{dead, live.URL}},
		MaxAttempts: 4,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Breaker:     resilience.BreakerOptions{FailureThreshold: 1, OpenFor: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	src := `SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`
	res, err := r.Execute(context.Background(), src, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Fatalf("first query attempts = %d, want 2 (dead fails, breaker trips, live serves)", res.Attempts)
	}

	// Same endpoints, new epoch. The dead endpoint's open breaker must
	// carry over: the next query skips it without spending an attempt.
	if _, err := r.Reconfigure(context.Background(), [][]string{{dead, live.URL}}); err != nil {
		t.Fatal(err)
	}
	res, err = r.Execute(context.Background(), src, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 {
		t.Fatalf("post-reconfigure attempts = %d, want 1 (carried-over breaker short-circuits)", res.Attempts)
	}
}

// TestRemoteSlowLoris: a replica that trickles response bytes forever is
// only recoverable through the per-attempt deadline — and, with hedging
// on, through a hedge racing past it. Both paths must converge on the
// healthy replica's oracle-exact answer.
func TestRemoteSlowLoris(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	src := `SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`
	want := oracle(t, f, src, 2, true)

	mk := func(hedge time.Duration) (*Remote, *chaos.Proxy) {
		loris, err := chaos.New(hostport(live), chaos.SlowLoris(1, 50*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRemote(RemoteOptions{
			Replicas:     [][]string{{loris.URL(), live.URL}},
			ShardTimeout: 100 * time.Millisecond,
			MaxAttempts:  3,
			Backoff:      resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
			HedgeAfter:   hedge,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r, loris
	}

	// No hedging: the slow-loris attempt must die at ShardTimeout and the
	// retry must recover the query on the live replica.
	r, loris := mk(0)
	res, err := r.Execute(context.Background(), src, true)
	if err != nil {
		t.Fatalf("slow-loris without hedging: %v", err)
	}
	if res.Count != want.Count {
		t.Fatalf("count %d, oracle %d", res.Count, want.Count)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (loris timed out, live served)", res.Attempts)
	}
	r.Close()
	loris.Close()

	// Hedging: the hedge fires long before the per-attempt deadline and
	// wins without waiting for the loris attempt to die.
	r, loris = mk(20 * time.Millisecond)
	start := time.Now()
	res, err = r.Execute(context.Background(), src, true)
	if err != nil {
		t.Fatalf("slow-loris with hedging: %v", err)
	}
	if res.Count != want.Count {
		t.Fatalf("count %d, oracle %d", res.Count, want.Count)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (primary + hedge)", res.Attempts)
	}
	if elapsed := time.Since(start); elapsed >= 100*time.Millisecond {
		t.Errorf("hedged query took %v — it waited for the loris deadline instead of hedging", elapsed)
	}
	r.Close()
	loris.Close()
}

// TestHeatTrackerObserve: EWMA and cumulative totals move as responses are
// folded in, and Resize keeps surviving groups' history.
func TestHeatTrackerObserve(t *testing.T) {
	h := NewHeatTracker(2, 0.5)
	sched := func(busy time.Duration, rows int64) core.SchedStats {
		return core.SchedStats{Workers: []core.WorkerStat{{Busy: busy, Rows: rows, Tuples: 2 * rows}}}
	}
	h.Observe(0, sched(100*time.Millisecond, 10))
	h.Observe(0, sched(200*time.Millisecond, 30))
	h.Observe(1, sched(10*time.Millisecond, 1))
	h.Observe(7, sched(time.Hour, 1)) // out of range: dropped

	groups := h.Snapshot()
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	g0 := groups[0]
	if g0.Queries != 2 || g0.Rows != 40 || g0.Tuples != 80 || g0.Busy != 300*time.Millisecond {
		t.Fatalf("group 0 totals = %+v", g0)
	}
	if g0.EWMABusy != 150*time.Millisecond { // first obs seeds, then 0.5 blend
		t.Fatalf("group 0 EWMA = %v, want 150ms", g0.EWMABusy)
	}
	h.Resize(3)
	groups = h.Snapshot()
	if len(groups) != 3 || groups[0].Queries != 2 || groups[2].Queries != 0 {
		t.Fatalf("after resize: %+v", groups)
	}
}

// TestHeatPolicyRebalance: a hot group gets a standby promoted, a cold
// over-replicated group gets its tail demoted, and ApplyProposals lands
// both in one reconfiguration.
func TestHeatPolicyRebalance(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, srvA := startNode(t, f)
	defer srvA.Close()
	_, srvB := startNode(t, f)
	defer srvB.Close()
	_, srvC := startNode(t, f)
	defer srvC.Close()
	_, srvStandby := startNode(t, f)
	defer srvStandby.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas: [][]string{{srvA.URL}, {srvB.URL, srvC.URL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Synthesize the signal the serving path would accumulate: group 0
	// hot, group 1 nearly idle.
	hot := core.SchedStats{Workers: []core.WorkerStat{{Busy: 100 * time.Millisecond, Rows: 1000, Tuples: 1000}}}
	cold := core.SchedStats{Workers: []core.WorkerStat{{Busy: time.Millisecond, Rows: 1, Tuples: 1}}}
	for i := 0; i < 10; i++ {
		r.heat.Observe(0, hot)
		r.heat.Observe(1, cold)
	}

	// With only two judged groups the hot one can never exceed 2x the mean
	// (mean includes it), so lower HotFactor; the other knobs keep their
	// defaults via fill().
	props := r.ProposeRebalance(HeatPolicy{HotFactor: 1.5}, []string{srvStandby.URL})
	if len(props) != 2 {
		t.Fatalf("proposals = %+v, want promote+demote", props)
	}
	byKind := map[ProposalKind]Proposal{}
	for _, p := range props {
		byKind[p.Kind] = p
	}
	if p := byKind[Promote]; p.Shard != 0 || p.Endpoint != srvStandby.URL {
		t.Fatalf("promotion = %+v, want standby into hot group 0", p)
	}
	if p := byKind[Demote]; p.Shard != 1 || p.Endpoint != srvC.URL {
		t.Fatalf("demotion = %+v, want group 1's tail replica", p)
	}

	if _, err := r.ApplyProposals(context.Background(), props); err != nil {
		t.Fatal(err)
	}
	_, replicas := r.Topology()
	if len(replicas[0]) != 2 || replicas[0][1] != srvStandby.URL {
		t.Fatalf("group 0 after rebalance = %v", replicas[0])
	}
	if len(replicas[1]) != 1 || replicas[1][0] != srvB.URL {
		t.Fatalf("group 1 after rebalance = %v", replicas[1])
	}

	// The rebalanced cluster still answers exactly.
	q := remoteQueries[0]
	res, err := r.Execute(context.Background(), q.src, false)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, f, q, res.Count, res.Rows)
}

// TestRemotePartialHealsAfterReconfigure: under Partial policy a dead
// shard group degrades Completeness; replacing the dead replica via
// Reconfigure heals the cluster back to Completeness 1 — no restart, no
// new coordinator.
func TestRemotePartialHealsAfterReconfigure(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	dead := deadEndpoint(t)
	src := `SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`

	r, err := NewRemote(RemoteOptions{
		Replicas:        [][]string{{live.URL}, {dead}},
		ThreadsPerShard: 1,
		MaxAttempts:     2,
		Backoff:         resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Policy:          Partial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	res, err := r.Execute(context.Background(), src, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completeness != 0.5 || res.ShardErrors[1] == nil {
		t.Fatalf("degraded: completeness %v, shard errors %v", res.Completeness, res.ShardErrors)
	}

	// Heal: point shard group 1 at the live replica.
	if _, err := r.Reconfigure(context.Background(), [][]string{{live.URL}, {live.URL}}); err != nil {
		t.Fatal(err)
	}
	res, err = r.Execute(context.Background(), src, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completeness != 1 {
		t.Fatalf("healed completeness %v, want 1", res.Completeness)
	}
	want := oracle(t, f, src, 2, false)
	if res.Count != want.Count {
		t.Fatalf("healed count %d, oracle %d", res.Count, want.Count)
	}
}

// TestRemoteChaosMigration is the acceptance scenario: while a stream of
// queries runs under FailFast, a brand-new replica is warmed from a peer's
// CRC-checked snapshot stream and admitted, one existing replica per shard
// group is killed, and a cold replica is demoted — and every single query
// in the stream returns oracle-exact rows. Coordinator timers run on a
// FakeClock driven deterministically; the leak check covers the whole
// churn.
func TestRemoteChaosMigration(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, n0 := startNode(t, f)
	defer n0.Close()
	_, n1 := startNode(t, f)
	defer n1.Close()

	// One killable proxy per shard group, fronting the direct nodes.
	p0, err := chaos.New(hostport(n0), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := chaos.New(hostport(n1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()

	clk := resilience.NewFakeClock(time.Unix(0, 0))
	stopClock := driveClock(clk)
	defer stopClock()

	r, err := NewRemote(RemoteOptions{
		Replicas: [][]string{
			{p0.URL(), n0.URL},
			{n1.URL, p1.URL()},
		},
		ThreadsPerShard: 2,
		MaxAttempts:     6,
		Backoff:         resilience.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
		Seed:            42,
		HealthInterval:  100 * time.Millisecond,
		Clock:           clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// The query stream: spin until told to stop, recording every failure.
	// FailFast + oracle check per query = exact equivalence under churn.
	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		served  int
		streamE []error
	)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				q := remoteQueries[(i+w)%len(remoteQueries)]
				res, err := r.Execute(context.Background(), q.src, false)
				mu.Lock()
				if err != nil {
					streamE = append(streamE, fmt.Errorf("%s: %w", q.src, err))
				} else {
					checkAgainstOracle(t, f, q, res.Count, res.Rows)
					served++
				}
				mu.Unlock()
			}
		}(w)
	}

	servedNow := func() int {
		mu.Lock()
		defer mu.Unlock()
		return served
	}
	waitForServed := func(n int) {
		waitForCond(t, func() bool { return servedNow() >= n })
	}
	waitForServed(3)

	// (1) Warm a brand-new replica from n0's snapshot stream and admit it
	// to both groups. Admission while warming must be refused.
	src := remote.NewClient(n0.URL, 0)
	st, err := src.Snapshot(context.Background())
	src.Close()
	if err != nil {
		t.Fatalf("snapshot warmup: %v", err)
	}
	joiner := remote.NewNode(st, nil, remote.NodeOptions{NotReady: true})
	srvJ := httptest.NewServer(joiner.Handler())
	defer srvJ.Close()
	if _, err := r.AddReplica(context.Background(), 0, srvJ.URL); !errors.Is(err, remote.ErrNotReady) {
		t.Fatalf("warming joiner admitted: %v", err)
	}
	joiner.SetReady(true)
	if _, err := r.AddReplica(context.Background(), 0, srvJ.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddReplica(context.Background(), 1, srvJ.URL); err != nil {
		t.Fatal(err)
	}
	waitForServed(servedNow() + 3)

	// (2) Kill one replica per shard group mid-stream.
	p0.Kill()
	p1.Kill()
	waitForServed(servedNow() + 3)

	// (3) Remove the dead proxies and demote a cold replica (n0 from
	// group 0 — the joiner and n1 keep serving).
	if _, err := r.RemoveReplica(context.Background(), 0, p0.URL()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RemoveReplica(context.Background(), 1, p1.URL()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RemoveReplica(context.Background(), 0, n0.URL); err != nil {
		t.Fatal(err)
	}
	waitForServed(servedNow() + 3)

	stop.Store(true)
	wg.Wait()
	if len(streamE) > 0 {
		t.Fatalf("%d queries failed under FailFast during migration; first: %v", len(streamE), streamE[0])
	}

	// The joiner actually carries load, topology converged, heat kept
	// counting, and every retired epoch drained.
	if sz := joiner.Statz(); sz.Queries == 0 {
		t.Error("warmed joiner never served a query")
	}
	_, replicas := r.Topology()
	if len(replicas[0]) != 1 || replicas[0][0] != srvJ.URL || len(replicas[1]) != 2 {
		t.Fatalf("final table = %v", replicas)
	}
	heat := r.Heat()
	if heat[0].Queries == 0 || heat[1].Queries == 0 {
		t.Errorf("heat tracker saw no traffic: %+v", heat)
	}
	waitForCond(t, func() bool { return r.DrainingEpochs() == 0 })
}

// waitForCond polls cond for up to 10s.
func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
