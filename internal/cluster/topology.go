package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"parj/internal/remote"
	"parj/internal/resilience"
)

// The self-healing topology model: the routing table is an immutable
// *epoch*, swapped atomically by Reconfigure. A query pins the current
// epoch for its whole lifetime — every attempt, retry and hedge it makes
// routes on that epoch — while queries admitted after the swap route on
// the new one. Per-endpoint state (the HTTP client with its connection
// pool, and the circuit breaker with its failure history) lives outside
// the epochs in a refcounted registry, so an endpoint that survives a
// reconfiguration carries its breaker state and warm connections over,
// and an endpoint referenced by no epoch at all is closed exactly once,
// after the last in-flight query on a retired epoch drains.

// epoch is one immutable version of the routing table. All mutable
// bookkeeping (inflight, retired, released) is guarded by Remote.topoMu.
type epoch struct {
	version  int64
	replicas [][]string
	clients  [][]*remote.Client
	breakers [][]*resilience.Breaker
	loads    [][]*resilience.LoadSignal

	inflight int  // queries currently pinned to this epoch
	retired  bool // no longer current; release when inflight hits 0
	released bool // endpoint refs returned (terminal)
}

// endpointState is the long-lived per-endpoint state shared across epochs.
type endpointState struct {
	client  *remote.Client
	breaker *resilience.Breaker
	load    *resilience.LoadSignal
	refs    int // number of unreleased epochs referencing the endpoint
}

// validateReplicas rejects empty topologies.
func validateReplicas(replicas [][]string) error {
	if len(replicas) == 0 {
		return errors.New("cluster: no shard groups configured")
	}
	for s, reps := range replicas {
		if len(reps) == 0 {
			return fmt.Errorf("cluster: shard group %d has no replicas", s)
		}
		seen := make(map[string]bool, len(reps))
		for _, ep := range reps {
			if seen[ep] {
				return fmt.Errorf("cluster: shard group %d lists %s twice", s, ep)
			}
			seen[ep] = true
		}
	}
	return nil
}

// distinctEndpoints lists each endpoint once, in first-appearance order.
func distinctEndpoints(replicas [][]string) []string {
	var out []string
	seen := map[string]bool{}
	for _, reps := range replicas {
		for _, ep := range reps {
			if !seen[ep] {
				seen[ep] = true
				out = append(out, ep)
			}
		}
	}
	return out
}

// buildEpochLocked constructs the next epoch over replicas, taking one
// registry reference per distinct endpoint (creating entries as needed;
// prebuilt supplies clients for endpoints readiness-checked before the
// lock was taken). Callers hold r.topoMu.
func (r *Remote) buildEpochLocked(replicas [][]string, prebuilt map[string]*remote.Client) *epoch {
	r.version++
	e := &epoch{version: r.version, replicas: deepCopy(replicas)}
	counted := map[string]bool{}
	for _, reps := range e.replicas {
		crow := make([]*remote.Client, len(reps))
		brow := make([]*resilience.Breaker, len(reps))
		lrow := make([]*resilience.LoadSignal, len(reps))
		for i, ep := range reps {
			st := r.endpoints[ep]
			if st == nil {
				c := prebuilt[ep]
				if c == nil {
					c = remote.NewClient(ep, 0)
				}
				st = &endpointState{
					client:  c,
					breaker: resilience.NewBreaker(r.clock, r.opts.Breaker),
					load:    resilience.NewLoadSignal(r.clock),
				}
				r.endpoints[ep] = st
			} else if pc := prebuilt[ep]; pc != nil && pc != st.client {
				pc.Close() // raced with a concurrent admit; keep the registered one
			}
			if !counted[ep] {
				counted[ep] = true
				st.refs++
			}
			crow[i] = st.client
			brow[i] = st.breaker
			lrow[i] = st.load
		}
		e.clients = append(e.clients, crow)
		e.breakers = append(e.breakers, brow)
		e.loads = append(e.loads, lrow)
	}
	return e
}

// releaseEpochLocked returns an epoch's endpoint references; endpoints no
// epoch references anymore are closed and forgotten. Idempotent. Callers
// hold r.topoMu.
func (r *Remote) releaseEpochLocked(e *epoch) {
	if e.released {
		return
	}
	e.released = true
	for _, ep := range distinctEndpoints(e.replicas) {
		st := r.endpoints[ep]
		if st == nil {
			continue
		}
		if st.refs--; st.refs <= 0 {
			st.client.Close()
			delete(r.endpoints, ep)
		}
	}
	for i, old := range r.drainingEpochs {
		if old == e {
			r.drainingEpochs = append(r.drainingEpochs[:i], r.drainingEpochs[i+1:]...)
			break
		}
	}
}

// pin returns the current epoch with its in-flight count raised; every
// Execute holds exactly one pin for its whole lifetime.
func (r *Remote) pin() *epoch {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	e := r.cur
	e.inflight++
	return e
}

// unpin drops a query's pin; the last query off a retired epoch triggers
// its release.
func (r *Remote) unpin(e *epoch) {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	e.inflight--
	if e.retired && e.inflight == 0 {
		r.releaseEpochLocked(e)
	}
}

// Topology reports the current epoch's version and a copy of its routing
// table.
func (r *Remote) Topology() (version int64, replicas [][]string) {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	return r.cur.version, deepCopy(r.cur.replicas)
}

// Reconfigure atomically swaps the routing table: replicas may be added to,
// removed from, or moved between shard groups, and the number of shard
// groups itself may change (every node is a full replica, so any group
// layout is answerable). Queries in flight finish against the epoch they
// started on; queries admitted afterwards route on the new one.
//
// Endpoints present in both epochs keep their circuit-breaker state,
// health verdicts and warm connections. Endpoints new to the cluster are
// admission-gated: Reconfigure probes /readyz and refuses the swap if any
// is unreachable or still warming, so a replica mid-migration can never
// enter the routing table early. Endpoints dropped from the table are
// closed once the last in-flight query that could still route to them
// drains.
//
// Returns the new topology version. Concurrent Reconfigure calls serialize;
// each sees the previous call's table as its base.
func (r *Remote) Reconfigure(ctx context.Context, newReplicas [][]string) (int64, error) {
	if err := validateReplicas(newReplicas); err != nil {
		return 0, err
	}

	// Admission gate, outside the swap lock: probe endpoints the registry
	// doesn't already know. Their clients are kept for the new epoch.
	r.topoMu.Lock()
	if r.closed {
		r.topoMu.Unlock()
		return 0, errors.New("cluster: coordinator closed")
	}
	var probe []string
	for _, ep := range distinctEndpoints(newReplicas) {
		if r.endpoints[ep] == nil {
			probe = append(probe, ep)
		}
	}
	r.topoMu.Unlock()

	prebuilt := make(map[string]*remote.Client, len(probe))
	for _, ep := range probe {
		c := remote.NewClient(ep, 0)
		if err := c.Ready(ctx); err != nil {
			c.Close()
			for _, pc := range prebuilt {
				pc.Close()
			}
			return 0, fmt.Errorf("cluster: refusing to admit %s: %w", ep, err)
		}
		prebuilt[ep] = c
	}

	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	if r.closed {
		for _, pc := range prebuilt {
			pc.Close()
		}
		return 0, errors.New("cluster: coordinator closed")
	}
	next := r.buildEpochLocked(newReplicas, prebuilt)
	prev := r.cur
	r.cur = next
	prev.retired = true
	if prev.inflight == 0 {
		r.releaseEpochLocked(prev)
	} else {
		r.drainingEpochs = append(r.drainingEpochs, prev)
	}
	r.heat.Resize(len(newReplicas))
	r.health.SetTargets(distinctEndpoints(newReplicas))
	return next.version, nil
}

// AddReplica admits endpoint into shard group's replica set (a promotion).
func (r *Remote) AddReplica(ctx context.Context, shard int, endpoint string) (int64, error) {
	_, replicas := r.Topology()
	if shard < 0 || shard >= len(replicas) {
		return 0, fmt.Errorf("cluster: shard group %d out of range", shard)
	}
	for _, ep := range replicas[shard] {
		if ep == endpoint {
			return 0, fmt.Errorf("cluster: %s already serves shard group %d", endpoint, shard)
		}
	}
	replicas[shard] = append(replicas[shard], endpoint)
	return r.Reconfigure(ctx, replicas)
}

// RemoveReplica retires endpoint from shard group's replica set (a
// demotion, or the removal of a dead node). The group must retain at least
// one replica.
func (r *Remote) RemoveReplica(ctx context.Context, shard int, endpoint string) (int64, error) {
	_, replicas := r.Topology()
	if shard < 0 || shard >= len(replicas) {
		return 0, fmt.Errorf("cluster: shard group %d out of range", shard)
	}
	kept := replicas[shard][:0]
	for _, ep := range replicas[shard] {
		if ep != endpoint {
			kept = append(kept, ep)
		}
	}
	if len(kept) == len(replicas[shard]) {
		return 0, fmt.Errorf("cluster: %s does not serve shard group %d", endpoint, shard)
	}
	replicas[shard] = kept
	return r.Reconfigure(ctx, replicas)
}

// DrainingEpochs reports how many retired epochs still have queries in
// flight — an observability hook, and what tests assert drops back to zero.
func (r *Remote) DrainingEpochs() int {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	return len(r.drainingEpochs)
}

// Endpoints lists the endpoints the registry currently tracks, sorted.
func (r *Remote) Endpoints() []string {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	out := make([]string, 0, len(r.endpoints))
	for ep := range r.endpoints {
		out = append(out, ep)
	}
	sort.Strings(out)
	return out
}

func deepCopy(replicas [][]string) [][]string {
	out := make([][]string, len(replicas))
	for i, reps := range replicas {
		out[i] = append([]string(nil), reps...)
	}
	return out
}
