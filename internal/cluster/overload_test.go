package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parj/internal/governance"
	"parj/internal/lubm"
	"parj/internal/remote"
	"parj/internal/resilience"
	"parj/internal/resilience/chaos"
	"parj/internal/testutil"
)

// startTunedNode is startNode with admission knobs: a tiny concurrency cap
// plus the adaptive controller, so a handful of concurrent coordinator
// queries is already an overload storm.
func startTunedNode(t *testing.T, f *fixture, opts remote.NodeOptions) (*remote.Node, *httptest.Server) {
	t.Helper()
	n := remote.NewNode(f.st, f.ss, opts)
	return n, httptest.NewServer(n.Handler())
}

// breakerAllows reads one endpoint's registry breaker under the topology
// lock; in-package tests use it to pin "overload never tripped the
// breaker" directly rather than only through routing behavior.
func breakerAllows(t *testing.T, r *Remote, endpoint string) bool {
	t.Helper()
	r.topoMu.Lock()
	st, ok := r.endpoints[endpoint]
	r.topoMu.Unlock()
	if !ok {
		t.Fatalf("endpoint %s not in registry", endpoint)
	}
	return st.breaker.Allow()
}

// TestReplicaOrderPrefersLighterReplica: with both replicas healthy, the
// power-of-two-choices order must lead with whichever endpoint carries
// fewer in-flight attempts — in both directions.
func TestReplicaOrderPrefersLighterReplica(t *testing.T) {
	r, err := NewRemote(RemoteOptions{Replicas: [][]string{{"http://a", "http://b"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ep := r.pin()
	defer r.unpin(ep)

	// Two in-flight attempts on replica 0: every order must lead with 1.
	ep.loads[0][0].Start()
	ep.loads[0][0].Start()
	for i := 0; i < 32; i++ {
		if order := r.replicaOrder(ep, 0); order[0] != 1 {
			t.Fatalf("iteration %d: order %v leads with the loaded replica", i, order)
		}
	}

	// Tip the balance the other way: now replica 0 is the lighter one.
	for j := 0; j < 3; j++ {
		ep.loads[0][1].Start()
	}
	ep.loads[0][0].Finish(time.Millisecond)
	ep.loads[0][0].Finish(time.Millisecond)
	for i := 0; i < 32; i++ {
		if order := r.replicaOrder(ep, 0); order[0] != 0 {
			t.Fatalf("iteration %d: order %v ignores the load flip", i, order)
		}
	}
}

// TestReplicaOrderSheddingTier: a replica inside its shed-backoff window
// drops to the shedding tier (tried only after every ready replica) but is
// never treated as down; the window expiring restores it. The same signal
// feeds tier saturation, which is what suppresses hedging.
func TestReplicaOrderSheddingTier(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(0, 0))
	r, err := NewRemote(RemoteOptions{
		Replicas: [][]string{{"http://a", "http://b"}},
		Clock:    clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ep := r.pin()
	defer r.unpin(ep)

	if r.saturated(ep) {
		t.Fatal("fresh tier reports saturated")
	}
	ep.loads[0][0].MarkOverloaded(time.Second)
	for i := 0; i < 32; i++ {
		order := r.replicaOrder(ep, 0)
		if len(order) != 2 || order[0] != 1 || order[1] != 0 {
			t.Fatalf("order %v — overloaded replica must trail, not vanish", order)
		}
	}
	// 1 of 2 distinct endpoints shedding: half the tier, so saturated.
	if !r.saturated(ep) {
		t.Fatal("half the endpoints in shed backoff, tier not saturated")
	}

	clk.Advance(2 * time.Second)
	if r.saturated(ep) {
		t.Fatal("shed backoff expired but the tier still reads saturated")
	}
	if ep.loads[0][0].Overloaded() {
		t.Fatal("shed backoff did not expire with the clock")
	}
}

// TestBreakerClosedThroughRejectionBurst is the satellite regression: a
// node shedding under admission control returns typed overloads, and a
// burst of them must NOT trip the endpoint's circuit breaker — overload is
// backpressure, not failure. A hair-trigger breaker (threshold 1, open for
// an hour) makes any miscount immediately visible.
func TestBreakerClosedThroughRejectionBurst(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	node, srv := startTunedNode(t, f, remote.NodeOptions{
		MaxConcurrent: 1,
		AdmissionWait: time.Millisecond,
	})
	defer srv.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas:    [][]string{{srv.URL}},
		MaxAttempts: 2,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Seed:        7,
		Breaker:     resilience.BreakerOptions{FailureThreshold: 1, OpenFor: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// The storm: 8 concurrent workers against a MaxConcurrent=1 node with
	// a 1ms queue — most arrivals shed with 503.
	var wg sync.WaitGroup
	var failures []error
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				q := remoteQueries[(i+w)%len(remoteQueries)]
				if _, err := r.Execute(context.Background(), q.src, true); err != nil {
					mu.Lock()
					failures = append(failures, err)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	if node.Statz().Sheds == 0 {
		t.Fatal("storm produced zero sheds — the burst never exercised admission control")
	}
	for _, err := range failures {
		if !errors.Is(err, governance.ErrOverloaded) {
			t.Fatalf("storm failure %v is not typed ErrOverloaded", err)
		}
		var ne *remote.NodeError
		if errors.As(err, &ne) && ne.RetryAfter <= 0 {
			t.Fatalf("node overload carried no Retry-After hint: %v", err)
		}
	}

	// The breaker must still admit: directly, and behaviorally — a
	// post-storm query succeeds on its first attempt.
	if !breakerAllows(t, r, srv.URL) {
		t.Fatal("rejection burst tripped the breaker — overload was counted as failure")
	}
	res, err := r.Execute(context.Background(), remoteQueries[1].src, false)
	if err != nil {
		t.Fatalf("post-storm query failed: %v", err)
	}
	if res.Attempts != 1 {
		t.Fatalf("post-storm query took %d attempts, want 1 (breaker closed, node idle)", res.Attempts)
	}
	checkAgainstOracle(t, f, remoteQueries[1], res.Count, res.Rows)
}

// TestOverloadStormChaos is the tentpole acceptance scenario: a replica
// tier driven well past its admission capacity, with a slow-loris proxy
// degrading one path and another replica killed mid-storm. Every query
// that the cluster admits must return oracle-exact rows; every query it
// refuses must carry a typed, retryable overload or deadline error; the
// live endpoints' breakers stay closed through the whole storm; and no
// goroutine survives the test.
func TestOverloadStormChaos(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)

	tuned := remote.NodeOptions{
		MaxConcurrent:     1,
		AdmissionWait:     20 * time.Millisecond,
		AdmissionTarget:   2 * time.Millisecond,
		AdmissionInterval: 20 * time.Millisecond,
	}
	n0, s0 := startTunedNode(t, f, tuned)
	defer s0.Close()
	n1, s1 := startTunedNode(t, f, tuned)
	defer s1.Close()
	n2, s2 := startTunedNode(t, f, tuned)
	defer s2.Close()

	// victim fronts s2 and is killed mid-storm; loris drips bytes from s0
	// so one of the four paths is pathologically slow the whole time.
	victim, err := chaos.New(hostport(s2), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	loris, err := chaos.New(hostport(s0), chaos.SlowLoris(1, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer loris.Close()

	// qHeavy's two-scan cross product holds a node's single admission slot
	// for long enough that concurrent arrivals genuinely queue — the storm
	// needs work, not just requests. Checked by count against the oracle.
	qHeavy := `SELECT ?x ?y ?a ?b WHERE {
		?x ` + lubm.PredTakesCourse + ` ?y .
		?a ` + lubm.PredMemberOf + ` ?b }`
	heavyCount := oracle(t, f, qHeavy, 4, true).Count

	clk := resilience.NewFakeClock(time.Unix(0, 0))
	stopClock := driveClock(clk)
	defer stopClock()

	r, err := NewRemote(RemoteOptions{
		Replicas:     [][]string{{s0.URL, s1.URL, victim.URL(), loris.URL()}},
		ShardTimeout: 500 * time.Millisecond,
		MaxAttempts:  6,
		Backoff:      resilience.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		Seed:         42,
		HedgeAfter:   10 * time.Millisecond,
		Breaker:      resilience.BreakerOptions{FailureThreshold: 3, OpenFor: time.Hour},
		Clock:        clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// The storm: 6 workers × 8 queries, every one under a client deadline
	// so DeadlineBudgetMS propagates to the nodes. Admitted queries are
	// oracle-checked; refused queries must be typed.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted int
		refused  []error
		done     atomic.Int64
	)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				if i%2 == 0 {
					res, err := r.Execute(ctx, qHeavy, true)
					mu.Lock()
					switch {
					case err != nil:
						refused = append(refused, fmt.Errorf("heavy: %w", err))
					case res.Count != heavyCount:
						t.Errorf("heavy count %d, oracle %d", res.Count, heavyCount)
					default:
						admitted++
					}
					mu.Unlock()
				} else {
					q := remoteQueries[(i+w)%len(remoteQueries)]
					res, err := r.Execute(ctx, q.src, false)
					mu.Lock()
					if err != nil {
						refused = append(refused, fmt.Errorf("%s: %w", q.src, err))
					} else {
						checkAgainstOracle(t, f, q, res.Count, res.Rows)
						admitted++
					}
					mu.Unlock()
				}
				cancel()
				done.Add(1)
			}
		}(w)
	}

	// Kill the victim replica mid-storm.
	waitForCond(t, func() bool { return done.Load() >= 8 })
	victim.Kill()
	wg.Wait()

	if admitted == 0 {
		t.Fatal("storm admitted zero queries — the tier collapsed instead of shedding")
	}
	for _, err := range refused {
		if !errors.Is(err, governance.ErrOverloaded) && !errors.Is(err, governance.ErrDeadlineExceeded) {
			t.Fatalf("refused query error is untyped: %v", err)
		}
	}

	// The storm must actually have exercised admission control somewhere.
	sheds := int64(0)
	for _, n := range []*remote.Node{n0, n1, n2} {
		sz := n.Statz()
		sheds += sz.Sheds + sz.Expired
	}
	if sheds == 0 {
		t.Fatal("no node shed or expired a single request at 6× a node's concurrency")
	}

	// Overload and the victim kill must not have opened the live direct
	// endpoints' breakers: shedding is backpressure, only the dead proxy
	// may trip.
	for _, ep := range []string{s0.URL, s1.URL} {
		if !breakerAllows(t, r, ep) {
			t.Fatalf("storm opened the breaker for live endpoint %s", ep)
		}
	}

	// The tier drains: with the storm over, a fresh query succeeds.
	res, err := r.Execute(context.Background(), remoteQueries[0].src, false)
	if err != nil {
		t.Fatalf("post-storm query failed: %v", err)
	}
	checkAgainstOracle(t, f, remoteQueries[0], res.Count, res.Rows)
}
