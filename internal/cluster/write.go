package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"parj/internal/rdf"
	"parj/internal/remote"
	"parj/internal/wal"
)

// write.go — the coordinator's side of the live write path.
//
// The coordinator is the single sequencer of the cluster write stream:
// Write serializes batches under writeMu, stamps each with the next
// sequence number, and fans it out to every distinct replica endpoint of
// the pinned routing epoch. Replicas apply batches in identical order with
// deletes before inserts, which keeps their append-only dictionaries —
// and therefore their dictionary-encoded shard results — byte-identical.
//
// Fault model: a replica that misses a batch (killed mid-burst, network
// cut) is removed from the routing table so queries stop landing on its
// stale store; the batch itself still commits on the surviving replicas.
// The coordinator keeps a bounded replay log, so a replica that comes back
// (or a fresh one warmed from a peer snapshot that embeds its write-stream
// position) is caught up by Resync — replaying exactly the log suffix the
// snapshot does not contain — before it is re-admitted.

// defaultWriteLogCap bounds the in-memory replay cache when
// WriteOptions.ReplayLogSize is zero.
const defaultWriteLogCap = 1024

// ErrLogTruncated reports a resync target that is further behind than the
// replay log reaches; the replica must warm from a peer snapshot first.
// With a WAL attached this only happens past the WAL's own retention
// (WriteOptions.WALRetainBatches).
var ErrLogTruncated = errors.New("cluster: replica behind truncated write log")

// recoverWriteLog opens the coordinator's write-ahead log and restores the
// sequencer position and the in-memory replay cache from it, so the write
// stream continues where the previous coordinator process stopped instead
// of forking back to sequence 1.
func (r *Remote) recoverWriteLog() error {
	w := r.opts.Write
	l, err := wal.Open(wal.Options{
		Dir:          w.WALDir,
		FS:           w.WALFS,
		Sync:         w.WALSync,
		Interval:     w.WALSyncInterval,
		SegmentBytes: w.WALSegmentBytes,
	})
	if err != nil {
		return fmt.Errorf("cluster: open write wal: %w", err)
	}
	cap := w.ReplayLogSize
	if cap <= 0 {
		cap = defaultWriteLogCap
	}
	last := l.LastSeq()
	from := l.FirstSeq()
	if last >= uint64(cap) && last-uint64(cap)+1 > from {
		from = last - uint64(cap) + 1
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.wlog = l
	r.writeSeq = last
	if last == 0 {
		return nil
	}
	err = l.Replay(from, func(rec wal.Record) error {
		if r.logStart == 0 {
			r.logStart = rec.Seq
		}
		r.writeLog = append(r.writeLog, WriteBatch{
			Seq:     rec.Seq,
			Inserts: remoteTriples(rec.Inserts),
			Deletes: remoteTriples(rec.Deletes),
		})
		return nil
	})
	if err != nil {
		l.Close()
		r.wlog = nil
		return fmt.Errorf("cluster: recover write wal: %w", err)
	}
	return nil
}

func rdfTriples(ts []remote.Triple) []rdf.Triple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]rdf.Triple, len(ts))
	for i, t := range ts {
		out[i] = rdf.Triple{S: t.S, P: t.P, O: t.O}
	}
	return out
}

func remoteTriples(ts []rdf.Triple) []remote.Triple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]remote.Triple, len(ts))
	for i, t := range ts {
		out[i] = remote.Triple{S: t.S, P: t.P, O: t.O}
	}
	return out
}

// WriteSeq reports the last committed write-batch sequence number.
func (r *Remote) WriteSeq() uint64 {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	return r.writeSeq
}

// Write commits one write batch to the cluster: it assigns the next
// sequence number, appends the batch to the replay log, and fans it out to
// every distinct replica endpoint. Endpoints that fail to apply the batch
// are removed from the routing table (queries must not read their stale
// stores); the returned error is non-nil only when some shard group would
// be left with no current replica — the batch is still committed on the
// survivors and recorded in the log either way, so a recovered replica can
// be caught up with Resync.
func (r *Remote) Write(ctx context.Context, inserts, deletes []remote.Triple) (uint64, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	seq := r.writeSeq + 1
	batch := WriteBatch{Seq: seq, Inserts: inserts, Deletes: deletes}

	// Durability first: the batch reaches the journal — and its fsync
	// policy — before any replica sees it, so a coordinator crash can
	// never leave a replica holding a sequence number the restarted
	// coordinator has no record of. A failed append rejects the write
	// outright: nothing fanned out, the sequence did not advance.
	if r.wlog != nil {
		rec := wal.Record{Seq: seq, Inserts: rdfTriples(inserts), Deletes: rdfTriples(deletes)}
		if err := r.wlog.Append(rec); err != nil {
			return 0, fmt.Errorf("cluster: write wal append %d: %w", seq, err)
		}
	}

	ep := r.pin()
	defer r.unpin(ep)
	req := &remote.WriteRequest{Seq: seq, Inserts: inserts, Deletes: deletes}
	targets := distinctEndpoints(ep.replicas)
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, target := range targets {
		client := r.endpointClient(target)
		if client == nil {
			continue // retired between pin and now; nothing to apply
		}
		wg.Add(1)
		go func(i int, c *remote.Client) {
			defer wg.Done()
			_, err := c.Write(ctx, req)
			errs[i] = err
		}(i, client)
	}
	wg.Wait()

	// Commit: the batch is recorded in the replay log even if some replica
	// failed — sequence numbers never fork.
	r.writeSeq = seq
	if r.logStart == 0 {
		r.logStart = seq
	}
	r.writeLog = append(r.writeLog, batch)
	logCap := r.opts.Write.ReplayLogSize
	if logCap <= 0 {
		logCap = defaultWriteLogCap
	}
	if over := len(r.writeLog) - logCap; over > 0 {
		r.writeLog = append([]WriteBatch(nil), r.writeLog[over:]...)
		r.logStart += uint64(over)
	}
	// Retention: drop WAL segments wholly behind the configured span.
	// Best effort — a failed prune costs disk, not correctness.
	if r.wlog != nil {
		if retain := r.opts.Write.WALRetainBatches; retain > 0 && seq > retain {
			r.wlog.Prune(seq - retain)
		}
	}

	var failed []string
	for i, err := range errs {
		if err != nil {
			failed = append(failed, targets[i])
		}
	}
	if len(failed) == 0 {
		return seq, nil
	}
	return seq, r.evictStale(ctx, failed)
}

// evictStale removes endpoints that missed a write batch from every shard
// group that retains at least one other replica. An endpoint that is the
// sole replica of some group cannot be removed (the group would be
// unroutable); that is reported as an error — the group is serving a stale
// store until the replica is resynced.
func (r *Remote) evictStale(ctx context.Context, failed []string) error {
	_, replicas := r.Topology()
	stale := make(map[string]bool, len(failed))
	for _, ep := range failed {
		stale[ep] = true
	}
	var soleStale []string
	changed := false
	for s, reps := range replicas {
		kept := reps[:0]
		for _, ep := range reps {
			if !stale[ep] {
				kept = append(kept, ep)
			}
		}
		if len(kept) == 0 {
			// Removing every replica would orphan the group; keep it as-is
			// and surface the staleness.
			soleStale = append(soleStale, fmt.Sprintf("group %d: %v", s, reps))
			continue
		}
		if len(kept) != len(reps) {
			changed = true
			replicas[s] = kept
		}
	}
	var errs []error
	if changed {
		if _, err := r.Reconfigure(ctx, replicas); err != nil {
			errs = append(errs, fmt.Errorf("cluster: evicting stale replicas %v: %w", failed, err))
		}
	}
	if len(soleStale) > 0 {
		errs = append(errs, fmt.Errorf("cluster: write missed sole replicas (%v); resync required", soleStale))
	}
	return errors.Join(errs...)
}

// Resync catches a replica up with the write stream: it reads the
// replica's applied sequence from /statz and replays the missing log
// suffix in order. The write stream is held still for the duration, so a
// successful resync leaves the replica exactly current — ready for
// AddReplica. Returns ErrLogTruncated when the replica is too far behind
// for the bounded log; it must warm from a peer snapshot (which embeds a
// newer stream position) and try again.
func (r *Remote) Resync(ctx context.Context, endpoint string) error {
	client := r.endpointClient(endpoint)
	owned := false
	if client == nil {
		// Not (or no longer) in the routing table — a rejoining node.
		client = remote.NewClient(endpoint, 0)
		owned = true
	}
	if owned {
		defer client.Close()
	}
	sz, err := client.Statz(ctx)
	if err != nil {
		return err
	}

	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if sz.WriteSeq >= r.writeSeq {
		return nil
	}
	from := sz.WriteSeq + 1
	if from < r.logStart || r.logStart == 0 {
		// Behind the in-memory cache: fall back to the write-ahead log,
		// which reaches further into the past (up to its retention).
		if r.wlog != nil {
			if first := r.wlog.FirstSeq(); first != 0 && from >= first {
				err := r.wlog.Replay(from, func(rec wal.Record) error {
					req := &remote.WriteRequest{
						Seq:     rec.Seq,
						Inserts: remoteTriples(rec.Inserts),
						Deletes: remoteTriples(rec.Deletes),
					}
					_, werr := client.Write(ctx, req)
					return werr
				})
				if err != nil {
					return fmt.Errorf("cluster: resync %s from wal: %w", endpoint, err)
				}
				return nil
			}
			return fmt.Errorf("%w: replica at %d, wal starts at %d", ErrLogTruncated, sz.WriteSeq, r.wlog.FirstSeq())
		}
		return fmt.Errorf("%w: replica at %d, log starts at %d", ErrLogTruncated, sz.WriteSeq, r.logStart)
	}
	for _, batch := range r.writeLog[from-r.logStart:] {
		req := &remote.WriteRequest{Seq: batch.Seq, Inserts: batch.Inserts, Deletes: batch.Deletes}
		if _, err := client.Write(ctx, req); err != nil {
			return fmt.Errorf("cluster: resync %s at batch %d: %w", endpoint, batch.Seq, err)
		}
	}
	return nil
}

// WriteLogStats describes the replay log's span: the in-memory cache, the
// WAL position behind it (zero when the coordinator is volatile), and the
// sequencer head. Cluster health surfaces use it the way /statz surfaces a
// node's WAL fields.
type WriteLogStats struct {
	Seq        uint64 `json:"seq"`             // last committed batch
	CacheStart uint64 `json:"cache_start"`     // oldest cached batch (0 = empty)
	CacheLen   int    `json:"cache_len"`       // cached batches
	WALEnabled bool   `json:"wal_enabled"`     // write-ahead log attached
	WALFirst   uint64 `json:"wal_first_seq"`   // oldest journaled batch
	WALDurable uint64 `json:"wal_durable_seq"` // last fsync-covered batch
	WALSegs    int    `json:"wal_segments"`    // live segment files
}

// WriteLog reports the replay log's current span.
func (r *Remote) WriteLog() WriteLogStats {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	s := WriteLogStats{Seq: r.writeSeq, CacheStart: r.logStart, CacheLen: len(r.writeLog)}
	if r.wlog != nil {
		ws := r.wlog.Stats()
		s.WALEnabled = true
		s.WALFirst = ws.FirstSeq
		s.WALDurable = ws.DurableSeq
		s.WALSegs = ws.Segments
	}
	return s
}

// ReconcileAll forces a synchronous reconciliation on every distinct
// replica endpoint of the current epoch, so pending deltas everywhere are
// merged into fresh base stores.
func (r *Remote) ReconcileAll(ctx context.Context) error {
	ep := r.pin()
	defer r.unpin(ep)
	targets := distinctEndpoints(ep.replicas)
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, target := range targets {
		client := r.endpointClient(target)
		if client == nil {
			continue
		}
		wg.Add(1)
		go func(i int, c *remote.Client) {
			defer wg.Done()
			_, err := c.Reconcile(ctx)
			errs[i] = err
		}(i, client)
	}
	wg.Wait()
	return errors.Join(errs...)
}
