package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"parj/internal/remote"
)

// write.go — the coordinator's side of the live write path.
//
// The coordinator is the single sequencer of the cluster write stream:
// Write serializes batches under writeMu, stamps each with the next
// sequence number, and fans it out to every distinct replica endpoint of
// the pinned routing epoch. Replicas apply batches in identical order with
// deletes before inserts, which keeps their append-only dictionaries —
// and therefore their dictionary-encoded shard results — byte-identical.
//
// Fault model: a replica that misses a batch (killed mid-burst, network
// cut) is removed from the routing table so queries stop landing on its
// stale store; the batch itself still commits on the surviving replicas.
// The coordinator keeps a bounded replay log, so a replica that comes back
// (or a fresh one warmed from a peer snapshot that embeds its write-stream
// position) is caught up by Resync — replaying exactly the log suffix the
// snapshot does not contain — before it is re-admitted.

// defaultWriteLogCap bounds the replay log when RemoteOptions.WriteLogCap
// is zero.
const defaultWriteLogCap = 1024

// ErrLogTruncated reports a resync target that is further behind than the
// replay log reaches; the replica must warm from a peer snapshot first.
var ErrLogTruncated = errors.New("cluster: replica behind truncated write log")

// WriteSeq reports the last committed write-batch sequence number.
func (r *Remote) WriteSeq() uint64 {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	return r.writeSeq
}

// Write commits one write batch to the cluster: it assigns the next
// sequence number, appends the batch to the replay log, and fans it out to
// every distinct replica endpoint. Endpoints that fail to apply the batch
// are removed from the routing table (queries must not read their stale
// stores); the returned error is non-nil only when some shard group would
// be left with no current replica — the batch is still committed on the
// survivors and recorded in the log either way, so a recovered replica can
// be caught up with Resync.
func (r *Remote) Write(ctx context.Context, inserts, deletes []remote.Triple) (uint64, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	seq := r.writeSeq + 1
	batch := WriteBatch{Seq: seq, Inserts: inserts, Deletes: deletes}

	ep := r.pin()
	defer r.unpin(ep)
	req := &remote.WriteRequest{Seq: seq, Inserts: inserts, Deletes: deletes}
	targets := distinctEndpoints(ep.replicas)
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, target := range targets {
		client := r.endpointClient(target)
		if client == nil {
			continue // retired between pin and now; nothing to apply
		}
		wg.Add(1)
		go func(i int, c *remote.Client) {
			defer wg.Done()
			_, err := c.Write(ctx, req)
			errs[i] = err
		}(i, client)
	}
	wg.Wait()

	// Commit: the batch is durable in the log even if some replica failed —
	// sequence numbers never fork.
	r.writeSeq = seq
	if r.logStart == 0 {
		r.logStart = seq
	}
	r.writeLog = append(r.writeLog, batch)
	logCap := r.opts.WriteLogCap
	if logCap <= 0 {
		logCap = defaultWriteLogCap
	}
	if over := len(r.writeLog) - logCap; over > 0 {
		r.writeLog = append([]WriteBatch(nil), r.writeLog[over:]...)
		r.logStart += uint64(over)
	}

	var failed []string
	for i, err := range errs {
		if err != nil {
			failed = append(failed, targets[i])
		}
	}
	if len(failed) == 0 {
		return seq, nil
	}
	return seq, r.evictStale(ctx, failed)
}

// evictStale removes endpoints that missed a write batch from every shard
// group that retains at least one other replica. An endpoint that is the
// sole replica of some group cannot be removed (the group would be
// unroutable); that is reported as an error — the group is serving a stale
// store until the replica is resynced.
func (r *Remote) evictStale(ctx context.Context, failed []string) error {
	_, replicas := r.Topology()
	stale := make(map[string]bool, len(failed))
	for _, ep := range failed {
		stale[ep] = true
	}
	var soleStale []string
	changed := false
	for s, reps := range replicas {
		kept := reps[:0]
		for _, ep := range reps {
			if !stale[ep] {
				kept = append(kept, ep)
			}
		}
		if len(kept) == 0 {
			// Removing every replica would orphan the group; keep it as-is
			// and surface the staleness.
			soleStale = append(soleStale, fmt.Sprintf("group %d: %v", s, reps))
			continue
		}
		if len(kept) != len(reps) {
			changed = true
			replicas[s] = kept
		}
	}
	var errs []error
	if changed {
		if _, err := r.Reconfigure(ctx, replicas); err != nil {
			errs = append(errs, fmt.Errorf("cluster: evicting stale replicas %v: %w", failed, err))
		}
	}
	if len(soleStale) > 0 {
		errs = append(errs, fmt.Errorf("cluster: write missed sole replicas (%v); resync required", soleStale))
	}
	return errors.Join(errs...)
}

// Resync catches a replica up with the write stream: it reads the
// replica's applied sequence from /statz and replays the missing log
// suffix in order. The write stream is held still for the duration, so a
// successful resync leaves the replica exactly current — ready for
// AddReplica. Returns ErrLogTruncated when the replica is too far behind
// for the bounded log; it must warm from a peer snapshot (which embeds a
// newer stream position) and try again.
func (r *Remote) Resync(ctx context.Context, endpoint string) error {
	client := r.endpointClient(endpoint)
	owned := false
	if client == nil {
		// Not (or no longer) in the routing table — a rejoining node.
		client = remote.NewClient(endpoint, 0)
		owned = true
	}
	if owned {
		defer client.Close()
	}
	sz, err := client.Statz(ctx)
	if err != nil {
		return err
	}

	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if sz.WriteSeq >= r.writeSeq {
		return nil
	}
	if sz.WriteSeq+1 < r.logStart {
		return fmt.Errorf("%w: replica at %d, log starts at %d", ErrLogTruncated, sz.WriteSeq, r.logStart)
	}
	for _, batch := range r.writeLog[sz.WriteSeq+1-r.logStart:] {
		req := &remote.WriteRequest{Seq: batch.Seq, Inserts: batch.Inserts, Deletes: batch.Deletes}
		if _, err := client.Write(ctx, req); err != nil {
			return fmt.Errorf("cluster: resync %s at batch %d: %w", endpoint, batch.Seq, err)
		}
	}
	return nil
}

// ReconcileAll forces a synchronous reconciliation on every distinct
// replica endpoint of the current epoch, so pending deltas everywhere are
// merged into fresh base stores.
func (r *Remote) ReconcileAll(ctx context.Context) error {
	ep := r.pin()
	defer r.unpin(ep)
	targets := distinctEndpoints(ep.replicas)
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, target := range targets {
		client := r.endpointClient(target)
		if client == nil {
			continue
		}
		wg.Add(1)
		go func(i int, c *remote.Client) {
			defer wg.Done()
			_, err := c.Reconcile(ctx)
			errs[i] = err
		}(i, client)
	}
	wg.Wait()
	return errors.Join(errs...)
}
