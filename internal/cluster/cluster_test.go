package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"parj/internal/core"
	"parj/internal/lubm"
	"parj/internal/optimizer"
	"parj/internal/rdf"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
)

type fixture struct {
	st *store.Store
	ss *stats.Stats
}

func lubmFixture(t testing.TB) *fixture {
	t.Helper()
	st := store.LoadTriples(lubm.Triples(2, lubm.Config{}), store.BuildOptions{BuildPosIndex: true})
	return &fixture{st: st, ss: stats.New(st)}
}

func (f *fixture) plan(t testing.TB, src string) *optimizer.Plan {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.Optimize(q, f.st, f.ss)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClusterMatchesSingleMachine(t *testing.T) {
	f := lubmFixture(t)
	for _, q := range lubm.Queries() {
		plan := f.plan(t, q.SPARQL)
		single, err := core.Execute(f.st, plan, core.Options{Threads: 6, Silent: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, nodes := range []int{1, 2, 3, 5} {
			c := New(f.st, Options{Nodes: nodes, ThreadsPerNode: 2, Strategy: core.AdaptiveIndex})
			got, err := c.Count(plan)
			if err != nil {
				t.Fatalf("%s nodes=%d: %v", q.Name, nodes, err)
			}
			if got != single.Count {
				t.Errorf("%s nodes=%d: cluster count %d != single %d", q.Name, nodes, got, single.Count)
			}
		}
	}
}

func TestClusterGathersRows(t *testing.T) {
	f := lubmFixture(t)
	plan := f.plan(t, `SELECT ?x ?y ?z WHERE {
		?x `+lubm.PredMemberOf+` ?z .
		?z `+lubm.PredSubOrgOf+` ?y .
		?x `+lubm.PredUndergradFrom+` ?y }`)
	c := New(f.st, Options{Nodes: 3, ThreadsPerNode: 2})
	res, err := c.Execute(plan, false)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Rows)) != res.Count || res.Count == 0 {
		t.Fatalf("gathered %d rows, count %d", len(res.Rows), res.Count)
	}
	var perNodeSum int64
	for _, n := range res.PerNode {
		perNodeSum += n
	}
	if perNodeSum != res.Count {
		t.Errorf("per-node counts sum to %d, total %d", perNodeSum, res.Count)
	}
	if res.Stats.Total() == 0 {
		t.Error("no probe stats gathered")
	}
}

func TestClusterShardBalance(t *testing.T) {
	// With a scan-heavy query the shard assignment should spread work
	// across nodes (not perfectly, but no node should be idle).
	f := lubmFixture(t)
	plan := f.plan(t, `SELECT ?x ?y WHERE { ?x `+lubm.PredTakesCourse+` ?y }`)
	c := New(f.st, Options{Nodes: 4, ThreadsPerNode: 1})
	res, err := c.Execute(plan, true)
	if err != nil {
		t.Fatal(err)
	}
	for n, cnt := range res.PerNode {
		if cnt == 0 {
			t.Errorf("node %d produced no rows; shard assignment broken: %v", n, res.PerNode)
		}
	}
}

// TestClusterDistinctAndLimit checks the coordinator-side gather phase:
// DISTINCT dedups across node boundaries and LIMIT truncates to exactly
// min(LIMIT, global), for every silent/row combination.
func TestClusterDistinctAndLimit(t *testing.T) {
	f := lubmFixture(t)
	cases := []string{
		`SELECT DISTINCT ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`,
		`SELECT ?x WHERE { ?x ` + lubm.PredTakesCourse + ` ?y } LIMIT 5`,
		`SELECT ?x WHERE { ?x ` + lubm.PredTakesCourse + ` ?y } LIMIT 1000000`,
		`SELECT DISTINCT ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y } LIMIT 7`,
		`SELECT ?x WHERE { ?x ` + lubm.PredTakesCourse + ` ?y } LIMIT 0`,
	}
	for _, src := range cases {
		plan := f.plan(t, src)
		single, err := core.Execute(f.st, plan, core.Options{Threads: 6, Silent: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, nodes := range []int{1, 2, 3} {
			c := New(f.st, Options{Nodes: nodes, ThreadsPerNode: 2})
			got, err := c.Count(plan)
			if err != nil {
				t.Fatalf("%s nodes=%d: %v", src, nodes, err)
			}
			if got != single.Count {
				t.Errorf("%s nodes=%d: cluster count %d != single %d", src, nodes, got, single.Count)
			}
			res, err := c.Execute(plan, false)
			if err != nil {
				t.Fatalf("%s nodes=%d rows: %v", src, nodes, err)
			}
			if int64(len(res.Rows)) != single.Count || res.Count != single.Count {
				t.Errorf("%s nodes=%d: gathered %d rows (count %d), want %d",
					src, nodes, len(res.Rows), res.Count, single.Count)
			}
			if plan.Distinct {
				seen := map[string]bool{}
				for _, row := range res.Rows {
					k := fmt.Sprint(row)
					if seen[k] {
						t.Errorf("%s nodes=%d: duplicate row %v after gather", src, nodes, row)
					}
					seen[k] = true
				}
			}
		}
	}
}

func TestClusterEmptyPlan(t *testing.T) {
	f := lubmFixture(t)
	plan := f.plan(t, `SELECT ?x WHERE { ?x <nosuch> ?y }`)
	c := New(f.st, Options{Nodes: 3})
	n, err := c.Count(plan)
	if err != nil || n != 0 {
		t.Errorf("empty plan: n=%d err=%v", n, err)
	}
}

// Property: for random small graphs and queries, any node/thread split
// yields the single-machine count.
func TestQuickClusterEquivalence(t *testing.T) {
	fq := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var triples []rdf.Triple
		for i := 0; i < 80+rng.Intn(80); i++ {
			triples = append(triples, rdf.Triple{
				S: fmt.Sprintf("<r%d>", rng.Intn(20)),
				P: fmt.Sprintf("<p%d>", rng.Intn(3)),
				O: fmt.Sprintf("<r%d>", rng.Intn(20)),
			})
		}
		st := store.LoadTriples(triples, store.BuildOptions{})
		ss := stats.New(st)
		vars := []string{"a", "b", "c"}
		src := "SELECT * WHERE {"
		for i := 0; i < 1+rng.Intn(3); i++ {
			src += fmt.Sprintf(" ?%s <p%d> ?%s .", vars[rng.Intn(3)], rng.Intn(3), vars[rng.Intn(3)])
		}
		src += " }"
		q, err := sparql.Parse(src)
		if err != nil {
			return true
		}
		plan, err := optimizer.Optimize(q, st, ss)
		if err != nil {
			return false
		}
		single, err := core.Execute(st, plan, core.Options{Threads: 4, Silent: true})
		if err != nil {
			return false
		}
		c := New(st, Options{Nodes: 1 + rng.Intn(4), ThreadsPerNode: 1 + rng.Intn(3)})
		got, err := c.Count(plan)
		if err != nil {
			return false
		}
		return got == single.Count
	}
	if err := quick.Check(fq, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestClusterPerNodeSumsToTotal pins the shard-boundary accounting across
// node ranges: for plain (non-DISTINCT, non-LIMIT) queries the per-node row
// counters must sum to the coordinator's total — and to the single-machine
// count — for every node and thread-per-node combination, so a morsel
// decomposition that leaked or double-claimed tuples at a range boundary
// cannot hide behind an aggregate that happens to match.
func TestClusterPerNodeSumsToTotal(t *testing.T) {
	f := lubmFixture(t)
	queries := []string{
		`SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`,
		`SELECT ?s ?p ?d WHERE { ?s ` + lubm.PredAdvisor + ` ?p . ?p ` + lubm.PredWorksFor + ` ?d }`,
	}
	for _, src := range queries {
		plan := f.plan(t, src)
		single, err := core.Execute(f.st, plan, core.Options{Threads: 4, Silent: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, nodes := range []int{1, 2, 3, 5} {
			for _, tpn := range []int{1, 2} {
				c := New(f.st, Options{Nodes: nodes, ThreadsPerNode: tpn})
				res, err := c.Execute(plan, true)
				if err != nil {
					t.Fatalf("%q nodes=%d tpn=%d: %v", src, nodes, tpn, err)
				}
				var sum int64
				for _, n := range res.PerNode {
					sum += n
				}
				if sum != res.Count || res.Count != single.Count {
					t.Errorf("%q nodes=%d tpn=%d: per-node sum %d, total %d, single-machine %d (per node: %v)",
						src, nodes, tpn, sum, res.Count, single.Count, res.PerNode)
				}
			}
		}
	}
}

// TestClusterWCOJDeterminism runs cyclic queries with the worst-case-optimal
// operator forced on every node of a 2×2 cluster and checks the gathered
// result against the single-machine pipeline: same row multiset, and per-node
// counters that sum to the total. This pins the tentpole's cluster contract —
// the WCOJ domain shards through the same deterministic layer as makeShards,
// so node ranges stay disjoint and exhaustive.
func TestClusterWCOJDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var triples []rdf.Triple
	const n = 50
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.12 {
				triples = append(triples, rdf.Triple{
					S: fmt.Sprintf("<n%d>", i), P: "<e>", O: fmt.Sprintf("<n%d>", j),
				})
			}
		}
	}
	st := store.LoadTriples(triples, store.BuildOptions{BuildPosIndex: true})
	ss := stats.New(st)
	f := &fixture{st: st, ss: ss}
	queries := []string{
		`SELECT * WHERE { ?a <e> ?b . ?b <e> ?c . ?c <e> ?a }`,
		`SELECT * WHERE { ?a <e> ?b . ?b <e> ?c . ?c <e> ?d . ?d <e> ?a }`,
		`SELECT ?x WHERE { ?x <e> ?x }`,
		`SELECT DISTINCT ?a WHERE { ?a <e> ?b . ?b <e> ?a }`,
	}
	for _, src := range queries {
		plan := f.plan(t, src)
		single, err := core.Execute(st, plan, core.Options{Threads: 4, Join: core.JoinPipeline})
		if err != nil {
			t.Fatal(err)
		}
		for _, join := range []core.JoinAlgo{core.JoinWCOJ, core.JoinAuto} {
			c := New(st, Options{Nodes: 2, ThreadsPerNode: 2, Join: join})
			res, err := c.Execute(plan, false)
			if err != nil {
				t.Fatalf("%s join=%v: %v", src, join, err)
			}
			if res.Count != single.Count {
				t.Errorf("%s join=%v: cluster count %d != single-machine pipeline %d",
					src, join, res.Count, single.Count)
			}
			if got, want := canonRows(res.Rows), canonRows(single.Rows); got != want {
				t.Errorf("%s join=%v: cluster rows differ from pipeline rows", src, join)
			}
			if !plan.Distinct {
				var sum int64
				for _, n := range res.PerNode {
					sum += n
				}
				if sum != res.Count {
					t.Errorf("%s join=%v: per-node sum %d, total %d (%v)",
						src, join, sum, res.Count, res.PerNode)
				}
			}
		}
	}
}

// canonRows renders a row multiset order-independently.
func canonRows(rows [][]uint32) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = fmt.Sprint(r)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}
