package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parj/internal/core"
	"parj/internal/governance"
	"parj/internal/remote"
	"parj/internal/resilience"
	"parj/internal/search"
	"parj/internal/sparql"
	"parj/internal/wal"
)

// Policy decides how the coordinator degrades when a shard cannot be
// served by any replica.
type Policy int

const (
	// FailFast cancels the whole query on the first shard failure and
	// returns a typed error — the strict default.
	FailFast Policy = iota
	// Partial returns the rows from the shards that did answer, with
	// RemoteResult.Completeness reporting the served fraction. DISTINCT and
	// LIMIT stay correct on the served subset; counts are lower bounds.
	Partial
)

func (p Policy) String() string {
	if p == Partial {
		return "partial"
	}
	return "fail-fast"
}

// RemoteOptions configures a networked coordinator.
type RemoteOptions struct {
	// Replicas[s] lists the endpoint base URLs that can serve shard group s
	// (every node is a full replica; the groups partition the global shard
	// range). Required, each group non-empty.
	Replicas [][]string
	// ThreadsPerShard is each node's local worker count per request
	// (default 1); the global sharding is len(Replicas)×ThreadsPerShard.
	ThreadsPerShard int
	// Strategy is the probe strategy every node uses.
	Strategy core.Strategy
	// Entailment selects RDFS-aware planning on the nodes.
	Entailment bool

	// ShardTimeout bounds one attempt against one replica (0 = no
	// per-attempt deadline beyond the caller's context).
	ShardTimeout time.Duration
	// MaxAttempts caps attempts per shard across its replicas
	// (default 2×replicas).
	MaxAttempts int
	// Backoff paces sequential retries (zero value = 10ms base, 1s cap).
	Backoff resilience.Backoff
	// Seed drives retry jitter; a fixed seed makes schedules reproducible.
	Seed int64

	// HedgeAfter launches a second attempt on the next replica when the
	// first is still pending after this delay (0 disables hedging). When
	// HedgeQuantile is also set and enough latencies have been observed,
	// the delay adapts to that quantile instead.
	HedgeAfter    time.Duration
	HedgeQuantile float64

	// Policy selects FailFast (default) or Partial degradation.
	Policy Policy
	// Breaker configures the per-endpoint circuit breakers.
	Breaker resilience.BreakerOptions
	// HealthInterval enables background health probing of every endpoint
	// (0 = disabled); unhealthy replicas are deprioritized, not excluded.
	HealthInterval time.Duration
	// Clock injects time for retries, hedging and breakers (nil = wall
	// clock). Tests pass a FakeClock to make every timer deterministic.
	Clock resilience.Clock

	// MaxResultRows / MemoryBudget forward per-query governance budgets to
	// every node (0 = unlimited).
	MaxResultRows int64
	MemoryBudget  int64

	// HeatAlpha is the EWMA smoothing factor of the per-shard-group heat
	// tracker (0 = default 0.2). The tracker itself is always on — it is
	// passive aggregation of stats already on every response; acting on it
	// (rebalancing) only happens when a policy is invoked explicitly.
	HeatAlpha float64

	// Write configures the coordinator's write stream: replay-log
	// retention and optional write-ahead durability (write.go).
	Write WriteOptions
}

// WriteOptions configures the coordinator's side of the live write path.
type WriteOptions struct {
	// ReplayLogSize bounds the in-memory replay cache (0 = default 1024
	// batches). With a WAL attached the cache is just the hot tail: a
	// replica behind the cache is still caught up by log replay, and
	// ErrLogTruncated occurs only past the WAL's own retention.
	ReplayLogSize int

	// WALDir enables the coordinator's write-ahead log: every batch is
	// journaled and fsynced before it fans out to the replicas, so the
	// sequencer position — and the replay log — survive a coordinator
	// restart. Empty (and WALFS nil) keeps the log purely in memory.
	WALDir string
	// WALFS overrides the log's filesystem (crash-injection tests);
	// when set, WALDir is ignored.
	WALFS wal.FS
	// WALSync is the fsync policy (default wal.SyncAlways: group commit).
	WALSync wal.SyncPolicy
	// WALSyncInterval is the flush period under wal.SyncInterval.
	WALSyncInterval time.Duration
	// WALSegmentBytes caps a log segment before rotation (0 = 4 MiB).
	WALSegmentBytes int64
	// WALRetainBatches prunes log segments once the log spans more than
	// this many batches (0 = retain everything). Pruning is per whole
	// segment, so the log may retain somewhat more.
	WALRetainBatches uint64
}

// walEnabled reports whether the coordinator journals its write stream.
func (w WriteOptions) walEnabled() bool { return w.WALDir != "" || w.WALFS != nil }

// ShardError records which shard failed and why; Unwrap exposes the cause
// so errors.Is sees the governance taxonomy through it.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }
func (e *ShardError) Unwrap() error { return e.Err }

// RemoteResult is the coordinator-side outcome of a distributed query.
type RemoteResult struct {
	// Vars names the projected columns.
	Vars []string
	// Rows holds the gathered, dictionary-encoded rows (nil in silent mode).
	Rows [][]uint32
	// Count is the number of result rows after coordinator-side DISTINCT
	// and LIMIT.
	Count int64
	// Stats aggregates probe statistics across all shards.
	Stats search.Stats
	// PerShard reports each shard group's row contribution (pre-merge).
	PerShard []int64
	// Completeness is the fraction of shard groups that answered (1 under
	// FailFast success; may be lower under Partial).
	Completeness float64
	// ShardErrors, indexed by shard group, is non-nil where a group failed
	// (only populated under Partial; FailFast returns the error instead).
	ShardErrors []error
	// Attempts counts requests actually sent, across all shards, retries
	// and hedges — 2×shards on a healthy cluster means hedging fired.
	Attempts int64
}

// Remote is a fault-tolerant coordinator over networked shard nodes. It
// fans a query out to one replica per shard group, retries and hedges
// around slow or failed replicas, trips per-endpoint circuit breakers, and
// merges the shard results with coordinator-side DISTINCT/LIMIT.
//
// The routing table is live: Reconfigure swaps in a new replica layout
// while queries are in flight (see topology.go), and the heat tracker
// aggregates every response's scheduler stats into per-shard-group load
// estimates that a RebalancePolicy can turn into promotions and demotions.
type Remote struct {
	opts    RemoteOptions
	tracker *resilience.LatencyTracker
	jitter  *resilience.Jitter
	clock   resilience.Clock
	heat    *HeatTracker
	health  *resilience.HealthChecker

	// topoMu guards the epoch machinery in topology.go: the current
	// epoch, retired epochs still draining, and the endpoint registry.
	topoMu         sync.Mutex
	cur            *epoch
	drainingEpochs []*epoch
	endpoints      map[string]*endpointState
	version        int64
	closed         bool

	// writeMu serializes the cluster write stream (write.go): one batch at
	// a time gets the next sequence number and fans out to every replica.
	writeMu  sync.Mutex
	writeSeq uint64
	// writeLog is the bounded replay log of recent batches: writeLog[i] has
	// sequence logStart+i, and the log always ends at writeSeq. A replica
	// that fell behind by at most len(writeLog) batches is caught up by
	// replay; one further behind needs a snapshot warm first.
	writeLog []WriteBatch
	logStart uint64
	// wlog, when non-nil, is the durable backing of the replay log: every
	// batch is appended (and fsynced per the policy) before fan-out, and
	// Resync falls back to it when a replica is behind the in-memory
	// cache. Guarded by writeMu.
	wlog *wal.Log
}

// WriteBatch is one sequenced batch in the coordinator's replay log.
type WriteBatch struct {
	Seq     uint64
	Inserts []remote.Triple
	Deletes []remote.Triple
}

// NewRemote builds a coordinator. Close must be called to release clients
// and the health checker.
func NewRemote(opts RemoteOptions) (*Remote, error) {
	if err := validateReplicas(opts.Replicas); err != nil {
		return nil, err
	}
	if opts.ThreadsPerShard <= 0 {
		opts.ThreadsPerShard = 1
	}
	if opts.Clock == nil {
		opts.Clock = resilience.RealClock{}
	}
	r := &Remote{
		opts:      opts,
		tracker:   resilience.NewLatencyTracker(64),
		jitter:    resilience.NewJitter(opts.Seed),
		clock:     opts.Clock,
		heat:      NewHeatTracker(len(opts.Replicas), opts.HeatAlpha),
		endpoints: make(map[string]*endpointState),
	}
	if opts.Write.walEnabled() {
		if err := r.recoverWriteLog(); err != nil {
			return nil, err
		}
	}
	r.topoMu.Lock()
	r.cur = r.buildEpochLocked(opts.Replicas, nil)
	r.topoMu.Unlock()
	if opts.HealthInterval > 0 {
		// The probe resolves the endpoint through the live registry, so
		// replicas admitted later are probed with their own clients and
		// retired ones stop being dialed.
		r.health = resilience.NewHealthChecker(opts.Clock, opts.HealthInterval, distinctEndpoints(opts.Replicas),
			func(ctx context.Context, ep string) error {
				c := r.endpointClient(ep)
				if c == nil {
					return nil // retired mid-sweep; verdict is moot
				}
				return c.Health(ctx)
			})
	}
	return r, nil
}

// endpointClient resolves an endpoint to its registered client (nil if the
// endpoint has been retired).
func (r *Remote) endpointClient(ep string) *remote.Client {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	if st := r.endpoints[ep]; st != nil {
		return st.client
	}
	return nil
}

// Close stops the health checker, closes the write-ahead log if one is
// attached, and releases every epoch and endpoint.
func (r *Remote) Close() {
	r.health.Close()
	r.writeMu.Lock()
	if r.wlog != nil {
		r.wlog.Close()
		r.wlog = nil
	}
	r.writeMu.Unlock()
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.cur.retired = true
	for _, e := range append([]*epoch{r.cur}, r.drainingEpochs...) {
		r.releaseEpochLocked(e)
	}
	r.drainingEpochs = nil
}

// Shards reports the number of shard groups in the current topology.
func (r *Remote) Shards() int {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	return len(r.cur.replicas)
}

// Execute runs query across the cluster. The coordinator parses the query
// locally only to learn DISTINCT/LIMIT for the gather phase; planning
// happens on the nodes against their replicas.
func (r *Remote) Execute(ctx context.Context, query string, silent bool) (*RemoteResult, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	// Pin the current epoch: this query routes every attempt, retry and
	// hedge on it, even if Reconfigure swaps the table mid-flight.
	ep := r.pin()
	defer r.unpin(ep)
	S := len(ep.replicas)
	total := S * r.opts.ThreadsPerShard
	// DISTINCT needs the actual rows at the coordinator to dedup globally,
	// even when the caller only wants a count.
	wireSilent := silent && !q.Distinct

	base := remote.ExecRequest{
		Query:         query,
		Entailment:    r.opts.Entailment,
		Strategy:      int(r.opts.Strategy),
		TotalShards:   total,
		Silent:        wireSilent,
		MaxResultRows: r.opts.MaxResultRows,
		MemoryBudget:  r.opts.MemoryBudget,
	}
	if r.opts.ShardTimeout > 0 {
		base.TimeoutMS = r.opts.ShardTimeout.Milliseconds()
	}

	groupCtx, cancelGroup := context.WithCancel(ctx)
	defer cancelGroup()

	type shardOut struct {
		resp *remote.ExecResponse
		err  error
	}
	outs := make([]shardOut, S)
	var attempts atomic.Int64
	var wg sync.WaitGroup
	var failFastOnce sync.Once
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			req := base
			req.ShardFrom = s * r.opts.ThreadsPerShard
			req.ShardTo = (s + 1) * r.opts.ThreadsPerShard
			resp, err := r.execShard(groupCtx, ep, s, &req, &attempts)
			outs[s] = shardOut{resp: resp, err: err}
			if err != nil && r.opts.Policy == FailFast {
				failFastOnce.Do(cancelGroup)
			}
		}(s)
	}
	wg.Wait()

	res := &RemoteResult{
		PerShard:    make([]int64, S),
		ShardErrors: make([]error, S),
		Attempts:    attempts.Load(),
	}
	served := 0
	var firstErr error
	for s, o := range outs {
		if o.err != nil {
			se := &ShardError{Shard: s, Err: o.err}
			res.ShardErrors[s] = se
			// Prefer the originating failure over peers' cancellations
			// triggered by our own FailFast group cancel.
			if firstErr == nil || (errors.Is(firstErr, governance.ErrCanceled) && !errors.Is(o.err, governance.ErrCanceled)) {
				firstErr = se
			}
			continue
		}
		served++
		if res.Vars == nil {
			res.Vars = o.resp.Vars
		}
		res.PerShard[s] = o.resp.Count
		res.Stats.Add(o.resp.Stats)
		r.heat.Observe(s, o.resp.Sched)
	}
	res.Completeness = float64(served) / float64(S)
	if r.opts.Policy == FailFast && firstErr != nil {
		return nil, firstErr
	}
	if served == 0 {
		if firstErr == nil {
			firstErr = errors.New("cluster: no shards served")
		}
		return res, firstErr
	}

	// Gather phase, in shard order for determinism. Every shard has
	// already applied DISTINCT and LIMIT locally; the coordinator repeats
	// exactly the same compaction on the merged rows, which yields the
	// global answer (min(LIMIT, |distinct global rows|)).
	if !wireSilent {
		var rows [][]uint32
		for _, o := range outs {
			if o.err == nil {
				rows = append(rows, o.resp.Rows...)
			}
		}
		if q.Distinct {
			rows = core.DedupRows(rows)
		}
		if q.HasLimit && len(rows) > q.Limit {
			rows = rows[:q.Limit]
		}
		res.Count = int64(len(rows))
		if !silent {
			res.Rows = rows
		}
	} else {
		for _, o := range outs {
			if o.err == nil {
				res.Count += o.resp.Count
			}
		}
		// Each shard already truncated its count to LIMIT, so the capped
		// sum equals min(LIMIT, global count).
		if q.HasLimit && res.Count > int64(q.Limit) {
			res.Count = int64(q.Limit)
		}
	}
	return res, nil
}

// Count is Execute in silent mode.
func (r *Remote) Count(ctx context.Context, query string) (int64, error) {
	res, err := r.Execute(ctx, query, true)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// replicaOrder returns the replica indices for shard s of epoch ep in
// routing preference order. Replicas split into three tiers: ready
// (healthy, not inside a shed backoff window), shedding (healthy but
// recently rejected work with an overload — still eligible, because when
// every peer is also busy a busy replica beats no replica), and down
// (failing health probes). Within the ready tier the leader is chosen by
// power-of-two-choices: sample two distinct candidates from the seeded
// jitter stream and lead with the one carrying fewer in-flight attempts
// (smoothed latency as tiebreak) — the classic result that two random
// choices track load nearly as well as global knowledge, without a
// coordination point. The rest of each tier rotates by shard index so
// concurrent shards spread instead of all hammering one replica.
func (r *Remote) replicaOrder(ep *epoch, s int) []int {
	reps := ep.replicas[s]
	var ready, shedding, down []int
	for i := range reps {
		switch {
		case !r.health.Healthy(reps[i]):
			down = append(down, i)
		case ep.loads[s][i].Overloaded():
			shedding = append(shedding, i)
		default:
			ready = append(ready, i)
		}
	}
	rotate := func(xs []int) []int {
		if len(xs) < 2 {
			return xs
		}
		k := s % len(xs)
		return append(xs[k:], xs[:k]...)
	}
	if len(ready) >= 2 {
		a := r.jitter.Intn(len(ready))
		b := r.jitter.Intn(len(ready) - 1)
		if b >= a {
			b++
		}
		if ep.loads[s][ready[b]].Less(ep.loads[s][ready[a]]) {
			a, b = b, a
		}
		lead := []int{ready[a], ready[b]}
		var rest []int
		for _, i := range rotate(ready) {
			if i != ready[a] && i != ready[b] {
				rest = append(rest, i)
			}
		}
		ready = append(lead, rest...)
	}
	return append(append(ready, rotate(shedding)...), rotate(down)...)
}

// saturated reports whether at least half of the epoch's distinct
// endpoints are inside a shed backoff window — the tier as a whole is
// overloaded, not one replica. Hedging is suppressed in that state: a
// hedge helps when one replica is slow among idle peers, but against a
// saturated tier it only doubles the offered load and feeds the storm.
func (r *Remote) saturated(ep *epoch) bool {
	total, over := 0, 0
	seen := make(map[string]bool)
	for s, reps := range ep.replicas {
		for i, e := range reps {
			if seen[e] {
				continue
			}
			seen[e] = true
			total++
			if ep.loads[s][i].Overloaded() {
				over++
			}
		}
	}
	return total > 0 && over*2 >= total
}

// hedgeDelay decides the current hedging delay: the configured latency
// quantile once the tracker has warmed up, else the static HedgeAfter.
// Zero disables hedging.
func (r *Remote) hedgeDelay() time.Duration {
	if r.opts.HedgeQuantile > 0 {
		if q, ok := r.tracker.Quantile(r.opts.HedgeQuantile); ok && q > 0 {
			return q
		}
	}
	return r.opts.HedgeAfter
}

// attemptOut is one replica attempt's outcome.
type attemptOut struct {
	breaker *resilience.Breaker
	resp    *remote.ExecResponse
	err     error
	elapsed time.Duration
}

// execShard serves one shard group: it walks the shard's replica order,
// retrying retryable failures with jittered backoff, hedging a second
// attempt when the first is slow, and consulting each endpoint's circuit
// breaker before sending. The first success wins; pending siblings are
// canceled and their breaker slots released. All routing state (endpoints,
// clients, breakers) comes from the pinned epoch.
func (r *Remote) execShard(ctx context.Context, ep *epoch, s int, req *remote.ExecRequest, attempts *atomic.Int64) (*remote.ExecResponse, error) {
	order := r.replicaOrder(ep, s)
	maxAttempts := r.opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 2 * len(order)
	}

	attemptCtx, cancelAttempts := context.WithCancel(ctx)
	defer cancelAttempts()
	results := make(chan attemptOut, maxAttempts)
	var wg sync.WaitGroup
	launched := 0
	pending := 0

	// launch sends req to the next replica whose breaker admits it.
	launch := func() bool {
		for probe := 0; probe < len(order); probe++ {
			rep := order[launched%len(order)]
			launched++
			breaker := ep.breakers[s][rep]
			if !breaker.Allow() {
				continue
			}
			pending++
			attempts.Add(1)
			client := ep.clients[s][rep]
			load := ep.loads[s][rep]
			// Deadline propagation: stamp this attempt with the client's
			// remaining budget, measured now — a retry after a slow first
			// attempt carries a smaller budget than the first did, and the
			// node refuses outright once the budget drops below its queue
			// delay. Context deadlines are wall-clock, so the budget is
			// computed against wall time even when r.clock is injected.
			areq := *req
			if dl, ok := ctx.Deadline(); ok {
				budgetMS := time.Until(dl).Milliseconds()
				if budgetMS < 1 {
					budgetMS = 1 // expired budgets fail via ctx, not a 0="no deadline" wire value
				}
				areq.DeadlineBudgetMS = budgetMS
			}
			load.Start()
			wg.Add(1)
			go func() {
				defer wg.Done()
				// The per-attempt deadline is enforced client-side too: a
				// black-holed replica (accepted connection, no bytes) must
				// not pin the attempt past its ShardTimeout.
				actx := attemptCtx
				if r.opts.ShardTimeout > 0 {
					var cancel context.CancelFunc
					actx, cancel = context.WithTimeout(attemptCtx, r.opts.ShardTimeout)
					defer cancel()
				}
				start := r.clock.Now()
				resp, err := client.Exec(actx, &areq)
				elapsed := r.clock.Now().Sub(start)
				switch {
				case err == nil:
					load.Finish(elapsed)
				case remote.Overloaded(err):
					// Feed the routing signal: back this endpoint off for
					// the node's own Retry-After hint (default 1s) so the
					// next replicaOrder prefers its peers.
					load.Abort()
					retryAfter := time.Second
					var ne *remote.NodeError
					if errors.As(err, &ne) && ne.RetryAfter > 0 {
						retryAfter = ne.RetryAfter
					}
					load.MarkOverloaded(retryAfter)
				default:
					load.Abort()
				}
				results <- attemptOut{breaker: breaker, resp: resp, err: err, elapsed: elapsed}
			}()
			return true
		}
		return false
	}

	// settle reports an attempt's outcome to its breaker. Attempts that
	// died because we canceled them are abandoned, not failed. Overload is
	// never a breaker failure: a 503 is the node's admission control doing
	// its job, and opening the breaker on it would evict a healthy-but-busy
	// replica and dump its traffic on peers — the launch goroutine already
	// fed it into the endpoint's load signal instead.
	settle := func(o attemptOut, abandoned bool) {
		br := o.breaker
		switch {
		case o.err == nil:
			br.Success()
		case remote.Overloaded(o.err):
			br.Abandon()
		case abandoned && !remote.NodeFault(o.err):
			br.Abandon()
		case remote.NodeFault(o.err):
			br.Failure()
		default:
			br.Abandon()
		}
	}
	// finish cancels outstanding attempts, waits for them, and settles
	// their breaker slots, so no goroutine or probe slot outlives the call.
	finish := func() {
		cancelAttempts()
		go func() { wg.Wait(); close(results) }()
		for o := range results {
			settle(o, true)
		}
	}

	if !launch() {
		finish()
		return nil, fmt.Errorf("cluster: shard %d: all replica breakers open: %w", s, governance.ErrOverloaded)
	}
	hedge := r.hedgeDelay()
	if hedge > 0 && r.saturated(ep) {
		// Hedge suppression: with half the tier shedding, a duplicate
		// attempt is pure storm amplification, not tail-latency insurance.
		hedge = 0
	}
	var hedgeCh <-chan time.Time
	if hedge > 0 && launched < maxAttempts {
		hedgeCh = r.clock.After(hedge)
	}

	retries := 0
	var lastErr error
	for pending > 0 {
		select {
		case o := <-results:
			pending--
			if o.err == nil {
				settle(o, false)
				r.tracker.Record(o.elapsed)
				finish()
				return o.resp, nil
			}
			// The attempt failed. Distinguish "this replica hit its own
			// ShardTimeout" (retryable elsewhere) from "the caller's
			// context expired" (fatal).
			timedOut := attemptTimedOut(o.err, ctx)
			settle(o, ctx.Err() != nil)
			if ctx.Err() != nil {
				finish()
				return nil, governance.CtxError(ctx)
			}
			lastErr = o.err
			if !remote.Retryable(o.err) && !timedOut {
				finish()
				return nil, o.err
			}
			if launched >= maxAttempts {
				continue // no budget to relaunch; drain any sibling
			}
			if pending > 0 {
				continue // a hedge is still running; let it race
			}
			// Sole attempt failed: back off, then try the next replica.
			if err := resilience.Sleep(ctx, r.clock, r.opts.Backoff.Delay(retries, r.jitter)); err != nil {
				finish()
				return nil, governance.CtxError(ctx)
			}
			retries++
			if !launch() {
				finish()
				return nil, fmt.Errorf("cluster: shard %d: all replica breakers open: %w", s, governance.ErrOverloaded)
			}
			if hedgeCh == nil && hedge > 0 && launched < maxAttempts {
				hedgeCh = r.clock.After(hedge)
			}
		case <-hedgeCh:
			hedgeCh = nil
			if pending == 1 && launched < maxAttempts {
				launch()
			}
		case <-ctx.Done():
			finish()
			return nil, governance.CtxError(ctx)
		}
	}

	finish()
	if lastErr == nil {
		lastErr = governance.ErrOverloaded
	}
	if attemptTimedOut(lastErr, ctx) {
		return nil, fmt.Errorf("cluster: shard %d: %d attempts timed out: %w", s, launched, governance.ErrDeadlineExceeded)
	}
	if !errorsHasGovernance(lastErr) {
		return nil, fmt.Errorf("cluster: shard %d unavailable after %d attempts: %v: %w", s, launched, lastErr, governance.ErrOverloaded)
	}
	return nil, fmt.Errorf("cluster: shard %d failed after %d attempts: %w", s, launched, lastErr)
}

// attemptTimedOut reports whether err is a per-attempt deadline (the
// replica was slow) rather than the caller's own context expiring.
func attemptTimedOut(err error, callerCtx context.Context) bool {
	if callerCtx.Err() != nil {
		return false
	}
	var te *remote.TransportError
	if errors.As(err, &te) {
		return errors.Is(te.Err, context.DeadlineExceeded)
	}
	return errors.Is(err, governance.ErrDeadlineExceeded)
}

// errorsHasGovernance reports whether err already unwraps to a typed
// governance sentinel, so the final wrap preserves rather than re-tags it.
func errorsHasGovernance(err error) bool {
	return errors.Is(err, governance.ErrOverloaded) ||
		errors.Is(err, governance.ErrDeadlineExceeded) ||
		errors.Is(err, governance.ErrBudgetExceeded) ||
		errors.Is(err, governance.ErrCanceled)
}
