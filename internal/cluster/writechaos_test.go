package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parj/internal/core"
	"parj/internal/live"
	"parj/internal/lubm"
	"parj/internal/optimizer"
	"parj/internal/rdf"
	"parj/internal/remote"
	"parj/internal/resilience"
	"parj/internal/resilience/chaos"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
	"parj/internal/testutil"
	"parj/internal/wal"
)

// writeNode builds one independent full replica over its own store and
// dictionaries — replicas only stay aligned because they load the same base
// and apply the same sequenced write stream, which is exactly the property
// under test.
func writeNode(t *testing.T, base []rdf.Triple) (*remote.Node, *httptest.Server) {
	t.Helper()
	st := store.LoadTriples(append([]rdf.Triple(nil), base...), store.BuildOptions{BuildPosIndex: true})
	n := remote.NewNode(st, nil, remote.NodeOptions{})
	return n, httptest.NewServer(n.Handler())
}

func wire(ts []rdf.Triple) []remote.Triple {
	out := make([]remote.Triple, len(ts))
	for i, tr := range ts {
		out[i] = remote.Triple{S: tr.S, P: tr.P, O: tr.O}
	}
	return out
}

// TestRemoteWriteChaos is the write-path acceptance scenario: a sequenced
// write burst flows through the coordinator while a query stream runs; one
// replica (behind a killable proxy, listed in both shard groups) dies mid-
// burst and is evicted without forking the sequence; a brand-new replica
// warms from a peer snapshot embedding the write-stream position, catches
// up through coordinator log replay, is admitted, and takes the rest of the
// stream; after ReconcileAll every surviving replica holds exactly the
// oracle triple set. LeakCheck covers the whole churn; coordinator timers
// run on a driven FakeClock.
func TestRemoteWriteChaos(t *testing.T) {
	defer testutil.LeakCheck(t)()
	base := lubm.Triples(2, lubm.Config{})
	f := lubmFixture(t) // identical build: same IDs as every replica's dictionaries
	nodeA, srvA := writeNode(t, base)
	defer srvA.Close()
	_, srvB := writeNode(t, base)
	defer srvB.Close()
	pB, err := chaos.New(hostport(srvB), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pB.Close()

	clk := resilience.NewFakeClock(time.Unix(0, 0))
	stopClock := driveClock(clk)
	defer stopClock()

	r, err := NewRemote(RemoteOptions{
		Replicas:        [][]string{{srvA.URL, pB.URL()}, {pB.URL(), srvA.URL}},
		ThreadsPerShard: 2,
		MaxAttempts:     4,
		Backoff:         resilience.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
		Seed:            7,
		HealthInterval:  100 * time.Millisecond,
		Clock:           clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// The coordinator-side mirror: a local replica of the write stream used
	// to verify per-replica state and decode distributed rows at the end.
	mst := store.LoadTriples(append([]rdf.Triple(nil), base...), store.BuildOptions{BuildPosIndex: true})
	mirror := live.New(mst, stats.New(mst), store.InferBuildOptions(mst))
	defer mirror.Quiesce()
	oracle := map[rdf.Triple]bool{}

	// All writes come from this one function (the coordinator serializes
	// them; the mirror must observe the same order).
	wi := 0
	write := func(t *testing.T) {
		t.Helper()
		wi++
		ins := []rdf.Triple{{S: fmt.Sprintf("<w-%d>", wi), P: "<wp>", O: fmt.Sprintf("<wo-%d>", wi%7)}}
		var dels []rdf.Triple
		if wi%3 == 0 && wi > 1 {
			// churn: delete an earlier write, and half the time reinsert it
			// in the same batch (deletes apply first).
			victim := rdf.Triple{S: fmt.Sprintf("<w-%d>", wi-1), P: "<wp>", O: fmt.Sprintf("<wo-%d>", (wi-1)%7)}
			dels = append(dels, victim)
			if wi%2 == 0 {
				ins = append(ins, victim)
			}
		}
		seq, err := r.Write(context.Background(), wire(ins), wire(dels))
		if err != nil {
			t.Fatalf("write %d: %v", wi, err)
		}
		if _, err := mirror.Apply(seq, ins, dels); err != nil {
			t.Fatalf("mirror apply %d: %v", seq, err)
		}
		for _, tr := range dels {
			delete(oracle, tr)
		}
		for _, tr := range ins {
			oracle[tr] = true
		}
	}

	// Concurrent query stream under FailFast: every query must return
	// oracle-exact rows no matter what the write path is doing. The queries
	// touch only the immutable LUBM predicates, so their answer is epoch-
	// independent — what's being tested is that the serving path stays
	// exact while epochs swap under it.
	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		qmu     sync.Mutex
		served  int
		streamE []error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			q := remoteQueries[i%len(remoteQueries)]
			res, err := r.Execute(context.Background(), q.src, false)
			qmu.Lock()
			if err != nil {
				streamE = append(streamE, fmt.Errorf("%s: %w", q.src, err))
			} else {
				checkAgainstOracle(t, f, q, res.Count, res.Rows)
				served++
			}
			qmu.Unlock()
		}
	}()
	defer func() { stop.Store(true); wg.Wait() }()

	// Phase 1: burst with every replica alive.
	for i := 0; i < 30; i++ {
		write(t)
	}
	if got := r.WriteSeq(); got != 30 {
		t.Fatalf("coordinator write seq = %d, want 30", got)
	}

	// Phase 2: kill the proxied replica mid-burst. The first write to fail
	// against it evicts the endpoint from both groups; the sequence keeps
	// advancing on the survivor and never forks.
	pB.Kill()
	for i := 0; i < 30; i++ {
		write(t)
	}
	for _, ep := range r.Endpoints() {
		if ep == pB.URL() {
			t.Fatal("dead write target still in the routing table")
		}
	}
	szA := nodeA.Statz()
	if szA.WriteSeq != 60 || szA.PendingWrites == 0 {
		t.Fatalf("survivor at seq %d with %d pending, want 60 with a live delta", szA.WriteSeq, szA.PendingWrites)
	}

	// Phase 3: warm a brand-new replica from the survivor's snapshot — the
	// stream position rides along in the snapshot response header.
	src := remote.NewClient(srvA.URL, 0)
	warmSt, warmSeq, err := src.SnapshotSeq(context.Background())
	src.Close()
	if err != nil {
		t.Fatalf("snapshot warmup: %v", err)
	}
	if warmSeq != 60 {
		t.Fatalf("snapshot stream position = %d, want 60", warmSeq)
	}
	joiner := remote.NewNode(warmSt, nil, remote.NodeOptions{})
	joiner.Live().SeedSeq(warmSeq)
	srvJ := httptest.NewServer(joiner.Handler())
	defer srvJ.Close()

	// The stream moves on while the joiner sits outside the table...
	for i := 0; i < 20; i++ {
		write(t)
	}
	// ...so admission needs a log replay first: Resync brings the joiner
	// from its snapshot position to the coordinator's head.
	if err := r.Resync(context.Background(), srvJ.URL); err != nil {
		t.Fatalf("resync: %v", err)
	}
	if sz := joiner.Statz(); sz.WriteSeq != 80 {
		t.Fatalf("joiner after resync at seq %d, want 80", sz.WriteSeq)
	}
	if _, err := r.AddReplica(context.Background(), 0, srvJ.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddReplica(context.Background(), 1, srvJ.URL); err != nil {
		t.Fatal(err)
	}

	// Phase 4: the rest of the burst reaches survivor and joiner alike.
	for i := 0; i < 20; i++ {
		write(t)
	}
	if sz := joiner.Statz(); sz.WriteSeq != 100 {
		t.Fatalf("joiner at seq %d after post-admission burst, want 100", sz.WriteSeq)
	}

	// Phase 5: reconcile everywhere and require exact convergence: stream
	// position preserved, no pending deltas, and the effective triple count
	// equal to the oracle's on every replica.
	if err := r.ReconcileAll(context.Background()); err != nil {
		t.Fatalf("reconcile all: %v", err)
	}
	// The mirror replayed the identical stream serially: its reconciled
	// base is the authoritative triple count (len(base) would overcount —
	// the raw LUBM stream contains duplicates the store deduplicates).
	wantTriples := mirror.Reconcile().Base().NumTriples()
	for name, n := range map[string]*remote.Node{"survivor": nodeA, "joiner": joiner} {
		sz := n.Statz()
		if sz.WriteSeq != 100 || sz.PendingWrites != 0 {
			t.Fatalf("%s after reconcile: seq=%d pending=%d", name, sz.WriteSeq, sz.PendingWrites)
		}
		if sz.Triples != wantTriples {
			t.Fatalf("%s holds %d triples after reconcile, oracle %d", name, sz.Triples, wantTriples)
		}
	}

	// Phase 6: oracle equivalence through the full distributed read path —
	// gather dictionary-encoded rows for the written predicate, decode them
	// through the mirror's dictionaries, compare to the oracle set.
	res, err := r.Execute(context.Background(), `SELECT ?s ?o WHERE { ?s <wp> ?o }`, false)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeRows(t, mirror, `SELECT ?s ?o WHERE { ?s <wp> ?o }`, res.Rows)
	var want []string
	for tr := range oracle {
		want = append(want, tr.S+"|"+tr.O)
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("distributed read returned %d written triples, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %q, oracle %q", i, got[i], want[i])
		}
	}

	stop.Store(true)
	wg.Wait()
	qmu.Lock()
	defer qmu.Unlock()
	if len(streamE) > 0 {
		t.Fatalf("%d queries failed under FailFast during the write churn; first: %v", len(streamE), streamE[0])
	}
	if served == 0 {
		t.Fatal("query stream never completed a query")
	}
}

// decodeRows decodes gathered rows through the mirror replica's current
// dictionaries, returning "s|o" strings.
func decodeRows(t *testing.T, mirror *live.Handle, src string, rows [][]uint32) []string {
	t.Helper()
	v := mirror.View()
	st := v.Store()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := optimizer.OptimizeExpanded(q, st, v.Stats(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srows := (&core.Result{Plan: plan, Rows: rows}).StringRows(st)
	out := make([]string, len(srows))
	for i, r := range srows {
		out[i] = r[0] + "|" + r[1]
	}
	return out
}

// TestRemoteWriteWALKillRestart: a durable replica killed mid-burst comes
// back from its own write-ahead log. Local replay must restore every batch
// the replica acknowledged before the kill — exactly, no fork, no loss —
// and the coordinator's Resync then ships only the suffix the replica
// missed while it was down.
func TestRemoteWriteWALKillRestart(t *testing.T) {
	defer testutil.LeakCheck(t)()
	ctx := context.Background()
	base := lubm.Triples(1, lubm.Config{})
	bo := store.BuildOptions{BuildPosIndex: true}
	_, srvA := writeNode(t, base)
	defer srvA.Close()

	// Replica B journals every applied batch to a crash-injectable
	// filesystem; the seed runs only on its very first boot.
	fs := wal.NewMemFS()
	seed := func() (*store.Store, uint64, error) {
		return store.LoadTriples(append([]rdf.Triple(nil), base...), bo), 0, nil
	}
	log1, err := wal.Open(wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := live.OpenDurable(log1, seed, bo)
	if err != nil {
		t.Fatal(err)
	}
	nodeB := remote.NewNodeHandle(h1, remote.NodeOptions{})
	srvB := httptest.NewServer(nodeB.Handler())

	r, err := NewRemote(RemoteOptions{Replicas: [][]string{{srvA.URL, srvB.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	oracle := map[rdf.Triple]bool{}
	write := func(i int) {
		t.Helper()
		ins := []rdf.Triple{{S: fmt.Sprintf("<w-%d>", i), P: "<wp>", O: fmt.Sprintf("<wo-%d>", i%5)}}
		var dels []rdf.Triple
		if i%4 == 0 {
			victim := rdf.Triple{S: fmt.Sprintf("<w-%d>", i-1), P: "<wp>", O: fmt.Sprintf("<wo-%d>", (i-1)%5)}
			dels = append(dels, victim)
		}
		if _, err := r.Write(ctx, wire(ins), wire(dels)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		for _, tr := range dels {
			delete(oracle, tr)
		}
		for _, tr := range ins {
			oracle[tr] = true
		}
	}

	for i := 1; i <= 25; i++ {
		write(i)
	}
	killSeq := r.WriteSeq()
	if got := h1.Seq(); got != killSeq {
		t.Fatalf("replica B at seq %d before kill, coordinator at %d", got, killSeq)
	}

	// Kill: the listener vanishes and the filesystem drops everything not
	// yet fsynced — the crash a power cut would produce.
	srvB.Close()
	fs.Crash()
	h1.Quiesce()
	log1.Close()

	// The stream moves on; the first write that fails against B evicts it.
	for i := 26; i <= 40; i++ {
		write(i)
	}
	for _, ep := range r.Endpoints() {
		if ep == srvB.URL {
			t.Fatal("killed replica still in the routing table")
		}
	}

	// Restart from the crashed filesystem image: recovery is checkpoint +
	// local replay — no peer snapshot, no full reload.
	log2, err := wal.Open(wal.Options{FS: fs.Recover()})
	if err != nil {
		t.Fatalf("reopen wal after crash: %v", err)
	}
	h2, err := live.OpenDurable(log2, seed, bo)
	if err != nil {
		t.Fatalf("recover replica: %v", err)
	}
	defer func() {
		h2.Quiesce()
		log2.Close()
	}()
	// Every batch acknowledged before the kill was group-committed, so the
	// local replay must land exactly on the kill position.
	if got := h2.Seq(); got != killSeq {
		t.Fatalf("local replay recovered seq %d, want %d (acked at kill)", got, killSeq)
	}
	node2 := remote.NewNodeHandle(h2, remote.NodeOptions{})
	srv2 := httptest.NewServer(node2.Handler())
	defer srv2.Close()

	// Resync ships only the missed suffix (the coordinator reads the
	// replica's recovered position from /statz), then the replica rejoins.
	if err := r.Resync(ctx, srv2.URL); err != nil {
		t.Fatalf("resync recovered replica: %v", err)
	}
	if sz := node2.Statz(); sz.WriteSeq != r.WriteSeq() {
		t.Fatalf("sequence fork after rejoin: replica %d, coordinator %d", sz.WriteSeq, r.WriteSeq())
	}
	if _, err := r.AddReplica(ctx, 0, srv2.URL); err != nil {
		t.Fatal(err)
	}
	for i := 41; i <= 50; i++ {
		write(i)
	}
	if err := r.ReconcileAll(ctx); err != nil {
		t.Fatal(err)
	}

	// Oracle equality on the recovered replica: every surviving written
	// triple present, every deleted one absent.
	sz := node2.Statz()
	if sz.WriteSeq != 50 {
		t.Fatalf("recovered replica at seq %d after full burst, want 50", sz.WriteSeq)
	}
	if !sz.WALEnabled || sz.WALDurableSeq < 50 {
		t.Fatalf("statz wal position: enabled=%v durable=%d", sz.WALEnabled, sz.WALDurableSeq)
	}
	st := node2.Store()
	count := 0
	for i := 1; i <= 50; i++ {
		tr := rdf.Triple{S: fmt.Sprintf("<w-%d>", i), P: "<wp>", O: fmt.Sprintf("<wo-%d>", i%5)}
		s, p, o := st.Resources.Lookup(tr.S), st.Predicates.Lookup(tr.P), st.Resources.Lookup(tr.O)
		has := s != 0 && p != 0 && o != 0 && st.HasTriple(s, p, o)
		if oracle[tr] != has {
			t.Fatalf("recovered replica diverged from oracle at %v: present=%v want=%v", tr, has, oracle[tr])
		}
		if has {
			count++
		}
	}
	if count != len(oracle) {
		t.Fatalf("recovered replica holds %d written triples, oracle %d", count, len(oracle))
	}
}

// TestRemoteCoordinatorWALRestart: the coordinator's in-memory replay log
// is a cache over its own WAL. A restarted (crashed) coordinator resumes
// the sequence where the journal ends, resyncs a replica that is far
// behind the small in-memory window by replaying from the journal, and
// reports ErrLogTruncated only once retention has pruned the needed
// prefix.
func TestRemoteCoordinatorWALRestart(t *testing.T) {
	defer testutil.LeakCheck(t)()
	ctx := context.Background()
	base := lubm.Triples(1, lubm.Config{})
	_, srvA := writeNode(t, base)
	defer srvA.Close()

	fs := wal.NewMemFS()
	r, err := NewRemote(RemoteOptions{
		Replicas: [][]string{{srvA.URL}},
		Write:    WriteOptions{ReplayLogSize: 4, WALFS: fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		ins := []remote.Triple{{S: fmt.Sprintf("<s%d>", i), P: "<wp>", O: "<o>"}}
		if _, err := r.Write(ctx, ins, nil); err != nil {
			t.Fatal(err)
		}
	}
	ws := r.WriteLog()
	if !ws.WALEnabled || ws.Seq != 10 || ws.WALDurable != 10 || ws.CacheLen != 4 {
		t.Fatalf("write log stats before crash: %+v", ws)
	}
	// The coordinator process dies; only fsynced journal state survives.
	fs.Crash()
	r.Close()

	r2, err := NewRemote(RemoteOptions{
		Replicas: [][]string{{srvA.URL}},
		Write:    WriteOptions{ReplayLogSize: 4, WALFS: fs.Recover()},
	})
	if err != nil {
		t.Fatalf("restart coordinator: %v", err)
	}
	defer r2.Close()
	if got := r2.WriteSeq(); got != 10 {
		t.Fatalf("restarted coordinator at seq %d, want 10", got)
	}

	// A replica at seq 0 is far behind the 4-batch cache, but the journal
	// reaches back to batch 1: resync replays from the WAL, no snapshot
	// warm needed.
	stale, srvStale := writeNode(t, base)
	defer srvStale.Close()
	if err := r2.Resync(ctx, srvStale.URL); err != nil {
		t.Fatalf("resync from wal: %v", err)
	}
	if sz := stale.Statz(); sz.WriteSeq != 10 {
		t.Fatalf("replica resynced from wal at seq %d, want 10", sz.WriteSeq)
	}

	// The stream continues from the recovered head without forking: the
	// replica that applied 1..10 from the old coordinator accepts 11.
	ins := []remote.Triple{{S: "<s11>", P: "<wp>", O: "<o>"}}
	if seq, err := r2.Write(ctx, ins, nil); err != nil || seq != 11 {
		t.Fatalf("write after restart: seq=%d err=%v", seq, err)
	}

	// Retention: prune the journal down and the cold resync path finally
	// reports typed truncation.
	fs2 := wal.NewMemFS()
	r3, err := NewRemote(RemoteOptions{
		Replicas: [][]string{{srvA.URL}},
		Write: WriteOptions{
			ReplayLogSize:    2,
			WALFS:            fs2,
			WALSegmentBytes:  200,
			WALRetainBatches: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	// srvA is already at seq 11 from the streams above; r3 starts at 0 and
	// its writes 1..20 are idempotent replays on the replica — harmless
	// for what this block tests (the coordinator's own log retention).
	for i := 1; i <= 20; i++ {
		ins := []remote.Triple{{S: fmt.Sprintf("<t%d>", i), P: "<wp>", O: "<o>"}}
		if _, err := r3.Write(ctx, ins, nil); err != nil {
			t.Fatal(err)
		}
	}
	if ws := r3.WriteLog(); ws.WALFirst <= 1 {
		t.Fatalf("retention never pruned: wal starts at %d", ws.WALFirst)
	}
	_, srvCold := writeNode(t, base)
	defer srvCold.Close()
	if err := r3.Resync(ctx, srvCold.URL); !errors.Is(err, ErrLogTruncated) {
		t.Fatalf("resync past retention returned %v, want ErrLogTruncated", err)
	}
}

// TestRemoteWriteSeqGapEviction: a stale replica admitted without a resync
// rejects the next batch with a sequence gap (HTTP 409, non-retryable) and
// is evicted rather than silently diverging.
func TestRemoteWriteSeqGapEviction(t *testing.T) {
	defer testutil.LeakCheck(t)()
	base := lubm.Triples(1, lubm.Config{})
	_, srvA := writeNode(t, base)
	defer srvA.Close()

	r, err := NewRemote(RemoteOptions{Replicas: [][]string{{srvA.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ins := []remote.Triple{{S: "<s1>", P: "<wp>", O: "<o1>"}}
	if _, err := r.Write(context.Background(), ins, nil); err != nil {
		t.Fatal(err)
	}

	// A fresh replica at seq 0 joins without replaying the stream.
	stale, srvStale := writeNode(t, base)
	defer srvStale.Close()
	if _, err := r.AddReplica(context.Background(), 0, srvStale.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write(context.Background(), []remote.Triple{{S: "<s2>", P: "<wp>", O: "<o2>"}}, nil); err != nil {
		t.Fatalf("write after stale admission: %v", err)
	}
	for _, ep := range r.Endpoints() {
		if ep == srvStale.URL {
			t.Fatal("gap-rejecting replica still in the routing table")
		}
	}
	if sz := stale.Statz(); sz.WriteSeq != 0 {
		t.Fatalf("stale replica applied a gapped batch: seq %d", sz.WriteSeq)
	}
	// A resync heals it for re-admission.
	if err := r.Resync(context.Background(), srvStale.URL); err != nil {
		t.Fatal(err)
	}
	if sz := stale.Statz(); sz.WriteSeq != r.WriteSeq() {
		t.Fatalf("resynced replica at seq %d, coordinator at %d", sz.WriteSeq, r.WriteSeq())
	}
	if _, err := r.AddReplica(context.Background(), 0, srvStale.URL); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteWriteLogTruncation: a replica that falls behind the bounded
// replay log cannot be resynced incrementally — the coordinator reports
// ErrLogTruncated instead of replaying a hole.
func TestRemoteWriteLogTruncation(t *testing.T) {
	defer testutil.LeakCheck(t)()
	base := lubm.Triples(1, lubm.Config{})
	_, srvA := writeNode(t, base)
	defer srvA.Close()
	_, srvStale := writeNode(t, base)
	defer srvStale.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas: [][]string{{srvA.URL}},
		Write:    WriteOptions{ReplayLogSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for i := 0; i < 10; i++ {
		ins := []remote.Triple{{S: fmt.Sprintf("<s%d>", i), P: "<wp>", O: "<o>"}}
		if _, err := r.Write(context.Background(), ins, nil); err != nil {
			t.Fatal(err)
		}
	}
	// The stale node is at seq 0; only batches 7..10 survive in the log.
	if err := r.Resync(context.Background(), srvStale.URL); !errors.Is(err, ErrLogTruncated) {
		t.Fatalf("resync of a replica behind the log returned %v, want ErrLogTruncated", err)
	}
	// A replica inside the window still resyncs: warm it first.
	c := remote.NewClient(srvA.URL, 0)
	warmSt, warmSeq, err := c.SnapshotSeq(context.Background())
	c.Close()
	if err != nil {
		t.Fatal(err)
	}
	fresh := remote.NewNode(warmSt, nil, remote.NodeOptions{})
	fresh.Live().SeedSeq(warmSeq)
	srvF := httptest.NewServer(fresh.Handler())
	defer srvF.Close()
	if err := r.Resync(context.Background(), srvF.URL); err != nil {
		t.Fatalf("resync of warmed replica: %v", err)
	}
	if sz := fresh.Statz(); sz.WriteSeq != 10 {
		t.Fatalf("warmed replica at seq %d, want 10", sz.WriteSeq)
	}
}
