// Package cluster implements the paper's §6 cluster extension: "it is
// straightforward to extend PARJ to a 'cluster' version through full
// replication, such that during query execution each worker starts
// processing from a different initial shard."
//
// Every node holds a complete replica of the store (full replication —
// modeled in-process by sharing the immutable store, which gives each node
// exactly what a replica gives it: independent read-only access). A query
// is split into the same communication-free shards the single-machine
// engine uses, the shards are assigned to nodes, every node evaluates its
// assignment with its local worker threads, and only the final results
// travel to the coordinator. There is no inter-node communication during
// the join, so the design inherits the paper's scalability argument
// unchanged: total elapsed is the slowest node.
package cluster

import (
	"sync"

	"parj/internal/core"
	"parj/internal/optimizer"
	"parj/internal/search"
	"parj/internal/store"
)

// Options configures a cluster.
type Options struct {
	// Nodes is the number of replica-holding nodes (default 2).
	Nodes int
	// ThreadsPerNode is each node's local worker count (default 1).
	ThreadsPerNode int
	// Strategy is the probe strategy used by every node.
	Strategy core.Strategy
	// Join selects the join operator on every node. The worst-case-optimal
	// operator shards the first variable's materialized domain through the
	// same deterministic layer as the pipeline's makeShards, so the
	// per-node shard-range contract — disjoint ranges whose union is the
	// full result — holds for it unchanged. All nodes must agree on the
	// operator, which a shared Options value guarantees.
	Join core.JoinAlgo
}

// Cluster evaluates queries over N fully replicated nodes.
type Cluster struct {
	st    *store.Store
	nodes int
	tpn   int
	strat core.Strategy
	join  core.JoinAlgo
}

// New creates a cluster over a loaded store.
func New(st *store.Store, opts Options) *Cluster {
	if opts.Nodes <= 0 {
		opts.Nodes = 2
	}
	if opts.ThreadsPerNode <= 0 {
		opts.ThreadsPerNode = 1
	}
	return &Cluster{st: st, nodes: opts.Nodes, tpn: opts.ThreadsPerNode, strat: opts.Strategy, join: opts.Join}
}

// Result is the coordinator-side outcome of a cluster query.
type Result struct {
	Count int64
	// Rows holds the gathered, dictionary-encoded projected rows (nil in
	// silent mode).
	Rows [][]uint32
	// PerNode reports how many rows each node produced — the shard balance
	// a cluster operator would watch.
	PerNode []int64
	// Stats aggregates probe statistics across all nodes.
	Stats search.Stats
}

// Execute runs the plan across the cluster. Each node receives a
// contiguous slice of the first relation's shards (the paper's "different
// initial shard" per worker, grouped by node) and evaluates it with its
// local threads; the coordinator concatenates the gathered results.
func (c *Cluster) Execute(plan *optimizer.Plan, silent bool) (*Result, error) {
	res := &Result{PerNode: make([]int64, c.nodes)}
	if plan.Empty {
		return res, nil
	}
	// DISTINCT needs the rows at the coordinator to dedup across nodes,
	// even when the caller only wants a count.
	nodeSilent := silent && !plan.Distinct

	// Build one sub-execution per node by letting each node run the
	// single-machine engine over a node-specific shard range. Sharding is
	// deterministic, so splitting the first relation into nodes×threads
	// shards and giving node i the i-th contiguous group reproduces the
	// exact global partition the single-machine engine would use.
	type nodeOut struct {
		node int
		res  *core.Result
		err  error
	}
	outCh := make(chan nodeOut, c.nodes)
	var wg sync.WaitGroup
	for n := 0; n < c.nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			r, err := core.ExecuteShardRange(c.st, plan, core.Options{
				Threads:  c.nodes * c.tpn,
				Strategy: c.strat,
				Silent:   nodeSilent,
				Join:     c.join,
			}, n*c.tpn, (n+1)*c.tpn)
			outCh <- nodeOut{node: n, res: r, err: err}
		}(n)
	}
	wg.Wait()
	close(outCh)

	// Gather in node order for determinism.
	collected := make([]*core.Result, c.nodes)
	for o := range outCh {
		if o.err != nil {
			return nil, o.err
		}
		collected[o.node] = o.res
	}
	// Each node already applied DISTINCT and LIMIT to its own range; the
	// coordinator repeats exactly the same compaction on the merged rows,
	// which yields the global answer: min(LIMIT, |distinct global rows|).
	if !nodeSilent {
		var rows [][]uint32
		for n, r := range collected {
			if r == nil {
				continue
			}
			res.PerNode[n] = r.Count
			res.Stats.Add(r.Stats)
			rows = append(rows, r.Rows...)
		}
		if plan.Distinct {
			rows = core.DedupRows(rows)
		}
		if plan.Limit > 0 && len(rows) > plan.Limit {
			rows = rows[:plan.Limit]
		}
		res.Count = int64(len(rows))
		if !silent {
			res.Rows = rows
		}
	} else {
		for n, r := range collected {
			if r == nil {
				continue
			}
			res.Count += r.Count
			res.PerNode[n] = r.Count
			res.Stats.Add(r.Stats)
		}
		// Every node truncated its own count to LIMIT, so capping the sum
		// gives exactly min(LIMIT, global count).
		if plan.Limit > 0 && res.Count > int64(plan.Limit) {
			res.Count = int64(plan.Limit)
		}
	}
	return res, nil
}

// Count is Execute in silent mode.
func (c *Cluster) Count(plan *optimizer.Plan) (int64, error) {
	r, err := c.Execute(plan, true)
	if err != nil {
		return 0, err
	}
	return r.Count, nil
}

// Nodes reports the cluster size.
func (c *Cluster) Nodes() int { return c.nodes }
