package cluster

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"parj/internal/core"
	"parj/internal/governance"
	"parj/internal/lubm"
	"parj/internal/remote"
	"parj/internal/resilience"
	"parj/internal/resilience/chaos"
	"parj/internal/stats"
	"parj/internal/store"
	"parj/internal/testutil"
)

// startNode stands up one replica node over the fixture's store on a
// loopback HTTP server. The caller closes the returned server.
func startNode(t *testing.T, f *fixture) (*remote.Node, *httptest.Server) {
	t.Helper()
	n := remote.NewNode(f.st, f.ss, remote.NodeOptions{})
	return n, httptest.NewServer(n.Handler())
}

// deadEndpoint returns a loopback URL with nothing listening: dials are
// refused immediately, the cleanest "node is down" a test can get.
func deadEndpoint(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url
}

func hostport(srv *httptest.Server) string { return strings.TrimPrefix(srv.URL, "http://") }

var remoteQueries = []string{
	`SELECT ?x ?y ?z WHERE {
		?x ` + lubm.PredMemberOf + ` ?z .
		?z ` + lubm.PredSubOrgOf + ` ?y .
		?x ` + lubm.PredUndergradFrom + ` ?y }`,
	`SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`,
	`SELECT DISTINCT ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`,
	`SELECT ?x WHERE { ?x ` + lubm.PredTakesCourse + ` ?y } LIMIT 5`,
	`SELECT DISTINCT ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y } LIMIT 7`,
}

// oracle runs the query single-machine with the same global thread count
// the coordinator will use.
func oracle(t *testing.T, f *fixture, src string, threads int, silent bool) *core.Result {
	t.Helper()
	res, err := core.Execute(f.st, f.plan(t, src), core.Options{Threads: threads, Silent: silent})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRemoteHealthyEquivalence: 2 shard groups × 2 replicas over loopback
// HTTP, no faults. Every query must match the single-machine oracle
// exactly — counts, rows and row order.
func TestRemoteHealthyEquivalence(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, n0 := startNode(t, f)
	defer n0.Close()
	_, n1 := startNode(t, f)
	defer n1.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas:        [][]string{{n0.URL, n1.URL}, {n1.URL, n0.URL}},
		ThreadsPerShard: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, src := range remoteQueries {
		want := oracle(t, f, src, 4, false)
		got, err := r.Execute(context.Background(), src, false)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got.Count != want.Count {
			t.Errorf("%s: count %d, oracle %d", src, got.Count, want.Count)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s: rows diverge from oracle (%d vs %d rows)", src, len(got.Rows), len(want.Rows))
		}
		if got.Completeness != 1 {
			t.Errorf("%s: completeness %v on a healthy cluster", src, got.Completeness)
		}
		// Silent counting must agree too.
		cnt, err := r.Count(context.Background(), src)
		if err != nil || cnt != want.Count {
			t.Errorf("%s: silent count %d err %v, oracle %d", src, cnt, err, want.Count)
		}
	}
}

// TestRemoteChaosReplicaDeathMidQuery kills one replica per shard group
// mid-response (the response is cut after 16 bytes, then the proxy refuses
// all connections). The coordinator must fail over to the surviving
// replica and still match the oracle exactly, with no goroutine leaks.
func TestRemoteChaosReplicaDeathMidQuery(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live0 := startNode(t, f)
	defer live0.Close()
	_, live1 := startNode(t, f)
	defer live1.Close()

	// One doomed proxy per shard group, placed where replicaOrder tries it
	// first (shard s starts at replica s%R).
	dying0, err := chaos.New(hostport(live0), chaos.CutFirstThenKill(16))
	if err != nil {
		t.Fatal(err)
	}
	defer dying0.Close()
	dying1, err := chaos.New(hostport(live1), chaos.CutFirstThenKill(16))
	if err != nil {
		t.Fatal(err)
	}
	defer dying1.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas: [][]string{
			{dying0.URL(), live0.URL},  // shard 0 tries replica 0 first
			{live1.URL, dying1.URL()},  // shard 1 tries replica 1 first
		},
		ThreadsPerShard: 2,
		Backoff:         resilience.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, src := range remoteQueries {
		want := oracle(t, f, src, 4, false)
		got, err := r.Execute(context.Background(), src, false)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got.Count != want.Count || !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s: diverged from oracle after replica death (%d vs %d rows)",
				src, len(got.Rows), len(want.Rows))
		}
		if got.Completeness != 1 {
			t.Errorf("%s: completeness %v, want 1 (failover, not degradation)", src, got.Completeness)
		}
	}
}

// TestRemoteDeadShardPolicies: with R=1 and shard 1's only replica down,
// FailFast returns a typed overload error while Partial serves shard 0's
// half with Completeness 0.5.
func TestRemoteDeadShardPolicies(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	dead := deadEndpoint(t)
	src := `SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`

	mk := func(p Policy) *Remote {
		r, err := NewRemote(RemoteOptions{
			Replicas:        [][]string{{live.URL}, {dead}},
			ThreadsPerShard: 1,
			MaxAttempts:     2,
			Backoff:         resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
			Policy:          p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	ff := mk(FailFast)
	defer ff.Close()
	if _, err := ff.Execute(context.Background(), src, false); !errors.Is(err, governance.ErrOverloaded) {
		t.Fatalf("FailFast with a dead shard returned %v, want ErrOverloaded", err)
	}

	pp := mk(Partial)
	defer pp.Close()
	res, err := pp.Execute(context.Background(), src, false)
	if err != nil {
		t.Fatalf("Partial: %v", err)
	}
	if res.Completeness != 0.5 {
		t.Fatalf("Partial completeness %v, want 0.5", res.Completeness)
	}
	if res.ShardErrors[1] == nil || !errors.Is(res.ShardErrors[1], governance.ErrOverloaded) {
		t.Fatalf("Partial shard error %v, want ErrOverloaded for shard 1", res.ShardErrors[1])
	}
	if res.ShardErrors[0] != nil {
		t.Fatalf("shard 0 should have served: %v", res.ShardErrors[0])
	}
	// The served half matches the oracle's shard-0 range.
	want, err := core.ExecuteShardRange(f.st, f.plan(t, src), core.Options{Threads: 2}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want.Count || !reflect.DeepEqual(res.Rows, want.Rows) {
		t.Fatalf("Partial served %d rows, oracle shard 0 has %d", res.Count, want.Count)
	}
}

// TestRemoteBreakerShortCircuits: after the breaker trips on a dead
// replica, the next query is rejected immediately with ErrOverloaded (no
// dial), and the leak check confirms nothing is left running.
func TestRemoteBreakerShortCircuits(t *testing.T) {
	defer testutil.LeakCheck(t)()
	dead := deadEndpoint(t)
	r, err := NewRemote(RemoteOptions{
		Replicas:    [][]string{{dead}},
		MaxAttempts: 2,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Breaker:     resilience.BreakerOptions{FailureThreshold: 2, OpenFor: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	src := `SELECT ?x WHERE { ?x <p> ?y }`

	if _, err := r.Execute(context.Background(), src, true); !errors.Is(err, governance.ErrOverloaded) {
		t.Fatalf("dead replica returned %v, want ErrOverloaded", err)
	}
	// Two failed attempts tripped the threshold-2 breaker; now the
	// coordinator must refuse without touching the network.
	_, err = r.Execute(context.Background(), src, true)
	if !errors.Is(err, governance.ErrOverloaded) || !strings.Contains(err.Error(), "breakers open") {
		t.Fatalf("open breaker returned %v, want immediate breakers-open ErrOverloaded", err)
	}
}

// TestRemoteShardTimeout: every replica stalls longer than ShardTimeout;
// the shard must fail with ErrDeadlineExceeded and leave nothing behind.
func TestRemoteShardTimeout(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	slow, err := chaos.New(hostport(live), func(int) chaos.Fault {
		return chaos.Fault{Delay: 400 * time.Millisecond}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas:     [][]string{{slow.URL()}},
		ShardTimeout: 50 * time.Millisecond,
		MaxAttempts:  2,
		Backoff:      resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	_, err = r.Execute(context.Background(), `SELECT ?x ?y WHERE { ?x `+lubm.PredTakesCourse+` ?y }`, true)
	if !errors.Is(err, governance.ErrDeadlineExceeded) {
		t.Fatalf("stalled replicas returned %v, want ErrDeadlineExceeded", err)
	}
}

// TestRemoteHedgingWinsOverSlowReplica: the first replica stalls, the
// hedge launched after HedgeAfter reaches the fast replica, and the query
// succeeds quickly with exactly two attempts.
func TestRemoteHedgingWinsOverSlowReplica(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	slow, err := chaos.New(hostport(live), func(int) chaos.Fault {
		return chaos.Fault{Delay: 300 * time.Millisecond}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas:   [][]string{{slow.URL(), live.URL}},
		HedgeAfter: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	src := `SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`
	start := time.Now()
	res, err := r.Execute(context.Background(), src, true)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= 300*time.Millisecond {
		t.Errorf("hedged query took %v — the hedge never overtook the stalled replica", elapsed)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts %d, want 2 (primary + hedge)", res.Attempts)
	}
	if want := oracle(t, f, src, 1, true); res.Count != want.Count {
		t.Errorf("count %d, oracle %d", res.Count, want.Count)
	}
}

// TestRemoteHealthFailover: with background health checking on, a dead
// first replica is demoted so even MaxAttempts=1 queries succeed once the
// checker has swept.
func TestRemoteHealthFailover(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	dead := deadEndpoint(t)

	r, err := NewRemote(RemoteOptions{
		Replicas:       [][]string{{dead, live.URL}},
		MaxAttempts:    1,
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	src := `SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`
	want := oracle(t, f, src, 1, true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := r.Execute(context.Background(), src, true)
		if err == nil {
			if res.Count != want.Count {
				t.Fatalf("count %d, oracle %d", res.Count, want.Count)
			}
			return // the checker demoted the dead replica
		}
		if time.Now().After(deadline) {
			t.Fatalf("health failover never kicked in: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRemoteCanceledContext: a caller cancel surfaces as ErrCanceled and
// leaves no goroutines behind.
func TestRemoteCanceledContext(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()

	r, err := NewRemote(RemoteOptions{Replicas: [][]string{{live.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = r.Execute(ctx, `SELECT ?x ?y WHERE { ?x `+lubm.PredTakesCourse+` ?y }`, true)
	if !errors.Is(err, governance.ErrCanceled) {
		t.Fatalf("canceled context returned %v, want ErrCanceled", err)
	}
}

// benchFixture is a larger store than the test fixture so the benchmark
// query's execution time dominates the loopback HTTP round trip — the
// coordinator's per-query wire cost is fixed, and the overhead criterion
// is that it disappears into noise on realistic work.
func benchFixture(b *testing.B) *fixture {
	b.Helper()
	st := store.LoadTriples(lubm.Triples(48, lubm.Config{}), store.BuildOptions{BuildPosIndex: true})
	return &fixture{st: st, ss: stats.New(st)}
}

var benchQuery = `SELECT ?x ?y ?z WHERE {
	?x ` + lubm.PredMemberOf + ` ?z .
	?z ` + lubm.PredSubOrgOf + ` ?y .
	?x ` + lubm.PredUndergradFrom + ` ?y }`

// BenchmarkRemoteCoordinator measures the 1×1 loopback coordinator against
// BenchmarkDirectExecute below — the coordinator's overhead budget.
func BenchmarkRemoteCoordinator(b *testing.B) {
	f := benchFixture(b)
	n := remote.NewNode(f.st, f.ss, remote.NodeOptions{})
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()
	r, err := NewRemote(RemoteOptions{Replicas: [][]string{{srv.URL}}})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Execute(context.Background(), benchQuery, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectExecute is the single-machine baseline for
// BenchmarkRemoteCoordinator: the same query served locally, parse and
// plan included per iteration — the coordinator necessarily re-plans
// each request, so a pre-built plan would understate the baseline.
func BenchmarkDirectExecute(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := f.plan(b, benchQuery)
		if _, err := core.Execute(f.st, plan, core.Options{Threads: 1, Silent: true}); err != nil {
			b.Fatal(err)
		}
	}
}
