package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"parj/internal/core"
	"parj/internal/governance"
	"parj/internal/lubm"
	"parj/internal/remote"
	"parj/internal/resilience"
	"parj/internal/resilience/chaos"
	"parj/internal/stats"
	"parj/internal/store"
	"parj/internal/testutil"
)

// startNode stands up one replica node over the fixture's store on a
// loopback HTTP server. The caller closes the returned server.
func startNode(t *testing.T, f *fixture) (*remote.Node, *httptest.Server) {
	t.Helper()
	n := remote.NewNode(f.st, f.ss, remote.NodeOptions{})
	return n, httptest.NewServer(n.Handler())
}

// deadEndpoint returns a loopback URL with nothing listening: dials are
// refused immediately, the cleanest "node is down" a test can get.
func deadEndpoint(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url
}

func hostport(srv *httptest.Server) string { return strings.TrimPrefix(srv.URL, "http://") }

// remoteQuery pairs what the coordinator executes with the LIMIT-free
// query that defines its containment universe (full == src when there is
// no LIMIT).
type remoteQuery struct {
	src   string
	full  string
	limit int // 0 = exact multiset equality against full
}

func limited(full string, n int) remoteQuery {
	return remoteQuery{src: fmt.Sprintf("%s LIMIT %d", full, n), full: full, limit: n}
}

var (
	qTriangle = `SELECT ?x ?y ?z WHERE {
		?x ` + lubm.PredMemberOf + ` ?z .
		?z ` + lubm.PredSubOrgOf + ` ?y .
		?x ` + lubm.PredUndergradFrom + ` ?y }`
	qScanXY    = `SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`
	qScanX     = `SELECT ?x WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`
	qDistinctY = `SELECT DISTINCT ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`
)

var remoteQueries = []remoteQuery{
	{src: qTriangle, full: qTriangle},
	{src: qScanXY, full: qScanXY},
	{src: qDistinctY, full: qDistinctY},
	limited(qScanX, 5),
	limited(qDistinctY, 7),
}

// oracle runs the query single-machine with the same global thread count
// the coordinator will use.
func oracle(t *testing.T, f *fixture, src string, threads int, silent bool) *core.Result {
	t.Helper()
	res, err := core.Execute(f.st, f.plan(t, src), core.Options{Threads: threads, Silent: silent})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sortedRows returns rows in lexicographic order. The morsel scheduler
// assigns morsels to workers dynamically, so a multi-worker merge order is
// scheduling-dependent; oracle comparisons are multiset-level.
func sortedRows(rows [][]uint32) [][]uint32 {
	out := append([][]uint32(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// checkAgainstOracle compares one coordinator result with the
// single-machine oracle and returns the expected count. Without LIMIT the
// row multisets must match exactly; with LIMIT the engine is free to pick
// which rows survive the cutoff, so the check is containment — exactly
// min(LIMIT, |full|) rows, each drawn (with multiplicity) from the full
// result — the same semantics the differential harness pins.
func checkAgainstOracle(t *testing.T, f *fixture, q remoteQuery, count int64, rows [][]uint32) int64 {
	t.Helper()
	want := oracle(t, f, q.full, 4, false)
	if q.limit == 0 {
		if count != want.Count || !reflect.DeepEqual(sortedRows(rows), sortedRows(want.Rows)) {
			t.Errorf("%s: diverged from oracle (%d vs %d rows)", q.src, len(rows), len(want.Rows))
		}
		return want.Count
	}
	wantN := int64(q.limit)
	if int64(len(want.Rows)) < wantN {
		wantN = int64(len(want.Rows))
	}
	if count != wantN || int64(len(rows)) != wantN {
		t.Errorf("%s: %d rows (count %d), want min(LIMIT, |full|) = %d",
			q.src, len(rows), count, wantN)
	}
	avail := map[string]int{}
	for _, r := range want.Rows {
		avail[fmt.Sprint(r)]++
	}
	for _, r := range rows {
		k := fmt.Sprint(r)
		if avail[k] == 0 {
			t.Errorf("%s: row %v not in the full oracle result (or over-multiplied)", q.src, r)
			continue
		}
		avail[k]--
	}
	return wantN
}

// TestRemoteHealthyEquivalence: 2 shard groups × 2 replicas over loopback
// HTTP, no faults. Every query must match the single-machine oracle:
// counts and row multisets, LIMIT by containment.
func TestRemoteHealthyEquivalence(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, n0 := startNode(t, f)
	defer n0.Close()
	_, n1 := startNode(t, f)
	defer n1.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas:        [][]string{{n0.URL, n1.URL}, {n1.URL, n0.URL}},
		ThreadsPerShard: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, q := range remoteQueries {
		got, err := r.Execute(context.Background(), q.src, false)
		if err != nil {
			t.Fatalf("%s: %v", q.src, err)
		}
		wantCount := checkAgainstOracle(t, f, q, got.Count, got.Rows)
		if got.Completeness != 1 {
			t.Errorf("%s: completeness %v on a healthy cluster", q.src, got.Completeness)
		}
		// Silent counting must agree too.
		cnt, err := r.Count(context.Background(), q.src)
		if err != nil || cnt != wantCount {
			t.Errorf("%s: silent count %d err %v, oracle %d", q.src, cnt, err, wantCount)
		}
	}
}

// TestRemoteChaosReplicaDeathMidQuery kills one replica per shard group
// mid-response (the response is cut after 16 bytes, then the proxy refuses
// all connections). The coordinator must fail over to the surviving
// replica and still match the oracle exactly, with no goroutine leaks.
func TestRemoteChaosReplicaDeathMidQuery(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live0 := startNode(t, f)
	defer live0.Close()
	_, live1 := startNode(t, f)
	defer live1.Close()

	// One doomed proxy per shard group, placed where replicaOrder tries it
	// first (shard s starts at replica s%R).
	dying0, err := chaos.New(hostport(live0), chaos.CutFirstThenKill(16))
	if err != nil {
		t.Fatal(err)
	}
	defer dying0.Close()
	dying1, err := chaos.New(hostport(live1), chaos.CutFirstThenKill(16))
	if err != nil {
		t.Fatal(err)
	}
	defer dying1.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas: [][]string{
			{dying0.URL(), live0.URL}, // shard 0 tries replica 0 first
			{live1.URL, dying1.URL()}, // shard 1 tries replica 1 first
		},
		ThreadsPerShard: 2,
		Backoff:         resilience.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, q := range remoteQueries {
		got, err := r.Execute(context.Background(), q.src, false)
		if err != nil {
			t.Fatalf("%s: %v", q.src, err)
		}
		checkAgainstOracle(t, f, q, got.Count, got.Rows)
		if got.Completeness != 1 {
			t.Errorf("%s: completeness %v, want 1 (failover, not degradation)", q.src, got.Completeness)
		}
	}
}

// TestRemoteDeadShardPolicies: with R=1 and shard 1's only replica down,
// FailFast returns a typed overload error while Partial serves shard 0's
// half with Completeness 0.5.
func TestRemoteDeadShardPolicies(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	dead := deadEndpoint(t)
	src := `SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`

	mk := func(p Policy) *Remote {
		r, err := NewRemote(RemoteOptions{
			Replicas:        [][]string{{live.URL}, {dead}},
			ThreadsPerShard: 1,
			MaxAttempts:     2,
			Backoff:         resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
			Policy:          p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	ff := mk(FailFast)
	defer ff.Close()
	if _, err := ff.Execute(context.Background(), src, false); !errors.Is(err, governance.ErrOverloaded) {
		t.Fatalf("FailFast with a dead shard returned %v, want ErrOverloaded", err)
	}

	pp := mk(Partial)
	defer pp.Close()
	res, err := pp.Execute(context.Background(), src, false)
	if err != nil {
		t.Fatalf("Partial: %v", err)
	}
	if res.Completeness != 0.5 {
		t.Fatalf("Partial completeness %v, want 0.5", res.Completeness)
	}
	if res.ShardErrors[1] == nil || !errors.Is(res.ShardErrors[1], governance.ErrOverloaded) {
		t.Fatalf("Partial shard error %v, want ErrOverloaded for shard 1", res.ShardErrors[1])
	}
	if res.ShardErrors[0] != nil {
		t.Fatalf("shard 0 should have served: %v", res.ShardErrors[0])
	}
	// The served half matches the oracle's shard-0 range.
	want, err := core.ExecuteShardRange(f.st, f.plan(t, src), core.Options{Threads: 2}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want.Count || !reflect.DeepEqual(res.Rows, want.Rows) {
		t.Fatalf("Partial served %d rows, oracle shard 0 has %d", res.Count, want.Count)
	}
}

// TestRemoteBreakerShortCircuits: after the breaker trips on a dead
// replica, the next query is rejected immediately with ErrOverloaded (no
// dial), and the leak check confirms nothing is left running.
func TestRemoteBreakerShortCircuits(t *testing.T) {
	defer testutil.LeakCheck(t)()
	dead := deadEndpoint(t)
	r, err := NewRemote(RemoteOptions{
		Replicas:    [][]string{{dead}},
		MaxAttempts: 2,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Breaker:     resilience.BreakerOptions{FailureThreshold: 2, OpenFor: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	src := `SELECT ?x WHERE { ?x <p> ?y }`

	if _, err := r.Execute(context.Background(), src, true); !errors.Is(err, governance.ErrOverloaded) {
		t.Fatalf("dead replica returned %v, want ErrOverloaded", err)
	}
	// Two failed attempts tripped the threshold-2 breaker; now the
	// coordinator must refuse without touching the network.
	_, err = r.Execute(context.Background(), src, true)
	if !errors.Is(err, governance.ErrOverloaded) || !strings.Contains(err.Error(), "breakers open") {
		t.Fatalf("open breaker returned %v, want immediate breakers-open ErrOverloaded", err)
	}
}

// TestRemoteShardTimeout: every replica stalls longer than ShardTimeout;
// the shard must fail with ErrDeadlineExceeded and leave nothing behind.
func TestRemoteShardTimeout(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	slow, err := chaos.New(hostport(live), func(int) chaos.Fault {
		return chaos.Fault{Delay: 400 * time.Millisecond}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas:     [][]string{{slow.URL()}},
		ShardTimeout: 50 * time.Millisecond,
		MaxAttempts:  2,
		Backoff:      resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	_, err = r.Execute(context.Background(), `SELECT ?x ?y WHERE { ?x `+lubm.PredTakesCourse+` ?y }`, true)
	if !errors.Is(err, governance.ErrDeadlineExceeded) {
		t.Fatalf("stalled replicas returned %v, want ErrDeadlineExceeded", err)
	}
}

// TestRemoteHedgingWinsOverSlowReplica: the first replica stalls, the
// hedge launched after HedgeAfter reaches the fast replica, and the query
// succeeds quickly with exactly two attempts.
func TestRemoteHedgingWinsOverSlowReplica(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	slow, err := chaos.New(hostport(live), func(int) chaos.Fault {
		return chaos.Fault{Delay: 300 * time.Millisecond}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	r, err := NewRemote(RemoteOptions{
		Replicas:   [][]string{{slow.URL(), live.URL}},
		HedgeAfter: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	src := `SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`
	start := time.Now()
	res, err := r.Execute(context.Background(), src, true)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= 300*time.Millisecond {
		t.Errorf("hedged query took %v — the hedge never overtook the stalled replica", elapsed)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts %d, want 2 (primary + hedge)", res.Attempts)
	}
	if want := oracle(t, f, src, 1, true); res.Count != want.Count {
		t.Errorf("count %d, oracle %d", res.Count, want.Count)
	}
}

// TestRemoteHealthFailover: with background health checking on, a dead
// first replica is demoted so even MaxAttempts=1 queries succeed once the
// checker has swept.
func TestRemoteHealthFailover(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()
	dead := deadEndpoint(t)

	r, err := NewRemote(RemoteOptions{
		Replicas:       [][]string{{dead, live.URL}},
		MaxAttempts:    1,
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	src := `SELECT ?x ?y WHERE { ?x ` + lubm.PredTakesCourse + ` ?y }`
	want := oracle(t, f, src, 1, true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := r.Execute(context.Background(), src, true)
		if err == nil {
			if res.Count != want.Count {
				t.Fatalf("count %d, oracle %d", res.Count, want.Count)
			}
			return // the checker demoted the dead replica
		}
		if time.Now().After(deadline) {
			t.Fatalf("health failover never kicked in: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRemoteCanceledContext: a caller cancel surfaces as ErrCanceled and
// leaves no goroutines behind.
func TestRemoteCanceledContext(t *testing.T) {
	defer testutil.LeakCheck(t)()
	f := lubmFixture(t)
	_, live := startNode(t, f)
	defer live.Close()

	r, err := NewRemote(RemoteOptions{Replicas: [][]string{{live.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = r.Execute(ctx, `SELECT ?x ?y WHERE { ?x `+lubm.PredTakesCourse+` ?y }`, true)
	if !errors.Is(err, governance.ErrCanceled) {
		t.Fatalf("canceled context returned %v, want ErrCanceled", err)
	}
}

// benchFixture is a larger store than the test fixture so the benchmark
// query's execution time dominates the loopback HTTP round trip — the
// coordinator's per-query wire cost is fixed, and the overhead criterion
// is that it disappears into noise on realistic work.
func benchFixture(b *testing.B) *fixture {
	b.Helper()
	st := store.LoadTriples(lubm.Triples(48, lubm.Config{}), store.BuildOptions{BuildPosIndex: true})
	return &fixture{st: st, ss: stats.New(st)}
}

var benchQuery = `SELECT ?x ?y ?z WHERE {
	?x ` + lubm.PredMemberOf + ` ?z .
	?z ` + lubm.PredSubOrgOf + ` ?y .
	?x ` + lubm.PredUndergradFrom + ` ?y }`

// BenchmarkRemoteCoordinator measures the 1×1 loopback coordinator against
// BenchmarkDirectExecute below — the coordinator's overhead budget.
func BenchmarkRemoteCoordinator(b *testing.B) {
	f := benchFixture(b)
	n := remote.NewNode(f.st, f.ss, remote.NodeOptions{})
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()
	r, err := NewRemote(RemoteOptions{Replicas: [][]string{{srv.URL}}})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Execute(context.Background(), benchQuery, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectExecute is the single-machine baseline for
// BenchmarkRemoteCoordinator: the same query served locally, parse and
// plan included per iteration — the coordinator necessarily re-plans
// each request, so a pre-built plan would understate the baseline.
func BenchmarkDirectExecute(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := f.plan(b, benchQuery)
		if _, err := core.Execute(f.st, plan, core.Options{Threads: 1, Silent: true}); err != nil {
			b.Fatal(err)
		}
	}
}
