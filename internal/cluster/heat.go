package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"parj/internal/core"
)

// Workload-adaptive placement (ROADMAP: PHD-Store-style adaptive
// partitioning): every ExecResponse already carries the node's per-worker
// scheduler stats for the shard range it served, so the coordinator can
// estimate each shard group's load for free — no extra RPCs on the hot
// path (the /statz endpoint is the pull-based complement for external
// ops). The HeatTracker aggregates those stats; a RebalancePolicy turns
// the aggregate into replica promotions for hot groups and demotions for
// cold ones; applying a proposal is just a Reconfigure. The policy layer
// is deliberately passive — nothing rebalances unless the operator (or an
// operator-owned loop) asks.

// GroupHeat is one shard group's accumulated load estimate.
type GroupHeat struct {
	// Shard is the group index.
	Shard int
	// Queries counts served responses folded in.
	Queries int64
	// Tuples and Rows are cumulative scheduler totals for the group.
	Tuples int64
	Rows   int64
	// Busy is the cumulative worker busy time the group's replicas spent.
	Busy time.Duration
	// EWMABusy is the exponentially smoothed per-query busy time — the
	// load signal policies compare across groups.
	EWMABusy time.Duration
}

// HeatTracker aggregates per-shard-group load. Safe for concurrent use.
type HeatTracker struct {
	mu     sync.Mutex
	alpha  float64
	groups []GroupHeat
}

// NewHeatTracker tracks n shard groups with EWMA factor alpha (0 = 0.2).
func NewHeatTracker(n int, alpha float64) *HeatTracker {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	h := &HeatTracker{alpha: alpha}
	h.Resize(n)
	return h
}

// Resize adjusts the group count after a reconfiguration. Surviving
// groups keep their history; new ones start cold.
func (h *HeatTracker) Resize(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.groups) < n {
		h.groups = append(h.groups, GroupHeat{Shard: len(h.groups)})
	}
	h.groups = h.groups[:n]
}

// Observe folds one served response's scheduler stats into shard's heat.
// Out-of-range shards (a response from an epoch with a different group
// count) are dropped — stale signal, not worth resizing for.
func (h *HeatTracker) Observe(shard int, s core.SchedStats) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if shard < 0 || shard >= len(h.groups) {
		return
	}
	g := &h.groups[shard]
	var busy time.Duration
	for i := range s.Workers {
		w := &s.Workers[i]
		g.Tuples += w.Tuples
		g.Rows += w.Rows
		busy += w.Busy
	}
	g.Busy += busy
	g.Queries++
	if g.Queries == 1 {
		g.EWMABusy = busy
	} else {
		g.EWMABusy = time.Duration(h.alpha*float64(busy) + (1-h.alpha)*float64(g.EWMABusy))
	}
}

// Snapshot copies the current per-group heat.
func (h *HeatTracker) Snapshot() []GroupHeat {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]GroupHeat(nil), h.groups...)
}

// Heat reports the coordinator's per-shard-group load estimates.
func (r *Remote) Heat() []GroupHeat { return r.heat.Snapshot() }

// ProposalKind says which way a rebalance proposal moves capacity.
type ProposalKind int

const (
	// Promote adds a replica to a hot shard group.
	Promote ProposalKind = iota
	// Demote removes a replica from a cold shard group.
	Demote
)

func (k ProposalKind) String() string {
	if k == Demote {
		return "demote"
	}
	return "promote"
}

// Proposal is one suggested topology change.
type Proposal struct {
	Shard    int
	Kind     ProposalKind
	Endpoint string
	// Reason is a human-readable justification for logs and reviews.
	Reason string
}

// RebalancePolicy proposes topology changes from heat estimates. Policies
// are pure: they never mutate the coordinator, and nothing applies their
// proposals automatically — the operator (or an operator-owned loop)
// reviews and applies them via ApplyProposals. replicas is the current
// routing table; standby lists warm endpoints available for promotion.
type RebalancePolicy interface {
	Propose(heat []GroupHeat, replicas [][]string, standby []string) []Proposal
}

// HeatPolicy is the default threshold policy: a group whose smoothed
// per-query busy time exceeds HotFactor× the cross-group mean gets a
// standby replica promoted into it; a group below ColdFactor× the mean
// gets its lowest-priority replica demoted. Groups with too few served
// queries are never judged — no signal, no action.
type HeatPolicy struct {
	// HotFactor (default 2.0) and ColdFactor (default 0.25) bound the
	// hot/cold bands around the mean EWMA busy time.
	HotFactor  float64
	ColdFactor float64
	// MinReplicas floors demotion (default 1); MaxReplicas caps promotion
	// (0 = unlimited).
	MinReplicas int
	MaxReplicas int
	// MinQueries is the signal floor per group (default 8).
	MinQueries int64
}

func (p HeatPolicy) fill() HeatPolicy {
	if p.HotFactor <= 0 {
		p.HotFactor = 2.0
	}
	if p.ColdFactor <= 0 {
		p.ColdFactor = 0.25
	}
	if p.MinReplicas <= 0 {
		p.MinReplicas = 1
	}
	if p.MinQueries <= 0 {
		p.MinQueries = 8
	}
	return p
}

// Propose implements RebalancePolicy.
func (p HeatPolicy) Propose(heat []GroupHeat, replicas [][]string, standby []string) []Proposal {
	p = p.fill()
	var mean float64
	judged := 0
	for _, g := range heat {
		if g.Queries >= p.MinQueries {
			mean += float64(g.EWMABusy)
			judged++
		}
	}
	if judged == 0 {
		return nil
	}
	mean /= float64(judged)
	if mean <= 0 {
		return nil
	}

	inGroup := func(s int, ep string) bool {
		for _, e := range replicas[s] {
			if e == ep {
				return true
			}
		}
		return false
	}
	used := map[string]bool{}
	var out []Proposal
	for _, g := range heat {
		if g.Shard >= len(replicas) || g.Queries < p.MinQueries {
			continue
		}
		load := float64(g.EWMABusy)
		switch {
		case load >= p.HotFactor*mean:
			if p.MaxReplicas > 0 && len(replicas[g.Shard]) >= p.MaxReplicas {
				continue
			}
			for _, ep := range standby {
				if used[ep] || inGroup(g.Shard, ep) {
					continue
				}
				used[ep] = true
				out = append(out, Proposal{
					Shard: g.Shard, Kind: Promote, Endpoint: ep,
					Reason: fmt.Sprintf("ewma busy %v >= %.1fx mean %v", g.EWMABusy, p.HotFactor, time.Duration(mean)),
				})
				break
			}
		case load <= p.ColdFactor*mean && len(replicas[g.Shard]) > p.MinReplicas:
			// Demote the lowest-priority replica: replicaOrder tries the
			// head of the group first, so the tail sees the least traffic.
			out = append(out, Proposal{
				Shard: g.Shard, Kind: Demote, Endpoint: replicas[g.Shard][len(replicas[g.Shard])-1],
				Reason: fmt.Sprintf("ewma busy %v <= %.2fx mean %v", g.EWMABusy, p.ColdFactor, time.Duration(mean)),
			})
		}
	}
	return out
}

// ProposeRebalance runs policy (nil = default HeatPolicy) over the current
// heat and topology. standby lists endpoints eligible for promotion.
func (r *Remote) ProposeRebalance(policy RebalancePolicy, standby []string) []Proposal {
	if policy == nil {
		policy = HeatPolicy{}
	}
	_, replicas := r.Topology()
	return policy.Propose(r.heat.Snapshot(), replicas, standby)
}

// ApplyProposals folds proposals into the current routing table and
// reconfigures once. Promotions of endpoints already present and demotions
// that would empty a group are skipped rather than failed — the table may
// have moved since the proposals were computed.
func (r *Remote) ApplyProposals(ctx context.Context, proposals []Proposal) (int64, error) {
	version, replicas := r.Topology()
	changed := false
	for _, p := range proposals {
		if p.Shard < 0 || p.Shard >= len(replicas) {
			continue
		}
		idx := -1
		for i, ep := range replicas[p.Shard] {
			if ep == p.Endpoint {
				idx = i
				break
			}
		}
		switch p.Kind {
		case Promote:
			if idx < 0 {
				replicas[p.Shard] = append(replicas[p.Shard], p.Endpoint)
				changed = true
			}
		case Demote:
			if idx >= 0 && len(replicas[p.Shard]) > 1 {
				replicas[p.Shard] = append(replicas[p.Shard][:idx], replicas[p.Shard][idx+1:]...)
				changed = true
			}
		}
	}
	if !changed {
		return version, nil
	}
	return r.Reconfigure(ctx, replicas)
}
