package rdf

import (
	"strings"
	"testing"
)

// FuzzParseNTriples checks the parser never panics and that anything it
// accepts survives a serialize/re-parse round trip.
func FuzzParseNTriples(f *testing.F) {
	seeds := []string{
		"<http://a> <http://p> <http://b> .\n",
		`<http://a> <http://p> "lit" .` + "\n",
		`_:b0 <http://p> "x\"y"@en .` + "\n",
		`<a> <p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .` + "\n",
		"# comment\n\n",
		"<a <p> <b> .\n",
		"<a> <p> .\n",
		strings.Repeat(`<s> <p> <o> .`+"\n", 5),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		triples, err := ParseString(doc)
		if err != nil {
			return
		}
		var sb strings.Builder
		w := NewWriter(&sb)
		for _, tr := range triples {
			if err := w.Write(tr); err != nil {
				t.Fatalf("write accepted triple %v: %v", tr, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := ParseString(sb.String())
		if err != nil {
			t.Fatalf("re-parse of serialized output failed: %v\noutput: %q", err, sb.String())
		}
		if len(again) != len(triples) {
			t.Fatalf("round trip changed triple count: %d -> %d", len(triples), len(again))
		}
		for i := range again {
			if again[i] != triples[i] {
				t.Fatalf("round trip changed triple %d: %v -> %v", i, triples[i], again[i])
			}
		}
	})
}
