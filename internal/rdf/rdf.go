// Package rdf provides the triple data model and N-Triples I/O.
//
// Terms are kept in their N-Triples surface syntax: IRIs include the
// surrounding angle brackets, literals include quotes and any datatype or
// language tag, blank nodes keep the "_:" prefix. This makes the dictionary
// encoding trivially lossless and avoids a parallel term model.
package rdf

// Triple is a single RDF statement. Each field is a term in N-Triples
// syntax (see package comment).
type Triple struct {
	S, P, O string
}

// TermKind classifies a term string.
type TermKind int

const (
	// IRI is an IRI reference such as <http://example.org/a>.
	IRI TermKind = iota
	// BlankNode is a blank node label such as _:b0.
	BlankNode
	// Literal is a literal such as "x", "x"@en or "1"^^<...#integer>.
	Literal
	// Invalid is anything else.
	Invalid
)

// KindOf reports the kind of a term in N-Triples syntax.
func KindOf(term string) TermKind {
	if len(term) == 0 {
		return Invalid
	}
	switch {
	case term[0] == '<' && term[len(term)-1] == '>':
		return IRI
	case len(term) > 2 && term[0] == '_' && term[1] == ':':
		return BlankNode
	case term[0] == '"':
		return Literal
	default:
		return Invalid
	}
}

// NewIRI wraps a bare IRI string in angle brackets.
func NewIRI(iri string) string { return "<" + iri + ">" }

// NewLiteral quotes a plain literal, escaping special characters.
func NewLiteral(value string) string { return `"` + escapeLiteral(value) + `"` }

// NewTypedLiteral quotes a literal and attaches a datatype IRI.
func NewTypedLiteral(value, datatypeIRI string) string {
	return `"` + escapeLiteral(value) + `"^^<` + datatypeIRI + `>`
}

func escapeLiteral(s string) string {
	// Fast path: nothing to escape.
	clean := true
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\\', '\n', '\r', '\t':
			clean = false
		}
	}
	if clean {
		return s
	}
	buf := make([]byte, 0, len(s)+8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, c)
		}
	}
	return string(buf)
}
