package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a syntax error in an N-Triples document.
type ParseError struct {
	Line int    // 1-based line number
	Msg  string // what went wrong
	Text string // the offending line, truncated
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Reader parses N-Triples documents line by line.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a Reader consuming N-Triples from r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	return &Reader{sc: sc}
}

// Read returns the next triple, or io.EOF at end of input. Blank lines and
// comment lines (starting with '#') are skipped.
func (r *Reader) Read() (Triple, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		t, err := r.parseLine(line)
		if err != nil {
			return Triple{}, err
		}
		return t, nil
	}
	if err := r.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll consumes the remaining input and returns all triples.
func (r *Reader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

func (r *Reader) errf(line, format string, args ...any) error {
	if len(line) > 80 {
		line = line[:80] + "..."
	}
	return &ParseError{Line: r.line, Msg: fmt.Sprintf(format, args...), Text: line}
}

func (r *Reader) parseLine(line string) (Triple, error) {
	rest := line
	var t Triple
	var err error
	if t.S, rest, err = r.parseTerm(line, rest, false); err != nil {
		return Triple{}, err
	}
	if t.P, rest, err = r.parseTerm(line, rest, false); err != nil {
		return Triple{}, err
	}
	if KindOf(t.P) != IRI {
		return Triple{}, r.errf(line, "predicate must be an IRI, got %q", t.P)
	}
	if t.O, rest, err = r.parseTerm(line, rest, true); err != nil {
		return Triple{}, err
	}
	rest = strings.TrimSpace(rest)
	if rest != "." && rest != ". " {
		if !strings.HasPrefix(rest, ".") || strings.TrimSpace(rest[1:]) != "" {
			return Triple{}, r.errf(line, "expected terminating '.', got %q", rest)
		}
	}
	return t, nil
}

// parseTerm consumes one term from rest and returns it with the remainder.
// allowLiteral permits literal terms (only valid in the object position).
func (r *Reader) parseTerm(line, rest string, allowLiteral bool) (term, remainder string, err error) {
	rest = strings.TrimLeft(rest, " \t")
	if rest == "" {
		return "", "", r.errf(line, "unexpected end of line")
	}
	switch rest[0] {
	case '<':
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			return "", "", r.errf(line, "unterminated IRI")
		}
		return rest[:end+1], rest[end+1:], nil
	case '_':
		if len(rest) < 3 || rest[1] != ':' {
			return "", "", r.errf(line, "malformed blank node")
		}
		end := strings.IndexAny(rest, " \t")
		if end < 0 {
			end = len(rest)
		}
		label := rest[:end]
		// A line like `_:b .` leaves the dot attached only when unspaced;
		// N-Triples requires whitespace before '.', so this is fine.
		return label, rest[end:], nil
	case '"':
		if !allowLiteral {
			return "", "", r.errf(line, "literal not allowed in this position")
		}
		end := closingQuote(rest)
		if end < 0 {
			return "", "", r.errf(line, "unterminated literal")
		}
		term := rest[:end+1]
		rest = rest[end+1:]
		switch {
		case strings.HasPrefix(rest, "^^<"):
			dtEnd := strings.IndexByte(rest, '>')
			if dtEnd < 0 {
				return "", "", r.errf(line, "unterminated datatype IRI")
			}
			term += rest[:dtEnd+1]
			rest = rest[dtEnd+1:]
		case strings.HasPrefix(rest, "@"):
			end := strings.IndexAny(rest, " \t")
			if end < 0 {
				return "", "", r.errf(line, "language tag runs to end of line")
			}
			term += rest[:end]
			rest = rest[end:]
		}
		return term, rest, nil
	default:
		return "", "", r.errf(line, "unexpected character %q", rest[0])
	}
}

// closingQuote returns the index of the closing '"' of a literal that starts
// at s[0], honoring backslash escapes, or -1.
func closingQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			return i
		}
	}
	return -1
}

// Writer serializes triples as N-Triples.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter returns a Writer emitting N-Triples to w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Write emits one triple.
func (w *Writer) Write(t Triple) error {
	for _, part := range []string{t.S, " ", t.P, " ", t.O, " .\n"} {
		if _, err := w.bw.WriteString(part); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// ParseString parses a complete N-Triples document held in a string.
func ParseString(doc string) ([]Triple, error) {
	return NewReader(strings.NewReader(doc)).ReadAll()
}
