package rdf

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleTriples(t *testing.T) {
	doc := `<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .
# a comment

<http://ex.org/a> <http://ex.org/q> "hello" .
_:b0 <http://ex.org/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex.org/c> <http://ex.org/r> "bonjour"@fr .
`
	got, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	want := []Triple{
		{"<http://ex.org/a>", "<http://ex.org/p>", "<http://ex.org/b>"},
		{"<http://ex.org/a>", "<http://ex.org/q>", `"hello"`},
		{"_:b0", "<http://ex.org/p>", `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{"<http://ex.org/c>", "<http://ex.org/r>", `"bonjour"@fr`},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestParseLiteralWithEscapes(t *testing.T) {
	doc := `<http://a> <http://p> "he said \"hi\" \\ \n end" .` + "\n"
	got, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(got) != 1 || got[0].O != `"he said \"hi\" \\ \n end"` {
		t.Fatalf("got %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"missing dot", `<http://a> <http://p> <http://b>` + "\n"},
		{"unterminated IRI", `<http://a <http://p> <http://b> .` + "\n"},
		{"literal subject", `"x" <http://p> <http://b> .` + "\n"},
		{"literal predicate", `<http://a> "p" <http://b> .` + "\n"},
		{"blank predicate", `<http://a> _:p <http://b> .` + "\n"},
		{"unterminated literal", `<http://a> <http://p> "x .` + "\n"},
		{"garbage", `hello world .` + "\n"},
		{"trailing junk", `<http://a> <http://p> <http://b> . extra` + "\n"},
		{"missing object", `<http://a> <http://p> .` + "\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseString(c.doc); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", c.doc)
			}
		})
	}
}

func TestParseErrorReportsLineNumber(t *testing.T) {
	doc := "<http://a> <http://p> <http://b> .\nbad line\n"
	_, err := ParseString(doc)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("Line = %d, want 2", pe.Line)
	}
}

func TestKindOf(t *testing.T) {
	cases := []struct {
		term string
		want TermKind
	}{
		{"<http://a>", IRI},
		{"_:b0", BlankNode},
		{`"lit"`, Literal},
		{`"lit"@en`, Literal},
		{"", Invalid},
		{"bare", Invalid},
	}
	for _, c := range cases {
		if got := KindOf(c.term); got != c.want {
			t.Errorf("KindOf(%q) = %v, want %v", c.term, got, c.want)
		}
	}
}

func TestConstructors(t *testing.T) {
	if got := NewIRI("http://x"); got != "<http://x>" {
		t.Errorf("NewIRI = %q", got)
	}
	if got := NewLiteral(`a"b`); got != `"a\"b"` {
		t.Errorf("NewLiteral = %q", got)
	}
	if got := NewTypedLiteral("7", "http://t"); got != `"7"^^<http://t>` {
		t.Errorf("NewTypedLiteral = %q", got)
	}
	if got := NewLiteral("plain"); got != `"plain"` {
		t.Errorf("NewLiteral(plain) = %q", got)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	in := []Triple{
		{"<http://a>", "<http://p>", "<http://b>"},
		{"_:n1", "<http://p>", `"x y z"`},
		{"<http://a>", "<http://q>", `"5"^^<http://www.w3.org/2001/XMLSchema#int>`},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, tr := range in {
		if err := w.Write(tr); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip: got %v want %v", got, in)
	}
}

func TestReadEOF(t *testing.T) {
	r := NewReader(strings.NewReader("# only comments\n\n"))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("Read = %v, want io.EOF", err)
	}
}

// Property: writing random triples built from the constructors and reading
// them back is the identity.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randTerm := func(obj bool) string {
		switch n := rng.Intn(3); {
		case n == 0 || !obj:
			return NewIRI("http://ex.org/r" + string(rune('a'+rng.Intn(26))))
		case n == 1:
			return NewLiteral(randomText(rng))
		default:
			return NewTypedLiteral(randomText(rng), "http://www.w3.org/2001/XMLSchema#string")
		}
	}
	f := func(n uint8) bool {
		triples := make([]Triple, int(n)%32)
		for i := range triples {
			triples[i] = Triple{
				S: randTerm(false),
				P: NewIRI("http://ex.org/p" + string(rune('a'+rng.Intn(5)))),
				O: randTerm(true),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, tr := range triples {
			if err := w.Write(tr); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil {
			return false
		}
		if len(got) != len(triples) {
			return false
		}
		for i := range got {
			if got[i] != triples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomText(rng *rand.Rand) string {
	chars := []byte(`abc "\ ` + "\n\tz")
	n := rng.Intn(12)
	out := make([]byte, n)
	for i := range out {
		out[i] = chars[rng.Intn(len(chars))]
	}
	return string(out)
}
