// Package watdiv provides a deterministic generator for WatDiv-like
// e-commerce data plus the query workloads of the paper's Tables 3 and 4:
// the basic workload (linear L1–L5, star S1–S7, snowflake F1–F5, complex
// C1–C3) and the incremental linear (IL-1, IL-2, IL-3) and mixed linear
// (ML-1, ML-2) extensions with path lengths 5–10.
//
// The Waterloo SPARQL Diversity Test Suite ships a C++ generator and query
// templates; this generator reproduces what matters for PARJ's evaluation:
// a schema diverse enough for 9-pattern stars, value skew (popular products
// and heavily-followed users), and a cyclic relation chain (follows → likes
// → hasReview → reviewer) that supports unbounded linear paths, including
// the result explosion of the IL-3 family.
package watdiv

import (
	"fmt"
	"math"
	"math/rand"

	"parj/internal/rdf"
)

const ns = "http://watdiv.repro/"

// Predicate IRIs.
var (
	PredType        = iri("type")
	PredFollows     = iri("follows")
	PredLikes       = iri("likes")
	PredSubscribes  = iri("subscribesTo")
	PredGender      = iri("gender")
	PredAge         = iri("age")
	PredNationality = iri("nationality")
	PredNickname    = iri("nickname")
	PredEmail       = iri("email")
	PredGenre       = iri("genre")
	PredPrice       = iri("price")
	PredSoldBy      = iri("soldBy")
	PredCaption     = iri("caption")
	PredHasReview   = iri("hasReview")
	PredReviewer    = iri("reviewer")
	PredRating      = iri("rating")
	PredLocatedIn   = iri("locatedIn")
	PredHomepage    = iri("homepage")
	PredPartOf      = iri("partOf")
	PredLanguage    = iri("language")
)

// Class IRIs.
var (
	ClassUser     = iri("User")
	ClassProduct  = iri("Product")
	ClassRetailer = iri("Retailer")
	ClassReview   = iri("Review")
	ClassWebsite  = iri("Website")
	ClassCity     = iri("City")
	ClassCountry  = iri("Country")
	ClassGenre    = iri("Genre")
)

func iri(local string) string { return "<" + ns + local + ">" }

// Config tunes entity counts per scale unit. The zero value gives ~5.5k
// triples per scale unit.
type Config struct {
	UsersPerScale    int // default 400
	ProductsPerScale int // default 200
	ReviewsPerScale  int // default 300
	RetailersPerScale int // default 12
	WebsitesPerScale int // default 25
	Cities           int // default 20 (global)
	Countries        int // default 10 (global)
	Genres           int // default 15 (global)
	// Skew is the power-law exponent for popularity skew (higher = more
	// skewed). Default 2.5.
	Skew float64
}

func (c *Config) fill() {
	if c.UsersPerScale == 0 {
		c.UsersPerScale = 400
	}
	if c.ProductsPerScale == 0 {
		c.ProductsPerScale = 200
	}
	if c.ReviewsPerScale == 0 {
		c.ReviewsPerScale = 300
	}
	if c.RetailersPerScale == 0 {
		c.RetailersPerScale = 12
	}
	if c.WebsitesPerScale == 0 {
		c.WebsitesPerScale = 25
	}
	if c.Cities == 0 {
		c.Cities = 20
	}
	if c.Countries == 0 {
		c.Countries = 10
	}
	if c.Genres == 0 {
		c.Genres = 15
	}
	if c.Skew == 0 {
		c.Skew = 2.5
	}
}

// Generate emits the triples for the given scale.
func Generate(scale int, cfg Config, emit func(rdf.Triple)) {
	cfg.fill()
	rng := rand.New(rand.NewSource(42))
	t := func(s, p, o string) { emit(rdf.Triple{S: s, P: p, O: o}) }

	nUsers := cfg.UsersPerScale * scale
	nProducts := cfg.ProductsPerScale * scale
	nReviews := cfg.ReviewsPerScale * scale
	nRetailers := cfg.RetailersPerScale * scale
	nWebsites := cfg.WebsitesPerScale * scale

	// skewed picks an index in [0, n) biased toward 0 (popular entities).
	skewed := func(n int) int {
		return int(float64(n) * math.Pow(rng.Float64(), cfg.Skew))
	}

	for i := 0; i < cfg.Genres; i++ {
		t(genreIRI(i), PredType, ClassGenre)
	}
	for i := 0; i < cfg.Countries; i++ {
		t(countryIRI(i), PredType, ClassCountry)
	}
	for i := 0; i < cfg.Cities; i++ {
		t(cityIRI(i), PredType, ClassCity)
		t(cityIRI(i), PredPartOf, countryIRI(i%cfg.Countries))
	}
	for i := 0; i < nWebsites; i++ {
		t(websiteIRI(i), PredType, ClassWebsite)
		t(websiteIRI(i), PredLanguage, fmt.Sprintf("%q", []string{"en", "de", "fr", "el", "es"}[i%5]))
	}
	for i := 0; i < nRetailers; i++ {
		t(retailerIRI(i), PredType, ClassRetailer)
		t(retailerIRI(i), PredLocatedIn, cityIRI(rng.Intn(cfg.Cities)))
		t(retailerIRI(i), PredHomepage, websiteIRI(rng.Intn(nWebsites)))
	}
	for i := 0; i < nProducts; i++ {
		p := productIRI(i)
		t(p, PredType, ClassProduct)
		t(p, PredGenre, genreIRI(skewed(cfg.Genres)))
		t(p, PredPrice, fmt.Sprintf("%q", fmt.Sprintf("%d", 1+rng.Intn(500))))
		t(p, PredSoldBy, retailerIRI(skewed(nRetailers)))
		if rng.Intn(3) == 0 {
			t(p, PredCaption, fmt.Sprintf("%q", fmt.Sprintf("product %d", i)))
		}
	}
	for i := 0; i < nReviews; i++ {
		r := reviewIRI(i)
		t(r, PredType, ClassReview)
		t(r, PredReviewer, userIRI(rng.Intn(nUsers)))
		t(r, PredRating, fmt.Sprintf("%q", fmt.Sprintf("%d", 1+rng.Intn(5))))
		// hasReview points product -> review.
		t(productIRI(skewed(nProducts)), PredHasReview, r)
	}
	genders := []string{`"male"`, `"female"`, `"other"`}
	for i := 0; i < nUsers; i++ {
		u := userIRI(i)
		t(u, PredType, ClassUser)
		t(u, PredGender, genders[rng.Intn(3)])
		t(u, PredAge, fmt.Sprintf("%q", fmt.Sprintf("%d", 16+rng.Intn(60))))
		t(u, PredNationality, countryIRI(skewed(cfg.Countries)))
		t(u, PredNickname, fmt.Sprintf("%q", fmt.Sprintf("user%d", i)))
		if rng.Intn(2) == 0 {
			t(u, PredEmail, fmt.Sprintf("%q", fmt.Sprintf("user%d@mail.example", i)))
		}
		nFollows := rng.Intn(5)
		for f := 0; f < nFollows; f++ {
			t(u, PredFollows, userIRI(skewed(nUsers)))
		}
		nLikes := 1 + rng.Intn(4)
		for l := 0; l < nLikes; l++ {
			t(u, PredLikes, productIRI(skewed(nProducts)))
		}
		if rng.Intn(2) == 0 {
			t(u, PredSubscribes, websiteIRI(skewed(nWebsites)))
		}
	}
}

// Triples generates and collects all triples.
func Triples(scale int, cfg Config) []rdf.Triple {
	var out []rdf.Triple
	Generate(scale, cfg, func(t rdf.Triple) { out = append(out, t) })
	return out
}

func userIRI(i int) string     { return fmt.Sprintf("<%suser%d>", ns, i) }
func productIRI(i int) string  { return fmt.Sprintf("<%sproduct%d>", ns, i) }
func reviewIRI(i int) string   { return fmt.Sprintf("<%sreview%d>", ns, i) }
func retailerIRI(i int) string { return fmt.Sprintf("<%sretailer%d>", ns, i) }
func websiteIRI(i int) string  { return fmt.Sprintf("<%swebsite%d>", ns, i) }
func cityIRI(i int) string     { return fmt.Sprintf("<%scity%d>", ns, i) }
func countryIRI(i int) string  { return fmt.Sprintf("<%scountry%d>", ns, i) }
func genreIRI(i int) string    { return fmt.Sprintf("<%sgenre%d>", ns, i) }

// Query is one benchmark query with its workload group.
type Query struct {
	Name   string
	Group  string // "L", "S", "F", "C", "IL-1", "IL-2", "IL-3", "ML-1", "ML-2"
	SPARQL string
}

// BasicQueries returns the 20-query basic workload (L1–L5, S1–S7, F1–F5,
// C1–C3).
func BasicQueries() []Query {
	qs := []Query{
		// Linear: short paths anchored by a constant.
		{"L1", "L", `SELECT ?v0 ?v1 ?v2 WHERE {
			?v0 ` + PredFollows + ` ?v1 .
			?v1 ` + PredLikes + ` ?v2 .
			?v2 ` + PredGenre + ` ` + genreIRI(2) + ` }`},
		{"L2", "L", `SELECT ?v1 ?v2 WHERE {
			` + userIRI(0) + ` ` + PredLikes + ` ?v1 .
			?v1 ` + PredHasReview + ` ?v2 }`},
		{"L3", "L", `SELECT ?v0 ?v1 WHERE {
			?v0 ` + PredLikes + ` ` + productIRI(0) + ` .
			?v0 ` + PredSubscribes + ` ?v1 }`},
		{"L4", "L", `SELECT ?v0 ?n WHERE {
			?v0 ` + PredSubscribes + ` ` + websiteIRI(1) + ` .
			?v0 ` + PredNickname + ` ?n }`},
		{"L5", "L", `SELECT ?v0 ?v1 ?g WHERE {
			?v0 ` + PredNationality + ` ` + countryIRI(1) + ` .
			?v0 ` + PredLikes + ` ?v1 .
			?v1 ` + PredGenre + ` ?g }`},
		// Stars: S1 has nine patterns, as in WatDiv.
		{"S1", "S", `SELECT ?v0 ?f ?l ?s ?g ?a ?n ?nick WHERE {
			?v0 ` + PredType + ` ` + ClassUser + ` .
			?v0 ` + PredFollows + ` ?f .
			?v0 ` + PredLikes + ` ?l .
			?v0 ` + PredSubscribes + ` ?s .
			?v0 ` + PredGender + ` ?g .
			?v0 ` + PredAge + ` ?a .
			?v0 ` + PredNationality + ` ?n .
			?v0 ` + PredNickname + ` ?nick .
			?v0 ` + PredEmail + ` ?e }`},
		{"S2", "S", `SELECT ?v0 ?g ?r WHERE {
			?v0 ` + PredType + ` ` + ClassProduct + ` .
			?v0 ` + PredGenre + ` ?g .
			?v0 ` + PredSoldBy + ` ?r .
			?v0 ` + PredCaption + ` ?c }`},
		{"S3", "S", `SELECT ?v0 ?c ?h WHERE {
			?v0 ` + PredType + ` ` + ClassRetailer + ` .
			?v0 ` + PredLocatedIn + ` ?c .
			?v0 ` + PredHomepage + ` ?h }`},
		{"S4", "S", `SELECT ?v0 ?u WHERE {
			?v0 ` + PredType + ` ` + ClassReview + ` .
			?v0 ` + PredReviewer + ` ?u .
			?v0 ` + PredRating + ` "5" }`},
		{"S5", "S", `SELECT ?v0 ?a ?n WHERE {
			?v0 ` + PredGender + ` "female" .
			?v0 ` + PredAge + ` ?a .
			?v0 ` + PredNationality + ` ` + countryIRI(0) + ` .
			?v0 ` + PredNickname + ` ?n }`},
		{"S6", "S", `SELECT ?v0 ?p WHERE {
			?v0 ` + PredGenre + ` ` + genreIRI(0) + ` .
			?v0 ` + PredSoldBy + ` ` + retailerIRI(0) + ` .
			?v0 ` + PredPrice + ` ?p }`},
		{"S7", "S", `SELECT ?v0 WHERE {
			?v0 ` + PredLocatedIn + ` ` + cityIRI(0) + ` .
			?v0 ` + PredHomepage + ` ?h .
			?v0 ` + PredType + ` ` + ClassRetailer + ` }`},
		// Snowflakes: joined stars.
		{"F1", "F", `SELECT ?u ?p ?r WHERE {
			?u ` + PredLikes + ` ?p .
			?u ` + PredNationality + ` ` + countryIRI(0) + ` .
			?p ` + PredGenre + ` ?g .
			?p ` + PredSoldBy + ` ?r .
			?r ` + PredLocatedIn + ` ?c }`},
		{"F2", "F", `SELECT ?p ?rev ?u WHERE {
			?p ` + PredHasReview + ` ?rev .
			?p ` + PredGenre + ` ` + genreIRI(1) + ` .
			?rev ` + PredReviewer + ` ?u .
			?u ` + PredNationality + ` ?n .
			?u ` + PredAge + ` ?a }`},
		{"F3", "F", `SELECT ?u ?w ?p WHERE {
			?u ` + PredSubscribes + ` ?w .
			?w ` + PredLanguage + ` "en" .
			?u ` + PredLikes + ` ?p .
			?p ` + PredSoldBy + ` ?r .
			?r ` + PredHomepage + ` ?h }`},
		{"F4", "F", `SELECT ?p ?r ?c ?co WHERE {
			?p ` + PredSoldBy + ` ?r .
			?r ` + PredLocatedIn + ` ?c .
			?c ` + PredPartOf + ` ?co .
			?p ` + PredGenre + ` ` + genreIRI(0) + ` .
			?p ` + PredHasReview + ` ?rev }`},
		{"F5", "F", `SELECT ?u ?f ?p WHERE {
			?u ` + PredFollows + ` ?f .
			?f ` + PredLikes + ` ?p .
			?p ` + PredSoldBy + ` ` + retailerIRI(1) + ` .
			?u ` + PredGender + ` "male" }`},
		// Complex.
		{"C1", "C", `SELECT ?u ?p ?rev ?u2 WHERE {
			?u ` + PredLikes + ` ?p .
			?p ` + PredHasReview + ` ?rev .
			?rev ` + PredReviewer + ` ?u2 .
			?u2 ` + PredNationality + ` ` + countryIRI(0) + ` .
			?u ` + PredSubscribes + ` ?w }`},
		{"C2", "C", `SELECT ?u ?f ?p ?r ?c WHERE {
			?u ` + PredFollows + ` ?f .
			?f ` + PredLikes + ` ?p .
			?p ` + PredSoldBy + ` ?r .
			?r ` + PredLocatedIn + ` ?c .
			?c ` + PredPartOf + ` ` + countryIRI(0) + ` .
			?u ` + PredNationality + ` ?n }`},
		{"C3", "C", `SELECT ?u ?f ?p ?g WHERE {
			?u ` + PredFollows + ` ?f .
			?u ` + PredLikes + ` ?p .
			?f ` + PredLikes + ` ?p2 .
			?p ` + PredGenre + ` ?g .
			?p2 ` + PredGenre + ` ?g }`},
	}
	return qs
}

// chain is the cyclic relation sequence for linear paths; chain[i] leads
// from the i-th node type to the next (user → user → product → review →
// user → ...).
var chain = []string{PredFollows, PredLikes, PredHasReview, PredReviewer}

// pathQuery builds a linear path query of the given length. start ∈
// {"const", "free"} selects whether ?v0 is fixed; phase offsets the
// predicate cycle.
func pathQuery(length, phase int, constStart string) string {
	src := "SELECT * WHERE {"
	for i := 0; i < length; i++ {
		s := fmt.Sprintf("?v%d", i)
		if i == 0 && constStart != "" {
			s = constStart
		}
		src += fmt.Sprintf(" %s %s ?v%d .", s, chain[(i+phase)%len(chain)], i+1)
	}
	return src + " }"
}

// ILQueries returns the incremental linear workload: for each family the
// path lengths 5–10 (named IL-f-len as in the paper's Table 4). IL-1 and
// IL-2 start from a constant user; IL-3 is unbounded and produces the huge
// result sets the paper discusses (IL-3-8 is the worst case).
func ILQueries() []Query {
	var qs []Query
	for l := 5; l <= 10; l++ {
		qs = append(qs, Query{fmt.Sprintf("IL-1-%d", l), "IL-1", pathQuery(l, 0, userIRI(1))})
	}
	for l := 5; l <= 10; l++ {
		qs = append(qs, Query{fmt.Sprintf("IL-2-%d", l), "IL-2", pathQuery(l, 1, userIRI(2))})
	}
	for l := 5; l <= 10; l++ {
		qs = append(qs, Query{fmt.Sprintf("IL-3-%d", l), "IL-3", pathQuery(l, 0, "")})
	}
	return qs
}

// nodeType reports the entity class of path node ?v_i under the given
// predicate-cycle phase: "U"ser, "P"roduct or "R"eview.
func nodeType(i, phase int) byte {
	return "UUPR"[(i+phase)%len(chain)]
}

// anchorPattern returns a selective pattern restricting node v (of the
// given class) by a constant attribute.
func anchorPattern(v string, class byte) string {
	switch class {
	case 'U':
		return fmt.Sprintf(" %s %s %s .", v, PredNationality, countryIRI(1))
	case 'P':
		return fmt.Sprintf(" %s %s %s .", v, PredGenre, genreIRI(1))
	default: // review
		return fmt.Sprintf(` %s %s "5" .`, v, PredRating)
	}
}

// MLQueries returns the mixed linear workload: paths whose selectivity
// comes from a constant at the far end (ML-1, selective) or from a mid-path
// attribute restriction (ML-2, larger intermediates). The anchor predicate
// matches the class of the anchored node so every length has answers.
func MLQueries() []Query {
	var qs []Query
	for l := 5; l <= 10; l++ {
		src := "SELECT * WHERE {"
		for i := 0; i < l-1; i++ {
			src += fmt.Sprintf(" ?v%d %s ?v%d .", i, chain[i%len(chain)], i+1)
		}
		src += anchorPattern(fmt.Sprintf("?v%d", l-1), nodeType(l-1, 0))
		src += " }"
		qs = append(qs, Query{fmt.Sprintf("ML-1-%d", l), "ML-1", src})
	}
	for l := 5; l <= 10; l++ {
		src := "SELECT * WHERE {"
		for i := 0; i < l-1; i++ {
			src += fmt.Sprintf(" ?v%d %s ?v%d .", i, chain[(i+1)%len(chain)], i+1)
		}
		mid := l / 2
		src += anchorPattern(fmt.Sprintf("?v%d", mid), nodeType(mid, 1))
		src += " }"
		qs = append(qs, Query{fmt.Sprintf("ML-2-%d", l), "ML-2", src})
	}
	return qs
}

// AllQueries returns basic + IL + ML.
func AllQueries() []Query {
	out := BasicQueries()
	out = append(out, ILQueries()...)
	out = append(out, MLQueries()...)
	return out
}
