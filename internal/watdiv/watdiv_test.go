package watdiv

import (
	"testing"

	"parj/internal/core"
	"parj/internal/optimizer"
	"parj/internal/rdf"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
)

func TestDeterministic(t *testing.T) {
	a := Triples(2, Config{})
	b := Triples(2, Config{})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
}

func TestScaleGrows(t *testing.T) {
	n1 := len(Triples(1, Config{}))
	n4 := len(Triples(4, Config{}))
	if n1 < 3000 {
		t.Errorf("scale 1 = %d triples, too few", n1)
	}
	if n4 < 3*n1 {
		t.Errorf("scale 4 = %d vs scale 1 = %d; want ~4x", n4, n1)
	}
}

func TestValidTerms(t *testing.T) {
	for _, tr := range Triples(1, Config{}) {
		if rdf.KindOf(tr.S) != rdf.IRI || rdf.KindOf(tr.P) != rdf.IRI {
			t.Fatalf("bad triple %v", tr)
		}
		if k := rdf.KindOf(tr.O); k != rdf.IRI && k != rdf.Literal {
			t.Fatalf("bad object %q", tr.O)
		}
	}
}

func TestQueryCountsAndNames(t *testing.T) {
	basic := BasicQueries()
	if len(basic) != 20 {
		t.Errorf("basic workload = %d queries, want 20", len(basic))
	}
	groups := map[string]int{}
	for _, q := range basic {
		groups[q.Group]++
	}
	want := map[string]int{"L": 5, "S": 7, "F": 5, "C": 3}
	for g, n := range want {
		if groups[g] != n {
			t.Errorf("group %s has %d queries, want %d", g, groups[g], n)
		}
	}
	il := ILQueries()
	if len(il) != 18 {
		t.Errorf("IL workload = %d queries, want 18 (3 families × lengths 5–10)", len(il))
	}
	ml := MLQueries()
	if len(ml) != 12 {
		t.Errorf("ML workload = %d queries, want 12", len(ml))
	}
	if len(AllQueries()) != 50 {
		t.Errorf("AllQueries = %d, want 50", len(AllQueries()))
	}
}

func TestS1HasNinePatterns(t *testing.T) {
	for _, q := range BasicQueries() {
		if q.Name == "S1" {
			parsed, err := sparql.Parse(q.SPARQL)
			if err != nil {
				t.Fatal(err)
			}
			if len(parsed.Patterns) != 9 {
				t.Errorf("S1 has %d patterns, want 9 (as in WatDiv)", len(parsed.Patterns))
			}
		}
	}
}

func TestAllQueriesParseAndExecute(t *testing.T) {
	st := store.LoadTriples(Triples(2, Config{}), store.BuildOptions{})
	s := stats.New(st)
	zero := map[string]bool{}
	for _, q := range AllQueries() {
		parsed, err := sparql.Parse(q.SPARQL)
		if err != nil {
			t.Fatalf("%s: parse: %v", q.Name, err)
		}
		plan, err := optimizer.Optimize(parsed, st, s)
		if err != nil {
			t.Fatalf("%s: optimize: %v", q.Name, err)
		}
		res, err := core.Execute(st, plan, core.Options{Threads: 2, Silent: true})
		if err != nil {
			t.Fatalf("%s: execute: %v", q.Name, err)
		}
		if res.Count == 0 {
			zero[q.Name] = true
		}
		t.Logf("%s: %d rows", q.Name, res.Count)
	}
	// At small scale a few selective queries can legitimately be empty,
	// but the bulk of the workload must produce answers.
	if len(zero) > 8 {
		t.Errorf("%d of %d queries empty at scale 2: %v", len(zero), len(AllQueries()), zero)
	}
	for _, name := range []string{"S1", "F1", "C3", "IL-3-5", "ML-2-5"} {
		if zero[name] {
			t.Errorf("%s must have answers", name)
		}
	}
}

func TestIL3Explodes(t *testing.T) {
	st := store.LoadTriples(Triples(2, Config{}), store.BuildOptions{})
	s := stats.New(st)
	count := func(src string) int64 {
		parsed, err := sparql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := optimizer.Optimize(parsed, st, s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Execute(st, plan, core.Options{Threads: 4, Silent: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Count
	}
	il := ILQueries()
	var il35, il38, il15 int64
	for _, q := range il {
		switch q.Name {
		case "IL-3-5":
			il35 = count(q.SPARQL)
		case "IL-3-8":
			il38 = count(q.SPARQL)
		case "IL-1-5":
			il15 = count(q.SPARQL)
		}
	}
	if il38 <= il35 {
		t.Errorf("IL-3-8 (%d) should exceed IL-3-5 (%d): longer unbounded paths explode", il38, il35)
	}
	if il35 <= il15 {
		t.Errorf("unbounded IL-3-5 (%d) should exceed anchored IL-1-5 (%d)", il35, il15)
	}
}
