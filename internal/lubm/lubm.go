// Package lubm provides a deterministic generator for LUBM-like university
// data plus the ten-query workload used in the paper's LUBM experiments
// (Tables 2, 5, 6 and Figures 2, 3).
//
// The original Lehigh University Benchmark generator (UBA) is a Java tool
// with data files this environment does not have; this generator reproduces
// the structural properties PARJ's evaluation depends on — the entity
// hierarchy (universities → departments → faculty/students/courses), 17
// predicates, heavy subject sharing for star joins, and long join chains
// via advisor/degree relations — at a configurable scale. Scale is the
// number of universities, as in LUBM; per-university entity counts are
// scaled-down LUBM ratios so laptop-sized runs keep the paper's workload
// shape.
package lubm

import (
	"fmt"
	"math/rand"

	"parj/internal/rdf"
)

// ns is the IRI namespace of generated entities and predicates.
const ns = "http://lubm.repro/"

// Predicate IRIs (17, as the paper counts for LUBM 10240).
var (
	PredType           = iri("type")
	PredName           = iri("name")
	PredTeacherOf      = iri("teacherOf")
	PredWorksFor       = iri("worksFor")
	PredSubOrgOf       = iri("subOrganizationOf")
	PredUndergradFrom  = iri("undergraduateDegreeFrom")
	PredMastersFrom    = iri("mastersDegreeFrom")
	PredDoctoralFrom   = iri("doctoralDegreeFrom")
	PredAdvisor        = iri("advisor")
	PredTakesCourse    = iri("takesCourse")
	PredMemberOf       = iri("memberOf")
	PredHeadOf         = iri("headOf")
	PredPubAuthor      = iri("publicationAuthor")
	PredResearchInt    = iri("researchInterest")
	PredEmail          = iri("emailAddress")
	PredTelephone      = iri("telephone")
	PredTeachingAsstOf = iri("teachingAssistantOf")
)

// Class IRIs.
var (
	ClassUniversity   = iri("University")
	ClassDepartment   = iri("Department")
	ClassFullProf     = iri("FullProfessor")
	ClassAssocProf    = iri("AssociateProfessor")
	ClassAsstProf     = iri("AssistantProfessor")
	ClassLecturer     = iri("Lecturer")
	ClassCourse       = iri("Course")
	ClassGradCourse   = iri("GraduateCourse")
	ClassUndergrad    = iri("UndergraduateStudent")
	ClassGradStudent  = iri("GraduateStudent")
	ClassPublication  = iri("Publication")
	ClassResearchArea = iri("ResearchArea")
)

func iri(local string) string { return "<" + ns + local + ">" }

// Config tunes per-university entity counts. The zero value selects
// defaults that yield roughly 8k triples per university.
type Config struct {
	DeptsPerUniversity int // default 6
	ProfsPerDept       int // default 12 (split across ranks)
	LecturersPerDept   int // default 4
	CoursesPerProf     int // default 3
	UndergradsPerDept  int // default 120
	GradsPerDept       int // default 40
	PubsPerProf        int // default 3
	ResearchAreas      int // default 25 (global)
}

func (c *Config) fill() {
	if c.DeptsPerUniversity == 0 {
		c.DeptsPerUniversity = 6
	}
	if c.ProfsPerDept == 0 {
		c.ProfsPerDept = 12
	}
	if c.LecturersPerDept == 0 {
		c.LecturersPerDept = 4
	}
	if c.CoursesPerProf == 0 {
		c.CoursesPerProf = 3
	}
	if c.UndergradsPerDept == 0 {
		c.UndergradsPerDept = 120
	}
	if c.GradsPerDept == 0 {
		c.GradsPerDept = 40
	}
	if c.PubsPerProf == 0 {
		c.PubsPerProf = 3
	}
	if c.ResearchAreas == 0 {
		c.ResearchAreas = 25
	}
}

// Generate emits the triples for scale universities to emit, using
// deterministic per-university randomness (seeded by university index) so
// output is reproducible and independent of emission order.
func Generate(scale int, cfg Config, emit func(rdf.Triple)) {
	cfg.fill()
	t := func(s, p, o string) { emit(rdf.Triple{S: s, P: p, O: o}) }
	for i := 0; i < cfg.ResearchAreas; i++ {
		area := fmt.Sprintf("<%sarea%d>", ns, i)
		t(area, PredType, ClassResearchArea)
	}
	for u := 0; u < scale; u++ {
		generateUniversity(u, scale, cfg, t)
	}
}

// Triples generates and collects all triples (convenient for tests and
// small scales).
func Triples(scale int, cfg Config) []rdf.Triple {
	var out []rdf.Triple
	Generate(scale, cfg, func(t rdf.Triple) { out = append(out, t) })
	return out
}

func generateUniversity(u, scale int, cfg Config, t func(s, p, o string)) {
	rng := rand.New(rand.NewSource(int64(u)*104729 + 7))
	uni := uniIRI(u)
	t(uni, PredType, ClassUniversity)
	t(uni, PredName, fmt.Sprintf("%q", fmt.Sprintf("University%d", u)))

	profRanks := []string{ClassFullProf, ClassAssocProf, ClassAsstProf}
	for d := 0; d < cfg.DeptsPerUniversity; d++ {
		dept := deptIRI(u, d)
		t(dept, PredType, ClassDepartment)
		t(dept, PredSubOrgOf, uni)

		var courses []string
		var faculty []string
		for p := 0; p < cfg.ProfsPerDept; p++ {
			prof := profIRI(u, d, p)
			faculty = append(faculty, prof)
			t(prof, PredType, profRanks[p%len(profRanks)])
			t(prof, PredWorksFor, dept)
			t(prof, PredName, fmt.Sprintf("%q", fmt.Sprintf("Prof%d_%d_%d", u, d, p)))
			t(prof, PredEmail, fmt.Sprintf("%q", fmt.Sprintf("prof%d.%d.%d@u%d.edu", u, d, p, u)))
			t(prof, PredTelephone, fmt.Sprintf("%q", fmt.Sprintf("+1-555-%04d", rng.Intn(10000))))
			t(prof, PredResearchInt, fmt.Sprintf("<%sarea%d>", ns, rng.Intn(cfg.ResearchAreas)))
			// Degrees link professors to (other) universities: the join
			// chain LUBM query 2 exploits.
			t(prof, PredUndergradFrom, uniIRI(rng.Intn(scale)))
			t(prof, PredMastersFrom, uniIRI(rng.Intn(scale)))
			t(prof, PredDoctoralFrom, uniIRI(rng.Intn(scale)))
			if p == 0 {
				t(prof, PredHeadOf, dept)
			}
			for c := 0; c < cfg.CoursesPerProf; c++ {
				course := courseIRI(u, d, p, c)
				courses = append(courses, course)
				class := ClassCourse
				if c%2 == 1 {
					class = ClassGradCourse
				}
				t(course, PredType, class)
				t(prof, PredTeacherOf, course)
			}
			for pb := 0; pb < cfg.PubsPerProf; pb++ {
				pub := fmt.Sprintf("<%suniv%d/dept%d/pub%d_%d>", ns, u, d, p, pb)
				t(pub, PredType, ClassPublication)
				t(pub, PredPubAuthor, prof)
			}
		}
		for l := 0; l < cfg.LecturersPerDept; l++ {
			lect := fmt.Sprintf("<%suniv%d/dept%d/lecturer%d>", ns, u, d, l)
			faculty = append(faculty, lect)
			t(lect, PredType, ClassLecturer)
			t(lect, PredWorksFor, dept)
			t(lect, PredUndergradFrom, uniIRI(rng.Intn(scale)))
		}

		for s := 0; s < cfg.UndergradsPerDept; s++ {
			stu := fmt.Sprintf("<%suniv%d/dept%d/ugrad%d>", ns, u, d, s)
			t(stu, PredType, ClassUndergrad)
			t(stu, PredMemberOf, dept)
			nCourses := 2 + rng.Intn(3)
			for c := 0; c < nCourses; c++ {
				t(stu, PredTakesCourse, courses[rng.Intn(len(courses))])
			}
			if rng.Intn(5) == 0 {
				t(stu, PredAdvisor, faculty[rng.Intn(len(faculty))])
			}
		}
		for s := 0; s < cfg.GradsPerDept; s++ {
			stu := gradIRI(u, d, s)
			t(stu, PredType, ClassGradStudent)
			t(stu, PredMemberOf, dept)
			// Grad students hold an undergraduate degree from some
			// university — LUBM query 2's triangle needs members whose
			// degree university is the department's own university.
			degreeUni := rng.Intn(scale)
			if rng.Intn(2) == 0 {
				degreeUni = u
			}
			t(stu, PredUndergradFrom, uniIRI(degreeUni))
			t(stu, PredAdvisor, faculty[rng.Intn(len(faculty))])
			t(stu, PredEmail, fmt.Sprintf("%q", fmt.Sprintf("grad%d.%d.%d@u%d.edu", u, d, s, u)))
			nCourses := 1 + rng.Intn(3)
			for c := 0; c < nCourses; c++ {
				t(stu, PredTakesCourse, courses[rng.Intn(len(courses))])
			}
			if s%4 == 0 {
				t(stu, PredTeachingAsstOf, courses[rng.Intn(len(courses))])
			}
		}
	}
}

func uniIRI(u int) string           { return fmt.Sprintf("<%suniv%d>", ns, u) }
func deptIRI(u, d int) string       { return fmt.Sprintf("<%suniv%d/dept%d>", ns, u, d) }
func profIRI(u, d, p int) string    { return fmt.Sprintf("<%suniv%d/dept%d/prof%d>", ns, u, d, p) }
func gradIRI(u, d, s int) string    { return fmt.Sprintf("<%suniv%d/dept%d/grad%d>", ns, u, d, s) }
func courseIRI(u, d, p, c int) string {
	return fmt.Sprintf("<%suniv%d/dept%d/course%d_%d>", ns, u, d, p, c)
}

// Query is one benchmark query.
type Query struct {
	Name   string
	SPARQL string
}

// Queries returns the L1–L10 workload: L1–L7 follow the seven queries
// commonly used for systems without reasoning (shape and selectivity
// classes from the Trinity.RDF set), L8–L10 the three extra queries from
// the dynamic-exchange-operator paper. L4–L6 are the selective,
// few-millisecond queries; L2 and L9 produce the large results/intermediates
// the paper discusses.
func Queries() []Query {
	return []Query{
		{"L1", `SELECT ?x ?y ?z WHERE {
			?x ` + PredType + ` ` + ClassGradStudent + ` .
			?x ` + PredTakesCourse + ` ?y .
			?z ` + PredTeacherOf + ` ?y .
			?z ` + PredType + ` ` + ClassFullProf + ` .
			?z ` + PredWorksFor + ` ?w }`},
		{"L2", `SELECT ?x ?y ?z WHERE {
			?x ` + PredMemberOf + ` ?z .
			?z ` + PredSubOrgOf + ` ?y .
			?x ` + PredUndergradFrom + ` ?y }`},
		{"L3", `SELECT ?x ?y ?z WHERE {
			?x ` + PredType + ` ` + ClassGradStudent + ` .
			?x ` + PredAdvisor + ` ?y .
			?y ` + PredWorksFor + ` ?z .
			?z ` + PredSubOrgOf + ` ?w .
			?x ` + PredMemberOf + ` ?z }`},
		{"L4", `SELECT ?y WHERE {
			` + profIRI(0, 0, 0) + ` ` + PredWorksFor + ` ?x .
			` + profIRI(0, 0, 0) + ` ` + PredTeacherOf + ` ?y .
			?x ` + PredSubOrgOf + ` ?z }`},
		{"L5", `SELECT ?x WHERE {
			?x ` + PredMemberOf + ` ` + deptIRI(0, 0) + ` .
			?x ` + PredType + ` ` + ClassGradStudent + ` }`},
		{"L6", `SELECT ?x ?y WHERE {
			?x ` + PredAdvisor + ` ` + profIRI(0, 0, 1) + ` .
			?x ` + PredTakesCourse + ` ?y }`},
		{"L7", `SELECT ?x ?y ?z WHERE {
			?x ` + PredTakesCourse + ` ?y .
			?z ` + PredTeacherOf + ` ?y .
			?z ` + PredWorksFor + ` ?w .
			?w ` + PredSubOrgOf + ` ?u }`},
		{"L8", `SELECT ?x ?y WHERE {
			?x ` + PredMemberOf + ` ?z .
			?z ` + PredSubOrgOf + ` ?y .
			?x ` + PredUndergradFrom + ` ?y .
			?x ` + PredEmail + ` ?e .
			?x ` + PredAdvisor + ` ?a }`},
		{"L9", `SELECT ?x ?y ?z WHERE {
			?x ` + PredAdvisor + ` ?y .
			?y ` + PredTeacherOf + ` ?z .
			?x ` + PredTakesCourse + ` ?z }`},
		{"L10", `SELECT ?x ?y WHERE {
			?x ` + PredTakesCourse + ` ?c .
			?y ` + PredTeacherOf + ` ?c .
			?y ` + PredResearchInt + ` ?r .
			?x ` + PredMemberOf + ` ?d .
			?y ` + PredWorksFor + ` ?d }`},
	}
}
