package lubm

import (
	"strings"
	"testing"

	"parj/internal/rdf"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"

	"parj/internal/core"
	"parj/internal/optimizer"
)

func TestDeterministic(t *testing.T) {
	a := Triples(2, Config{})
	b := Triples(2, Config{})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestScaleGrowsLinearly(t *testing.T) {
	n1 := len(Triples(1, Config{}))
	n4 := len(Triples(4, Config{}))
	if n4 < 3*n1 || n4 > 5*n1 {
		t.Errorf("scale 4 = %d triples, scale 1 = %d; expected ~4x", n4, n1)
	}
	if n1 < 5000 {
		t.Errorf("scale 1 only %d triples; density too low", n1)
	}
}

func TestSeventeenPredicates(t *testing.T) {
	preds := map[string]bool{}
	Generate(1, Config{}, func(tr rdf.Triple) { preds[tr.P] = true })
	if len(preds) != 17 {
		t.Errorf("predicates = %d, want 17 (as the paper counts for LUBM)", len(preds))
	}
}

func TestValidNTriples(t *testing.T) {
	for _, tr := range Triples(1, Config{}) {
		if rdf.KindOf(tr.S) != rdf.IRI {
			t.Fatalf("subject %q not an IRI", tr.S)
		}
		if rdf.KindOf(tr.P) != rdf.IRI {
			t.Fatalf("predicate %q not an IRI", tr.P)
		}
		if k := rdf.KindOf(tr.O); k != rdf.IRI && k != rdf.Literal {
			t.Fatalf("object %q invalid", tr.O)
		}
	}
}

func TestAllQueriesParseAndReturnRows(t *testing.T) {
	st := store.LoadTriples(Triples(4, Config{}), store.BuildOptions{})
	s := stats.New(st)
	for _, q := range Queries() {
		parsed, err := sparql.Parse(q.SPARQL)
		if err != nil {
			t.Fatalf("%s: parse: %v", q.Name, err)
		}
		plan, err := optimizer.Optimize(parsed, st, s)
		if err != nil {
			t.Fatalf("%s: optimize: %v", q.Name, err)
		}
		res, err := core.Execute(st, plan, core.Options{Threads: 2, Silent: true})
		if err != nil {
			t.Fatalf("%s: execute: %v", q.Name, err)
		}
		t.Logf("%s: %d rows", q.Name, res.Count)
		if res.Count == 0 {
			t.Errorf("%s: no results; query/generator mismatch", q.Name)
		}
	}
}

func TestSelectivityClasses(t *testing.T) {
	st := store.LoadTriples(Triples(4, Config{}), store.BuildOptions{})
	s := stats.New(st)
	counts := map[string]int64{}
	for _, q := range Queries() {
		parsed, _ := sparql.Parse(q.SPARQL)
		plan, _ := optimizer.Optimize(parsed, st, s)
		res, err := core.Execute(st, plan, core.Options{Threads: 2, Silent: true})
		if err != nil {
			t.Fatal(err)
		}
		counts[q.Name] = res.Count
	}
	// The paper's selective queries must stay tiny, the heavy ones big.
	for _, sel := range []string{"L4", "L5", "L6"} {
		if counts[sel] > 500 {
			t.Errorf("%s should be selective, returned %d rows", sel, counts[sel])
		}
	}
	if counts["L7"] < 1000 {
		t.Errorf("L7 should be a large query, returned %d rows", counts["L7"])
	}
	if counts["L2"] < 200 || counts["L2"] < 5*counts["L5"] {
		t.Errorf("L2 (%d) should be large and dwarf L5 (%d)", counts["L2"], counts["L5"])
	}
}

func TestQueryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, q := range Queries() {
		if seen[q.Name] {
			t.Errorf("duplicate query name %s", q.Name)
		}
		seen[q.Name] = true
		if !strings.HasPrefix(q.Name, "L") {
			t.Errorf("unexpected name %s", q.Name)
		}
	}
	if len(seen) != 10 {
		t.Errorf("%d queries, want 10", len(seen))
	}
}
