package optimizer

import (
	"fmt"
	"strings"
	"testing"

	"parj/internal/rdf"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
)

// fixtureStore builds a store where <rare> has 2 triples and <common> has
// 200, so selectivity-based ordering decisions are unambiguous.
func fixtureStore() (*store.Store, *stats.Stats) {
	var triples []rdf.Triple
	for i := 0; i < 200; i++ {
		triples = append(triples, rdf.Triple{
			S: fmt.Sprintf("<s%d>", i), P: "<common>", O: fmt.Sprintf("<o%d>", i%50),
		})
	}
	triples = append(triples,
		rdf.Triple{S: "<s0>", P: "<rare>", O: "<x>"},
		rdf.Triple{S: "<s1>", P: "<rare>", O: "<x>"},
	)
	st := store.LoadTriples(triples, store.BuildOptions{})
	return st, stats.New(st)
}

func plan(t *testing.T, st *store.Store, s *stats.Stats, src string) *Plan {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Optimize(q, st, s)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return p
}

func TestSelectivePatternFirst(t *testing.T) {
	st, s := fixtureStore()
	p := plan(t, st, s, `SELECT ?a ?b WHERE { ?a <common> ?b . ?a <rare> ?x }`)
	if len(p.Patterns) != 2 {
		t.Fatalf("patterns = %d", len(p.Patterns))
	}
	if !strings.Contains(p.Patterns[0].Source.String(), "rare") {
		t.Errorf("optimizer did not start with the selective pattern:\n%s", p.Explain())
	}
}

func TestConstantObjectUsesOSReplica(t *testing.T) {
	st, s := fixtureStore()
	p := plan(t, st, s, `SELECT ?a WHERE { ?a <rare> <x> }`)
	if !p.Patterns[0].UseOS {
		t.Errorf("constant object should select the O-S replica:\n%s", p.Explain())
	}
	if p.Patterns[0].Key.Kind != Const {
		t.Errorf("key kind = %v, want Const", p.Patterns[0].Key.Kind)
	}
	if p.Patterns[0].KeyConstPos < 0 {
		t.Errorf("KeyConstPos not resolved")
	}
}

func TestConstantSubjectUsesSOReplica(t *testing.T) {
	st, s := fixtureStore()
	p := plan(t, st, s, `SELECT ?b WHERE { <s0> <common> ?b }`)
	if p.Patterns[0].UseOS {
		t.Error("constant subject should select the S-O replica")
	}
}

func TestUnknownConstantYieldsEmptyPlan(t *testing.T) {
	st, s := fixtureStore()
	for _, src := range []string{
		`SELECT ?a WHERE { ?a <nosuch> ?b }`,
		`SELECT ?a WHERE { ?a <common> <nosuchobj> }`,
		`SELECT ?b WHERE { <nosuchsubj> <common> ?b }`,
	} {
		p := plan(t, st, s, src)
		if !p.Empty {
			t.Errorf("%s: plan not Empty", src)
		}
		if len(p.Project) == 0 {
			t.Errorf("%s: empty plan lost projection header", src)
		}
	}
}

func TestKnownConstantAbsentFromTableYieldsEmpty(t *testing.T) {
	st, s := fixtureStore()
	// <x> exists (object of rare) but is not a subject of common.
	p := plan(t, st, s, `SELECT ?b WHERE { <x> <common> ?b }`)
	if !p.Empty {
		t.Error("constant key absent from table should make the plan Empty")
	}
}

func TestAllConstantPatternDropped(t *testing.T) {
	st, s := fixtureStore()
	p := plan(t, st, s, `SELECT ?b WHERE { <s0> <rare> <x> . ?b <common> ?c }`)
	if p.Empty {
		t.Fatal("plan should not be empty: the constant pattern holds")
	}
	if len(p.Patterns) != 1 {
		t.Errorf("verified constant pattern should be dropped, got %d patterns", len(p.Patterns))
	}
	p = plan(t, st, s, `SELECT ?b WHERE { <s0> <rare> <o1> . ?b <common> ?c }`)
	if !p.Empty {
		t.Error("false constant pattern should make the plan Empty")
	}
}

func TestSlotsAndProjection(t *testing.T) {
	st, s := fixtureStore()
	p := plan(t, st, s, `SELECT ?x ?a WHERE { ?a <common> ?b . ?a <rare> ?x }`)
	if p.NumSlots != 3 {
		t.Errorf("NumSlots = %d, want 3", p.NumSlots)
	}
	if len(p.Project) != 2 {
		t.Fatalf("Project = %v", p.Project)
	}
	if p.SlotVars[p.Project[0]] != "x" || p.SlotVars[p.Project[1]] != "a" {
		t.Errorf("projection decodes to %q,%q; want x,a",
			p.SlotVars[p.Project[0]], p.SlotVars[p.Project[1]])
	}
}

func TestPredicateVariableSlotMarked(t *testing.T) {
	st, s := fixtureStore()
	p := plan(t, st, s, `SELECT ?p WHERE { <s0> ?p ?o }`)
	found := false
	for sl, name := range p.SlotVars {
		if name == "p" {
			found = true
			if !p.SlotIsPred[sl] {
				t.Error("predicate variable slot not marked")
			}
		}
	}
	if !found {
		t.Fatal("predicate variable slot missing")
	}
}

func TestNamespaceMixRejected(t *testing.T) {
	st, s := fixtureStore()
	q, err := sparql.Parse(`SELECT ?v WHERE { ?s ?v ?o . ?v <common> ?w }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(q, st, s); err == nil {
		t.Error("namespace mix accepted")
	} else if _, ok := err.(*UnsupportedError); !ok {
		t.Errorf("error type %T, want *UnsupportedError", err)
	}
}

func TestOrderCoversAllPatterns(t *testing.T) {
	st, s := fixtureStore()
	p := plan(t, st, s, `SELECT * WHERE {
		?a <common> ?b . ?b <common> ?c . ?c <common> ?d . ?a <rare> ?x }`)
	if len(p.Patterns) != 4 {
		t.Errorf("patterns = %d, want 4", len(p.Patterns))
	}
	seen := map[string]bool{}
	for _, pp := range p.Patterns {
		seen[pp.Source.String()] = true
	}
	if len(seen) != 4 {
		t.Errorf("duplicate or missing patterns in order: %v", seen)
	}
}

func TestGreedyPathForLargeBGP(t *testing.T) {
	st, s := fixtureStore()
	// 15 patterns exceeds maxDPPatterns and exercises greedyOrder.
	var sb strings.Builder
	sb.WriteString(`SELECT ?v0 WHERE { ?v0 <rare> ?x .`)
	for i := 0; i < 14; i++ {
		fmt.Fprintf(&sb, " ?v%d <common> ?v%d .", i, i+1)
	}
	sb.WriteString(" }")
	p := plan(t, st, s, sb.String())
	if len(p.Patterns) != 15 {
		t.Errorf("patterns = %d, want 15", len(p.Patterns))
	}
}

func TestExplainOutput(t *testing.T) {
	st, s := fixtureStore()
	p := plan(t, st, s, `SELECT ?a WHERE { ?a <rare> <x> . ?a <common> ?b }`)
	exp := p.Explain()
	if !strings.Contains(exp, "O-S") || !strings.Contains(exp, "cost=") {
		t.Errorf("Explain output missing details:\n%s", exp)
	}
	pe := plan(t, st, s, `SELECT ?a WHERE { ?a <nosuch> ?b }`)
	if !strings.Contains(pe.Explain(), "empty") {
		t.Errorf("empty plan explain: %s", pe.Explain())
	}
}

func TestSortedProbeDetected(t *testing.T) {
	st, s := fixtureStore()
	// Subject-subject join: the probe stream for the second pattern is the
	// key order of the first — fully sorted.
	p := plan(t, st, s, `SELECT * WHERE { ?a <common> ?b . ?a <common> ?c }`)
	if len(p.Patterns) != 2 {
		t.Fatalf("patterns = %d", len(p.Patterns))
	}
	if !p.Patterns[1].SortedProbe {
		t.Errorf("subject-subject join probe should be SortedProbe:\n%s", p.Explain())
	}
}

func TestEstimatesPositive(t *testing.T) {
	st, s := fixtureStore()
	p := plan(t, st, s, `SELECT ?a ?b WHERE { ?a <common> ?b . ?a <rare> ?x }`)
	if p.EstCost <= 0 || p.EstCard < 0 {
		t.Errorf("cost=%f card=%f", p.EstCost, p.EstCard)
	}
}
