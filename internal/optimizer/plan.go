// Package optimizer translates a parsed SPARQL BGP into a left-deep
// execution plan for the PARJ engine: it chooses the join order with a
// bottom-up dynamic-programming search (paper §4.3), picks the S-O or O-S
// replica per pattern so that the constant or bound column becomes the key,
// and assigns binding slots.
//
// Following the paper, the optimizer disregards parallelism (the speedup is
// assumed to be a fixed proportion of the centralized cost) and costs each
// join assuming a single probe strategy — binary search, or a scan when the
// probe stream is fully sorted on the join variable; run-time adaptivity
// can only improve on that estimate.
package optimizer

import (
	"fmt"

	"parj/internal/sparql"
	"parj/internal/store"
)

// TermKind classifies how one column of a pattern behaves at execution time.
type TermKind int

const (
	// Const is a dictionary-encoded constant.
	Const TermKind = iota
	// NewVar binds its slot for the first time at this pattern.
	NewVar
	// BoundVar was bound by an earlier pattern (or earlier column of this
	// pattern) and acts as a filter/probe value.
	BoundVar
	// Wildcard appears only in val position when the variable is anonymous
	// — never, in the current planner; reserved.
	Wildcard
)

// TermPlan describes one column (key or value) of a pattern at runtime.
type TermPlan struct {
	Kind  TermKind
	Const uint32 // encoded constant when Kind == Const
	Slot  int    // binding slot when Kind is NewVar or BoundVar
	// Set, when non-nil, widens a constant to a sorted set of alternatives
	// (RDFS class-hierarchy expansion, paper §6): the column matches if it
	// equals any member. Const then holds the original constant.
	Set []uint32
}

// PatternPlan is one step of the left-deep pipeline.
type PatternPlan struct {
	// PredID is the constant predicate; 0 when the predicate is a
	// variable, in which case PredSlot/PredNew describe it.
	PredID   uint32
	PredSlot int  // binding slot of a variable predicate; -1 otherwise
	PredNew  bool // the predicate variable binds at this pattern

	// PredUnion, when non-nil, widens a constant predicate to a sorted set
	// of predicates (RDFS property-hierarchy expansion, paper §6): the
	// pattern matches over the union of those tables, deduplicated.
	PredUnion []uint32

	// UseOS selects the O-S replica: the key column is the object and the
	// value column is the subject.
	UseOS bool

	Key TermPlan
	Val TermPlan

	// KeyConstPos caches the key position for constant keys with constant
	// predicates (-1 = absent from the table, making this pattern yield
	// nothing).
	KeyConstPos int

	// SortedProbe records the optimizer's judgment that probe values for
	// this pattern arrive fully sorted, so a pure scan would be valid. The
	// engine does not need it (adaptivity decides per probe); it is kept
	// for explain output and tests.
	SortedProbe bool

	// Source is the original pattern, for explain output.
	Source sparql.TriplePattern
}

// Plan is an executable left-deep plan.
type Plan struct {
	Patterns []PatternPlan

	// NumSlots is the size of the binding array.
	NumSlots int
	// SlotVars maps slot -> variable name.
	SlotVars []string
	// SlotIsPred marks slots holding predicate-namespace IDs.
	SlotIsPred []bool
	// Project lists the slots of the projected variables in query order.
	Project []int

	Distinct bool
	Limit    int

	// Empty marks plans that provably return no rows (a constant missing
	// from the dictionary or from a table it must appear in).
	Empty bool

	// EstCost and EstCard are the optimizer's estimates for the chosen
	// order, exposed for explain output and tests.
	EstCost float64
	EstCard float64

	// Shape classifies the BGP's variable-sharing graph (shape.go);
	// PreferWCOJ records that the classifier and cost tiebreak chose the
	// worst-case-optimal operator for this plan. Execution follows it under
	// core.Options JoinAuto and can force either operator.
	Shape      Shape
	PreferWCOJ bool
}

// EstResultRows is the optimizer's estimate of the number of result rows —
// the governance layer's budget-estimation hook. Plans expected to produce
// huge results get tighter in-flight governance checks (see
// governance.IntervalForEstimate); serving layers can log or pre-screen on
// it. Zero for provably empty plans.
func (p *Plan) EstResultRows() float64 {
	if p.Empty {
		return 0
	}
	return p.EstCard
}

// EstMemoryBytes estimates the bytes a fully materialized result would
// occupy (projected uint32 payload plus per-row slice overhead), the figure
// a MemoryBudget is compared against when sizing admission policies.
func (p *Plan) EstMemoryBytes() float64 {
	return p.EstResultRows() * float64(len(p.Project)*4+24)
}

// Explain renders a human-readable description of the plan.
func (p *Plan) Explain() string {
	if p.Empty {
		return "empty result (constant not in dictionary)"
	}
	operator := ""
	if p.PreferWCOJ {
		operator = fmt.Sprintf(" join=wcoj shape=%v", p.Shape)
	}
	out := fmt.Sprintf("plan cost=%.1f card=%.1f%s\n", p.EstCost, p.EstCard, operator)
	for i, pp := range p.Patterns {
		replica := "S-O"
		if pp.UseOS {
			replica = "O-S"
		}
		sorted := ""
		if pp.SortedProbe {
			sorted = " sorted-probe"
		}
		out += fmt.Sprintf("  %d: %s  [%s%s]\n", i, pp.Source.String(), replica, sorted)
	}
	return out
}

// Expanded reports whether this pattern requires union evaluation
// (hierarchy-expanded predicate or constant set).
func (pp *PatternPlan) Expanded() bool {
	return pp.PredUnion != nil || pp.Key.Set != nil || pp.Val.Set != nil
}

// Preds returns the predicate IDs this pattern spans: the union set when
// expanded, else the single constant predicate. Empty for variable
// predicates.
func (pp *PatternPlan) Preds() []uint32 {
	if pp.PredUnion != nil {
		return pp.PredUnion
	}
	if pp.PredID != 0 {
		return []uint32{pp.PredID}
	}
	return nil
}

// Expander supplies hierarchy expansions during planning. The rdfs package
// provides the RDFS implementation; nil means no expansion.
type Expander interface {
	// ExpandPredicate returns the sorted set of predicates subsumed by p
	// (including p), or nil when p has no subproperties.
	ExpandPredicate(p uint32) []uint32
	// ExpandPredicateIRI resolves a predicate that is *not* in the
	// predicate dictionary — a parent property that is never asserted
	// directly, only implied by its subproperties. It returns the sorted
	// predicate IDs subsumed by the IRI, or nil.
	ExpandPredicateIRI(iri string) []uint32
	// ExpandObject returns the sorted set of constants subsumed by obj in
	// the object position of predicate p (including obj), or nil. For RDFS
	// this is the subclass closure when p is rdf:type.
	ExpandObject(p uint32, obj uint32) []uint32
}

// UnsupportedError reports a query outside the supported fragment.
type UnsupportedError struct{ Msg string }

func (e *UnsupportedError) Error() string { return "optimizer: unsupported query: " + e.Msg }

// patternInfo is the per-pattern metadata the DP search works with.
type patternInfo struct {
	tp sparql.TriplePattern

	predConst bool
	predID    uint32   // when predConst
	predVar   string   // when !predConst
	predSet   []uint32 // hierarchy expansion of predID (nil = none)

	sConst, oConst bool
	sID, oID       uint32   // encoded constants (0 if var or unknown)
	oSet           []uint32 // hierarchy expansion of oID (nil = none)
	sVar, oVar     string

	baseCard float64 // estimated result size of the pattern alone
	vars     []string
}

// checkNamespaces verifies that no variable is used both in predicate
// position and in subject/object position: the two positions draw IDs from
// different dictionaries, so such a join would have to compare strings,
// which PARJ (and this reproduction) does not support.
func checkNamespaces(q *sparql.Query) error {
	predVars := map[string]bool{}
	resVars := map[string]bool{}
	for _, tp := range q.Patterns {
		if tp.P.IsVar() {
			predVars[tp.P.Var] = true
		}
		if tp.S.IsVar() {
			resVars[tp.S.Var] = true
		}
		if tp.O.IsVar() {
			resVars[tp.O.Var] = true
		}
	}
	for v := range predVars {
		if resVars[v] {
			return &UnsupportedError{Msg: fmt.Sprintf(
				"variable ?%s is used in both predicate and subject/object position", v)}
		}
	}
	return nil
}

// lookupConstants resolves the constants of q against the store's
// dictionaries and applies hierarchy expansions. A missing constant means
// the query provably has no answers; that is signalled by ok == false.
func lookupConstants(q *sparql.Query, st *store.Store, x Expander) (infos []patternInfo, ok bool) {
	infos = make([]patternInfo, len(q.Patterns))
	for i, tp := range q.Patterns {
		in := &infos[i]
		in.tp = tp
		if tp.P.IsVar() {
			in.predVar = tp.P.Var
			in.vars = append(in.vars, tp.P.Var)
		} else {
			in.predConst = true
			in.predID = st.Predicates.Lookup(tp.P.Value)
			if int(in.predID) > st.NumPredicates() {
				// The dictionary is shared across epoch views and append-only:
				// a concurrent insert can register a predicate this view has
				// no table for yet. For this view it provably has no triples.
				in.predID = 0
			}
			if in.predID == 0 {
				// A predicate absent from the dictionary normally proves
				// the query empty — unless a hierarchy implies it through
				// subproperties that do occur in the data.
				set := []uint32(nil)
				if x != nil {
					set = x.ExpandPredicateIRI(tp.P.Value)
				}
				if len(set) == 0 {
					return nil, false
				}
				in.predSet = set
				in.predID = set[0]
			} else if x != nil {
				in.predSet = x.ExpandPredicate(in.predID)
			}
		}
		if tp.S.IsVar() {
			in.sVar = tp.S.Var
			in.vars = appendUnique(in.vars, tp.S.Var)
		} else {
			in.sConst = true
			in.sID = st.Resources.Lookup(tp.S.Value)
			if in.sID == 0 {
				return nil, false
			}
		}
		if tp.O.IsVar() {
			in.oVar = tp.O.Var
			in.vars = appendUnique(in.vars, tp.O.Var)
		} else {
			in.oConst = true
			in.oID = st.Resources.Lookup(tp.O.Value)
			if in.oID == 0 {
				return nil, false
			}
			if x != nil && in.predConst {
				in.oSet = x.ExpandObject(in.predID, in.oID)
			}
		}
	}
	return infos, true
}

func appendUnique(xs []string, x string) []string {
	for _, e := range xs {
		if e == x {
			return xs
		}
	}
	return append(xs, x)
}
