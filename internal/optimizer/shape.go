package optimizer

// BGP shape classification for the join-operator choice (core/wcoj.go).
//
// The left-deep pipeline is the right operator for acyclic BGPs — chains,
// stars, trees — where every intermediate result is bounded by the final
// one. On cyclic shapes (triangles, longer cycles, parallel edges between
// the same variable pair, self-loops) a binary-join pipeline can
// materialize intermediates quadratically larger than the output; those are
// the worst-case-optimal operator's home turf. The classifier looks only at
// the variable-sharing multigraph, so it is a pure function of the query —
// every cluster node replanning the same SPARQL text reaches the same
// verdict, which the deterministic shard-range contract relies on.

import (
	"math"

	"parj/internal/stats"
)

// Shape classifies a BGP's join graph.
type Shape int

const (
	// ShapeAcyclic covers chains, stars and trees — every pattern either
	// touches at most one shared variable region without closing a loop.
	ShapeAcyclic Shape = iota
	// ShapeCyclic marks a cycle in the variable-sharing multigraph:
	// triangles, longer cycles, or two patterns joining the same variable
	// pair (parallel edges).
	ShapeCyclic
	// ShapeSelfJoin marks a pattern repeating a variable (?x p ?x) — a
	// one-edge cycle, classified separately because the operator verifies
	// it with a per-candidate membership check rather than an intersection.
	ShapeSelfJoin
)

func (s Shape) String() string {
	switch s {
	case ShapeAcyclic:
		return "acyclic"
	case ShapeCyclic:
		return "cyclic"
	case ShapeSelfJoin:
		return "self-join"
	default:
		return "shape(?)"
	}
}

// classifyShape computes the shape of the variable-sharing multigraph: one
// node per subject/object variable, one edge per pattern with two variable
// columns. Union-find cycle detection handles parallel edges for free — an
// edge between two already-connected variables closes a cycle. Predicate
// variables join in a different dictionary namespace and never share a node
// with subject/object variables (checkNamespaces), so they are ignored.
func classifyShape(infos []patternInfo) Shape {
	for i := range infos {
		if in := &infos[i]; in.sVar != "" && in.sVar == in.oVar {
			return ShapeSelfJoin
		}
	}
	parent := map[string]string{}
	var find func(string) string
	find = func(v string) string {
		p, ok := parent[v]
		if !ok || p == v {
			parent[v] = v
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	for i := range infos {
		in := &infos[i]
		if in.sVar == "" || in.oVar == "" {
			continue // at most one variable: a node, not an edge
		}
		rs, ro := find(in.sVar), find(in.oVar)
		if rs == ro {
			return ShapeCyclic
		}
		parent[rs] = ro
	}
	return ShapeAcyclic
}

// wcojEligible mirrors core's buildWCOJPlan eligibility: every pattern must
// have a constant, hierarchy-unexpanded predicate and no expanded object
// set, so each compiles to one concrete replica pair.
func wcojEligible(infos []patternInfo) bool {
	for i := range infos {
		in := &infos[i]
		if !in.predConst || in.predSet != nil || in.oSet != nil {
			return false
		}
	}
	return true
}

// wcojCostEstimate is a coarse worst-case-optimal cost model used only as a
// tiebreak against the pipeline's EstCost: the AGM-flavored output bound of
// a cyclic core — the square root of the product of the pattern
// cardinalities (the fractional-cover exponent of a cycle is k/2, giving
// N^1.5 for a triangle of N-tuple relations) — plus a linear term for
// touching each relation once. No log factor for the intersections: the
// pipeline's EstCost is itself a selectivity-based underestimate, so
// burdening only this side would systematically lose the tiebreak on the
// dense cyclic queries the operator exists for. A highly selective constant
// keeps some baseCard near 1, shrinks EstCost far below the AGM bound, and
// correctly leaves such queries on the pipeline.
func wcojCostEstimate(infos []patternInfo, s *stats.Stats) float64 {
	product, sum := 1.0, 0.0
	for i := range infos {
		n := math.Max(infos[i].baseCard, 1)
		product *= n
		sum += n
	}
	return math.Sqrt(product) + sum
}

// classifyPlanShape fills plan.Shape and plan.PreferWCOJ after the join
// order is chosen: cyclic or self-join shapes prefer the worst-case-optimal
// operator when it is eligible and its cost estimate beats the pipeline's.
func classifyPlanShape(plan *Plan, infos []patternInfo, s *stats.Stats) {
	plan.Shape = classifyShape(infos)
	if plan.Shape != ShapeAcyclic && !plan.Empty && wcojEligible(infos) {
		plan.PreferWCOJ = wcojCostEstimate(infos, s) < plan.EstCost
	}
}
