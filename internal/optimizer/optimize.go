package optimizer

import (
	"math"
	"sort"

	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
)

// maxDPPatterns is the largest BGP optimized exhaustively; larger BGPs fall
// back to a greedy ordering built from the same cost model.
const maxDPPatterns = 13

// cartesianPenalty multiplies the cost of extensions that share no variable
// with the patterns joined so far.
const cartesianPenalty = 10.0

// Optimize plans q against st using statistics s.
func Optimize(q *sparql.Query, st *store.Store, s *stats.Stats) (*Plan, error) {
	return OptimizeExpanded(q, st, s, nil)
}

// OptimizeExpanded plans q with hierarchy expansion (paper §6): patterns
// whose predicate has subproperties, or whose rdf:type object has
// subclasses, are compiled to union steps over the expanded sets. Passing
// a nil Expander is equivalent to Optimize.
func OptimizeExpanded(q *sparql.Query, st *store.Store, s *stats.Stats, x Expander) (*Plan, error) {
	if err := checkNamespaces(q); err != nil {
		return nil, err
	}
	plan := &Plan{Distinct: q.Distinct, Limit: q.Limit}
	if q.HasLimit && q.Limit == 0 {
		// LIMIT 0 is valid SPARQL and yields zero rows.
		plan.Empty = true
		finishProjection(plan, q, nil)
		return plan, nil
	}
	infos, ok := lookupConstants(q, st, x)
	if !ok {
		plan.Empty = true
		finishProjection(plan, q, nil)
		return plan, nil
	}
	for i := range infos {
		infos[i].baseCard = baseCardinality(&infos[i], st, s)
	}

	var order []int
	var cost, card float64
	if len(infos) <= maxDPPatterns {
		order, cost, card = dpOrder(infos, st, s)
	} else {
		order, cost, card = greedyOrder(infos, st, s)
	}
	plan.EstCost, plan.EstCard = cost, card

	buildPatternPlans(plan, q, infos, order, st, s)
	classifyPlanShape(plan, infos, s)
	return plan, nil
}

// baseCardinality estimates (exactly where a dictionary lookup suffices)
// the result size of a single pattern. Hierarchy expansions are costed as
// the sum over their members — an upper bound, since the union
// deduplicates.
func baseCardinality(in *patternInfo, st *store.Store, s *stats.Stats) float64 {
	objects := []uint32{in.oID}
	if in.oSet != nil {
		objects = in.oSet
	}
	one := func(p uint32) float64 {
		switch {
		case in.sConst && in.oConst:
			t := st.SO(p)
			pos, ok := t.LookupKey(in.sID)
			if !ok {
				return 0
			}
			run := t.Run(pos)
			for _, o := range objects {
				i := sort.Search(len(run), func(i int) bool { return run[i] >= o })
				if i < len(run) && run[i] == o {
					return 1
				}
			}
			return 0
		case in.sConst:
			return float64(s.CountExact(stats.Column{Pred: p, Subject: true}, in.sID))
		case in.oConst:
			total := 0.0
			for _, o := range objects {
				total += float64(s.CountExact(stats.Column{Pred: p, Subject: false}, o))
			}
			return total
		default:
			return float64(s.Triples(p))
		}
	}
	if in.predConst {
		if in.predSet != nil {
			total := 0.0
			for _, p := range in.predSet {
				total += one(p)
			}
			return total
		}
		return one(in.predID)
	}
	total := 0.0
	for p := 1; p <= st.NumPredicates(); p++ {
		total += one(uint32(p))
	}
	return total
}

// joinState tracks the estimation state of a partial left-deep plan.
type joinState struct {
	order     []int
	cost      float64
	card      float64
	dv        map[string]float64      // distinct-value estimates per bound var
	origin    map[string]stats.Column // base column a var was first bound from
	sortedVar string                  // var the tuple stream is sorted on
	bound     map[string]bool

	// While the partial plan is a pure subject-star (every pattern has the
	// same subject variable, a constant predicate and a fresh object
	// variable), starVar/starPreds track it so cardinalities come from the
	// characteristic-set statistics, which are exact for such stars — the
	// estimation upgrade the paper plans in §4.3.
	starVar   string
	starPreds []uint32
}

func (st1 *joinState) clone() *joinState {
	cp := &joinState{
		order:     append([]int(nil), st1.order...),
		cost:      st1.cost,
		card:      st1.card,
		dv:        make(map[string]float64, len(st1.dv)),
		origin:    make(map[string]stats.Column, len(st1.origin)),
		sortedVar: st1.sortedVar,
		bound:     make(map[string]bool, len(st1.bound)),
		starVar:   st1.starVar,
		starPreds: append([]uint32(nil), st1.starPreds...),
	}
	for k, v := range st1.dv {
		cp.dv[k] = v
	}
	for k, v := range st1.origin {
		cp.origin[k] = v
	}
	for k := range st1.bound {
		cp.bound[k] = true
	}
	return cp
}

// startState initializes the estimation state with pattern i as the outer
// (scanned) relation.
func startState(infos []patternInfo, i int, st *store.Store, s *stats.Stats) *joinState {
	in := &infos[i]
	js := &joinState{
		order:  []int{i},
		cost:   in.baseCard,
		card:   in.baseCard,
		dv:     map[string]float64{},
		origin: map[string]stats.Column{},
		bound:  map[string]bool{},
	}
	for _, v := range in.vars {
		js.bound[v] = true
	}
	if in.predVar != "" {
		js.dv[in.predVar] = float64(st.NumPredicates())
	}
	if !in.predConst {
		// Per-var stats below need a concrete predicate; with a variable
		// predicate fall back to coarse totals.
		if in.sVar != "" {
			js.dv[in.sVar] = in.baseCard
		}
		if in.oVar != "" {
			js.dv[in.oVar] = in.baseCard
		}
		if in.sVar != "" {
			js.sortedVar = in.sVar
		}
		return js
	}
	p := in.predID
	sCol := stats.Column{Pred: p, Subject: true}
	oCol := stats.Column{Pred: p, Subject: false}
	switch {
	case in.sConst && in.oConst:
		// No variables to bind.
	case in.sConst:
		// Scan the run of subjects' objects: stream sorted on the object.
		if in.oVar != "" {
			js.dv[in.oVar] = math.Min(in.baseCard, float64(s.Distinct(oCol)))
			js.origin[in.oVar] = oCol
			js.sortedVar = in.oVar
		}
	case in.oConst:
		if in.sVar != "" {
			js.dv[in.sVar] = math.Min(in.baseCard, float64(s.Distinct(sCol)))
			js.origin[in.sVar] = sCol
			js.sortedVar = in.sVar
		}
	default:
		if in.sVar != "" {
			js.dv[in.sVar] = float64(s.Distinct(sCol))
			js.origin[in.sVar] = sCol
			js.sortedVar = in.sVar
		}
		if in.oVar != "" {
			js.dv[in.oVar] = float64(s.Distinct(oCol))
			js.origin[in.oVar] = oCol
		}
	}
	if isStarMember(in) {
		js.starVar = in.sVar
		js.starPreds = []uint32{in.predID}
	}
	return js
}

// isStarMember reports whether a pattern can participate in exact
// characteristic-set estimation: constant unexpanded predicate, variable
// subject, fresh variable object distinct from the subject.
func isStarMember(in *patternInfo) bool {
	return in.predConst && in.predSet == nil &&
		in.sVar != "" && !in.sConst &&
		in.oVar != "" && !in.oConst && in.oVar != in.sVar
}

// extend returns a new state with pattern j joined onto js, or a cartesian
// penalty if no variable is shared.
func extend(js *joinState, infos []patternInfo, j int, st *store.Store, s *stats.Stats) *joinState {
	in := &infos[j]
	next := js.clone()
	next.order = append(next.order, j)

	shared := false
	for _, v := range in.vars {
		if js.bound[v] {
			shared = true
			break
		}
	}

	if !in.predConst {
		// Variable-predicate probe: a union over all predicates. Cost it
		// coarsely as a scan of the pattern's base cardinality per input
		// tuple fraction.
		out := js.card * math.Max(1, in.baseCard/math.Max(1, js.card))
		if !shared {
			out = js.card * in.baseCard
		}
		next.cost += js.card*math.Log2(2+in.baseCard) + out
		if !shared {
			next.cost *= cartesianPenalty
		}
		next.card = out
		for _, v := range in.vars {
			if !next.bound[v] {
				next.bound[v] = true
				next.dv[v] = out
			}
		}
		return next
	}

	p := in.predID
	sCol := stats.Column{Pred: p, Subject: true}
	oCol := stats.Column{Pred: p, Subject: false}
	sBound := in.sVar != "" && js.bound[in.sVar]
	oBound := in.oVar != "" && js.bound[in.oVar]

	// Replica choice mirrors buildPatternPlans: constants first, then
	// bound variables (more-distinct column preferred), subject default.
	var keyCol, valCol stats.Column
	var keyVar, valVar string
	var keyConst, valConst bool
	var valConstID uint32
	switch {
	case in.sConst:
		keyCol, valCol = sCol, oCol
		keyConst = true
		valVar = in.oVar
		if in.oConst {
			valConst, valConstID = true, in.oID
		}
	case in.oConst:
		keyCol, valCol = oCol, sCol
		keyConst = true
		valVar = in.sVar
	case sBound && oBound:
		if s.Distinct(sCol) >= s.Distinct(oCol) {
			keyCol, valCol = sCol, oCol
			keyVar, valVar = in.sVar, in.oVar
		} else {
			keyCol, valCol = oCol, sCol
			keyVar, valVar = in.oVar, in.sVar
		}
	case sBound:
		keyCol, valCol = sCol, oCol
		keyVar, valVar = in.sVar, in.oVar
	case oBound:
		keyCol, valCol = oCol, sCol
		keyVar, valVar = in.oVar, in.sVar
	default:
		keyCol, valCol = sCol, oCol
		keyVar, valVar = in.sVar, in.oVar
	}

	nKeys := float64(s.Distinct(keyCol))
	nTriples := float64(s.Triples(p))

	var out float64
	var probeCost float64
	switch {
	case keyConst || !js.bound[keyVar] || keyVar == "":
		// No probe on the key: this is a cartesian-style extension with a
		// (possibly constant-restricted) base pattern.
		out = js.card * math.Max(in.baseCard, 0)
		probeCost = js.card + in.baseCard
	default:
		// Probe on bound key variable.
		if org, ok := js.origin[keyVar]; ok {
			j := s.PairCardinality(org, keyCol)
			nOrg := float64(s.Triples(org.Pred))
			if nOrg > 0 {
				out = js.card * j / nOrg
			}
		} else {
			dvk := math.Max(js.dv[keyVar], 1)
			out = js.card * nTriples / math.Max(dvk, nKeys)
		}
		logCost := math.Log2(2 + nKeys)
		if keyVar == js.sortedVar {
			probeCost = math.Min(js.card*logCost, nKeys+js.card)
		} else {
			probeCost = js.card * logCost
		}
	}
	// Value-side restrictions.
	if valConst && nTriples > 0 {
		out *= float64(s.CountExact(valCol, valConstID)) / nTriples
	} else if valVar != "" && js.bound[valVar] && valVar != keyVar {
		out /= math.Max(1, math.Max(js.dv[valVar], float64(s.Distinct(valCol))))
	} else if valVar == keyVar && valVar != "" {
		// Same variable on both columns (?x p ?x).
		out /= math.Max(1, nKeys)
	}
	if out < 0 {
		out = 0
	}

	// A star extension (same subject variable, fresh object) gets the
	// exact characteristic-set cardinality instead of the estimate.
	if js.starVar != "" && isStarMember(in) && in.sVar == js.starVar && !js.bound[in.oVar] {
		next.starPreds = append(next.starPreds[:len(js.starPreds):len(js.starPreds)], in.predID)
		_, rows := s.CharSets().EstimateStar(next.starPreds)
		out = rows
	} else {
		next.starVar = ""
		next.starPreds = nil
	}

	next.cost += probeCost + out
	if !shared {
		next.cost += js.card * in.baseCard * cartesianPenalty
		out = js.card * math.Max(in.baseCard, 1)
	}
	next.card = out

	// Update bindings and distinct estimates.
	if keyVar != "" {
		if next.bound[keyVar] {
			next.dv[keyVar] = math.Min(math.Max(js.dv[keyVar], 1), nKeys)
		} else {
			next.bound[keyVar] = true
			next.dv[keyVar] = math.Min(out, nKeys)
			next.origin[keyVar] = keyCol
		}
	}
	if valVar != "" && valVar != keyVar {
		if !next.bound[valVar] {
			next.bound[valVar] = true
			next.dv[valVar] = math.Min(out, float64(s.Distinct(valCol)))
			next.origin[valVar] = valCol
		}
	}
	return next
}

// dpOrder runs the bottom-up dynamic program over pattern subsets and
// returns the cheapest left-deep order.
func dpOrder(infos []patternInfo, st *store.Store, s *stats.Stats) ([]int, float64, float64) {
	n := len(infos)
	best := make(map[int]*joinState, 1<<n)
	for i := 0; i < n; i++ {
		st1 := startState(infos, i, st, s)
		mask := 1 << i
		if cur, ok := best[mask]; !ok || st1.cost < cur.cost {
			best[mask] = st1
		}
	}
	full := (1 << n) - 1
	// Iterate masks in increasing popcount order by plain numeric order:
	// any mask's subsets are numerically smaller, so a single ascending
	// sweep sees every predecessor first.
	for mask := 1; mask <= full; mask++ {
		cur, ok := best[mask]
		if !ok {
			continue
		}
		// Prefer connected extensions; fall back to cartesian ones only if
		// none exists (the cost penalty already disfavors them, this just
		// prunes the search).
		var connected []int
		var others []int
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			sharesVar := false
			for _, v := range infos[j].vars {
				if cur.bound[v] {
					sharesVar = true
					break
				}
			}
			if sharesVar {
				connected = append(connected, j)
			} else {
				others = append(others, j)
			}
		}
		candidates := connected
		if len(candidates) == 0 {
			candidates = others
		}
		for _, j := range candidates {
			nm := mask | 1<<j
			ns := extend(cur, infos, j, st, s)
			if prev, ok := best[nm]; !ok || ns.cost < prev.cost {
				best[nm] = ns
			}
		}
	}
	final := best[full]
	if final == nil {
		// Unreachable with the connected-first strategy, but fall back to
		// textual order rather than crash.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order, math.Inf(1), math.Inf(1)
	}
	return final.order, final.cost, final.card
}

// greedyOrder builds an order for large BGPs: cheapest base pattern first,
// then repeatedly the connected extension with the lowest resulting cost.
func greedyOrder(infos []patternInfo, st *store.Store, s *stats.Stats) ([]int, float64, float64) {
	n := len(infos)
	used := make([]bool, n)
	start := 0
	for i := 1; i < n; i++ {
		if infos[i].baseCard < infos[start].baseCard {
			start = i
		}
	}
	cur := startState(infos, start, st, s)
	used[start] = true
	for len(cur.order) < n {
		bestJ := -1
		var bestState *joinState
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			cand := extend(cur, infos, j, st, s)
			if bestState == nil || cand.cost < bestState.cost {
				bestState, bestJ = cand, j
			}
		}
		cur = bestState
		used[bestJ] = true
	}
	return cur.order, cur.cost, cur.card
}

// buildPatternPlans converts the chosen order into executable PatternPlans,
// assigning binding slots and replica choices.
func buildPatternPlans(plan *Plan, q *sparql.Query, infos []patternInfo, order []int, st *store.Store, s *stats.Stats) {
	slotOf := map[string]int{}
	slotIsPred := map[int]bool{}
	newSlot := func(v string, isPred bool) int {
		sl, ok := slotOf[v]
		if !ok {
			sl = len(slotOf)
			slotOf[v] = sl
			slotIsPred[sl] = isPred
		}
		return sl
	}
	sortedVar := ""
	for step, idx := range order {
		in := &infos[idx]
		pp := PatternPlan{PredSlot: -1, KeyConstPos: -1, Source: in.tp}

		if in.predConst {
			pp.PredID = in.predID
			pp.PredUnion = in.predSet
		} else {
			if _, ok := slotOf[in.predVar]; !ok {
				pp.PredNew = true
			}
			pp.PredSlot = newSlot(in.predVar, true)
		}

		sBound := in.sVar != "" && contains(slotOf, in.sVar)
		oBound := in.oVar != "" && contains(slotOf, in.oVar)

		// Replica choice: constants first, then bound variables (prefer
		// the more selective — more distinct keys — column), subject
		// default. With a constant object the O-S replica is chosen, as in
		// Example 3.2 of the paper.
		useOS := false
		switch {
		case in.sConst:
			useOS = false
		case in.oConst:
			useOS = true
		case sBound && oBound:
			if in.predConst {
				useOS = s.Distinct(stats.Column{Pred: in.predID, Subject: false}) >
					s.Distinct(stats.Column{Pred: in.predID, Subject: true})
			}
		case sBound:
			useOS = false
		case oBound:
			useOS = true
		default:
			// Neither bound (first pattern or cartesian step): prefer the
			// replica whose key is the variable the *next* pattern joins
			// on, so the probe stream arrives sorted (paper §3, Ex. 3.1).
			if step+1 < len(order) && in.sVar != "" && in.oVar != "" {
				nextVars := infos[order[step+1]].vars
				for _, v := range nextVars {
					if v == in.sVar {
						useOS = false
						break
					}
					if v == in.oVar {
						useOS = true
						break
					}
				}
			}
		}
		pp.UseOS = useOS

		keyIsSubject := !useOS
		keyTerm, valTerm := termOf(in, keyIsSubject), termOf(in, !keyIsSubject)

		pp.Key = makeTermPlan(keyTerm, in, keyIsSubject, slotOf, newSlot)
		pp.Val = makeTermPlan(valTerm, in, !keyIsSubject, slotOf, newSlot)

		// Resolve constant keys against the table now (single-table,
		// single-constant patterns only; expanded patterns resolve their
		// union members at run time).
		if pp.Key.Kind == Const && in.predConst && !pp.Expanded() {
			t := tableOf(st, pp.PredID, useOS)
			pos, ok := t.LookupKey(pp.Key.Const)
			if !ok {
				plan.Empty = true
			} else {
				pp.KeyConstPos = pos
			}
		}
		// A fully constant, non-expanded pattern with a constant predicate
		// is a plan-time membership test: verified here and dropped.
		if in.predConst && pp.Key.Kind == Const && pp.Val.Kind == Const && !pp.Expanded() {
			if !plan.Empty && pp.KeyConstPos >= 0 {
				t := tableOf(st, pp.PredID, useOS)
				run := t.Run(pp.KeyConstPos)
				i := sort.Search(len(run), func(i int) bool { return run[i] >= pp.Val.Const })
				if !(i < len(run) && run[i] == pp.Val.Const) {
					plan.Empty = true
				}
			}
			continue // tautology (or Empty): no runtime step needed
		}

		// Sorted-probe bookkeeping for explain output.
		if step == 0 {
			switch {
			case pp.Key.Kind == Const && pp.Val.Kind == NewVar:
				sortedVar = varName(in, !keyIsSubject)
			case pp.Key.Kind == NewVar:
				sortedVar = varName(in, keyIsSubject)
			}
		} else if pp.Key.Kind == BoundVar && varName(in, keyIsSubject) == sortedVar {
			pp.SortedProbe = true
		}

		plan.Patterns = append(plan.Patterns, pp)
	}
	finishProjection(plan, q, slotOf)
	plan.NumSlots = len(slotOf)
	plan.SlotVars = make([]string, len(slotOf))
	plan.SlotIsPred = make([]bool, len(slotOf))
	for v, sl := range slotOf {
		plan.SlotVars[sl] = v
		plan.SlotIsPred[sl] = slotIsPred[sl]
	}
}

// finishProjection fills plan.Project. For Empty plans slotOf may be nil:
// slots are synthesized from the query so result headers stay correct.
func finishProjection(plan *Plan, q *sparql.Query, slotOf map[string]int) {
	if slotOf == nil {
		slotOf = map[string]int{}
		for _, v := range q.Vars() {
			slotOf[v] = len(slotOf)
		}
		plan.NumSlots = len(slotOf)
		plan.SlotVars = make([]string, len(slotOf))
		plan.SlotIsPred = make([]bool, len(slotOf))
		for v, sl := range slotOf {
			plan.SlotVars[sl] = v
		}
		// Predicate-position variables still need their flag for correct
		// decoding of (empty) headers; recompute from the query.
		for _, tp := range q.Patterns {
			if tp.P.IsVar() {
				plan.SlotIsPred[slotOf[tp.P.Var]] = true
			}
		}
	}
	for _, v := range q.Projection() {
		plan.Project = append(plan.Project, slotOf[v])
	}
}

func contains(m map[string]int, k string) bool {
	_, ok := m[k]
	return ok
}

func termOf(in *patternInfo, subject bool) sparql.Term {
	if subject {
		return in.tp.S
	}
	return in.tp.O
}

func varName(in *patternInfo, subject bool) string {
	if subject {
		return in.sVar
	}
	return in.oVar
}

func makeTermPlan(t sparql.Term, in *patternInfo, subject bool, slotOf map[string]int, newSlot func(string, bool) int) TermPlan {
	if !t.IsVar() {
		if subject {
			return TermPlan{Kind: Const, Const: in.sID}
		}
		return TermPlan{Kind: Const, Const: in.oID, Set: in.oSet}
	}
	if sl, ok := slotOf[t.Var]; ok {
		return TermPlan{Kind: BoundVar, Slot: sl}
	}
	return TermPlan{Kind: NewVar, Slot: newSlot(t.Var, false)}
}

func tableOf(st *store.Store, pred uint32, useOS bool) *store.Table {
	if useOS {
		return st.OS(pred)
	}
	return st.SO(pred)
}
