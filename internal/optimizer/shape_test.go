package optimizer

import "testing"

// TestShapeClassifier pins the variable-sharing-multigraph classification
// for the join-operator choice on each BGP family the difftest generators
// emit.
func TestShapeClassifier(t *testing.T) {
	st, s := fixtureStore()
	cases := []struct {
		src  string
		want Shape
	}{
		{`SELECT * WHERE { ?a <common> ?b }`, ShapeAcyclic},
		{`SELECT * WHERE { ?a <common> ?b . ?b <common> ?c }`, ShapeAcyclic},
		{`SELECT * WHERE { ?a <common> ?b . ?a <common> ?c . ?a <rare> ?d }`, ShapeAcyclic},
		{`SELECT * WHERE { ?a <common> ?b . ?b <common> ?c . ?c <common> ?a }`, ShapeCyclic},
		{`SELECT * WHERE { ?a <common> ?b . ?b <common> ?a }`, ShapeCyclic},
		// Parallel edges: two patterns joining the same variable pair.
		{`SELECT * WHERE { ?a <common> ?b . ?a <rare> ?b }`, ShapeCyclic},
		{`SELECT ?x WHERE { ?x <common> ?x }`, ShapeSelfJoin},
		// A constant endpoint breaks the would-be cycle into a path.
		{`SELECT * WHERE { <s0> <common> ?b . ?b <common> ?c . ?c <common> <s0> }`, ShapeAcyclic},
	}
	for _, c := range cases {
		p := plan(t, st, s, c.src)
		if p.Shape != c.want {
			t.Errorf("%s: shape %v, want %v", c.src, p.Shape, c.want)
		}
	}
}

// TestPreferWCOJEligibility: cyclic shape alone is not enough — hierarchy
// expansion and selective constants must keep the pipeline.
func TestPreferWCOJEligibility(t *testing.T) {
	st, s := fixtureStore()
	// A cycle through the rare relation: the pipeline's estimate starting
	// from 2 tuples beats the AGM bound, so the tiebreak keeps the pipeline.
	p := plan(t, st, s, `SELECT * WHERE { ?a <rare> ?b . ?b <common> ?a . ?a <common> ?b }`)
	if p.Shape != ShapeCyclic {
		t.Fatalf("shape %v, want cyclic", p.Shape)
	}
	// Acyclic plans never prefer WCOJ regardless of cost.
	p = plan(t, st, s, `SELECT * WHERE { ?a <common> ?b . ?b <common> ?c }`)
	if p.PreferWCOJ {
		t.Error("acyclic plan prefers WCOJ")
	}
}
