// Package rdfs implements the paper's §6 future-work extension: SPARQL
// answering with respect to RDFS class and property hierarchies *without
// materializing* the implied triples. Instead of forward chaining (which
// can blow up an in-memory store) or query rewriting into unions of BGPs
// (which multiplies plans), the hierarchy closure is attached to the
// execution plan so that the pipelined join "unions tables" on the fly:
//
//   - a pattern `?x rdf:type :C` matches instances of C or any subclass;
//   - a pattern `?x :p ?y` with a property that has subproperties scans
//     the union of the subproperty tables.
//
// The closures are computed once per store from the rdfs:subClassOf and
// rdfs:subPropertyOf triples present in the data.
package rdfs

import (
	"parj/internal/store"
)

// Standard RDFS vocabulary IRIs (in N-Triples surface syntax).
const (
	SubClassOf    = "<http://www.w3.org/2000/01/rdf-schema#subClassOf>"
	SubPropertyOf = "<http://www.w3.org/2000/01/rdf-schema#subPropertyOf>"
	RDFType       = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
)

// Hierarchy holds the reflexive-transitive closures of the class and
// property hierarchies of one store, keyed by dictionary IDs. Immutable
// after New; safe for concurrent use.
type Hierarchy struct {
	// subClasses[c] lists c and every (transitive) subclass of c, sorted.
	subClasses map[uint32][]uint32
	// subProperties[p] lists p and every transitive subproperty, sorted.
	subProperties map[uint32][]uint32
	// subPropertiesByIRI covers parent properties that never occur as
	// predicates themselves (no predicate-dictionary ID): parent IRI →
	// sorted predicate IDs of the asserted subproperties.
	subPropertiesByIRI map[string][]uint32
	typePred           uint32
}

// New computes the hierarchy closures from the store's rdfs:subClassOf and
// rdfs:subPropertyOf triples. Vocabulary IRIs can be overridden for data
// using a different namespace (pass "" to use the standard ones).
func New(st *store.Store, subClassIRI, subPropertyIRI, typeIRI string) *Hierarchy {
	if subClassIRI == "" {
		subClassIRI = SubClassOf
	}
	if subPropertyIRI == "" {
		subPropertyIRI = SubPropertyOf
	}
	if typeIRI == "" {
		typeIRI = RDFType
	}
	h := &Hierarchy{
		subClasses:         map[uint32][]uint32{},
		subProperties:      map[uint32][]uint32{},
		subPropertiesByIRI: map[string][]uint32{},
		typePred:           st.Predicates.Lookup(typeIRI),
	}
	// Class hierarchy: edges child -> parent live in the subClassOf table.
	if p := st.Predicates.Lookup(subClassIRI); p != 0 {
		h.subClasses = closureFromTable(st.OS(p))
	}
	// Property hierarchy: subPropertyOf relates *property IRIs* in the
	// resource dictionary; the closure must be translated to predicate
	// dictionary IDs to be useful during execution.
	if p := st.Predicates.Lookup(subPropertyIRI); p != 0 {
		resClosure := closureFromTable(st.OS(p))
		for parentRes, subsRes := range resClosure {
			parentIRI := st.Resources.Decode(parentRes)
			parentPred := st.Predicates.Lookup(parentIRI)
			var subs []uint32
			for _, subRes := range subsRes {
				if sp := st.Predicates.Lookup(st.Resources.Decode(subRes)); sp != 0 {
					subs = appendSorted(subs, sp)
				}
			}
			switch {
			case parentPred != 0 && len(subs) > 1:
				h.subProperties[parentPred] = subs
			case parentPred == 0 && len(subs) > 0:
				// Parent never asserted directly: queries can still name
				// it; they resolve through the IRI-keyed map.
				h.subPropertiesByIRI[parentIRI] = subs
			}
		}
	}
	return h
}

// closureFromTable computes, for every object of the relation (a parent),
// the sorted reflexive-transitive set of subjects reaching it (its
// descendants), from an O-S table whose runs list direct children.
func closureFromTable(os *store.Table) map[uint32][]uint32 {
	children := map[uint32][]uint32{}
	nodes := map[uint32]bool{}
	for i, parent := range os.Keys {
		children[parent] = os.Run(i)
		nodes[parent] = true
		for _, c := range os.Run(i) {
			nodes[c] = true
		}
	}
	out := make(map[uint32][]uint32, len(nodes))
	for n := range nodes {
		// DFS with a visited set; hierarchies may contain cycles (then all
		// members of the cycle are equivalent).
		visited := map[uint32]bool{n: true}
		stack := []uint32{n}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range children[cur] {
				if !visited[c] {
					visited[c] = true
					stack = append(stack, c)
				}
			}
		}
		set := make([]uint32, 0, len(visited))
		for v := range visited {
			set = appendSorted(set, v)
		}
		if len(set) > 1 {
			out[n] = set
		}
	}
	return out
}

// appendSorted inserts v into sorted slice xs, skipping duplicates.
func appendSorted(xs []uint32, v uint32) []uint32 {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(xs) && xs[lo] == v {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[lo+1:], xs[lo:])
	xs[lo] = v
	return xs
}

// SubClasses returns c plus all its subclasses, or nil when c has none
// (meaning: no expansion needed).
func (h *Hierarchy) SubClasses(c uint32) []uint32 { return h.subClasses[c] }

// SubProperties returns p plus all its subproperties (predicate IDs), or
// nil when p has none.
func (h *Hierarchy) SubProperties(p uint32) []uint32 { return h.subProperties[p] }

// TypePredicate returns the predicate ID of rdf:type in the store (0 when
// the data has no type triples).
func (h *Hierarchy) TypePredicate() uint32 { return h.typePred }

// HasExpansions reports whether any hierarchy with more than one member
// exists — if not, hierarchy-aware evaluation equals plain evaluation.
func (h *Hierarchy) HasExpansions() bool {
	return len(h.subClasses) > 0 || len(h.subProperties) > 0 || len(h.subPropertiesByIRI) > 0
}
