package rdfs

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parj/internal/core"
	"parj/internal/optimizer"
	"parj/internal/rdf"
	"parj/internal/reference"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
)

// fixture: a small ontology-backed graph.
//
//	Student ⊑ Person, GradStudent ⊑ Student
//	hasAdvisor ⊑ knows, hasFriend ⊑ knows
func fixtureTriples() []rdf.Triple {
	var ts []rdf.Triple
	add := func(s, p, o string) { ts = append(ts, rdf.Triple{S: s, P: p, O: o}) }
	add("<Student>", SubClassOf, "<Person>")
	add("<GradStudent>", SubClassOf, "<Student>")
	add("<hasAdvisor>", SubPropertyOf, "<knows>")
	add("<hasFriend>", SubPropertyOf, "<knows>")
	add("<alice>", RDFType, "<GradStudent>")
	add("<bob>", RDFType, "<Student>")
	add("<carol>", RDFType, "<Person>")
	add("<dave>", RDFType, "<Professor>")
	add("<alice>", "<hasAdvisor>", "<dave>")
	add("<bob>", "<hasFriend>", "<alice>")
	add("<carol>", "<knows>", "<bob>")
	add("<alice>", "<memberOf>", "<cs>")
	add("<bob>", "<memberOf>", "<cs>")
	return ts
}

type fixture struct {
	triples []rdf.Triple
	st      *store.Store
	stats   *stats.Stats
	h       *Hierarchy
}

func newFixture(t testing.TB, triples []rdf.Triple) *fixture {
	t.Helper()
	seen := map[rdf.Triple]bool{}
	var dedup []rdf.Triple
	for _, tr := range triples {
		if !seen[tr] {
			seen[tr] = true
			dedup = append(dedup, tr)
		}
	}
	st := store.LoadTriples(dedup, store.BuildOptions{BuildPosIndex: true})
	return &fixture{
		triples: dedup,
		st:      st,
		stats:   stats.New(st),
		h:       New(st, "", "", ""),
	}
}

// run evaluates src with hierarchy expansion on the fixture.
func (f *fixture) run(t testing.TB, src string, threads int) [][]string {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := optimizer.OptimizeExpanded(q, f.st, f.stats, f.h)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	res, err := core.Execute(f.st, plan, core.Options{Threads: threads})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return reference.Canon(res.StringRows(f.st))
}

// oracle evaluates src on the forward-chained materialization.
func (f *fixture) oracle(t testing.TB, src string) [][]string {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return reference.Canon(reference.Evaluate(q, ForwardChain(f.triples, "", "", "")))
}

func rowsEqual(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestClosures(t *testing.T) {
	f := newFixture(t, fixtureTriples())
	person := f.st.Resources.Lookup("<Person>")
	subs := f.h.SubClasses(person)
	if len(subs) != 3 {
		t.Errorf("SubClasses(Person) = %d entries, want 3 (Person, Student, GradStudent)", len(subs))
	}
	knows := f.st.Predicates.Lookup("<knows>")
	props := f.h.SubProperties(knows)
	if len(props) != 3 {
		t.Errorf("SubProperties(knows) = %d entries, want 3", len(props))
	}
	if !f.h.HasExpansions() {
		t.Error("HasExpansions = false")
	}
	// A leaf has no expansion.
	grad := f.st.Resources.Lookup("<GradStudent>")
	if f.h.SubClasses(grad) != nil {
		t.Error("leaf class has an expansion")
	}
}

var entailmentQueries = []string{
	// Class hierarchy: all persons includes students and grad students.
	`SELECT ?x WHERE { ?x ` + RDFType + ` <Person> }`,
	`SELECT ?x WHERE { ?x ` + RDFType + ` <Student> }`,
	// Property hierarchy: knows includes advisor and friend edges.
	`SELECT ?x ?y WHERE { ?x <knows> ?y }`,
	// Join mixing both expansions.
	`SELECT ?x ?y WHERE { ?x ` + RDFType + ` <Person> . ?x <knows> ?y }`,
	// Expanded pattern not first.
	`SELECT ?x WHERE { ?x <memberOf> <cs> . ?x ` + RDFType + ` <Person> }`,
	// Constant subject with expanded type object.
	`SELECT ?y WHERE { <alice> ` + RDFType + ` <Person> . <alice> <knows> ?y }`,
	// Bound value probe through an expanded property.
	`SELECT ?x WHERE { ?x <knows> <alice> }`,
	// No expansion anywhere: must equal plain evaluation.
	`SELECT ?x WHERE { ?x <memberOf> ?d }`,
}

func TestEntailmentMatchesForwardChaining(t *testing.T) {
	f := newFixture(t, fixtureTriples())
	for _, src := range entailmentQueries {
		want := f.oracle(t, src)
		for _, threads := range []int{1, 4} {
			got := f.run(t, src, threads)
			if !rowsEqual(got, want) {
				t.Errorf("%s (threads=%d):\ngot  %v\nwant %v", src, threads, got, want)
			}
		}
	}
}

func TestNoDuplicatesFromOverlappingHierarchies(t *testing.T) {
	// alice is typed GradStudent only; the expanded Person query must
	// return her exactly once even though GradStudent ⊑ Student ⊑ Person
	// gives multiple derivation paths once bob's type is also present.
	ts := append(fixtureTriples(),
		rdf.Triple{S: "<alice>", P: RDFType, O: "<Student>"}, // redundant assertion
		rdf.Triple{S: "<alice>", P: "<hasFriend>", O: "<dave>"}, // duplicate knows-edge via 2 props
	)
	f := newFixture(t, ts)
	got := f.run(t, `SELECT ?x WHERE { ?x `+RDFType+` <Person> }`, 2)
	counts := map[string]int{}
	for _, row := range got {
		counts[row[0]]++
	}
	if counts["<alice>"] != 1 {
		t.Errorf("alice returned %d times, want 1", counts["<alice>"])
	}
	got = f.run(t, `SELECT ?x ?y WHERE { ?x <knows> ?y }`, 2)
	pair := 0
	for _, row := range got {
		if row[0] == "<alice>" && row[1] == "<dave>" {
			pair++
		}
	}
	if pair != 1 {
		t.Errorf("(alice,dave) returned %d times, want 1 (advisor + friend edges)", pair)
	}
}

func TestWithoutExpanderNoEntailment(t *testing.T) {
	f := newFixture(t, fixtureTriples())
	q, _ := sparql.Parse(`SELECT ?x WHERE { ?x ` + RDFType + ` <Person> }`)
	plan, err := optimizer.Optimize(q, f.st, f.stats)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Execute(f.st, plan, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 { // only carol is directly typed Person
		t.Errorf("plain evaluation found %d persons, want 1", res.Count)
	}
}

func TestForwardChainFixpointFreeCases(t *testing.T) {
	out := ForwardChain(fixtureTriples(), "", "", "")
	want := map[rdf.Triple]bool{
		{S: "<alice>", P: RDFType, O: "<Student>"}:  true,
		{S: "<alice>", P: RDFType, O: "<Person>"}:   true,
		{S: "<alice>", P: "<knows>", O: "<dave>"}:   true,
		{S: "<carol>", P: "<knows>", O: "<bob>"}:    true,
	}
	have := map[rdf.Triple]bool{}
	for _, tr := range out {
		have[tr] = true
	}
	for tr := range want {
		if !have[tr] {
			t.Errorf("missing inferred triple %v", tr)
		}
	}
}

func TestCyclicHierarchy(t *testing.T) {
	// A ⊑ B ⊑ A: both classes are equivalent; closure must terminate and
	// queries over either must see instances of both.
	var ts []rdf.Triple
	ts = append(ts,
		rdf.Triple{S: "<A>", P: SubClassOf, O: "<B>"},
		rdf.Triple{S: "<B>", P: SubClassOf, O: "<A>"},
		rdf.Triple{S: "<x>", P: RDFType, O: "<A>"},
		rdf.Triple{S: "<y>", P: RDFType, O: "<B>"},
	)
	f := newFixture(t, ts)
	got := f.run(t, `SELECT ?v WHERE { ?v `+RDFType+` <A> }`, 1)
	if len(got) != 2 {
		t.Errorf("cyclic hierarchy: %d instances of A, want 2", len(got))
	}
}

// Property: hierarchy-expanded evaluation equals plain evaluation on the
// forward-chained materialization, for random graphs, hierarchies and
// queries.
func TestQuickEntailmentEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ts []rdf.Triple
		// Random class DAG over 6 classes and property DAG over 4 props.
		for i := 1; i < 6; i++ {
			if rng.Intn(2) == 0 {
				ts = append(ts, rdf.Triple{
					S: fmt.Sprintf("<C%d>", i), P: SubClassOf, O: fmt.Sprintf("<C%d>", rng.Intn(i)),
				})
			}
		}
		for i := 1; i < 4; i++ {
			if rng.Intn(2) == 0 {
				ts = append(ts, rdf.Triple{
					S: fmt.Sprintf("<p%d>", i), P: SubPropertyOf, O: fmt.Sprintf("<p%d>", rng.Intn(i)),
				})
			}
		}
		for i := 0; i < 60; i++ {
			switch rng.Intn(3) {
			case 0:
				ts = append(ts, rdf.Triple{
					S: fmt.Sprintf("<r%d>", rng.Intn(12)),
					P: RDFType,
					O: fmt.Sprintf("<C%d>", rng.Intn(6)),
				})
			default:
				ts = append(ts, rdf.Triple{
					S: fmt.Sprintf("<r%d>", rng.Intn(12)),
					P: fmt.Sprintf("<p%d>", rng.Intn(4)),
					O: fmt.Sprintf("<r%d>", rng.Intn(12)),
				})
			}
		}
		fix := newFixture(t, ts)
		queries := []string{
			fmt.Sprintf(`SELECT ?x WHERE { ?x %s <C%d> }`, RDFType, rng.Intn(6)),
			fmt.Sprintf(`SELECT ?x ?y WHERE { ?x <p%d> ?y }`, rng.Intn(4)),
			fmt.Sprintf(`SELECT ?x ?y WHERE { ?x %s <C%d> . ?x <p%d> ?y }`, RDFType, rng.Intn(6), rng.Intn(4)),
			fmt.Sprintf(`SELECT ?x WHERE { ?x <p%d> <r%d> }`, rng.Intn(4), rng.Intn(12)),
		}
		for _, src := range queries {
			want := fix.oracle(t, src)
			got := fix.run(t, src, 1+rng.Intn(4))
			if !rowsEqual(got, want) {
				t.Logf("seed=%d query=%s: got %d rows want %d", seed, src, len(got), len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDerivedOnlyParentProperty(t *testing.T) {
	// <mentors> never occurs as a predicate — only its subproperties do.
	// Queries naming it must still answer through the union.
	var ts []rdf.Triple
	add := func(s, p, o string) { ts = append(ts, rdf.Triple{S: s, P: p, O: o}) }
	add("<advisorOf>", SubPropertyOf, "<mentors>")
	add("<tutorOf>", SubPropertyOf, "<mentors>")
	add("<cat>", "<advisorOf>", "<ben>")
	add("<ben>", "<tutorOf>", "<ann>")
	f := newFixture(t, ts)

	src := `SELECT ?m ?s WHERE { ?m <mentors> ?s }`
	want := f.oracle(t, src)
	got := f.run(t, src, 2)
	if !rowsEqual(got, want) {
		t.Errorf("derived-only parent: got %v want %v", got, want)
	}
	if len(got) != 2 {
		t.Errorf("got %d rows, want 2", len(got))
	}
	// Without entailment the same query is provably empty.
	q, _ := sparql.Parse(src)
	plan, err := optimizer.Optimize(q, f.st, f.stats)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Empty {
		t.Error("plain plan for unknown predicate should be Empty")
	}
}
