package rdfs

import "parj/internal/rdf"

// ExpandPredicate implements optimizer.Expander: a predicate with
// subproperties widens to its closure.
func (h *Hierarchy) ExpandPredicate(p uint32) []uint32 {
	return h.subProperties[p]
}

// ExpandPredicateIRI implements optimizer.Expander: it resolves a parent
// property that only exists through its subproperties.
func (h *Hierarchy) ExpandPredicateIRI(iri string) []uint32 {
	return h.subPropertiesByIRI[iri]
}

// ExpandObject implements optimizer.Expander: a constant object of an
// rdf:type pattern widens to the subclass closure of the class.
func (h *Hierarchy) ExpandObject(p uint32, obj uint32) []uint32 {
	if p != h.typePred || h.typePred == 0 {
		return nil
	}
	return h.subClasses[obj]
}

// ForwardChain materializes the RDFS consequences of the class and
// property hierarchies over triples: for every (s, p, o) with p ⊑ q it adds
// (s, q, o), and for every (s, rdf:type, C) with C ⊑ D it adds
// (s, rdf:type, D). It exists as the test oracle for backward-chained
// evaluation — the very materialization the paper's approach avoids.
// Vocabulary IRIs may be overridden as in New.
func ForwardChain(triples []rdf.Triple, subClassIRI, subPropertyIRI, typeIRI string) []rdf.Triple {
	if subClassIRI == "" {
		subClassIRI = SubClassOf
	}
	if subPropertyIRI == "" {
		subPropertyIRI = SubPropertyOf
	}
	if typeIRI == "" {
		typeIRI = RDFType
	}
	// superOf maps a node to its direct parents in each hierarchy.
	superClasses := map[string][]string{}
	superProps := map[string][]string{}
	for _, t := range triples {
		switch t.P {
		case subClassIRI:
			superClasses[t.S] = append(superClasses[t.S], t.O)
		case subPropertyIRI:
			superProps[t.S] = append(superProps[t.S], t.O)
		}
	}
	ancestors := func(edges map[string][]string, start string) []string {
		visited := map[string]bool{}
		stack := []string{start}
		var out []string
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range edges[cur] {
				if !visited[p] {
					visited[p] = true
					out = append(out, p)
					stack = append(stack, p)
				}
			}
		}
		return out
	}
	seen := map[rdf.Triple]bool{}
	var out []rdf.Triple
	add := func(t rdf.Triple) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range triples {
		add(t)
		// Property chain: p ⊑ q implies (s, q, o). Property IRIs appear as
		// plain resources in superProps.
		for _, q := range ancestors(superProps, t.P) {
			add(rdf.Triple{S: t.S, P: q, O: t.O})
		}
		if t.P == typeIRI {
			for _, d := range ancestors(superClasses, t.O) {
				add(rdf.Triple{S: t.S, P: typeIRI, O: d})
			}
		}
	}
	return out
}
