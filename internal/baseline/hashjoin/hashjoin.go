// Package hashjoin implements the single-threaded, materializing hash-join
// engine used as the RDFox-like comparator in the paper's single-thread
// experiments (Tables 2–4).
//
// The engine captures the properties the paper attributes to RDFox's query
// path: no intra-query parallelism, full materialization of every
// intermediate result, and hash probes that exploit neither sort order nor
// locality. It is a competent implementation of that design — hash tables
// are built on the smaller side and patterns are ordered greedily by
// estimated cardinality — so the comparison measures the architecture, not
// a strawman.
package hashjoin

import (
	"sort"

	"parj/internal/dict"
	"parj/internal/rdf"
	"parj/internal/sparql"
)

// pair is one (subject, object) row of a predicate's table.
type pair struct{ s, o uint32 }

// Engine is an immutable single-threaded BGP evaluator.
type Engine struct {
	resources  *dict.Dict
	predicates *dict.Dict
	tables     [][]pair // tables[p-1] holds predicate p's pairs
}

// Load builds an engine from parsed triples (duplicates ignored).
func Load(triples []rdf.Triple) *Engine {
	e := &Engine{resources: dict.New(), predicates: dict.New()}
	type key struct {
		s, p, o uint32
	}
	seen := make(map[key]bool, len(triples))
	for _, t := range triples {
		s := e.resources.Encode(t.S)
		p := e.predicates.Encode(t.P)
		o := e.resources.Encode(t.O)
		k := key{s, p, o}
		if seen[k] {
			continue
		}
		seen[k] = true
		for int(p) > len(e.tables) {
			e.tables = append(e.tables, nil)
		}
		e.tables[p-1] = append(e.tables[p-1], pair{s, o})
	}
	return e
}

// NumTriples reports the number of distinct triples loaded.
func (e *Engine) NumTriples() int {
	n := 0
	for _, t := range e.tables {
		n += len(t)
	}
	return n
}

// relation is a materialized intermediate result: a schema of variable
// names and a flat row buffer.
type relation struct {
	vars []string
	rows [][]uint32
}

func (r *relation) varIndex(v string) int {
	for i, x := range r.vars {
		if x == v {
			return i
		}
	}
	return -1
}

// Count evaluates q and returns the result-row count (after DISTINCT and
// LIMIT), without decoding rows.
func (e *Engine) Count(q *sparql.Query) (int64, error) {
	rel, err := e.eval(q)
	if err != nil {
		return 0, err
	}
	return int64(len(rel.rows)), nil
}

// Evaluate returns the decoded projected rows.
func (e *Engine) Evaluate(q *sparql.Query) ([][]string, error) {
	rel, err := e.eval(q)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(rel.rows))
	predSlots := predicateVarSet(q)
	for i, row := range rel.rows {
		dec := make([]string, len(row))
		for j, id := range row {
			if predSlots[rel.vars[j]] {
				dec[j] = e.predicates.Decode(id)
			} else {
				dec[j] = e.resources.Decode(id)
			}
		}
		out[i] = dec
	}
	return out, nil
}

func predicateVarSet(q *sparql.Query) map[string]bool {
	m := map[string]bool{}
	for _, tp := range q.Patterns {
		if tp.P.IsVar() {
			m[tp.P.Var] = true
		}
	}
	return m
}

// eval runs the full pipeline: greedy order, pattern scans, hash joins,
// projection, DISTINCT, LIMIT.
func (e *Engine) eval(q *sparql.Query) (*relation, error) {
	if q.HasLimit && q.Limit == 0 {
		return &relation{vars: q.Projection()}, nil
	}
	order := e.order(q.Patterns)
	var acc *relation
	for _, idx := range order {
		scanned := e.scan(q.Patterns[idx])
		if acc == nil {
			acc = scanned
		} else {
			acc = hashJoin(acc, scanned)
		}
		if len(acc.rows) == 0 {
			break
		}
	}
	if acc == nil {
		acc = &relation{}
	}
	proj := q.Projection()
	out := &relation{vars: proj}
	cols := make([]int, len(proj))
	for i, v := range proj {
		cols[i] = acc.varIndex(v)
	}
	seen := map[string]bool{}
	for _, row := range acc.rows {
		pr := make([]uint32, len(cols))
		for i, c := range cols {
			if c >= 0 {
				pr[i] = row[c]
			}
		}
		if q.Distinct {
			k := rowKey(pr)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		out.rows = append(out.rows, pr)
		if q.Limit > 0 && len(out.rows) >= q.Limit {
			break
		}
	}
	return out, nil
}

func rowKey(row []uint32) string {
	b := make([]byte, 0, len(row)*4)
	for _, v := range row {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// order sorts patterns greedily: cheapest base cardinality first, then
// patterns connected to the joined set.
func (e *Engine) order(patterns []sparql.TriplePattern) []int {
	n := len(patterns)
	used := make([]bool, n)
	bound := map[string]bool{}
	var out []int
	for len(out) < n {
		best, bestCard := -1, 0.0
		bestConnected := false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			connected := len(out) == 0
			for _, v := range patterns[i].Vars() {
				if bound[v] {
					connected = true
				}
			}
			card := e.baseCard(patterns[i])
			if best == -1 ||
				(connected && !bestConnected) ||
				(connected == bestConnected && card < bestCard) {
				best, bestCard, bestConnected = i, card, connected
			}
		}
		used[best] = true
		out = append(out, best)
		for _, v := range patterns[best].Vars() {
			bound[v] = true
		}
	}
	return out
}

func (e *Engine) baseCard(tp sparql.TriplePattern) float64 {
	count := func(p uint32) float64 {
		t := e.tables[p-1]
		switch {
		case !tp.S.IsVar() && !tp.O.IsVar():
			return 1
		case !tp.S.IsVar() || !tp.O.IsVar():
			// Without per-value stats assume uniform spread over a nominal
			// hundred distinct values; the greedy order only needs ranks.
			return float64(len(t)) / 100
		default:
			return float64(len(t))
		}
	}
	if !tp.P.IsVar() {
		p := e.predicates.Lookup(tp.P.Value)
		if p == 0 {
			return 0
		}
		return count(p)
	}
	total := 0.0
	for p := 1; p <= len(e.tables); p++ {
		total += count(uint32(p))
	}
	return total
}

// scan materializes the bindings of a single pattern.
func (e *Engine) scan(tp sparql.TriplePattern) *relation {
	rel := &relation{}
	var sVar, pVar, oVar string
	if tp.S.IsVar() {
		sVar = tp.S.Var
		rel.vars = append(rel.vars, sVar)
	}
	if tp.P.IsVar() {
		pVar = tp.P.Var
		if rel.varIndex(pVar) < 0 {
			rel.vars = append(rel.vars, pVar)
		}
	}
	if tp.O.IsVar() {
		oVar = tp.O.Var
		if rel.varIndex(oVar) < 0 {
			rel.vars = append(rel.vars, oVar)
		}
	}
	var sConst, oConst uint32
	if !tp.S.IsVar() {
		sConst = e.resources.Lookup(tp.S.Value)
		if sConst == 0 {
			return rel
		}
	}
	if !tp.O.IsVar() {
		oConst = e.resources.Lookup(tp.O.Value)
		if oConst == 0 {
			return rel
		}
	}
	emit := func(p uint32, pr pair) {
		if sConst != 0 && pr.s != sConst {
			return
		}
		if oConst != 0 && pr.o != oConst {
			return
		}
		// Repeated variables within the pattern must agree.
		vals := map[string]uint32{}
		row := make([]uint32, 0, len(rel.vars))
		ok := true
		set := func(v string, id uint32) {
			if prev, exists := vals[v]; exists {
				if prev != id {
					ok = false
				}
				return
			}
			vals[v] = id
			row = append(row, id)
		}
		if sVar != "" {
			set(sVar, pr.s)
		}
		if pVar != "" {
			set(pVar, p)
		}
		if oVar != "" {
			set(oVar, pr.o)
		}
		if ok {
			rel.rows = append(rel.rows, row)
		}
	}
	if !tp.P.IsVar() {
		p := e.predicates.Lookup(tp.P.Value)
		if p == 0 {
			return rel
		}
		for _, pr := range e.tables[p-1] {
			emit(p, pr)
		}
		return rel
	}
	for p := 1; p <= len(e.tables); p++ {
		for _, pr := range e.tables[p-1] {
			emit(uint32(p), pr)
		}
	}
	return rel
}

// hashJoin joins two materialized relations on all shared variables,
// building the hash table on the smaller input.
func hashJoin(a, b *relation) *relation {
	if len(a.rows) > len(b.rows) {
		a, b = b, a
	}
	var aCols, bCols []int
	for i, v := range a.vars {
		if j := b.varIndex(v); j >= 0 {
			aCols = append(aCols, i)
			bCols = append(bCols, j)
		}
	}
	// Output schema: a's vars then b's non-shared vars.
	out := &relation{vars: append([]string(nil), a.vars...)}
	var bExtra []int
	for j, v := range b.vars {
		if a.varIndex(v) < 0 {
			out.vars = append(out.vars, v)
			bExtra = append(bExtra, j)
		}
	}
	if len(aCols) == 0 {
		// Cartesian product.
		for _, ra := range a.rows {
			for _, rb := range b.rows {
				row := append(append(make([]uint32, 0, len(out.vars)), ra...), pick(rb, bExtra)...)
				out.rows = append(out.rows, row)
			}
		}
		return out
	}
	ht := make(map[string][][]uint32, len(a.rows))
	for _, ra := range a.rows {
		k := rowKey(pick(ra, aCols))
		ht[k] = append(ht[k], ra)
	}
	for _, rb := range b.rows {
		k := rowKey(pick(rb, bCols))
		for _, ra := range ht[k] {
			row := append(append(make([]uint32, 0, len(out.vars)), ra...), pick(rb, bExtra)...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

func pick(row []uint32, cols []int) []uint32 {
	out := make([]uint32, len(cols))
	for i, c := range cols {
		out[i] = row[c]
	}
	return out
}

// SortRowsForTest orders rows deterministically; exported for tests.
func SortRowsForTest(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
