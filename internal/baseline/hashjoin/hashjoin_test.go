package hashjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parj/internal/rdf"
	"parj/internal/reference"
	"parj/internal/sparql"
)

func dedup(ts []rdf.Triple) []rdf.Triple {
	seen := map[rdf.Triple]bool{}
	var out []rdf.Triple
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func fixture() []rdf.Triple {
	var ts []rdf.Triple
	add := func(s, p, o string) { ts = append(ts, rdf.Triple{S: "<" + s + ">", P: "<" + p + ">", O: "<" + o + ">"}) }
	for i := 0; i < 20; i++ {
		add(fmt.Sprintf("p%d", i), "worksFor", fmt.Sprintf("d%d", i%4))
		for c := 0; c < 3; c++ {
			add(fmt.Sprintf("p%d", i), "teaches", fmt.Sprintf("c%d_%d", i, c))
		}
	}
	for i := 0; i < 40; i++ {
		add(fmt.Sprintf("s%d", i), "takesCourse", fmt.Sprintf("c%d_%d", i%20, i%3))
		add(fmt.Sprintf("s%d", i), "advisor", fmt.Sprintf("p%d", i%20))
	}
	return ts
}

func check(t *testing.T, data []rdf.Triple, src string) {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e := Load(data)
	got, err := e.Evaluate(q)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	want := reference.Evaluate(q, dedup(data))
	SortRowsForTest(got)
	want = reference.Canon(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", src, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: row %d = %v, want %v", src, i, got[i], want[i])
		}
	}
	n, err := e.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(want) {
		t.Fatalf("%s: Count = %d, want %d", src, n, len(want))
	}
}

func TestMatchesOracle(t *testing.T) {
	data := fixture()
	for _, src := range []string{
		`SELECT ?x ?d WHERE { ?x <worksFor> ?d }`,
		`SELECT ?x ?c ?d WHERE { ?x <teaches> ?c . ?x <worksFor> ?d }`,
		`SELECT ?s ?p ?d WHERE { ?s <advisor> ?p . ?p <worksFor> ?d }`,
		`SELECT ?a ?b WHERE { ?a <takesCourse> ?c . ?b <teaches> ?c }`,
		`SELECT ?x WHERE { ?x <worksFor> <d2> }`,
		`SELECT ?c WHERE { <p3> <teaches> ?c }`,
		`SELECT DISTINCT ?d WHERE { ?s <advisor> ?p . ?p <worksFor> ?d }`,
		`SELECT ?x WHERE { ?x <nosuch> ?y }`,
		`SELECT ?p WHERE { <s0> ?p ?o }`,
		`SELECT ?a ?b WHERE { ?a <worksFor> <d0> . ?b <worksFor> <d1> }`,
	} {
		check(t, data, src)
	}
}

func TestLimitApplied(t *testing.T) {
	q, _ := sparql.Parse(`SELECT ?x ?c WHERE { ?x <teaches> ?c } LIMIT 5`)
	e := Load(fixture())
	n, err := e.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("Count = %d, want 5", n)
	}
}

func TestDuplicateTriplesIgnored(t *testing.T) {
	data := fixture()
	e1 := Load(data)
	e2 := Load(append(append([]rdf.Triple{}, data...), data...))
	if e1.NumTriples() != e2.NumTriples() {
		t.Errorf("dedup failed: %d vs %d", e1.NumTriples(), e2.NumTriples())
	}
}

// Property: the engine agrees with the oracle on random graphs and BGPs.
func TestQuickOracleEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var data []rdf.Triple
		for i := 0; i < 60+rng.Intn(60); i++ {
			data = append(data, rdf.Triple{
				S: fmt.Sprintf("<r%d>", rng.Intn(15)),
				P: fmt.Sprintf("<p%d>", rng.Intn(3)),
				O: fmt.Sprintf("<r%d>", rng.Intn(15)),
			})
		}
		data = dedup(data)
		e := Load(data)
		vars := []string{"a", "b", "c"}
		for trial := 0; trial < 3; trial++ {
			src := "SELECT * WHERE {"
			for i := 0; i < 1+rng.Intn(3); i++ {
				s := "?" + vars[rng.Intn(3)]
				o := "?" + vars[rng.Intn(3)]
				if rng.Intn(4) == 0 {
					o = fmt.Sprintf("<r%d>", rng.Intn(15))
				}
				src += fmt.Sprintf(" %s <p%d> %s .", s, rng.Intn(3), o)
			}
			src += " }"
			q, err := sparql.Parse(src)
			if err != nil || len(q.Projection()) == 0 {
				continue
			}
			got, err := e.Evaluate(q)
			if err != nil {
				return false
			}
			SortRowsForTest(got)
			want := reference.Canon(reference.Evaluate(q, data))
			if len(got) != len(want) {
				t.Logf("seed=%d %s: got %d want %d", seed, src, len(got), len(want))
				return false
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
