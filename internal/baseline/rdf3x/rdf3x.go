// Package rdf3x implements the RDF-3X-like baseline of the paper's
// single-thread experiments: a single-threaded engine that stores all six
// triple permutations (SPO, SOP, PSO, POS, OSP, OPS) in clustered,
// page-structured B+ trees and evaluates BGPs with pipelined index scans.
// Probe streams that arrive sorted advance a per-pattern cursor with
// page-granularity skipping (the sideways-information-passing flavor of
// RDF-3X); unsorted probes pay a full root-to-leaf descent per binding.
//
// This captures what the paper measures about RDF-3X in memory: B+ tree
// page organization and per-page processing rather than flat arrays.
package rdf3x

import (
	"fmt"
	"sort"

	"parj/internal/baseline/btree"
	"parj/internal/dict"
	"parj/internal/rdf"
	"parj/internal/sparql"
)

// perm identifies one of the six permutations; order[i] gives the triple
// role (0=S, 1=P, 2=O) stored at key position i.
type perm struct {
	name  string
	order [3]int
}

var perms = []perm{
	{"SPO", [3]int{0, 1, 2}},
	{"SOP", [3]int{0, 2, 1}},
	{"PSO", [3]int{1, 0, 2}},
	{"POS", [3]int{1, 2, 0}},
	{"OSP", [3]int{2, 0, 1}},
	{"OPS", [3]int{2, 1, 0}},
}

// Engine is an immutable six-index BGP evaluator.
type Engine struct {
	resources  *dict.Dict
	predicates *dict.Dict
	trees      [6]*btree.Tree
	predCount  map[uint32]int // triples per predicate, for greedy ordering
	nTriples   int
}

// Load builds the six permutation indexes from parsed triples.
func Load(triples []rdf.Triple) *Engine {
	return LoadWithPageSize(triples, btree.DefaultPageSize)
}

// LoadWithPageSize allows tests to force small pages.
func LoadWithPageSize(triples []rdf.Triple, pageSize int) *Engine {
	e := &Engine{resources: dict.New(), predicates: dict.New(), predCount: map[uint32]int{}}
	seen := make(map[btree.Key]bool, len(triples))
	var spo []btree.Key
	for _, t := range triples {
		k := btree.Key{e.resources.Encode(t.S), e.predicates.Encode(t.P), e.resources.Encode(t.O)}
		if seen[k] {
			continue
		}
		seen[k] = true
		spo = append(spo, k)
	}
	e.nTriples = len(spo)
	for _, k := range spo {
		e.predCount[k[1]]++
	}
	for pi, p := range perms {
		keys := make([]btree.Key, len(spo))
		for i, t := range spo {
			keys[i] = btree.Key{t[p.order[0]], t[p.order[1]], t[p.order[2]]}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		e.trees[pi] = btree.BulkLoad(keys, pageSize)
	}
	return e
}

// NumTriples reports the number of distinct triples loaded.
func (e *Engine) NumTriples() int { return e.nTriples }

// PageReads sums the page-access counters across indexes.
func (e *Engine) PageReads() uint64 {
	var total uint64
	for _, t := range e.trees {
		total += t.PageReads()
	}
	return total
}

// ResetPageReads clears all page counters.
func (e *Engine) ResetPageReads() {
	for _, t := range e.trees {
		t.ResetPageReads()
	}
}

// roleTerm describes one role of a compiled pattern.
type roleTerm struct {
	constID uint32 // 0 when variable
	slot    int    // binding slot; -1 for constants
	isNew   bool   // first binding of the slot
}

// compiled is one pipeline step.
type compiled struct {
	perm      int      // permutation index
	prefixLen int      // number of leading key positions fixed per probe
	roles     [3]roleTerm // in permutation key order
}

type evalState struct {
	e       *Engine
	steps   []compiled
	binding []uint32
	cursors []btree.Cursor
	hasCur  []bool

	project  []int
	distinct bool
	limit    int

	seen      map[string]bool
	rows      [][]uint32
	count     int64
	silent    bool
	limitZero bool // LIMIT 0: zero rows
}

// Count evaluates q without materializing rows (other than DISTINCT
// bookkeeping).
func (e *Engine) Count(q *sparql.Query) (int64, error) {
	st, err := e.prepare(q)
	if err != nil {
		return 0, err
	}
	st.silent = true
	st.run()
	return st.count, nil
}

// Evaluate returns the decoded projected rows.
func (e *Engine) Evaluate(q *sparql.Query) ([][]string, error) {
	st, err := e.prepare(q)
	if err != nil {
		return nil, err
	}
	st.run()
	predVar := map[int]bool{}
	slotOf := map[string]int{}
	// Recover slot names for decoding: recompute as prepare did.
	for _, tp := range q.Patterns {
		for _, tm := range []sparql.Term{tp.S, tp.P, tp.O} {
			if tm.IsVar() {
				if _, ok := slotOf[tm.Var]; !ok {
					slotOf[tm.Var] = len(slotOf)
				}
			}
		}
		if tp.P.IsVar() {
			predVar[slotOf[tp.P.Var]] = true
		}
	}
	out := make([][]string, len(st.rows))
	for i, row := range st.rows {
		dec := make([]string, len(row))
		for j, id := range row {
			if predVar[st.project[j]] {
				dec[j] = e.predicates.Decode(id)
			} else {
				dec[j] = e.resources.Decode(id)
			}
		}
		out[i] = dec
	}
	return out, nil
}

// prepare orders the patterns greedily and compiles them to pipeline steps.
func (e *Engine) prepare(q *sparql.Query) (*evalState, error) {
	// Slot assignment in variable first-appearance order (must match
	// Evaluate's reconstruction).
	slotOf := map[string]int{}
	for _, tp := range q.Patterns {
		for _, tm := range []sparql.Term{tp.S, tp.P, tp.O} {
			if tm.IsVar() {
				if _, ok := slotOf[tm.Var]; !ok {
					slotOf[tm.Var] = len(slotOf)
				}
			}
		}
	}

	order := e.greedyOrder(q.Patterns)
	st := &evalState{
		e:         e,
		binding:   make([]uint32, len(slotOf)),
		distinct:  q.Distinct,
		limit:     q.Limit,
		limitZero: q.HasLimit && q.Limit == 0,
	}
	bound := map[string]bool{}
	for _, idx := range order {
		c, err := e.compile(q.Patterns[idx], slotOf, bound)
		if err != nil {
			return nil, err
		}
		st.steps = append(st.steps, c)
		for _, v := range q.Patterns[idx].Vars() {
			bound[v] = true
		}
	}
	st.cursors = make([]btree.Cursor, len(st.steps))
	st.hasCur = make([]bool, len(st.steps))
	for _, v := range q.Projection() {
		st.project = append(st.project, slotOf[v])
	}
	if q.Distinct {
		st.seen = map[string]bool{}
	}
	return st, nil
}

func (e *Engine) greedyOrder(patterns []sparql.TriplePattern) []int {
	n := len(patterns)
	used := make([]bool, n)
	bound := map[string]bool{}
	var out []int
	for len(out) < n {
		best, bestCard := -1, 0.0
		bestConnected := false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			connected := len(out) == 0
			for _, v := range patterns[i].Vars() {
				if bound[v] {
					connected = true
				}
			}
			card := e.baseCard(patterns[i])
			if best == -1 ||
				(connected && !bestConnected) ||
				(connected == bestConnected && card < bestCard) {
				best, bestCard, bestConnected = i, card, connected
			}
		}
		used[best] = true
		out = append(out, best)
		for _, v := range patterns[best].Vars() {
			bound[v] = true
		}
	}
	return out
}

func (e *Engine) baseCard(tp sparql.TriplePattern) float64 {
	var n float64
	if tp.P.IsVar() {
		n = float64(e.nTriples)
	} else {
		n = float64(e.predCount[e.predicates.Lookup(tp.P.Value)])
	}
	if !tp.S.IsVar() {
		n /= 100
	}
	if !tp.O.IsVar() {
		n /= 100
	}
	return n
}

// compile chooses the permutation whose key order puts the pattern's
// constant and already-bound roles first, so each probe is a contiguous
// range scan.
func (e *Engine) compile(tp sparql.TriplePattern, slotOf map[string]int, bound map[string]bool) (compiled, error) {
	terms := [3]sparql.Term{tp.S, tp.P, tp.O}
	isFixed := [3]bool{} // role known at probe time (const or bound var)
	for r, tm := range terms {
		if !tm.IsVar() || bound[tm.Var] {
			isFixed[r] = true
		}
	}
	nFixed := 0
	for _, f := range isFixed {
		if f {
			nFixed++
		}
	}
	seenVar := map[string]bool{}
	for pi, p := range perms {
		ok := true
		for i := 0; i < nFixed; i++ {
			if !isFixed[p.order[i]] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		c := compiled{perm: pi, prefixLen: nFixed}
		for i, role := range p.order {
			tm := terms[role]
			if !tm.IsVar() {
				id := e.lookupConst(role, tm.Value)
				c.roles[i] = roleTerm{constID: id, slot: -1}
				if id == 0 {
					// Unknown constant: empty range, signalled by a probe
					// that can never match. Keep constID 0; run() checks.
					c.roles[i].isNew = false
				}
				continue
			}
			slot := slotOf[tm.Var]
			rt := roleTerm{slot: slot}
			if !bound[tm.Var] && !seenVar[tm.Var] {
				rt.isNew = true
				seenVar[tm.Var] = true
			}
			c.roles[i] = rt
		}
		return c, nil
	}
	return compiled{}, fmt.Errorf("rdf3x: no permutation covers pattern %s", tp)
}

func (e *Engine) lookupConst(role int, value string) uint32 {
	if role == 1 {
		return e.predicates.Lookup(value)
	}
	return e.resources.Lookup(value)
}

func (st *evalState) run() {
	if st.limitZero {
		return
	}
	st.step(0)
}

// step executes pipeline stage i; returns false when the limit is reached.
func (st *evalState) step(i int) bool {
	if i == len(st.steps) {
		return st.emit()
	}
	c := &st.steps[i]
	var lower btree.Key
	for k := 0; k < c.prefixLen; k++ {
		rt := c.roles[k]
		if rt.slot < 0 {
			if rt.constID == 0 {
				return true // unknown constant: no matches
			}
			lower[k] = rt.constID
		} else {
			lower[k] = st.binding[rt.slot]
		}
	}
	tree := st.e.trees[c.perm]
	// SIP-style cursor reuse: sorted probe streams skip forward instead of
	// descending from the root.
	if st.hasCur[i] && st.cursors[i].Valid() && !lower.Less(st.cursors[i].Key()) {
		st.cursors[i].SeekForward(lower)
	} else {
		st.cursors[i] = tree.Seek(lower)
	}
	st.hasCur[i] = true

	for cur := &st.cursors[i]; cur.Valid(); cur.Next() {
		key := cur.Key()
		match := true
		for k := 0; k < c.prefixLen; k++ {
			if key[k] != lower[k] {
				match = false
				break
			}
		}
		if !match {
			break // past the range
		}
		ok := true
		var newSlots [3]int
		nNew := 0
		for k := c.prefixLen; k < 3; k++ {
			rt := c.roles[k]
			if rt.slot < 0 {
				if key[k] != rt.constID {
					ok = false
					break
				}
				continue
			}
			if rt.isNew {
				// First occurrence of the variable in this pattern; a
				// later duplicate in the same key compiles as non-new and
				// is checked against the value bound here.
				st.binding[rt.slot] = key[k]
				newSlots[nNew] = rt.slot
				nNew++
			} else if st.binding[rt.slot] != key[k] {
				ok = false
				break
			}
		}
		if ok && !st.step(i+1) {
			return false
		}
	}
	return true
}

func (st *evalState) emit() bool {
	row := make([]uint32, len(st.project))
	for i, slot := range st.project {
		row[i] = st.binding[slot]
	}
	if st.distinct {
		k := rowKey(row)
		if st.seen[k] {
			return true
		}
		st.seen[k] = true
	}
	st.count++
	if !st.silent {
		st.rows = append(st.rows, row)
	}
	return st.limit == 0 || st.count < int64(st.limit)
}

func rowKey(row []uint32) string {
	b := make([]byte, 0, len(row)*4)
	for _, v := range row {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}
