package triad

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parj/internal/rdf"
	"parj/internal/reference"
	"parj/internal/sparql"
)

func dedup(ts []rdf.Triple) []rdf.Triple {
	seen := map[rdf.Triple]bool{}
	var out []rdf.Triple
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func fixture() []rdf.Triple {
	var ts []rdf.Triple
	add := func(s, p, o string) { ts = append(ts, rdf.Triple{S: "<" + s + ">", P: "<" + p + ">", O: "<" + o + ">"}) }
	for i := 0; i < 30; i++ {
		add(fmt.Sprintf("p%d", i), "worksFor", fmt.Sprintf("d%d", i%5))
		for c := 0; c < 4; c++ {
			add(fmt.Sprintf("p%d", i), "teaches", fmt.Sprintf("c%d_%d", i, c))
		}
	}
	for i := 0; i < 50; i++ {
		add(fmt.Sprintf("s%d", i), "takesCourse", fmt.Sprintf("c%d_%d", i%30, i%4))
		add(fmt.Sprintf("s%d", i), "advisor", fmt.Sprintf("p%d", i%30))
	}
	return ts
}

var testQueries = []string{
	`SELECT ?x ?d WHERE { ?x <worksFor> ?d }`,
	`SELECT ?x ?c ?d WHERE { ?x <teaches> ?c . ?x <worksFor> ?d }`,
	`SELECT ?s ?p ?d WHERE { ?s <advisor> ?p . ?p <worksFor> ?d }`,
	`SELECT ?a ?b WHERE { ?a <takesCourse> ?c . ?b <teaches> ?c }`,
	`SELECT ?x WHERE { ?x <worksFor> <d2> }`,
	`SELECT ?c WHERE { <p3> <teaches> ?c }`,
	`SELECT DISTINCT ?d WHERE { ?s <advisor> ?p . ?p <worksFor> ?d }`,
	`SELECT ?x WHERE { ?x <nosuch> ?y }`,
	`SELECT ?p WHERE { <s0> ?p ?o }`,
	`SELECT ?a ?b WHERE { ?a <worksFor> <d0> . ?b <worksFor> <d1> }`,
	`SELECT ?s ?u WHERE { ?s <takesCourse> ?c . ?x <teaches> ?c . ?x <worksFor> ?u }`,
}

func check(t *testing.T, e *Engine, data []rdf.Triple, src string) {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got, err := e.Evaluate(q)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	got = reference.Canon(got)
	want := reference.Canon(reference.Evaluate(q, data))
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", src, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: row %d = %v, want %v", src, i, got[i], want[i])
		}
	}
	n, err := e.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(want) {
		t.Fatalf("%s: Count = %d, want %d", src, n, len(want))
	}
}

func TestMatchesOracle(t *testing.T) {
	data := dedup(fixture())
	for _, workers := range []int{1, 4, 8} {
		e := Load(data, Options{Workers: workers})
		for _, src := range testQueries {
			check(t, e, data, src)
		}
	}
}

func TestSummaryModeMatchesOracle(t *testing.T) {
	data := dedup(fixture())
	for _, buckets := range []int{2, 16, 64} {
		e := Load(data, Options{Workers: 4, SummaryBuckets: buckets})
		for _, src := range testQueries {
			check(t, e, data, src)
		}
	}
}

func TestExchangesCounted(t *testing.T) {
	data := dedup(fixture())
	e := Load(data, Options{Workers: 4})
	// A subject-object chain forces at least one rehash: the intermediate
	// result is partitioned by ?s but the second join probes on ?c.
	q, _ := sparql.Parse(`SELECT ?a ?b WHERE { ?a <takesCourse> ?c . ?b <teaches> ?c }`)
	if _, err := e.Count(q); err != nil {
		t.Fatal(err)
	}
	if e.Exchanges() == 0 {
		t.Error("subject-object join performed no exchanges")
	}
	// A pure subject-subject star needs none.
	q, _ = sparql.Parse(`SELECT ?x ?c ?d WHERE { ?x <teaches> ?c . ?x <worksFor> ?d }`)
	if _, err := e.Count(q); err != nil {
		t.Fatal(err)
	}
	if e.Exchanges() != 0 {
		t.Errorf("subject-subject star performed %d exchanges, want 0", e.Exchanges())
	}
}

func TestLimitApplied(t *testing.T) {
	e := Load(dedup(fixture()), Options{Workers: 4})
	q, _ := sparql.Parse(`SELECT ?x ?c WHERE { ?x <teaches> ?c } LIMIT 9`)
	n, err := e.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Errorf("Count = %d, want 9", n)
	}
	rows, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Errorf("Evaluate returned %d rows, want 9", len(rows))
	}
}

// Property: triad agrees with the oracle across worker counts and SG modes.
func TestQuickOracleEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var data []rdf.Triple
		for i := 0; i < 50+rng.Intn(80); i++ {
			data = append(data, rdf.Triple{
				S: fmt.Sprintf("<r%d>", rng.Intn(15)),
				P: fmt.Sprintf("<p%d>", rng.Intn(3)),
				O: fmt.Sprintf("<r%d>", rng.Intn(15)),
			})
		}
		data = dedup(data)
		buckets := []int{0, 0, 8, 32}[rng.Intn(4)]
		e := Load(data, Options{Workers: 1 + rng.Intn(6), SummaryBuckets: buckets})
		vars := []string{"a", "b", "c"}
		for trial := 0; trial < 3; trial++ {
			src := "SELECT * WHERE {"
			for i := 0; i < 1+rng.Intn(3); i++ {
				s := "?" + vars[rng.Intn(3)]
				o := "?" + vars[rng.Intn(3)]
				if rng.Intn(4) == 0 {
					o = fmt.Sprintf("<r%d>", rng.Intn(15))
				}
				if rng.Intn(6) == 0 {
					s = fmt.Sprintf("<r%d>", rng.Intn(15))
				}
				src += fmt.Sprintf(" %s <p%d> %s .", s, rng.Intn(3), o)
			}
			src += " }"
			q, err := sparql.Parse(src)
			if err != nil || len(q.Projection()) == 0 {
				continue
			}
			got, err := e.Evaluate(q)
			if err != nil {
				return false
			}
			got = reference.Canon(got)
			want := reference.Canon(reference.Evaluate(q, data))
			if len(got) != len(want) {
				t.Logf("seed=%d %s workers+sg: got %d want %d", seed, src, len(got), len(want))
				return false
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Logf("seed=%d %s: row %d: got %v want %v", seed, src, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
