// Package triad implements the TriAD-like baseline of the paper's
// multi-thread experiments (Tables 2–4): a shared-nothing engine whose
// workers hold hash-partitioned shards of the data (one copy partitioned by
// subject, one by object) and evaluate BGPs join-at-a-time with distributed
// index joins. Whenever the next join key differs from the current
// partitioning key of the intermediate relation, the workers perform a
// synchronous rehash exchange — the blocking data transfer the paper
// contrasts PARJ's communication-free design against. An optional summary
// graph mode (TriAD-SG) prunes with bucket-level domains computed before
// execution, paying a pre-pass overhead that only helps selective queries,
// mirroring the behavior observed in the paper.
package triad

import (
	"sort"
	"sync"
	"time"

	"parj/internal/dict"
	"parj/internal/rdf"
	"parj/internal/sparql"
)

// Options configures an Engine.
type Options struct {
	// Workers is the number of shared-nothing workers (default 8).
	Workers int
	// SummaryBuckets enables summary-graph pruning with the given number
	// of buckets when > 0 (the TriAD-SG mode).
	SummaryBuckets int
	// SimulateParallel runs the per-phase worker functions sequentially
	// while recording per-worker durations, so hosts with fewer cores than
	// Workers can report the wall clock an adequately provisioned cluster
	// node would see: each barrier phase costs its *slowest* worker, and
	// phases still execute strictly one after another (the synchronization
	// structure is preserved). See Engine.SerialExcess.
	SimulateParallel bool
}

// shardTable is one predicate's pairs within one worker's partition, in CSR
// form keyed either by subject or by object.
type shardTable struct {
	keys []uint32
	offs []int32
	vals []uint32
}

func (t *shardTable) lookup(k uint32) (int, bool) {
	i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= k })
	return i, i < len(t.keys) && t.keys[i] == k
}

func (t *shardTable) run(i int) []uint32 { return t.vals[t.offs[i]:t.offs[i+1]] }

// Engine is an immutable multi-worker BGP evaluator.
type Engine struct {
	resources  *dict.Dict
	predicates *dict.Dict
	workers    int

	// bySubj[w][p-1] is predicate p's table holding only triples whose
	// subject hashes to worker w, keyed by subject. byObj is the replica
	// partitioned and keyed by object.
	bySubj [][]shardTable
	byObj  [][]shardTable

	predCount []int
	nTriples  int

	// Summary graph (TriAD-SG): per predicate, the set of (sBucket <<32 |
	// oBucket) pairs present in the data.
	buckets  int
	summary  []map[uint64]bool
	exchanges int64 // rehash exchanges performed by the last Count/Evaluate

	simulate bool
	// serialExcess accumulates, per barrier phase, the worker time beyond
	// the slowest worker — the time a simulated parallel run would *not*
	// spend. Reset by eval.
	serialExcess time.Duration
}

// Load builds an engine from parsed triples.
func Load(triples []rdf.Triple, opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	e := &Engine{
		resources:  dict.New(),
		predicates: dict.New(),
		workers:    opts.Workers,
		buckets:    opts.SummaryBuckets,
		simulate:   opts.SimulateParallel,
	}
	type trip struct{ s, p, o uint32 }
	seen := map[trip]bool{}
	var all []trip
	for _, t := range triples {
		tr := trip{e.resources.Encode(t.S), e.predicates.Encode(t.P), e.resources.Encode(t.O)}
		if !seen[tr] {
			seen[tr] = true
			all = append(all, tr)
		}
	}
	e.nTriples = len(all)
	nPred := e.predicates.Len()
	e.predCount = make([]int, nPred)
	for _, t := range all {
		e.predCount[t.p-1]++
	}
	// Partition twice: by hash(subject) and by hash(object).
	type pair struct{ k, v uint32 }
	build := func(keyOf func(trip) (uint32, uint32)) [][]shardTable {
		parts := make([][][]pair, e.workers)
		for w := range parts {
			parts[w] = make([][]pair, nPred)
		}
		for _, t := range all {
			k, v := keyOf(t)
			w := int(k) % e.workers
			parts[w][t.p-1] = append(parts[w][t.p-1], pair{k, v})
		}
		out := make([][]shardTable, e.workers)
		for w := range out {
			out[w] = make([]shardTable, nPred)
			for p := range parts[w] {
				ps := parts[w][p]
				sort.Slice(ps, func(i, j int) bool {
					if ps[i].k != ps[j].k {
						return ps[i].k < ps[j].k
					}
					return ps[i].v < ps[j].v
				})
				st := &out[w][p]
				st.offs = append(st.offs, 0)
				for i, pr := range ps {
					if i == 0 || pr.k != ps[i-1].k {
						st.keys = append(st.keys, pr.k)
						if i > 0 {
							st.offs = append(st.offs, int32(i))
						}
					}
					st.vals = append(st.vals, pr.v)
				}
				if len(ps) > 0 {
					st.offs = append(st.offs, int32(len(ps)))
				}
			}
		}
		return out
	}
	e.bySubj = build(func(t trip) (uint32, uint32) { return t.s, t.o })
	e.byObj = build(func(t trip) (uint32, uint32) { return t.o, t.s })

	if e.buckets > 0 {
		e.summary = make([]map[uint64]bool, nPred)
		for p := range e.summary {
			e.summary[p] = map[uint64]bool{}
		}
		for _, t := range all {
			sb := uint64(t.s % uint32(e.buckets))
			ob := uint64(t.o % uint32(e.buckets))
			e.summary[t.p-1][sb<<32|ob] = true
		}
	}
	return e
}

// NumTriples reports the number of distinct triples loaded.
func (e *Engine) NumTriples() int { return e.nTriples }

// Exchanges reports how many rehash exchanges the last query performed.
func (e *Engine) Exchanges() int64 { return e.exchanges }

// SerialExcess reports, for the last query under SimulateParallel, how much
// of the measured wall clock a real W-core run would overlap away:
// subtracting it from the wall time yields the simulated parallel elapsed.
func (e *Engine) SerialExcess() time.Duration { return e.serialExcess }

// relation is a distributed intermediate result: rows[w] lives on worker w.
type relation struct {
	vars []string
	rows [][][]uint32 // rows[worker][row][col]
	// partVar is the variable the relation is hash-partitioned on ("" when
	// unknown, e.g. after a broadcast join).
	partVar string
}

func (r *relation) varIndex(v string) int {
	for i, x := range r.vars {
		if x == v {
			return i
		}
	}
	return -1
}

func (r *relation) size() int {
	n := 0
	for _, ws := range r.rows {
		n += len(ws)
	}
	return n
}

// Count evaluates q and returns the result count.
func (e *Engine) Count(q *sparql.Query) (int64, error) {
	rel, err := e.eval(q)
	if err != nil {
		return 0, err
	}
	proj := q.Projection()
	cols := make([]int, len(proj))
	for i, v := range proj {
		cols[i] = rel.varIndex(v)
	}
	if !q.Distinct {
		n := int64(rel.size())
		if q.Limit > 0 && n > int64(q.Limit) {
			n = int64(q.Limit)
		}
		return n, nil
	}
	seen := map[string]bool{}
	for _, ws := range rel.rows {
		for _, row := range ws {
			seen[projKey(row, cols)] = true
		}
	}
	n := int64(len(seen))
	if q.Limit > 0 && n > int64(q.Limit) {
		n = int64(q.Limit)
	}
	return n, nil
}

// Evaluate returns the decoded projected rows (master-side gather).
func (e *Engine) Evaluate(q *sparql.Query) ([][]string, error) {
	rel, err := e.eval(q)
	if err != nil {
		return nil, err
	}
	proj := q.Projection()
	cols := make([]int, len(proj))
	for i, v := range proj {
		cols[i] = rel.varIndex(v)
	}
	predVars := map[string]bool{}
	for _, tp := range q.Patterns {
		if tp.P.IsVar() {
			predVars[tp.P.Var] = true
		}
	}
	var out [][]string
	seen := map[string]bool{}
	for _, ws := range rel.rows {
		for _, row := range ws {
			if q.Distinct {
				k := projKey(row, cols)
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			dec := make([]string, len(cols))
			for i, c := range cols {
				var id uint32
				if c >= 0 {
					id = row[c]
				}
				if predVars[proj[i]] {
					dec[i] = e.predicates.Decode(id)
				} else {
					dec[i] = e.resources.Decode(id)
				}
			}
			out = append(out, dec)
			if q.Limit > 0 && len(out) >= q.Limit {
				return out, nil
			}
		}
	}
	return out, nil
}

func projKey(row []uint32, cols []int) string {
	b := make([]byte, 0, len(cols)*4)
	for _, c := range cols {
		var v uint32
		if c >= 0 {
			v = row[c]
		}
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// varDomains holds the per-variable bucket domains computed from the
// summary graph; nil when SG mode is off or pruning found nothing to cut.
type varDomains map[string][]bool

func (e *Engine) eval(q *sparql.Query) (*relation, error) {
	e.exchanges = 0
	e.serialExcess = 0
	if q.HasLimit && q.Limit == 0 {
		return &relation{vars: q.Projection(), rows: make([][][]uint32, e.workers)}, nil
	}
	order := e.order(q.Patterns)
	domains := e.summaryPrune(q.Patterns)
	var rel *relation
	for _, idx := range order {
		next, err := e.joinStep(rel, q.Patterns[idx], domains)
		if err != nil {
			return nil, err
		}
		rel = next
		if rel.size() == 0 {
			break
		}
	}
	if rel == nil {
		rel = &relation{rows: make([][][]uint32, e.workers)}
	}
	return rel, nil
}

// order mirrors the greedy ordering of the other baselines.
func (e *Engine) order(patterns []sparql.TriplePattern) []int {
	n := len(patterns)
	used := make([]bool, n)
	bound := map[string]bool{}
	var out []int
	for len(out) < n {
		best, bestCard := -1, 0.0
		bestConnected := false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			connected := len(out) == 0
			for _, v := range patterns[i].Vars() {
				if bound[v] {
					connected = true
				}
			}
			card := e.baseCard(patterns[i])
			if best == -1 ||
				(connected && !bestConnected) ||
				(connected == bestConnected && card < bestCard) {
				best, bestCard, bestConnected = i, card, connected
			}
		}
		used[best] = true
		out = append(out, best)
		for _, v := range patterns[best].Vars() {
			bound[v] = true
		}
	}
	return out
}

func (e *Engine) baseCard(tp sparql.TriplePattern) float64 {
	var n float64
	if tp.P.IsVar() {
		n = float64(e.nTriples)
	} else if p := e.predicates.Lookup(tp.P.Value); p != 0 {
		n = float64(e.predCount[p-1])
	}
	if !tp.S.IsVar() {
		n /= 100
	}
	if !tp.O.IsVar() {
		n /= 100
	}
	return n
}

// summaryPrune computes bucket domains per variable with a few rounds of
// constraint propagation over the summary graph. Returns nil when SG mode
// is disabled.
func (e *Engine) summaryPrune(patterns []sparql.TriplePattern) varDomains {
	if e.buckets == 0 {
		return nil
	}
	full := func() []bool {
		d := make([]bool, e.buckets)
		for i := range d {
			d[i] = true
		}
		return d
	}
	domains := varDomains{}
	for _, tp := range patterns {
		for _, v := range tp.Vars() {
			if _, ok := domains[v]; !ok {
				domains[v] = full()
			}
		}
	}
	// Constants restrict their variable's counterpart through their own
	// bucket.
	bucketOf := func(value string) (uint32, bool) {
		id := e.resources.Lookup(value)
		if id == 0 {
			return 0, false
		}
		return id % uint32(e.buckets), true
	}
	for round := 0; round < 3; round++ {
		for _, tp := range patterns {
			if tp.P.IsVar() {
				continue // summary is per predicate only
			}
			p := e.predicates.Lookup(tp.P.Value)
			if p == 0 {
				continue
			}
			pairs := e.summary[p-1]
			sDom := make([]bool, e.buckets)
			oDom := make([]bool, e.buckets)
			var sFix, oFix uint32
			sConst, oConst := false, false
			if !tp.S.IsVar() {
				b, ok := bucketOf(tp.S.Value)
				if !ok {
					continue
				}
				sFix, sConst = b, true
			}
			if !tp.O.IsVar() {
				b, ok := bucketOf(tp.O.Value)
				if !ok {
					continue
				}
				oFix, oConst = b, true
			}
			curS := domains[varOrEmpty(tp.S)]
			curO := domains[varOrEmpty(tp.O)]
			for pair := range pairs {
				sb := uint32(pair >> 32)
				ob := uint32(pair & 0xffffffff)
				if sConst && sb != sFix {
					continue
				}
				if oConst && ob != oFix {
					continue
				}
				if curS != nil && !curS[sb] {
					continue
				}
				if curO != nil && !curO[ob] {
					continue
				}
				sDom[sb] = true
				oDom[ob] = true
			}
			if tp.S.IsVar() {
				intersect(domains[tp.S.Var], sDom)
			}
			if tp.O.IsVar() {
				intersect(domains[tp.O.Var], oDom)
			}
		}
	}
	return domains
}

func varOrEmpty(t sparql.Term) string { return t.Var }

func intersect(dst, src []bool) {
	for i := range dst {
		dst[i] = dst[i] && src[i]
	}
}

// allowed checks a candidate binding against the summary domains.
func (e *Engine) allowed(domains varDomains, v string, id uint32) bool {
	if domains == nil || v == "" {
		return true
	}
	d, ok := domains[v]
	if !ok {
		return true
	}
	return d[id%uint32(e.buckets)]
}

// joinStep joins rel (possibly nil, for the first pattern) with one
// pattern, rehashing when the partitioning variable does not match.
func (e *Engine) joinStep(rel *relation, tp sparql.TriplePattern, domains varDomains) (*relation, error) {
	sVar, oVar := "", ""
	if tp.S.IsVar() {
		sVar = tp.S.Var
	}
	if tp.O.IsVar() {
		oVar = tp.O.Var
	}

	if rel == nil {
		return e.scanPattern(tp, domains), nil
	}

	// Choose the probe key column: a shared variable, preferring the
	// current partitioning variable (no exchange).
	keySubject := false
	keyVar := ""
	if sVar != "" && rel.varIndex(sVar) >= 0 {
		keySubject, keyVar = true, sVar
	}
	if oVar != "" && rel.varIndex(oVar) >= 0 {
		if keyVar == "" || oVar == rel.partVar {
			keySubject, keyVar = false, oVar
		}
	}
	if keyVar == "" {
		// No shared variable: the pattern's rows live on workers unrelated
		// to rel's partitioning, so they must be gathered and broadcast —
		// the expensive exchange case the paper attributes to such joins.
		return e.broadcastJoin(rel, tp, domains), nil
	}

	if rel.partVar != keyVar {
		rel = e.rehash(rel, keyVar)
	}
	return e.localJoin(rel, tp, keySubject, keyVar, domains), nil
}

// scanPattern evaluates the first pattern: each worker scans its partition.
func (e *Engine) scanPattern(tp sparql.TriplePattern, domains varDomains) *relation {
	out := &relation{rows: make([][][]uint32, e.workers)}
	var sVar, pVar, oVar string
	if tp.S.IsVar() {
		sVar = tp.S.Var
		out.vars = append(out.vars, sVar)
	}
	if tp.P.IsVar() {
		pVar = tp.P.Var
		if out.varIndex(pVar) < 0 {
			out.vars = append(out.vars, pVar)
		}
	}
	if tp.O.IsVar() {
		oVar = tp.O.Var
		if out.varIndex(oVar) < 0 {
			out.vars = append(out.vars, oVar)
		}
	}
	// Scan the subject partition (complete and disjoint across workers);
	// the result is partitioned by subject when it is a variable.
	out.partVar = sVar

	var sConst, oConst uint32
	if !tp.S.IsVar() {
		if sConst = e.resources.Lookup(tp.S.Value); sConst == 0 {
			return out
		}
		out.partVar = ""
	}
	if !tp.O.IsVar() {
		if oConst = e.resources.Lookup(tp.O.Value); oConst == 0 {
			return out
		}
	}
	var preds []uint32
	if tp.P.IsVar() {
		for p := uint32(1); p <= uint32(e.predicates.Len()); p++ {
			preds = append(preds, p)
		}
	} else {
		p := e.predicates.Lookup(tp.P.Value)
		if p == 0 {
			return out
		}
		preds = []uint32{p}
	}

	useObjPartition := oConst != 0 && sConst == 0
	if useObjPartition {
		out.partVar = "" // all matching rows live on oConst's owner worker
	}
	e.parallel(func(w int) {
		for _, p := range preds {
			t := &e.bySubj[w][p-1]
			if useObjPartition {
				t = &e.byObj[w][p-1]
			}
			emit := func(s, o uint32) {
				if sVar != "" && !e.allowed(domains, sVar, s) {
					return
				}
				if oVar != "" && !e.allowed(domains, oVar, o) {
					return
				}
				row := make([]uint32, 0, len(out.vars))
				vals := map[string]uint32{}
				ok := true
				push := func(v string, id uint32) {
					if prev, exists := vals[v]; exists {
						if prev != id {
							ok = false
						}
						return
					}
					vals[v] = id
					row = append(row, id)
				}
				if sVar != "" {
					push(sVar, s)
				}
				if pVar != "" {
					push(pVar, p)
				}
				if oVar != "" {
					push(oVar, o)
				}
				if ok {
					out.rows[w] = append(out.rows[w], row)
				}
			}
			switch {
			case sConst != 0:
				if int(sConst)%e.workers != w {
					continue // another worker owns this subject
				}
				if pos, ok := t.lookup(sConst); ok {
					for _, o := range t.run(pos) {
						if oConst == 0 || o == oConst {
							emit(sConst, o)
						}
					}
				}
			case useObjPartition:
				if int(oConst)%e.workers != w {
					continue // another worker owns this object
				}
				if pos, ok := t.lookup(oConst); ok {
					for _, sub := range t.run(pos) {
						emit(sub, oConst)
					}
				}
			default:
				for i, sub := range t.keys {
					for _, o := range t.run(i) {
						if oConst == 0 || o == oConst {
							emit(sub, o)
						}
					}
				}
			}
		}
	})
	return out
}

// rehash redistributes rel by hash of variable v — a synchronous all-to-all
// exchange with a barrier, as in TriAD's blocking data transfers.
func (e *Engine) rehash(rel *relation, v string) *relation {
	e.exchanges++
	col := rel.varIndex(v)
	outbox := make([][][][]uint32, e.workers) // [from][to][row]
	e.parallel(func(w int) {
		outbox[w] = make([][][]uint32, e.workers)
		for _, row := range rel.rows[w] {
			to := int(row[col]) % e.workers
			outbox[w][to] = append(outbox[w][to], row)
		}
	})
	// Barrier: the exchange completes before any worker proceeds.
	next := &relation{vars: rel.vars, partVar: v, rows: make([][][]uint32, e.workers)}
	e.parallel(func(w int) {
		for from := 0; from < e.workers; from++ {
			next.rows[w] = append(next.rows[w], outbox[from][w]...)
		}
	})
	return next
}

// localJoin probes each worker's shard table with its local rows.
func (e *Engine) localJoin(rel *relation, tp sparql.TriplePattern, keySubject bool, keyVar string, domains varDomains) *relation {
	out := &relation{vars: append([]string(nil), rel.vars...), partVar: rel.partVar}
	var valVar string
	valTerm := tp.O
	if !keySubject {
		valTerm = tp.S
	}
	valCol := -1
	if valTerm.IsVar() {
		valVar = valTerm.Var
		valCol = rel.varIndex(valVar)
		if valCol < 0 {
			out.vars = append(out.vars, valVar)
		}
	}
	keyTerm := tp.S
	if !keySubject {
		keyTerm = tp.O
	}
	var keyConst uint32
	keyCol := -1
	if keyTerm.IsVar() {
		keyCol = rel.varIndex(keyTerm.Var)
	} else {
		keyConst = e.resources.Lookup(keyTerm.Value)
		if keyConst == 0 {
			return &relation{vars: out.vars, rows: make([][][]uint32, e.workers)}
		}
	}
	var valConst uint32
	if !valTerm.IsVar() {
		valConst = e.resources.Lookup(valTerm.Value)
		if valConst == 0 {
			return &relation{vars: out.vars, rows: make([][][]uint32, e.workers)}
		}
	}
	var preds []uint32
	var pVarCol = -1
	var pNew bool
	if tp.P.IsVar() {
		pVarCol = rel.varIndex(tp.P.Var)
		if pVarCol < 0 {
			pNew = true
			out.vars = append(out.vars, tp.P.Var)
		}
		for p := uint32(1); p <= uint32(e.predicates.Len()); p++ {
			preds = append(preds, p)
		}
	} else {
		p := e.predicates.Lookup(tp.P.Value)
		if p == 0 {
			return &relation{vars: out.vars, rows: make([][][]uint32, e.workers)}
		}
		preds = []uint32{p}
	}

	out.rows = make([][][]uint32, e.workers)
	tables := e.bySubj
	if !keySubject {
		tables = e.byObj
	}
	e.parallel(func(w int) {
		for _, row := range rel.rows[w] {
			key := keyConst
			if keyCol >= 0 {
				key = row[keyCol]
			}
			for _, p := range preds {
				if pVarCol >= 0 && row[pVarCol] != p {
					continue
				}
				t := &tables[w][p-1]
				pos, ok := t.lookup(key)
				if !ok {
					continue
				}
				emitOne := func(v uint32) {
					needVal := valCol < 0 && valVar != ""
					if !needVal && !pNew {
						out.rows[w] = append(out.rows[w], row)
						return
					}
					nr := make([]uint32, 0, len(row)+2)
					nr = append(nr, row...)
					if needVal {
						nr = append(nr, v)
					}
					if pNew {
						nr = append(nr, p)
					}
					out.rows[w] = append(out.rows[w], nr)
				}
				run := t.run(pos)
				switch {
				case valConst != 0:
					if containsSorted(run, valConst) {
						emitOne(valConst)
					}
				case valCol >= 0:
					if containsSorted(run, row[valCol]) {
						emitOne(row[valCol])
					}
				default:
					for _, v := range run {
						if valVar != "" && !e.allowed(domains, valVar, v) {
							continue
						}
						emitOne(v)
					}
				}
			}
		}
	})
	return out
}

// broadcastJoin gathers the pattern's rows on the master and broadcasts
// them to every worker for a local cross/filter join.
func (e *Engine) broadcastJoin(rel *relation, tp sparql.TriplePattern, domains varDomains) *relation {
	e.exchanges++ // the broadcast is an exchange too
	scanned := e.scanPattern(tp, domains)
	var gathered [][]uint32
	for _, ws := range scanned.rows {
		gathered = append(gathered, ws...)
	}
	out := &relation{vars: append([]string(nil), rel.vars...), partVar: rel.partVar}
	var extraCols []int
	for j, v := range scanned.vars {
		if rel.varIndex(v) < 0 {
			out.vars = append(out.vars, v)
			extraCols = append(extraCols, j)
		}
	}
	out.rows = make([][][]uint32, e.workers)
	e.parallel(func(w int) {
		for _, row := range rel.rows[w] {
			for _, prow := range gathered {
				ok := true
				for j, v := range scanned.vars {
					if c := rel.varIndex(v); c >= 0 && row[c] != prow[j] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				nr := append(append(make([]uint32, 0, len(row)+len(extraCols)), row...), pick(prow, extraCols)...)
				out.rows[w] = append(out.rows[w], nr)
			}
		}
	})
	return out
}

func pick(row []uint32, cols []int) []uint32 {
	out := make([]uint32, len(cols))
	for i, c := range cols {
		out[i] = row[c]
	}
	return out
}

func containsSorted(run []uint32, v uint32) bool {
	i := sort.Search(len(run), func(i int) bool { return run[i] >= v })
	return i < len(run) && run[i] == v
}

// parallel runs fn(w) for every worker and waits — every phase boundary is
// a synchronization barrier, which is the point of this baseline. Under
// SimulateParallel the workers run one at a time with per-worker timing so
// the barrier's parallel cost (its slowest worker) can be reported on
// under-provisioned hosts.
func (e *Engine) parallel(fn func(w int)) {
	if e.simulate {
		var sum, max time.Duration
		for w := 0; w < e.workers; w++ {
			start := time.Now()
			fn(w)
			d := time.Since(start)
			sum += d
			if d > max {
				max = d
			}
		}
		e.serialExcess += sum - max
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
