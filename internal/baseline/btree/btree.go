// Package btree implements a static, bulk-loaded, clustered B+ tree over
// triple keys with fixed-size pages. It is the storage substrate of the
// RDF-3X-like baseline: RDF-3X keeps all six triple permutations in
// clustered B+ trees and its processing is organized around disk pages even
// when the data is RAM-resident — the property the paper's single-thread
// comparison exercises. Page reads are counted so experiments can report
// page-touch behavior.
package btree

import "fmt"

// Key is a triple in some permutation order.
type Key [3]uint32

// Less reports lexicographic order.
func (k Key) Less(other Key) bool {
	for i := 0; i < 3; i++ {
		if k[i] != other[i] {
			return k[i] < other[i]
		}
	}
	return false
}

// DefaultPageSize is the number of keys per page. With 12-byte keys this
// approximates RDF-3X's 16 KiB pages (uncompressed).
const DefaultPageSize = 1024

// Tree is an immutable clustered B+ tree. Concurrent readers are safe as
// long as they use separate Cursors and the shared page-read counter is
// accepted to be approximate; the baseline engines are single-threaded.
type Tree struct {
	pageSize int
	// leaves[i] is the i-th leaf page, holding sorted keys.
	leaves [][]Key
	// levels[0] is the parents of the leaves, levels[len-1] is the root.
	// Each node stores the first key of each of its children; node i at
	// level l covers children [i*pageSize, (i+1)*pageSize) of level l-1.
	levels [][]Key

	pageReads uint64
}

// BulkLoad builds a tree from sorted, distinct keys. pageSize 0 selects
// DefaultPageSize.
func BulkLoad(sorted []Key, pageSize int) *Tree {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < 2 {
		panic(fmt.Sprintf("btree: page size %d too small", pageSize))
	}
	t := &Tree{pageSize: pageSize}
	for i := 1; i < len(sorted); i++ {
		if !sorted[i-1].Less(sorted[i]) {
			panic("btree: keys not sorted/distinct")
		}
	}
	for start := 0; start < len(sorted); start += pageSize {
		end := start + pageSize
		if end > len(sorted) {
			end = len(sorted)
		}
		page := make([]Key, end-start)
		copy(page, sorted[start:end])
		t.leaves = append(t.leaves, page)
	}
	// Build internal levels bottom-up until one node remains.
	child := make([]Key, len(t.leaves))
	for i, p := range t.leaves {
		child[i] = p[0]
	}
	for len(child) > 1 {
		var level []Key
		level = append(level, child...)
		t.levels = append(t.levels, level)
		parents := (len(child) + pageSize - 1) / pageSize
		next := make([]Key, parents)
		for i := 0; i < parents; i++ {
			next[i] = child[i*pageSize]
		}
		child = next
	}
	return t
}

// Len reports the number of keys.
func (t *Tree) Len() int {
	if len(t.leaves) == 0 {
		return 0
	}
	return (len(t.leaves)-1)*t.pageSize + len(t.leaves[len(t.leaves)-1])
}

// PageReads returns the number of page accesses performed so far.
func (t *Tree) PageReads() uint64 { return t.pageReads }

// ResetPageReads clears the page-access counter.
func (t *Tree) ResetPageReads() { t.pageReads = 0 }

// Height reports the number of levels (leaves excluded).
func (t *Tree) Height() int { return len(t.levels) }

// Cursor iterates keys in order from a seek position. The zero value is
// invalid; obtain cursors from Seek.
type Cursor struct {
	t    *Tree
	page int
	idx  int
}

// Seek positions a cursor at the first key >= lower, descending from the
// root and charging one page read per node visited.
func (t *Tree) Seek(lower Key) Cursor {
	if len(t.leaves) == 0 {
		return Cursor{t: t, page: 0, idx: 0}
	}
	// Descend from the top internal level, narrowing to a child index.
	childIdx := 0
	for l := len(t.levels) - 1; l >= 0; l-- {
		level := t.levels[l]
		lo := childIdx * t.pageSize
		hi := lo + t.pageSize
		if hi > len(level) {
			hi = len(level)
		}
		t.pageReads++
		// Find the last entry <= lower within [lo, hi): one before the
		// first entry strictly greater than lower.
		childIdx = lo + upperBound(level[lo:hi], lower) - 1
		if childIdx < lo {
			childIdx = lo
		}
	}
	t.pageReads++
	c := Cursor{t: t, page: childIdx}
	page := t.leaves[childIdx]
	c.idx = lowerBound(page, lower)
	if c.idx == len(page) {
		c.page++
		c.idx = 0
		if c.page < len(t.leaves) {
			t.pageReads++
		}
	}
	return c
}

// upperBound returns the index of the first key strictly greater than k.
func upperBound(page []Key, k Key) int {
	lo, hi := 0, len(page)
	for lo < hi {
		mid := (lo + hi) / 2
		if k.Less(page[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func lowerBound(page []Key, k Key) int {
	lo, hi := 0, len(page)
	for lo < hi {
		mid := (lo + hi) / 2
		if page[mid].Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Valid reports whether the cursor points at a key.
func (c *Cursor) Valid() bool {
	return c.page < len(c.t.leaves) && c.idx < len(c.t.leaves[c.page])
}

// Key returns the current key. The cursor must be Valid.
func (c *Cursor) Key() Key { return c.t.leaves[c.page][c.idx] }

// Next advances to the following key, charging a page read on page
// boundaries.
func (c *Cursor) Next() {
	c.idx++
	if c.idx >= len(c.t.leaves[c.page]) {
		c.page++
		c.idx = 0
		if c.page < len(c.t.leaves) {
			c.t.pageReads++
		}
	}
}

// SeekForward advances the cursor to the first key >= lower without a full
// root descent when the target is nearby — the page-granularity "sideways
// information passing" skip of RDF-3X: if the target is beyond the current
// page's range, skip whole pages using their first keys.
func (c *Cursor) SeekForward(lower Key) {
	if !c.Valid() {
		return
	}
	if lower.Less(c.Key()) || lower == c.Key() {
		return // already at or past lower
	}
	// Skip whole pages whose successor page still starts <= lower.
	for c.page+1 < len(c.t.leaves) {
		next := c.t.leaves[c.page+1]
		if next[0].Less(lower) || next[0] == lower {
			c.page++
			c.idx = 0
			c.t.pageReads++
			continue
		}
		break
	}
	page := c.t.leaves[c.page]
	c.idx = lowerBound(page[c.idx:], lower) + c.idx
	if c.idx >= len(page) {
		c.page++
		c.idx = 0
		if c.page < len(c.t.leaves) {
			c.t.pageReads++
		}
	}
}
