package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomKeys(rng *rand.Rand, n int) []Key {
	seen := map[Key]bool{}
	for len(seen) < n {
		seen[Key{uint32(rng.Intn(100)), uint32(rng.Intn(100)), uint32(rng.Intn(100))}] = true
	}
	keys := make([]Key, 0, n)
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

func collect(t *Tree, lower Key, limit int) []Key {
	var out []Key
	for c := t.Seek(lower); c.Valid() && len(out) < limit; c.Next() {
		out = append(out, c.Key())
	}
	return out
}

func TestBulkLoadAndFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, pageSize := range []int{2, 7, 64, 1024} {
		keys := randomKeys(rng, 500)
		tr := BulkLoad(keys, pageSize)
		if tr.Len() != len(keys) {
			t.Fatalf("pageSize %d: Len = %d, want %d", pageSize, tr.Len(), len(keys))
		}
		got := collect(tr, Key{}, len(keys)+1)
		if len(got) != len(keys) {
			t.Fatalf("pageSize %d: scan found %d keys, want %d", pageSize, len(got), len(keys))
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("pageSize %d: key %d = %v, want %v", pageSize, i, got[i], keys[i])
			}
		}
	}
}

func TestSeekSemantics(t *testing.T) {
	keys := []Key{{1, 0, 0}, {1, 5, 2}, {3, 0, 0}, {3, 0, 9}, {7, 7, 7}}
	tr := BulkLoad(keys, 2)
	cases := []struct {
		lower Key
		want  Key
		valid bool
	}{
		{Key{0, 0, 0}, Key{1, 0, 0}, true},
		{Key{1, 0, 0}, Key{1, 0, 0}, true},
		{Key{1, 0, 1}, Key{1, 5, 2}, true},
		{Key{3, 0, 0}, Key{3, 0, 0}, true},
		{Key{4, 0, 0}, Key{7, 7, 7}, true},
		{Key{7, 7, 8}, Key{}, false},
	}
	for _, c := range cases {
		cur := tr.Seek(c.lower)
		if cur.Valid() != c.valid {
			t.Fatalf("Seek(%v).Valid = %v, want %v", c.lower, cur.Valid(), c.valid)
		}
		if c.valid && cur.Key() != c.want {
			t.Errorf("Seek(%v) = %v, want %v", c.lower, cur.Key(), c.want)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := BulkLoad(nil, 16)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if c := tr.Seek(Key{1, 2, 3}); c.Valid() {
		t.Error("Seek on empty tree is Valid")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for _, tc := range []struct {
		name string
		keys []Key
		page int
	}{
		{"unsorted", []Key{{2, 0, 0}, {1, 0, 0}}, 16},
		{"duplicate", []Key{{1, 0, 0}, {1, 0, 0}}, 16},
		{"tiny page", []Key{{1, 0, 0}}, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			BulkLoad(tc.keys, tc.page)
		})
	}
}

func TestSeekForward(t *testing.T) {
	var keys []Key
	for i := 0; i < 1000; i++ {
		keys = append(keys, Key{uint32(i), 0, 0})
	}
	tr := BulkLoad(keys, 16)
	c := tr.Seek(Key{0, 0, 0})
	c.SeekForward(Key{500, 0, 0})
	if !c.Valid() || c.Key() != (Key{500, 0, 0}) {
		t.Fatalf("SeekForward landed on %v", c.Key())
	}
	// Backwards request is a no-op.
	c.SeekForward(Key{100, 0, 0})
	if c.Key() != (Key{500, 0, 0}) {
		t.Errorf("backward SeekForward moved to %v", c.Key())
	}
	// Beyond the end invalidates.
	c.SeekForward(Key{2000, 0, 0})
	if c.Valid() {
		t.Error("SeekForward beyond end still Valid")
	}
}

func TestPageReadAccounting(t *testing.T) {
	var keys []Key
	for i := 0; i < 10000; i++ {
		keys = append(keys, Key{uint32(i), 0, 0})
	}
	tr := BulkLoad(keys, 64)
	tr.ResetPageReads()
	tr.Seek(Key{5000, 0, 0})
	perSeek := tr.PageReads()
	if perSeek == 0 || perSeek > uint64(tr.Height()+2) {
		t.Errorf("Seek touched %d pages, want ~height %d", perSeek, tr.Height()+1)
	}
	// A sequential scan touches each leaf page once.
	tr.ResetPageReads()
	for c := tr.Seek(Key{}); c.Valid(); c.Next() {
	}
	leafPages := uint64((10000 + 63) / 64)
	if got := tr.PageReads(); got < leafPages || got > leafPages+uint64(tr.Height())+2 {
		t.Errorf("full scan touched %d pages, want about %d", got, leafPages)
	}
}

// Property: Seek(lower) always lands on the first key >= lower, and
// iteration from it yields exactly the sorted suffix.
func TestQuickSeekEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := randomKeys(rng, 1+rng.Intn(400))
		pageSizes := []int{2, 3, 16, 128}
		tr := BulkLoad(keys, pageSizes[rng.Intn(len(pageSizes))])
		for trial := 0; trial < 50; trial++ {
			lower := Key{uint32(rng.Intn(102)), uint32(rng.Intn(102)), uint32(rng.Intn(102))}
			i := sort.Search(len(keys), func(i int) bool { return !keys[i].Less(lower) })
			c := tr.Seek(lower)
			if i == len(keys) {
				if c.Valid() {
					return false
				}
				continue
			}
			if !c.Valid() || c.Key() != keys[i] {
				return false
			}
			// SeekForward must agree with a fresh Seek for any target
			// beyond the current position.
			target := Key{lower[0] + uint32(rng.Intn(5)), uint32(rng.Intn(102)), uint32(rng.Intn(102))}
			j := sort.Search(len(keys), func(i int) bool { return !keys[i].Less(target) })
			if j >= i && j > 0 { // only forward targets
				c.SeekForward(target)
				if j == len(keys) {
					if c.Valid() {
						return false
					}
				} else if j >= i {
					if !c.Valid() || c.Key() != keys[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
