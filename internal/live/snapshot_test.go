package live

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"parj/internal/rdf"
	"parj/internal/store"
)

// decodedTriples walks a store and decodes every triple to strings.
func decodedTriples(st *store.Store) map[rdf.Triple]bool {
	out := make(map[rdf.Triple]bool, st.NumTriples())
	st.Triples(func(s, p, o uint32) bool {
		out[rdf.Triple{
			S: st.Resources.Decode(s),
			P: st.Predicates.Decode(p),
			O: st.Resources.Decode(o),
		}] = true
		return true
	})
	return out
}

// TestSnapshotUnderWritesEqualsReconciled is the snapshot-under-writes
// property: a snapshot taken from a view with pending unreconciled deltas
// must be byte-identical to the snapshot taken after reconciling exactly
// those writes — a replica warmed from either stream ends up in the same
// state, so the snapshot path never needs to quiesce writers. Seeded rounds
// cover duplicate inserts, deletes, delete-then-reinsert and novel terms.
func TestSnapshotUnderWritesEqualsReconciled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	terms := func(prefix string, n int) string {
		return fmt.Sprintf("<%s%d>", prefix, rng.Intn(n))
	}
	for round := 0; round < 25; round++ {
		var base []rdf.Triple
		seen := map[rdf.Triple]bool{}
		for i := 0; i < 3+rng.Intn(15); i++ {
			tr := rdf.Triple{S: terms("s", 6), P: terms("p", 3), O: terms("o", 6)}
			if !seen[tr] {
				seen[tr] = true
				base = append(base, tr)
			}
		}
		st := store.LoadTriples(base, store.BuildOptions{BuildPosIndex: round%2 == 0})
		h := New(st, nil, store.InferBuildOptions(st))

		for b := 0; b < 1+rng.Intn(4); b++ {
			var ins, dels []rdf.Triple
			for i := 0; i < 1+rng.Intn(4); i++ {
				switch rng.Intn(4) {
				case 0: // novel terms
					ins = append(ins, rdf.Triple{S: terms("nv-s", 4), P: terms("nv-p", 2), O: terms("nv-o", 4)})
				case 1: // duplicate insert of a base triple
					ins = append(ins, base[rng.Intn(len(base))])
				case 2: // delete, sometimes with same-batch reinsert
					v := base[rng.Intn(len(base))]
					dels = append(dels, v)
					if rng.Intn(2) == 0 {
						ins = append(ins, v)
					}
				default: // delete of an absent triple
					dels = append(dels, rdf.Triple{S: terms("gone", 3), P: terms("p", 3), O: terms("o", 6)})
				}
			}
			if _, err := h.Apply(0, ins, dels); err != nil {
				t.Fatalf("round %d: apply: %v", round, err)
			}
		}

		v := h.View()
		if v.Pending() == 0 {
			continue // nothing pending this round; the property is trivial
		}
		var under bytes.Buffer
		if err := v.Store().Save(&under); err != nil {
			t.Fatalf("round %d: save under writes: %v", round, err)
		}
		rv := h.Reconcile()
		if rv.Pending() != 0 {
			t.Fatalf("round %d: pending after reconcile = %d", round, rv.Pending())
		}
		var after bytes.Buffer
		if err := rv.Base().Save(&after); err != nil {
			t.Fatalf("round %d: save after reconcile: %v", round, err)
		}
		if !bytes.Equal(under.Bytes(), after.Bytes()) {
			t.Fatalf("round %d: snapshot under writes (%d bytes) differs from snapshot after reconcile (%d bytes)",
				round, under.Len(), after.Len())
		}

		// And the loaded snapshot is the reconciled store, triple for triple.
		loaded, err := store.LoadSnapshot(bytes.NewReader(under.Bytes()))
		if err != nil {
			t.Fatalf("round %d: load: %v", round, err)
		}
		got, want := decodedTriples(loaded), decodedTriples(rv.Base())
		if len(got) != len(want) {
			t.Fatalf("round %d: loaded %d triples, reconciled store has %d", round, len(got), len(want))
		}
		for tr := range want {
			if !got[tr] {
				t.Fatalf("round %d: loaded snapshot missing %v", round, tr)
			}
		}
	}
}
