// Package live turns the immutable PARJ store into a mutable one without
// touching the engine's hot paths. It is the epoch machinery of the write
// path:
//
//   - Writes accumulate in a store.Delta (sorted adds and tombstones per
//     predicate, mirroring the CSR layout). Every write batch publishes a
//     new View — an immutable pair (base store, frozen delta) plus a
//     monotonically increasing version.
//   - Queries pin one View for their whole plan+execute lifetime. A view
//     with an empty delta hands back the base store unchanged, so read-only
//     workloads pay exactly one atomic load and one branch per query — the
//     probe loops never see an overlay. A view with pending writes lazily
//     materializes the merged effective store (base ∖ dels ∪ adds) once,
//     memoized, and the whole engine — optimizer, pipeline, WCOJ, morsel
//     scheduler — runs on it unchanged, which is what makes the mutable
//     store oracle-exact by construction.
//   - A reconciler (synchronous via Reconcile, or a background goroutine
//     once the pending-op threshold is crossed) promotes the memoized merge
//     to the new base, prunes the delta that accumulated meanwhile down to
//     its residual, and atomically swaps the epoch. In-flight queries keep
//     their pinned views alive through the garbage collector — the same
//     pattern internal/cluster/topology.go uses for routing epochs.
//
// The dictionaries are shared across all epochs and append-only: IDs are
// stable forever, so a snapshot, a replica replay, or an old view can never
// see a term's ID change under it.
package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"parj/internal/rdf"
	"parj/internal/stats"
	"parj/internal/store"
	"parj/internal/wal"
)

// ErrSeqGap reports a sequenced write that would skip ahead of the locally
// applied write stream — the replica missed at least one batch and must be
// resynced (warm-from + replay) before it can serve again.
var ErrSeqGap = errors.New("live: write sequence gap")

// View is one immutable epoch of the store: a base CSR store plus a frozen
// delta overlay. Safe for concurrent use; queries pin one view for both
// planning and execution so constants, plans and statistics agree.
type View struct {
	version uint64
	seq     uint64
	base    *store.Store
	delta   *store.Delta
	bstats  *stats.Stats
	opts    store.BuildOptions

	once   sync.Once
	eff    *store.Store
	estats *stats.Stats
}

// Version is the monotonically increasing epoch number; it advances on
// every published write batch and every reconciliation. Prepared queries
// replan when it moves.
func (v *View) Version() uint64 { return v.version }

// Seq is the last applied write-batch sequence number.
func (v *View) Seq() uint64 { return v.seq }

// Pending reports the write verdicts not yet reconciled into the base.
func (v *View) Pending() int { return v.delta.Ops() }

// Store returns the effective store of this epoch. With no pending writes
// this is the base store itself — the zero-cost read-only path. Otherwise
// the merged store is materialized once and memoized; concurrent callers
// share the materialization.
func (v *View) Store() *store.Store {
	if v.delta.Empty() {
		return v.base
	}
	v.materialize()
	return v.eff
}

// Stats returns optimizer statistics consistent with Store().
func (v *View) Stats() *stats.Stats {
	if v.delta.Empty() {
		return v.bstats
	}
	v.materialize()
	return v.estats
}

// Base returns the epoch's base store without materializing the overlay.
func (v *View) Base() *store.Store { return v.base }

// ApproxTriples estimates the effective triple count without forcing a
// merge: base plus net adds minus net tombstones. Exact when no writes are
// pending; under pending deltas an add already present in the base (or a
// tombstone absent from it) skews it until the next reconcile. Health
// endpoints use this so a monitoring probe never pays for a merge.
func (v *View) ApproxTriples() int {
	adds, dels := v.delta.Counts()
	return v.base.NumTriples() + adds - dels
}

func (v *View) materialize() {
	v.once.Do(func() {
		v.eff = store.ApplyDelta(v.base, v.delta, v.opts)
		v.estats = stats.NewDerived(v.eff, v.bstats)
	})
}

// Handle is the mutable façade over a chain of immutable views. All writes
// are serialized through it; reads are a single atomic pointer load.
type Handle struct {
	opts store.BuildOptions

	mu  sync.Mutex // serializes writers and view publication
	seq uint64
	cur atomic.Pointer[View]

	recMu sync.Mutex // serializes reconciliations

	autoOps atomic.Int64 // pending-op threshold for background reconcile; 0 = off
	wg      sync.WaitGroup

	wal *wal.Log // nil when the handle is volatile
}

// New wraps a built store. ss may be nil (statistics are then computed
// here). opts should be the options the store was built with so merged
// tables keep the same physical shape; store.InferBuildOptions recovers the
// index choice from the store itself.
func New(base *store.Store, ss *stats.Stats, opts store.BuildOptions) *Handle {
	if ss == nil {
		ss = stats.New(base)
	}
	h := &Handle{opts: opts}
	h.cur.Store(&View{version: 1, base: base, delta: &store.Delta{}, bstats: ss, opts: opts})
	return h
}

// View returns the current epoch. Callers must use one View per query for
// both planning and execution.
func (h *Handle) View() *View { return h.cur.Load() }

// Seq returns the last applied write-batch sequence number.
func (h *Handle) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// Pending reports the write verdicts awaiting reconciliation.
func (h *Handle) Pending() int { return h.View().Pending() }

// SeedSeq positions the handle in an existing write stream: a replica
// warmed from a peer snapshot that already contains batches up to seq
// resumes the stream there — the next Apply must carry seq+1. Only valid
// before any local writes.
func (h *Handle) SeedSeq(seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seq != 0 || seq == 0 {
		return
	}
	h.seq = seq
	v := h.cur.Load()
	h.cur.Store(&View{
		version: v.version + 1,
		seq:     seq,
		base:    v.base,
		delta:   v.delta,
		bstats:  v.bstats,
		opts:    v.opts,
	})
}

// AttachWAL makes every subsequent Apply durable: the batch is enqueued
// to the log under the writer lock (preserving sequence order) and Apply
// returns only once the log's sync policy has acknowledged it. The
// handle must already be positioned after the log's last record — attach
// happens at the end of recovery, after SeedSeq and replay.
func (h *Handle) AttachWAL(l *wal.Log) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.wal = l
}

// WAL returns the attached log, or nil for a volatile handle.
func (h *Handle) WAL() *wal.Log {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.wal
}

// SetAutoReconcile arms (or, with 0, disarms) the background reconciler:
// once a published view carries at least ops pending verdicts, one
// goroutine merges the frozen delta into a fresh base and swaps the epoch.
// At most one background reconcile runs at a time.
func (h *Handle) SetAutoReconcile(ops int) { h.autoOps.Store(int64(ops)) }

// Quiesce blocks until any background reconciliation in flight has
// finished. Callers must stop issuing writes first.
func (h *Handle) Quiesce() { h.wg.Wait() }

// Apply records one write batch — deletes first, then inserts, the order
// every replica must share for dictionary determinism — and publishes the
// new view.
//
// seq sequences the batch for replication: 0 means "next" (the unsequenced
// single-node path), a value ≤ the applied sequence is an idempotent replay
// and a no-op, a value that would skip ahead returns ErrSeqGap. The applied
// sequence is returned.
//
// Deleting a triple containing a term the dictionary has never seen is a
// no-op (the triple cannot exist) and — deliberately — does not pollute the
// dictionary. Inserts encode new terms; the dictionaries are append-only
// and shared with every existing view, which is safe because an ID, once
// assigned, never changes.
//
// With a WAL attached the batch is logged before the view is published
// and Apply blocks until the log's sync policy acknowledges it. The
// enqueue happens under the writer lock (log order = sequence order) but
// the fsync wait happens outside it, so sequential writers coalesce into
// one group commit. A failed enqueue leaves handle state untouched; a
// failed fsync is returned after the view is already visible — the store
// has the write, durability does not, and the caller must treat the
// replica as failed (the log is sticky-poisoned from then on).
func (h *Handle) Apply(seq uint64, inserts, deletes []rdf.Triple) (uint64, error) {
	h.mu.Lock()
	switch {
	case seq == 0:
		seq = h.seq + 1
	case seq <= h.seq:
		cur := h.seq
		h.mu.Unlock()
		return cur, nil
	case seq != h.seq+1:
		cur := h.seq
		h.mu.Unlock()
		return cur, fmt.Errorf("%w: applied %d, got %d", ErrSeqGap, cur, seq)
	}
	var commit *wal.Commit
	if h.wal != nil {
		c, err := h.wal.Enqueue(wal.Record{Seq: seq, Inserts: inserts, Deletes: deletes})
		if err != nil {
			cur := h.seq
			h.mu.Unlock()
			return cur, fmt.Errorf("live: wal append %d: %w", seq, err)
		}
		commit = c
	}
	v := h.cur.Load()
	nd := v.delta.Clone()
	res, preds := v.base.Resources, v.base.Predicates
	for _, t := range deletes {
		s, p, o := res.Lookup(t.S), preds.Lookup(t.P), res.Lookup(t.O)
		if s == 0 || p == 0 || o == 0 {
			continue
		}
		nd.Delete(s, p, o)
	}
	for _, t := range inserts {
		nd.Insert(res.Encode(t.S), preds.Encode(t.P), res.Encode(t.O))
	}
	h.seq = seq
	h.cur.Store(&View{
		version: v.version + 1,
		seq:     seq,
		base:    v.base,
		delta:   nd,
		bstats:  v.bstats,
		opts:    v.opts,
	})
	if n := h.autoOps.Load(); n > 0 && int64(nd.Ops()) >= n && h.recMu.TryLock() {
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer h.recMu.Unlock()
			h.reconcile()
		}()
	}
	h.mu.Unlock()
	if commit != nil {
		if err := commit.Wait(); err != nil {
			return seq, fmt.Errorf("live: wal commit %d: %w", seq, err)
		}
	}
	return seq, nil
}

// Insert applies one insert batch (sequence "next").
func (h *Handle) Insert(triples []rdf.Triple) uint64 {
	seq, _ := h.Apply(0, triples, nil)
	return seq
}

// Delete applies one delete batch (sequence "next").
func (h *Handle) Delete(triples []rdf.Triple) uint64 {
	seq, _ := h.Apply(0, nil, triples)
	return seq
}

// Reconcile synchronously merges the pending delta into a fresh base store
// and swaps the epoch. Writes that land while the merge runs stay pending:
// they are pruned to their residual against the new base and carried into
// the new epoch's overlay. In-flight queries keep the views they pinned.
// Returns the view current after the swap.
func (h *Handle) Reconcile() *View {
	h.recMu.Lock()
	defer h.recMu.Unlock()
	return h.reconcile()
}

// reconcile runs with recMu held. The expensive merge happens outside the
// writer lock, so writes continue to land while it runs.
func (h *Handle) reconcile() *View {
	h.mu.Lock()
	v := h.cur.Load()
	h.mu.Unlock()
	if v.delta.Empty() {
		return v
	}
	merged := v.Store() // memoized: a query may already have paid for it
	mergedStats := v.Stats()

	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.cur.Load()
	nv := &View{
		version: cur.version + 1,
		seq:     h.seq,
		base:    merged,
		delta:   cur.delta.Prune(merged),
		bstats:  mergedStats,
		opts:    h.opts,
	}
	h.cur.Store(nv)
	return nv
}
