package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"parj/internal/rdf"
	"parj/internal/store"
)

var fixture = []rdf.Triple{
	{S: "<a>", P: "<p>", O: "<x>"},
	{S: "<a>", P: "<p>", O: "<y>"},
	{S: "<b>", P: "<p>", O: "<x>"},
	{S: "<b>", P: "<q>", O: "<z>"},
}

func newHandle(t *testing.T) *Handle {
	t.Helper()
	st := store.LoadTriples(fixture, store.BuildOptions{})
	return New(st, nil, store.BuildOptions{})
}

// has resolves a term triple against a view's effective store.
func has(v *View, s, p, o string) bool {
	st := v.Store()
	sid, pid, oid := st.Resources.Lookup(s), st.Predicates.Lookup(p), st.Resources.Lookup(o)
	return sid != 0 && pid != 0 && oid != 0 && st.HasTriple(sid, pid, oid)
}

func TestViewPinning(t *testing.T) {
	h := newHandle(t)
	v1 := h.View()
	if v1.Version() != 1 || v1.Pending() != 0 {
		t.Fatalf("initial view: version=%d pending=%d", v1.Version(), v1.Pending())
	}
	if v1.Store() != v1.Base() {
		t.Fatal("empty-delta view must hand back the base store itself")
	}

	h.Insert([]rdf.Triple{{S: "<c>", P: "<p>", O: "<x>"}})
	h.Delete([]rdf.Triple{{S: "<a>", P: "<p>", O: "<y>"}})

	// The pinned view is frozen at its epoch.
	if has(v1, "<c>", "<p>", "<x>") || !has(v1, "<a>", "<p>", "<y>") {
		t.Fatal("pinned view observed later writes")
	}
	// The current view sees both writes.
	v2 := h.View()
	if !has(v2, "<c>", "<p>", "<x>") || has(v2, "<a>", "<p>", "<y>") {
		t.Fatal("current view missing applied writes")
	}
	if v2.Version() <= v1.Version() {
		t.Fatalf("version did not advance: %d -> %d", v1.Version(), v2.Version())
	}
	if v2.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", v2.Pending())
	}
	if got := v2.ApproxTriples(); got != len(fixture) {
		t.Fatalf("ApproxTriples = %d, want %d (one add, one del)", got, len(fixture))
	}
}

func TestDeleteUnknownTermsIsNoOp(t *testing.T) {
	h := newHandle(t)
	h.Delete([]rdf.Triple{{S: "<never>", P: "<seen>", O: "<before>"}})
	v := h.View()
	if v.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", v.Pending())
	}
	// Deliberately: deleting unknown terms must not pollute the dictionary.
	if v.Base().Resources.Lookup("<never>") != 0 {
		t.Fatal("delete of unknown term grew the resource dictionary")
	}
}

func TestSeqSemantics(t *testing.T) {
	h := newHandle(t)
	ins := []rdf.Triple{{S: "<c>", P: "<p>", O: "<x>"}}

	seq, err := h.Apply(1, ins, nil)
	if err != nil || seq != 1 {
		t.Fatalf("Apply(1) = %d, %v", seq, err)
	}
	// Replay is an idempotent no-op.
	before := h.View().Pending()
	if seq, err = h.Apply(1, ins, nil); err != nil || seq != 1 {
		t.Fatalf("replay Apply(1) = %d, %v", seq, err)
	}
	if h.View().Pending() != before {
		t.Fatal("idempotent replay changed the delta")
	}
	// A gap is refused.
	if _, err = h.Apply(3, ins, nil); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("Apply(3) err = %v, want ErrSeqGap", err)
	}
	// Seq 0 means "next".
	if seq, err = h.Apply(0, ins, nil); err != nil || seq != 2 {
		t.Fatalf("Apply(0) = %d, %v", seq, err)
	}
	if h.Seq() != 2 {
		t.Fatalf("Seq = %d, want 2", h.Seq())
	}
}

func TestSeedSeq(t *testing.T) {
	h := newHandle(t)
	h.SeedSeq(7)
	if h.Seq() != 7 || h.View().Seq() != 7 {
		t.Fatalf("after SeedSeq(7): handle=%d view=%d", h.Seq(), h.View().Seq())
	}
	if _, err := h.Apply(8, []rdf.Triple{{S: "<c>", P: "<p>", O: "<x>"}}, nil); err != nil {
		t.Fatalf("Apply(8) after seed: %v", err)
	}
	// Seeding after writes is refused (stream already in progress).
	h2 := newHandle(t)
	h2.Insert([]rdf.Triple{{S: "<c>", P: "<p>", O: "<x>"}})
	h2.SeedSeq(9)
	if h2.Seq() != 1 {
		t.Fatalf("SeedSeq after writes moved seq to %d", h2.Seq())
	}
}

func TestReconcilePromotesAndPrunes(t *testing.T) {
	h := newHandle(t)
	h.Insert([]rdf.Triple{{S: "<c>", P: "<p>", O: "<x>"}})
	h.Delete([]rdf.Triple{{S: "<b>", P: "<q>", O: "<z>"}})

	v := h.Reconcile()
	if v.Pending() != 0 {
		t.Fatalf("pending after reconcile = %d", v.Pending())
	}
	if v.Store() != v.Base() {
		t.Fatal("reconciled view must serve its base directly")
	}
	if !has(v, "<c>", "<p>", "<x>") || has(v, "<b>", "<q>", "<z>") {
		t.Fatal("reconciled base missing the merged writes")
	}
	if v.Base().NumTriples() != len(fixture) {
		t.Fatalf("reconciled base has %d triples, want %d", v.Base().NumTriples(), len(fixture))
	}
	// Reconcile with nothing pending is a no-op returning the same view.
	if v2 := h.Reconcile(); v2 != v {
		t.Fatal("empty reconcile built a new epoch")
	}
}

func TestReconcileKeepsLateWrites(t *testing.T) {
	h := newHandle(t)
	h.Insert([]rdf.Triple{{S: "<c>", P: "<p>", O: "<x>"}})
	// Force the merge to be memoized on the pre-write view, then land more
	// writes before reconciling — they must survive as the residual.
	v := h.View()
	_ = v.Store()
	h.Insert([]rdf.Triple{{S: "<d>", P: "<p>", O: "<x>"}})
	h.Delete([]rdf.Triple{{S: "<c>", P: "<p>", O: "<x>"}}) // delete a pair the merge contains

	nv := h.Reconcile()
	if has(nv, "<c>", "<p>", "<x>") {
		t.Fatal("delete issued after the merge was lost (resurrection)")
	}
	if !has(nv, "<d>", "<p>", "<x>") {
		t.Fatal("insert issued after the merge was lost")
	}
	// Drain the residual: a second reconcile leaves a clean base.
	final := h.Reconcile()
	if final.Pending() != 0 {
		t.Fatalf("pending after second reconcile = %d", final.Pending())
	}
}

func TestAutoReconcile(t *testing.T) {
	h := newHandle(t)
	h.SetAutoReconcile(3)
	for i := 0; i < 3; i++ {
		h.Insert([]rdf.Triple{{S: fmt.Sprintf("<n%d>", i), P: "<p>", O: "<x>"}})
	}
	h.Quiesce()
	v := h.View()
	if v.Pending() != 0 {
		t.Fatalf("pending after auto reconcile = %d", v.Pending())
	}
	if v.Base().NumTriples() != len(fixture)+3 {
		t.Fatalf("base triples = %d, want %d", v.Base().NumTriples(), len(fixture)+3)
	}
}

// TestConcurrentWritersAndReaders exercises the epoch machinery under the
// race detector: writers, readers materializing views, and reconcilers all
// run concurrently; afterwards the final state matches a serial oracle.
func TestConcurrentWritersAndReaders(t *testing.T) {
	h := newHandle(t)
	h.SetAutoReconcile(8)

	const writers = 4
	const batches = 25
	var writeWg, readWg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: pin views, force materialization, check internal consistency.
	for r := 0; r < 3; r++ {
		readWg.Add(1)
		go func() {
			defer readWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := h.View()
				st := v.Store()
				if st.NumTriples() < 0 {
					t.Error("impossible triple count")
					return
				}
				_ = v.Stats()
			}
		}()
	}

	// Writers: disjoint subject spaces so the final state is deterministic.
	for w := 0; w < writers; w++ {
		writeWg.Add(1)
		go func(w int) {
			defer writeWg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < batches; i++ {
				s := fmt.Sprintf("<w%d-s%d>", w, i)
				h.Insert([]rdf.Triple{{S: s, P: "<p>", O: "<x>"}})
				if rng.Intn(3) == 0 {
					h.Delete([]rdf.Triple{{S: s, P: "<p>", O: "<x>"}})
					h.Insert([]rdf.Triple{{S: s, P: "<p>", O: "<x>"}}) // reinsert
				}
			}
		}(w)
	}

	// A competing explicit reconciler.
	writeWg.Add(1)
	go func() {
		defer writeWg.Done()
		for i := 0; i < 10; i++ {
			h.Reconcile()
		}
	}()

	writeWg.Wait()
	close(stop)
	readWg.Wait()
	h.Quiesce()

	v := h.Reconcile()
	want := len(fixture) + writers*batches
	if v.Base().NumTriples() != want {
		t.Fatalf("final triples = %d, want %d", v.Base().NumTriples(), want)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < batches; i++ {
			if !has(v, fmt.Sprintf("<w%d-s%d>", w, i), "<p>", "<x>") {
				t.Fatalf("missing triple from writer %d batch %d", w, i)
			}
		}
	}
}
