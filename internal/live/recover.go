package live

import (
	"errors"
	"fmt"
	"io"

	"parj/internal/store"
	"parj/internal/wal"
)

// recover.go — the recovery protocol that pairs the WAL with snapshot
// checkpoints:
//
//	state = newest loadable checkpoint + replay of the WAL suffix.
//
// A checkpoint file is a v2 store snapshot whose name records the write
// sequence it covers. Loading is CRC-verified end to end; a checkpoint
// that fails its checksum falls back to the previous one (the log keeps
// two) with a correspondingly longer replay. Replaying re-encodes novel
// terms in the exact order the original process did, so recovered
// dictionary IDs — and therefore dictionary-encoded shard results — are
// byte-identical to the pre-crash store.

// OpenDurable recovers a handle from log: it loads the newest loadable
// checkpoint (falling back past corrupt ones), seeds the handle at the
// checkpoint's sequence, replays the log suffix, and attaches the log so
// subsequent writes are journaled.
//
// seed supplies the base state for a log with no checkpoint — the first
// boot. It returns the store and the write sequence it embeds (non-zero
// for a peer snapshot that carries a stream position); nil means start
// empty. When the seed is non-trivial an initial checkpoint is cut
// immediately, so seed data survives a crash that precedes the first
// explicit checkpoint.
func OpenDurable(log *wal.Log, seed func() (*store.Store, uint64, error), opts store.BuildOptions) (*Handle, error) {
	var base *store.Store
	var startSeq uint64
	loaded := false
	var fallback error
	for _, ckSeq := range log.Checkpoints() {
		rc, err := log.OpenCheckpoint(ckSeq)
		if err != nil {
			fallback = errors.Join(fallback, err)
			continue
		}
		st, err := store.LoadSnapshot(rc)
		rc.Close()
		if err != nil {
			if errors.Is(err, store.ErrCorruptSnapshot) {
				// Latent media damage; the previous checkpoint still pairs
				// with a replayable suffix.
				fallback = errors.Join(fallback, fmt.Errorf("checkpoint %d: %w", ckSeq, err))
				continue
			}
			return nil, fmt.Errorf("live: load checkpoint %d: %w", ckSeq, err)
		}
		base, startSeq, loaded = st, ckSeq, true
		break
	}
	if !loaded {
		if fallback != nil {
			return nil, fmt.Errorf("live: no loadable checkpoint: %w", fallback)
		}
		if seed != nil {
			st, seq, err := seed()
			if err != nil {
				return nil, fmt.Errorf("live: seed durable store: %w", err)
			}
			base, startSeq = st, seq
		}
		if base == nil {
			base = store.LoadTriples(nil, opts)
		}
	}
	// The log must reach back to the recovered base: a first record past
	// startSeq+1 means pruning outran the surviving checkpoints.
	if first := log.FirstSeq(); first != 0 && first > startSeq+1 {
		return nil, fmt.Errorf("%w: checkpoint covers %d but log starts at %d", wal.ErrCorruptWAL, startSeq, first)
	}

	h := New(base, nil, opts)
	h.SeedSeq(startSeq)
	err := log.Replay(startSeq+1, func(rec wal.Record) error {
		_, err := h.Apply(rec.Seq, rec.Inserts, rec.Deletes)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("live: replay wal: %w", err)
	}
	// A checkpoint can cover batches the log no longer holds — tail damage
	// truncated past an already-checkpointed record. Fast-forward the
	// append position so the next write extends the recovered state.
	if err := log.AlignTo(h.Seq()); err != nil {
		return nil, fmt.Errorf("live: align wal: %w", err)
	}
	h.AttachWAL(log)
	if !loaded && base.NumTriples() > 0 {
		// First boot from a seed: checkpoint it before acknowledging
		// anything, or a crash would leave a log that starts mid-stream.
		if err := Checkpoint(h, log); err != nil {
			return nil, fmt.Errorf("live: initial checkpoint: %w", err)
		}
	}
	return h, nil
}

// Checkpoint publishes the handle's current view as a checkpoint paired
// with its write sequence, pruning log segments the snapshot covers. The
// store keeps serving — and keeps accepting writes — throughout; a batch
// landing mid-save stays in the log suffix the checkpoint name points
// past, replayed on the next recovery.
func Checkpoint(h *Handle, log *wal.Log) error {
	v := h.View()
	return log.Checkpoint(v.Seq(), func(w io.Writer) error {
		return v.Store().Save(w)
	})
}

// DurabilityStats describes a handle's durable position for health
// endpoints; the zero value means "volatile handle".
type DurabilityStats struct {
	Enabled       bool   `json:"enabled"`
	Seq           uint64 `json:"seq"`            // last applied batch
	DurableSeq    uint64 `json:"durable_seq"`    // last fsync-covered batch
	FirstSeq      uint64 `json:"first_seq"`      // oldest replayable record
	CheckpointSeq uint64 `json:"checkpoint_seq"` // newest checkpoint position
	Segments      int    `json:"segments"`       // live WAL segment files
}

// Durability reports the handle's durable position.
func (h *Handle) Durability() DurabilityStats {
	l := h.WAL()
	if l == nil {
		return DurabilityStats{}
	}
	st := l.Stats()
	return DurabilityStats{
		Enabled:       true,
		Seq:           h.Seq(),
		DurableSeq:    st.DurableSeq,
		FirstSeq:      st.FirstSeq,
		CheckpointSeq: st.CheckpointSeq,
		Segments:      st.Segments,
	}
}
