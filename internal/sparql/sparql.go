// Package sparql implements the SPARQL subset PARJ evaluates: SELECT
// queries over Basic Graph Patterns (§1 of the paper).
//
// Supported grammar:
//
//	query    := prefix* "SELECT" ("DISTINCT")? ("*" | var+) "WHERE" "{" bgp "}"
//	            ("ORDER" "BY" orderKey+)? ("LIMIT" int)? ("OFFSET" int)?
//	orderKey := var | "ASC" "(" var ")" | "DESC" "(" var ")"
//	prefix   := "PREFIX" pname ":" iri
//	bgp      := pattern ("." pattern)* (".")?
//	pattern  := term term term
//	term     := var | iri | prefixedName | literal | "a"
//
// Constants are kept in N-Triples surface syntax (IRIs keep their angle
// brackets), matching the dictionary encoding of package store.
package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

// RDFType is the IRI the keyword "a" abbreviates.
const RDFType = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"

// Term is a variable or a constant in a triple pattern.
type Term struct {
	// Var holds the variable name without the leading '?'; empty for
	// constants.
	Var string
	// Value holds the constant in N-Triples syntax; empty for variables.
	Value string
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return "?" + t.Var
	}
	return t.Value
}

// Variable constructs a variable term.
func Variable(name string) Term { return Term{Var: name} }

// Constant constructs a constant term from N-Triples surface syntax.
func Constant(value string) Term { return Term{Value: value} }

// TriplePattern is one pattern of a BGP.
type TriplePattern struct {
	S, P, O Term
}

func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// Vars returns the distinct variable names of the pattern, in S,P,O order.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range []Term{tp.S, tp.P, tp.O} {
		if t.IsVar() && !seen[t.Var] {
			out = append(out, t.Var)
			seen[t.Var] = true
		}
	}
	return out
}

// Query is a parsed SELECT query.
type Query struct {
	// Select lists the projected variable names; nil with Star set for
	// SELECT *.
	Select   []string
	Star     bool
	Distinct bool
	Patterns []TriplePattern
	// Limit caps the number of result rows when HasLimit is set. LIMIT 0
	// is valid SPARQL and yields zero rows, hence the separate flag.
	Limit    int
	HasLimit bool
	// Offset skips that many rows (after ordering, before the limit).
	Offset int
	// OrderBy lists the sort keys, applied in order.
	OrderBy []OrderKey
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  string
	Desc bool
}

// Vars returns all distinct variables of the BGP in first-appearance order.
func (q *Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			if !seen[v] {
				out = append(out, v)
				seen[v] = true
			}
		}
	}
	return out
}

// Projection returns the variables the query projects: Select, or all BGP
// variables for SELECT *.
func (q *Query) Projection() []string {
	if q.Star {
		return q.Vars()
	}
	return q.Select
}

// ParseError reports a syntax error with its byte offset.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sparql: offset %d: %s", e.Offset, e.Msg)
}

type parser struct {
	src      string
	pos      int
	prefixes map[string]string
}

// Parse parses a query in the supported SPARQL subset.
func Parse(src string) (*Query, error) {
	p := &parser{src: src, prefixes: map[string]string{}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '#' { // comment to end of line
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		p.pos++
	}
}

// peekKeyword reports whether the next token equals kw (ASCII,
// case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	p.skipSpace()
	if len(p.src)-p.pos < len(kw) {
		return false
	}
	chunk := p.src[p.pos : p.pos+len(kw)]
	if !strings.EqualFold(chunk, kw) {
		return false
	}
	// Must end at a word boundary.
	if p.pos+len(kw) < len(p.src) {
		c := rune(p.src[p.pos+len(kw)])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			return false
		}
	}
	p.pos += len(kw)
	return true
}

func (p *parser) parseQuery() (*Query, error) {
	for p.keyword("PREFIX") {
		if err := p.parsePrefix(); err != nil {
			return nil, err
		}
	}
	if !p.keyword("SELECT") {
		return nil, p.errf("expected SELECT")
	}
	q := &Query{}
	if p.keyword("DISTINCT") {
		q.Distinct = true
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '*' {
		p.pos++
		q.Star = true
	} else {
		for {
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != '?' {
				break
			}
			v, err := p.parseVarName()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, v)
		}
		if len(q.Select) == 0 {
			return nil, p.errf("SELECT needs '*' or at least one variable")
		}
	}
	if !p.keyword("WHERE") {
		return nil, p.errf("expected WHERE")
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '{' {
		return nil, p.errf("expected '{'")
	}
	p.pos++
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated BGP: expected '}'")
		}
		if p.src[p.pos] == '}' {
			p.pos++
			break
		}
		tp, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, tp)
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '.' {
			p.pos++
		}
	}
	if p.keyword("ORDER") {
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after ORDER")
		}
		for {
			p.skipSpace()
			if p.pos >= len(p.src) {
				break
			}
			switch {
			case p.src[p.pos] == '?':
				v, err := p.parseVarName()
				if err != nil {
					return nil, err
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Var: v})
				continue
			case p.keyword("ASC"), p.keyword("DESC"):
				// keyword() consumed either ASC or DESC; the 4 bytes ending
				// at the cursor distinguish them ("DESC" vs ".ASC").
				desc := p.pos >= 4 && strings.EqualFold(p.src[p.pos-4:p.pos], "DESC")
				p.skipSpace()
				if p.pos >= len(p.src) || p.src[p.pos] != '(' {
					return nil, p.errf("expected '(' after ASC/DESC")
				}
				p.pos++
				p.skipSpace()
				if p.pos >= len(p.src) || p.src[p.pos] != '?' {
					return nil, p.errf("ASC/DESC needs a variable")
				}
				v, err := p.parseVarName()
				if err != nil {
					return nil, err
				}
				p.skipSpace()
				if p.pos >= len(p.src) || p.src[p.pos] != ')' {
					return nil, p.errf("expected ')'")
				}
				p.pos++
				q.OrderBy = append(q.OrderBy, OrderKey{Var: v, Desc: desc})
				continue
			}
			break
		}
		if len(q.OrderBy) == 0 {
			return nil, p.errf("ORDER BY needs at least one key")
		}
	}
	if p.keyword("LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		q.Limit = n
		q.HasLimit = true
	}
	if p.keyword("OFFSET") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		q.Offset = n
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("unexpected trailing input %q", truncate(p.src[p.pos:]))
	}
	if len(q.Patterns) == 0 {
		return nil, p.errf("empty BGP")
	}
	// Projected variables must occur in the BGP.
	inBGP := map[string]bool{}
	for _, v := range q.Vars() {
		inBGP[v] = true
	}
	for _, v := range q.Select {
		if !inBGP[v] {
			return nil, p.errf("projected variable ?%s does not occur in the BGP", v)
		}
	}
	// ORDER BY keys must be projected so the sort can run on result rows.
	proj := map[string]bool{}
	for _, v := range q.Projection() {
		proj[v] = true
	}
	for _, k := range q.OrderBy {
		if !proj[k.Var] {
			return nil, p.errf("ORDER BY variable ?%s is not projected", k.Var)
		}
	}
	return q, nil
}

func (p *parser) parsePrefix() error {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ':' {
		if isSpace(p.src[p.pos]) {
			return p.errf("malformed PREFIX name")
		}
		p.pos++
	}
	if p.pos >= len(p.src) {
		return p.errf("PREFIX without ':'")
	}
	name := p.src[start:p.pos]
	p.pos++ // ':'
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return p.errf("PREFIX needs an IRI")
	}
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return p.errf("unterminated PREFIX IRI")
	}
	p.prefixes[name] = p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	return nil
}

func (p *parser) parsePattern() (TriplePattern, error) {
	s, err := p.parseTerm(false)
	if err != nil {
		return TriplePattern{}, err
	}
	pr, err := p.parseTerm(false)
	if err != nil {
		return TriplePattern{}, err
	}
	o, err := p.parseTerm(true)
	if err != nil {
		return TriplePattern{}, err
	}
	return TriplePattern{S: s, P: pr, O: o}, nil
}

func (p *parser) parseTerm(allowLiteral bool) (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return Term{}, p.errf("unexpected end of query")
	}
	switch c := p.src[p.pos]; {
	case c == '?':
		v, err := p.parseVarName()
		if err != nil {
			return Term{}, err
		}
		return Variable(v), nil
	case c == '<':
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return Term{}, p.errf("unterminated IRI")
		}
		term := p.src[p.pos : p.pos+end+1]
		p.pos += end + 1
		return Constant(term), nil
	case c == '"':
		if !allowLiteral {
			return Term{}, p.errf("literal only allowed in object position")
		}
		return p.parseLiteral()
	case c == 'a' && p.atKeywordA():
		p.pos++
		return Constant(RDFType), nil
	case isPNameStart(c):
		return p.parsePrefixedName()
	case c >= '0' && c <= '9':
		if !allowLiteral {
			return Term{}, p.errf("numeric literal only allowed in object position")
		}
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		return Constant(`"` + p.src[start:p.pos] + `"^^<http://www.w3.org/2001/XMLSchema#integer>`), nil
	default:
		return Term{}, p.errf("unexpected character %q", c)
	}
}

// atKeywordA reports whether the 'a' at the cursor is the rdf:type keyword
// (followed by whitespace) rather than the start of a prefixed name.
func (p *parser) atKeywordA() bool {
	return p.pos+1 >= len(p.src) || isSpace(p.src[p.pos+1])
}

func (p *parser) parseVarName() (string, error) {
	p.pos++ // '?'
	start := p.pos
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("empty variable name")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseLiteral() (Term, error) {
	start := p.pos
	p.pos++ // opening quote
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\\':
			p.pos += 2
			continue
		case '"':
			p.pos++
			// Optional datatype or language tag.
			if strings.HasPrefix(p.src[p.pos:], "^^<") {
				end := strings.IndexByte(p.src[p.pos:], '>')
				if end < 0 {
					return Term{}, p.errf("unterminated datatype IRI")
				}
				p.pos += end + 1
			} else if p.pos < len(p.src) && p.src[p.pos] == '@' {
				p.pos++
				for p.pos < len(p.src) && (isNameChar(p.src[p.pos]) || p.src[p.pos] == '-') {
					p.pos++
				}
			}
			return Constant(p.src[start:p.pos]), nil
		default:
			p.pos++
		}
	}
	return Term{}, p.errf("unterminated literal")
}

func (p *parser) parsePrefixedName() (Term, error) {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ':' {
		if !isNameChar(p.src[p.pos]) {
			return Term{}, p.errf("malformed prefixed name")
		}
		p.pos++
	}
	if p.pos >= len(p.src) {
		return Term{}, p.errf("bare name without ':'")
	}
	prefix := p.src[start:p.pos]
	base, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undeclared prefix %q", prefix)
	}
	p.pos++ // ':'
	localStart := p.pos
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return Constant("<" + base + p.src[localStart:p.pos] + ">"), nil
}

func (p *parser) parseInt() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("expected integer")
	}
	n := 0
	for _, c := range p.src[start:p.pos] {
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, p.errf("LIMIT too large")
		}
	}
	return n, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

func isPNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
