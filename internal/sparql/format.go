package sparql

import (
	"strconv"
	"strings"
)

// Format renders a parsed query back to SPARQL surface syntax that Parse
// accepts. It is the bridge for components that hold a *Query but talk to
// engines whose entry point is query text — notably the distributed
// coordinator, which ships source strings to shard nodes so every replica
// parses and plans the exact same query. Format(q) round-trips: parsing the
// output yields a query equivalent to q.
func Format(q *Query) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if q.Star {
		b.WriteString("*")
	} else {
		for i, v := range q.Select {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteByte('?')
			b.WriteString(v)
		}
	}
	b.WriteString(" WHERE { ")
	for _, tp := range q.Patterns {
		b.WriteString(tp.String())
		b.WriteString(" . ")
	}
	b.WriteString("}")
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, k := range q.OrderBy {
			if k.Desc {
				b.WriteString(" DESC(?")
				b.WriteString(k.Var)
				b.WriteByte(')')
			} else {
				b.WriteString(" ?")
				b.WriteString(k.Var)
			}
		}
	}
	if q.HasLimit {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(q.Limit))
	}
	if q.Offset > 0 {
		b.WriteString(" OFFSET ")
		b.WriteString(strconv.Itoa(q.Offset))
	}
	return b.String()
}
