package sparql

import (
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParsePaperExample31(t *testing.T) {
	q := mustParse(t, `SELECT ?x ?y ?z WHERE {
		?x <teaches> ?z .
		?x <worksFor> ?y . }`)
	if q.Star || q.Distinct {
		t.Error("unexpected Star/Distinct")
	}
	if !reflect.DeepEqual(q.Select, []string{"x", "y", "z"}) {
		t.Errorf("Select = %v", q.Select)
	}
	want := []TriplePattern{
		{S: Variable("x"), P: Constant("<teaches>"), O: Variable("z")},
		{S: Variable("x"), P: Constant("<worksFor>"), O: Variable("y")},
	}
	if !reflect.DeepEqual(q.Patterns, want) {
		t.Errorf("Patterns = %v, want %v", q.Patterns, want)
	}
}

func TestParsePaperExample32Filter(t *testing.T) {
	q := mustParse(t, `SELECT ?x ?z WHERE {
		?x <teaches> ?z.
		?x <worksFor> <University1> . }`)
	if got := q.Patterns[1].O; got.IsVar() || got.Value != "<University1>" {
		t.Errorf("filter object = %v", got)
	}
}

func TestParsePrefixes(t *testing.T) {
	q := mustParse(t, `
		PREFIX ub: <http://lubm.example.org/univ#>
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:takesCourse ?c }`)
	if q.Patterns[0].P.Value != RDFType {
		t.Errorf("P = %q", q.Patterns[0].P.Value)
	}
	if q.Patterns[0].O.Value != "<http://lubm.example.org/univ#GraduateStudent>" {
		t.Errorf("O = %q", q.Patterns[0].O.Value)
	}
}

func TestParseAKeyword(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE { ?x a <http://ex.org/C> }`)
	if q.Patterns[0].P.Value != RDFType {
		t.Errorf("'a' parsed as %q", q.Patterns[0].P.Value)
	}
}

func TestParseStarDistinctLimit(t *testing.T) {
	q := mustParse(t, `SELECT DISTINCT * WHERE { ?s ?p ?o } LIMIT 10`)
	if !q.Star || !q.Distinct || q.Limit != 10 {
		t.Errorf("Star=%v Distinct=%v Limit=%d", q.Star, q.Distinct, q.Limit)
	}
	if got := q.Projection(); !reflect.DeepEqual(got, []string{"s", "p", "o"}) {
		t.Errorf("Projection = %v", got)
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE {
		?x <p> "plain" .
		?x <q> "typed"^^<http://www.w3.org/2001/XMLSchema#string> .
		?x <r> "tagged"@en-GB .
		?x <s> "esc \" quote" .
		?x <t> 42 }`)
	wants := []string{
		`"plain"`,
		`"typed"^^<http://www.w3.org/2001/XMLSchema#string>`,
		`"tagged"@en-GB`,
		`"esc \" quote"`,
		`"42"^^<http://www.w3.org/2001/XMLSchema#integer>`,
	}
	for i, w := range wants {
		if got := q.Patterns[i].O.Value; got != w {
			t.Errorf("pattern %d object = %q, want %q", i, got, w)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	mustParse(t, `select ?x where { ?x <p> ?y } limit 5`)
}

func TestParseComments(t *testing.T) {
	q := mustParse(t, `# leading comment
		SELECT ?x WHERE { # inline
		?x <p> ?y }`)
	if len(q.Patterns) != 1 {
		t.Errorf("Patterns = %v", q.Patterns)
	}
}

func TestVarsOrderAndDedup(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?b <p> ?a . ?a <q> ?c . ?b <r> ?c }`)
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"b", "a", "c"}) {
		t.Errorf("Vars = %v", got)
	}
}

func TestVariablePredicate(t *testing.T) {
	q := mustParse(t, `SELECT ?p WHERE { <http://s> ?p <http://o> }`)
	if !q.Patterns[0].P.IsVar() {
		t.Error("predicate should be a variable")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no select", `WHERE { ?x <p> ?y }`},
		{"no where", `SELECT ?x { ?x <p> ?y }`},
		{"empty bgp", `SELECT ?x WHERE { }`},
		{"unterminated bgp", `SELECT ?x WHERE { ?x <p> ?y`},
		{"unterminated iri", `SELECT ?x WHERE { ?x <p ?y }`},
		{"projection not in bgp", `SELECT ?zz WHERE { ?x <p> ?y }`},
		{"literal subject", `SELECT ?x WHERE { "s" <p> ?x }`},
		{"empty var", `SELECT ? WHERE { ?x <p> ?y }`},
		{"undeclared prefix", `SELECT ?x WHERE { ?x foo:p ?y }`},
		{"trailing junk", `SELECT ?x WHERE { ?x <p> ?y } garbage`},
		{"no vars", `SELECT WHERE { ?x <p> ?y }`},
		{"unterminated literal", `SELECT ?x WHERE { ?x <p> "abc }`},
		{"bad limit", `SELECT ?x WHERE { ?x <p> ?y } LIMIT x`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", c.src)
			}
		})
	}
}

func TestParseErrorHasOffset(t *testing.T) {
	_, err := Parse(`SELECT ?x WHERE { ?x <p ?y }`)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Offset <= 0 {
		t.Errorf("Offset = %d, want > 0", pe.Offset)
	}
	if !strings.Contains(pe.Error(), "offset") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestTermAndPatternString(t *testing.T) {
	tp := TriplePattern{S: Variable("x"), P: Constant("<p>"), O: Constant(`"v"`)}
	if got := tp.String(); got != `?x <p> "v"` {
		t.Errorf("String = %q", got)
	}
}

func TestPatternVars(t *testing.T) {
	tp := TriplePattern{S: Variable("x"), P: Variable("x"), O: Variable("y")}
	if got := tp.Vars(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("Vars = %v", got)
	}
}

func TestOptionalTrailingDot(t *testing.T) {
	a := mustParse(t, `SELECT ?x WHERE { ?x <p> ?y . ?y <q> ?z . }`)
	b := mustParse(t, `SELECT ?x WHERE { ?x <p> ?y . ?y <q> ?z }`)
	if !reflect.DeepEqual(a.Patterns, b.Patterns) {
		t.Error("trailing dot changed the parse")
	}
}

func TestLargeBGP(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("SELECT * WHERE {")
	for i := 0; i < 9; i++ {
		sb.WriteString(" ?s <p")
		sb.WriteByte(byte('0' + i))
		sb.WriteString("> ?o")
		sb.WriteByte(byte('0' + i))
		sb.WriteString(" .")
	}
	sb.WriteString(" }")
	q := mustParse(t, sb.String())
	if len(q.Patterns) != 9 {
		t.Errorf("Patterns = %d, want 9 (star query like WatDiv S1)", len(q.Patterns))
	}
}

func TestParseOrderByOffset(t *testing.T) {
	q := mustParse(t, `SELECT ?x ?y WHERE { ?x <p> ?y } ORDER BY ?x DESC(?y) LIMIT 5 OFFSET 2`)
	if len(q.OrderBy) != 2 {
		t.Fatalf("OrderBy = %v", q.OrderBy)
	}
	if q.OrderBy[0] != (OrderKey{Var: "x"}) || q.OrderBy[1] != (OrderKey{Var: "y", Desc: true}) {
		t.Errorf("OrderBy = %v", q.OrderBy)
	}
	if q.Limit != 5 || !q.HasLimit || q.Offset != 2 {
		t.Errorf("Limit=%d HasLimit=%v Offset=%d", q.Limit, q.HasLimit, q.Offset)
	}
	q = mustParse(t, `SELECT ?x WHERE { ?x <p> ?y } ORDER BY ASC(?x)`)
	if q.OrderBy[0].Desc {
		t.Error("ASC parsed as descending")
	}
}

func TestParseOrderByErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT ?x WHERE { ?x <p> ?y } ORDER ?x`,
		`SELECT ?x WHERE { ?x <p> ?y } ORDER BY`,
		`SELECT ?x WHERE { ?x <p> ?y } ORDER BY DESC ?x`,
		`SELECT ?x WHERE { ?x <p> ?y } ORDER BY DESC(?x`,
		`SELECT ?x WHERE { ?x <p> ?y } ORDER BY ?y`,
		`SELECT ?x WHERE { ?x <p> ?y } OFFSET x`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s accepted", src)
		}
	}
}
