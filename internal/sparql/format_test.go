package sparql

import (
	"reflect"
	"testing"
)

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		`SELECT ?x ?y WHERE { ?x <p> ?y . }`,
		`SELECT * WHERE { ?x <p> ?y . ?y <q> "lit" . }`,
		`SELECT DISTINCT ?x WHERE { ?x <p> ?y . } LIMIT 5`,
		`SELECT ?x WHERE { ?x <p> <o> . } ORDER BY ?x DESC(?x) LIMIT 3 OFFSET 2`,
		`SELECT ?x WHERE { ?x <p> ?y . } LIMIT 0`,
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		back, err := Parse(Format(q))
		if err != nil {
			t.Fatalf("reparse of Format(%q) = %q failed: %v", src, Format(q), err)
		}
		if !reflect.DeepEqual(q, back) {
			t.Errorf("round trip of %q:\n  formatted %q\n  got  %+v\n  want %+v", src, Format(q), back, q)
		}
	}
}
