package sparql

import "testing"

// FuzzParse checks the SPARQL parser never panics and that accepted
// queries satisfy basic structural invariants.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT ?x WHERE { ?x <p> ?y }`,
		`SELECT DISTINCT * WHERE { ?s ?p ?o } LIMIT 10`,
		`PREFIX a: <http://x/> SELECT ?v WHERE { ?v a:q "lit"@en . ?v a <C> }`,
		`select ?x where { ?x <p> 42 . }`,
		`SELECT WHERE { }`,
		`SELECT ?x WHERE { ?x <p "broken }`,
		"# comment\nSELECT ?x WHERE { ?x <p> ?y }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if len(q.Patterns) == 0 {
			t.Fatal("accepted query with empty BGP")
		}
		if !q.Star && len(q.Select) == 0 {
			t.Fatal("accepted query without projection")
		}
		inBGP := map[string]bool{}
		for _, v := range q.Vars() {
			inBGP[v] = true
		}
		for _, v := range q.Projection() {
			if !inBGP[v] {
				t.Fatalf("projected variable %q not in BGP", v)
			}
		}
		for _, tp := range q.Patterns {
			for _, term := range []Term{tp.S, tp.P, tp.O} {
				if term.IsVar() == (term.Value != "") {
					t.Fatalf("term %v is both/neither var and const", term)
				}
			}
			if !tp.P.IsVar() && tp.P.Value[0] == '"' {
				t.Fatalf("literal predicate accepted: %v", tp)
			}
		}
	})
}
