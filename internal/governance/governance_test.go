package governance

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestErrorTaxonomy(t *testing.T) {
	if !errors.Is(ErrCanceled, context.Canceled) {
		t.Error("ErrCanceled does not match context.Canceled")
	}
	if !errors.Is(ErrDeadlineExceeded, context.DeadlineExceeded) {
		t.Error("ErrDeadlineExceeded does not match context.DeadlineExceeded")
	}
	if errors.Is(ErrCanceled, context.DeadlineExceeded) || errors.Is(ErrDeadlineExceeded, context.Canceled) {
		t.Error("cancel/deadline aliases cross-match")
	}
	for _, err := range []error{ErrCanceled, ErrDeadlineExceeded, ErrBudgetExceeded, ErrOverloaded} {
		if !IsPolicy(err) {
			t.Errorf("IsPolicy(%v) = false", err)
		}
	}
	if IsPolicy(errors.New("disk on fire")) {
		t.Error("IsPolicy claims an arbitrary error")
	}
	if IsPolicy(&PanicError{Value: "boom"}) {
		t.Error("a contained panic is an engine failure, not a policy outcome")
	}
	if IsPolicy(nil) {
		t.Error("IsPolicy(nil)")
	}
}

func TestCtxError(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := CtxError(canceled); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled ctx mapped to %v", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if err := CtxError(expired); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("expired ctx mapped to %v", err)
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if (Config{Context: context.Background()}).Enabled() {
		t.Error("Background (non-cancelable) context reports enabled")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, c := range []Config{{Context: ctx}, {MaxResultRows: 1}, {MemoryBudget: 1}} {
		if !c.Enabled() {
			t.Errorf("%+v reports disabled", c)
		}
	}
}

func TestGovernorFailFirstWins(t *testing.T) {
	g := New(Config{})
	first := errors.New("first")
	g.Fail(first)
	g.Fail(errors.New("second"))
	if !errors.Is(g.Err(), first) {
		t.Errorf("Err = %v, want the first failure", g.Err())
	}
	if !g.Stopped() {
		t.Error("failed governor not stopped")
	}
	if g.Check() {
		t.Error("Check passes after Fail")
	}
}

func TestGovernorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(Config{Context: ctx})
	if !g.Check() {
		t.Fatal("healthy governor failed Check")
	}
	cancel()
	if g.Check() {
		t.Fatal("Check passes with canceled context")
	}
	if !errors.Is(g.Err(), ErrCanceled) {
		t.Errorf("Err = %v, want ErrCanceled", g.Err())
	}
}

func TestGateRowBudget(t *testing.T) {
	g := New(Config{MaxResultRows: 10, CheckInterval: 4})
	gate := g.NewGate()
	for i := 0; i < 10; i++ {
		gate.Produced(0)
		if !gate.Step() {
			t.Fatalf("gate tripped at row %d, within budget", i+1)
		}
	}
	// The 11th row exceeds the budget at the next flush.
	gate.Produced(0)
	if gate.Close() {
		t.Fatal("Close passed with budget exceeded")
	}
	if !errors.Is(g.Err(), ErrBudgetExceeded) {
		t.Errorf("Err = %v, want ErrBudgetExceeded", g.Err())
	}
}

func TestGateMemoryBudget(t *testing.T) {
	g := New(Config{MemoryBudget: 100, CheckInterval: 1 << 20})
	gate := g.NewGate()
	gate.Produced(64)
	if !gate.Close() {
		t.Fatal("within-budget close failed")
	}
	gate2 := g.NewGate()
	gate2.Produced(64) // shared total now 128 > 100
	if gate2.Close() {
		t.Fatal("over-budget close passed")
	}
	if !errors.Is(g.Err(), ErrBudgetExceeded) {
		t.Errorf("Err = %v, want ErrBudgetExceeded", g.Err())
	}
}

func TestNilGateNoops(t *testing.T) {
	var gate *Gate
	if !gate.Step() || !gate.Close() {
		t.Error("nil gate does not report keep-going")
	}
	gate.Produced(123) // must not panic
	var g *Governor
	if g.NewGate() != nil {
		t.Error("nil governor yields non-nil gate")
	}
}

func TestIntervalForEstimate(t *testing.T) {
	if got := IntervalForEstimate(0); got != DefaultCheckInterval {
		t.Errorf("small estimate interval = %d", got)
	}
	if got := IntervalForEstimate(1e9); got >= DefaultCheckInterval {
		t.Errorf("huge estimate interval = %d, want tighter than default", got)
	}
}

func TestLimiter(t *testing.T) {
	var nilL *Limiter
	if err := nilL.Acquire(context.Background()); err != nil {
		t.Fatalf("nil limiter refused: %v", err)
	}
	nilL.Release()
	if nilL.InFlight() != 0 {
		t.Error("nil limiter in-flight != 0")
	}
	if NewLimiter(0, 0) != nil {
		t.Error("max=0 should disable the limiter")
	}

	l := NewLimiter(2, 0)
	if err := l.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if got := l.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	if err := l.Acquire(nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated Acquire = %v, want ErrOverloaded", err)
	}
	l.Release()
	if err := l.Acquire(nil); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	l.Release()
	l.Release()
}

func TestLimiterQueueWait(t *testing.T) {
	l := NewLimiter(1, 2*time.Second)
	if err := l.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		l.Release()
	}()
	start := time.Now()
	if err := l.Acquire(nil); err != nil {
		t.Fatalf("queued Acquire = %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("queued Acquire took %v", elapsed)
	}
	l.Release()

	// Wait expires before a slot frees: shed.
	short := NewLimiter(1, 10*time.Millisecond)
	if err := short.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := short.Acquire(nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired wait = %v, want ErrOverloaded", err)
	}
	short.Release()
}

func TestLimiterContextWhileQueued(t *testing.T) {
	l := NewLimiter(1, time.Minute)
	if err := l.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued Acquire with dying ctx = %v, want ErrDeadlineExceeded", err)
	}
	l.Release()
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Release without Acquire did not panic")
		}
	}()
	NewLimiter(1, 0).Release()
}
