package governance

// admission.go — adaptive admission control and the store-wide memory pool.
//
// The fixed-wait Limiter queues blindly: under a sustained overload storm
// every queued query waits the full configured wait and then sheds, so the
// queue delay of admitted queries grows to the configured wait and p99
// collapses for everyone. The AdaptiveLimiter is a CoDel-style controller
// (Nichols & Jacobson, "Controlling Queue Delay"): it tracks the *sojourn
// time* — how long an admitted query sat in the admission queue — and once
// sojourn has stayed above a small target for a full control interval it
// flips into shedding mode, where over-admission arrivals queue only for
// the target instead of the full wait. Standing queues drain, admitted
// queries keep a bounded p99, and shed queries get a typed ErrOverloaded
// with a Retry-After hint instead of burning their whole client budget in
// a queue they were never going to clear.
//
// Deadline propagation composes here: Acquire clamps its queue wait to the
// caller's remaining context budget, refuses work whose budget is already
// below the current queue-delay estimate (it would expire in the queue),
// and reports ErrDeadlineExceeded — not ErrOverloaded — whenever the
// deadline, rather than the admission policy, was the binding constraint.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parj/internal/resilience"
)

// OverloadError is a load-shedding rejection carrying a Retry-After hint:
// how long the shedding controller estimates the caller should wait before
// the queue has drained enough to be worth another attempt. It unwraps to
// ErrOverloaded, so errors.Is dispatch is unchanged.
type OverloadError struct {
	// RetryAfter is the suggested client backoff (always > 0).
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("store overloaded: admission queue delay above target (retry after %v)", e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// RetryAfterHint extracts the Retry-After hint from an overload error
// chain, or def when the error carries none.
func RetryAfterHint(err error, def time.Duration) time.Duration {
	var oe *OverloadError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		return oe.RetryAfter
	}
	return def
}

// AdmissionOptions configures an AdaptiveLimiter.
type AdmissionOptions struct {
	// MaxConcurrent caps concurrently admitted queries; <= 0 disables the
	// limiter entirely (NewAdaptiveLimiter returns nil).
	MaxConcurrent int
	// MaxWait bounds how long an over-admission query queues while the
	// controller is healthy (default 2s). In shedding mode the bound drops
	// to Target.
	MaxWait time.Duration
	// Target is the acceptable admission-queue sojourn time (default 5ms).
	// Sojourn above it signals a standing queue.
	Target time.Duration
	// Interval is the control window (default 100ms): sojourn must stay
	// above Target for a full interval before shedding starts, so a single
	// burst does not flip the controller.
	Interval time.Duration
	// Clock injects time (nil = wall clock); tests drive a FakeClock.
	Clock resilience.Clock
}

func (o AdmissionOptions) fill() AdmissionOptions {
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Second
	}
	if o.Target <= 0 {
		o.Target = 5 * time.Millisecond
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = resilience.RealClock{}
	}
	return o
}

// AdmissionStats is a snapshot of the controller's counters — the load
// signal surfaced through /statz so the routing layer's view is also
// operator-visible.
type AdmissionStats struct {
	// InFlight is the number of currently admitted queries.
	InFlight int `json:"in_flight"`
	// Admitted counts queries admitted since start.
	Admitted int64 `json:"admitted"`
	// Sheds counts queries rejected with ErrOverloaded.
	Sheds int64 `json:"sheds"`
	// Expired counts queries refused because their deadline budget was
	// already spent (or below the queue-delay estimate) on arrival.
	Expired int64 `json:"expired"`
	// QueueDelay is the current sojourn-time estimate.
	QueueDelay time.Duration `json:"queue_delay_ns"`
	// Shedding reports whether the controller is currently in shed mode.
	Shedding bool `json:"shedding"`
}

// AdaptiveLimiter is the CoDel-style admission controller. A nil
// *AdaptiveLimiter admits everything. Safe for concurrent use.
type AdaptiveLimiter struct {
	slots chan struct{}
	opts  AdmissionOptions
	clock resilience.Clock

	admitted atomic.Int64
	sheds    atomic.Int64
	expired  atomic.Int64

	mu         sync.Mutex
	ewma       time.Duration // smoothed sojourn estimate
	ewmaSeeded bool
	firstAbove time.Time // when sojourn first exceeded Target (zero = below)
	shedding   bool
}

// NewAdaptiveLimiter builds the controller; MaxConcurrent <= 0 returns nil
// (unlimited admission).
func NewAdaptiveLimiter(opts AdmissionOptions) *AdaptiveLimiter {
	if opts.MaxConcurrent <= 0 {
		return nil
	}
	opts = opts.fill()
	return &AdaptiveLimiter{
		slots: make(chan struct{}, opts.MaxConcurrent),
		opts:  opts,
		clock: opts.Clock,
	}
}

// Acquire admits the caller or sheds it with a typed error: ErrOverloaded
// (wrapped in an OverloadError with a Retry-After hint) when the admission
// policy was the binding constraint, ErrDeadlineExceeded when the caller's
// own remaining budget was — including budgets already below the current
// queue-delay estimate, which are refused on arrival rather than queued to
// certain death. On success the caller must Release exactly once.
func (l *AdaptiveLimiter) Acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		l.expired.Add(1)
		return CtxError(ctx)
	}
	now := l.clock.Now()

	// Fast path before any estimate check: a free slot is a zero-sojourn
	// admission no matter what the queue looked like a moment ago, and the
	// observe(0) it feeds is what decays a stale estimate. Checking the
	// estimate first would latch the controller shut — once the estimate
	// exceeded every client's budget, arrivals would be refused while
	// capacity sat idle, no admission would ever update the estimate, and
	// the store would starve until restart.
	select {
	case l.slots <- struct{}{}:
		l.observe(0)
		l.admitted.Add(1)
		return nil
	default:
	}

	remaining := time.Duration(-1) // -1 = no deadline
	if dl, ok := ctx.Deadline(); ok {
		remaining = dl.Sub(now)
		if est := l.QueueDelayEstimate(); remaining <= 0 || remaining < est {
			l.expired.Add(1)
			return fmt.Errorf("%w: remaining budget %v below queue-delay estimate %v",
				ErrDeadlineExceeded, remaining, est)
		}
	}

	// Queue, bounded by the controller state and the caller's budget.
	wait := l.opts.MaxWait
	if l.sheddingNow() {
		wait = l.opts.Target
	}
	deadlineBound := false
	if remaining >= 0 && remaining < wait {
		wait = remaining
		deadlineBound = true
	}
	timer := l.clock.After(wait)
	select {
	case l.slots <- struct{}{}:
		l.observe(l.clock.Now().Sub(now))
		l.admitted.Add(1)
		return nil
	case <-ctx.Done():
		l.observe(l.clock.Now().Sub(now))
		l.expired.Add(1)
		return CtxError(ctx)
	case <-timer:
		l.observe(l.clock.Now().Sub(now))
		if deadlineBound {
			l.expired.Add(1)
			return fmt.Errorf("%w: deadline expired in admission queue", ErrDeadlineExceeded)
		}
		l.sheds.Add(1)
		return &OverloadError{RetryAfter: l.retryAfter()}
	}
}

// Release returns a slot taken by a successful Acquire.
func (l *AdaptiveLimiter) Release() {
	if l == nil {
		return
	}
	select {
	case <-l.slots:
	default:
		panic("governance: Release without Acquire")
	}
}

// InFlight reports the number of currently admitted queries.
func (l *AdaptiveLimiter) InFlight() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Saturated reports whether every slot is taken right now — the
// precondition for refusing work on the queue-delay estimate. While a
// slot is free the estimate is stale by definition (an arrival would be
// admitted with zero sojourn), so estimate-based refusals must not fire.
func (l *AdaptiveLimiter) Saturated() bool {
	if l == nil {
		return false
	}
	return len(l.slots) == cap(l.slots)
}

// QueueDelayEstimate reports the smoothed admission-queue sojourn time —
// the signal deadline refusal and load-aware routing read.
func (l *AdaptiveLimiter) QueueDelayEstimate() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ewma
}

// Stats snapshots the controller's counters.
func (l *AdaptiveLimiter) Stats() AdmissionStats {
	if l == nil {
		return AdmissionStats{}
	}
	l.mu.Lock()
	ewma, shedding := l.ewma, l.shedding
	l.mu.Unlock()
	return AdmissionStats{
		InFlight:   len(l.slots),
		Admitted:   l.admitted.Load(),
		Sheds:      l.sheds.Load(),
		Expired:    l.expired.Load(),
		QueueDelay: ewma,
		Shedding:   shedding,
	}
}

// observe feeds one measured sojourn into the controller. Below-target
// sojourn exits shedding immediately (the queue drained); above-target
// sojourn must persist for a full Interval before shedding starts — the
// hysteresis that keeps one slow query from flipping the mode.
func (l *AdaptiveLimiter) observe(sojourn time.Duration) {
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.ewmaSeeded {
		l.ewma, l.ewmaSeeded = sojourn, true
	} else {
		// alpha = 0.3: reactive enough to track a building queue within a
		// few admissions, smooth enough to ignore one outlier.
		l.ewma = (3*sojourn + 7*l.ewma) / 10
	}
	if sojourn < l.opts.Target {
		l.firstAbove = time.Time{}
		l.shedding = false
		return
	}
	if l.firstAbove.IsZero() {
		l.firstAbove = now
		return
	}
	if now.Sub(l.firstAbove) >= l.opts.Interval {
		l.shedding = true
	}
}

func (l *AdaptiveLimiter) sheddingNow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shedding
}

// retryAfter estimates how long a shed caller should back off: at least a
// control interval (time for the standing queue to register as drained),
// stretched by the current delay estimate when the queue is deep.
func (l *AdaptiveLimiter) retryAfter() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ewma > l.opts.Interval {
		return l.ewma
	}
	return l.opts.Interval
}

// Pool is a store-wide shared memory budget: the bytes of materialized
// result rows across *all* concurrently executing queries, as opposed to
// the per-query MemoryBudget. N concurrent queries race one budget, so a
// burst of medium-sized queries cannot multiply the per-query bound into an
// OOM — the query that would tip the store over fails with
// ErrBudgetExceeded while its winners complete exactly. A nil *Pool admits
// every charge.
type Pool struct {
	capacity int64
	used     atomic.Int64
}

// NewPool builds a shared pool of capacity bytes; capacity <= 0 returns nil
// (unlimited).
func NewPool(capacity int64) *Pool {
	if capacity <= 0 {
		return nil
	}
	return &Pool{capacity: capacity}
}

// TryCharge reserves n bytes, reporting false (and reserving nothing) when
// the pool would overflow.
func (p *Pool) TryCharge(n int64) bool {
	if p == nil || n <= 0 {
		return true
	}
	if p.used.Add(n) > p.capacity {
		p.used.Add(-n)
		return false
	}
	return true
}

// Release returns n reserved bytes.
func (p *Pool) Release(n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.used.Add(-n)
}

// Used reports the currently reserved bytes.
func (p *Pool) Used() int64 {
	if p == nil {
		return 0
	}
	return p.used.Load()
}

// Capacity reports the pool's byte capacity (0 when unlimited).
func (p *Pool) Capacity() int64 {
	if p == nil {
		return 0
	}
	return p.capacity
}
