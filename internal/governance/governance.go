// Package governance provides the resource-governance and fault-containment
// primitives of the query path: the typed error taxonomy (cancellation,
// deadlines, budgets, load shedding, contained panics), the per-query
// Governor that workers consult on an amortized schedule, and the store-wide
// admission Limiter.
//
// The paper's full-result-handling design (§5.2) exists so PARJ survives
// hostile queries — the 1.6-billion-row IL-3-8 result that kills TriAD.
// This package is the enforcement side of that philosophy: a query that
// would exceed its deadline, its row or memory budget, or the store's
// concurrency envelope is stopped with a typed error instead of taking the
// process down, and a panicking worker goroutine is converted into a query
// error instead of a crash.
package governance

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Typed governance errors. All errors produced by this package (and by the
// engine's governance checks) wrap exactly one of these sentinels, so
// callers dispatch with errors.Is. ErrCanceled and ErrDeadlineExceeded
// additionally match context.Canceled and context.DeadlineExceeded
// respectively, so code written against the context package's errors keeps
// working.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = &taggedError{msg: "query canceled", alias: context.Canceled}
	// ErrDeadlineExceeded reports that the query's deadline or timeout
	// expired mid-execution.
	ErrDeadlineExceeded = &taggedError{msg: "query deadline exceeded", alias: context.DeadlineExceeded}
	// ErrBudgetExceeded reports that the query produced more rows or
	// materialized more bytes than its configured budget allows.
	ErrBudgetExceeded = errors.New("query budget exceeded")
	// ErrOverloaded is the load-shedding error: the store's admission
	// queue was full for longer than the configured wait.
	ErrOverloaded = errors.New("store overloaded: admission queue timed out")
)

// taggedError is a sentinel that also matches a context package error, so
// errors.Is(err, context.Canceled) and errors.Is(err, ErrCanceled) agree.
type taggedError struct {
	msg   string
	alias error
}

func (e *taggedError) Error() string { return e.msg }

func (e *taggedError) Is(target error) bool { return target == e.alias }

// PanicError is a worker panic converted into a query error. The panic is
// contained: the process keeps serving, and the stack of the offending
// goroutine is preserved for diagnosis.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("query worker panic: %v\n%s", e.Value, e.Stack)
}

// IsPolicy reports whether err is a governance outcome — a cancellation,
// deadline, budget, or load-shedding error — rather than an engine failure.
// Differential harnesses use it to classify such outcomes as policy
// results, not result divergences.
func IsPolicy(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, ErrOverloaded)
}

// DefaultCheckInterval is how many worker steps (bindings produced or keys
// scanned) pass between two governance checks. 4096 keeps the Silent-mode
// hot path flat: the per-step cost is one predictable decrement-and-branch,
// and the reaction latency to a cancel stays far under the 100ms target
// even under the race detector.
const DefaultCheckInterval = 4096

// Governor is the shared per-query control block. Workers consult it on an
// amortized schedule (every CheckInterval steps) through worker-local
// Gates; the first violation or panic stops every worker at its next check.
//
// The zero Governor is not usable; call New.
type Governor struct {
	done <-chan struct{} // ctx.Done(); nil when the context can't be canceled
	ctx  context.Context

	maxRows int64 // produced-row budget; 0 = unlimited
	maxMem  int64 // materialized-byte budget; 0 = unlimited
	pool    *Pool // store-wide shared memory budget; nil = none

	rows   atomic.Int64 // rows produced across workers (flushed amortized)
	mem    atomic.Int64 // bytes materialized across workers
	pooled atomic.Int64 // bytes this query holds in the shared pool

	stopped atomic.Bool
	err     atomic.Pointer[error]

	interval int
}

// Config bounds one query execution.
type Config struct {
	// Context carries the query's cancellation and deadline; nil means
	// context.Background().
	Context context.Context
	// MaxResultRows bounds the rows the engine produces (before final
	// DISTINCT/LIMIT compaction — that is what costs memory and time);
	// 0 = unlimited.
	MaxResultRows int64
	// MemoryBudget bounds the bytes of materialized result rows;
	// 0 = unlimited. Silent (non-materializing) execution charges nothing.
	MemoryBudget int64
	// MemPool, when non-nil, is the store-wide shared memory budget this
	// query charges its materialized bytes against, in addition to its own
	// MemoryBudget. N concurrent queries race one pool, so a burst cannot
	// multiply the per-query bound into an OOM.
	MemPool *Pool
	// CheckInterval overrides DefaultCheckInterval (useful for tests and
	// for plans whose estimated cardinality warrants tighter checks).
	CheckInterval int
}

// Enabled reports whether the configuration imposes any constraint at all.
// Ungoverned queries skip the per-step bookkeeping entirely.
func (c Config) Enabled() bool {
	return (c.Context != nil && c.Context.Done() != nil) ||
		c.MaxResultRows > 0 || c.MemoryBudget > 0 || c.MemPool != nil
}

// New builds a Governor for one query execution.
func New(c Config) *Governor {
	ctx := c.Context
	if ctx == nil {
		ctx = context.Background()
	}
	interval := c.CheckInterval
	if interval <= 0 {
		interval = DefaultCheckInterval
	}
	return &Governor{
		done:     ctx.Done(),
		ctx:      ctx,
		maxRows:  c.MaxResultRows,
		maxMem:   c.MemoryBudget,
		pool:     c.MemPool,
		interval: interval,
	}
}

// Fail records err as the query's outcome (first writer wins) and stops
// every worker at its next governance check. Safe for concurrent use.
func (g *Governor) Fail(err error) {
	if err == nil {
		return
	}
	g.err.CompareAndSwap(nil, &err)
	g.stopped.Store(true)
}

// Err returns the recorded violation, or nil while the query is healthy.
func (g *Governor) Err() error {
	if p := g.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Stopped reports whether workers should abandon the query.
func (g *Governor) Stopped() bool { return g.stopped.Load() }

// Interval returns the resolved amortized check interval. Engines that keep
// their own step countdown (cheaper than a per-step Gate call in the inner
// recursion) refill it from here.
func (g *Governor) Interval() int { return g.interval }

// Check runs the slow-path inspection: context state first (a deadline is
// the most common violation), then a cross-worker stop set by a peer. Gates
// call it amortized; collectors call it per batch.
func (g *Governor) Check() bool {
	if g.done != nil {
		select {
		case <-g.done:
			g.Fail(CtxError(g.ctx))
			return false
		default:
		}
	}
	return !g.stopped.Load()
}

// charge adds a worker's locally accumulated rows and bytes to the shared
// totals and verifies the budgets. Called amortized, so the shared atomics
// stay off the per-row path; the overshoot is bounded by
// workers × CheckInterval rows.
func (g *Governor) charge(rows, bytes int64) bool {
	if g.maxRows > 0 && g.rows.Add(rows) > g.maxRows {
		g.Fail(fmt.Errorf("%w: more than %d result rows", ErrBudgetExceeded, g.maxRows))
		return false
	}
	if g.maxMem > 0 && g.mem.Add(bytes) > g.maxMem {
		g.Fail(fmt.Errorf("%w: more than %d bytes of materialized results", ErrBudgetExceeded, g.maxMem))
		return false
	}
	if g.pool != nil && bytes > 0 {
		if !g.pool.TryCharge(bytes) {
			g.Fail(fmt.Errorf("%w: shared memory pool exhausted (%d of %d bytes in use across queries)",
				ErrBudgetExceeded, g.pool.Used(), g.pool.Capacity()))
			return false
		}
		g.pooled.Add(bytes)
	}
	return true
}

// ReleasePool returns every byte this query holds in the shared pool.
// The engine calls it exactly once when execution finishes (success or
// failure); it is idempotent so defensive double-calls are harmless.
func (g *Governor) ReleasePool() {
	if g == nil || g.pool == nil {
		return
	}
	if held := g.pooled.Swap(0); held > 0 {
		g.pool.Release(held)
	}
}

// CtxError maps a context's termination cause to the typed taxonomy:
// ErrDeadlineExceeded for an expired deadline, ErrCanceled otherwise.
func CtxError(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return ErrCanceled
}

// IntervalForEstimate suggests a governance check interval from the
// optimizer's estimated result cardinality: plans expected to produce
// millions of rows get checked four times as often, tightening reaction to
// deadlines exactly where queries run long. Estimates within the default
// interval keep the default (the query may finish before a single check).
func IntervalForEstimate(estRows float64) int {
	if estRows >= 1e6 {
		return DefaultCheckInterval / 4
	}
	return DefaultCheckInterval
}

// Gate is one worker's view of the Governor: a local countdown that makes
// the common case a single decrement, plus local row/byte accumulators
// flushed on the same schedule. Gates are not safe for concurrent use; each
// worker owns one.
type Gate struct {
	gov       *Governor
	countdown int
	rows      int64
	bytes     int64
}

// NewGate returns a fresh gate for one worker. A nil Governor yields a nil
// Gate, and every method on a nil Gate is a cheap no-op that reports
// "keep going" — ungoverned executions pay one predictable nil check.
func (g *Governor) NewGate() *Gate {
	if g == nil {
		return nil
	}
	return &Gate{gov: g, countdown: g.interval}
}

// Step accounts one unit of work (a binding produced or a key scanned) and,
// every CheckInterval steps, runs the full governance check. It reports
// whether the worker should continue.
func (t *Gate) Step() bool {
	if t == nil {
		return true
	}
	t.countdown--
	if t.countdown > 0 {
		return true
	}
	return t.sync()
}

// Produced accounts one emitted result row of the given materialized size
// in bytes (0 when the row is only counted). Budget verification happens on
// the amortized schedule, not here.
func (t *Gate) Produced(bytes int64) {
	if t == nil {
		return
	}
	t.rows++
	t.bytes += bytes
}

// ProducedN accounts n emitted result rows totalling bytes materialized
// bytes. Engines that already count rows for their own bookkeeping charge
// the delta here on the amortized schedule instead of calling Produced per
// row.
func (t *Gate) ProducedN(n, bytes int64) {
	if t == nil {
		return
	}
	t.rows += n
	t.bytes += bytes
}

// Interval returns the owning governor's amortized check interval.
func (t *Gate) Interval() int {
	if t == nil {
		return DefaultCheckInterval
	}
	return t.gov.interval
}

// Tick flushes the accumulators and runs the full governance check now,
// regardless of the built-in countdown. Engines that amortize with their own
// worker-local counter call it when that counter expires; it reports whether
// the worker should continue.
func (t *Gate) Tick() bool {
	if t == nil {
		return true
	}
	return t.sync()
}

// sync flushes the local accumulators and runs the slow-path check.
func (t *Gate) sync() bool {
	t.countdown = t.gov.interval
	rows, bytes := t.rows, t.bytes
	t.rows, t.bytes = 0, 0
	if !t.gov.charge(rows, bytes) {
		return false
	}
	return t.gov.Check()
}

// Close flushes whatever the worker accumulated since its last check, so
// budget accounting is exact once all workers finish. Returns the gate's
// final verdict.
func (t *Gate) Close() bool {
	if t == nil {
		return true
	}
	return t.sync()
}

// Limiter is the store-wide admission controller: a counting semaphore with
// a bounded queue wait. A nil *Limiter admits everything, so ungoverned
// stores pay nothing.
type Limiter struct {
	slots chan struct{}
	wait  time.Duration
}

// NewLimiter admits at most max concurrent queries; a query that cannot be
// admitted within wait is shed with ErrOverloaded. max <= 0 returns nil
// (unlimited). wait <= 0 means "do not queue": over-admission queries are
// shed immediately unless their context is already expired.
func NewLimiter(max int, wait time.Duration) *Limiter {
	if max <= 0 {
		return nil
	}
	return &Limiter{slots: make(chan struct{}, max), wait: wait}
}

// Acquire blocks until a slot is free, the queue wait elapses
// (ErrOverloaded), or ctx is done (typed context error). The queue wait is
// clamped to the caller's remaining context deadline — there is no point
// queuing a query past the moment its deadline kills it — and when the
// deadline, not the configured wait, was the binding constraint the caller
// gets ErrDeadlineExceeded rather than ErrOverloaded: the store was not
// necessarily overloaded, the caller was out of budget. On success the
// caller must Release exactly once.
func (l *Limiter) Acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Dead-on-arrival work must not take a slot even when one is free.
	if ctx.Err() != nil {
		return CtxError(ctx)
	}
	// Fast path: a free slot admits without allocating a timer.
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	wait := l.wait
	deadlineBound := false
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); remaining < wait {
			wait = remaining
			deadlineBound = true
		}
	}
	if wait <= 0 {
		if deadlineBound {
			return fmt.Errorf("%w: no deadline budget left to queue for admission", ErrDeadlineExceeded)
		}
		select {
		case l.slots <- struct{}{}:
			return nil
		case <-ctx.Done():
			return CtxError(ctx)
		default:
			return ErrOverloaded
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return CtxError(ctx)
	case <-timer.C:
		if deadlineBound {
			return fmt.Errorf("%w: deadline expired in admission queue", ErrDeadlineExceeded)
		}
		return ErrOverloaded
	}
}

// Release returns a slot taken by a successful Acquire.
func (l *Limiter) Release() {
	if l == nil {
		return
	}
	select {
	case <-l.slots:
	default:
		panic("governance: Release without Acquire")
	}
}

// InFlight reports the number of currently admitted queries.
func (l *Limiter) InFlight() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}
