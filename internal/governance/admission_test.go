package governance

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parj/internal/resilience"
)

// fakeDeadlineCtx carries a deadline for the limiter to read without the
// stdlib's wall-clock auto-cancellation — the deadline is interpreted
// against the injected FakeClock, which the real context package knows
// nothing about.
type fakeDeadlineCtx struct {
	context.Context
	dl time.Time
}

func (c fakeDeadlineCtx) Deadline() (time.Time, bool) { return c.dl, true }

// waitForWaiters polls until n timers are registered on the fake clock.
// Abandoned timers stay registered until they fire, so callers pass a
// cumulative count (clk.Waiters() before spawning, plus one).
func waitForWaiters(t *testing.T, clk *resilience.FakeClock, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d clock waiters", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestAdaptiveLimiterSheddingHysteresis drives the CoDel state machine on
// a FakeClock: one above-target sojourn must not flip shedding, sojourn
// sustained above target for a full interval must, and a single
// below-target admission must flip it back.
func TestAdaptiveLimiterSheddingHysteresis(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(0, 0))
	l := NewAdaptiveLimiter(AdmissionOptions{
		MaxConcurrent: 1,
		MaxWait:       time.Second,
		Target:        5 * time.Millisecond,
		Interval:      100 * time.Millisecond,
		Clock:         clk,
	})

	// Seed: fast-path admission, zero sojourn.
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// queued parks one more Acquire behind the held slot.
	queued := func(ctx context.Context) chan error {
		base := clk.Waiters()
		ch := make(chan error, 1)
		go func() { ch <- l.Acquire(ctx) }()
		waitForWaiters(t, clk, base+1)
		return ch
	}

	// Sojourn above target but shorter than an interval: admitted, and the
	// controller must only note the excursion.
	ch := queued(context.Background())
	clk.Advance(10 * time.Millisecond)
	l.Release()
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	if l.Stats().Shedding {
		t.Fatal("one above-target sojourn flipped shedding — hysteresis lost")
	}

	// A second above-target sojourn lands a full interval after the first
	// excursion began: now shedding starts.
	ch = queued(context.Background())
	clk.Advance(110 * time.Millisecond)
	l.Release()
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	if !l.Stats().Shedding {
		t.Fatal("sojourn above target across a full interval did not start shedding")
	}

	// In shedding mode a queued arrival waits only Target before it is
	// refused with a typed, hinted overload.
	ch = queued(context.Background())
	clk.Advance(5 * time.Millisecond)
	err := <-ch
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed error = %v, want ErrOverloaded", err)
	}
	if hint := RetryAfterHint(err, 0); hint < 100*time.Millisecond {
		t.Fatalf("Retry-After hint = %v, want at least the control interval", hint)
	}
	if st := l.Stats(); st.Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", st.Sheds)
	}

	// One below-target admission (free slot, zero sojourn) exits shedding.
	l.Release()
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Shedding {
		t.Fatal("below-target admission did not exit shedding")
	}
	l.Release()
}

// TestAdaptiveLimiterDeadlineRefusal: while saturated, an arrival whose
// remaining budget is below the queue-delay estimate is refused on arrival
// as a deadline error (never an overload), and a deadline that binds the
// queue wait expires as a deadline error too.
func TestAdaptiveLimiterDeadlineRefusal(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(0, 0))
	l := NewAdaptiveLimiter(AdmissionOptions{
		MaxConcurrent: 1,
		MaxWait:       time.Second,
		Target:        time.Millisecond,
		Interval:      10 * time.Millisecond,
		Clock:         clk,
	})
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Build a 50ms sojourn so the estimate rises well above small budgets.
	ch := make(chan error, 1)
	base := clk.Waiters()
	go func() { ch <- l.Acquire(context.Background()) }()
	waitForWaiters(t, clk, base+1)
	clk.Advance(50 * time.Millisecond)
	l.Release()
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	if est := l.QueueDelayEstimate(); est < 5*time.Millisecond {
		t.Fatalf("estimate = %v after a 50ms sojourn, want a two-digit-ms figure", est)
	}
	if !l.Saturated() {
		t.Fatal("slot is held, limiter should report saturated")
	}

	// Saturated + budget below estimate: refused on arrival.
	small := fakeDeadlineCtx{context.Background(), clk.Now().Add(2 * time.Millisecond)}
	err := l.Acquire(small)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired-on-arrival err = %v, want ErrDeadlineExceeded", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("deadline refusal must not also be typed ErrOverloaded")
	}
	if st := l.Stats(); st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}

	// Budget above the estimate queues; when the deadline binds the wait,
	// expiry is a deadline error, not a shed.
	bigger := fakeDeadlineCtx{context.Background(), clk.Now().Add(70 * time.Millisecond)}
	base = clk.Waiters()
	go func() { ch <- l.Acquire(bigger) }()
	waitForWaiters(t, clk, base+1)
	clk.Advance(70 * time.Millisecond)
	err = <-ch
	if !errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("deadline-bound queue expiry = %v, want pure ErrDeadlineExceeded", err)
	}
}

// TestAdaptiveLimiterEstimateCannotLatch is the regression for a starvation
// mode: when the sojourn estimate exceeds every client's budget but a slot
// is FREE, the arrival must be admitted (the estimate is stale by
// definition) — and that admission is what decays the estimate. Refusing
// before trying the fast path would lock every small-budget client out of
// an idle store forever.
func TestAdaptiveLimiterEstimateCannotLatch(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(0, 0))
	l := NewAdaptiveLimiter(AdmissionOptions{
		MaxConcurrent: 1,
		MaxWait:       time.Second,
		Target:        time.Millisecond,
		Interval:      10 * time.Millisecond,
		Clock:         clk,
	})

	// Latch the estimate high: hold the slot, park a waiter 500ms.
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ch := make(chan error, 1)
	base := clk.Waiters()
	go func() { ch <- l.Acquire(context.Background()) }()
	waitForWaiters(t, clk, base+1)
	clk.Advance(500 * time.Millisecond)
	l.Release()
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	l.Release() // both slots back; limiter idle, estimate ~150ms

	if l.Saturated() {
		t.Fatal("limiter is idle, must not report saturated")
	}
	est := l.QueueDelayEstimate()
	if est <= 10*time.Millisecond {
		t.Fatalf("estimate = %v, expected it latched high for this test", est)
	}

	// An idle limiter must admit a budget far below the stale estimate.
	small := fakeDeadlineCtx{context.Background(), clk.Now().Add(est / 10)}
	if err := l.Acquire(small); err != nil {
		t.Fatalf("free slot refused a small-budget arrival on a stale estimate: %v", err)
	}
	l.Release()
	if now := l.QueueDelayEstimate(); now >= est {
		t.Fatalf("fast-path admission did not decay the estimate: %v -> %v", est, now)
	}
}

// TestLimiterDeadlineClamp is the regression for the fixed-wait limiter:
// the queue wait is clamped to the caller's remaining deadline, and when
// the deadline binds, the error is ErrDeadlineExceeded — the caller ran
// out of budget; the store was not necessarily overloaded.
func TestLimiterDeadlineClamp(t *testing.T) {
	l := NewLimiter(1, 10*time.Second)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer l.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := l.Acquire(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("deadline-bound expiry must not be typed ErrOverloaded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Acquire queued %v — the 10s wait was not clamped to the 30ms deadline", elapsed)
	}
}

// TestPoolConcurrentCharges: racing charges against one pool admit exactly
// capacity/size winners, losers reserve nothing, and releases restore the
// pool fully.
func TestPoolConcurrentCharges(t *testing.T) {
	p := NewPool(1000)
	var wg sync.WaitGroup
	var won atomic.Int64
	for i := 0; i < 150; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p.TryCharge(10) {
				won.Add(1)
			}
		}()
	}
	wg.Wait()
	if won.Load() != 100 {
		t.Fatalf("%d charges won, want exactly 100", won.Load())
	}
	if p.Used() != 1000 {
		t.Fatalf("used = %d, want 1000", p.Used())
	}
	if p.TryCharge(1) {
		t.Fatal("full pool admitted another charge")
	}
	p.Release(1000)
	if p.Used() != 0 {
		t.Fatalf("used after full release = %d, want 0", p.Used())
	}
	if !p.TryCharge(1000) {
		t.Fatal("drained pool refused a full-capacity charge")
	}
}
