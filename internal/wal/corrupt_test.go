package wal

import (
	"errors"
	"io"
	"testing"

	"parj/internal/rdf"
)

// corrupt_test.go — exhaustive corruption coverage mirroring
// snapshot_corrupt_test.go: every single-bit flip of a segment file must
// either surface as typed ErrCorruptWAL or recover to a clean prefix
// that only ever sacrifices the final record (the one flip-reachable
// torn-tail ambiguity). Nothing may panic, and nothing may fork or
// reorder the surviving records.

// buildSegmentRaw appends n records through a real log and returns the
// raw bytes of its single segment file plus the records. It panics on
// unexpected I/O failure so the fuzz seeder can share it.
func buildSegmentRaw(n int) ([]byte, []Record) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs})
	if err != nil {
		panic(err)
	}
	var recs []Record
	for seq := uint64(1); seq <= uint64(n); seq++ {
		rec := testRec(seq)
		if seq%3 == 0 {
			rec.Deletes = []rdf.Triple{{S: "<http://d>", P: "<http://p>", O: "<http://o>"}}
		}
		if err := l.Append(rec); err != nil {
			panic(err)
		}
		recs = append(recs, rec)
	}
	if err := l.Close(); err != nil {
		panic(err)
	}
	f, err := fs.Open(segName(1))
	if err != nil {
		panic(err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		panic(err)
	}
	return data, recs
}

// openRaw plants data as the first segment of a fresh MemFS and opens it.
func openRaw(data []byte) (*Log, error) {
	fs := NewMemFS()
	f, err := fs.Create(segName(1))
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(data); err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	f.Close()
	if err := fs.SyncDir(); err != nil {
		return nil, err
	}
	return Open(Options{FS: fs})
}

func TestWALDetectsBitFlips(t *testing.T) {
	data, want := buildSegmentRaw(6)
	n := len(want)
	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << bit
			l, err := openRaw(mut)
			if err != nil {
				if !errors.Is(err, ErrCorruptWAL) {
					t.Fatalf("pos %d bit %d: untyped error %v", pos, bit, err)
				}
				continue
			}
			var got []Record
			rerr := l.Replay(1, func(r Record) error { got = append(got, r); return nil })
			l.Close()
			if rerr != nil {
				if !errors.Is(rerr, ErrCorruptWAL) {
					t.Fatalf("pos %d bit %d: untyped replay error %v", pos, bit, rerr)
				}
				continue
			}
			// Accepted: must be a clean prefix, at worst dropping the
			// final record (the flip landed in the tail frame, which is
			// indistinguishable from a torn write).
			if len(got) < n-1 {
				t.Fatalf("pos %d bit %d: lost %d records silently", pos, bit, n-len(got))
			}
			for i, rec := range got {
				if rec.Seq != want[i].Seq || len(rec.Inserts) != len(want[i].Inserts) {
					t.Fatalf("pos %d bit %d: record %d diverged", pos, bit, i)
				}
				if rec.Inserts[0] != want[i].Inserts[0] {
					t.Fatalf("pos %d bit %d: record %d content diverged", pos, bit, i)
				}
			}
		}
	}
}

func TestWALDetectsBitFlipsMultiSegment(t *testing.T) {
	// Build a multi-segment log; every flip in a NON-final segment must be
	// typed corruption — never silent truncation of acknowledged middles.
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs, SegmentBytes: 256})
	for seq := uint64(1); seq <= 20; seq++ {
		if err := l.Append(testRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Stats().Segments < 2 {
		t.Fatal("need at least two segments")
	}
	l.Close()
	names, _ := fs.List()
	first := ""
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			first = name
			break
		}
	}
	f, _ := fs.Open(first)
	data, _ := io.ReadAll(f)
	f.Close()

	for pos := 0; pos < len(data); pos += 7 { // stride: full matrix is the single-segment test
		mut := fs.Recover() // fresh copy of the whole directory
		fh, err := mut.Create(first)
		if err != nil {
			t.Fatal(err)
		}
		flip := append([]byte(nil), data...)
		flip[pos] ^= 0x10
		fh.Write(flip)
		fh.Sync()
		fh.Close()
		mut.SyncDir()
		l2, err := Open(Options{FS: mut})
		if err == nil {
			l2.Close()
			t.Fatalf("pos %d: damaged non-final segment accepted", pos)
		}
		if !errors.Is(err, ErrCorruptWAL) {
			t.Fatalf("pos %d: untyped error %v", pos, err)
		}
	}
}

func TestWALTruncationTyped(t *testing.T) {
	data, want := buildSegmentRaw(6)
	// Every truncation length must open cleanly (torn tail) with a prefix
	// of the records — truncation is the one damage a crash legitimately
	// produces, so it is repaired, not reported.
	for cut := 0; cut < len(data); cut++ {
		l, err := openRaw(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: torn tail not repaired: %v", cut, err)
		}
		var got []Record
		if err := l.Replay(1, func(r Record) error { got = append(got, r); return nil }); err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}
		l.Close()
		if len(got) > len(want) {
			t.Fatalf("cut %d: %d records from %d", cut, len(got), len(want))
		}
		for i, rec := range got {
			if rec.Seq != want[i].Seq {
				t.Fatalf("cut %d: record %d seq %d", cut, i, rec.Seq)
			}
		}
	}
}

// FuzzWALReplay feeds arbitrary bytes through segment recovery and
// replay: whatever the input, Open either succeeds (and replays a
// gap-free sequence) or fails with typed ErrCorruptWAL — never a panic,
// never an unbounded allocation.
func FuzzWALReplay(f *testing.F) {
	data, _ := buildSegmentRaw(3)
	f.Add(data)
	f.Add(data[:len(data)-3])
	f.Add([]byte(segHeader))
	f.Add([]byte{})
	mut := append([]byte(nil), data...)
	mut[len(segHeader)+2] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := openRaw(b)
		if err != nil {
			if !errors.Is(err, ErrCorruptWAL) {
				t.Fatalf("untyped open error: %v", err)
			}
			return
		}
		defer l.Close()
		var prev uint64
		err = l.Replay(1, func(r Record) error {
			if prev != 0 && r.Seq != prev+1 {
				t.Fatalf("replayed gap: %d after %d", r.Seq, prev)
			}
			prev = r.Seq
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorruptWAL) {
			t.Fatalf("untyped replay error: %v", err)
		}
	})
}
