package wal

import (
	"errors"
	"io"
	"testing"

	"parj/internal/testutil"
)

// crash_test.go — the log-level crash matrix. Every scenario appends
// records against a scripted fault, crashes, recovers the filesystem as
// a restarted process would find it, and checks the invariant that makes
// the WAL a WAL:
//
//	recovered records = a gap-free prefix of what was appended,
//	and at least everything whose Commit.Wait returned nil.
//
// The store- and cluster-level crash suites build on this with oracle
// triple-set equality; here the oracle is the append history itself.

// appendUntilCrash appends records 1..n, returning the highest sequence
// whose durability was acknowledged before the crash (0 when none).
func appendUntilCrash(t *testing.T, l *Log, n uint64) (acked uint64) {
	t.Helper()
	for seq := uint64(1); seq <= n; seq++ {
		if err := l.Append(testRec(seq)); err != nil {
			return acked
		}
		acked = seq
	}
	return acked
}

// recoverAndCheck reopens the log from the crashed filesystem and
// asserts the invariant. Returns the recovered last sequence.
func recoverAndCheck(t *testing.T, fs *MemFS, acked uint64) uint64 {
	t.Helper()
	rfs := fs.Recover()
	l, err := Open(Options{FS: rfs})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer l.Close()
	recs := replayAll(t, l, 1)
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("recovered sequence forked: record %d has seq %d", i, rec.Seq)
		}
		if rec.Inserts[0] != testRec(rec.Seq).Inserts[0] {
			t.Fatalf("recovered record %d content mismatch", rec.Seq)
		}
	}
	last := l.LastSeq()
	if uint64(len(recs)) != last {
		t.Fatalf("replay count %d vs LastSeq %d", len(recs), last)
	}
	if last < acked {
		t.Fatalf("acknowledged write lost: acked %d, recovered %d", acked, last)
	}
	// Recovery is idempotent: a second open sees the same state.
	l2, err := Open(Options{FS: rfs})
	if err != nil {
		t.Fatalf("second recovery Open: %v", err)
	}
	defer l2.Close()
	if l2.LastSeq() != last {
		t.Fatalf("recovery not idempotent: %d then %d", last, l2.LastSeq())
	}
	return last
}

func TestWALCrashBeforeFsync(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs})
	// Segment header sync is #1; kill the fsync covering some later record.
	fs.FailAt(OpSync, 4, CrashBefore)
	acked := appendUntilCrash(t, l, 50)
	if !fs.Crashed() {
		t.Fatal("fault never fired")
	}
	l.Close()
	last := recoverAndCheck(t, fs, acked)
	if last < acked || last > acked+1 {
		t.Fatalf("recovered %d with %d acked", last, acked)
	}
}

func TestWALCrashAfterFsync(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs})
	fs.FailAt(OpSync, 4, CrashAfter)
	acked := appendUntilCrash(t, l, 50)
	if !fs.Crashed() {
		t.Fatal("fault never fired")
	}
	l.Close()
	// The fsync completed: everything it covered must be back, including
	// the record whose ack raced the kill.
	last := recoverAndCheck(t, fs, acked)
	if last < acked {
		t.Fatalf("recovered %d with %d acked", last, acked)
	}
}

func TestWALCrashTornLastFrame(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs})
	// Header write is OpWrite #1; tear a later frame mid-write and let
	// its prefix survive the crash — the canonical torn tail.
	fs.FailAt(OpWrite, 7, TornWrite)
	acked := appendUntilCrash(t, l, 50)
	if !fs.Crashed() {
		t.Fatal("fault never fired")
	}
	l.Close()
	last := recoverAndCheck(t, fs, acked)
	if last != acked {
		t.Fatalf("torn frame: recovered %d, acked %d", last, acked)
	}
}

func TestWALCrashMidBurstLosesOnlyUnacked(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs})
	fs.FailAt(OpWrite, 9, CrashBefore)
	acked := appendUntilCrash(t, l, 50)
	if !fs.Crashed() {
		t.Fatal("fault never fired")
	}
	l.Close()
	recoverAndCheck(t, fs, acked)
}

func TestWALCrashDuringRotation(t *testing.T) {
	defer testutil.LeakCheck(t)()
	for _, fault := range []Fault{CrashBefore, CrashAfter} {
		fs := NewMemFS()
		l := mustOpen(t, Options{FS: fs, SegmentBytes: 200})
		// Kill around a segment-creation: the 2nd Create is the first
		// rotation's new segment.
		fs.FailAt(OpCreate, 2, fault)
		acked := appendUntilCrash(t, l, 60)
		if !fs.Crashed() {
			t.Fatalf("fault %v never fired", fault)
		}
		l.Close()
		recoverAndCheck(t, fs, acked)
	}
}

func TestWALCrashDirSyncSkipped(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs, SegmentBytes: 200})
	// The filesystem lies about directory durability: segment files
	// created after the skip vanish wholesale on crash. Acknowledged
	// records in them are lost — exactly the failure the protocol's
	// dir-fsync exists to prevent — but what does come back must still
	// be a gap-free prefix, never a fork or a hole.
	fs.SkipDirSync(true)
	for seq := uint64(1); seq <= 60; seq++ {
		if err := l.Append(testRec(seq)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	fs.Crash()
	l.Close()
	last := recoverAndCheck(t, fs, 0)
	if last >= 60 {
		t.Fatalf("skipped dir-fsync yet nothing lost (recovered %d) — fault not exercised", last)
	}
}

func TestWALCrashShortWriteThenRecover(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs})
	fs.FailAt(OpWrite, 5, ShortWrite)
	var acked uint64
	for seq := uint64(1); seq <= 20; seq++ {
		err := l.Append(testRec(seq))
		if err != nil {
			if !errors.Is(err, ErrShortWrite) {
				t.Fatalf("Append %d: %v", seq, err)
			}
			break
		}
		acked = seq
	}
	// The process survived the short write; the log is poisoned. Simulate
	// an orderly restart: crash the FS (dropping unsynced bytes) and
	// recover.
	fs.Crash()
	l.Close()
	last := recoverAndCheck(t, fs, acked)
	if last != acked {
		t.Fatalf("short write: recovered %d, acked %d", last, acked)
	}
}

func TestWALCrashBitFlippedTailFrame(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs})
	const n = 10
	for seq := uint64(1); seq <= n; seq++ {
		if err := l.Append(testRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	fs.FlipBitOnRecover(4) // inside the final frame's payload
	fs.Crash()
	l.Close()
	rfs := fs.Recover()
	l2, err := Open(Options{FS: rfs})
	if err != nil {
		// Acceptable only as typed corruption, never a panic or a fork.
		if !errors.Is(err, ErrCorruptWAL) {
			t.Fatalf("bit flip: untyped error %v", err)
		}
		return
	}
	defer l2.Close()
	// The flipped frame failed its CRC with nothing valid after it: the
	// tail was dropped, everything before it survives.
	if got := l2.LastSeq(); got != n-1 {
		t.Fatalf("bit-flipped tail: recovered %d, want %d", got, n-1)
	}
}

func TestWALCrashBitFlippedMidLogIsCorrupt(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs})
	const n = 10
	var tailBytes int
	for seq := uint64(1); seq <= n; seq++ {
		rec := testRec(seq)
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq == n {
			frame, _ := appendRecord(nil, rec)
			tailBytes = len(frame)
		}
	}
	// Flip a bit well before the final frame: valid frames follow the
	// damage, so truncation would silently drop acknowledged records —
	// this must surface as typed corruption instead.
	fs.FlipBitOnRecover(tailBytes + 20)
	fs.Crash()
	l.Close()
	_, err := Open(Options{FS: fs.Recover()})
	if !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("mid-log bit flip: got %v, want ErrCorruptWAL", err)
	}
}

func TestWALCrashDuringCheckpointKeepsOld(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs, SegmentBytes: 200})
	save := func(w io.Writer) error { _, err := w.Write([]byte("ckpt")); return err }
	for seq := uint64(1); seq <= 20; seq++ {
		if err := l.Append(testRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Checkpoint(10, save); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Kill inside the next checkpoint's publish rename.
	fs.FailAt(OpRename, 2, CrashBefore)
	if err := l.Checkpoint(20, save); err == nil {
		t.Fatal("checkpoint survived injected crash")
	}
	l.Close()
	rfs := fs.Recover()
	l2, err := Open(Options{FS: rfs})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer l2.Close()
	cks := l2.Checkpoints()
	if len(cks) == 0 || cks[0] != 10 {
		t.Fatalf("old checkpoint lost: %v", cks)
	}
	// No stray temp file survives recovery.
	names, _ := rfs.List()
	for _, name := range names {
		if len(name) > len(tmpSuffix) && name[len(name)-len(tmpSuffix):] == tmpSuffix {
			t.Fatalf("stray temp file %s after recovery", name)
		}
	}
	// And the full record suffix is still replayable past the old
	// checkpoint.
	recs := replayAll(t, l2, 11)
	if len(recs) != 10 || recs[len(recs)-1].Seq != 20 {
		t.Fatalf("suffix after failed checkpoint: %d records", len(recs))
	}
}
