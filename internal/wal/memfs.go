package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// memfs.go — a deterministic crash-injection filesystem.
//
// MemFS models exactly the durability semantics the WAL's protocol must
// defend against:
//
//   - File bytes written but not yet File.Sync'd live in a pending buffer
//     that a crash discards (the page cache).
//   - Directory entries created, renamed or removed are pending until
//     SyncDir commits the namespace; a crash rolls the namespace back to
//     the last committed one — a fully fsynced file whose entry was never
//     dir-fsynced vanishes.
//
// Faults are scripted, not random: FailAt arms a rule that fires on the
// Nth operation of a given kind, either crashing the "process" before or
// after the operation, persisting only a prefix of a write (a torn write
// that does survive the crash), or returning a short-write error without
// crashing. After a crash every subsequent operation fails with
// ErrCrashed; Recover yields a fresh MemFS seeded with exactly the bytes
// and entries that were durable — the disk as the restarted process finds
// it.

// ErrCrashed reports an operation on a MemFS whose simulated process has
// been killed.
var ErrCrashed = errors.New("wal: simulated crash")

// ErrShortWrite reports an injected short write (disk-full style): part of
// the data was accepted, the process keeps running.
var ErrShortWrite = errors.New("wal: injected short write")

// Op identifies a filesystem operation kind for fault scripting.
type Op int

// Operation kinds an injected fault can target.
const (
	OpWrite Op = iota
	OpSync
	OpCreate
	OpRename
	OpRemove
	OpDirSync
	OpTruncate
)

var opNames = map[Op]string{
	OpWrite: "write", OpSync: "sync", OpCreate: "create",
	OpRename: "rename", OpRemove: "remove", OpDirSync: "dirsync",
	OpTruncate: "truncate",
}

func (o Op) String() string { return opNames[o] }

// Fault is what happens when an armed rule fires.
type Fault int

// Fault kinds.
const (
	// CrashBefore kills the process before the operation takes effect.
	CrashBefore Fault = iota
	// CrashAfter lets the operation take effect, then kills the process;
	// the operation itself reports success and death is observed on the
	// next call.
	CrashAfter
	// TornWrite (OpWrite only) persists a prefix of the write across the
	// crash — the classic torn final frame.
	TornWrite
	// ShortWrite (OpWrite only) accepts a prefix and returns ErrShortWrite
	// without crashing; the process survives to observe the error.
	ShortWrite
)

type faultRule struct {
	op    Op
	n     int // fires on the n-th matching operation, 1-based
	fault Fault
	fired bool
}

type memFile struct {
	durable []byte
	pending []byte
}

func (f *memFile) size() int { return len(f.durable) + len(f.pending) }

func (f *memFile) bytes() []byte {
	b := make([]byte, 0, f.size())
	b = append(b, f.durable...)
	return append(b, f.pending...)
}

// MemFS is an in-memory FS with scripted crash injection. The zero value
// is not usable; call NewMemFS.
type MemFS struct {
	mu      sync.Mutex
	view    map[string]*memFile // the live namespace the process sees
	durable map[string]*memFile // the namespace a crash rolls back to
	crashed bool

	rules       []*faultRule
	counts      map[Op]int
	skipDirSync bool
	flipByte    int // bit-flip offset from end of last wal segment at Recover; -1 = off
	syncs       int
}

// NewMemFS returns an empty crash-injectable filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		view:     map[string]*memFile{},
		durable:  map[string]*memFile{},
		counts:   map[Op]int{},
		flipByte: -1,
	}
}

// FailAt arms a fault rule: the n-th operation (1-based) of kind op
// triggers fault. Multiple rules may be armed; each fires at most once.
func (fs *MemFS) FailAt(op Op, n int, fault Fault) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rules = append(fs.rules, &faultRule{op: op, n: n, fault: fault})
}

// SkipDirSync makes SyncDir silently succeed without committing the
// namespace — modeling a filesystem (or code path) that skips the
// directory fsync, so entries created since the last real commit vanish
// on crash.
func (fs *MemFS) SkipDirSync(skip bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.skipDirSync = skip
}

// FlipBitOnRecover arms a single bit flip applied at Recover time to the
// durable bytes of the lexically last WAL segment, offset bytes from its
// end — silent media corruption discovered only on reopen.
func (fs *MemFS) FlipBitOnRecover(offsetFromEnd int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.flipByte = offsetFromEnd
}

// Crash kills the simulated process: every subsequent operation fails
// with ErrCrashed until Recover.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashLocked(nil)
}

// Crashed reports whether the simulated process has been killed.
func (fs *MemFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Syncs reports how many file fsyncs have completed — the cost metric
// group commit exists to reduce.
func (fs *MemFS) Syncs() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncs
}

// crashLocked marks the process dead. keep, when non-nil, is the file
// whose pending bytes survive the crash (a torn write that hit the
// platter); all other pending bytes are lost.
func (fs *MemFS) crashLocked(keep *memFile) {
	if fs.crashed {
		return
	}
	fs.crashed = true
	if keep != nil {
		keep.durable = append(keep.durable, keep.pending...)
		keep.pending = nil
	}
}

// Recover returns the filesystem as a restarted process finds it: only
// durable bytes of files whose directory entries were committed, no armed
// faults. The receiver stays crashed; the result is independent.
func (fs *MemFS) Recover() *MemFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nfs := NewMemFS()
	for name, f := range fs.durable {
		nf := &memFile{durable: append([]byte(nil), f.durable...)}
		nfs.view[name] = nf
		nfs.durable[name] = nf
	}
	if fs.flipByte >= 0 {
		var names []string
		for name := range nfs.view {
			if strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		if len(names) > 0 {
			f := nfs.view[names[len(names)-1]]
			if i := len(f.durable) - 1 - fs.flipByte; i >= 0 {
				f.durable[i] ^= 1 << uint(fs.flipByte%8)
			}
		}
	}
	return nfs
}

// DurableNames lists the committed directory entries, sorted.
func (fs *MemFS) DurableNames() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.durable))
	for name := range fs.durable {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// check counts the operation and fires any due rule. It returns the fault
// to apply (or -1) and whether the operation may proceed.
func (fs *MemFS) check(op Op) (Fault, error) {
	if fs.crashed {
		return -1, ErrCrashed
	}
	fs.counts[op]++
	for _, r := range fs.rules {
		if r.fired || r.op != op || fs.counts[op] != r.n {
			continue
		}
		r.fired = true
		if r.fault == CrashBefore {
			fs.crashLocked(nil)
			return -1, ErrCrashed
		}
		return r.fault, nil
	}
	return -1, nil
}

// Create implements FS. The entry is pending until SyncDir.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fault, err := fs.check(OpCreate)
	if err != nil {
		return nil, err
	}
	f := &memFile{}
	fs.view[name] = f
	if fault == CrashAfter {
		fs.crashLocked(nil)
	}
	return &memHandle{fs: fs, f: f, writable: true}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.view[name]
	if !ok {
		return nil, fmt.Errorf("wal: open %s: %w", name, errNotExist)
	}
	return &memHandle{fs: fs, f: f}, nil
}

// OpenAppend implements FS.
func (fs *MemFS) OpenAppend(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.view[name]
	if !ok {
		return nil, fmt.Errorf("wal: append %s: %w", name, errNotExist)
	}
	return &memHandle{fs: fs, f: f, writable: true, pos: f.size()}, nil
}

// List implements FS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	names := make([]string, 0, len(fs.view))
	for name := range fs.view {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS. Removal is pending until SyncDir.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fault, err := fs.check(OpRemove)
	if err != nil {
		return err
	}
	if _, ok := fs.view[name]; !ok {
		return fmt.Errorf("wal: remove %s: %w", name, errNotExist)
	}
	delete(fs.view, name)
	if fault == CrashAfter {
		fs.crashLocked(nil)
	}
	return nil
}

// Rename implements FS. The rename is pending until SyncDir.
func (fs *MemFS) Rename(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fault, err := fs.check(OpRename)
	if err != nil {
		return err
	}
	f, ok := fs.view[oldName]
	if !ok {
		return fmt.Errorf("wal: rename %s: %w", oldName, errNotExist)
	}
	delete(fs.view, oldName)
	fs.view[newName] = f
	if fault == CrashAfter {
		fs.crashLocked(nil)
	}
	return nil
}

// Truncate implements FS. The truncation applies to the combined bytes
// and is treated as immediately durable up to the durable prefix — the
// log only truncates during recovery repair, before new appends.
func (fs *MemFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fault, err := fs.check(OpTruncate)
	if err != nil {
		return err
	}
	f, ok := fs.view[name]
	if !ok {
		return fmt.Errorf("wal: truncate %s: %w", name, errNotExist)
	}
	if n := int(size); n < f.size() {
		if n <= len(f.durable) {
			f.durable = f.durable[:n]
			f.pending = nil
		} else {
			f.pending = f.pending[:n-len(f.durable)]
		}
	}
	if fault == CrashAfter {
		fs.crashLocked(nil)
	}
	return nil
}

// SyncDir implements FS: it commits the namespace, unless SkipDirSync is
// in force.
func (fs *MemFS) SyncDir() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fault, err := fs.check(OpDirSync)
	if err != nil {
		return err
	}
	if !fs.skipDirSync {
		fs.durable = make(map[string]*memFile, len(fs.view))
		for name, f := range fs.view {
			fs.durable[name] = f
		}
	}
	if fault == CrashAfter {
		fs.crashLocked(nil)
	}
	return nil
}

var errNotExist = errors.New("file does not exist")

type memHandle struct {
	fs       *MemFS
	f        *memFile
	pos      int
	writable bool
	closed   bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, errors.New("wal: read on closed file")
	}
	b := h.f.bytes()
	if h.pos >= len(b) {
		return 0, io.EOF
	}
	n := copy(p, b[h.pos:])
	h.pos += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	fault, err := h.fs.check(OpWrite)
	if err != nil {
		return 0, err
	}
	if h.closed || !h.writable {
		return 0, errors.New("wal: write on closed or read-only file")
	}
	switch fault {
	case TornWrite:
		keep := len(p) / 2
		h.f.pending = append(h.f.pending, p[:keep]...)
		h.fs.crashLocked(h.f)
		return keep, ErrCrashed
	case ShortWrite:
		keep := len(p) / 2
		h.f.pending = append(h.f.pending, p[:keep]...)
		h.pos = h.f.size()
		return keep, ErrShortWrite
	}
	h.f.pending = append(h.f.pending, p...)
	h.pos = h.f.size()
	if fault == CrashAfter {
		h.fs.crashLocked(nil)
	}
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	fault, err := h.fs.check(OpSync)
	if err != nil {
		return err
	}
	h.f.durable = append(h.f.durable, h.f.pending...)
	h.f.pending = nil
	h.fs.syncs++
	if fault == CrashAfter {
		h.fs.crashLocked(nil)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
