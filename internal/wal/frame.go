package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"parj/internal/rdf"
)

// frame.go — the wire format of the log.
//
// Segment files open with an 8-byte header ("PARJWAL1") and continue with
// frames. Every frame is independently verifiable:
//
//	[u32 frameMagic][u32 payloadLen][u32 crc32(payload)][payload]
//
// and the payload is one Record:
//
//	u64 seq
//	u32 nInserts, then nInserts triples
//	u32 nDeletes, then nDeletes triples
//	triple = 3 × (u32 len, bytes)  // S, P, O
//
// Decoding is incremental and bounds-checked against the frame length, so
// hostile length prefixes cannot drive allocations past the data actually
// present — the same discipline as the snapshot reader.

// ErrCorruptWAL reports log damage that cannot be explained by a crash
// mid-append: a bad frame with valid frames after it, a damaged segment
// header, a sequence discontinuity, or an undecodable CRC-valid payload.
// A torn tail — a damaged suffix of the final segment with nothing valid
// after it — is not corruption; Open repairs it by truncation.
var ErrCorruptWAL = errors.New("wal: corrupt log")

const (
	segHeader   = "PARJWAL1"
	segPrefix   = "wal-"
	segSuffix   = ".seg"
	ckptPrefix  = "ckpt-"
	ckptSuffix  = ".snap"
	tmpSuffix   = ".tmp"
	frameMagic  = 0x50414A57 // "PAJW"
	frameHdrLen = 12
	// maxFramePayload bounds a single record frame; mirrors the write
	// path's request cap with generous headroom.
	maxFramePayload = 64 << 20
)

// Record is one sequenced write batch: deletes are applied before
// inserts, the order the replication contract fixes.
type Record struct {
	Seq     uint64
	Inserts []rdf.Triple
	Deletes []rdf.Triple
}

func segName(start uint64) string              { return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix) }
func ckptName(seq uint64) string               { return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix) }
func parseSegName(name string) (uint64, bool)  { return parseSeqName(name, segPrefix, segSuffix) }
func parseCkptName(name string) (uint64, bool) { return parseSeqName(name, ckptPrefix, ckptSuffix) }

func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	for _, c := range []byte(name[len(prefix) : len(prefix)+16]) {
		switch {
		case c >= '0' && c <= '9':
			seq = seq<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			seq = seq<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return seq, true
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptWAL, fmt.Sprintf(format, args...))
}

// appendRecord encodes rec as one frame (header + payload) onto buf.
func appendRecord(buf []byte, rec Record) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf = binary.LittleEndian.AppendUint64(buf, rec.Seq)
	var err error
	if buf, err = appendTriples(buf, rec.Inserts); err != nil {
		return nil, err
	}
	if buf, err = appendTriples(buf, rec.Deletes); err != nil {
		return nil, err
	}
	payloadLen := len(buf) - start - frameHdrLen
	if payloadLen > maxFramePayload {
		return nil, fmt.Errorf("wal: record %d exceeds frame cap (%d bytes)", rec.Seq, payloadLen)
	}
	binary.LittleEndian.PutUint32(buf[start:], frameMagic)
	binary.LittleEndian.PutUint32(buf[start+4:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+8:], crc32.ChecksumIEEE(buf[start+frameHdrLen:]))
	return buf, nil
}

func appendTriples(buf []byte, ts []rdf.Triple) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ts)))
	for _, t := range ts {
		for _, s := range [3]string{t.S, t.P, t.O} {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf, nil
}

// decodeRecord parses a CRC-validated frame payload. Any malformation
// here is corruption: the checksum matched, so the bytes are what the
// writer produced.
func decodeRecord(payload []byte) (Record, error) {
	var rec Record
	if len(payload) < 8 {
		return rec, corruptf("record payload too short (%d bytes)", len(payload))
	}
	rec.Seq = binary.LittleEndian.Uint64(payload)
	rest := payload[8:]
	var err error
	if rec.Inserts, rest, err = decodeTriples(rest); err != nil {
		return rec, err
	}
	if rec.Deletes, rest, err = decodeTriples(rest); err != nil {
		return rec, err
	}
	if len(rest) != 0 {
		return rec, corruptf("record %d: %d trailing payload bytes", rec.Seq, len(rest))
	}
	return rec, nil
}

func decodeTriples(b []byte) ([]rdf.Triple, []byte, error) {
	if len(b) < 4 {
		return nil, nil, corruptf("truncated triple count")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n == 0 {
		return nil, b, nil
	}
	// Each triple needs at least 12 bytes of length prefixes; bound the
	// allocation by what the payload can actually hold.
	if n > len(b)/12 {
		return nil, nil, corruptf("triple count %d exceeds payload", n)
	}
	ts := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		var parts [3]string
		for j := 0; j < 3; j++ {
			if len(b) < 4 {
				return nil, nil, corruptf("truncated term length")
			}
			sz := int(binary.LittleEndian.Uint32(b))
			b = b[4:]
			if sz > len(b) {
				return nil, nil, corruptf("term length %d exceeds payload", sz)
			}
			parts[j] = string(b[:sz])
			b = b[sz:]
		}
		ts = append(ts, rdf.Triple{S: parts[0], P: parts[1], O: parts[2]})
	}
	return ts, b, nil
}

// scanFrames walks the frames of segment data (header included),
// invoking fn for each valid frame payload in order. lenientTail selects
// crash semantics for the final segment: an invalid region with no valid
// frame after it is a torn tail, and scanning stops there cleanly. The
// returned validLen is the byte offset of the first non-valid data —
// what a repair truncates to. With lenientTail false, any anomaly is
// ErrCorruptWAL.
func scanFrames(data []byte, lenientTail bool, fn func(payload []byte) error) (validLen int, err error) {
	if len(data) < len(segHeader) {
		if lenientTail {
			return 0, nil // torn segment creation: header never fully landed
		}
		return 0, corruptf("segment shorter than header (%d bytes)", len(data))
	}
	if string(data[:len(segHeader)]) != segHeader {
		return 0, corruptf("bad segment header")
	}
	off := len(segHeader)
	for off < len(data) {
		frameEnd, payload, ok := parseFrameAt(data, off)
		if !ok {
			if lenientTail && !anyValidFrame(data, off+1) {
				return off, nil // torn tail: truncate here
			}
			return off, corruptf("bad frame at offset %d", off)
		}
		if err := fn(payload); err != nil {
			return off, err
		}
		off = frameEnd
	}
	return off, nil
}

// parseFrameAt validates the frame starting at off: magic, a sane
// length, full presence in data, and the payload checksum.
func parseFrameAt(data []byte, off int) (end int, payload []byte, ok bool) {
	if off+frameHdrLen > len(data) {
		return 0, nil, false
	}
	if binary.LittleEndian.Uint32(data[off:]) != frameMagic {
		return 0, nil, false
	}
	n := int(binary.LittleEndian.Uint32(data[off+4:]))
	if n > maxFramePayload || off+frameHdrLen+n > len(data) {
		return 0, nil, false
	}
	crc := binary.LittleEndian.Uint32(data[off+8:])
	payload = data[off+frameHdrLen : off+frameHdrLen+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, false
	}
	return off + frameHdrLen + n, payload, true
}

// anyValidFrame reports whether a complete, checksum-valid frame starts
// anywhere at or after from — the discriminator between a torn tail (no)
// and mid-log corruption (yes).
func anyValidFrame(data []byte, from int) bool {
	for i := from; i+frameHdrLen <= len(data); i++ {
		if binary.LittleEndian.Uint32(data[i:]) != frameMagic {
			continue
		}
		if _, _, ok := parseFrameAt(data, i); ok {
			return true
		}
	}
	return false
}
