// Package wal is the durability substrate of the live write path: a
// CRC-framed, length-prefixed append-only log of sequenced write batches.
//
// Layout. A log directory holds numbered segment files (wal-%016x.seg,
// named by the sequence number of their first record) and checkpoint files
// (ckpt-%016x.snap, named by the last sequence number they cover). Each
// segment starts with an 8-byte header and continues with frames:
//
//	[u32 frameMagic][u32 payloadLen][u32 crc32(payload)][payload]
//
// where the payload encodes one Record (u64 seq, then the insert and
// delete triples, each string length-prefixed). Sequence numbers are
// gap-free within and across segments.
//
// Durability protocol. A record is acknowledged only after the bytes of
// its frame — and, transitively, of every earlier frame — have been
// fsynced (policy SyncAlways; see SyncPolicy for the weaker modes). New
// segments are fsynced, and their directory entry fsynced, before any
// record in them is acknowledged. Group commit keeps that affordable:
// writers enqueue frames and park; a single flusher issues one fsync for
// the whole batch and wakes every waiter it covered.
//
// Recovery. Open scans every segment, verifying CRCs and sequence
// continuity. A damaged suffix of the final segment with no valid frame
// after it is a torn tail — the crash left a partial write — and is
// truncated away. A damaged frame with readable frames after it cannot be
// explained by a crash and surfaces as ErrCorruptWAL, as does any damage
// to a non-final segment. Checkpoints pair a snapshot with the WAL
// position it covers, so recovery = load newest checkpoint + replay the
// suffix; Checkpoint prunes segments and older checkpoints that the new
// one makes redundant.
//
// All file I/O goes through the FS interface so tests can interpose
// MemFS, a deterministic crash-injection layer.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the slice of a filesystem the log needs: a flat directory of
// named files plus the two fsync barriers (file and directory) the
// durability protocol is built on.
type FS interface {
	// Create creates or truncates name for writing.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// OpenAppend opens an existing name for appending.
	OpenAppend(name string) (File, error)
	// List returns the file names in the directory, sorted.
	List() ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically renames old to new within the directory.
	Rename(oldName, newName string) error
	// Truncate cuts name down to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory, making entry creations, renames and
	// removals durable.
	SyncDir() error
}

// File is one open file of an FS.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync fsyncs the file's data.
	Sync() error
}

// OSFS is the production FS: a directory on the real filesystem.
type OSFS struct {
	dir string
}

// NewOSFS returns an FS rooted at dir, creating it if needed.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	return &OSFS{dir: dir}, nil
}

// Create implements FS.
func (fs *OSFS) Create(name string) (File, error) {
	return os.OpenFile(filepath.Join(fs.dir, name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open implements FS.
func (fs *OSFS) Open(name string) (File, error) {
	return os.Open(filepath.Join(fs.dir, name))
}

// OpenAppend implements FS.
func (fs *OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(filepath.Join(fs.dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
}

// List implements FS.
func (fs *OSFS) List() ([]string, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (fs *OSFS) Remove(name string) error {
	return os.Remove(filepath.Join(fs.dir, name))
}

// Rename implements FS.
func (fs *OSFS) Rename(oldName, newName string) error {
	return os.Rename(filepath.Join(fs.dir, oldName), filepath.Join(fs.dir, newName))
}

// Truncate implements FS.
func (fs *OSFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.Join(fs.dir, name), size)
}

// SyncDir implements FS.
func (fs *OSFS) SyncDir() error {
	d, err := os.Open(fs.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
