package wal

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// checkpoint.go — pairing snapshots with log positions.
//
// A checkpoint file ckpt-%016x.snap holds whatever the caller's save
// function writes (the store layer writes a v2 snapshot) and its name
// records the last write sequence the snapshot covers. Recovery loads
// the newest loadable checkpoint and replays the WAL suffix after it.
//
// The write protocol is the standard atomic-publish dance: write to a
// .tmp name, fsync the file, rename into place, fsync the directory.
// A crash anywhere leaves either the old checkpoint set or the new one —
// never a half-written .snap (Open removes stray .tmp files).
//
// After publishing, segments whose every record the checkpoint covers
// are pruned, and all but the newest two checkpoints are removed: the
// previous one is kept as a fallback so a latent media error in the
// newest snapshot (caught by its CRC on load) does not strand recovery.

// keepCheckpoints is how many newest checkpoints survive pruning.
const keepCheckpoints = 2

// Checkpoint atomically publishes a checkpoint covering sequence seq,
// writing its contents via save, then prunes segments and checkpoints
// the new one obsoletes. seq must not precede an existing checkpoint.
func (l *Log) Checkpoint(seq uint64, save func(io.Writer) error) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	if cur := l.CheckpointSeq(); seq < cur {
		return fmt.Errorf("wal: stale checkpoint %d (newest covers %d)", seq, cur)
	} else if seq == cur && cur != 0 {
		return nil // already covered
	}

	name := ckptName(seq)
	tmp := name + tmpSuffix
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: create checkpoint: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := save(bw); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: write checkpoint %d: %w", seq, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: flush checkpoint %d: %w", seq, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: sync checkpoint %d: %w", seq, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close checkpoint %d: %w", seq, err)
	}
	if err := l.fs.Rename(tmp, name); err != nil {
		return fmt.Errorf("wal: publish checkpoint %d: %w", seq, err)
	}
	if err := l.fs.SyncDir(); err != nil {
		return fmt.Errorf("wal: commit checkpoint %d: %w", seq, err)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.ckpts = append(l.ckpts, seq)
	sort.Slice(l.ckpts, func(i, j int) bool { return l.ckpts[i] < l.ckpts[j] })
	// Retire everything the new checkpoint obsoletes.
	for len(l.ckpts) > keepCheckpoints {
		old := l.ckpts[0]
		if err := l.fs.Remove(ckptName(old)); err != nil {
			return fmt.Errorf("wal: prune checkpoint %d: %w", old, err)
		}
		l.ckpts = l.ckpts[1:]
	}
	return l.pruneLocked(seq)
}

// Checkpoints lists the covered sequences of the live checkpoints,
// newest first.
func (l *Log) Checkpoints() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, len(l.ckpts))
	for i, seq := range l.ckpts {
		out[len(out)-1-i] = seq
	}
	return out
}

// OpenCheckpoint opens the checkpoint covering seq for reading.
func (l *Log) OpenCheckpoint(seq uint64) (io.ReadCloser, error) {
	f, err := l.fs.Open(ckptName(seq))
	if err != nil {
		return nil, fmt.Errorf("wal: open checkpoint %d: %w", seq, err)
	}
	return readCloser{bufio.NewReaderSize(f, 1<<20), f}, nil
}

type readCloser struct {
	io.Reader
	io.Closer
}
