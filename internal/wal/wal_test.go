package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"parj/internal/rdf"
	"parj/internal/resilience"
	"parj/internal/testutil"
)

func testRec(seq uint64) Record {
	return Record{
		Seq: seq,
		Inserts: []rdf.Triple{
			{S: fmt.Sprintf("<http://s/%d>", seq), P: "<http://p>", O: fmt.Sprintf("\"v%d\"", seq)},
		},
	}
}

func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func replayAll(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(from, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs})
	const n = 20
	for seq := uint64(1); seq <= n; seq++ {
		rec := testRec(seq)
		rec.Deletes = []rdf.Triple{{S: "<http://gone>", P: "<http://p>", O: "<http://x>"}}
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	if got := l.DurableSeq(); got != n {
		t.Fatalf("DurableSeq = %d, want %d", got, n)
	}
	recs := replayAll(t, l, 1)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		want := uint64(i + 1)
		if rec.Seq != want {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		if len(rec.Inserts) != 1 || len(rec.Deletes) != 1 {
			t.Fatalf("record %d shape: %d inserts %d deletes", i, len(rec.Inserts), len(rec.Deletes))
		}
		if rec.Inserts[0] != testRec(want).Inserts[0] {
			t.Fatalf("record %d insert mismatch: %+v", i, rec.Inserts[0])
		}
	}
	// Suffix replay.
	if got := replayAll(t, l, 15); len(got) != 6 || got[0].Seq != 15 {
		t.Fatalf("suffix replay from 15: %d records, first %v", len(got), got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen from the same bytes: position and content must survive.
	l2 := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	if got := l2.LastSeq(); got != n {
		t.Fatalf("reopened LastSeq = %d, want %d", got, n)
	}
	if got := replayAll(t, l2, 1); len(got) != n {
		t.Fatalf("reopened replay: %d records", len(got))
	}
	// Appends continue the sequence.
	if err := l2.Append(testRec(n + 1)); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if _, err := l2.Enqueue(testRec(n + 10)); err == nil {
		t.Fatal("out-of-order append accepted")
	}
}

func TestWALGroupCommitBatchesFsyncs(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs})
	defer l.Close()

	// Enqueue a convoy under a writer lock, then wait — one (or very few)
	// fsyncs must cover all of them.
	const n = 64
	commits := make([]*Commit, n)
	for i := 0; i < n; i++ {
		c, err := l.Enqueue(testRec(uint64(i + 1)))
		if err != nil {
			t.Fatalf("Enqueue %d: %v", i+1, err)
		}
		commits[i] = c
	}
	for i, c := range commits {
		if err := c.Wait(); err != nil {
			t.Fatalf("Wait %d: %v", i+1, err)
		}
	}
	if got := l.DurableSeq(); got != n {
		t.Fatalf("DurableSeq = %d, want %d", got, n)
	}
	// Segment header sync + group flushes; per-op would need ≥ n.
	if syncs := fs.Syncs(); syncs >= n {
		t.Fatalf("group commit issued %d fsyncs for %d records", syncs, n)
	}
}

func TestWALConcurrentWritersSequenced(t *testing.T) {
	defer testutil.LeakCheck(t)()
	l := mustOpen(t, Options{FS: NewMemFS()})
	defer l.Close()

	// Writers race to append; a mutex outside the log assigns sequences
	// (as live.Handle does) but Wait happens unlocked — the group
	// flusher must wake every one of them exactly once.
	const n = 200
	var mu sync.Mutex
	var next uint64
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				mu.Lock()
				next++
				c, err := l.Enqueue(testRec(next))
				mu.Unlock()
				if err != nil {
					errs[w] = err
					return
				}
				if err := c.Wait(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("writer failed: %v", err)
		}
	}
	if got := l.DurableSeq(); got != n {
		t.Fatalf("DurableSeq = %d, want %d", got, n)
	}
}

func TestWALSegmentRotationAndPrune(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs, SegmentBytes: 256})
	const n = 40
	for seq := uint64(1); seq <= n; seq++ {
		if err := l.Append(testRec(seq)); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if recs := replayAll(t, l, 1); len(recs) != n {
		t.Fatalf("replay across segments: %d records", len(recs))
	}
	if err := l.Prune(20); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	st2 := l.Stats()
	if st2.Segments >= st.Segments {
		t.Fatalf("prune removed nothing (%d -> %d segments)", st.Segments, st2.Segments)
	}
	if st2.FirstSeq <= 1 || st2.FirstSeq > 21 {
		t.Fatalf("FirstSeq after prune = %d", st2.FirstSeq)
	}
	// The suffix from FirstSeq is intact.
	recs := replayAll(t, l, st2.FirstSeq)
	if len(recs) == 0 || recs[len(recs)-1].Seq != n {
		t.Fatalf("post-prune replay broken: %d records", len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen after prune: FirstSeq reflects retention.
	l2 := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	if got := l2.FirstSeq(); got != st2.FirstSeq {
		t.Fatalf("reopened FirstSeq = %d, want %d", got, st2.FirstSeq)
	}
}

func TestWALSyncIntervalPolicy(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	clock := resilience.NewFakeClock(time.Unix(0, 0))
	l := mustOpen(t, Options{FS: fs, Sync: SyncInterval, Interval: time.Second, Clock: clock})
	defer l.Close()

	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(testRec(seq)); err != nil { // returns without fsync
			t.Fatalf("Append: %v", err)
		}
	}
	if got := l.DurableSeq(); got != 0 {
		t.Fatalf("DurableSeq before tick = %d", got)
	}
	// Let the flusher park on the clock, then fire the interval.
	for clock.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	clock.Advance(time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for l.DurableSeq() != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("interval flush never covered seq 5 (durable %d)", l.DurableSeq())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWALSyncNeverPolicy(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs, Sync: SyncNever})
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(testRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := l.DurableSeq(); got != 0 {
		t.Fatalf("SyncNever fsynced: durable %d", got)
	}
	if err := l.Sync(); err != nil { // manual barrier
		t.Fatalf("Sync: %v", err)
	}
	if got := l.DurableSeq(); got != 3 {
		t.Fatalf("manual Sync: durable %d", got)
	}
	l.Close()
}

func TestWALPerOpSync(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs, PerOpSync: true})
	defer l.Close()
	base := fs.Syncs()
	const n = 10
	for seq := uint64(1); seq <= n; seq++ {
		if err := l.Append(testRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := fs.Syncs() - base; got < n {
		t.Fatalf("per-op sync issued %d fsyncs for %d records", got, n)
	}
}

func TestWALCheckpointRecoverReplay(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs, SegmentBytes: 256})
	for seq := uint64(1); seq <= 30; seq++ {
		if err := l.Append(testRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	payload := []byte("snapshot-covering-20")
	if err := l.Checkpoint(20, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := l.CheckpointSeq(); got != 20 {
		t.Fatalf("CheckpointSeq = %d", got)
	}
	if first := l.FirstSeq(); first <= 1 {
		t.Fatalf("checkpoint did not prune (FirstSeq %d)", first)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	cks := l2.Checkpoints()
	if len(cks) == 0 || cks[0] != 20 {
		t.Fatalf("Checkpoints after reopen = %v", cks)
	}
	rc, err := l2.OpenCheckpoint(20)
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	got := make([]byte, len(payload)+8)
	n, _ := rc.Read(got)
	rc.Close()
	if string(got[:n]) != string(payload) {
		t.Fatalf("checkpoint content = %q", got[:n])
	}
	// Replay the suffix the checkpoint does not cover.
	recs := replayAll(t, l2, 21)
	if len(recs) != 10 || recs[0].Seq != 21 || recs[9].Seq != 30 {
		t.Fatalf("suffix replay: %d records", len(recs))
	}
	// A stale checkpoint is rejected.
	if err := l2.Checkpoint(10, func(w io.Writer) error { return nil }); err == nil {
		t.Fatal("stale checkpoint accepted")
	}
}

func TestWALCheckpointKeepsFallback(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs, SegmentBytes: 128})
	save := func(tag string) func(w io.Writer) error {
		return func(w io.Writer) error {
			_, err := w.Write([]byte(tag))
			return err
		}
	}
	for seq := uint64(1); seq <= 30; seq++ {
		if err := l.Append(testRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq%10 == 0 {
			if err := l.Checkpoint(seq, save(fmt.Sprintf("ck%d", seq))); err != nil {
				t.Fatalf("Checkpoint %d: %v", seq, err)
			}
		}
	}
	cks := l.Checkpoints()
	if len(cks) != keepCheckpoints || cks[0] != 30 || cks[1] != 20 {
		t.Fatalf("Checkpoints = %v, want newest two", cks)
	}
	l.Close()
}

func TestWALStickyErrorAfterShortWrite(t *testing.T) {
	defer testutil.LeakCheck(t)()
	fs := NewMemFS()
	l := mustOpen(t, Options{FS: fs})
	if err := l.Append(testRec(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	fs.FailAt(OpWrite, fs.countOf(OpWrite)+1, ShortWrite)
	if err := l.Append(testRec(2)); err == nil {
		t.Fatal("short write not surfaced")
	}
	// The log is poisoned: later appends fail fast with the same error.
	if _, err := l.Enqueue(testRec(3)); err == nil || !errors.Is(err, ErrShortWrite) {
		t.Fatalf("sticky error = %v", err)
	}
	l.Close()

	// Reopen repairs the torn frame: record 1 survives, record 2 is gone.
	l2 := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	if got := l2.LastSeq(); got != 1 {
		t.Fatalf("LastSeq after repair = %d", got)
	}
	if recs := replayAll(t, l2, 1); len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("replay after repair: %v", recs)
	}
}

// countOf exposes the op counter for scripting faults relative to "now".
func (fs *MemFS) countOf(op Op) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.counts[op]
}
