package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"parj/internal/resilience"
)

// SyncPolicy selects when appended records become durable.
type SyncPolicy int

const (
	// SyncAlways acknowledges a record only after its frame is fsynced.
	// Group commit amortizes the fsync across concurrent writers.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer (Options.Interval); a crash can lose
	// up to one interval of acknowledged writes.
	SyncInterval
	// SyncNever leaves flushing to the operating system; a crash can lose
	// everything since the last segment rotation or checkpoint.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options configures a Log.
type Options struct {
	// Dir is the log directory; used only when FS is nil.
	Dir string
	// FS overrides the filesystem — tests inject the crash layer here.
	FS FS
	// Sync is the durability policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the SyncInterval flush period (default 50ms).
	Interval time.Duration
	// SegmentBytes rotates segments past this size (default 4 MiB).
	SegmentBytes int64
	// PerOpSync disables group commit under SyncAlways: every append
	// issues its own fsync inline. Exists for the walwrite benchmark's
	// A/B comparison; production code should leave it off.
	PerOpSync bool
	// Clock drives the interval flusher (default the wall clock).
	Clock resilience.Clock
}

// Stats is a point-in-time summary of the log's position.
type Stats struct {
	// FirstSeq and LastSeq bound the replayable records (0,0 when empty).
	FirstSeq, LastSeq uint64
	// DurableSeq is the highest fsync-covered sequence.
	DurableSeq uint64
	// CheckpointSeq is the newest checkpoint's covered position.
	CheckpointSeq uint64
	// Segments is the live segment-file count.
	Segments int
}

type segmentInfo struct {
	name  string
	start uint64
}

// Log is an append-only log of sequenced write batches. One Log owns its
// directory; all methods are safe for concurrent use.
type Log struct {
	fs    FS
	opts  Options
	clock resilience.Clock

	mu         sync.Mutex
	cond       *sync.Cond // rotation waits out an in-flight group fsync
	seg        File       // active segment, nil until first append
	segBytes   int64
	segments   []segmentInfo
	firstSeq   uint64
	lastSeq    uint64
	durableSeq uint64
	ckpts      []uint64 // covered positions of live checkpoints, ascending
	waiters    []waiter
	err        error // sticky: the log refuses writes after an I/O failure
	closed     bool
	syncing    bool
	encBuf     []byte

	ckptMu sync.Mutex // serializes Checkpoint

	flushCh chan struct{}
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

type waiter struct {
	seq uint64
	ch  chan error
}

// Commit is the durability handle of one enqueued record. Wait blocks
// until the record is fsync-covered (or the log fails); under policies
// weaker than SyncAlways it returns immediately.
type Commit struct {
	ch  chan error
	err error
}

// Wait blocks until the enqueued record is durable and returns the
// flush outcome. Wait must be called at most once per Commit.
func (c *Commit) Wait() error {
	if c == nil || c.ch == nil {
		if c != nil {
			return c.err
		}
		return nil
	}
	return <-c.ch
}

var doneCommit = &Commit{}

// Open opens (or creates) the log in opts.Dir / opts.FS, scanning every
// segment to recover the durable tail: CRCs and sequence continuity are
// verified, a torn tail of the final segment is truncated away, and any
// other damage is ErrCorruptWAL.
func Open(opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	fs := opts.FS
	if fs == nil {
		if opts.Dir == "" {
			return nil, errors.New("wal: Options.Dir or Options.FS required")
		}
		var err error
		if fs, err = NewOSFS(opts.Dir); err != nil {
			return nil, err
		}
	}
	clock := opts.Clock
	if clock == nil {
		clock = resilience.RealClock{}
	}
	l := &Log{
		fs:      fs,
		opts:    opts,
		clock:   clock,
		flushCh: make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	if err := l.recover(); err != nil {
		return nil, err
	}
	switch {
	case opts.Sync == SyncAlways && !opts.PerOpSync:
		l.wg.Add(1)
		go l.groupFlusher()
	case opts.Sync == SyncInterval:
		l.wg.Add(1)
		go l.intervalFlusher()
	}
	return l, nil
}

// recover scans the directory: removes leftover temp files, validates
// every segment in order, repairs a torn tail, and positions the log for
// appending.
func (l *Log) recover() error {
	names, err := l.fs.List()
	if err != nil {
		return fmt.Errorf("wal: list: %w", err)
	}
	dirty := false
	for _, name := range names {
		switch {
		case len(name) > len(tmpSuffix) && name[len(name)-len(tmpSuffix):] == tmpSuffix:
			// An interrupted checkpoint; the rename never happened.
			if err := l.fs.Remove(name); err != nil {
				return fmt.Errorf("wal: drop temp %s: %w", name, err)
			}
			dirty = true
		default:
			if seq, ok := parseCkptName(name); ok {
				l.ckpts = append(l.ckpts, seq)
			} else if start, ok := parseSegName(name); ok {
				l.segments = append(l.segments, segmentInfo{name: name, start: start})
			}
		}
	}
	// List returns sorted names and the fixed-width hex names sort by
	// sequence, so segments and checkpoints are already ascending.
	prev := uint64(0)
	for i, seg := range l.segments {
		last := i == len(l.segments)-1
		data, err := readFile(l.fs, seg.name)
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", seg.name, err)
		}
		first := true
		validLen, err := scanFrames(data, last, func(payload []byte) error {
			rec, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			if first {
				first = false
				if rec.Seq != seg.start {
					return corruptf("segment %s starts with record %d", seg.name, rec.Seq)
				}
				if prev != 0 && rec.Seq != prev+1 {
					return corruptf("sequence hole: %d follows %d", rec.Seq, prev)
				}
				if l.firstSeq == 0 {
					l.firstSeq = rec.Seq
				}
			} else if rec.Seq != prev+1 {
				return corruptf("sequence hole: %d follows %d", rec.Seq, prev)
			}
			prev = rec.Seq
			return nil
		})
		if err != nil {
			return fmt.Errorf("wal: %s: %w", seg.name, err)
		}
		if !last {
			continue
		}
		if first {
			// A final segment with no records: rotation died between
			// creating it and landing the first frame (possibly before
			// the header). Drop the husk — the next append recreates a
			// segment named for whatever sequence actually comes next.
			if err := l.fs.Remove(seg.name); err != nil {
				return fmt.Errorf("wal: drop torn segment %s: %w", seg.name, err)
			}
			l.segments = l.segments[:i]
			dirty = true
			break
		}
		if validLen < len(data) {
			if err := l.fs.Truncate(seg.name, int64(validLen)); err != nil {
				return fmt.Errorf("wal: repair torn tail of %s: %w", seg.name, err)
			}
		}
		f, err := l.fs.OpenAppend(seg.name)
		if err != nil {
			return fmt.Errorf("wal: reopen %s: %w", seg.name, err)
		}
		l.seg = f
		l.segBytes = int64(validLen)
	}
	l.lastSeq = prev
	l.durableSeq = prev // everything read back was on disk
	if dirty {
		if err := l.fs.SyncDir(); err != nil {
			return fmt.Errorf("wal: commit recovery cleanup: %w", err)
		}
	}
	return nil
}

func readFile(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Stats returns the log's current position.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		FirstSeq:      l.firstSeq,
		LastSeq:       l.lastSeq,
		DurableSeq:    l.durableSeq,
		CheckpointSeq: l.ckptSeqLocked(),
		Segments:      len(l.segments),
	}
}

// FirstSeq is the oldest replayable sequence (0 when the log is empty).
func (l *Log) FirstSeq() uint64 { l.mu.Lock(); defer l.mu.Unlock(); return l.firstSeq }

// LastSeq is the newest appended sequence (0 when the log is empty).
func (l *Log) LastSeq() uint64 { l.mu.Lock(); defer l.mu.Unlock(); return l.lastSeq }

// DurableSeq is the newest fsync-covered sequence.
func (l *Log) DurableSeq() uint64 { l.mu.Lock(); defer l.mu.Unlock(); return l.durableSeq }

// CheckpointSeq is the newest checkpoint's covered sequence (0 if none).
func (l *Log) CheckpointSeq() uint64 { l.mu.Lock(); defer l.mu.Unlock(); return l.ckptSeqLocked() }

func (l *Log) ckptSeqLocked() uint64 {
	if len(l.ckpts) == 0 {
		return 0
	}
	return l.ckpts[len(l.ckpts)-1]
}

// Append enqueues rec and waits for it to reach the configured
// durability: Enqueue + Wait.
func (l *Log) Append(rec Record) error {
	c, err := l.Enqueue(rec)
	if err != nil {
		return err
	}
	return c.Wait()
}

// Enqueue appends rec to the active segment and returns a Commit whose
// Wait blocks until the record is durable under the configured policy.
// Records must arrive in sequence: rec.Seq must be LastSeq+1 (any
// positive seq starts an empty log). Enqueue itself never blocks on
// fsync — callers holding a writer lock can enqueue under it and Wait
// after releasing, which is what lets sequential writers group-commit.
func (l *Log) Enqueue(rec Record) (*Commit, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if l.err != nil {
		return nil, l.err
	}
	if rec.Seq == 0 {
		return nil, errors.New("wal: record sequence must be positive")
	}
	if l.lastSeq != 0 && rec.Seq != l.lastSeq+1 {
		return nil, fmt.Errorf("wal: out-of-order append: log at %d, got %d", l.lastSeq, rec.Seq)
	}
	frame, err := appendRecord(l.encBuf[:0], rec)
	if err != nil {
		return nil, err
	}
	l.encBuf = frame[:0]
	if l.seg == nil || (l.segBytes+int64(len(frame)) > l.opts.SegmentBytes && l.segBytes > int64(len(segHeader))) {
		if err := l.rotateLocked(rec.Seq); err != nil {
			return nil, l.fail(err)
		}
	}
	if _, err := l.seg.Write(frame); err != nil {
		return nil, l.fail(fmt.Errorf("wal: append %d: %w", rec.Seq, err))
	}
	l.segBytes += int64(len(frame))
	l.lastSeq = rec.Seq
	if l.firstSeq == 0 {
		l.firstSeq = rec.Seq
	}
	if l.opts.Sync != SyncAlways {
		return doneCommit, nil
	}
	if l.opts.PerOpSync {
		if err := l.seg.Sync(); err != nil {
			return nil, l.fail(fmt.Errorf("wal: sync %d: %w", rec.Seq, err))
		}
		l.durableSeq = rec.Seq
		return doneCommit, nil
	}
	c := &Commit{ch: make(chan error, 1)}
	l.waiters = append(l.waiters, waiter{seq: rec.Seq, ch: c.ch})
	select {
	case l.flushCh <- struct{}{}:
	default:
	}
	return c, nil
}

// rotateLocked closes out the active segment (fsyncing it, so rotation
// is itself a durability barrier) and starts a fresh one named by the
// next record's sequence. The new segment's header — and its directory
// entry — are fsynced before any record lands in it.
func (l *Log) rotateLocked(nextSeq uint64) error {
	for l.syncing {
		l.cond.Wait() // never fsync/close a file the flusher holds
	}
	if l.seg != nil {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: rotate: sync old segment: %w", err)
		}
		l.durableSeq = l.lastSeq
		l.completeWaitersLocked()
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("wal: rotate: close old segment: %w", err)
		}
		l.seg = nil
	}
	name := segName(nextSeq)
	f, err := l.fs.Create(name)
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	if _, err := f.Write([]byte(segHeader)); err != nil {
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	if err := l.fs.SyncDir(); err != nil {
		return fmt.Errorf("wal: sync dir after rotation: %w", err)
	}
	l.seg = f
	l.segBytes = int64(len(segHeader))
	l.segments = append(l.segments, segmentInfo{name: name, start: nextSeq})
	return nil
}

// AlignTo fast-forwards the append position to seq when the log tail has
// fallen behind it — the recovery case where a checkpoint covers batches
// the log no longer holds because tail damage was truncated away. The next
// record then extends the stream at seq+1 in a fresh segment (so segment
// contents stay contiguous; replay from an older fallback checkpoint
// surfaces the missing range as a sequence gap instead of silently
// skipping it). A log already at or past seq is left untouched.
func (l *Log) AlignTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	// An empty log accepts any starting sequence; only a non-empty tail
	// that ends short of seq needs realignment.
	if l.lastSeq == 0 || l.lastSeq >= seq {
		return nil
	}
	if err := l.rotateLocked(seq + 1); err != nil {
		return l.fail(err)
	}
	l.lastSeq = seq
	l.durableSeq = seq // covered by the checkpoint that outran the tail
	return nil
}

// fail poisons the log (mu held): the sticky error is returned to every
// parked and future writer. A log that failed mid-append may hold a torn
// frame; reopening repairs it.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	for _, w := range l.waiters {
		w.ch <- l.err
	}
	l.waiters = l.waiters[:0]
	return l.err
}

func (l *Log) completeWaitersLocked() {
	kept := l.waiters[:0]
	for _, w := range l.waiters {
		if w.seq <= l.durableSeq {
			w.ch <- nil
		} else {
			kept = append(kept, w)
		}
	}
	l.waiters = kept
}

// groupFlusher is the single fsync issuer under SyncAlways: it snapshots
// the active segment and the highest enqueued sequence, fsyncs outside
// the log mutex (writers keep enqueuing meanwhile), then wakes every
// waiter the fsync covered. One fsync acknowledges a whole convoy.
func (l *Log) groupFlusher() {
	defer l.wg.Done()
	for {
		select {
		case <-l.stopCh:
			return
		case <-l.flushCh:
		}
		for {
			l.mu.Lock()
			if l.err != nil || l.closed || l.seg == nil || l.lastSeq <= l.durableSeq {
				l.mu.Unlock()
				break
			}
			seg, target := l.seg, l.lastSeq
			l.syncing = true
			l.mu.Unlock()

			err := seg.Sync()

			l.mu.Lock()
			l.syncing = false
			l.cond.Broadcast()
			if err != nil {
				l.fail(fmt.Errorf("wal: group fsync: %w", err))
				l.mu.Unlock()
				break
			}
			if target > l.durableSeq {
				l.durableSeq = target
			}
			l.completeWaitersLocked()
			again := l.lastSeq > l.durableSeq
			l.mu.Unlock()
			if !again {
				break
			}
		}
	}
}

// intervalFlusher fsyncs on the clock under SyncInterval.
func (l *Log) intervalFlusher() {
	defer l.wg.Done()
	for {
		select {
		case <-l.stopCh:
			return
		case <-l.clock.After(l.opts.Interval):
		}
		l.mu.Lock()
		if l.err != nil || l.closed || l.seg == nil || l.lastSeq <= l.durableSeq {
			l.mu.Unlock()
			continue
		}
		seg, target := l.seg, l.lastSeq
		l.syncing = true
		l.mu.Unlock()

		err := seg.Sync()

		l.mu.Lock()
		l.syncing = false
		l.cond.Broadcast()
		if err != nil {
			l.fail(fmt.Errorf("wal: interval fsync: %w", err))
		} else if target > l.durableSeq {
			l.durableSeq = target
		}
		l.mu.Unlock()
	}
}

// Sync forces an fsync of the active segment — a manual durability
// barrier for the weaker policies.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	for l.syncing {
		l.cond.Wait()
	}
	if l.seg == nil || l.lastSeq <= l.durableSeq {
		return nil
	}
	if err := l.seg.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: sync: %w", err))
	}
	l.durableSeq = l.lastSeq
	l.completeWaitersLocked()
	return nil
}

// Replay streams the records with sequence ≥ from, in order, re-reading
// and re-verifying the segment files. fn errors abort the replay.
func (l *Log) Replay(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]segmentInfo(nil), l.segments...)
	l.mu.Unlock()
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].start <= from {
			continue // every record here is < from
		}
		data, err := readFile(l.fs, seg.name)
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", seg.name, err)
		}
		_, err = scanFrames(data, i == len(segs)-1, func(payload []byte) error {
			rec, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			if rec.Seq < from {
				return nil
			}
			return fn(rec)
		})
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", seg.name, err)
		}
	}
	return nil
}

// Prune removes whole segments every record of which is ≤ upTo — the
// retention knob. The active segment and any segment needed to replay
// from upTo+1 survive.
func (l *Log) Prune(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pruneLocked(upTo)
}

func (l *Log) pruneLocked(upTo uint64) error {
	removed := false
	kept := l.segments[:0]
	for i, seg := range l.segments {
		// A segment is removable only when the next segment's start
		// proves every record in it is ≤ upTo.
		if i+1 < len(l.segments) && l.segments[i+1].start <= upTo+1 {
			if err := l.fs.Remove(seg.name); err != nil {
				return fmt.Errorf("wal: prune %s: %w", seg.name, err)
			}
			removed = true
			continue
		}
		kept = append(kept, seg)
	}
	l.segments = append([]segmentInfo(nil), kept...)
	if removed {
		if len(l.segments) > 0 {
			l.firstSeq = l.segments[0].start
		}
		if err := l.fs.SyncDir(); err != nil {
			return fmt.Errorf("wal: commit prune: %w", err)
		}
	}
	return nil
}

// Close flushes and closes the log. Parked writers are woken with the
// flush outcome.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	close(l.stopCh)
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	var err error
	if l.err == nil && l.seg != nil && l.opts.Sync != SyncNever {
		err = l.syncLocked()
	}
	l.fail(ErrClosed) // release any writer still parked
	if l.seg != nil {
		if cerr := l.seg.Close(); err == nil {
			err = cerr
		}
		l.seg = nil
	}
	return err
}
