package difftest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"parj/internal/rdf"
)

// TestWriteMatrix is the mutable smoke run: seeded write schedules replayed
// on every write-capable engine configuration (live store across the
// strategy/worker/join matrix, background auto-reconcile, and the loopback
// cluster write path), diffed against the mutable oracle at every query.
func TestWriteMatrix(t *testing.T) {
	cfg := WritesConfig{Seed: 1}
	if *long {
		cfg.Schedules = 25
		cfg.OpsPerSchedule = 60
	}
	if testing.Verbose() {
		cfg.Log = t.Logf
	}
	rep := RunWrites(cfg)
	t.Logf("schedules=%d engineRuns=%d checkpoints=%d skipped=%d failures=%d",
		rep.Schedules, rep.EngineRuns, rep.Checkpoints, rep.Skipped, len(rep.Failures))
	if rep.Checkpoints < 100 {
		t.Errorf("completed only %d oracle checkpoints, want >= 100 (skipped %d)",
			rep.Checkpoints, rep.Skipped)
	}
	for i := range rep.Failures {
		f := &rep.Failures[i]
		t.Errorf("%s", f.String())
		if f.Repro != "" {
			t.Logf("shrunk repro:\n%s", f.Repro)
		}
	}
}

// TestWriteScheduleShape checks the generator keeps its structural
// promises: every reconcile is followed by a query checkpoint, the schedule
// ends on a reconcile+query pair, and the churn the harness exists for
// (duplicate inserts, deletes, same-batch delete+reinsert) actually occurs.
func TestWriteScheduleShape(t *testing.T) {
	var dupIns, sameBatchChurn, dels int
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds := GenDataset(rng, DatasetConfig{MaxTriples: 150})
		sched := GenWriteSchedule(rng, ds, 40)
		if len(sched.Base) == 0 {
			t.Fatalf("seed %d: empty base", seed)
		}
		for i := range sched.Ops {
			op := &sched.Ops[i]
			if op.Reconcile {
				if i+1 >= len(sched.Ops) || sched.Ops[i+1].Query == "" {
					t.Fatalf("seed %d: reconcile at op %d has no checkpoint query", seed, i)
				}
			}
			seen := map[rdf.Triple]bool{}
			for _, tr := range op.Inserts {
				if seen[tr] {
					dupIns++
				}
				seen[tr] = true
			}
			dels += len(op.Deletes)
			for _, tr := range op.Deletes {
				for _, ins := range op.Inserts {
					if tr == ins {
						sameBatchChurn++
					}
				}
			}
		}
		n := len(sched.Ops)
		if n < 2 || !sched.Ops[n-2].Reconcile || sched.Ops[n-1].Query == "" {
			t.Fatalf("seed %d: schedule does not end with reconcile+query", seed)
		}
	}
	if dels == 0 || sameBatchChurn == 0 {
		t.Errorf("generator produced no churn: dels=%d sameBatchChurn=%d", dels, sameBatchChurn)
	}
}

// TestWriteDeterminism re-runs a slice of the write matrix with the same
// seed and requires identical reports.
func TestWriteDeterminism(t *testing.T) {
	cfg := WritesConfig{Seed: 42, Schedules: 2, OpsPerSchedule: 15, NoShrink: true,
		Workers: []int{2}}
	a, b := RunWrites(cfg), RunWrites(cfg)
	fp := func(r *WritesReport) string {
		s := fmt.Sprintf("schedules=%d runs=%d checkpoints=%d skipped=%d",
			r.Schedules, r.EngineRuns, r.Checkpoints, r.Skipped)
		for i := range r.Failures {
			s += "\n" + r.Failures[i].String()
		}
		return s
	}
	if fp(a) != fp(b) {
		t.Errorf("same seed, different reports:\n--- first\n%s\n--- second\n%s", fp(a), fp(b))
	}
}

// TestWriteHarnessCatchesLossyEngine is the harness self-check: an engine
// that drops deletes must produce a divergence, and the shrinker must
// reduce the failing schedule without losing the failure.
func TestWriteHarnessCatchesLossyEngine(t *testing.T) {
	good, err := FindWriteConfig("live-AdBinary-w2")
	if err != nil {
		t.Fatal(err)
	}
	bad := WriteEngineConfig{
		Name: "lossy",
		Make: func(base []rdf.Triple) (WriteEngine, error) {
			inner, err := good.Make(base)
			if err != nil {
				return nil, err
			}
			return &dropDeletes{inner}, nil
		},
	}

	// Find a schedule where dropping deletes is observable.
	for seed := int64(1); ; seed++ {
		if seed > 200 {
			t.Fatal("no schedule exposed the lossy engine in 200 seeds")
		}
		rng := rand.New(rand.NewSource(seed))
		ds := GenDataset(rng, DatasetConfig{MaxTriples: 120})
		sched := GenWriteSchedule(rng, ds, 30)
		opIdx, diff, _, _ := replaySchedule(bad, sched, 2_000_000, 20_000)
		if diff == "" {
			continue
		}

		// Sanity: the correct engine passes the same schedule.
		if _, d, _, _ := replaySchedule(good, sched, 2_000_000, 20_000); d != "" {
			t.Fatalf("correct engine diverged on seed %d: %s", seed, d)
		}

		small := ShrinkWriteSchedule(sched, bad, 2_000_000, 20_000)
		if _, d, _, _ := replaySchedule(bad, small, 2_000_000, 20_000); d == "" {
			t.Fatal("shrunk schedule no longer fails")
		}
		if len(small.Ops) > len(sched.Ops) || len(small.Base) > len(sched.Base) {
			t.Fatalf("shrinker grew the schedule: ops %d -> %d, base %d -> %d",
				len(sched.Ops), len(small.Ops), len(sched.Base), len(small.Base))
		}
		repro := FormatWriteRepro(small, good.Name)
		for _, want := range []string{"CheckWriteRepro", "difftest.WriteOp", good.Name} {
			if !strings.Contains(repro, want) {
				t.Errorf("repro missing %q:\n%s", want, repro)
			}
		}
		t.Logf("seed %d: failure at op %d shrank %d -> %d ops, %d -> %d base triples",
			seed, opIdx, len(sched.Ops), len(small.Ops), len(sched.Base), len(small.Base))
		return
	}
}

// dropDeletes is the minimal broken engine used by the self-check.
type dropDeletes struct{ WriteEngine }

func (e *dropDeletes) Apply(inserts, deletes []rdf.Triple) error {
	return e.WriteEngine.Apply(inserts, nil)
}

// TestFindWriteConfig requires every generated configuration name to
// resolve back to a working factory — shrunk repros depend on it — and
// host-independent names (foreign worker counts) to parse.
func TestFindWriteConfig(t *testing.T) {
	for _, ec := range WriteEngineConfigs(nil) {
		got, err := FindWriteConfig(ec.Name)
		if err != nil {
			t.Errorf("FindWriteConfig(%q): %v", ec.Name, err)
			continue
		}
		if got.Name != ec.Name {
			t.Errorf("FindWriteConfig(%q) resolved to %q", ec.Name, got.Name)
		}
	}
	// A worker count this host does not enumerate must still parse.
	if _, err := FindWriteConfig("live-Index-w7"); err != nil {
		t.Errorf("foreign worker count did not parse: %v", err)
	}
	if _, err := FindWriteConfig("live-wcoj-AdBinary-w3"); err != nil {
		t.Errorf("join-forced foreign config did not parse: %v", err)
	}
	if _, err := FindWriteConfig("no-such-engine"); err == nil {
		t.Error("unknown engine name resolved")
	}
}
