package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"parj/internal/bench"
	"parj/internal/governance"
	"parj/internal/rdf"
	"parj/internal/rdfs"
	"parj/internal/reference"
	"parj/internal/sparql"
)

// Config controls one differential run.
type Config struct {
	// Seed makes the whole run reproducible: datasets, queries, and skip
	// decisions are all derived from it.
	Seed int64
	// Datasets is the number of generated datasets (default 25).
	Datasets int
	// QueriesPerDataset is the target number of completed query pairs per
	// dataset (default 8).
	QueriesPerDataset int
	// MaxTriples bounds dataset size (default 300).
	MaxTriples int
	// Workers overrides the worker-count axis; nil selects WorkerCounts().
	Workers []int
	// OracleBudget caps the naive oracle's backtracking cost per query;
	// over-budget pairs are skipped deterministically (default 2e6).
	OracleBudget int64
	// MaxOracleRows skips pairs whose full result exceeds this many rows,
	// keeping engine evaluation time bounded (default 20000).
	MaxOracleRows int
	// NoShrink reports failures raw instead of minimizing them (the
	// shrinker re-evaluates engines many times; tests that only assert
	// "no failures" never pay the cost either way).
	NoShrink bool
	// MaxFailures stops the run early once this many failures were
	// collected (default 5).
	MaxFailures int
	// Log, when non-nil, receives per-dataset progress lines.
	Log func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Datasets <= 0 {
		c.Datasets = 25
	}
	if c.QueriesPerDataset <= 0 {
		c.QueriesPerDataset = 8
	}
	if c.MaxTriples <= 0 {
		c.MaxTriples = 300
	}
	if c.OracleBudget <= 0 {
		c.OracleBudget = 2_000_000
	}
	if c.MaxOracleRows <= 0 {
		c.MaxOracleRows = 20_000
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = 5
	}
}

// Failure is one detected divergence between an engine configuration and
// the oracle (or a violated metamorphic invariant).
type Failure struct {
	Engine  string
	Query   string
	Diff    string
	Triples []rdf.Triple
	// Repro is a ready-to-paste Go regression test over the shrunk
	// (triples, query) pair; empty when shrinking was disabled or the
	// failure came from a metamorphic check.
	Repro string
}

func (f *Failure) String() string {
	return fmt.Sprintf("engine %s on %q (%d triples): %s", f.Engine, f.Query, len(f.Triples), f.Diff)
}

// Report summarizes a run.
type Report struct {
	// Pairs is the number of completed (dataset, query) pairs — each one
	// evaluated on the oracle and on the full engine matrix.
	Pairs int
	// EngineRuns is the number of engine evaluations diffed.
	EngineRuns int
	// Skipped counts pairs abandoned by the oracle budget or row cap.
	Skipped  int
	Datasets int
	Failures []Failure
}

// Run executes the differential matrix and returns what it found. The same
// Config always yields the same Report.
func Run(cfg Config) *Report {
	cfg.fill()
	rep := &Report{}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	for di := 0; di < cfg.Datasets && len(rep.Failures) < cfg.MaxFailures; di++ {
		dsSeed := cfg.Seed + int64(di+1)*1_000_003
		dsRng := rand.New(rand.NewSource(dsSeed))
		ds := GenDataset(dsRng, DatasetConfig{
			MaxTriples: cfg.MaxTriples,
			// Every fifth dataset goes wide so dictionary IDs straddle
			// posindex anchor boundaries; every third is subject-skewed so
			// the morsel scheduler sees hot keys; every seventh is dense so
			// cyclic patterns close and the WCOJ operator does real work.
			Wide:   di%5 == 4,
			Skewed: di%3 == 2,
			Dense:  di%7 == 5,
		})
		rep.Datasets++
		benchDS := bench.NewDataset(ds.Triples, 2)
		runDataset(cfg, rep, ds, benchDS, dsSeed, false)
		if ds.HasOntology() {
			runDataset(cfg, rep, ds, benchDS, dsSeed, true)
		}
		logf("dataset %d/%d (seed %d, %d triples, ontology %v): %d pairs, %d engine runs, %d failures",
			di+1, cfg.Datasets, dsSeed, len(ds.Triples), ds.HasOntology(), rep.Pairs, rep.EngineRuns, len(rep.Failures))
	}
	return rep
}

// runDataset completes the per-dataset query quota for one side of the
// matrix (plain or entailment).
func runDataset(cfg Config, rep *Report, ds *Dataset, benchDS *bench.Dataset, dsSeed int64, entail bool) {
	quota := cfg.QueriesPerDataset
	var configs []EngineConfig
	var oracleTriples []rdf.Triple
	if entail {
		quota = quota/3 + 1
		configs = EntailConfigs(cfg.Workers)
		oracleTriples = rdfs.ForwardChain(ds.Triples, "", "", "")
	} else {
		configs = Configs(cfg.Workers)
		oracleTriples = ds.Triples
	}
	engines := make([]bench.RowEngine, len(configs))
	for i, c := range configs {
		engines[i] = c.Make(benchDS)
	}

	done := 0
	for qi := 0; done < quota && qi < quota*4 && len(rep.Failures) < cfg.MaxFailures; qi++ {
		qSeed := dsSeed ^ (int64(qi+1) * 7919)
		if entail {
			qSeed ^= 1 << 40
		}
		qRng := rand.New(rand.NewSource(qSeed))
		var q *Query
		if entail {
			q = GenEntailQuery(qRng, ds)
		} else {
			q = GenQuery(qRng, ds)
		}
		parsed, err := sparql.Parse(q.Src())
		if err != nil {
			// The generator stays inside the supported fragment by
			// construction, so a parse error is itself a finding.
			rep.Failures = append(rep.Failures, Failure{
				Engine: "sparql-parse", Query: q.Src(), Diff: err.Error(), Triples: ds.Triples,
			})
			continue
		}
		want, ok := reference.EvaluateBudget(parsed, oracleTriples, cfg.OracleBudget)
		if !ok || len(want) > cfg.MaxOracleRows {
			rep.Skipped++
			continue
		}
		done++
		rep.Pairs++

		for i, eng := range engines {
			rep.EngineRuns++
			got, err := eng.Evaluate(parsed)
			var diff string
			if err != nil {
				// A governance outcome (deadline, budget, shed) is a policy
				// result, not an engine divergence: engines under different
				// limits may legitimately disagree on whether a query runs.
				if governance.IsPolicy(err) {
					rep.Skipped++
					continue
				}
				diff = "error: " + err.Error()
			} else {
				diff = Compare(parsed, want, got)
			}
			if diff == "" {
				continue
			}
			f := Failure{Engine: configs[i].Name, Query: q.Src(), Diff: diff, Triples: ds.Triples}
			if !cfg.NoShrink {
				st, sq := Shrink(ds.Triples, q, configs[i], cfg.OracleBudget, cfg.MaxOracleRows)
				f.Repro = FormatRepro(st, sq, configs[i].Name)
			}
			rep.Failures = append(rep.Failures, f)
			if len(rep.Failures) >= cfg.MaxFailures {
				return
			}
		}

		if !entail {
			rep.Failures = append(rep.Failures, metamorphicChecks(qRng, benchDS, ds, q, parsed, done == 1)...)
			if len(rep.Failures) >= cfg.MaxFailures {
				return
			}
		}
	}
}

// Compare diffs an engine's result against the oracle's under the query's
// semantics. The oracle ignores positive LIMITs (it computes the complete
// result), so limited queries are checked by containment: the engine must
// return exactly min(LIMIT, |full result|) rows, each of which occurs in
// the full result with sufficient multiplicity. Everything else is an exact
// multiset comparison. It returns "" on agreement.
func Compare(q *sparql.Query, want, got [][]string) string {
	if q.HasLimit && q.Limit > 0 {
		exp := q.Limit
		if len(want) < exp {
			exp = len(want)
		}
		if len(got) != exp {
			return fmt.Sprintf("LIMIT %d over %d total rows: want %d rows, got %d",
				q.Limit, len(want), exp, len(got))
		}
		wm := reference.Multiset(want)
		for _, r := range got {
			k := strings.Join(r, "\x00")
			wm[k]--
			if wm[k] < 0 {
				return fmt.Sprintf("LIMIT %d: row [%s] not in the full result (or returned too often)",
					q.Limit, strings.Join(r, " | "))
			}
		}
		return ""
	}
	return reference.DiffMultisets(want, got)
}

// CheckRepro replays a shrunk repro: it evaluates query src over triples on
// the named engine configuration and on the oracle, failing the test on any
// divergence. Regression tests recorded from shrunk failures call this.
func CheckRepro(t testingTB, triples []rdf.Triple, src, engine string) {
	t.Helper()
	ec, err := FindConfig(engine)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	oracleTriples := triples
	if ec.Entail {
		oracleTriples = rdfs.ForwardChain(triples, "", "", "")
	}
	want := reference.Evaluate(parsed, oracleTriples)
	got, err := ec.Make(bench.NewDataset(triples, 2)).Evaluate(parsed)
	if err != nil {
		t.Fatalf("engine %s on %q: %v", engine, src, err)
	}
	if diff := Compare(parsed, want, got); diff != "" {
		t.Errorf("engine %s on %q: %s", engine, src, diff)
	}
}

// testingTB is the subset of testing.TB CheckRepro needs; declaring it here
// keeps the testing package out of the non-test build.
type testingTB interface {
	Helper()
	Fatal(args ...any)
	Fatalf(format string, args ...any)
	Errorf(format string, args ...any)
}
