package difftest

// Shrunk repros from differential-fuzzing failures live here, pinned as
// ordinary Go tests so a fixed bug stays fixed.
//
// Recording a new repro:
//
//  1. Run the matrix until it fails — either
//         go test ./internal/difftest/ -long -timeout 30m
//     or the soak CLI
//         go run ./cmd/parj-fuzz -trials 0
//  2. Both print a shrunk, ready-to-paste test function (built by
//     FormatRepro) next to the failure: a minimal triple set, the minimal
//     query, and the failing engine-configuration name.
//  3. Paste it below, rename TestRegress_RENAME_ME to something
//     descriptive, and keep it after the fix lands: CheckRepro replays the
//     pair against the oracle on every test run.
//
// Engine names embed strategy and worker count (e.g. "parj-AdBinary-w64");
// FindConfig resolves them on any host, so repros recorded on a wide
// machine replay on a laptop.

import (
	"reflect"
	"testing"

	"parj/internal/rdf"
	"parj/internal/reference"
)

// TestRegress_DedupAliasing pins the one real bug the harness has caught so
// far — in the oracle library itself, not an engine. reference.Dedup used to
// compact into its input's backing array (out := rows[:0]), silently
// corrupting the caller's slice. The metamorphic distinct-idempotence check
// passed base through Dedup and the later snapshot check then diffed the
// snapshot result against the corrupted base, producing a phantom
// divergence that vanished in every isolated repro. Dedup must leave its
// input untouched.
func TestRegress_DedupAliasing(t *testing.T) {
	rows := [][]string{{"<r17>"}, {"<r17>"}, {"<r28>"}, {"<r28>"}, {"<r28>"}, {"<r19>"}}
	orig := make([][]string, len(rows))
	copy(orig, rows)

	got := reference.Dedup(rows)

	want := [][]string{{"<r17>"}, {"<r28>"}, {"<r19>"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Dedup = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(rows, orig) {
		t.Errorf("Dedup mutated its input: %v, was %v", rows, orig)
	}
}

// TestRegress_TriadLimit0 pins LIMIT 0 on the TriAD baseline: eval must
// yield zero rows, not the unlimited result. (Investigated as a suspected
// divergence during harness bring-up; triad handles it — this keeps it so.)
func TestRegress_TriadLimit0(t *testing.T) {
	triples := []rdf.Triple{
		{S: "<a>", P: "<p>", O: "<b>"},
		{S: "<b>", P: "<p>", O: "<c>"},
	}
	CheckRepro(t, triples, "SELECT * WHERE { ?s <p> ?o } LIMIT 0", "triad")
}
