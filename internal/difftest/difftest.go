// Package difftest is a deterministic differential-testing harness for
// every query engine in this repository. It generates seeded random
// datasets with adversarial shapes and seeded random Basic Graph Patterns,
// evaluates each (dataset, query) pair on the naive reference oracle and on
// the full engine matrix — PARJ under all four probe strategies at several
// worker counts, plus the hashjoin, rdf3x, btree and triad baselines — and
// diffs the result multisets. Failing pairs are greedily shrunk to a small
// repro printed as a ready-to-paste Go test.
//
// Alongside the oracle diff, the harness applies metamorphic checks that
// need no oracle at all: pattern-order permutation invariance, DISTINCT
// idempotence, COUNT vs materialized-row agreement, and snapshot save/load
// round-trip equivalence.
//
// Entry points: the go test files in this package (seed-matrix smoke in
// short mode, a large matrix behind -long), and cmd/parj-fuzz for
// open-ended soak runs.
package difftest

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"parj/internal/bench"
	"parj/internal/core"
	"parj/internal/optimizer"
	"parj/internal/rdfs"
)

// EngineConfig names one engine configuration of the differential matrix
// and knows how to instantiate it over a loaded dataset. Make must be
// callable repeatedly (the shrinker rebuilds engines over reduced data).
type EngineConfig struct {
	Name string
	// Entail marks configurations that evaluate with RDFS entailment; they
	// are diffed against the oracle over forward-chained triples and only
	// run on queries generated for entailment.
	Entail bool
	Make   func(d *bench.Dataset) bench.RowEngine
}

// strategies is the full probe-strategy axis of the matrix (Table 5).
var strategies = []core.Strategy{
	core.AdaptiveBinary, core.BinaryOnly, core.IndexOnly, core.AdaptiveIndex,
}

// WorkerCounts returns the worker-count axis of the matrix: 1, 2 and
// NumCPU, deduplicated (on a dual-core host that is {1, 2}).
func WorkerCounts() []int {
	counts := []int{1, 2, runtime.NumCPU()}
	var out []int
	for _, c := range counts {
		dup := false
		for _, o := range out {
			if o == c {
				dup = true
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// Configs returns the plain-semantics differential matrix: PARJ under every
// strategy at each worker count, plus the four baselines. A nil workers
// slice selects WorkerCounts().
func Configs(workers []int) []EngineConfig {
	wcojWorkers := workers // nil lets WCOJConfigs pick its own axis
	if workers == nil {
		workers = WorkerCounts()
	}
	var out []EngineConfig
	for _, s := range strategies {
		for _, w := range workers {
			s, w := s, w
			out = append(out, EngineConfig{
				Name: fmt.Sprintf("parj-%s-w%d", s, w),
				Make: func(d *bench.Dataset) bench.RowEngine {
					return d.PARJRows(fmt.Sprintf("parj-%s-w%d", s, w), w, s, nil)
				},
			})
		}
	}
	out = append(out, WCOJConfigs(wcojWorkers)...)
	out = append(out,
		EngineConfig{Name: "hashjoin", Make: func(d *bench.Dataset) bench.RowEngine { return d.HashJoinRows() }},
		EngineConfig{Name: "rdf3x", Make: func(d *bench.Dataset) bench.RowEngine { return d.RDF3XRows() }},
		// Tiny pages force every scan across many page boundaries,
		// stressing the B+ tree cursor logic itself.
		EngineConfig{Name: "btree", Make: func(d *bench.Dataset) bench.RowEngine { return d.BTreeRows(4) }},
		EngineConfig{Name: "triad", Make: func(d *bench.Dataset) bench.RowEngine { return d.TriADRows(0) }},
		// The distributed serving tier: a 2-shard × 2-replica loopback
		// coordinator, diffed against the oracle like any local engine.
		clusterConfig(),
	)
	return out
}

// joinAlgos is the join-operator axis of the WCOJ matrix: the forced
// worst-case-optimal operator, the forced pipeline, and the optimizer's
// shape-based auto choice. Running all three on the same generated BGPs is
// what proves the two operators interchangeable — auto may flip between
// them per query, and any divergence from the oracle pins which operator
// (or the chooser itself) is wrong.
var joinAlgos = []core.JoinAlgo{core.JoinWCOJ, core.JoinPipeline, core.JoinAuto}

// WCOJWorkerCounts is the worker axis of the WCOJ matrix: single-worker
// (pure leapfrog, no scheduler), an odd count that never divides the outer
// domain evenly, and full parallelism — deduplicated like WorkerCounts.
func WCOJWorkerCounts() []int {
	counts := []int{1, 3, runtime.GOMAXPROCS(0)}
	var out []int
	for _, c := range counts {
		dup := false
		for _, o := range out {
			if o == c {
				dup = true
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// WCOJConfigs returns the join-operator differential matrix: PARJ with the
// join operator forced to WCOJ, to the pipeline, and left on auto, at each
// worker count. Ineligible patterns (variable predicates, hierarchy
// expansion) silently fall back to the pipeline under forced WCOJ, so every
// generated query is fair game. A nil workers slice selects
// WCOJWorkerCounts().
func WCOJConfigs(workers []int) []EngineConfig {
	if workers == nil {
		workers = WCOJWorkerCounts()
	}
	var out []EngineConfig
	for _, j := range joinAlgos {
		for _, w := range workers {
			j, w := j, w
			name := fmt.Sprintf("parj-%s-%s-w%d", j, core.AdaptiveBinary, w)
			out = append(out, EngineConfig{
				Name: name,
				Make: func(d *bench.Dataset) bench.RowEngine {
					return d.PARJRowsJoin(name, w, core.AdaptiveBinary, j, 0, nil)
				},
			})
		}
	}
	return out
}

// MorselSizes is the morsel-size axis of the scheduler matrix: 1 makes
// every outer work unit its own morsel (maximal dispatch and steal
// traffic), 7 forces uneven chunking with constant re-claiming, and 64K —
// the default scale — usually yields fewer morsels than workers, covering
// the clamped worker-count path.
var MorselSizes = []int{1, 7, 64 * 1024}

// MorselConfigs returns the scheduler differential matrix: PARJ under
// every strategy at each worker count and each morsel size. Nil slices
// select WorkerCounts() and MorselSizes.
func MorselConfigs(workers []int, sizes []int) []EngineConfig {
	if workers == nil {
		workers = WorkerCounts()
	}
	if sizes == nil {
		sizes = MorselSizes
	}
	var out []EngineConfig
	for _, s := range strategies {
		for _, w := range workers {
			for _, m := range sizes {
				s, w, m := s, w, m
				name := fmt.Sprintf("parj-%s-w%d-m%d", s, w, m)
				out = append(out, EngineConfig{
					Name: name,
					Make: func(d *bench.Dataset) bench.RowEngine {
						return d.PARJRowsWith(name, w, s, m, nil)
					},
				})
			}
		}
	}
	return out
}

// EntailConfigs returns the entailment matrix: PARJ (the only engine with
// backward-chained RDFS support) under every strategy at each worker count.
// The oracle side evaluates over rdfs.ForwardChain-materialized triples.
func EntailConfigs(workers []int) []EngineConfig {
	if workers == nil {
		workers = WorkerCounts()
	}
	var out []EngineConfig
	for _, s := range strategies {
		for _, w := range workers {
			s, w := s, w
			name := fmt.Sprintf("parj-entail-%s-w%d", s, w)
			out = append(out, EngineConfig{
				Name:   name,
				Entail: true,
				Make: func(d *bench.Dataset) bench.RowEngine {
					st, _ := d.Store()
					return d.PARJRows(name, w, s, rdfs.New(st, "", "", ""))
				},
			})
		}
	}
	return out
}

// FindConfig resolves an engine-configuration name as produced by Configs,
// MorselConfigs or EntailConfigs, for replaying shrunk repros. PARJ names
// are parsed rather than looked up, so a repro recorded on a many-core host
// replays on any machine ("parj-AdBinary-w8-m7" works on a dual-core
// laptop).
func FindConfig(name string) (EngineConfig, error) {
	for _, c := range append(Configs(nil), EntailConfigs(nil)...) {
		if c.Name == name {
			return c, nil
		}
	}
	rest, entail := strings.CutPrefix(name, "parj-entail-")
	if !entail {
		var plain bool
		rest, plain = strings.CutPrefix(name, "parj-")
		if !plain {
			return EngineConfig{}, fmt.Errorf("difftest: unknown engine config %q", name)
		}
	}
	// Optional join-operator token (the WCOJConfigs grammar):
	// parj[-entail]-(wcoj|pipe|auto)-<strategy>-w<N>[-m<M>].
	join, joinSet := core.JoinAuto, false
	for _, j := range joinAlgos {
		if r, ok := strings.CutPrefix(rest, j.String()+"-"); ok {
			join, joinSet = j, true
			rest = r
			break
		}
	}
	morsel := 0
	if mIdx := strings.LastIndex(rest, "-m"); mIdx >= 0 && mIdx > strings.LastIndex(rest, "-w") {
		m, err := strconv.Atoi(rest[mIdx+2:])
		if err != nil || m < 1 {
			return EngineConfig{}, fmt.Errorf("difftest: unknown engine config %q", name)
		}
		morsel = m
		rest = rest[:mIdx]
	}
	wIdx := strings.LastIndex(rest, "-w")
	if wIdx < 0 {
		return EngineConfig{}, fmt.Errorf("difftest: unknown engine config %q", name)
	}
	w, err := strconv.Atoi(rest[wIdx+2:])
	if err != nil || w < 1 {
		return EngineConfig{}, fmt.Errorf("difftest: unknown engine config %q", name)
	}
	stratName := rest[:wIdx]
	for _, s := range strategies {
		if s.String() == stratName {
			s := s
			return EngineConfig{Name: name, Entail: entail, Make: func(d *bench.Dataset) bench.RowEngine {
				var x optimizer.Expander
				if entail {
					st, _ := d.Store()
					x = rdfs.New(st, "", "", "")
				}
				if joinSet {
					return d.PARJRowsJoin(name, w, s, join, morsel, x)
				}
				if morsel > 0 {
					return d.PARJRowsWith(name, w, s, morsel, x)
				}
				return d.PARJRows(name, w, s, x)
			}}, nil
		}
	}
	return EngineConfig{}, fmt.Errorf("difftest: unknown engine config %q", name)
}
