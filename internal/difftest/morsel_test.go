package difftest

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"parj/internal/bench"
	"parj/internal/reference"
	"parj/internal/sparql"
)

// morselWorkers is the worker axis for the scheduler matrix: serial, an odd
// count that never divides the outer evenly, and everything the host has.
func morselWorkers() []int {
	counts := []int{1, 3, runtime.GOMAXPROCS(0)}
	var out []int
	for _, c := range counts {
		dup := false
		for _, o := range out {
			if o == c {
				dup = true
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// TestMorselSizeMatrix runs every probe strategy at every worker count under
// each morsel size in MorselSizes, diffing each run against the oracle and —
// the metamorphic half — against the first morsel size's result: chunking is
// a scheduling decision, so the result multiset must be identical across
// sizes. Half the datasets are Skewed, giving the scheduler hot keys whose
// runs dwarf the smaller bounds. Run it under -race: the interesting
// failures here are claim/steal races, not wrong plans.
func TestMorselSizeMatrix(t *testing.T) {
	workers := morselWorkers()
	const datasets = 4
	const queriesPer = 3
	pairs := 0
	for di := 0; di < datasets; di++ {
		dsSeed := int64(900_001 + di*1_000_003)
		rng := rand.New(rand.NewSource(dsSeed))
		ds := GenDataset(rng, DatasetConfig{MaxTriples: 220, Skewed: di%2 == 0})
		benchDS := bench.NewDataset(ds.Triples, 2)

		done := 0
		for qi := 0; done < queriesPer && qi < queriesPer*4; qi++ {
			qRng := rand.New(rand.NewSource(dsSeed ^ int64(qi+1)*7919))
			q := GenQuery(qRng, ds)
			parsed, err := sparql.Parse(q.Src())
			if err != nil {
				t.Fatalf("parse %q: %v", q.Src(), err)
			}
			want, ok := reference.EvaluateBudget(parsed, ds.Triples, 2_000_000)
			if !ok || len(want) > 20_000 {
				continue
			}
			done++
			pairs++

			for _, s := range strategies {
				for _, w := range workers {
					// The reference result for the cross-size identity check:
					// whatever the first morsel size produced.
					var sizeRef [][]string
					for si, m := range MorselSizes {
						name := fmt.Sprintf("parj-%s-w%d-m%d", s, w, m)
						// Resolve through FindConfig so the repro-replay
						// parse path for -m names is in the loop too.
						ec, err := FindConfig(name)
						if err != nil {
							t.Fatalf("FindConfig(%q): %v", name, err)
						}
						got, err := ec.Make(benchDS).Evaluate(parsed)
						if err != nil {
							t.Fatalf("%s on %q: %v", name, q.Src(), err)
						}
						if diff := Compare(parsed, want, got); diff != "" {
							t.Errorf("%s on %q: %s", name, q.Src(), diff)
						}
						// A multi-worker LIMIT run may stop on any valid
						// subset, so exact cross-size identity only holds
						// without LIMIT — or at one worker, where morsels
						// drain in dispatch order whatever their size.
						if q.HasLimit && w > 1 {
							continue
						}
						if si == 0 {
							sizeRef = got
						} else if d := reference.DiffMultisets(sizeRef, got); d != "" {
							t.Errorf("%s on %q: result differs from morsel size %d: %s",
								name, q.Src(), MorselSizes[0], d)
						}
					}
				}
			}
		}
	}
	if pairs < datasets*2 {
		t.Errorf("completed only %d (dataset, query) pairs, want >= %d", pairs, datasets*2)
	}
}

// TestMorselConfigNames pins the -m name grammar: every generated scheduler
// configuration round-trips through FindConfig, foreign-host names resolve,
// and malformed morsel suffixes are rejected.
func TestMorselConfigNames(t *testing.T) {
	for _, c := range MorselConfigs(nil, nil) {
		got, err := FindConfig(c.Name)
		if err != nil {
			t.Errorf("FindConfig(%q): %v", c.Name, err)
			continue
		}
		if got.Name != c.Name || got.Entail {
			t.Errorf("FindConfig(%q) = {%q, entail %v}", c.Name, got.Name, got.Entail)
		}
	}
	for _, name := range []string{"parj-AdBinary-w64-m65536", "parj-Index-w8-m1"} {
		if _, err := FindConfig(name); err != nil {
			t.Errorf("FindConfig(%q): %v", name, err)
		}
	}
	for _, name := range []string{"parj-AdBinary-w2-m0", "parj-AdBinary-m7-w2", "parj-AdBinary-m7"} {
		if _, err := FindConfig(name); err == nil {
			t.Errorf("FindConfig(%q) unexpectedly resolved", name)
		}
	}
}
