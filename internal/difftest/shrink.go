package difftest

import (
	"fmt"
	"strings"

	"parj/internal/bench"
	"parj/internal/rdf"
	"parj/internal/rdfs"
	"parj/internal/reference"
	"parj/internal/sparql"
)

// maxShrinkChecks caps the total number of (re-load, re-evaluate) probes a
// single shrink may spend; each probe rebuilds the engine over the candidate
// triple set, so an unbounded ddmin on a slow failure could dominate a run.
const maxShrinkChecks = 400

// Shrink greedily minimizes a failing (triples, query) pair for one engine
// configuration: ddmin-style chunk removal over the triples interleaved with
// structural query simplification (dropping patterns, DISTINCT and LIMIT).
// A candidate only counts as "still failing" if the oracle completes within
// budget on it, so shrinking never trades a real repro for an unverifiable
// one. The result is the smallest failing pair found, never worse than the
// input.
func Shrink(triples []rdf.Triple, q *Query, ec EngineConfig, oracleBudget int64, maxOracleRows int) ([]rdf.Triple, *Query) {
	checks := 0
	fails := func(ts []rdf.Triple, cand *Query) bool {
		if checks >= maxShrinkChecks {
			return false
		}
		checks++
		parsed, err := sparql.Parse(cand.Src())
		if err != nil {
			return false
		}
		oracleTriples := ts
		if ec.Entail {
			oracleTriples = rdfs.ForwardChain(ts, "", "", "")
		}
		want, ok := reference.EvaluateBudget(parsed, oracleTriples, oracleBudget)
		if !ok || len(want) > maxOracleRows {
			return false
		}
		got, err := ec.Make(bench.NewDataset(ts, 2)).Evaluate(parsed)
		if err != nil {
			return true // an engine error is a failure in its own right
		}
		return Compare(parsed, want, got) != ""
	}

	cur := append([]rdf.Triple(nil), triples...)
	best := q.Clone()

	// Alternate: simplifying the query usually unlocks further triple
	// removal and vice versa, so run both to a joint fixpoint.
	for changed := true; changed && checks < maxShrinkChecks; {
		changed = false
		if next, ok := shrinkQuery(cur, best, fails); ok {
			best = next
			changed = true
		}
		if next, ok := shrinkTriples(cur, best, fails); ok {
			cur = next
			changed = true
		}
	}
	return cur, best
}

// shrinkTriples is the ddmin loop: try dropping ever-smaller chunks while
// the failure persists.
func shrinkTriples(triples []rdf.Triple, q *Query, fails func([]rdf.Triple, *Query) bool) ([]rdf.Triple, bool) {
	cur := triples
	reduced := false
	n := 2
	for len(cur) >= 2 && n <= len(cur) {
		chunk := (len(cur) + n - 1) / n
		removedAny := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]rdf.Triple, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) > 0 && fails(cand, q) {
				cur = cand
				reduced = true
				removedAny = true
				start -= chunk // re-test the same offset on the shrunk slice
			}
		}
		if removedAny {
			if n > 2 {
				n--
			}
		} else {
			n *= 2
		}
	}
	return cur, reduced
}

// shrinkQuery tries structural simplifications in decreasing order of
// impact: drop a pattern (fixing the projection), then strip LIMIT,
// DISTINCT, and an explicit projection.
func shrinkQuery(triples []rdf.Triple, q *Query, fails func([]rdf.Triple, *Query) bool) (*Query, bool) {
	cur := q
	reduced := false
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Patterns) && len(cur.Patterns) > 1; i++ {
			cand := cur.Clone()
			cand.Patterns = append(cand.Patterns[:i], cand.Patterns[i+1:]...)
			cand.FixProjection()
			if fails(triples, cand) {
				cur, reduced, changed = cand, true, true
				i--
			}
		}
		for _, simplify := range []func(*Query){
			func(c *Query) { c.HasLimit = false; c.Limit = 0 },
			func(c *Query) { c.Distinct = false },
			func(c *Query) { c.Star = true; c.Select = nil },
		} {
			cand := cur.Clone()
			simplify(cand)
			if cand.Src() != cur.Src() && fails(triples, cand) {
				cur, reduced, changed = cand, true, true
			}
		}
	}
	return cur, reduced
}

// FormatRepro renders a shrunk failure as a self-contained Go regression
// test ready to paste into internal/difftest/regress_test.go.
func FormatRepro(triples []rdf.Triple, q *Query, engine string) string {
	var sb strings.Builder
	sb.WriteString("// Shrunk by the difftest harness; paste into internal/difftest/regress_test.go\n")
	sb.WriteString("// and rename. CheckRepro fails the test while the divergence exists.\n")
	sb.WriteString("func TestRegress_RENAME_ME(t *testing.T) {\n")
	sb.WriteString("\ttriples := []rdf.Triple{\n")
	for _, t := range triples {
		fmt.Fprintf(&sb, "\t\t{S: %q, P: %q, O: %q},\n", t.S, t.P, t.O)
	}
	sb.WriteString("\t}\n")
	fmt.Fprintf(&sb, "\tCheckRepro(t, triples, %q, %q)\n", q.Src(), engine)
	sb.WriteString("}\n")
	return sb.String()
}
