package difftest

import (
	"fmt"
	"math/rand"
	"sort"

	"parj/internal/rdf"
	"parj/internal/rdfs"
)

// Dataset is one generated workload plus the term pools the query generator
// draws constants from.
type Dataset struct {
	Seed    int64
	Triples []rdf.Triple

	// Predicates lists the distinct predicate IRIs actually used.
	Predicates []string
	// Resources lists the distinct subject/object IRIs actually used.
	Resources []string
	// Literals lists the distinct literals used in object position.
	Literals []string
	// Classes lists the class IRIs when the dataset carries an ontology
	// (rdf:type plus rdfs:subClassOf/subPropertyOf triples); empty
	// otherwise.
	Classes []string
}

// HasOntology reports whether entailment queries are meaningful on this
// dataset.
func (d *Dataset) HasOntology() bool { return len(d.Classes) > 0 }

// DatasetConfig bounds generation.
type DatasetConfig struct {
	// MaxTriples caps the dataset size before deduplication (default 300).
	MaxTriples int
	// Wide permits the resource universe to exceed the posindex anchor
	// interval (512 IDs), so key bitmaps straddle anchor boundaries.
	// Wide datasets pair with selective queries; the oracle budget skips
	// the rest.
	Wide bool
	// Skewed concentrates the subject column on a couple of hub resources
	// plus a Zipf-ish tail, so the first pattern's outer relation has hot
	// keys whose runs dwarf the morsel bound — the shape the work-stealing
	// scheduler exists for, and the one most likely to expose claim/steal
	// races or lost tuples at hot-key split boundaries.
	Skewed bool
	// Dense shrinks the resource and predicate universes to near-clique
	// density, so the cyclic query shapes (triangles, 2-cycles, self-joins)
	// actually close — the regime where the worst-case-optimal operator's
	// intersections do real work instead of degenerating to empty scans.
	Dense bool
}

func (c *DatasetConfig) fill() {
	if c.MaxTriples <= 0 {
		c.MaxTriples = 300
	}
}

// GenDataset draws one adversarial dataset from rng. The same seed always
// produces the same dataset. Shapes the generator aims at (the cases the
// paper's probe strategies and sharding are most sensitive to):
//
//   - skewed predicates: a zipf-ish weighting concentrates most triples in
//     one predicate, so one table dominates sharding;
//   - dense self-joins: small resource universes make chains and cycles
//     revisit the same keys, exercising cursor resumption back and forth;
//   - high-duplicate object columns: a few hot objects give long runs in
//     O-S tables;
//   - anchor straddling (Wide): >512 distinct resources push dictionary IDs
//     across posindex anchor blocks, covering the anchor+popcount path at
//     block boundaries;
//   - hub subjects (Skewed): half the subject column lands on one or two
//     resources, giving the morsel scheduler hot keys to split;
//   - near-clique universes (Dense): so few resources that cyclic BGPs
//     close constantly, making triangle blowup (and any WCOJ intersection
//     bug) observable;
//   - an optional RDFS ontology (subclass/subproperty hierarchies plus
//     rdf:type assertions) for entailment differentials.
func GenDataset(rng *rand.Rand, cfg DatasetConfig) *Dataset {
	cfg.fill()
	ds := &Dataset{Seed: rng.Int63()}

	// Universe sizes. Dense wants few resources; Wide wants IDs past the
	// 512-bit anchor interval.
	nPred := 1 + rng.Intn(6)
	nRes := 8 + rng.Intn(40)
	switch {
	case cfg.Dense:
		// Near-clique: ~1-2 predicates over a handful of resources, so a
		// few hundred triples approach all-pairs density. The Dense case
		// comes first and reuses the draws above (no extra rng consumption
		// on the other paths), keeping non-dense generation bit-identical
		// to what earlier seeds produced.
		nPred = 1 + nPred%2
		nRes = 6 + nRes%9
	case cfg.Wide:
		nRes = 600 + rng.Intn(900)
	case rng.Intn(3) == 0: // medium
		nRes = 60 + rng.Intn(200)
	}
	nLit := 1 + rng.Intn(6)
	nTriples := cfg.MaxTriples/2 + rng.Intn(cfg.MaxTriples/2+1)

	preds := make([]string, nPred)
	for i := range preds {
		preds[i] = fmt.Sprintf("<p%d>", i)
	}
	res := make([]string, nRes)
	for i := range res {
		res[i] = fmt.Sprintf("<r%d>", i)
	}
	lits := make([]string, nLit)
	for i := range lits {
		lits[i] = fmt.Sprintf("%q", fmt.Sprintf("lit%d", i))
	}

	// Zipf-ish predicate weights: predicate i drawn with weight 1/(i+1).
	pickPred := func() string {
		for {
			i := rng.Intn(nPred)
			if rng.Float64() < 1/float64(i+1) {
				return preds[i]
			}
		}
	}
	// A handful of hot objects soak up half the object column.
	hot := make([]string, 1+rng.Intn(3))
	for i := range hot {
		hot[i] = res[rng.Intn(nRes)]
	}
	pickObj := func() string {
		switch {
		case rng.Float64() < 0.4:
			return hot[rng.Intn(len(hot))]
		case rng.Float64() < 0.2:
			return lits[rng.Intn(nLit)]
		default:
			return res[rng.Intn(nRes)]
		}
	}

	pickSubj := func() string { return res[rng.Intn(nRes)] }
	if cfg.Skewed {
		// One or two hub subjects soak up half the subject column; the rest
		// follows a Zipf-ish rank weighting over the resource array.
		hubs := make([]string, 1+rng.Intn(2))
		for i := range hubs {
			hubs[i] = res[rng.Intn(nRes)]
		}
		pickSubj = func() string {
			if rng.Float64() < 0.5 {
				return hubs[rng.Intn(len(hubs))]
			}
			for {
				i := rng.Intn(nRes)
				if rng.Float64() < 1/float64(i+1) {
					return res[i]
				}
			}
		}
	}

	seen := map[rdf.Triple]bool{}
	add := func(t rdf.Triple) {
		if !seen[t] {
			seen[t] = true
			ds.Triples = append(ds.Triples, t)
		}
	}
	for i := 0; i < nTriples; i++ {
		add(rdf.Triple{S: pickSubj(), P: pickPred(), O: pickObj()})
	}

	// Optional ontology: a small class tree plus one property hierarchy.
	if rng.Intn(3) == 0 {
		nClasses := 2 + rng.Intn(3)
		for i := 0; i < nClasses; i++ {
			ds.Classes = append(ds.Classes, fmt.Sprintf("<C%d>", i))
		}
		// Chain-shaped subclass edges C1 -> C0, C2 -> C1, ... with an
		// occasional diamond back to the root.
		for i := 1; i < nClasses; i++ {
			parent := ds.Classes[i-1]
			if rng.Intn(3) == 0 {
				parent = ds.Classes[0]
			}
			add(rdf.Triple{S: ds.Classes[i], P: rdfs.SubClassOf, O: parent})
		}
		nTyped := 3 + rng.Intn(10)
		for i := 0; i < nTyped; i++ {
			add(rdf.Triple{
				S: res[rng.Intn(nRes)],
				P: rdfs.RDFType,
				O: ds.Classes[rng.Intn(nClasses)],
			})
		}
		if nPred >= 2 {
			// p1 ⊑ p0: both asserted in the data, so queries over p0 see
			// the union of two non-empty tables under entailment.
			add(rdf.Triple{S: preds[1], P: rdfs.SubPropertyOf, O: preds[0]})
		}
	}

	// Deterministic shuffle: load order influences nothing semantically,
	// but varying it exercises builder sorting on differently ordered input.
	rng.Shuffle(len(ds.Triples), func(i, j int) {
		ds.Triples[i], ds.Triples[j] = ds.Triples[j], ds.Triples[i]
	})

	ds.finishPools()
	return ds
}

// finishPools recomputes the constant pools from the triples. It is also
// used by the shrinker after reducing the triple set.
func (d *Dataset) finishPools() {
	predSet, resSet, litSet := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, t := range d.Triples {
		predSet[t.P] = true
		resSet[t.S] = true
		if rdf.KindOf(t.O) == rdf.Literal {
			litSet[t.O] = true
		} else {
			resSet[t.O] = true
		}
	}
	d.Predicates = sortedKeys(predSet)
	d.Resources = sortedKeys(resSet)
	d.Literals = sortedKeys(litSet)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
