package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"parj/internal/rdfs"
	"parj/internal/sparql"
)

// Query is the structural form the generator produces and the shrinker
// reduces; Src renders it to the SPARQL text fed to every engine (so the
// parser sits inside the differential loop too).
type Query struct {
	Patterns []sparql.TriplePattern
	Distinct bool
	HasLimit bool
	Limit    int
	// Star selects SELECT *; otherwise Select lists the projected vars.
	Star   bool
	Select []string
	// Entail marks the query for the entailment matrix (PARJ backward
	// chaining vs oracle over forward-chained triples).
	Entail bool
}

// Src renders the query as SPARQL text.
func (q *Query) Src() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if q.Star {
		sb.WriteString("*")
	} else {
		for i, v := range q.Select {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString("?" + v)
		}
	}
	sb.WriteString(" WHERE { ")
	for i, tp := range q.Patterns {
		if i > 0 {
			sb.WriteString(" . ")
		}
		sb.WriteString(tp.String())
	}
	sb.WriteString(" }")
	if q.HasLimit {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

// Clone returns a deep copy the shrinker can mutate.
func (q *Query) Clone() *Query {
	c := *q
	c.Patterns = append([]sparql.TriplePattern(nil), q.Patterns...)
	c.Select = append([]string(nil), q.Select...)
	return &c
}

// vars returns the distinct variables of the BGP in first-appearance order.
func (q *Query) vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, tp := range q.Patterns {
		for _, t := range []sparql.Term{tp.S, tp.P, tp.O} {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	return out
}

// FixProjection restores the SELECT clause invariant (projected vars must
// occur in the BGP) after the shrinker dropped patterns. Queries whose
// projection would turn empty fall back to SELECT *.
func (q *Query) FixProjection() {
	if q.Star {
		return
	}
	inBGP := map[string]bool{}
	for _, v := range q.vars() {
		inBGP[v] = true
	}
	var keep []string
	for _, v := range q.Select {
		if inBGP[v] {
			keep = append(keep, v)
		}
	}
	if len(keep) == 0 {
		q.Star = true
		q.Select = nil
		return
	}
	q.Select = keep
}

// qgen carries the generator state for one query. Variables in predicate
// position come from a pool disjoint from subject/object variables: the
// engines bind predicate variables to predicate-dictionary IDs, so a
// variable shared between a predicate and a resource position would compare
// IDs across dictionaries — outside every engine's supported fragment.
type qgen struct {
	rng *rand.Rand
	ds  *Dataset
}

// resTerm draws an object variable or constant. varP is the probability of
// a variable; reuse is the pool of resource vars usable for joins.
func (g *qgen) resTerm(varP float64, fresh func() string, reuse []string) sparql.Term {
	return g.term(varP, fresh, reuse, false)
}

// subjTerm is resTerm for subject position, where literals are not legal.
func (g *qgen) subjTerm(varP float64, fresh func() string, reuse []string) sparql.Term {
	return g.term(varP, fresh, reuse, true)
}

func (g *qgen) term(varP float64, fresh func() string, reuse []string, noLit bool) sparql.Term {
	r := g.rng.Float64()
	if r < varP {
		if len(reuse) > 0 && g.rng.Float64() < 0.5 {
			return sparql.Variable(reuse[g.rng.Intn(len(reuse))])
		}
		return sparql.Variable(fresh())
	}
	return sparql.Constant(g.resConst(noLit))
}

// resConst draws a resource — or, unless noLit, a literal — constant,
// occasionally one that exists nowhere in the data (the unknown-term path:
// dictionary lookups must miss cleanly).
func (g *qgen) resConst(noLit bool) string {
	switch {
	case g.rng.Intn(12) == 0:
		return "<nowhere>"
	case !noLit && len(g.ds.Literals) > 0 && g.rng.Float64() < 0.2:
		return g.ds.Literals[g.rng.Intn(len(g.ds.Literals))]
	case len(g.ds.Resources) > 0:
		return g.ds.Resources[g.rng.Intn(len(g.ds.Resources))]
	default:
		return "<nowhere>"
	}
}

// predTerm draws a predicate: mostly a constant from the data, sometimes a
// predicate variable (shared across patterns for predicate joins),
// occasionally unknown.
func (g *qgen) predTerm(pvars *[]string) sparql.Term {
	r := g.rng.Float64()
	switch {
	case r < 0.10:
		// Predicate variable; reuse an existing one half the time.
		if len(*pvars) > 0 && g.rng.Float64() < 0.5 {
			return sparql.Variable((*pvars)[g.rng.Intn(len(*pvars))])
		}
		v := fmt.Sprintf("q%d", len(*pvars))
		*pvars = append(*pvars, v)
		return sparql.Variable(v)
	case r < 0.15:
		return sparql.Constant("<nopred>")
	default:
		return sparql.Constant(g.ds.Predicates[g.rng.Intn(len(g.ds.Predicates))])
	}
}

// GenQuery draws one random BGP query over ds. Shapes: star (shared
// subject), chain, cycle (chain closed back to its start), self-join (one
// predicate throughout), and a connected random shape. Objects may be
// literals; subjects and predicates may be constants, including constants
// absent from the data.
func GenQuery(rng *rand.Rand, ds *Dataset) *Query {
	g := &qgen{rng: rng, ds: ds}
	q := &Query{}
	n := 1 + rng.Intn(4)
	nv := 0
	fresh := func() string {
		v := fmt.Sprintf("v%d", nv)
		nv++
		return v
	}
	var pvars []string

	switch shape := rng.Intn(5); shape {
	case 0: // star: all patterns share the subject
		s := g.subjTerm(0.85, fresh, nil)
		for i := 0; i < n; i++ {
			q.Patterns = append(q.Patterns, sparql.TriplePattern{
				S: s,
				P: g.predTerm(&pvars),
				O: g.resTerm(0.6, fresh, nil),
			})
		}
	case 1, 2: // chain / cycle: subject of pattern i+1 is object of pattern i
		cur := sparql.Variable(fresh())
		first := cur
		for i := 0; i < n; i++ {
			next := sparql.Variable(fresh())
			if i == n-1 {
				if shape == 2 && n > 1 {
					next = first // close the cycle
				} else if g.rng.Float64() < 0.3 {
					// End the chain on a constant.
					q.Patterns = append(q.Patterns, sparql.TriplePattern{
						S: cur, P: g.predTerm(&pvars), O: sparql.Constant(g.resConst(false)),
					})
					break
				}
			}
			q.Patterns = append(q.Patterns, sparql.TriplePattern{
				S: cur, P: g.predTerm(&pvars), O: next,
			})
			cur = next
		}
	case 3: // self-join: one predicate, heavily shared variables
		p := sparql.Constant(ds.Predicates[rng.Intn(len(ds.Predicates))])
		vars := []string{fresh(), fresh()}
		for i := 0; i < n; i++ {
			s := sparql.Variable(vars[rng.Intn(len(vars))])
			o := sparql.Variable(vars[rng.Intn(len(vars))])
			if rng.Float64() < 0.5 {
				v := fresh()
				vars = append(vars, v)
				o = sparql.Variable(v)
			}
			q.Patterns = append(q.Patterns, sparql.TriplePattern{S: s, P: p, O: o})
		}
	default: // connected random: each pattern reuses some earlier variable
		var rvars []string
		s := sparql.Variable(fresh())
		rvars = append(rvars, s.Var)
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: s, P: g.predTerm(&pvars), O: g.resTerm(0.6, fresh, nil),
		})
		if o := q.Patterns[0].O; o.IsVar() {
			rvars = append(rvars, o.Var)
		}
		for i := 1; i < n; i++ {
			// Anchor on an existing resource variable to stay connected.
			anchor := sparql.Variable(rvars[rng.Intn(len(rvars))])
			tp := sparql.TriplePattern{P: g.predTerm(&pvars)}
			if rng.Float64() < 0.5 {
				tp.S = anchor
				tp.O = g.resTerm(0.6, fresh, rvars)
			} else {
				tp.O = anchor
				tp.S = g.subjTerm(0.7, fresh, rvars)
			}
			for _, t := range []sparql.Term{tp.S, tp.O} {
				if t.IsVar() {
					rvars = appendUnique(rvars, t.Var)
				}
			}
			q.Patterns = append(q.Patterns, tp)
		}
	}

	g.finish(q, pvars)
	return q
}

// GenEntailQuery draws a query for the entailment matrix. The fragment is
// narrower on purpose: constant predicates only, and rdf:type patterns get
// constant class objects — PARJ's backward chaining expands exactly those
// positions, so anything wider would diff semantics no engine implements.
func GenEntailQuery(rng *rand.Rand, ds *Dataset) *Query {
	g := &qgen{rng: rng, ds: ds}
	q := &Query{Entail: true}
	// Schema predicates must not appear as plain predicates here: a
	// variable-object rdf:type pattern is answered from asserted triples
	// only (by design), while the forward-chained oracle would see derived
	// ones — a fragment mismatch, not an engine bug.
	var preds []string
	for _, p := range ds.Predicates {
		if p != rdfs.RDFType && p != rdfs.SubClassOf && p != rdfs.SubPropertyOf {
			preds = append(preds, p)
		}
	}
	n := 1 + rng.Intn(3)
	nv := 0
	fresh := func() string {
		v := fmt.Sprintf("v%d", nv)
		nv++
		return v
	}
	s := g.subjTerm(0.9, fresh, nil)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			q.Patterns = append(q.Patterns, sparql.TriplePattern{
				S: s,
				P: sparql.Constant(sparql.RDFType),
				O: sparql.Constant(ds.Classes[rng.Intn(len(ds.Classes))]),
			})
			continue
		}
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: s,
			P: sparql.Constant(preds[rng.Intn(len(preds))]),
			O: g.resTerm(0.7, fresh, nil),
		})
	}
	g.finish(q, nil)
	return q
}

// finish draws projection, DISTINCT and LIMIT. pvars is unused but keeps
// the call sites symmetric when predicate variables were generated.
func (g *qgen) finish(q *Query, _ []string) {
	vars := q.vars()
	if len(vars) == 0 || g.rng.Float64() < 0.5 {
		q.Star = true
	} else {
		// Random non-empty subset, in sorted order for readability.
		for _, v := range vars {
			if g.rng.Float64() < 0.6 {
				q.Select = append(q.Select, v)
			}
		}
		if len(q.Select) == 0 {
			q.Select = []string{vars[g.rng.Intn(len(vars))]}
		}
		sort.Strings(q.Select)
	}
	if g.rng.Float64() < 0.3 {
		q.Distinct = true
	}
	if g.rng.Float64() < 0.2 {
		q.HasLimit = true
		if g.rng.Intn(10) == 0 {
			q.Limit = 0 // LIMIT 0 is valid SPARQL: zero rows
		} else {
			q.Limit = 1 + g.rng.Intn(15)
		}
	}
}

func appendUnique(xs []string, v string) []string {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}
