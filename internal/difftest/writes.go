package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"time"

	"parj"
	"parj/internal/cluster"
	"parj/internal/core"
	"parj/internal/live"
	"parj/internal/optimizer"
	"parj/internal/rdf"
	"parj/internal/reference"
	"parj/internal/remote"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
)

// writes.go — the mutable-store differential harness.
//
// A WriteSchedule is a seeded, replayable interleaving of write batches,
// reconciliations and queries over a generated dataset. The harness replays
// each schedule on every write-capable engine configuration — the live PARJ
// store across the probe-strategy/worker/join-operator matrix, plus the
// networked cluster write path over loopback — and diffs each query result
// against a naive mutable oracle (a plain triple set updated by the same
// batches). The oracle has no epochs, no deltas, no reconciliation: any
// divergence pins a bug in the write path, not in the workload.
//
// The generator deliberately aims at the anomalies set-semantic deltas must
// get right: duplicate inserts, deletes of absent triples, delete-then-
// reinsert across (and within) epoch boundaries, and reconciliations racing
// fresh writes. Failing schedules shrink ddmin-style over both the op list
// and the base dataset into a ready-to-paste repro.

// WriteOp is one step of a write schedule. Exactly one of the three op
// shapes is populated: a write batch (Inserts and/or Deletes; deletes apply
// first, the order the replication protocol fixes), a reconciliation, or a
// query to diff against the oracle.
type WriteOp struct {
	Inserts   []rdf.Triple
	Deletes   []rdf.Triple
	Reconcile bool
	Query     string
}

func (op *WriteOp) kind() string {
	switch {
	case op.Query != "":
		return "query"
	case op.Reconcile:
		return "reconcile"
	default:
		return "write"
	}
}

// WriteSchedule is a replayable mutable-store workload: a base dataset the
// engine loads first, then an op sequence.
type WriteSchedule struct {
	Seed int64
	Base []rdf.Triple
	Ops  []WriteOp
}

// Counts summarizes the schedule for log lines.
func (s *WriteSchedule) Counts() (writes, reconciles, queries int) {
	for i := range s.Ops {
		switch s.Ops[i].kind() {
		case "query":
			queries++
		case "reconcile":
			reconciles++
		default:
			writes++
		}
	}
	return
}

// WriteEngine is a mutable engine under differential test. Apply must
// execute deletes before inserts (the write path's batch order); Evaluate
// must observe every previously applied batch.
type WriteEngine interface {
	Name() string
	Apply(inserts, deletes []rdf.Triple) error
	Reconcile() error
	Evaluate(q *sparql.Query) ([][]string, error)
	Close()
}

// WriteEngineConfig names one mutable engine configuration and builds it
// over a base dataset. Make must be callable repeatedly (the shrinker
// rebuilds engines over reduced schedules).
type WriteEngineConfig struct {
	Name string
	Make func(base []rdf.Triple) (WriteEngine, error)
}

// WriteEngineConfigs returns the mutable differential matrix: the live
// store under every probe strategy at each worker count, the forced join
// operators, a background-auto-reconcile configuration (epoch swaps land at
// arbitrary points of the schedule — results must not care), and the
// cluster write path over a loopback fleet. A nil workers slice selects
// WorkerCounts().
func WriteEngineConfigs(workers []int) []WriteEngineConfig {
	if workers == nil {
		workers = WorkerCounts()
	}
	var out []WriteEngineConfig
	for _, s := range strategies {
		for _, w := range workers {
			s, w := s, w
			name := fmt.Sprintf("live-%s-w%d", s, w)
			out = append(out, WriteEngineConfig{Name: name, Make: func(base []rdf.Triple) (WriteEngine, error) {
				return newLiveWriteEngine(name, base, parj.QueryOptions{Threads: w, Strategy: s}, 0)
			}})
		}
	}
	for _, j := range joinAlgos {
		j := j
		name := fmt.Sprintf("live-%s-%s-w2", j, core.AdaptiveBinary)
		out = append(out, WriteEngineConfig{Name: name, Make: func(base []rdf.Triple) (WriteEngine, error) {
			return newLiveWriteEngine(name, base, parj.QueryOptions{Threads: 2, Strategy: core.AdaptiveBinary, Join: j}, 0)
		}})
	}
	out = append(out,
		// Background reconciliation armed at a tiny threshold: epoch swaps
		// happen mid-schedule at goroutine-scheduling whim, and every query
		// must still match the oracle exactly.
		WriteEngineConfig{Name: "live-autoreconcile", Make: func(base []rdf.Triple) (WriteEngine, error) {
			return newLiveWriteEngine("live-autoreconcile", base, parj.QueryOptions{Threads: 2}, 4)
		}},
		clusterWriteConfig(),
	)
	return out
}

// FindWriteConfig resolves a configuration name as produced by
// WriteEngineConfigs, for replaying shrunk repros on any host.
func FindWriteConfig(name string) (WriteEngineConfig, error) {
	for _, c := range WriteEngineConfigs(nil) {
		if c.Name == name {
			return c, nil
		}
	}
	// Worker counts are host-dependent; parse live-[join-]<strategy>-wN.
	if rest, ok := strings.CutPrefix(name, "live-"); ok {
		join, joinSet := core.JoinAuto, false
		for _, j := range joinAlgos {
			if r, cut := strings.CutPrefix(rest, j.String()+"-"); cut {
				join, joinSet = j, true
				rest = r
				break
			}
		}
		if wIdx := strings.LastIndex(rest, "-w"); wIdx >= 0 {
			var w int
			if _, err := fmt.Sscanf(rest[wIdx+2:], "%d", &w); err == nil && w >= 1 {
				for _, s := range strategies {
					if s.String() == rest[:wIdx] {
						s := s
						return WriteEngineConfig{Name: name, Make: func(base []rdf.Triple) (WriteEngine, error) {
							opts := parj.QueryOptions{Threads: w, Strategy: s}
							if joinSet {
								opts.Join = join
							}
							return newLiveWriteEngine(name, base, opts, 0)
						}}, nil
					}
				}
			}
		}
	}
	return WriteEngineConfig{}, fmt.Errorf("difftest: unknown write engine config %q", name)
}

// liveWriteEngine drives the public parj mutable API.
type liveWriteEngine struct {
	name string
	db   *parj.Store
	opts parj.QueryOptions
}

func newLiveWriteEngine(name string, base []rdf.Triple, opts parj.QueryOptions, autoOps int) (WriteEngine, error) {
	b := parj.NewBuilder(parj.LoadOptions{PosIndex: true, DB: parj.DBOptions{AutoReconcileOps: autoOps}})
	for _, t := range base {
		b.Add(t.S, t.P, t.O)
	}
	return &liveWriteEngine{name: name, db: b.Build(), opts: opts}, nil
}

func (e *liveWriteEngine) Name() string { return e.name }

func (e *liveWriteEngine) Apply(inserts, deletes []rdf.Triple) error {
	if len(deletes) > 0 {
		e.db.Delete(toParjTriples(deletes))
	}
	if len(inserts) > 0 {
		e.db.Insert(toParjTriples(inserts))
	}
	return nil
}

func (e *liveWriteEngine) Reconcile() error {
	e.db.Reconcile()
	return nil
}

func (e *liveWriteEngine) Evaluate(q *sparql.Query) ([][]string, error) {
	res, err := e.db.Query(sparql.Format(q), e.opts)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

func (e *liveWriteEngine) Close() { e.db.Quiesce() }

func toParjTriples(ts []rdf.Triple) []parj.Triple {
	out := make([]parj.Triple, len(ts))
	for i, t := range ts {
		out[i] = parj.Triple(t)
	}
	return out
}

// clusterWriteConfig is the networked leg of the mutable matrix: a 2-group
// × 2-replica loopback fleet where every node holds its own independently
// built store (separate dictionaries — only the identical write order keeps
// them aligned), fed through the coordinator's sequenced Write fan-out.
func clusterWriteConfig() WriteEngineConfig {
	return WriteEngineConfig{Name: "cluster-write-2x2", Make: newClusterWriteEngine}
}

type clusterWriteEngine struct {
	rem     *cluster.Remote
	servers []*httptest.Server
	// mirror is the coordinator's local replica of the write stream, used
	// to plan and decode gathered rows; it applies exactly the batches the
	// nodes do, so its dictionaries match theirs.
	mirror *live.Handle
}

func newClusterWriteEngine(base []rdf.Triple) (WriteEngine, error) {
	e := &clusterWriteEngine{}
	var urls []string
	for i := 0; i < 2; i++ {
		// Each node builds its own store from the same triples: independent
		// dictionary instances with identical contents, like real replicas
		// loading the same file.
		st := store.LoadTriples(append([]rdf.Triple(nil), base...), store.BuildOptions{BuildPosIndex: true})
		n := remote.NewNode(st, nil, remote.NodeOptions{})
		srv := httptest.NewServer(n.Handler())
		e.servers = append(e.servers, srv)
		urls = append(urls, srv.URL)
	}
	mst := store.LoadTriples(append([]rdf.Triple(nil), base...), store.BuildOptions{BuildPosIndex: true})
	e.mirror = live.New(mst, stats.New(mst), store.InferBuildOptions(mst))

	rem, err := cluster.NewRemote(cluster.RemoteOptions{
		Replicas:        [][]string{{urls[0], urls[1]}, {urls[1], urls[0]}},
		ThreadsPerShard: 2,
		ShardTimeout:    30 * time.Second,
		Seed:            1,
	})
	if err != nil {
		e.Close()
		return nil, err
	}
	e.rem = rem
	return e, nil
}

func (e *clusterWriteEngine) Name() string { return "cluster-write-2x2" }

func (e *clusterWriteEngine) Apply(inserts, deletes []rdf.Triple) error {
	seq, err := e.rem.Write(context.Background(), toWireTriples(inserts), toWireTriples(deletes))
	if err != nil {
		return err
	}
	if _, err := e.mirror.Apply(seq, inserts, deletes); err != nil {
		return err
	}
	return nil
}

func (e *clusterWriteEngine) Reconcile() error {
	if err := e.rem.ReconcileAll(context.Background()); err != nil {
		return err
	}
	e.mirror.Reconcile()
	return nil
}

func (e *clusterWriteEngine) Evaluate(q *sparql.Query) ([][]string, error) {
	res, err := e.rem.Execute(context.Background(), sparql.Format(q), false)
	if err != nil {
		return nil, err
	}
	v := e.mirror.View()
	st := v.Store()
	plan, err := optimizer.OptimizeExpanded(q, st, v.Stats(), nil)
	if err != nil {
		return nil, err
	}
	return (&core.Result{Plan: plan, Rows: res.Rows}).StringRows(st), nil
}

func (e *clusterWriteEngine) Close() {
	if e.rem != nil {
		e.rem.Close()
	}
	for _, s := range e.servers {
		s.Close()
	}
}

func toWireTriples(ts []rdf.Triple) []remote.Triple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]remote.Triple, len(ts))
	for i, t := range ts {
		out[i] = remote.Triple{S: t.S, P: t.P, O: t.O}
	}
	return out
}

// writeOracle is the naive mutable oracle: a plain triple set updated by
// the same batches (deletes first), evaluated by the reference engine.
type writeOracle struct {
	set map[rdf.Triple]bool
	// order lists each ever-present triple exactly once (inOrder guards
	// against re-appending on delete-then-reinsert), keeping evaluation
	// deterministic and duplicate-free.
	order   []rdf.Triple
	inOrder map[rdf.Triple]bool
}

func newWriteOracle(base []rdf.Triple) *writeOracle {
	o := &writeOracle{
		set:     make(map[rdf.Triple]bool, len(base)),
		inOrder: make(map[rdf.Triple]bool, len(base)),
	}
	for _, t := range base {
		o.insert(t)
	}
	return o
}

func (o *writeOracle) insert(t rdf.Triple) {
	o.set[t] = true
	if !o.inOrder[t] {
		o.inOrder[t] = true
		o.order = append(o.order, t)
	}
}

func (o *writeOracle) apply(inserts, deletes []rdf.Triple) {
	for _, t := range deletes {
		delete(o.set, t)
	}
	for _, t := range inserts {
		o.insert(t)
	}
}

// triples returns the current effective triple set.
func (o *writeOracle) triples() []rdf.Triple {
	out := make([]rdf.Triple, 0, len(o.set))
	for _, t := range o.order {
		if o.set[t] {
			out = append(out, t)
		}
	}
	// Compact the order list opportunistically so long churny schedules
	// don't scan an ever-growing tombstone tail.
	if len(out)*2 < len(o.order) {
		o.order = append([]rdf.Triple(nil), out...)
		o.inOrder = make(map[rdf.Triple]bool, len(out))
		for _, t := range out {
			o.inOrder[t] = true
		}
	}
	return out
}

// GenWriteSchedule draws one seeded schedule over ds: a base prefix of the
// dataset, then interleaved write batches (biased toward duplicate inserts,
// deletes of absent triples and delete-then-reinsert churn), explicit
// reconciliations, and queries. Every reconciliation is immediately
// followed by a query, so each epoch boundary is an oracle checkpoint; the
// schedule always ends with a reconcile + query pair.
func GenWriteSchedule(rng *rand.Rand, ds *Dataset, ops int) *WriteSchedule {
	if ops <= 0 {
		ops = 30
	}
	half := len(ds.Triples) / 2
	sched := &WriteSchedule{Seed: ds.Seed, Base: append([]rdf.Triple(nil), ds.Triples[:half]...)}
	heldOut := ds.Triples[half:]

	// present tracks the simulated effective set, to bias deletes toward
	// triples that actually exist.
	present := map[rdf.Triple]bool{}
	var presentList []rdf.Triple
	for _, t := range sched.Base {
		if !present[t] {
			present[t] = true
			presentList = append(presentList, t)
		}
	}
	pickPresent := func() (rdf.Triple, bool) {
		for tries := 0; tries < 8 && len(presentList) > 0; tries++ {
			t := presentList[rng.Intn(len(presentList))]
			if present[t] {
				return t, true
			}
		}
		return rdf.Triple{}, false
	}
	novel := func() rdf.Triple {
		return rdf.Triple{
			S: fmt.Sprintf("<nv-s%d>", rng.Intn(4)),
			P: fmt.Sprintf("<nv-p%d>", rng.Intn(2)),
			O: fmt.Sprintf("<nv-o%d>", rng.Intn(4)),
		}
	}
	record := func(op WriteOp) {
		for _, t := range op.Deletes {
			delete(present, t)
		}
		for _, t := range op.Inserts {
			if !present[t] {
				present[t] = true
				presentList = append(presentList, t)
			}
		}
		sched.Ops = append(sched.Ops, op)
	}
	addQuery := func() {
		q := GenQuery(rng, ds)
		sched.Ops = append(sched.Ops, WriteOp{Query: q.Src()})
	}

	for i := 0; i < ops; i++ {
		switch k := rng.Intn(10); {
		case k < 5: // write batch
			var op WriteOp
			for n := 1 + rng.Intn(4); n > 0; n-- {
				switch c := rng.Intn(10); {
				case c < 3 && len(heldOut) > 0: // fresh triple from the held-out pool
					op.Inserts = append(op.Inserts, heldOut[rng.Intn(len(heldOut))])
				case c < 5: // duplicate insert of a present triple
					if t, ok := pickPresent(); ok {
						op.Inserts = append(op.Inserts, t)
					}
				case c < 6: // novel terms: grows dictionaries mid-flight
					op.Inserts = append(op.Inserts, novel())
				case c < 8: // delete a present triple
					if t, ok := pickPresent(); ok {
						op.Deletes = append(op.Deletes, t)
						// Half the time, schedule the reinsert churn in the
						// same batch (delete wins first, insert reinstates).
						if rng.Intn(2) == 0 {
							op.Inserts = append(op.Inserts, t)
						}
					}
				default: // delete an absent triple: must be a no-op
					op.Deletes = append(op.Deletes, novel())
				}
			}
			if len(op.Inserts) > 0 || len(op.Deletes) > 0 {
				record(op)
			}
		case k < 7: // epoch boundary: reconcile, then checkpoint-query
			sched.Ops = append(sched.Ops, WriteOp{Reconcile: true})
			addQuery()
		default:
			addQuery()
		}
	}
	sched.Ops = append(sched.Ops, WriteOp{Reconcile: true})
	addQuery()
	return sched
}

// WritesConfig controls one mutable differential run.
type WritesConfig struct {
	Seed int64
	// Schedules is the number of generated write schedules (default 6).
	Schedules int
	// OpsPerSchedule is the length of each schedule (default 30).
	OpsPerSchedule int
	// MaxTriples bounds the generated dataset a schedule draws from
	// (default 160).
	MaxTriples int
	// Workers overrides the worker-count axis; nil selects WorkerCounts().
	Workers []int
	// OracleBudget and MaxOracleRows bound the oracle exactly as in Config.
	OracleBudget  int64
	MaxOracleRows int
	// NoShrink reports failures raw instead of minimizing them.
	NoShrink bool
	// MaxFailures stops the run early (default 5).
	MaxFailures int
	// Log, when non-nil, receives per-schedule progress lines.
	Log func(format string, args ...any)
}

func (c *WritesConfig) fill() {
	if c.Schedules <= 0 {
		c.Schedules = 6
	}
	if c.OpsPerSchedule <= 0 {
		c.OpsPerSchedule = 30
	}
	if c.MaxTriples <= 0 {
		c.MaxTriples = 160
	}
	if c.OracleBudget <= 0 {
		c.OracleBudget = 2_000_000
	}
	if c.MaxOracleRows <= 0 {
		c.MaxOracleRows = 20_000
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = 5
	}
}

// WriteFailure is one detected divergence between a mutable engine and the
// oracle while replaying a schedule.
type WriteFailure struct {
	Engine   string
	Schedule *WriteSchedule
	// OpIndex is the schedule position of the diverging query (or erroring
	// op).
	OpIndex int
	Diff    string
	// Repro is a ready-to-paste Go regression test over the shrunk
	// schedule; empty when shrinking was disabled.
	Repro string
}

func (f *WriteFailure) String() string {
	return fmt.Sprintf("engine %s, schedule seed %d, op %d: %s",
		f.Engine, f.Schedule.Seed, f.OpIndex, f.Diff)
}

// WritesReport summarizes a mutable differential run.
type WritesReport struct {
	Schedules  int
	EngineRuns int
	// Checkpoints counts (engine, query op) comparisons performed.
	Checkpoints int
	Skipped     int
	Failures    []WriteFailure
}

// RunWrites executes the mutable differential matrix. The same config
// always yields the same schedules (engine-internal goroutine timing may
// vary; results must not).
func RunWrites(cfg WritesConfig) *WritesReport {
	cfg.fill()
	rep := &WritesReport{}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	configs := WriteEngineConfigs(cfg.Workers)

	for si := 0; si < cfg.Schedules && len(rep.Failures) < cfg.MaxFailures; si++ {
		seed := cfg.Seed + int64(si+1)*2_000_029
		rng := rand.New(rand.NewSource(seed))
		ds := GenDataset(rng, DatasetConfig{
			MaxTriples: cfg.MaxTriples,
			Skewed:     si%3 == 1,
			Dense:      si%4 == 3,
		})
		sched := GenWriteSchedule(rng, ds, cfg.OpsPerSchedule)
		rep.Schedules++

		for _, ec := range configs {
			if len(rep.Failures) >= cfg.MaxFailures {
				break
			}
			rep.EngineRuns++
			opIdx, diff, checks, skipped := replaySchedule(ec, sched, cfg.OracleBudget, cfg.MaxOracleRows)
			rep.Checkpoints += checks
			rep.Skipped += skipped
			if diff == "" {
				continue
			}
			f := WriteFailure{Engine: ec.Name, Schedule: sched, OpIndex: opIdx, Diff: diff}
			if !cfg.NoShrink {
				small := ShrinkWriteSchedule(sched, ec, cfg.OracleBudget, cfg.MaxOracleRows)
				f.Repro = FormatWriteRepro(small, ec.Name)
			}
			rep.Failures = append(rep.Failures, f)
		}
		w, r, q := sched.Counts()
		logf("schedule %d/%d (seed %d: %d base triples, %d writes, %d reconciles, %d queries): %d checkpoints, %d failures",
			si+1, cfg.Schedules, seed, len(sched.Base), w, r, q, rep.Checkpoints, len(rep.Failures))
	}
	return rep
}

// replaySchedule runs one schedule on one engine, diffing every query op
// against the mutable oracle. It returns the first diverging op index and
// diff ("" and -1 on agreement), plus checkpoint/skip counts.
func replaySchedule(ec WriteEngineConfig, sched *WriteSchedule, oracleBudget int64, maxOracleRows int) (opIdx int, diff string, checks, skipped int) {
	eng, err := ec.Make(sched.Base)
	if err != nil {
		return -1, "building engine: " + err.Error(), 0, 0
	}
	defer eng.Close()
	oracle := newWriteOracle(sched.Base)

	for i := range sched.Ops {
		op := &sched.Ops[i]
		switch op.kind() {
		case "write":
			if err := eng.Apply(op.Inserts, op.Deletes); err != nil {
				return i, "apply: " + err.Error(), checks, skipped
			}
			oracle.apply(op.Inserts, op.Deletes)
		case "reconcile":
			if err := eng.Reconcile(); err != nil {
				return i, "reconcile: " + err.Error(), checks, skipped
			}
		case "query":
			parsed, err := sparql.Parse(op.Query)
			if err != nil {
				return i, "generated query does not parse: " + err.Error(), checks, skipped
			}
			want, ok := reference.EvaluateBudget(parsed, oracle.triples(), oracleBudget)
			if !ok || len(want) > maxOracleRows {
				skipped++
				continue
			}
			got, err := eng.Evaluate(parsed)
			if err != nil {
				return i, "evaluate: " + err.Error(), checks, skipped
			}
			checks++
			if d := Compare(parsed, want, got); d != "" {
				return i, d, checks, skipped
			}
		}
	}
	return -1, "", checks, skipped
}

// maxWriteShrinkChecks caps the replays one schedule shrink may spend.
const maxWriteShrinkChecks = 200

// ShrinkWriteSchedule ddmin-minimizes a failing schedule: first the op
// list, then the base dataset, to a joint fixpoint. A candidate counts as
// failing only if its replay still diverges (anywhere — the failure is
// allowed to move as ops disappear).
func ShrinkWriteSchedule(sched *WriteSchedule, ec WriteEngineConfig, oracleBudget int64, maxOracleRows int) *WriteSchedule {
	checks := 0
	fails := func(cand *WriteSchedule) bool {
		if checks >= maxWriteShrinkChecks {
			return false
		}
		checks++
		_, diff, _, _ := replaySchedule(ec, cand, oracleBudget, maxOracleRows)
		return diff != ""
	}

	cur := &WriteSchedule{Seed: sched.Seed, Base: sched.Base, Ops: sched.Ops}
	for changed := true; changed && checks < maxWriteShrinkChecks; {
		changed = false
		if ops, ok := ddmin(cur.Ops, func(ops []WriteOp) bool {
			return fails(&WriteSchedule{Seed: cur.Seed, Base: cur.Base, Ops: ops})
		}); ok {
			cur.Ops = ops
			changed = true
		}
		if base, ok := ddmin(cur.Base, func(base []rdf.Triple) bool {
			return fails(&WriteSchedule{Seed: cur.Seed, Base: base, Ops: cur.Ops})
		}); ok {
			cur.Base = base
			changed = true
		}
	}
	return cur
}

// ddmin is the generic chunk-removal loop shared by the schedule shrinker:
// repeatedly drop ever-smaller chunks of xs while fails still holds.
func ddmin[T any](xs []T, fails func([]T) bool) ([]T, bool) {
	cur := xs
	reduced := false
	n := 2
	for len(cur) >= 1 && n <= len(cur) {
		chunk := (len(cur) + n - 1) / n
		removedAny := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]T, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if fails(cand) {
				cur = cand
				reduced = true
				removedAny = true
				start -= chunk
			}
		}
		if removedAny {
			if n > 2 {
				n--
			}
		} else {
			n *= 2
		}
	}
	return cur, reduced
}

// FormatWriteRepro renders a shrunk failing schedule as a self-contained Go
// regression test ready to paste into internal/difftest/regress_test.go.
func FormatWriteRepro(sched *WriteSchedule, engine string) string {
	var sb strings.Builder
	sb.WriteString("// Shrunk by the write-schedule harness; paste into internal/difftest/regress_test.go\n")
	sb.WriteString("// and rename. CheckWriteRepro fails the test while the divergence exists.\n")
	sb.WriteString("func TestRegressWrite_RENAME_ME(t *testing.T) {\n")
	sb.WriteString("\tbase := []rdf.Triple{\n")
	for _, t := range sched.Base {
		fmt.Fprintf(&sb, "\t\t{S: %q, P: %q, O: %q},\n", t.S, t.P, t.O)
	}
	sb.WriteString("\t}\n\tops := []difftest.WriteOp{\n")
	for i := range sched.Ops {
		op := &sched.Ops[i]
		switch op.kind() {
		case "query":
			fmt.Fprintf(&sb, "\t\t{Query: %q},\n", op.Query)
		case "reconcile":
			sb.WriteString("\t\t{Reconcile: true},\n")
		default:
			sb.WriteString("\t\t{")
			if len(op.Inserts) > 0 {
				sb.WriteString("Inserts: []rdf.Triple{")
				for _, t := range op.Inserts {
					fmt.Fprintf(&sb, "{S: %q, P: %q, O: %q}, ", t.S, t.P, t.O)
				}
				sb.WriteString("}")
			}
			if len(op.Deletes) > 0 {
				if len(op.Inserts) > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString("Deletes: []rdf.Triple{")
				for _, t := range op.Deletes {
					fmt.Fprintf(&sb, "{S: %q, P: %q, O: %q}, ", t.S, t.P, t.O)
				}
				sb.WriteString("}")
			}
			sb.WriteString("},\n")
		}
	}
	sb.WriteString("\t}\n")
	fmt.Fprintf(&sb, "\tCheckWriteRepro(t, base, ops, %q)\n", engine)
	sb.WriteString("}\n")
	return sb.String()
}

// CheckWriteRepro replays a shrunk schedule on the named configuration,
// failing the test on any divergence from the mutable oracle. Regression
// tests recorded from shrunk write failures call this.
func CheckWriteRepro(t testingTB, base []rdf.Triple, ops []WriteOp, engine string) {
	t.Helper()
	ec, err := FindWriteConfig(engine)
	if err != nil {
		t.Fatal(err)
	}
	sched := &WriteSchedule{Base: base, Ops: ops}
	if opIdx, diff, _, _ := replaySchedule(ec, sched, 2_000_000, 20_000); diff != "" {
		t.Errorf("engine %s, op %d: %s", engine, opIdx, diff)
	}
}
