package difftest

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"parj/internal/live"
	"parj/internal/rdf"
	"parj/internal/store"
	"parj/internal/testutil"
	"parj/internal/wal"
)

// walcrash_test.go — the crash-injection differential suite. It replays the
// generator's write schedules through a durable live handle over the
// crash-injection MemFS, arms one fault per run (kill before/after fsync,
// torn frame, short write, checkpoint-publish and prune crashes, skipped
// directory fsync, a recovery-time bit flip), and after every injected
// crash recovers with live.OpenDurable and demands exact oracle equality:
// the recovered triple set must be states[recoveredSeq] — the mutable
// oracle's snapshot at exactly the sequence recovery landed on — and for
// every fault that honors fsync semantics, recoveredSeq must not trail the
// last acknowledged batch.

// crashFault describes one armed fault family. Faults are armed before the
// first open, so small injection points fire during the seed load and
// initial checkpoint and larger ones mid-schedule — both paths must recover.
type crashFault struct {
	name string
	arm  func(fs *wal.MemFS, n int)
	// lossy faults (a filesystem that lies about directory fsync, media
	// corruption) may legally lose acknowledged batches; the recovered
	// state must still be an exact oracle prefix, just possibly an older
	// one.
	lossy bool
	// corruptOK faults may instead surface as a typed ErrCorruptWAL from
	// recovery (damage before the tail); anything else — above all a
	// panic — still fails the run.
	corruptOK bool
}

var crashFaults = []crashFault{
	{name: "crash-before-sync", arm: func(fs *wal.MemFS, n int) { fs.FailAt(wal.OpSync, n, wal.CrashBefore) }},
	{name: "crash-after-sync", arm: func(fs *wal.MemFS, n int) { fs.FailAt(wal.OpSync, n, wal.CrashAfter) }},
	{name: "crash-before-write", arm: func(fs *wal.MemFS, n int) { fs.FailAt(wal.OpWrite, n, wal.CrashBefore) }},
	{name: "torn-write", arm: func(fs *wal.MemFS, n int) { fs.FailAt(wal.OpWrite, n, wal.TornWrite) }},
	{name: "short-write", arm: func(fs *wal.MemFS, n int) { fs.FailAt(wal.OpWrite, n, wal.ShortWrite) }},
	{name: "crash-before-ckpt-publish", arm: func(fs *wal.MemFS, n int) { fs.FailAt(wal.OpRename, n, wal.CrashBefore) }},
	{name: "crash-after-ckpt-create", arm: func(fs *wal.MemFS, n int) { fs.FailAt(wal.OpCreate, n, wal.CrashAfter) }},
	{name: "crash-before-prune", arm: func(fs *wal.MemFS, n int) { fs.FailAt(wal.OpRemove, n, wal.CrashBefore) }},
	{name: "dirsync-skipped", lossy: true, arm: func(fs *wal.MemFS, n int) { fs.SkipDirSync(true) }},
	{name: "bit-flip", lossy: true, corruptOK: true, arm: func(fs *wal.MemFS, n int) {
		fs.FailAt(wal.OpSync, n, wal.CrashBefore)
		fs.FlipBitOnRecover(n % 13)
	}},
}

// crashRun is the outcome of replaying one schedule until its armed fault
// (or the end of the schedule) killed the process.
type crashRun struct {
	// states[i] is the oracle triple set after write batch i (states[0]
	// is the base). The final entry may be a batch the crash refused.
	states []map[rdf.Triple]bool
	// acked is the highest sequence whose Apply returned nil — the floor
	// recovery must reach for fsync-honoring faults.
	acked uint64
}

func copyTriples(m map[rdf.Triple]bool) map[rdf.Triple]bool {
	out := make(map[rdf.Triple]bool, len(m))
	for t := range m {
		out[t] = true
	}
	return out
}

// storeTriples decodes a store's full triple set back to terms.
func storeTriples(st *store.Store) map[rdf.Triple]bool {
	out := make(map[rdf.Triple]bool, st.NumTriples())
	st.Triples(func(s, p, o uint32) bool {
		out[rdf.Triple{
			S: st.Resources.Decode(s),
			P: st.Predicates.Decode(p),
			O: st.Resources.Decode(o),
		}] = true
		return true
	})
	return out
}

// handleTriples reconciles the handle and decodes its merged base.
func handleTriples(h *live.Handle) map[rdf.Triple]bool {
	return storeTriples(h.Reconcile().Store())
}

const crashSegmentBytes = 1 << 10 // small segments: rotation + pruning under fire

func openCrashStore(fs *wal.MemFS, base []rdf.Triple) (*wal.Log, *live.Handle, error) {
	log, err := wal.Open(wal.Options{FS: fs, Sync: wal.SyncAlways, SegmentBytes: crashSegmentBytes})
	if err != nil {
		return nil, nil, err
	}
	seed := func() (*store.Store, uint64, error) {
		return store.LoadTriples(base, store.BuildOptions{}), 0, nil
	}
	h, err := live.OpenDurable(log, seed, store.BuildOptions{})
	if err != nil {
		log.Close()
		return nil, nil, err
	}
	return log, h, nil
}

// replayUntilCrash drives the schedule through a durable handle on fs until
// the armed fault kills it (or the schedule ends, when it crashes the
// filesystem itself — a clean kill with everything acknowledged durable).
func replayUntilCrash(t *testing.T, sched *WriteSchedule, fs *wal.MemFS) crashRun {
	t.Helper()
	run := crashRun{states: []map[rdf.Triple]bool{newCrashOracle(sched.Base)}}
	log, h, err := openCrashStore(fs, sched.Base)
	if err != nil {
		// The fault fired during seed load or the initial checkpoint:
		// nothing was ever acknowledged.
		if !fs.Crashed() {
			fs.Crash()
		}
		return run
	}
	cur := copyTriples(run.states[0])
	reconciles := 0
	for i := range sched.Ops {
		op := &sched.Ops[i]
		if op.Reconcile {
			h.Reconcile()
			// Checkpoint every other reconciliation so recovery
			// alternates between snapshot-heavy and replay-heavy paths.
			if reconciles++; reconciles%2 == 0 {
				if err := live.Checkpoint(h, log); err != nil {
					break
				}
			}
			continue
		}
		if op.Query != "" || (len(op.Inserts) == 0 && len(op.Deletes) == 0) {
			continue
		}
		next := copyTriples(cur)
		for _, tr := range op.Deletes {
			delete(next, tr)
		}
		for _, tr := range op.Inserts {
			next[tr] = true
		}
		run.states = append(run.states, next)
		seq, err := h.Apply(0, op.Inserts, op.Deletes)
		if err != nil {
			break
		}
		if want := uint64(len(run.states) - 1); seq != want {
			t.Fatalf("apply returned seq %d, want %d", seq, want)
		}
		run.acked = seq
		cur = next
	}
	if !fs.Crashed() {
		fs.Crash()
	}
	log.Close() // stops the flusher; the error is the crash itself
	h.Quiesce()
	return run
}

// checkRecovery recovers from the crashed filesystem and verifies the
// recovered triple set is exactly the oracle state at the recovered
// sequence, within the fault's legal floor.
func checkRecovery(t *testing.T, label string, run crashRun, fs *wal.MemFS, base []rdf.Triple, f crashFault) {
	t.Helper()
	rfs := fs.Recover()
	log, h, err := openCrashStore(rfs, base)
	if err != nil {
		if f.corruptOK && errors.Is(err, wal.ErrCorruptWAL) {
			return // typed refusal is a legal outcome for media damage
		}
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer func() {
		h.Quiesce()
		log.Close()
	}()
	rec := h.Seq()
	last := uint64(len(run.states) - 1)
	if rec > last {
		t.Fatalf("%s: recovered seq %d past last attempted %d", label, rec, last)
	}
	if !f.lossy && rec < run.acked {
		t.Fatalf("%s: recovered seq %d below acked floor %d — lost fsync-acknowledged writes", label, rec, run.acked)
	}
	got := handleTriples(h)
	want := run.states[rec]
	if len(got) != len(want) {
		t.Fatalf("%s: recovered %d triples at seq %d, oracle has %d", label, len(got), rec, len(want))
	}
	for tr := range want {
		if !got[tr] {
			t.Fatalf("%s: recovered state at seq %d missing oracle triple %v", label, rec, tr)
		}
	}
	// A recovered store must also still accept writes: the crash must not
	// have wedged the sequence stream.
	probe := rdf.Triple{S: "<urn:crash:probe>", P: "<urn:crash:p>", O: "<urn:crash:o>"}
	seq, err := h.Apply(0, []rdf.Triple{probe}, nil)
	if err != nil {
		t.Fatalf("%s: post-recovery write failed: %v", label, err)
	}
	if seq != rec+1 {
		t.Fatalf("%s: post-recovery write got seq %d, want %d", label, seq, rec+1)
	}
}

func newCrashOracle(base []rdf.Triple) map[rdf.Triple]bool {
	m := make(map[rdf.Triple]bool, len(base))
	for _, tr := range base {
		m[tr] = true
	}
	return m
}

// TestWALCrashMatrix is the tentpole verification: seeded write schedules
// under every fault family, each at several injection points, every run
// recovered and diffed against the per-sequence oracle states.
func TestWALCrashMatrix(t *testing.T) {
	defer testutil.LeakCheck(t)()
	seeds := []int64{1, 2, 3}
	if *long {
		seeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		ds := GenDataset(rng, DatasetConfig{MaxTriples: 120})
		sched := GenWriteSchedule(rng, ds, 30)
		for _, f := range crashFaults {
			// Scatter the injection point: early (mid-boot or the first
			// batches), mid-schedule, and deep enough that checkpoints
			// and pruning have happened.
			for _, n := range []int{2, 7 + int(seed), 23 + 2*int(seed)} {
				label := fmt.Sprintf("seed=%d/%s/n=%d", seed, f.name, n)
				fs := wal.NewMemFS()
				f.arm(fs, n)
				run := replayUntilCrash(t, sched, fs)
				checkRecovery(t, label, run, fs, sched.Base, f)
			}
		}
	}
}
