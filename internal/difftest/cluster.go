package difftest

import (
	"context"
	"net/http/httptest"
	"time"

	"parj/internal/bench"
	"parj/internal/cluster"
	"parj/internal/core"
	"parj/internal/optimizer"
	"parj/internal/remote"
	"parj/internal/sparql"
)

// clusterConfig is the distributed-coordinator leg of the differential
// matrix: every query also runs through cluster.Remote over a loopback
// fleet of 2 shard groups × 2 replicas, exercising the wire protocol,
// the fan-out/gather path and the coordinator-side DISTINCT/LIMIT merge
// against the same oracle as the in-process engines.
//
// The fleet is built and torn down inside each Evaluate call so engines
// stay leak-free no matter how the harness (or the shrinker) interleaves
// evaluations — a RowEngine has no Close hook to defer to.
func clusterConfig() EngineConfig {
	return EngineConfig{
		Name: "cluster-2x2",
		Make: func(d *bench.Dataset) bench.RowEngine {
			return clusterRows(d)
		},
	}
}

type clusterEngine struct {
	d *bench.Dataset
}

func clusterRows(d *bench.Dataset) bench.RowEngine {
	return clusterEngine{d}
}

func (e clusterEngine) Name() string { return "cluster-2x2" }

func (e clusterEngine) Evaluate(q *sparql.Query) ([][]string, error) {
	st, ss := e.d.Store()
	// Two loopback replicas over the same store; both shard groups list
	// both of them (full replication — any replica serves any shard
	// range), with the preferred order flipped so each group's first
	// attempt lands on a different replica.
	n1 := remote.NewNode(st, ss, remote.NodeOptions{})
	n2 := remote.NewNode(st, ss, remote.NodeOptions{})
	s1 := httptest.NewServer(n1.Handler())
	defer s1.Close()
	s2 := httptest.NewServer(n2.Handler())
	defer s2.Close()

	rem, err := cluster.NewRemote(cluster.RemoteOptions{
		Replicas:        [][]string{{s1.URL, s2.URL}, {s2.URL, s1.URL}},
		ThreadsPerShard: 2,
		ShardTimeout:    30 * time.Second,
		Seed:            1,
	})
	if err != nil {
		return nil, err
	}
	defer rem.Close()

	res, err := rem.Execute(context.Background(), sparql.Format(q), false)
	if err != nil {
		return nil, err
	}
	// The coordinator plans the same query over the same store and stats
	// as the nodes, so its plan carries the slot metadata needed to decode
	// the gathered dictionary-encoded rows.
	plan, err := optimizer.OptimizeExpanded(q, st, ss, nil)
	if err != nil {
		return nil, err
	}
	return (&core.Result{Plan: plan, Rows: res.Rows}).StringRows(st), nil
}
