package difftest

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"parj/internal/bench"
	"parj/internal/core"
	"parj/internal/optimizer"
	"parj/internal/reference"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
)

// metamorphicChecks applies the oracle-free invariants to one (dataset,
// query) pair on a single PARJ configuration (AdaptiveBinary, 2 workers —
// the default strategy under real parallelism). The oracle diff already
// covers the full matrix, so one configuration here keeps these checks
// cheap while still catching invariant violations the oracle could share
// with the engine (both would have to break the same way for a bug to slip
// past both layers).
//
// Checks:
//
//   - permutation invariance: reordering BGP patterns must not change the
//     result multiset (the optimizer re-derives the join order);
//   - DISTINCT idempotence: DISTINCT(Q) must equal Dedup(Q);
//   - COUNT agreement: the silent counting path must agree with the number
//     of materialized rows;
//   - snapshot round-trip (once per dataset): Save + LoadSnapshot must
//     yield a store that answers the query identically.
func metamorphicChecks(rng *rand.Rand, benchDS *bench.Dataset, ds *Dataset, q *Query, parsed *sparql.Query, checkSnapshot bool) []Failure {
	var fails []Failure
	fail := func(check, diff string) {
		fails = append(fails, Failure{
			Engine: check, Query: q.Src(), Diff: diff, Triples: ds.Triples,
		})
	}

	eng := benchDS.PARJRows("meta", 2, core.AdaptiveBinary, nil)
	base, err := eng.Evaluate(parsed)
	if err != nil {
		fail("meta-base", "error: "+err.Error())
		return fails
	}

	// Permutation invariance. LIMIT is allowed to truncate differently
	// under a different join order, so limited queries sit this one out.
	// Both sides get the same explicit projection: SELECT * lays columns
	// out in variable-appearance order, which permuting patterns changes.
	if !q.HasLimit && len(q.Patterns) > 1 {
		fixed := q.Clone()
		if vars := fixed.vars(); len(vars) > 0 {
			fixed.Star = false
			fixed.Select = append([]string(nil), vars...)
			sort.Strings(fixed.Select)
		}
		perm := fixed.Clone()
		rng.Shuffle(len(perm.Patterns), func(i, j int) {
			perm.Patterns[i], perm.Patterns[j] = perm.Patterns[j], perm.Patterns[i]
		})
		fixedRows, err := evalSrc(eng, fixed)
		permRows, err2 := evalSrc(eng, perm)
		switch {
		case err != nil:
			fail("meta-permutation", "error: "+err.Error())
		case err2 != nil:
			fail("meta-permutation", "error: "+err2.Error())
		default:
			if diff := reference.DiffMultisets(fixedRows, permRows); diff != "" {
				fail("meta-permutation", fmt.Sprintf("permuted BGP %q: %s", perm.Src(), diff))
			}
		}
	}

	// DISTINCT idempotence: evaluating with DISTINCT must match deduping
	// the plain result.
	if !q.Distinct && !q.HasLimit {
		dq := q.Clone()
		dq.Distinct = true
		if dParsed, err := sparql.Parse(dq.Src()); err != nil {
			fail("meta-distinct", "parse: "+err.Error())
		} else if rows, err := eng.Evaluate(dParsed); err != nil {
			fail("meta-distinct", "error: "+err.Error())
		} else if diff := reference.DiffMultisets(reference.Dedup(base), rows); diff != "" {
			fail("meta-distinct", diff)
		}
	}

	// COUNT agreement: the silent path must count what the materializing
	// path returns. Same strategy and worker count as eng.
	if n, err := benchDS.PARJ("meta-count", 2, core.AdaptiveBinary).Count(parsed); err != nil {
		fail("meta-count", "error: "+err.Error())
	} else if n != int64(len(base)) {
		fail("meta-count", fmt.Sprintf("silent COUNT %d vs %d materialized rows", n, len(base)))
	}

	// Join-operator equivalence: the forced worst-case-optimal operator and
	// the forced pipeline must return identical row multisets — the two
	// operators differ in every execution detail (leapfrog intersections vs
	// probe recursion, domain morsels vs key-range morsels) but none of it
	// is allowed to show in the result. Under LIMIT only the row count is
	// comparable: which rows survive truncation legitimately differs.
	{
		wcojEng := benchDS.PARJRowsJoin("meta-wcoj", 2, core.AdaptiveBinary, core.JoinWCOJ, 0, nil)
		pipeEng := benchDS.PARJRowsJoin("meta-pipe", 2, core.AdaptiveBinary, core.JoinPipeline, 0, nil)
		wRows, err := wcojEng.Evaluate(parsed)
		pRows, err2 := pipeEng.Evaluate(parsed)
		switch {
		case err != nil:
			fail("meta-wcoj", "error: "+err.Error())
		case err2 != nil:
			fail("meta-wcoj", "error: "+err2.Error())
		case q.HasLimit:
			if len(wRows) != len(pRows) {
				fail("meta-wcoj", fmt.Sprintf("LIMIT: wcoj returned %d rows, pipeline %d", len(wRows), len(pRows)))
			}
		default:
			if diff := reference.DiffMultisets(pRows, wRows); diff != "" {
				fail("meta-wcoj", diff)
			}
		}
	}

	// Governance transparency: the same query under a generous deadline and
	// huge budgets must return exactly the untimed result — limits that
	// never trip may not alter what the engine computes. This also diffs the
	// gated (governed) worker inner loops against the ungated fast path.
	// LIMIT sits this out like the permutation check: truncation order is
	// not part of the contract.
	if !q.HasLimit {
		if rows, err := governedEvaluate(benchDS, parsed); err != nil {
			fail("meta-governed", "error: "+err.Error())
		} else if diff := reference.DiffMultisets(base, rows); diff != "" {
			fail("meta-governed", diff)
		}
	}

	// Snapshot round-trip, once per dataset: the reloaded store (indexes
	// rebuilt from the snapshot's tables) must answer identically. Under
	// LIMIT the morsel scheduler makes the surviving subset depend on which
	// worker claimed what first, so both sides run single-worker — the
	// scheduler drains morsels in deterministic dispatch order there.
	if checkSnapshot {
		want, threads := base, 2
		if q.HasLimit {
			threads = 1
			var err error
			want, err = benchDS.PARJRows("meta-snapshot-base", 1, core.AdaptiveBinary, nil).Evaluate(parsed)
			if err != nil {
				fail("meta-snapshot", "error: "+err.Error())
				return fails
			}
		}
		if rows, err := snapshotEvaluate(benchDS, parsed, threads); err != nil {
			fail("meta-snapshot", "error: "+err.Error())
		} else if diff := reference.DiffMultisets(want, rows); diff != "" {
			fail("meta-snapshot", diff)
		}
	}
	return fails
}

// evalSrc renders, parses and evaluates q on eng.
func evalSrc(eng bench.RowEngine, q *Query) ([][]string, error) {
	parsed, err := sparql.Parse(q.Src())
	if err != nil {
		return nil, fmt.Errorf("parse %q: %w", q.Src(), err)
	}
	return eng.Evaluate(parsed)
}

// governedEvaluate runs parsed with a one-hour deadline, effectively
// unlimited budgets, and a tiny check interval, so the gates actually sync
// many times even on difftest-sized data.
func governedEvaluate(benchDS *bench.Dataset, parsed *sparql.Query) ([][]string, error) {
	st, ss := benchDS.Store()
	plan, err := optimizer.Optimize(parsed, st, ss)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	res, err := core.Execute(st, plan, core.Options{
		Threads: 2, Strategy: core.AdaptiveBinary,
		Context:       ctx,
		MaxResultRows: 1 << 40,
		MemoryBudget:  1 << 40,
		CheckInterval: 64,
	})
	if err != nil {
		return nil, err
	}
	return res.StringRows(st), nil
}

// snapshotEvaluate round-trips the PARJ store through Save/LoadSnapshot and
// evaluates parsed on the copy.
func snapshotEvaluate(benchDS *bench.Dataset, parsed *sparql.Query, threads int) ([][]string, error) {
	st, _ := benchDS.Store()
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		return nil, fmt.Errorf("save snapshot: %w", err)
	}
	st2, err := store.LoadSnapshot(&buf)
	if err != nil {
		return nil, fmt.Errorf("load snapshot: %w", err)
	}
	plan, err := optimizer.Optimize(parsed, st2, stats.New(st2))
	if err != nil {
		return nil, err
	}
	res, err := core.Execute(st2, plan, core.Options{Threads: threads, Strategy: core.AdaptiveBinary})
	if err != nil {
		return nil, err
	}
	return res.StringRows(st2), nil
}
