package difftest

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"parj/internal/bench"
	"parj/internal/reference"
	"parj/internal/sparql"
)

// -long widens the matrix well past the default smoke run:
//
//	go test ./internal/difftest/ -long -timeout 30m
var long = flag.Bool("long", false, "run the large differential matrix")

// TestDifferentialMatrix is the seed-matrix smoke run: every engine
// configuration against the oracle on hundreds of (dataset, query) pairs.
// Deterministic for the fixed seed.
func TestDifferentialMatrix(t *testing.T) {
	cfg := Config{Seed: 1}
	if *long {
		cfg.Datasets = 150
		cfg.QueriesPerDataset = 20
	}
	if testing.Verbose() {
		cfg.Log = t.Logf
	}
	rep := Run(cfg)
	t.Logf("datasets=%d pairs=%d engineRuns=%d skipped=%d failures=%d",
		rep.Datasets, rep.Pairs, rep.EngineRuns, rep.Skipped, len(rep.Failures))
	if rep.Pairs < 200 {
		t.Errorf("completed only %d pairs, want >= 200 (skipped %d)", rep.Pairs, rep.Skipped)
	}
	for i := range rep.Failures {
		f := &rep.Failures[i]
		t.Errorf("%s", f.String())
		if f.Repro != "" {
			t.Logf("shrunk repro:\n%s", f.Repro)
		}
	}
}

// TestDeterminism re-runs a slice of the matrix with the same seed and
// requires identical reports, as repro-ability depends on it.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Datasets: 4, QueriesPerDataset: 4, NoShrink: true}
	a, b := Run(cfg), Run(cfg)
	fp := func(r *Report) string {
		s := fmt.Sprintf("pairs=%d runs=%d skipped=%d", r.Pairs, r.EngineRuns, r.Skipped)
		for i := range r.Failures {
			s += "\n" + r.Failures[i].String()
		}
		return s
	}
	if fp(a) != fp(b) {
		t.Errorf("same seed, different reports:\n--- first\n%s\n--- second\n%s", fp(a), fp(b))
	}
}

// corrupt wraps a RowEngine and tampers with its results — the harness
// self-check: a matrix that cannot flag these corruptions would be testing
// nothing.
type corrupt struct {
	inner bench.RowEngine
	mode  string // "drop", "dup", "mutate"
}

func (c corrupt) Name() string { return "corrupt-" + c.mode }

func (c corrupt) Evaluate(q *sparql.Query) ([][]string, error) {
	rows, err := c.inner.Evaluate(q)
	if err != nil || len(rows) == 0 {
		return rows, err
	}
	switch c.mode {
	case "drop":
		return rows[1:], nil
	case "dup":
		return append(rows, rows[0]), nil
	default: // mutate
		out := append([][]string(nil), rows...)
		out[0] = append([]string(nil), out[0]...)
		out[0][0] = "<corrupted>"
		return out, nil
	}
}

// TestHarnessCatchesCorruptEngine injects row drops, duplicates and
// mutations behind a correct engine and requires a diff for each, then
// checks the shrinker still reproduces (and does not grow) the failure.
func TestHarnessCatchesCorruptEngine(t *testing.T) {
	// Find a deterministic (dataset, query) pair with a healthy result
	// size and no LIMIT (a drop behind LIMIT can legitimately hide).
	var (
		ds     *Dataset
		q      *Query
		parsed *sparql.Query
		want   [][]string
	)
	for seed := int64(1); ; seed++ {
		if seed > 500 {
			t.Fatal("no suitable (dataset, query) pair found in 500 seeds")
		}
		rng := rand.New(rand.NewSource(seed))
		ds = GenDataset(rng, DatasetConfig{MaxTriples: 120})
		q = GenQuery(rng, ds)
		if q.HasLimit {
			continue
		}
		var err error
		parsed, err = sparql.Parse(q.Src())
		if err != nil {
			t.Fatalf("parse %q: %v", q.Src(), err)
		}
		var ok bool
		want, ok = reference.EvaluateBudget(parsed, ds.Triples, 1_000_000)
		if ok && len(want) >= 3 && len(want) <= 200 {
			break
		}
	}

	for _, mode := range []string{"drop", "dup", "mutate"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			ec := EngineConfig{
				Name: "corrupt-" + mode,
				Make: func(d *bench.Dataset) bench.RowEngine {
					return corrupt{inner: d.HashJoinRows(), mode: mode}
				},
			}
			got, err := ec.Make(bench.NewDataset(ds.Triples, 2)).Evaluate(parsed)
			if err != nil {
				t.Fatal(err)
			}
			diff := Compare(parsed, want, got)
			if diff == "" {
				t.Fatalf("corruption %q not detected on %q", mode, q.Src())
			}
			t.Logf("detected: %s", diff)

			st, sq := Shrink(ds.Triples, q, ec, 1_000_000, 20_000)
			if len(st) > len(ds.Triples) || len(sq.Patterns) > len(q.Patterns) {
				t.Errorf("shrink grew the repro: %d->%d triples, %d->%d patterns",
					len(ds.Triples), len(st), len(q.Patterns), len(sq.Patterns))
			}
			t.Logf("shrunk to %d triples (from %d), query %q", len(st), len(ds.Triples), sq.Src())
		})
	}
}

// TestFindConfigRoundTrip resolves every generated configuration name plus
// a name from a wider host than this one.
func TestFindConfigRoundTrip(t *testing.T) {
	all := append(Configs(nil), EntailConfigs(nil)...)
	all = append(all, MorselConfigs(nil, nil)...)
	all = append(all, WCOJConfigs(nil)...)
	for _, c := range all {
		got, err := FindConfig(c.Name)
		if err != nil {
			t.Errorf("FindConfig(%q): %v", c.Name, err)
			continue
		}
		if got.Name != c.Name || got.Entail != c.Entail {
			t.Errorf("FindConfig(%q) = {%q, entail %v}, want {%q, entail %v}",
				c.Name, got.Name, got.Entail, c.Name, c.Entail)
		}
	}
	// A repro recorded on a wider host than this one must replay anywhere:
	// every grammar — plain, entail, morsel-bounded, and join-forced — with
	// worker counts no host here has.
	for _, name := range []string{
		"parj-AdBinary-w64",
		"parj-entail-Index-w8",
		"parj-AdIndex-w16-m7",
		"parj-wcoj-AdBinary-w64",
		"parj-pipe-Index-w8-m7",
		"parj-auto-AdIndex-w3",
		"parj-entail-wcoj-AdIndex-w16",
	} {
		if _, err := FindConfig(name); err != nil {
			t.Errorf("FindConfig(%q): %v", name, err)
		}
	}
	for _, name := range []string{
		"parj-NoSuch-w2", "parj-AdBinary-w0", "nonsense",
		"parj-wcoj-NoSuch-w2", "parj-wcoj-AdBinary-w0", "parj-wcoj-w2",
	} {
		if _, err := FindConfig(name); err == nil {
			t.Errorf("FindConfig(%q) unexpectedly resolved", name)
		}
	}
}
