// Package testutil holds helpers shared by tests across packages.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakCheck snapshots the goroutine count and returns a function that
// fails the test if the count has not returned to the snapshot within five
// seconds — the shared goroutine-leak assertion for cancellation, panic-
// containment and streaming tests:
//
//	defer testutil.LeakCheck(t)()
//
// Workers legitimately take a moment to unwind after a cancel (they park on
// channel sends or run to their next governance check), so the checker
// polls instead of asserting immediately; on timeout it dumps every
// goroutine stack.
func LeakCheck(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if after := runtime.NumGoroutine(); after <= before {
				return
			} else if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
