package store

import (
	"bytes"
	"testing"
)

// deltaSnapshot serializes a store produced by merging a live delta (novel
// terms, a duplicate insert and a delete included) into a base — the shape
// /snapshot serves while writes are pending. The snapshot format must not
// care whether its source store was loaded or merged.
func deltaSnapshot(t testing.TB, withIndex bool) []byte {
	t.Helper()
	st := LoadTriples(paperExample, BuildOptions{BuildPosIndex: withIndex})
	teaches := st.Predicates.Lookup("<teaches>")
	profA := st.Resources.Lookup("<ProfessorA>")
	d := &Delta{}
	d.Insert(st.Resources.Encode("<ProfessorZ>"), st.Predicates.Encode("<advises>"), st.Resources.Encode("<StudentZ>"))
	d.Insert(profA, teaches, st.Resources.Lookup("<Mathematics>")) // duplicate of a base triple
	d.Delete(profA, teaches, st.Resources.Lookup("<Physics>"))
	merged := ApplyDelta(st, d, InferBuildOptions(st))
	var buf bytes.Buffer
	if err := merged.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeltaSnapshotCanonical: a snapshot of a delta-merged store loads
// cleanly, and re-saving the loaded store reproduces the exact bytes — the
// serialization is canonical regardless of whether tables were built by
// LoadTriples, ApplyDelta (aliased and rebuilt slices mixed), or
// LoadSnapshot.
func TestDeltaSnapshotCanonical(t *testing.T) {
	for _, withIndex := range []bool{true, false} {
		snap := deltaSnapshot(t, withIndex)
		loaded, err := LoadSnapshot(bytes.NewReader(snap))
		if err != nil {
			t.Fatalf("withIndex=%v: load: %v", withIndex, err)
		}
		var again bytes.Buffer
		if err := loaded.Save(&again); err != nil {
			t.Fatalf("withIndex=%v: re-save: %v", withIndex, err)
		}
		if !bytes.Equal(snap, again.Bytes()) {
			t.Errorf("withIndex=%v: re-saved snapshot differs (%d vs %d bytes)",
				withIndex, len(snap), again.Len())
		}
	}
}
