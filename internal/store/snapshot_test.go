package store

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parj/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	orig := LoadTriples(paperExample, BuildOptions{BuildPosIndex: true})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	assertStoresEqual(t, orig, got)
	// Derived structures rebuilt.
	if got.SO(1).Index == nil {
		t.Error("pos index not rebuilt")
	}
	if got.SO(1).Threshold == 0 {
		t.Error("threshold lost")
	}
}

func assertStoresEqual(t *testing.T, a, b *Store) {
	t.Helper()
	if a.NumTriples() != b.NumTriples() || a.NumPredicates() != b.NumPredicates() {
		t.Fatalf("shape mismatch: %s vs %s", a, b)
	}
	if a.Resources.Len() != b.Resources.Len() || a.Predicates.Len() != b.Predicates.Len() {
		t.Fatal("dictionary sizes differ")
	}
	for id := uint32(1); id <= a.Resources.MaxID(); id++ {
		if a.Resources.Decode(id) != b.Resources.Decode(id) {
			t.Fatalf("resource %d: %q vs %q", id, a.Resources.Decode(id), b.Resources.Decode(id))
		}
	}
	for p := 1; p <= a.NumPredicates(); p++ {
		for _, pair := range [][2]*Table{{a.SO(uint32(p)), b.SO(uint32(p))}, {a.OS(uint32(p)), b.OS(uint32(p))}} {
			if !reflect.DeepEqual(pair[0].Keys, pair[1].Keys) ||
				!reflect.DeepEqual(pair[0].Offs, pair[1].Offs) ||
				!reflect.DeepEqual(pair[0].Vals, pair[1].Vals) {
				t.Fatalf("predicate %d table mismatch", p)
			}
		}
	}
	if !reflect.DeepEqual(a.Directory(), b.Directory()) {
		t.Fatal("directory mismatch")
	}
}

func TestSnapshotWithoutIndex(t *testing.T) {
	orig := LoadTriples(paperExample, BuildOptions{})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SO(1).Index != nil {
		t.Error("index built although the original had none")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	orig := LoadTriples(nil, BuildOptions{})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTriples() != 0 || got.NumPredicates() != 0 {
		t.Errorf("empty snapshot loaded as %s", got)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC////////rest"),
		[]byte(snapshotMagic + "\xff\xff\xff\xff"), // bad version
	}
	for _, c := range cases {
		if _, err := LoadSnapshot(bytes.NewReader(c)); err == nil {
			t.Errorf("LoadSnapshot(%q...) succeeded", c)
		}
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	orig := LoadTriples(paperExample, BuildOptions{})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := LoadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated snapshot (%d/%d bytes) accepted", cut, len(full))
		}
	}
}

// Property: snapshot round-trip preserves the triple set for random stores.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := LoadTriples(randomTriples(rng, 200), BuildOptions{BuildPosIndex: rng.Intn(2) == 0})
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			return false
		}
		got, err := LoadSnapshot(&buf)
		if err != nil {
			return false
		}
		want := map[rdf.Triple]bool{}
		orig.Triples(func(s, p, o uint32) bool {
			want[rdf.Triple{S: orig.Resources.Decode(s), P: orig.Predicates.Decode(p), O: orig.Resources.Decode(o)}] = true
			return true
		})
		n := 0
		ok := true
		got.Triples(func(s, p, o uint32) bool {
			n++
			tr := rdf.Triple{S: got.Resources.Decode(s), P: got.Predicates.Decode(p), O: got.Resources.Decode(o)}
			if !want[tr] {
				ok = false
				return false
			}
			return true
		})
		return ok && n == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
