package store

import (
	"bytes"
	"errors"
	"testing"
)

func validSnapshot(t testing.TB, withIndex bool) []byte {
	t.Helper()
	st := LoadTriples(paperExample, BuildOptions{BuildPosIndex: withIndex})
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotDetectsBitFlips: every single-bit corruption of a snapshot —
// header, dictionaries, tables, or the checksum itself — must be rejected
// with ErrCorruptSnapshot. The trailing CRC32 is what makes this exhaustive:
// structural validation alone cannot notice a flipped value ID.
func TestSnapshotDetectsBitFlips(t *testing.T) {
	snap := validSnapshot(t, true)
	for pos := 0; pos < len(snap); pos++ {
		corrupted := bytes.Clone(snap)
		corrupted[pos] ^= 0x01
		_, err := LoadSnapshot(bytes.NewReader(corrupted))
		if err == nil {
			t.Fatalf("flip at byte %d/%d accepted", pos, len(snap))
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("flip at byte %d: error %v does not wrap ErrCorruptSnapshot", pos, err)
		}
	}
}

// TestSnapshotTruncationTyped: every truncation point yields the typed
// corruption error (the older test only checked err != nil).
func TestSnapshotTruncationTyped(t *testing.T) {
	snap := validSnapshot(t, false)
	for cut := 0; cut < len(snap); cut += 7 {
		if _, err := LoadSnapshot(bytes.NewReader(snap[:cut])); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation at %d/%d: error %v does not wrap ErrCorruptSnapshot", cut, len(snap), err)
		}
	}
}

// TestSnapshotGarbageTyped: the garbage cases of the basic test, asserted
// against the typed sentinel callers are told to dispatch on.
func TestSnapshotGarbageTyped(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC////////rest"),
		[]byte(snapshotMagic + "\xff\xff\xff\xff"),
	}
	for _, c := range cases {
		if _, err := LoadSnapshot(bytes.NewReader(c)); !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("LoadSnapshot(%q...): error %v does not wrap ErrCorruptSnapshot", c, err)
		}
	}
}

// TestSnapshotHugeLengthPrefix: a corrupted slice-length prefix claiming
// billions of entries must fail on the missing data without attempting a
// matching allocation first.
func TestSnapshotHugeLengthPrefix(t *testing.T) {
	snap := validSnapshot(t, false)
	corrupted := bytes.Clone(snap)
	// The first table slice length lives past magic+version+flag+dicts;
	// overwrite bytes near the middle with a huge little-endian length and
	// rely on the loader to fail cleanly wherever the stream breaks.
	for pos := len(snap) / 3; pos < len(snap)/3+4; pos++ {
		corrupted[pos] = 0xff
	}
	corrupted[len(snap)/3+3] = 0x7f
	if _, err := LoadSnapshot(bytes.NewReader(corrupted)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("huge-length snapshot: error %v does not wrap ErrCorruptSnapshot", err)
	}
}

// FuzzLoadSnapshot feeds arbitrary bytes to the snapshot loader. The loader
// must never panic, never over-allocate, and classify every rejection as
// ErrCorruptSnapshot; anything it does accept must be iterable.
func FuzzLoadSnapshot(f *testing.F) {
	valid := validSnapshot(f, true)
	plain := validSnapshot(f, false)
	f.Add(valid)
	f.Add(plain)
	f.Add(deltaSnapshot(f, true)) // snapshot taken with unreconciled deltas merged in
	f.Add(valid[:len(valid)/2])      // truncation
	f.Add(valid[:len(valid)-3])      // truncated checksum
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/3] ^= 0x40 // payload bit flip
	f.Add(flipped)
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("error %v does not wrap ErrCorruptSnapshot", err)
			}
			return
		}
		// Accepted: the store must hold together well enough to walk.
		n := 0
		st.Triples(func(s, p, o uint32) bool {
			n++
			return n < 1<<20
		})
	})
}
