// Package store implements PARJ's physical data storage (paper §3).
//
// After dictionary encoding, the triples are vertically partitioned: every
// predicate gets a two-column table, kept in two replicas — one sorted by
// subject then object (the S-O table) and one sorted by object then subject
// (the O-S table). Each replica is stored as a CSR pair: a sorted array of
// distinct keys (subjects for S-O, objects for O-S) plus a single
// contiguous value array addressed through offsets, which is the paper's
// "allocate the object arrays in a continuous memory area and keep offsets"
// refinement of Figure 1. The distinct-key array is the paper's simple form
// of column-specific compression, and the contiguous value area is what
// gives join probes their spatial locality.
package store

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"parj/internal/dict"
	"parj/internal/posindex"
	"parj/internal/rdf"
	"parj/internal/search"
)

// Table is one replica of a property's two-column table in CSR layout.
// Tables are immutable after Build and safe for concurrent reads.
type Table struct {
	// Keys holds the sorted distinct first-column values (subjects for an
	// S-O table, objects for an O-S table).
	Keys []uint32
	// Offs has len(Keys)+1 entries; the values of Keys[i] are
	// Vals[Offs[i]:Offs[i+1]], each run sorted ascending.
	Offs []uint32
	// Vals is the contiguous second-column storage.
	Vals []uint32

	// Threshold is the adaptive-search value threshold when the fallback
	// strategy is binary search; IndexThreshold when it is the
	// ID-to-Position index (paper §4.2 calibrates the two separately, the
	// index one coming out smaller).
	Threshold      uint32
	IndexThreshold uint32

	// Index is the optional ID-to-Position index over Keys; nil when the
	// store was built without indexes (its use is auxiliary, paper §4.2).
	Index *posindex.Index

	// Simulated base addresses for cache-tracing runs (Table 6). They are
	// assigned disjointly across all arrays of a store.
	KeysBase   uint64
	ValsBase   uint64
	IndexBases posindex.Bases
}

// Run returns the sorted values associated with the key at position pos.
func (t *Table) Run(pos int) []uint32 {
	return t.Vals[t.Offs[pos]:t.Offs[pos+1]]
}

// RunBounds returns the [start, end) bounds in Vals of the run for pos.
func (t *Table) RunBounds(pos int) (int, int) {
	return int(t.Offs[pos]), int(t.Offs[pos+1])
}

// NumKeys reports the number of distinct keys.
func (t *Table) NumKeys() int { return len(t.Keys) }

// NumTriples reports the number of triples stored in this replica.
func (t *Table) NumTriples() int { return len(t.Vals) }

// LookupKey locates id in Keys with plain binary search (no cursor state).
func (t *Table) LookupKey(id uint32) (int, bool) {
	i := sort.Search(len(t.Keys), func(i int) bool { return t.Keys[i] >= id })
	return i, i < len(t.Keys) && t.Keys[i] == id
}

// Store is the complete in-memory database: dictionaries plus both replicas
// of every property table. Immutable after Build; safe for concurrent use.
type Store struct {
	Resources  *dict.Dict // common numbering for subjects and objects
	Predicates *dict.Dict // separate numbering for predicates

	so []Table // so[p-1] is the S-O table of predicate ID p
	os []Table // os[p-1] is the O-S table of predicate ID p

	// directory is the paper's array of length 2×#properties holding the
	// distinct-key counts: entry 2·(p−1) for the S-O table of predicate p,
	// entry 2·(p−1)+1 for its O-S table.
	directory []uint32

	numTriples int
}

// SO returns the S-O replica for predicate ID p.
func (s *Store) SO(p uint32) *Table { return &s.so[p-1] }

// OS returns the O-S replica for predicate ID p.
func (s *Store) OS(p uint32) *Table { return &s.os[p-1] }

// NumPredicates reports the number of distinct predicates.
func (s *Store) NumPredicates() int { return len(s.so) }

// NumTriples reports the number of distinct triples loaded.
func (s *Store) NumTriples() int { return s.numTriples }

// Directory returns the paper's 2×#properties key-count directory. Entry
// 2·(p−1) holds the number of distinct subjects of predicate p, entry
// 2·(p−1)+1 its number of distinct objects.
func (s *Store) Directory() []uint32 { return s.directory }

// Bytes reports the memory footprint of the table payloads (excluding the
// dictionaries), the number the paper quotes as "22 GB excluding
// dictionary" for LUBM 10240.
func (s *Store) Bytes() int {
	total := 0
	for i := range s.so {
		for _, t := range []*Table{&s.so[i], &s.os[i]} {
			total += 4 * (len(t.Keys) + len(t.Offs) + len(t.Vals))
			if t.Index != nil {
				total += t.Index.Bytes()
			}
		}
	}
	return total
}

// Triples streams every stored triple (in S-O table order) to fn; it stops
// early if fn returns false. Intended for tests and export, not hot paths.
func (s *Store) Triples(fn func(sub, pred, obj uint32) bool) {
	for p := range s.so {
		t := &s.so[p]
		for i, k := range t.Keys {
			for _, o := range t.Run(i) {
				if !fn(k, uint32(p+1), o) {
					return
				}
			}
		}
	}
}

// BuildOptions configures Builder.Build.
type BuildOptions struct {
	// Calibrate runs the timing-based calibration (Algorithm 2) per table
	// to determine adaptive thresholds. When false, the paper-reported
	// default windows are used, which keeps builds deterministic.
	Calibrate bool
	// BinaryWindow and IndexWindow override the position windows used to
	// derive thresholds when Calibrate is false. Zero means the defaults
	// (search.DefaultBinaryWindow / search.DefaultIndexWindow).
	BinaryWindow int
	IndexWindow  int
	// BuildPosIndex builds the ID-to-Position index for every table.
	BuildPosIndex bool
	// PosIndexInterval is the anchor spacing; zero means
	// posindex.DefaultInterval.
	PosIndexInterval int
	// Parallelism bounds the number of predicates built concurrently
	// (sorting and CSR construction are per-predicate independent).
	// 0 means GOMAXPROCS; 1 forces the serial path.
	Parallelism int
}

// Builder accumulates triples and produces an immutable Store.
type Builder struct {
	resources  *dict.Dict
	predicates *dict.Dict
	// perPred[p-1] holds the encoded (subject, object) pairs of predicate
	// ID p, packed subject-high for cheap sorting.
	perPred [][]uint64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{resources: dict.New(), predicates: dict.New()}
}

// Add encodes and buffers one triple given as term strings.
func (b *Builder) Add(subject, predicate, object string) {
	s := b.resources.Encode(subject)
	p := b.predicates.Encode(predicate)
	o := b.resources.Encode(object)
	b.AddEncoded(s, p, o)
}

// AddTriple buffers one parsed triple.
func (b *Builder) AddTriple(t rdf.Triple) { b.Add(t.S, t.P, t.O) }

// AddEncoded buffers a triple already encoded with this builder's
// dictionaries. The predicate ID must have been returned by this builder.
func (b *Builder) AddEncoded(s, p, o uint32) {
	for int(p) > len(b.perPred) {
		b.perPred = append(b.perPred, nil)
	}
	b.perPred[p-1] = append(b.perPred[p-1], uint64(s)<<32|uint64(o))
}

// Resources exposes the resource dictionary for pre-encoding during load.
func (b *Builder) Resources() *dict.Dict { return b.resources }

// Predicates exposes the predicate dictionary.
func (b *Builder) Predicates() *dict.Dict { return b.predicates }

// Build sorts, deduplicates and freezes the buffered triples into a Store.
// The Builder must not be used afterwards.
func (b *Builder) Build(opts BuildOptions) *Store {
	st := &Store{
		Resources:  b.resources,
		Predicates: b.predicates,
		so:         make([]Table, len(b.perPred)),
		os:         make([]Table, len(b.perPred)),
		directory:  make([]uint32, 2*len(b.perPred)),
	}
	binaryWindow := opts.BinaryWindow
	if binaryWindow == 0 {
		binaryWindow = search.DefaultBinaryWindow
	}
	indexWindow := opts.IndexWindow
	if indexWindow == 0 {
		indexWindow = search.DefaultIndexWindow
	}
	maxID := b.resources.MaxID()

	// Per-predicate work (sorting, dedup, CSR, thresholds, indexes) is
	// independent; build predicates concurrently and only the simulated
	// base-address assignment stays serial (it is an ordered cursor).
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(b.perPred) {
		workers = len(b.perPred)
	}
	buildOne := func(p int) {
		pairs := b.perPred[p]
		sortPairs(pairs)
		pairs = dedupPairs(pairs)
		st.so[p] = buildCSR(pairs)
		// Reuse the buffer for the swapped pairs to build the O-S replica.
		for i, pr := range pairs {
			pairs[i] = pr<<32 | pr>>32
		}
		sortPairs(pairs)
		st.os[p] = buildCSR(pairs)
		b.perPred[p] = nil // release
		for _, t := range []*Table{&st.so[p], &st.os[p]} {
			finishTable(t, opts, maxID, binaryWindow, indexWindow)
		}
		st.directory[2*p] = uint32(len(st.so[p].Keys))
		st.directory[2*p+1] = uint32(len(st.os[p].Keys))
	}
	if workers <= 1 {
		for p := range b.perPred {
			buildOne(p)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := range work {
					buildOne(p)
				}
			}()
		}
		for p := range b.perPred {
			work <- p
		}
		close(work)
		wg.Wait()
	}
	// Serial passes: triple count and disjoint simulated base addresses.
	var base uint64 = 1 << 20
	for p := range st.so {
		st.numTriples += st.so[p].NumTriples()
		for _, t := range []*Table{&st.so[p], &st.os[p]} {
			t.KeysBase = base
			base += uint64(len(t.Keys))*4 + 4096
			t.ValsBase = base
			base += uint64(len(t.Vals))*4 + 4096
			if t.Index != nil {
				t.IndexBases = posindex.Bases{Words: base, Anchors: base + uint64(t.Index.Bytes())}
				base += uint64(t.Index.Bytes())*2 + 4096
			}
		}
	}
	return st
}

// finishTable computes thresholds and builds the optional index. Simulated
// base addresses are assigned afterwards in a serial pass so that the
// per-predicate work can run concurrently.
func finishTable(t *Table, opts BuildOptions, maxID uint32, binaryWindow, indexWindow int) {
	bw, iw := binaryWindow, indexWindow
	if opts.Calibrate && len(t.Keys) > 1024 {
		bw = search.Calibrate(t.Keys, func(a []uint32, v uint32, cur *int) (int, bool) {
			return search.Binary(a, v, cur)
		}, search.CalibrateOptions{StartingWindowSize: binaryWindow})
	}
	t.Threshold = search.ValueThreshold(t.Keys, bw)
	t.IndexThreshold = search.ValueThreshold(t.Keys, iw)
	if opts.BuildPosIndex {
		t.Index = posindex.Build(t.Keys, maxID, opts.PosIndexInterval)
		if opts.Calibrate && len(t.Keys) > 1024 {
			iw = search.Calibrate(t.Keys, func(a []uint32, v uint32, cur *int) (int, bool) {
				return t.Index.Lookup(v)
			}, search.CalibrateOptions{StartingWindowSize: indexWindow})
			t.IndexThreshold = search.ValueThreshold(t.Keys, iw)
		}
	}
}

func sortPairs(pairs []uint64) {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
}

func dedupPairs(pairs []uint64) []uint64 {
	out := pairs[:0]
	for i, p := range pairs {
		if i == 0 || p != pairs[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// buildCSR converts sorted (key<<32|val) pairs into a CSR table.
func buildCSR(pairs []uint64) Table {
	var t Table
	if len(pairs) == 0 {
		t.Offs = []uint32{0}
		return t
	}
	t.Vals = make([]uint32, len(pairs))
	var prevKey uint32
	for i, pr := range pairs {
		k := uint32(pr >> 32)
		v := uint32(pr)
		if i == 0 || k != prevKey {
			t.Keys = append(t.Keys, k)
			t.Offs = append(t.Offs, uint32(i))
			prevKey = k
		}
		t.Vals[i] = v
	}
	t.Offs = append(t.Offs, uint32(len(pairs)))
	return t
}

// LoadTriples builds a Store directly from parsed triples.
func LoadTriples(triples []rdf.Triple, opts BuildOptions) *Store {
	b := NewBuilder()
	for _, t := range triples {
		b.AddTriple(t)
	}
	return b.Build(opts)
}

// String summarizes the store for logs.
func (s *Store) String() string {
	return fmt.Sprintf("store{predicates: %d, triples: %d, resources: %d, bytes: %d}",
		s.NumPredicates(), s.NumTriples(), s.Resources.Len(), s.Bytes())
}
