package store

import (
	"parj/internal/posindex"
	"parj/internal/search"
)

// delta.go — the pending-write overlay of the live write path.
//
// The CSR tables of a Store are immutable; writes therefore accumulate in a
// Delta: per predicate, a sorted array of added (subject, object) pairs and
// a sorted array of tombstoned pairs, packed subject-high exactly like the
// Builder's buffers so they share the S-O sort order of the tables they
// overlay. The effective relation of a view is
//
//	effective(p) = (base(p) ∖ dels(p)) ∪ adds(p)
//
// with the invariant adds(p) ∩ dels(p) = ∅: inserting a pair removes it
// from the tombstones before recording the add, deleting removes it from
// the adds before recording the tombstone. The invariant is what makes
// delete-then-reinsert and duplicate inserts land on plain set semantics —
// the last verdict per pair wins, independently of when a reconciliation
// happens to freeze the delta.
//
// ApplyDelta materializes the effective store. Untouched predicates share
// their table storage with the base (a struct copy of immutable slices);
// touched predicates are rebuilt through the same buildCSR/finishTable path
// the Builder uses, so a merged store is indistinguishable from one built
// from the effective triples directly — which is exactly the property the
// snapshot-under-writes tests pin.

// Delta is a set-semantic batch of pending writes against a base Store.
// The zero value is empty and ready to use. A Delta published inside a view
// is frozen: mutation happens only on private clones (see Clone).
type Delta struct {
	// adds[p-1] and dels[p-1] hold the pending pairs of predicate ID p,
	// packed uint64(s)<<32|uint64(o) and sorted ascending.
	adds [][]uint64
	dels [][]uint64
	ops  int // verdicts recorded since the delta was last empty
}

// Empty reports whether the delta holds no pending pairs.
func (d *Delta) Empty() bool {
	if d == nil {
		return true
	}
	for _, a := range d.adds {
		if len(a) > 0 {
			return false
		}
	}
	for _, t := range d.dels {
		if len(t) > 0 {
			return false
		}
	}
	return true
}

// Ops reports how many insert/delete verdicts were recorded — the pending
// write volume reconciliation thresholds trigger on. It counts operations,
// not net pairs, so a churn of inserts and deletes of the same pair still
// advances it.
func (d *Delta) Ops() int {
	if d == nil {
		return 0
	}
	return d.ops
}

// Counts reports the net pending pair counts (adds, tombstones).
func (d *Delta) Counts() (adds, dels int) {
	if d == nil {
		return 0, 0
	}
	for _, a := range d.adds {
		adds += len(a)
	}
	for _, t := range d.dels {
		dels += len(t)
	}
	return adds, dels
}

// Clone returns a private deep copy that can be mutated without disturbing
// views holding the receiver.
func (d *Delta) Clone() *Delta {
	nd := &Delta{}
	if d == nil {
		return nd
	}
	nd.ops = d.ops
	nd.adds = make([][]uint64, len(d.adds))
	for p, a := range d.adds {
		nd.adds[p] = append([]uint64(nil), a...)
	}
	nd.dels = make([][]uint64, len(d.dels))
	for p, t := range d.dels {
		nd.dels[p] = append([]uint64(nil), t...)
	}
	return nd
}

// Insert records the verdict "pair (s,o) of predicate p exists".
func (d *Delta) Insert(s, p, o uint32) {
	pair := uint64(s)<<32 | uint64(o)
	d.grow(p)
	d.dels[p-1] = sortedRemove(d.dels[p-1], pair)
	d.adds[p-1] = sortedInsert(d.adds[p-1], pair)
	d.ops++
}

// Delete records the verdict "pair (s,o) of predicate p does not exist".
func (d *Delta) Delete(s, p, o uint32) {
	pair := uint64(s)<<32 | uint64(o)
	d.grow(p)
	d.adds[p-1] = sortedRemove(d.adds[p-1], pair)
	d.dels[p-1] = sortedInsert(d.dels[p-1], pair)
	d.ops++
}

// NumPredicates reports the predicate ID space the delta spans (it can
// exceed the base store's when inserts introduced new predicates).
func (d *Delta) NumPredicates() int {
	if d == nil {
		return 0
	}
	return len(d.adds)
}

func (d *Delta) grow(p uint32) {
	for int(p) > len(d.adds) {
		d.adds = append(d.adds, nil)
		d.dels = append(d.dels, nil)
	}
}

// sortedInsert adds pair into sorted xs unless already present.
func sortedInsert(xs []uint64, pair uint64) []uint64 {
	i := searchPairs(xs, pair)
	if i < len(xs) && xs[i] == pair {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = pair
	return xs
}

// sortedRemove removes pair from sorted xs if present.
func sortedRemove(xs []uint64, pair uint64) []uint64 {
	i := searchPairs(xs, pair)
	if i >= len(xs) || xs[i] != pair {
		return xs
	}
	return append(xs[:i], xs[i+1:]...)
}

func searchPairs(xs []uint64, pair uint64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < pair {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prune returns the residual delta of d against st: adds already present
// in st are dropped, tombstones of pairs absent from st are dropped. After
// a reconciliation promotes a merged store to the new base, the residual of
// the (possibly advanced) current delta is exactly what must still overlay
// it — in particular, a pair deleted and reinserted across the freeze does
// not resurrect, and a pair inserted twice does not double. The residual's
// op counter is reset to its net pair count so reconcile thresholds re-arm.
func (d *Delta) Prune(st *Store) *Delta {
	nd := &Delta{}
	if d == nil {
		return nd
	}
	for p := range d.adds {
		pred := uint32(p + 1)
		var adds, dels []uint64
		for _, pair := range d.adds[p] {
			if !st.HasTriple(uint32(pair>>32), pred, uint32(pair)) {
				adds = append(adds, pair)
			}
		}
		for _, pair := range d.dels[p] {
			if st.HasTriple(uint32(pair>>32), pred, uint32(pair)) {
				dels = append(dels, pair)
			}
		}
		if adds != nil || dels != nil {
			nd.grow(uint32(len(d.adds)))
			nd.adds[p], nd.dels[p] = adds, dels
			nd.ops += len(adds) + len(dels)
		}
	}
	return nd
}

// HasTriple reports whether the store contains the encoded triple — a
// binary search over the predicate's S-O replica. Used by reconciliation to
// prune a residual delta against a freshly merged base.
func (s *Store) HasTriple(sub, pred, obj uint32) bool {
	if pred == 0 || int(pred) > len(s.so) {
		return false
	}
	t := &s.so[pred-1]
	pos, ok := t.LookupKey(sub)
	if !ok {
		return false
	}
	run := t.Run(pos)
	i := searchU32(run, obj)
	return i < len(run) && run[i] == obj
}

func searchU32(xs []uint32, v uint32) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// InferBuildOptions derives the BuildOptions a merge must use so that
// rebuilt tables match the base store's physical shape: stores built with
// ID-to-Position indexes keep them across merges.
func InferBuildOptions(s *Store) BuildOptions {
	opts := BuildOptions{}
	for i := range s.so {
		if s.so[i].Index != nil {
			opts.BuildPosIndex = true
			break
		}
	}
	return opts
}

// ApplyDelta materializes the effective store base ∖ dels ∪ adds. Untouched
// predicate tables are shared with the base by struct copy (the immutable
// slices alias — zero build cost and zero extra memory); touched predicates
// are rebuilt through the Builder's CSR path. The dictionaries are shared
// with the base: delta pairs were encoded against them, and they are
// append-only. The result is as immutable as any built Store.
func ApplyDelta(base *Store, d *Delta, opts BuildOptions) *Store {
	nPred := base.NumPredicates()
	if n := d.NumPredicates(); n > nPred {
		nPred = n
	}
	st := &Store{
		Resources:  base.Resources,
		Predicates: base.Predicates,
		so:         make([]Table, nPred),
		os:         make([]Table, nPred),
		directory:  make([]uint32, 2*nPred),
	}
	binaryWindow := opts.BinaryWindow
	if binaryWindow == 0 {
		binaryWindow = search.DefaultBinaryWindow
	}
	indexWindow := opts.IndexWindow
	if indexWindow == 0 {
		indexWindow = search.DefaultIndexWindow
	}
	maxID := base.Resources.MaxID()
	for p := 0; p < nPred; p++ {
		var adds, dels []uint64
		if p < len(d.adds) {
			adds, dels = d.adds[p], d.dels[p]
		}
		if len(adds) == 0 && len(dels) == 0 && p < base.NumPredicates() {
			// Untouched: share the base tables.
			st.so[p] = base.so[p]
			st.os[p] = base.os[p]
			st.directory[2*p] = base.directory[2*p]
			st.directory[2*p+1] = base.directory[2*p+1]
			continue
		}
		var basePairs []uint64
		if p < base.NumPredicates() {
			basePairs = tablePairs(&base.so[p])
		}
		pairs := mergePairs(basePairs, adds, dels)
		st.so[p] = buildCSR(pairs)
		for i, pr := range pairs {
			pairs[i] = pr<<32 | pr>>32
		}
		sortPairs(pairs)
		st.os[p] = buildCSR(pairs)
		for _, t := range []*Table{&st.so[p], &st.os[p]} {
			finishTable(t, opts, maxID, binaryWindow, indexWindow)
		}
		st.directory[2*p] = uint32(len(st.so[p].Keys))
		st.directory[2*p+1] = uint32(len(st.os[p].Keys))
	}
	// Serial pass mirroring Build: triple count and disjoint simulated base
	// addresses (recomputed for every table — the copies are by value, so
	// the base store's own addresses are untouched).
	var baseAddr uint64 = 1 << 20
	for p := range st.so {
		st.numTriples += st.so[p].NumTriples()
		for _, t := range []*Table{&st.so[p], &st.os[p]} {
			t.KeysBase = baseAddr
			baseAddr += uint64(len(t.Keys))*4 + 4096
			t.ValsBase = baseAddr
			baseAddr += uint64(len(t.Vals))*4 + 4096
			if t.Index != nil {
				t.IndexBases = posindex.Bases{Words: baseAddr, Anchors: baseAddr + uint64(t.Index.Bytes())}
				baseAddr += uint64(t.Index.Bytes())*2 + 4096
			}
		}
	}
	return st
}

// tablePairs flattens an S-O table back into sorted packed pairs.
func tablePairs(t *Table) []uint64 {
	pairs := make([]uint64, 0, t.NumTriples())
	for i, k := range t.Keys {
		hi := uint64(k) << 32
		for _, o := range t.Run(i) {
			pairs = append(pairs, hi|uint64(o))
		}
	}
	return pairs
}

// mergePairs computes (base ∖ dels) ∪ adds in one linear pass. All three
// inputs are sorted ascending; the result is sorted and duplicate-free
// (adds may contain pairs already present in base).
func mergePairs(base, adds, dels []uint64) []uint64 {
	out := make([]uint64, 0, len(base)+len(adds))
	i, j, k := 0, 0, 0
	for i < len(base) || j < len(adds) {
		var next uint64
		var fromBase bool
		switch {
		case i >= len(base):
			next, fromBase = adds[j], false
		case j >= len(adds):
			next, fromBase = base[i], true
		case base[i] < adds[j]:
			next, fromBase = base[i], true
		case base[i] > adds[j]:
			next, fromBase = adds[j], false
		default: // equal: consume both, keep one (adds wins over any del)
			next = adds[j]
			i++
			j++
			out = append(out, next)
			continue
		}
		if fromBase {
			i++
			for k < len(dels) && dels[k] < next {
				k++
			}
			if k < len(dels) && dels[k] == next {
				continue // tombstoned
			}
		} else {
			j++
		}
		out = append(out, next)
	}
	return out
}
