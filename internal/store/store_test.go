package store

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"parj/internal/rdf"
)

// paperExample is the teaching dataset from §3 of the paper.
var paperExample = []rdf.Triple{
	{S: "<ProfessorA>", P: "<teaches>", O: "<Mathematics>"},
	{S: "<ProfessorB>", P: "<teaches>", O: "<Chemistry>"},
	{S: "<ProfessorC>", P: "<teaches>", O: "<Literature>"},
	{S: "<ProfessorA>", P: "<teaches>", O: "<Physics>"},
	{S: "<ProfessorA>", P: "<worksFor>", O: "<University1>"},
	{S: "<ProfessorB>", P: "<worksFor>", O: "<University2>"},
	{S: "<ProfessorC>", P: "<worksFor>", O: "<University2>"},
}

func TestPaperExampleLayout(t *testing.T) {
	st := LoadTriples(paperExample, BuildOptions{})
	if st.NumPredicates() != 2 {
		t.Fatalf("NumPredicates = %d, want 2", st.NumPredicates())
	}
	if st.NumTriples() != 7 {
		t.Fatalf("NumTriples = %d, want 7", st.NumTriples())
	}
	teaches := st.Predicates.Lookup("<teaches>")
	if teaches == 0 {
		t.Fatal("predicate <teaches> not in dictionary")
	}
	so := st.SO(teaches)
	// ProfessorA teaches two things; B and C one each.
	if so.NumKeys() != 3 || so.NumTriples() != 4 {
		t.Fatalf("teaches S-O: keys=%d triples=%d, want 3,4", so.NumKeys(), so.NumTriples())
	}
	profA := st.Resources.Lookup("<ProfessorA>")
	pos, ok := so.LookupKey(profA)
	if !ok {
		t.Fatal("ProfessorA not a subject of teaches")
	}
	run := so.Run(pos)
	if len(run) != 2 {
		t.Fatalf("ProfessorA teaches %d things, want 2", len(run))
	}
	if !sort.SliceIsSorted(run, func(i, j int) bool { return run[i] < run[j] }) {
		t.Error("run not sorted")
	}
	// O-S replica of worksFor: University2 has two employees.
	worksFor := st.Predicates.Lookup("<worksFor>")
	os := st.OS(worksFor)
	uni2 := st.Resources.Lookup("<University2>")
	pos, ok = os.LookupKey(uni2)
	if !ok {
		t.Fatal("University2 not an object of worksFor")
	}
	if got := len(os.Run(pos)); got != 2 {
		t.Errorf("University2 run length = %d, want 2", got)
	}
}

func TestDirectory(t *testing.T) {
	st := LoadTriples(paperExample, BuildOptions{})
	dir := st.Directory()
	if len(dir) != 4 {
		t.Fatalf("directory length = %d, want 4 (2 per predicate)", len(dir))
	}
	teaches := st.Predicates.Lookup("<teaches>")
	if dir[2*(teaches-1)] != 3 {
		t.Errorf("teaches subject count = %d, want 3", dir[2*(teaches-1)])
	}
	if dir[2*(teaches-1)+1] != 4 {
		t.Errorf("teaches object count = %d, want 4 (all objects distinct)", dir[2*(teaches-1)+1])
	}
}

func TestDuplicateTriplesAreDeduplicated(t *testing.T) {
	dup := append(append([]rdf.Triple{}, paperExample...), paperExample...)
	st := LoadTriples(dup, BuildOptions{})
	if st.NumTriples() != len(paperExample) {
		t.Errorf("NumTriples = %d, want %d", st.NumTriples(), len(paperExample))
	}
}

func TestEmptyStore(t *testing.T) {
	st := LoadTriples(nil, BuildOptions{})
	if st.NumPredicates() != 0 || st.NumTriples() != 0 {
		t.Errorf("empty store: %s", st)
	}
	st.Triples(func(s, p, o uint32) bool {
		t.Error("empty store yielded a triple")
		return false
	})
}

func TestTriplesRoundTrip(t *testing.T) {
	st := LoadTriples(paperExample, BuildOptions{})
	var got []rdf.Triple
	st.Triples(func(s, p, o uint32) bool {
		got = append(got, rdf.Triple{
			S: st.Resources.Decode(s),
			P: st.Predicates.Decode(p),
			O: st.Resources.Decode(o),
		})
		return true
	})
	if len(got) != len(paperExample) {
		t.Fatalf("round trip length %d, want %d", len(got), len(paperExample))
	}
	want := append([]rdf.Triple{}, paperExample...)
	sortTriples(want)
	sortTriples(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %v\nwant %v", got, want)
	}
}

func sortTriples(ts []rdf.Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.P != b.P {
			return a.P < b.P
		}
		if a.S != b.S {
			return a.S < b.S
		}
		return a.O < b.O
	})
}

func TestPosIndexBuilt(t *testing.T) {
	st := LoadTriples(paperExample, BuildOptions{BuildPosIndex: true})
	teaches := st.Predicates.Lookup("<teaches>")
	so := st.SO(teaches)
	if so.Index == nil {
		t.Fatal("pos index not built")
	}
	for i, k := range so.Keys {
		pos, ok := so.Index.Lookup(k)
		if !ok || pos != i {
			t.Errorf("index Lookup(%d) = (%d,%v), want (%d,true)", k, pos, ok, i)
		}
	}
	if st.Bytes() <= 0 {
		t.Error("Bytes() not positive with indexes")
	}
}

func TestThresholdsAssigned(t *testing.T) {
	st := LoadTriples(paperExample, BuildOptions{BuildPosIndex: true})
	teaches := st.Predicates.Lookup("<teaches>")
	so := st.SO(teaches)
	if so.Threshold == 0 {
		t.Error("binary threshold is 0")
	}
	if so.IndexThreshold == 0 {
		t.Error("index threshold is 0")
	}
	if so.IndexThreshold > so.Threshold {
		t.Errorf("index threshold %d > binary threshold %d; the index alternative should switch to scan later",
			so.IndexThreshold, so.Threshold)
	}
}

func TestRunBounds(t *testing.T) {
	st := LoadTriples(paperExample, BuildOptions{})
	teaches := st.Predicates.Lookup("<teaches>")
	so := st.SO(teaches)
	total := 0
	for i := 0; i < so.NumKeys(); i++ {
		s, e := so.RunBounds(i)
		if e <= s {
			t.Fatalf("empty run at %d", i)
		}
		if got := so.Run(i); len(got) != e-s {
			t.Fatalf("Run(%d) length %d, bounds say %d", i, len(got), e-s)
		}
		total += e - s
	}
	if total != so.NumTriples() {
		t.Errorf("runs cover %d triples, want %d", total, so.NumTriples())
	}
}

// randomTriples produces n random encoded triples over small ID spaces so
// collisions (duplicates, shared subjects/objects) are common.
func randomTriples(rng *rand.Rand, n int) []rdf.Triple {
	names := func(prefix string, k int) []string {
		out := make([]string, k)
		for i := range out {
			out[i] = "<" + prefix + string(rune('a'+i%26)) + string(rune('0'+i/26)) + ">"
		}
		return out
	}
	res := names("r", 40)
	preds := names("p", 5)
	ts := make([]rdf.Triple, n)
	for i := range ts {
		ts[i] = rdf.Triple{
			S: res[rng.Intn(len(res))],
			P: preds[rng.Intn(len(preds))],
			O: res[rng.Intn(len(res))],
		}
	}
	return ts
}

// Property: the store holds exactly the distinct input triples — both
// replicas agree with each other and with the input multiset.
func TestQuickStoreHoldsInputSet(t *testing.T) {
	f := func(seed int64, nSeed uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed)%500 + 1
		input := randomTriples(rng, n)
		st := LoadTriples(input, BuildOptions{})

		want := make(map[rdf.Triple]bool)
		for _, tr := range input {
			want[tr] = true
		}
		got := make(map[rdf.Triple]bool)
		st.Triples(func(s, p, o uint32) bool {
			got[rdf.Triple{
				S: st.Resources.Decode(s),
				P: st.Predicates.Decode(p),
				O: st.Resources.Decode(o),
			}] = true
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for tr := range want {
			if !got[tr] {
				return false
			}
		}
		// O-S replica must contain the same triples as S-O.
		osCount := 0
		for p := 1; p <= st.NumPredicates(); p++ {
			osT := st.OS(uint32(p))
			osCount += osT.NumTriples()
			for i, k := range osT.Keys {
				for _, sub := range osT.Run(i) {
					tr := rdf.Triple{
						S: st.Resources.Decode(sub),
						P: st.Predicates.Decode(uint32(p)),
						O: st.Resources.Decode(k),
					}
					if !want[tr] {
						return false
					}
				}
			}
		}
		return osCount == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CSR invariants hold for every table — keys sorted and distinct,
// offsets monotone covering Vals, runs sorted.
func TestQuickCSRInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := LoadTriples(randomTriples(rng, 300), BuildOptions{BuildPosIndex: true})
		for p := 1; p <= st.NumPredicates(); p++ {
			for _, tab := range []*Table{st.SO(uint32(p)), st.OS(uint32(p))} {
				if len(tab.Offs) != len(tab.Keys)+1 {
					return false
				}
				if tab.Offs[0] != 0 || int(tab.Offs[len(tab.Offs)-1]) != len(tab.Vals) {
					return false
				}
				for i := 1; i < len(tab.Keys); i++ {
					if tab.Keys[i] <= tab.Keys[i-1] {
						return false
					}
					if tab.Offs[i] < tab.Offs[i-1] {
						return false
					}
				}
				for i := range tab.Keys {
					run := tab.Run(i)
					if len(run) == 0 {
						return false
					}
					for j := 1; j < len(run); j++ {
						if run[j] <= run[j-1] {
							return false
						}
					}
					if pos, ok := tab.Index.Lookup(tab.Keys[i]); !ok || pos != i {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCalibratedBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Enough triples to trigger real calibration (> 1024 distinct keys).
	var triples []rdf.Triple
	for i := 0; i < 3000; i++ {
		triples = append(triples, rdf.Triple{
			S: rdf.NewIRI("http://s" + itoa(i)),
			P: "<http://p>",
			O: rdf.NewIRI("http://o" + itoa(rng.Intn(100))),
		})
	}
	st := LoadTriples(triples, BuildOptions{Calibrate: true, BuildPosIndex: true})
	so := st.SO(1)
	if so.Threshold == 0 {
		t.Error("calibrated threshold is 0")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestBaseAddressesDisjoint(t *testing.T) {
	st := LoadTriples(paperExample, BuildOptions{BuildPosIndex: true})
	type rng struct{ lo, hi uint64 }
	var ranges []rng
	for p := 1; p <= st.NumPredicates(); p++ {
		for _, tab := range []*Table{st.SO(uint32(p)), st.OS(uint32(p))} {
			ranges = append(ranges,
				rng{tab.KeysBase, tab.KeysBase + uint64(len(tab.Keys))*4},
				rng{tab.ValsBase, tab.ValsBase + uint64(len(tab.Vals))*4})
		}
	}
	for i := range ranges {
		for j := i + 1; j < len(ranges); j++ {
			a, b := ranges[i], ranges[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("address ranges overlap: %v %v", a, b)
			}
		}
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	triples := randomTriples(rng, 2000)
	b1 := NewBuilder()
	b2 := NewBuilder()
	for _, tr := range triples {
		b1.AddTriple(tr)
		b2.AddTriple(tr)
	}
	serial := b1.Build(BuildOptions{BuildPosIndex: true, Parallelism: 1})
	parallel := b2.Build(BuildOptions{BuildPosIndex: true, Parallelism: 8})
	if serial.NumTriples() != parallel.NumTriples() {
		t.Fatalf("triple counts: %d vs %d", serial.NumTriples(), parallel.NumTriples())
	}
	for p := 1; p <= serial.NumPredicates(); p++ {
		a, b := serial.SO(uint32(p)), parallel.SO(uint32(p))
		if !reflect.DeepEqual(a.Keys, b.Keys) || !reflect.DeepEqual(a.Vals, b.Vals) ||
			!reflect.DeepEqual(a.Offs, b.Offs) {
			t.Fatalf("predicate %d S-O differs between serial and parallel build", p)
		}
		if a.Threshold != b.Threshold || a.IndexThreshold != b.IndexThreshold {
			t.Fatalf("predicate %d thresholds differ", p)
		}
	}
	if !reflect.DeepEqual(serial.Directory(), parallel.Directory()) {
		t.Fatal("directories differ")
	}
}
