package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"parj/internal/dict"
	"parj/internal/posindex"
	"parj/internal/search"
)

// The paper's prototype persisted its tables in SQLite and rebuilt the
// in-memory structures at startup; this snapshot format plays that role:
// a store saves its dictionary-encoded tables once and later loads them
// without re-parsing N-Triples or re-sorting. ID-to-Position indexes and
// simulated base addresses are rebuilt at load (they are derived data).

const (
	snapshotMagic   = "PARJSNAP"
	snapshotVersion = 1
)

// Save writes a binary snapshot of the store.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := writeU32(bw, snapshotVersion); err != nil {
		return err
	}
	hasIndex := uint32(0)
	if len(s.so) > 0 && s.so[0].Index != nil {
		hasIndex = 1
	}
	if err := writeU32(bw, hasIndex); err != nil {
		return err
	}
	// Dictionaries, length-prefixed.
	for _, d := range []*dict.Dict{s.Resources, s.Predicates} {
		if err := writeDict(bw, d); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(len(s.so))); err != nil {
		return err
	}
	for p := range s.so {
		for _, t := range []*Table{&s.so[p], &s.os[p]} {
			if err := writeU32(bw, t.Threshold); err != nil {
				return err
			}
			if err := writeU32(bw, t.IndexThreshold); err != nil {
				return err
			}
			for _, arr := range [][]uint32{t.Keys, t.Offs, t.Vals} {
				if err := writeU32Slice(bw, arr); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// LoadSnapshot reconstructs a store written by Save. Derived structures
// (ID-to-Position indexes when the snapshot had them, simulated base
// addresses, the directory) are rebuilt.
func LoadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("store: not a PARJ snapshot (magic %q)", magic)
	}
	version, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", version)
	}
	hasIndex, err := readU32(br)
	if err != nil {
		return nil, err
	}
	st := &Store{Resources: dict.New(), Predicates: dict.New()}
	for _, d := range []*dict.Dict{st.Resources, st.Predicates} {
		if err := readDict(br, d); err != nil {
			return nil, err
		}
	}
	nPred, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if int(nPred) > st.Predicates.Len() {
		return nil, fmt.Errorf("store: snapshot has %d predicates but dictionary only %d", nPred, st.Predicates.Len())
	}
	st.so = make([]Table, nPred)
	st.os = make([]Table, nPred)
	st.directory = make([]uint32, 2*nPred)
	var base uint64 = 1 << 20
	maxID := st.Resources.MaxID()
	for p := 0; p < int(nPred); p++ {
		for ti, t := range []*Table{&st.so[p], &st.os[p]} {
			if t.Threshold, err = readU32(br); err != nil {
				return nil, err
			}
			if t.IndexThreshold, err = readU32(br); err != nil {
				return nil, err
			}
			if t.Keys, err = readU32Slice(br); err != nil {
				return nil, err
			}
			if t.Offs, err = readU32Slice(br); err != nil {
				return nil, err
			}
			if t.Vals, err = readU32Slice(br); err != nil {
				return nil, err
			}
			if err := validateCSR(t); err != nil {
				return nil, fmt.Errorf("store: snapshot predicate %d replica %d: %w", p+1, ti, err)
			}
			t.KeysBase = base
			base += uint64(len(t.Keys))*4 + 4096
			t.ValsBase = base
			base += uint64(len(t.Vals))*4 + 4096
			if hasIndex == 1 {
				t.Index = posindex.Build(t.Keys, maxID, 0)
				t.IndexBases = posindex.Bases{Words: base, Anchors: base + uint64(t.Index.Bytes())}
				base += uint64(t.Index.Bytes())*2 + 4096
			}
			if t.Threshold == 0 {
				t.Threshold = search.ValueThreshold(t.Keys, search.DefaultBinaryWindow)
			}
		}
		st.numTriples += st.so[p].NumTriples()
		st.directory[2*p] = uint32(len(st.so[p].Keys))
		st.directory[2*p+1] = uint32(len(st.os[p].Keys))
	}
	return st, nil
}

// validateCSR rejects corrupted snapshots before they can panic later.
func validateCSR(t *Table) error {
	if len(t.Offs) != len(t.Keys)+1 {
		return fmt.Errorf("offsets length %d != keys+1 (%d)", len(t.Offs), len(t.Keys)+1)
	}
	if len(t.Offs) > 0 {
		if t.Offs[0] != 0 {
			return fmt.Errorf("first offset %d != 0", t.Offs[0])
		}
		if int(t.Offs[len(t.Offs)-1]) != len(t.Vals) {
			return fmt.Errorf("last offset %d != len(vals) %d", t.Offs[len(t.Offs)-1], len(t.Vals))
		}
	}
	for i := 1; i < len(t.Keys); i++ {
		if t.Keys[i] <= t.Keys[i-1] {
			return fmt.Errorf("keys not strictly ascending at %d", i)
		}
		if t.Offs[i] < t.Offs[i-1] {
			return fmt.Errorf("offsets not monotone at %d", i)
		}
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeU32Slice(w io.Writer, xs []uint32) error {
	if err := writeU32(w, uint32(len(xs))); err != nil {
		return err
	}
	buf := make([]byte, 0, 4096)
	for _, v := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, v)
		if len(buf) >= 4096 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readU32Slice(r io.Reader) ([]uint32, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	const maxLen = 1 << 31
	if n > maxLen {
		return nil, fmt.Errorf("store: slice length %d exceeds limit", n)
	}
	out := make([]uint32, n)
	buf := make([]byte, 4096)
	i := 0
	for i < int(n) {
		want := (int(n) - i) * 4
		if want > len(buf) {
			want = len(buf)
		}
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, err
		}
		for off := 0; off < want; off += 4 {
			out[i] = binary.LittleEndian.Uint32(buf[off:])
			i++
		}
	}
	return out, nil
}

func writeDict(w io.Writer, d *dict.Dict) error {
	if err := writeU32(w, uint32(d.Len())); err != nil {
		return err
	}
	_, err := d.WriteTo(w)
	return err
}

func readDict(r *bufio.Reader, d *dict.Dict) error {
	n, err := readU32(r)
	if err != nil {
		return err
	}
	for i := 0; i < int(n); i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("store: dictionary entry %d: %w", i, err)
		}
		d.Encode(line[:len(line)-1])
	}
	return nil
}
