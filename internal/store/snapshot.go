package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"parj/internal/dict"
	"parj/internal/posindex"
	"parj/internal/search"
)

// The paper's prototype persisted its tables in SQLite and rebuilt the
// in-memory structures at startup; this snapshot format plays that role:
// a store saves its dictionary-encoded tables once and later loads them
// without re-parsing N-Triples or re-sorting. ID-to-Position indexes and
// simulated base addresses are rebuilt at load (they are derived data).
//
// Layout (version 2): magic, format version, payload, then a CRC32 (IEEE)
// of everything before it. LoadSnapshot verifies the version, the checksum,
// and the structural invariants of every table, and reports any violation
// as ErrCorruptSnapshot — a bit-flipped or truncated snapshot file must
// never panic the loader or build a store that panics later. Version-1
// snapshots (no checksum) are still read.

const (
	snapshotMagic   = "PARJSNAP"
	snapshotVersion = 2
)

// ErrCorruptSnapshot reports a snapshot that failed an integrity check:
// bad magic, unsupported version, checksum mismatch, truncation, or a
// structural invariant violation. All LoadSnapshot corruption errors wrap
// it; dispatch with errors.Is.
var ErrCorruptSnapshot = errors.New("corrupt snapshot")

// corruptf builds an ErrCorruptSnapshot-wrapping error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("store: %w: %s", ErrCorruptSnapshot, fmt.Sprintf(format, args...))
}

// Save writes a binary snapshot of the store: a format-version header, the
// dictionaries and tables, and a trailing CRC32 over everything before it.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	sum := crc32.NewIEEE()
	hw := io.MultiWriter(bw, sum) // everything written here is checksummed
	if _, err := hw.Write([]byte(snapshotMagic)); err != nil {
		return err
	}
	if err := writeU32(hw, snapshotVersion); err != nil {
		return err
	}
	hasIndex := uint32(0)
	if len(s.so) > 0 && s.so[0].Index != nil {
		hasIndex = 1
	}
	if err := writeU32(hw, hasIndex); err != nil {
		return err
	}
	// Dictionaries, length-prefixed.
	for _, d := range []*dict.Dict{s.Resources, s.Predicates} {
		if err := writeDict(hw, d); err != nil {
			return err
		}
	}
	if err := writeU32(hw, uint32(len(s.so))); err != nil {
		return err
	}
	for p := range s.so {
		for _, t := range []*Table{&s.so[p], &s.os[p]} {
			if err := writeU32(hw, t.Threshold); err != nil {
				return err
			}
			if err := writeU32(hw, t.IndexThreshold); err != nil {
				return err
			}
			for _, arr := range [][]uint32{t.Keys, t.Offs, t.Vals} {
				if err := writeU32Slice(hw, arr); err != nil {
					return err
				}
			}
		}
	}
	// The checksum itself is written outside the checksummed stream.
	if err := writeU32(bw, sum.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// snapReader reads the snapshot payload while feeding every consumed byte
// into the running checksum, so the trailing CRC can be verified without
// buffering the payload.
type snapReader struct {
	br  *bufio.Reader
	sum hash.Hash32
}

func (r *snapReader) Read(p []byte) (int, error) {
	n, err := r.br.Read(p)
	r.sum.Write(p[:n])
	return n, err
}

func (r *snapReader) ReadString(delim byte) (string, error) {
	s, err := r.br.ReadString(delim)
	r.sum.Write([]byte(s))
	return s, err
}

// LoadSnapshot reconstructs a store written by Save, verifying the format
// version, the CRC32 checksum, and every table's structural invariants.
// Derived structures (ID-to-Position indexes when the snapshot had them,
// simulated base addresses, the directory) are rebuilt. Corruption in any
// form is reported as an error wrapping ErrCorruptSnapshot.
func LoadSnapshot(r io.Reader) (*Store, error) {
	sr := &snapReader{br: bufio.NewReaderSize(r, 1<<20), sum: crc32.NewIEEE()}
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(sr, magic); err != nil {
		return nil, corruptf("snapshot header: %v", err)
	}
	if string(magic) != snapshotMagic {
		return nil, corruptf("not a PARJ snapshot (magic %q)", magic)
	}
	version, err := readU32(sr)
	if err != nil {
		return nil, corruptf("snapshot version: %v", err)
	}
	if version != 1 && version != snapshotVersion {
		return nil, corruptf("unsupported snapshot version %d", version)
	}
	hasIndex, err := readU32(sr)
	if err != nil {
		return nil, corruptf("header: %v", err)
	}
	if hasIndex > 1 {
		return nil, corruptf("index flag %d out of range", hasIndex)
	}
	st := &Store{Resources: dict.New(), Predicates: dict.New()}
	for _, d := range []*dict.Dict{st.Resources, st.Predicates} {
		if err := readDict(sr, d); err != nil {
			return nil, err
		}
	}
	nPred, err := readU32(sr)
	if err != nil {
		return nil, corruptf("predicate count: %v", err)
	}
	if int(nPred) > st.Predicates.Len() {
		return nil, corruptf("snapshot has %d predicates but dictionary only %d", nPred, st.Predicates.Len())
	}
	st.so = make([]Table, nPred)
	st.os = make([]Table, nPred)
	st.directory = make([]uint32, 2*nPred)
	var base uint64 = 1 << 20
	maxID := st.Resources.MaxID()
	for p := 0; p < int(nPred); p++ {
		for ti, t := range []*Table{&st.so[p], &st.os[p]} {
			if t.Threshold, err = readU32(sr); err != nil {
				return nil, corruptf("predicate %d: %v", p+1, err)
			}
			if t.IndexThreshold, err = readU32(sr); err != nil {
				return nil, corruptf("predicate %d: %v", p+1, err)
			}
			if t.Keys, err = readU32Slice(sr); err != nil {
				return nil, corruptf("predicate %d keys: %v", p+1, err)
			}
			if t.Offs, err = readU32Slice(sr); err != nil {
				return nil, corruptf("predicate %d offsets: %v", p+1, err)
			}
			if t.Vals, err = readU32Slice(sr); err != nil {
				return nil, corruptf("predicate %d values: %v", p+1, err)
			}
			if err := validateCSR(t); err != nil {
				return nil, corruptf("snapshot predicate %d replica %d: %v", p+1, ti, err)
			}
			// Keys are strictly ascending, so bounding the first and last
			// bounds them all; an out-of-dictionary key (IDs are 1-based)
			// would blow up the ID-to-Position index build below, before
			// the checksum gets a chance to veto.
			if len(t.Keys) > 0 && (t.Keys[0] == 0 || t.Keys[len(t.Keys)-1] > maxID) {
				return nil, corruptf("snapshot predicate %d replica %d: keys [%d,%d] outside resource id space [1,%d]",
					p+1, ti, t.Keys[0], t.Keys[len(t.Keys)-1], maxID)
			}
			t.KeysBase = base
			base += uint64(len(t.Keys))*4 + 4096
			t.ValsBase = base
			base += uint64(len(t.Vals))*4 + 4096
			if hasIndex == 1 {
				t.Index = posindex.Build(t.Keys, maxID, 0)
				t.IndexBases = posindex.Bases{Words: base, Anchors: base + uint64(t.Index.Bytes())}
				base += uint64(t.Index.Bytes())*2 + 4096
			}
			if t.Threshold == 0 {
				t.Threshold = search.ValueThreshold(t.Keys, search.DefaultBinaryWindow)
			}
		}
		st.numTriples += st.so[p].NumTriples()
		st.directory[2*p] = uint32(len(st.so[p].Keys))
		st.directory[2*p+1] = uint32(len(st.os[p].Keys))
	}
	if version >= 2 {
		// The trailing checksum is read from the raw stream — it covers
		// everything consumed so far but not itself.
		want := sr.sum.Sum32()
		got, err := readU32(sr.br)
		if err != nil {
			return nil, corruptf("missing checksum: %v", err)
		}
		if got != want {
			return nil, corruptf("checksum mismatch: stored %08x, computed %08x", got, want)
		}
	}
	return st, nil
}

// validateCSR rejects corrupted snapshots before they can panic later.
func validateCSR(t *Table) error {
	if len(t.Offs) != len(t.Keys)+1 {
		return fmt.Errorf("offsets length %d != keys+1 (%d)", len(t.Offs), len(t.Keys)+1)
	}
	if len(t.Offs) > 0 {
		if t.Offs[0] != 0 {
			return fmt.Errorf("first offset %d != 0", t.Offs[0])
		}
		if int(t.Offs[len(t.Offs)-1]) != len(t.Vals) {
			return fmt.Errorf("last offset %d != len(vals) %d", t.Offs[len(t.Offs)-1], len(t.Vals))
		}
	}
	for i := 1; i < len(t.Keys); i++ {
		if t.Keys[i] <= t.Keys[i-1] {
			return fmt.Errorf("keys not strictly ascending at %d", i)
		}
		if t.Offs[i] < t.Offs[i-1] {
			return fmt.Errorf("offsets not monotone at %d", i)
		}
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeU32Slice(w io.Writer, xs []uint32) error {
	if err := writeU32(w, uint32(len(xs))); err != nil {
		return err
	}
	buf := make([]byte, 0, 4096)
	for _, v := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, v)
		if len(buf) >= 4096 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readU32Slice(r io.Reader) ([]uint32, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	const maxLen = 1 << 31
	if n > maxLen {
		return nil, fmt.Errorf("slice length %d exceeds limit", n)
	}
	// Grow incrementally: a corrupted length prefix must fail on the missing
	// data, not translate into a multi-gigabyte up-front allocation.
	capHint := int(n)
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	out := make([]uint32, 0, capHint)
	buf := make([]byte, 4096)
	for len(out) < int(n) {
		want := (int(n) - len(out)) * 4
		if want > len(buf) {
			want = len(buf)
		}
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, err
		}
		for off := 0; off < want; off += 4 {
			out = append(out, binary.LittleEndian.Uint32(buf[off:]))
		}
	}
	return out, nil
}

func writeDict(w io.Writer, d *dict.Dict) error {
	// One consistent (length, contents) snapshot: a concurrent Encode must
	// not let the recorded count and the written lines disagree.
	strings := d.SnapshotStrings()
	if err := writeU32(w, uint32(len(strings))); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, s := range strings {
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func readDict(r *snapReader, d *dict.Dict) error {
	n, err := readU32(r)
	if err != nil {
		return corruptf("dictionary size: %v", err)
	}
	for i := 0; i < int(n); i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			return corruptf("dictionary entry %d: %v", i, err)
		}
		d.Encode(line[:len(line)-1])
	}
	return nil
}
