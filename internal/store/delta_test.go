package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"parj/internal/rdf"
)

// tripleSet collects a store's triples as decoded strings, for semantic
// comparison between a merged store and one built from scratch.
func tripleSet(t *testing.T, st *Store) map[rdf.Triple]bool {
	t.Helper()
	out := make(map[rdf.Triple]bool, st.NumTriples())
	for p := 1; p <= st.NumPredicates(); p++ {
		pred := st.Predicates.Decode(uint32(p))
		so := st.SO(uint32(p))
		for i, k := range so.Keys {
			s := st.Resources.Decode(k)
			for _, o := range so.Run(i) {
				tr := rdf.Triple{S: s, P: pred, O: st.Resources.Decode(o)}
				if out[tr] {
					t.Fatalf("duplicate triple %v in S-O tables", tr)
				}
				out[tr] = true
			}
		}
	}
	return out
}

// osTripleCount sums the O-S replica's triples, which must mirror S-O.
func osTripleCount(st *Store) int {
	n := 0
	for p := 1; p <= st.NumPredicates(); p++ {
		n += st.OS(uint32(p)).NumTriples()
	}
	return n
}

func checkTablesSorted(t *testing.T, st *Store) {
	t.Helper()
	for p := 1; p <= st.NumPredicates(); p++ {
		for _, tab := range []*Table{st.SO(uint32(p)), st.OS(uint32(p))} {
			if !sort.SliceIsSorted(tab.Keys, func(i, j int) bool { return tab.Keys[i] < tab.Keys[j] }) {
				t.Fatalf("predicate %d: keys not sorted", p)
			}
			for i := range tab.Keys {
				run := tab.Run(i)
				if !sort.SliceIsSorted(run, func(a, b int) bool { return run[a] < run[b] }) {
					t.Fatalf("predicate %d key %d: run not sorted", p, tab.Keys[i])
				}
			}
		}
	}
}

func TestDeltaVerdictSemantics(t *testing.T) {
	d := &Delta{}
	if !d.Empty() {
		t.Fatal("zero delta not empty")
	}
	d.Insert(1, 1, 2)
	d.Insert(1, 1, 2) // duplicate insert: set semantics
	adds, dels := d.Counts()
	if adds != 1 || dels != 0 {
		t.Fatalf("after double insert: adds=%d dels=%d, want 1,0", adds, dels)
	}
	if d.Ops() != 2 {
		t.Fatalf("Ops = %d, want 2 (ops count verdicts, not net pairs)", d.Ops())
	}
	d.Delete(1, 1, 2) // delete moves the pair from adds to dels
	adds, dels = d.Counts()
	if adds != 0 || dels != 1 {
		t.Fatalf("after delete: adds=%d dels=%d, want 0,1", adds, dels)
	}
	d.Insert(1, 1, 2) // reinsert: tombstone removed, add restored
	adds, dels = d.Counts()
	if adds != 1 || dels != 0 {
		t.Fatalf("after reinsert: adds=%d dels=%d, want 1,0 (no resurrection ambiguity)", adds, dels)
	}

	// Clone isolation: mutations on the clone never touch the original.
	c := d.Clone()
	c.Delete(1, 1, 2)
	c.Insert(2, 3, 4)
	if adds, _ := d.Counts(); adds != 1 {
		t.Fatal("Clone mutation leaked into original")
	}
}

func TestHasTriple(t *testing.T) {
	st := LoadTriples(paperExample, BuildOptions{})
	teaches := st.Predicates.Lookup("<teaches>")
	profA := st.Resources.Lookup("<ProfessorA>")
	math := st.Resources.Lookup("<Mathematics>")
	chem := st.Resources.Lookup("<Chemistry>")
	if !st.HasTriple(profA, teaches, math) {
		t.Fatal("present triple reported absent")
	}
	if st.HasTriple(profA, teaches, chem) {
		t.Fatal("absent triple reported present")
	}
	// Out-of-range predicate and unknown IDs must be safe, not panic.
	if st.HasTriple(profA, 0, math) || st.HasTriple(profA, uint32(st.NumPredicates()+5), math) {
		t.Fatal("out-of-range predicate reported present")
	}
}

func TestApplyDeltaSharesUntouchedTables(t *testing.T) {
	st := LoadTriples(paperExample, BuildOptions{BuildPosIndex: true})
	teaches := st.Predicates.Lookup("<teaches>")
	worksFor := st.Predicates.Lookup("<worksFor>")

	d := &Delta{}
	d.Insert(st.Resources.Lookup("<ProfessorB>"), teaches, st.Resources.Lookup("<Physics>"))
	merged := ApplyDelta(st, d, InferBuildOptions(st))

	// worksFor untouched: its slices must alias the base store's.
	if &merged.SO(worksFor).Keys[0] != &st.SO(worksFor).Keys[0] {
		t.Error("untouched predicate's S-O keys were rebuilt, want aliased")
	}
	if &merged.OS(worksFor).Vals[0] != &st.OS(worksFor).Vals[0] {
		t.Error("untouched predicate's O-S vals were rebuilt, want aliased")
	}
	// teaches touched: rebuilt storage, one more triple.
	if &merged.SO(teaches).Keys[0] == &st.SO(teaches).Keys[0] {
		t.Error("touched predicate still aliases the base")
	}
	if merged.SO(teaches).NumTriples() != st.SO(teaches).NumTriples()+1 {
		t.Errorf("touched predicate triples = %d, want %d",
			merged.SO(teaches).NumTriples(), st.SO(teaches).NumTriples()+1)
	}
	// The base store is untouched by the merge.
	if st.NumTriples() != len(paperExample) {
		t.Errorf("base store mutated: %d triples", st.NumTriples())
	}
	// Physical shape carried over: position indexes rebuilt for touched tables.
	if merged.SO(teaches).Index == nil {
		t.Error("merged table lost its ID-to-Position index")
	}
}

// TestApplyDeltaEquivalence drives randomized insert/delete batches and
// checks that the merged store holds exactly the effective triple set, that
// both replicas agree, and that a store built from the effective triples
// from scratch answers identically.
func TestApplyDeltaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	subjects := []string{"<s1>", "<s2>", "<s3>", "<s4>", "<s5>"}
	preds := []string{"<p1>", "<p2>", "<p3>"}
	objects := []string{"<o1>", "<o2>", "<o3>", "<o4>"}
	randTriple := func() rdf.Triple {
		return rdf.Triple{
			S: subjects[rng.Intn(len(subjects))],
			P: preds[rng.Intn(len(preds))],
			O: objects[rng.Intn(len(objects))],
		}
	}

	for round := 0; round < 50; round++ {
		var seed []rdf.Triple
		seen := map[rdf.Triple]bool{}
		for i := 0; i < rng.Intn(20); i++ {
			tr := randTriple()
			if !seen[tr] {
				seen[tr] = true
				seed = append(seed, tr)
			}
		}
		base := LoadTriples(seed, BuildOptions{BuildPosIndex: round%2 == 0})

		// Random verdicts, including terms and predicates the base has
		// never seen (dictionary growth through the shared dicts).
		oracle := map[rdf.Triple]bool{}
		for tr := range seen {
			oracle[tr] = true
		}
		d := &Delta{}
		for i := 0; i < 30; i++ {
			tr := randTriple()
			if rng.Intn(4) == 0 {
				tr.P = fmt.Sprintf("<new-p%d>", rng.Intn(2))
			}
			if rng.Intn(4) == 0 {
				tr.O = fmt.Sprintf("<new-o%d>", rng.Intn(3))
			}
			if rng.Intn(2) == 0 {
				d.Insert(base.Resources.Encode(tr.S), base.Predicates.Encode(tr.P), base.Resources.Encode(tr.O))
				oracle[tr] = true
			} else {
				s, p, o := base.Resources.Lookup(tr.S), base.Predicates.Lookup(tr.P), base.Resources.Lookup(tr.O)
				if s != 0 && p != 0 && o != 0 {
					d.Delete(s, p, o)
				}
				delete(oracle, tr)
			}
		}

		merged := ApplyDelta(base, d, InferBuildOptions(base))
		got := tripleSet(t, merged)
		if len(got) != len(oracle) {
			t.Fatalf("round %d: merged has %d triples, oracle %d", round, len(got), len(oracle))
		}
		for tr := range oracle {
			if !got[tr] {
				t.Fatalf("round %d: merged missing %v", round, tr)
			}
		}
		if merged.NumTriples() != len(oracle) {
			t.Fatalf("round %d: NumTriples = %d, want %d", round, merged.NumTriples(), len(oracle))
		}
		if osTripleCount(merged) != len(oracle) {
			t.Fatalf("round %d: O-S replica has %d triples, want %d", round, osTripleCount(merged), len(oracle))
		}
		checkTablesSorted(t, merged)

		// The residual of the applied delta against its own merge is empty.
		if res := d.Prune(merged); !res.Empty() {
			t.Fatalf("round %d: residual after merge not empty: %+v", round, res)
		}

		// HasTriple agrees with the oracle over the whole universe.
		for _, s := range subjects {
			for _, p := range preds {
				for _, o := range objects {
					tr := rdf.Triple{S: s, P: p, O: o}
					sid, pid, oid := merged.Resources.Lookup(s), merged.Predicates.Lookup(p), merged.Resources.Lookup(o)
					has := sid != 0 && pid != 0 && oid != 0 && merged.HasTriple(sid, pid, oid)
					if has != oracle[tr] {
						t.Fatalf("round %d: HasTriple(%v) = %v, oracle %v", round, tr, has, oracle[tr])
					}
				}
			}
		}
	}
}

func TestPruneResidual(t *testing.T) {
	st := LoadTriples(paperExample, BuildOptions{})
	teaches := st.Predicates.Lookup("<teaches>")
	profA := st.Resources.Lookup("<ProfessorA>")
	math := st.Resources.Lookup("<Mathematics>")
	phys := st.Resources.Lookup("<Physics>")
	novel := st.Resources.Encode("<Robotics>")

	d := &Delta{}
	d.Insert(profA, teaches, math)  // already in base: prunes away
	d.Delete(profA, teaches, phys)  // in base: survives as tombstone
	d.Insert(profA, teaches, novel) // not in base: survives as add
	d.Delete(profA, teaches, novel) // verdict flips: tombstone of absent pair prunes

	res := d.Prune(st)
	adds, dels := res.Counts()
	if adds != 0 || dels != 1 {
		t.Fatalf("residual adds=%d dels=%d, want 0,1", adds, dels)
	}
	if res.Ops() != 1 {
		t.Fatalf("residual Ops = %d, want net pair count 1", res.Ops())
	}
	if !st.HasTriple(profA, teaches, phys) {
		t.Fatal("precondition: base should contain the tombstoned pair")
	}
}

func TestInferBuildOptions(t *testing.T) {
	with := LoadTriples(paperExample, BuildOptions{BuildPosIndex: true})
	without := LoadTriples(paperExample, BuildOptions{})
	if !InferBuildOptions(with).BuildPosIndex {
		t.Error("indexed store inferred as unindexed")
	}
	if InferBuildOptions(without).BuildPosIndex {
		t.Error("unindexed store inferred as indexed")
	}
}
