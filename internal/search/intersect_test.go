package search

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSeekGE(t *testing.T) {
	arr := []uint32{2, 4, 4, 7, 9, 9, 9, 15}
	cases := []struct {
		v    uint32
		from int
		want int
	}{
		{0, 0, 0},
		{2, 0, 0},
		{3, 0, 1},
		{4, 0, 1},
		{4, 2, 2},
		{5, 0, 3},
		{9, 0, 4},
		{10, 0, 7},
		{15, 0, 7},
		{16, 0, 8},
		{2, 5, 5},  // cursor past the value: stays put
		{99, 7, 8}, // seek off the end
		{7, -3, 3}, // negative cursor clamps to zero
	}
	for _, c := range cases {
		if got := SeekGE(arr, c.v, c.from); got != c.want {
			t.Errorf("SeekGE(arr, %d, %d) = %d, want %d", c.v, c.from, got, c.want)
		}
	}
	if got := SeekGE(nil, 5, 0); got != 0 {
		t.Errorf("SeekGE(nil) = %d, want 0", got)
	}
}

// TestSeekGERandom cross-checks the galloping seek against sort.Search over
// random sorted arrays (with duplicates) and random cursors.
func TestSeekGERandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		arr := randSorted(rng, rng.Intn(200), 300)
		v := uint32(rng.Intn(320))
		from := rng.Intn(len(arr) + 1)
		want := from + sort.Search(len(arr)-from, func(i int) bool { return arr[from+i] >= v })
		if got := SeekGE(arr, v, from); got != want {
			t.Fatalf("iter %d: SeekGE(%v, %d, %d) = %d, want %d", iter, arr, v, from, got, want)
		}
	}
}

// naiveIntersect is the oracle: distinct values present in every list,
// computed with maps and a sort.
func naiveIntersect(lists ...[]uint32) []uint32 {
	if len(lists) == 0 {
		return nil
	}
	counts := map[uint32]int{}
	for _, l := range lists {
		seen := map[uint32]bool{}
		for _, v := range l {
			if !seen[v] {
				seen[v] = true
				counts[v]++
			}
		}
	}
	var out []uint32
	for v, c := range counts {
		if c == len(lists) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randSorted(rng *rand.Rand, n, max int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(rng.Intn(max))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func checkIntersect(t *testing.T, lists ...[]uint32) {
	t.Helper()
	want := naiveIntersect(lists...)
	got := Intersect(nil, nil, lists...)
	if len(got) != len(want) {
		t.Fatalf("Intersect(%v): got %v, want %v", lists, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Intersect(%v): got %v, want %v", lists, got, want)
		}
	}
}

func TestIntersectEdgeCases(t *testing.T) {
	checkIntersect(t)                                                   // zero lists
	checkIntersect(t, []uint32{})                                       // one empty list
	checkIntersect(t, []uint32{1, 2, 3})                                // single list copies distinct
	checkIntersect(t, []uint32{1, 1, 2, 2})                             // single list with dups
	checkIntersect(t, []uint32{5}, []uint32{5})                         // singletons match
	checkIntersect(t, []uint32{5}, []uint32{6})                         // singletons miss
	checkIntersect(t, []uint32{1, 2}, nil)                              // empty vs non-empty
	checkIntersect(t, []uint32{1, 3, 5}, []uint32{2, 4})                // disjoint
	checkIntersect(t, []uint32{0, ^uint32(0)}, []uint32{0, ^uint32(0)}) // max value
	checkIntersect(t,
		[]uint32{1, 1, 2, 3, 3, 3},
		[]uint32{1, 3, 3},
		[]uint32{0, 1, 2, 3}) // duplicates count once across three lists
}

// TestIntersectRandom is the property test the ISSUE asks for: random
// sorted runs (including empty, singleton and duplicate-heavy ones) across
// varying arities, checked against the naive oracle.
func TestIntersectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cursors := make([]int, 8)
	for iter := 0; iter < 1000; iter++ {
		k := 1 + rng.Intn(5)
		lists := make([][]uint32, k)
		for i := range lists {
			var n int
			switch rng.Intn(4) {
			case 0:
				n = rng.Intn(2) // empty or singleton
			case 1:
				n = rng.Intn(8)
			default:
				n = rng.Intn(120)
			}
			// A small value universe forces duplicates and overlaps.
			lists[i] = randSorted(rng, n, 2+rng.Intn(60))
		}
		want := naiveIntersect(lists...)
		got := Intersect(nil, cursors, lists...)
		if len(got) != len(want) {
			t.Fatalf("iter %d: got %v, want %v (lists %v)", iter, got, want, lists)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d: got %v, want %v (lists %v)", iter, got, want, lists)
			}
		}
	}
}

// TestIntersectAppends verifies dst is appended to, not clobbered, so
// per-level scratch buffers can be reused with dst[:0].
func TestIntersectAppends(t *testing.T) {
	dst := []uint32{99}
	got := Intersect(dst, nil, []uint32{1, 2}, []uint32{2, 3})
	if len(got) != 2 || got[0] != 99 || got[1] != 2 {
		t.Fatalf("got %v, want [99 2]", got)
	}
}
