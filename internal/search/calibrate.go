package search

import "time"

// Calibration defaults. The paper reports that on its test machine the
// calibrated window is about 200 positions when the alternative is binary
// search and about 20 positions when the alternative is the ID-to-Position
// index; these serve as starting points and as deterministic fallbacks.
const (
	DefaultBinaryWindow = 200
	DefaultIndexWindow  = 20

	// DefaultRatio is the stop ratio for calibration: iteration ends when
	// the larger of the two strategy timings is within this factor of the
	// smaller.
	DefaultRatio = 1.15

	// maxCalibrationRounds bounds the calibration loop; timing noise could
	// otherwise make the ratio oscillate above the stop threshold forever.
	maxCalibrationRounds = 24
)

// CalibrateOptions configures Calibrate.
type CalibrateOptions struct {
	// NoOfSearches is how many probes to time per strategy per round.
	NoOfSearches int
	// StartingWindowSize is the initial window (positions).
	StartingWindowSize int
	// Ratio is the stop threshold (>1); see DefaultRatio.
	Ratio float64
}

func (o *CalibrateOptions) fill() {
	if o.NoOfSearches <= 0 {
		o.NoOfSearches = 2000
	}
	if o.StartingWindowSize <= 0 {
		o.StartingWindowSize = DefaultBinaryWindow
	}
	if o.Ratio <= 1 {
		o.Ratio = DefaultRatio
	}
}

// Locator is an alternative point-lookup strategy competing against
// sequential search during calibration — full-array binary search or an
// ID-to-Position index lookup.
type Locator func(arr []uint32, value uint32, cur *int) (int, bool)

// Calibrate implements Algorithm 2 of the paper. It searches for the window
// size (a distance in array positions) at which locate and Sequential take
// roughly equal time, by repeatedly timing NoOfSearches probes whose keys
// are spaced CurrentWindowSize positions apart and rescaling the window by
// the observed time ratio until the ratio drops below opts.Ratio.
//
// The returned window is a position count; convert it with ValueThreshold
// before use. Calibration runs once after data loading (paper §4.1), never
// on the query path.
func Calibrate(arr []uint32, locate Locator, opts CalibrateOptions) int {
	opts.fill()
	if len(arr) < 4 {
		return opts.StartingWindowSize
	}
	avgGap := AvgGap(arr)
	if avgGap <= 0 {
		avgGap = 1
	}
	next := float64(opts.StartingWindowSize)
	window := next
	for round := 0; round < maxCalibrationRounds; round++ {
		window = next
		if window < 1 {
			window = 1
		}
		if window > float64(len(arr)) {
			window = float64(len(arr))
		}
		totalGap := avgGap * window
		if totalGap < 1 {
			totalGap = 1
		}

		timeLocate := timeProbes(arr, locate, totalGap, opts.NoOfSearches)
		timeScan := timeProbes(arr, adaptAlwaysSequential, totalGap, opts.NoOfSearches)

		var fraction float64
		if timeLocate > timeScan {
			fraction = float64(timeLocate) / float64(timeScan)
			next = window * fraction
		} else {
			fraction = float64(timeScan) / float64(timeLocate)
			next = window / fraction
		}
		if fraction <= opts.Ratio {
			break
		}
	}
	if window < 1 {
		return 1
	}
	return int(window)
}

func adaptAlwaysSequential(arr []uint32, value uint32, cur *int) (int, bool) {
	return Sequential(arr, value, cur)
}

// timeProbes times n probes with keys spaced gap apart in value space,
// wrapping around the array's value range.
func timeProbes(arr []uint32, probe Locator, gap float64, n int) time.Duration {
	lo, hi := float64(arr[0]), float64(arr[len(arr)-1])
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	cur := 0
	toFind := lo
	start := time.Now()
	for k := 0; k < n; k++ {
		probe(arr, uint32(toFind), &cur)
		toFind += gap
		if toFind > hi {
			toFind = lo + (toFind-hi) // wrap to keep probes in range
			if toFind > hi {
				toFind = lo
			}
			cur = 0
		}
	}
	return time.Since(start)
}
