// intersect.go — sorted-array intersection primitives for the worst-case-
// optimal join operator (core/wcoj.go). A leapfrog intersection repeatedly
// seeks each array to the current candidate value; the seek must be cheap
// when the arrays are of very different sizes, so it gallops (exponential
// probing) from the cursor before binary-searching the bracketed window —
// the standard trick that makes a k-way intersection cost
// O(min_len · Σ log(len_i)) instead of O(Σ len_i).

package search

// SeekGE returns the smallest index i in [from, len(arr)) with
// arr[i] >= v, or len(arr) when no such element exists. It gallops from
// the cursor: doubling probes bracket the answer in O(log distance), then a
// binary search pins it inside the bracket. arr must be sorted ascending
// (duplicates allowed).
func SeekGE(arr []uint32, v uint32, from int) int {
	n := len(arr)
	if from < 0 {
		from = 0
	}
	if from >= n || arr[from] >= v {
		return from
	}
	// arr[from] < v: gallop until a probe lands at or past v.
	bound := 1
	for from+bound < n && arr[from+bound] < v {
		bound <<= 1
	}
	lo := from + bound>>1 + 1 // last probe below v (or from itself)
	hi := from + bound
	if hi > n {
		hi = n
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Intersect appends to dst the distinct values present in every list and
// returns the extended slice — the k-way leapfrog intersection. Lists must
// be sorted ascending; duplicates within a list are tolerated and count
// once. cursors is optional scratch of length >= len(lists) (allocated when
// too short), so hot callers can amortize it. With zero lists or any empty
// list the result is dst unchanged; with one list the distinct values of
// that list are appended.
func Intersect(dst []uint32, cursors []int, lists ...[]uint32) []uint32 {
	k := len(lists)
	if k == 0 {
		return dst
	}
	for _, l := range lists {
		if len(l) == 0 {
			return dst
		}
	}
	if k == 1 {
		l := lists[0]
		for i, v := range l {
			if i == 0 || v != l[i-1] {
				dst = append(dst, v)
			}
		}
		return dst
	}
	if len(cursors) < k {
		cursors = make([]int, k)
	}
	for i := 0; i < k; i++ {
		cursors[i] = 0
	}
	// v is the current candidate (the max seen so far); agreed counts how
	// many consecutive lists matched it. When all k agree, v is emitted and
	// the last-seeking list advances past it to propose the next candidate.
	v := lists[0][0]
	agreed := 1
	li := 1
	for {
		l := lists[li]
		c := SeekGE(l, v, cursors[li])
		if c == len(l) {
			return dst
		}
		cursors[li] = c
		if l[c] == v {
			agreed++
			if agreed == k {
				dst = append(dst, v)
				if v == ^uint32(0) {
					return dst
				}
				c = SeekGE(l, v+1, c)
				if c == len(l) {
					return dst
				}
				cursors[li] = c
				v = l[c]
				agreed = 1
			}
		} else {
			v = l[c]
			agreed = 1
		}
		li++
		if li == k {
			li = 0
		}
	}
}
