// Package search implements the probe primitives of PARJ's adaptive join
// (paper §4.1): cursor-resuming sequential search, full-array binary search,
// and the per-probe adaptive switch between them (Algorithm 1), plus the
// timing-based calibration that determines the switch threshold
// (Algorithm 2).
//
// All searches operate on sorted []uint32 arrays (the distinct-subject array
// of an S-O table or the distinct-object array of an O-S table) and maintain
// a cursor: the index of the last accessed element. The cursor is updated on
// both successful and unsuccessful searches, so a later sequential search
// resumes where the previous probe ended — this is what makes a run of
// nearly-sorted probe keys behave like a merge join.
package search

// Stats counts the probe-strategy decisions taken by the adaptive search.
// The engine aggregates one Stats per worker; Table 6 of the paper reports
// these counts.
type Stats struct {
	Sequential uint64 // probes answered by sequential search
	Binary     uint64 // probes answered by binary search
	Index      uint64 // probes answered by ID-to-Position index lookup
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Sequential += other.Sequential
	s.Binary += other.Binary
	s.Index += other.Index
}

// Total reports the total number of probes.
func (s *Stats) Total() uint64 { return s.Sequential + s.Binary + s.Index }

// Sequential scans arr for value starting from the cursor position, moving
// forward or backward as needed. It returns the position of value and true,
// or the position of the nearest element examined and false. The cursor is
// set to the last accessed element in either case.
func Sequential(arr []uint32, value uint32, cur *int) (int, bool) {
	i := *cur
	if i < 0 {
		i = 0
	}
	if i >= len(arr) {
		i = len(arr) - 1
	}
	if len(arr) == 0 {
		return 0, false
	}
	switch {
	case arr[i] < value:
		for i+1 < len(arr) && arr[i+1] <= value {
			i++
		}
	case arr[i] > value:
		for i > 0 && arr[i] > value {
			i--
		}
		// We may have stepped one past a smaller element; that is fine:
		// arr[i] <= value or i == 0.
	}
	*cur = i
	return i, arr[i] == value
}

// Binary performs a binary search over the whole array. Per the paper, the
// search deliberately spans the full array rather than using the cursor to
// narrow the range: the positions probed first are shared across searches
// and therefore stay cached. The cursor is set to the final probe position.
func Binary(arr []uint32, value uint32, cur *int) (int, bool) {
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] < value {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := lo
	if pos == len(arr) {
		pos = len(arr) - 1
	}
	if pos < 0 {
		*cur = 0
		return 0, false
	}
	*cur = pos
	return pos, arr[pos] == value
}

// Adaptive implements Algorithm 1: it compares the arithmetic distance
// between the element under the cursor and the probe value against a
// per-array threshold (computed from a calibrated window size by
// ValueThreshold) and dispatches to Sequential or Binary. The counter for
// the chosen strategy in stats is incremented; stats may be nil.
func Adaptive(arr []uint32, value uint32, cur *int, threshold uint32, stats *Stats) (int, bool) {
	if len(arr) == 0 {
		return 0, false
	}
	i := *cur
	if i < 0 || i >= len(arr) {
		i = 0
		*cur = 0
	}
	dist := int64(arr[i]) - int64(value)
	if dist < 0 {
		dist = -dist
	}
	if dist <= int64(threshold) {
		if stats != nil {
			stats.Sequential++
		}
		return Sequential(arr, value, cur)
	}
	if stats != nil {
		stats.Binary++
	}
	return Binary(arr, value, cur)
}

// AvgGap estimates the arithmetic difference between consecutive elements
// under the paper's uniform-distribution assumption:
// (arr[size-1] - arr[0]) / size.
func AvgGap(arr []uint32) float64 {
	if len(arr) < 2 {
		return 1
	}
	return float64(arr[len(arr)-1]-arr[0]) / float64(len(arr))
}

// ValueThreshold converts a calibrated position-window size into the
// arithmetic-value threshold used by Adaptive for a specific array, so that
// the run-time decision is a single subtraction and comparison (paper §4.1).
func ValueThreshold(arr []uint32, window int) uint32 {
	if window <= 0 {
		return 0
	}
	v := AvgGap(arr) * float64(window)
	if v < 1 {
		return 1
	}
	if v > float64(1<<31) {
		return 1 << 31
	}
	return uint32(v)
}
