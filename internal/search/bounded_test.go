package search

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property: BoundedBinary answers membership exactly like the reference
// search for any cursor position.
func TestQuickBoundedBinaryEquivalence(t *testing.T) {
	f := func(raw []uint32, probe uint32, curSeed uint16) bool {
		if len(raw) == 0 {
			return true
		}
		arr := append([]uint32(nil), raw...)
		sort.Slice(arr, func(i, j int) bool { return arr[i] < arr[j] })
		arr = dedup(arr)
		cur := int(curSeed) % len(arr)
		wantPos, wantOK := refSearch(arr, probe)
		pos, ok := BoundedBinary(arr, probe, &cur)
		if ok != wantOK {
			return false
		}
		if ok && pos != wantPos {
			return false
		}
		return cur >= 0 && cur < len(arr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBoundedBinaryChained(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	arr := sortedArr(rng, 10000, 4)
	cur := 0
	for trial := 0; trial < 20000; trial++ {
		p := arr[0] + uint32(rng.Intn(int(arr[len(arr)-1]-arr[0])+3))
		wantPos, wantOK := refSearch(arr, p)
		pos, ok := BoundedBinary(arr, p, &cur)
		if ok != wantOK || (ok && pos != wantPos) {
			t.Fatalf("probe %d: got (%d,%v), want (%d,%v)", p, pos, ok, wantPos, wantOK)
		}
	}
}

func TestBoundedBinaryEmpty(t *testing.T) {
	cur := 3
	if _, ok := BoundedBinary(nil, 5, &cur); ok {
		t.Error("BoundedBinary(nil) found something")
	}
}

// BenchmarkBinaryVariants is the ablation behind the paper's design note
// in §4.1: full-array binary search vs cursor-bounded binary search on an
// ascending probe stream. The paper found full-array faster because its
// early probe positions stay cached.
func BenchmarkBinaryVariants(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	arr := sortedArr(rng, 1<<22, 3)
	// Probes jump forward by random strides, as successive pipeline keys do.
	probes := make([]uint32, 4096)
	v := arr[0]
	for i := range probes {
		v += uint32(rng.Intn(2000))
		if v > arr[len(arr)-1] {
			v = arr[0]
		}
		probes[i] = v
	}
	b.Run("full-array", func(b *testing.B) {
		cur := 0
		for i := 0; i < b.N; i++ {
			Binary(arr, probes[i&4095], &cur)
		}
	})
	b.Run("cursor-bounded", func(b *testing.B) {
		cur := 0
		for i := 0; i < b.N; i++ {
			BoundedBinary(arr, probes[i&4095], &cur)
		}
	})
}
