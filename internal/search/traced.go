package search

// Tracer observes the memory address of every array element a traced search
// touches. cachesim.Hierarchy implements it; Table 6 of the paper is
// reproduced by replaying searches through such a hierarchy.
type Tracer interface {
	Access(addr uint64)
}

// SequentialTraced is Sequential with every element access reported to t.
// base is the simulated base address of arr; elements are 4 bytes.
func SequentialTraced(arr []uint32, value uint32, cur *int, base uint64, t Tracer) (int, bool) {
	i := *cur
	if i < 0 {
		i = 0
	}
	if i >= len(arr) {
		i = len(arr) - 1
	}
	if len(arr) == 0 {
		return 0, false
	}
	t.Access(base + uint64(i)*4)
	switch {
	case arr[i] < value:
		for i+1 < len(arr) {
			t.Access(base + uint64(i+1)*4)
			if arr[i+1] > value {
				break
			}
			i++
		}
	case arr[i] > value:
		for i > 0 {
			i--
			t.Access(base + uint64(i)*4)
			if arr[i] <= value {
				break
			}
		}
	}
	*cur = i
	return i, arr[i] == value
}

// BinaryTraced is Binary with every probe reported to t.
func BinaryTraced(arr []uint32, value uint32, cur *int, base uint64, t Tracer) (int, bool) {
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		t.Access(base + uint64(mid)*4)
		if arr[mid] < value {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := lo
	if pos == len(arr) {
		pos = len(arr) - 1
	}
	if pos < 0 {
		*cur = 0
		return 0, false
	}
	t.Access(base + uint64(pos)*4)
	*cur = pos
	return pos, arr[pos] == value
}

// AdaptiveTraced mirrors Adaptive, dispatching to the traced variants.
func AdaptiveTraced(arr []uint32, value uint32, cur *int, threshold uint32, base uint64, t Tracer, stats *Stats) (int, bool) {
	if len(arr) == 0 {
		return 0, false
	}
	i := *cur
	if i < 0 || i >= len(arr) {
		i = 0
		*cur = 0
	}
	t.Access(base + uint64(i)*4)
	dist := int64(arr[i]) - int64(value)
	if dist < 0 {
		dist = -dist
	}
	if dist <= int64(threshold) {
		if stats != nil {
			stats.Sequential++
		}
		return SequentialTraced(arr, value, cur, base, t)
	}
	if stats != nil {
		stats.Binary++
	}
	return BinaryTraced(arr, value, cur, base, t)
}
