package search

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type countingTracer struct{ n int }

func (c *countingTracer) Access(uint64) { c.n++ }

// Property: the traced variants return exactly what the plain variants
// return and leave the cursor in the same place.
func TestQuickTracedEquivalence(t *testing.T) {
	f := func(raw []uint32, probes []uint32, window uint8) bool {
		if len(raw) == 0 {
			return true
		}
		arr := append([]uint32(nil), raw...)
		sort.Slice(arr, func(i, j int) bool { return arr[i] < arr[j] })
		arr = dedup(arr)
		threshold := ValueThreshold(arr, int(window))
		curA, curB := 0, 0
		tr := &countingTracer{}
		for _, p := range probes {
			posA, okA := Adaptive(arr, p, &curA, threshold, nil)
			posB, okB := AdaptiveTraced(arr, p, &curB, threshold, 0, tr, nil)
			if posA != posB || okA != okB || curA != curB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTracedAccessCounts(t *testing.T) {
	arr := make([]uint32, 1024)
	for i := range arr {
		arr[i] = uint32(i * 2)
	}
	// Binary search over 1024 elements touches about log2(1024)+1 elements.
	tr := &countingTracer{}
	cur := 0
	BinaryTraced(arr, arr[700], &cur, 0, tr)
	if tr.n < 10 || tr.n > 13 {
		t.Errorf("BinaryTraced touched %d elements, want ~11", tr.n)
	}
	// Sequential from an adjacent cursor touches a couple of elements.
	tr = &countingTracer{}
	cur = 699
	SequentialTraced(arr, arr[700], &cur, 0, tr)
	if tr.n > 3 {
		t.Errorf("adjacent SequentialTraced touched %d elements, want <= 3", tr.n)
	}
}

func TestTracedEmpty(t *testing.T) {
	tr := &countingTracer{}
	cur := 0
	if _, ok := SequentialTraced(nil, 1, &cur, 0, tr); ok {
		t.Error("SequentialTraced(nil) found something")
	}
	if _, ok := BinaryTraced(nil, 1, &cur, 0, tr); ok {
		t.Error("BinaryTraced(nil) found something")
	}
	if _, ok := AdaptiveTraced(nil, 1, &cur, 5, 0, tr, nil); ok {
		t.Error("AdaptiveTraced(nil) found something")
	}
}

func TestTracedRandomProbesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	arr := sortedArr(rng, 4096, 5)
	threshold := ValueThreshold(arr, 100)
	tr := &countingTracer{}
	cur := 0
	for trial := 0; trial < 5000; trial++ {
		p := arr[0] + uint32(rng.Intn(int(arr[len(arr)-1]-arr[0])+5))
		wantPos, wantOK := refSearch(arr, p)
		pos, ok := AdaptiveTraced(arr, p, &cur, threshold, 0, tr, nil)
		if ok != wantOK || (ok && pos != wantPos) {
			t.Fatalf("probe %d: got (%d,%v), want (%d,%v)", p, pos, ok, wantPos, wantOK)
		}
	}
	if tr.n == 0 {
		t.Error("tracer saw no accesses")
	}
}
