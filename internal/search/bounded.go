package search

// BoundedBinary is the alternative the paper considered and rejected
// (§4.1): when the probe value is known to lie beyond the cursor, binary
// search could be restricted to the sub-array after (or before) the cursor
// instead of spanning the whole array. In theory this saves steps; in
// practice the paper found full-array binary search faster, because the
// positions probed in the first steps are the same across searches and
// therefore stay cached, whereas bounded ranges shift with the cursor.
// This implementation exists for the ablation benchmark that reproduces
// that design decision; the engine always uses Binary.
func BoundedBinary(arr []uint32, value uint32, cur *int) (int, bool) {
	if len(arr) == 0 {
		return 0, false
	}
	i := *cur
	if i < 0 || i >= len(arr) {
		i = 0
	}
	lo, hi := 0, len(arr)
	switch {
	case arr[i] < value:
		lo = i + 1
	case arr[i] > value:
		hi = i
	default:
		*cur = i
		return i, true
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] < value {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := lo
	if pos == len(arr) {
		pos = len(arr) - 1
	}
	*cur = pos
	return pos, arr[pos] == value
}
