package search

import "testing"

// TestProbeEdgeCases drives every probe primitive through the boundary
// shapes that the randomized equivalence tests only hit by chance: empty
// key arrays, keys below/above the whole range, cursors already past the
// key in both directions, and single-element windows. Each function must
// report membership exactly and leave the cursor on a valid position.
func TestProbeEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		arr   []uint32
		value uint32
		cur   int
	}{
		{"empty", nil, 5, 0},
		{"empty negative cursor", nil, 5, -3},
		{"below range", []uint32{10, 20, 30}, 1, 0},
		{"below range cursor high", []uint32{10, 20, 30}, 1, 2},
		{"above range", []uint32{10, 20, 30}, 99, 0},
		{"above range cursor high", []uint32{10, 20, 30}, 99, 2},
		{"cursor past key forward", []uint32{10, 20, 30, 40}, 20, 3},
		{"cursor past key backward", []uint32{10, 20, 30, 40}, 30, 0},
		{"cursor out of bounds high", []uint32{10, 20, 30}, 20, 17},
		{"cursor out of bounds negative", []uint32{10, 20, 30}, 20, -4},
		{"single element hit", []uint32{42}, 42, 0},
		{"single element below", []uint32{42}, 7, 0},
		{"single element above", []uint32{42}, 77, 0},
		{"first element", []uint32{10, 20, 30}, 10, 2},
		{"last element", []uint32{10, 20, 30}, 30, 0},
		{"between elements", []uint32{10, 20, 40, 50}, 30, 0},
		{"duplicate run", []uint32{10, 20, 20, 20, 30}, 20, 4},
	}

	probes := []struct {
		name string
		fn   func(arr []uint32, value uint32, cur *int) (int, bool)
	}{
		{"Sequential", Sequential},
		{"Binary", Binary},
		{"BoundedBinary", BoundedBinary},
		{"Adaptive", func(arr []uint32, value uint32, cur *int) (int, bool) {
			return Adaptive(arr, value, cur, ValueThreshold(arr, 4), nil)
		}},
	}

	for _, tc := range cases {
		for _, p := range probes {
			t.Run(p.name+"/"+tc.name, func(t *testing.T) {
				member := false
				for _, v := range tc.arr {
					if v == tc.value {
						member = true
					}
				}
				cur := tc.cur
				pos, ok := p.fn(tc.arr, tc.value, &cur)
				if ok != member {
					t.Errorf("%s(%v, %d, cur=%d) found=%v, want %v",
						p.name, tc.arr, tc.value, tc.cur, ok, member)
				}
				if len(tc.arr) == 0 {
					return // pos/cursor carry no meaning on empty input
				}
				if pos < 0 || pos >= len(tc.arr) {
					t.Fatalf("position %d out of range [0,%d)", pos, len(tc.arr))
				}
				if cur < 0 || cur >= len(tc.arr) {
					t.Fatalf("cursor left at %d, out of range [0,%d)", cur, len(tc.arr))
				}
				if ok && tc.arr[pos] != tc.value {
					t.Errorf("found=true but arr[%d]=%d != %d", pos, tc.arr[pos], tc.value)
				}
			})
		}
	}
}

// TestProbeCursorResume checks the property the cursor exists for: after a
// probe, a follow-up Sequential probe for the same value must succeed
// without moving (the cursor points at, or adjacent to, the value's run).
func TestProbeCursorResume(t *testing.T) {
	arr := []uint32{5, 10, 15, 20, 25, 30, 35}
	for _, p := range []struct {
		name string
		fn   func(arr []uint32, value uint32, cur *int) (int, bool)
	}{
		{"Sequential", Sequential},
		{"Binary", Binary},
		{"BoundedBinary", BoundedBinary},
	} {
		cur := 0
		if _, ok := p.fn(arr, 25, &cur); !ok {
			t.Fatalf("%s lost 25", p.name)
		}
		pos, ok := Sequential(arr, 25, &cur)
		if !ok || arr[pos] != 25 {
			t.Errorf("%s left cursor at %d; Sequential resume found=%v pos=%d", p.name, cur, ok, pos)
		}
	}
}
