package search

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sortedArr builds a sorted array of n distinct values with average gap g.
func sortedArr(rng *rand.Rand, n, g int) []uint32 {
	arr := make([]uint32, n)
	v := uint32(1)
	for i := range arr {
		v += uint32(1 + rng.Intn(2*g))
		arr[i] = v
	}
	return arr
}

func refSearch(arr []uint32, value uint32) (int, bool) {
	i := sort.Search(len(arr), func(i int) bool { return arr[i] >= value })
	return i, i < len(arr) && arr[i] == value
}

func TestBinaryFindsAllElements(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	arr := sortedArr(rng, 1000, 5)
	for i, v := range arr {
		cur := rng.Intn(len(arr))
		pos, ok := Binary(arr, v, &cur)
		if !ok || pos != i {
			t.Fatalf("Binary(%d) = (%d,%v), want (%d,true)", v, pos, ok, i)
		}
		if cur != pos {
			t.Fatalf("cursor = %d, want %d", cur, pos)
		}
	}
}

func TestBinaryMisses(t *testing.T) {
	arr := []uint32{10, 20, 30}
	cur := 0
	if _, ok := Binary(arr, 15, &cur); ok {
		t.Error("Binary(15) found, want miss")
	}
	if _, ok := Binary(arr, 5, &cur); ok {
		t.Error("Binary(5) found, want miss")
	}
	if _, ok := Binary(arr, 35, &cur); ok {
		t.Error("Binary(35) found, want miss")
	}
}

func TestSequentialForwardAndBackward(t *testing.T) {
	arr := []uint32{2, 4, 6, 8, 10, 12}
	cur := 0
	pos, ok := Sequential(arr, 8, &cur)
	if !ok || pos != 3 {
		t.Fatalf("forward: (%d,%v), want (3,true)", pos, ok)
	}
	pos, ok = Sequential(arr, 4, &cur) // backward from 3
	if !ok || pos != 1 {
		t.Fatalf("backward: (%d,%v), want (1,true)", pos, ok)
	}
	if _, ok = Sequential(arr, 5, &cur); ok {
		t.Error("Sequential(5) found, want miss")
	}
	if _, ok = Sequential(arr, 100, &cur); ok {
		t.Error("Sequential(100) found, want miss")
	}
	if cur != len(arr)-1 {
		t.Errorf("cursor after overrun = %d, want %d", cur, len(arr)-1)
	}
	if _, ok = Sequential(arr, 1, &cur); ok {
		t.Error("Sequential(1) found, want miss")
	}
	if cur != 0 {
		t.Errorf("cursor after underrun = %d, want 0", cur)
	}
}

func TestSequentialEmptyAndClampedCursor(t *testing.T) {
	var empty []uint32
	cur := 5
	if _, ok := Sequential(empty, 1, &cur); ok {
		t.Error("Sequential on empty found something")
	}
	arr := []uint32{1, 2, 3}
	cur = 99 // out of range: must clamp, not panic
	pos, ok := Sequential(arr, 2, &cur)
	if !ok || pos != 1 {
		t.Errorf("clamped Sequential = (%d,%v), want (1,true)", pos, ok)
	}
	cur = -3
	pos, ok = Sequential(arr, 3, &cur)
	if !ok || pos != 2 {
		t.Errorf("negative-cursor Sequential = (%d,%v), want (2,true)", pos, ok)
	}
}

func TestAdaptiveMatchesBinarySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	arr := sortedArr(rng, 5000, 3)
	threshold := ValueThreshold(arr, 200)
	var stats Stats
	cur := 0
	for trial := 0; trial < 20000; trial++ {
		v := arr[0] + uint32(rng.Intn(int(arr[len(arr)-1]-arr[0])+10))
		wantPos, wantOK := refSearch(arr, v)
		pos, ok := Adaptive(arr, v, &cur, threshold, &stats)
		if ok != wantOK {
			t.Fatalf("Adaptive(%d) found=%v, want %v", v, ok, wantOK)
		}
		if ok && pos != wantPos {
			t.Fatalf("Adaptive(%d) pos=%d, want %d", v, pos, wantPos)
		}
	}
	if stats.Sequential == 0 || stats.Binary == 0 {
		t.Errorf("expected a mix of strategies, got %+v", stats)
	}
}

func TestAdaptiveChoosesSequentialForNearKeys(t *testing.T) {
	arr := make([]uint32, 1000)
	for i := range arr {
		arr[i] = uint32(i * 10)
	}
	threshold := ValueThreshold(arr, 200)
	var stats Stats
	cur := 0
	// Walk keys in order with tiny gaps: every probe should be sequential.
	for i := 0; i < len(arr); i++ {
		Adaptive(arr, arr[i], &cur, threshold, &stats)
	}
	if stats.Binary != 0 {
		t.Errorf("near-key walk used %d binary searches, want 0", stats.Binary)
	}
	// A far jump must use binary search.
	cur = 0
	Adaptive(arr, arr[len(arr)-1], &cur, threshold, &stats)
	if stats.Binary != 1 {
		t.Errorf("far jump: Binary = %d, want 1", stats.Binary)
	}
}

func TestAdaptiveEmptyArray(t *testing.T) {
	cur := 0
	if _, ok := Adaptive(nil, 5, &cur, 100, nil); ok {
		t.Error("Adaptive(nil) found something")
	}
}

func TestValueThreshold(t *testing.T) {
	arr := []uint32{0, 1000000}
	if got := ValueThreshold(arr, 0); got != 0 {
		t.Errorf("window 0: got %d, want 0", got)
	}
	arr = make([]uint32, 100)
	for i := range arr {
		arr[i] = uint32(i * 7)
	}
	got := ValueThreshold(arr, 10)
	if got < 60 || got > 80 {
		t.Errorf("ValueThreshold = %d, want ~70", got)
	}
	if got := ValueThreshold([]uint32{5}, 10); got < 1 {
		t.Errorf("singleton threshold = %d, want >= 1", got)
	}
}

func TestStatsAddTotal(t *testing.T) {
	a := Stats{Sequential: 1, Binary: 2, Index: 3}
	b := Stats{Sequential: 10, Binary: 20, Index: 30}
	a.Add(b)
	if a.Sequential != 11 || a.Binary != 22 || a.Index != 33 {
		t.Errorf("Add: %+v", a)
	}
	if a.Total() != 66 {
		t.Errorf("Total = %d, want 66", a.Total())
	}
}

func TestCalibrateTerminatesAndIsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arr := sortedArr(rng, 200000, 4)
	locate := func(a []uint32, v uint32, cur *int) (int, bool) { return Binary(a, v, cur) }
	w := Calibrate(arr, locate, CalibrateOptions{NoOfSearches: 500, StartingWindowSize: 64})
	if w < 1 || w > len(arr) {
		t.Fatalf("Calibrate = %d, out of range [1,%d]", w, len(arr))
	}
}

func TestCalibrateTinyArray(t *testing.T) {
	w := Calibrate([]uint32{1, 2}, func(a []uint32, v uint32, cur *int) (int, bool) {
		return Binary(a, v, cur)
	}, CalibrateOptions{})
	if w != DefaultBinaryWindow {
		t.Errorf("tiny-array Calibrate = %d, want default %d", w, DefaultBinaryWindow)
	}
}

// Property: for any sorted array, any cursor position and any probe value,
// Adaptive agrees with the reference search on membership and position.
func TestQuickAdaptiveEquivalence(t *testing.T) {
	f := func(raw []uint32, probe uint32, curSeed uint16, window uint8) bool {
		if len(raw) == 0 {
			return true
		}
		arr := append([]uint32(nil), raw...)
		sort.Slice(arr, func(i, j int) bool { return arr[i] < arr[j] })
		// Deduplicate: tables store distinct keys.
		arr = dedup(arr)
		cur := int(curSeed) % len(arr)
		threshold := ValueThreshold(arr, int(window))
		wantPos, wantOK := refSearch(arr, probe)
		pos, ok := Adaptive(arr, probe, &cur, threshold, nil)
		if ok != wantOK {
			return false
		}
		if ok && pos != wantPos {
			return false
		}
		if cur < 0 || cur >= len(arr) {
			return false // cursor must stay in range
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the cursor invariant holds across chained probes — after any
// sequence of adaptive searches, membership answers still match reference.
func TestQuickChainedProbes(t *testing.T) {
	f := func(raw []uint32, probes []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		arr := append([]uint32(nil), raw...)
		sort.Slice(arr, func(i, j int) bool { return arr[i] < arr[j] })
		arr = dedup(arr)
		threshold := ValueThreshold(arr, 50)
		cur := 0
		for _, p := range probes {
			wantPos, wantOK := refSearch(arr, p)
			pos, ok := Adaptive(arr, p, &cur, threshold, nil)
			if ok != wantOK || (ok && pos != wantPos) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func dedup(sorted []uint32) []uint32 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func BenchmarkBinary(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	arr := sortedArr(rng, 1<<20, 3)
	keys := make([]uint32, 1024)
	for i := range keys {
		keys[i] = arr[rng.Intn(len(arr))]
	}
	cur := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Binary(arr, keys[i&1023], &cur)
	}
}

func BenchmarkSequentialNearKeys(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	arr := sortedArr(rng, 1<<20, 3)
	cur := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(arr, arr[i%len(arr)], &cur)
	}
}

func BenchmarkAdaptiveNearKeys(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	arr := sortedArr(rng, 1<<20, 3)
	threshold := ValueThreshold(arr, DefaultBinaryWindow)
	cur := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Adaptive(arr, arr[i%len(arr)], &cur, threshold, nil)
	}
}
