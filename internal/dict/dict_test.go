package dict

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeAssignsDenseIDs(t *testing.T) {
	d := New()
	words := []string{"a", "b", "c", "d"}
	for i, w := range words {
		if got := d.Encode(w); got != uint32(i+1) {
			t.Fatalf("Encode(%q) = %d, want %d", w, got, i+1)
		}
	}
	if d.Len() != len(words) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(words))
	}
}

func TestEncodeIsIdempotent(t *testing.T) {
	d := New()
	a := d.Encode("x")
	b := d.Encode("y")
	if got := d.Encode("x"); got != a {
		t.Errorf("re-Encode(x) = %d, want %d", got, a)
	}
	if got := d.Encode("y"); got != b {
		t.Errorf("re-Encode(y) = %d, want %d", got, b)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestLookupMissingReturnsNoID(t *testing.T) {
	d := New()
	d.Encode("present")
	if got := d.Lookup("absent"); got != NoID {
		t.Errorf("Lookup(absent) = %d, want NoID", got)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var d Dict
	if got := d.Encode("a"); got != 1 {
		t.Errorf("zero-value Encode = %d, want 1", got)
	}
	if got := d.Lookup("a"); got != 1 {
		t.Errorf("zero-value Lookup = %d, want 1", got)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	d := New()
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("value-%04d", i)
		id := d.Encode(s)
		if got := d.Decode(id); got != s {
			t.Fatalf("Decode(Encode(%q)) = %q", s, got)
		}
	}
}

func TestDecodePanicsOnUnknownID(t *testing.T) {
	d := New()
	d.Encode("only")
	for _, id := range []uint32{NoID, 2, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Decode(%d) did not panic", id)
				}
			}()
			d.Decode(id)
		}()
	}
}

func TestMustLookup(t *testing.T) {
	d := New()
	d.Encode("a")
	if _, err := d.MustLookup("a"); err != nil {
		t.Errorf("MustLookup(a) error: %v", err)
	}
	if _, err := d.MustLookup("b"); err == nil {
		t.Error("MustLookup(b) succeeded, want error")
	}
}

func TestSortedIsLexicographic(t *testing.T) {
	d := New()
	for _, w := range []string{"pear", "apple", "orange"} {
		d.Encode(w)
	}
	got := d.Sorted()
	want := []string{"apple", "orange", "pear"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	d := New()
	for i := 0; i < 257; i++ {
		d.Encode(fmt.Sprintf("<http://example.org/r%d>", i))
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	d2 := New()
	if _, err := d2.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round-trip Len = %d, want %d", d2.Len(), d.Len())
	}
	for id := uint32(1); id <= d.MaxID(); id++ {
		if d.Decode(id) != d2.Decode(id) {
			t.Fatalf("ID %d: %q != %q", id, d.Decode(id), d2.Decode(id))
		}
	}
}

func TestReadFromRejectsDuplicates(t *testing.T) {
	d := New()
	if _, err := d.ReadFrom(strings.NewReader("a\nb\na\n")); err == nil {
		t.Error("ReadFrom with duplicate line succeeded, want error")
	}
}

// Property: Encode is a bijection — distinct strings get distinct IDs and
// Decode inverts Encode.
func TestQuickBijection(t *testing.T) {
	f := func(words []string) bool {
		d := New()
		seen := make(map[string]uint32)
		for _, w := range words {
			id := d.Encode(w)
			if prev, ok := seen[w]; ok && prev != id {
				return false
			}
			seen[w] = id
			if d.Decode(id) != w {
				return false
			}
		}
		ids := make(map[uint32]bool)
		for _, id := range seen {
			if ids[id] {
				return false
			}
			ids[id] = true
		}
		return d.Len() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
