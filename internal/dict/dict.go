// Package dict implements the dictionary encoding used by PARJ.
//
// Every value encountered in the RDF data is assigned a dense integer ID.
// Following the paper (§3), values appearing in the subject and object
// positions share a common numbering, while values appearing in the
// predicate position have their own, separate numbering. IDs start at 1;
// ID 0 is reserved to mean "absent".
package dict

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// NoID is the reserved ID meaning "no such value".
const NoID uint32 = 0

// Dict is a bijective mapping between strings and dense uint32 IDs 1..N.
// The zero value is ready to use. The dictionary is append-only — IDs, once
// assigned, never change — and safe for concurrent use: the live write path
// encodes new terms while queries decode result rows, so Encode takes the
// write lock and the read-side methods share a read lock. None of them sit
// on the join hot path (probes work on already-encoded IDs).
type Dict struct {
	mu      sync.RWMutex
	ids     map[string]uint32
	strings []string // strings[i] holds the value with ID i+1
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// Encode returns the ID for s, assigning the next free ID if s is new.
func (d *Dict) Encode(s string) uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ids == nil {
		d.ids = make(map[string]uint32)
	}
	if id, ok := d.ids[s]; ok {
		return id
	}
	d.strings = append(d.strings, s)
	id := uint32(len(d.strings))
	d.ids[s] = id
	return id
}

// Lookup returns the ID for s, or NoID if s has not been encoded.
func (d *Dict) Lookup(s string) uint32 {
	d.mu.RLock()
	id := d.ids[s]
	d.mu.RUnlock()
	return id
}

// Decode returns the string for id. It panics if id is NoID or out of range,
// mirroring slice indexing: handing an unknown ID to Decode is a programming
// error, not a data error.
func (d *Dict) Decode(id uint32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == NoID || int(id) > len(d.strings) {
		panic(fmt.Sprintf("dict: Decode of unknown ID %d (dictionary has %d entries)", id, len(d.strings)))
	}
	return d.strings[id-1]
}

// Len reports the number of distinct values encoded.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.strings)
}

// MaxID returns the largest assigned ID (equal to Len).
func (d *Dict) MaxID() uint32 { return uint32(d.Len()) }

// SnapshotStrings returns the values in ID order as a read-only slice.
// Because the dictionary is append-only, concurrent Encodes can only extend
// the backing array past the returned length; the returned prefix never
// mutates. Callers must not modify the slice. This is the consistent
// (length, contents) pair serialization needs under concurrent writes.
func (d *Dict) SnapshotStrings() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.strings
}

// Sorted returns the encoded strings in lexicographic order. It is intended
// for deterministic dumps and tests, not hot paths.
func (d *Dict) Sorted() []string {
	d.mu.RLock()
	out := make([]string, len(d.strings))
	copy(out, d.strings)
	d.mu.RUnlock()
	sort.Strings(out)
	return out
}

// WriteTo serializes the dictionary as one value per line, in ID order, so
// that ReadFrom reconstructs identical IDs. Values must not contain '\n';
// N-Triples terms never do. Concurrent Encodes may append entries after the
// snapshot of the length taken here; because the dictionary is append-only,
// the serialized prefix is still internally consistent.
func (d *Dict) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	strings := d.strings
	d.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	for _, s := range strings {
		k, err := bw.WriteString(s)
		n += int64(k)
		if err != nil {
			return n, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadFrom loads a dictionary previously written with WriteTo. It replaces
// the receiver's contents.
func (d *Dict) ReadFrom(r io.Reader) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ids = make(map[string]uint32)
	d.strings = d.strings[:0]
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var n int64
	for sc.Scan() {
		line := sc.Text()
		n += int64(len(line)) + 1
		if _, dup := d.ids[line]; dup {
			return n, fmt.Errorf("dict: duplicate value %q at ID %d", line, len(d.strings)+1)
		}
		d.strings = append(d.strings, line)
		d.ids[line] = uint32(len(d.strings))
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// ErrUnknownValue is returned by strict translation helpers when a value is
// not present in the dictionary.
var ErrUnknownValue = errors.New("dict: unknown value")

// MustLookup returns the ID for s or ErrUnknownValue.
func (d *Dict) MustLookup(s string) (uint32, error) {
	if id := d.Lookup(s); id != NoID {
		return id, nil
	}
	return NoID, fmt.Errorf("%w: %q", ErrUnknownValue, s)
}
