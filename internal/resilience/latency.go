package resilience

import (
	"sort"
	"sync"
	"time"
)

// LatencyTracker keeps a sliding window of observed request latencies and
// answers quantile queries — the signal that decides when a hedged request
// is worth sending (fire the hedge once the primary attempt has outlived
// the recent p-quantile). Safe for concurrent use.
type LatencyTracker struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	filled  int
}

// NewLatencyTracker returns a tracker over a window of size samples
// (default 64).
func NewLatencyTracker(window int) *LatencyTracker {
	if window <= 0 {
		window = 64
	}
	return &LatencyTracker{samples: make([]time.Duration, window)}
}

// Record adds one observed latency.
func (t *LatencyTracker) Record(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples[t.next] = d
	t.next = (t.next + 1) % len(t.samples)
	if t.filled < len(t.samples) {
		t.filled++
	}
}

// Quantile returns the q-quantile (0 < q ≤ 1) of the window, or ok=false
// while fewer than 8 samples exist (too little signal to hedge on).
func (t *LatencyTracker) Quantile(q float64) (d time.Duration, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	const minSamples = 8
	if t.filled < minSamples {
		return 0, false
	}
	buf := make([]time.Duration, t.filled)
	copy(buf, t.samples[:t.filled])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q*float64(len(buf))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(buf) {
		idx = len(buf) - 1
	}
	return buf[idx], true
}
