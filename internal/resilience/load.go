package resilience

import (
	"sync/atomic"
	"time"
)

// LoadSignal is the per-endpoint load estimate the coordinator's routing
// layer reads: how many attempts are in flight against the endpoint right
// now, a smoothed latency of its recent successes, and a shed marker set
// when the endpoint rejected work with an overload (503 + Retry-After).
//
// Overload is deliberately kept apart from the circuit breaker: a breaker
// models "this endpoint is broken, stop sending", while a load signal
// models "this endpoint is healthy but busy, prefer its peers until
// Retry-After passes". Conflating them turns one busy replica into a
// removed replica and dumps its traffic on the rest — the exact
// amplification an overload storm feeds on.
//
// All methods are nil-safe and safe for concurrent use.
type LoadSignal struct {
	clock Clock

	inflight atomic.Int64
	ewmaNS   atomic.Int64 // smoothed success latency; 0 = no samples yet
	shedNS   atomic.Int64 // UnixNano until which the endpoint is backing off
}

// NewLoadSignal builds a signal on clock (nil = wall clock).
func NewLoadSignal(clock Clock) *LoadSignal {
	if clock == nil {
		clock = RealClock{}
	}
	return &LoadSignal{clock: clock}
}

// Start records an attempt launched against the endpoint.
func (s *LoadSignal) Start() {
	if s == nil {
		return
	}
	s.inflight.Add(1)
}

// Finish records a completed successful attempt and folds its latency into
// the smoothed estimate.
func (s *LoadSignal) Finish(elapsed time.Duration) {
	if s == nil {
		return
	}
	s.inflight.Add(-1)
	if elapsed <= 0 {
		return
	}
	for {
		old := s.ewmaNS.Load()
		var next int64
		if old == 0 {
			next = int64(elapsed)
		} else {
			// alpha = 0.25 — a few samples move the estimate, one does not.
			next = old + (int64(elapsed)-old)/4
		}
		if s.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// Abort records a completed attempt whose latency should not feed the
// estimate (failure, cancellation, or an overload rejection).
func (s *LoadSignal) Abort() {
	if s == nil {
		return
	}
	s.inflight.Add(-1)
}

// MarkOverloaded records that the endpoint shed work, backing it off for d
// (the node's Retry-After hint). Routing deprioritizes the endpoint until
// the window passes; it is never excluded outright — when every peer is
// also shedding, a busy replica still beats no replica.
func (s *LoadSignal) MarkOverloaded(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	until := s.clock.Now().Add(d).UnixNano()
	for {
		old := s.shedNS.Load()
		if old >= until || s.shedNS.CompareAndSwap(old, until) {
			return
		}
	}
}

// Overloaded reports whether the endpoint is inside a shed backoff window.
func (s *LoadSignal) Overloaded() bool {
	if s == nil {
		return false
	}
	until := s.shedNS.Load()
	return until != 0 && s.clock.Now().UnixNano() < until
}

// InFlight reports the attempts currently running against the endpoint.
func (s *LoadSignal) InFlight() int64 {
	if s == nil {
		return 0
	}
	return s.inflight.Load()
}

// Latency reports the smoothed success latency (0 = no samples yet).
func (s *LoadSignal) Latency() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.ewmaNS.Load())
}

// Less reports whether s is the better routing choice than t: fewer
// attempts in flight, with smoothed latency as the tiebreak. This is the
// comparison power-of-two-choices runs on its two sampled candidates.
func (s *LoadSignal) Less(t *LoadSignal) bool {
	si, ti := s.InFlight(), t.InFlight()
	if si != ti {
		return si < ti
	}
	return s.Latency() < t.Latency()
}
