// Package chaos is a deterministic fault-injection TCP proxy for testing
// the distributed serving tier. A Proxy sits between the coordinator and
// one replica and applies a scripted fault per accepted connection:
// extra latency, an immediate connection reset, a response cut mid-body,
// or a malformed (non-protocol) response. Scripts are plain functions of
// the connection ordinal, so a seeded script replays the same fault
// sequence on every run — chaos tests are reproducible, not flaky.
//
// Kill simulates the replica dying: it severs every active connection and
// refuses all future ones, which is exactly what a crashed node looks like
// to the coordinator.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault describes what happens to one proxied connection.
type Fault struct {
	// Delay is added before the response bytes start flowing.
	Delay time.Duration
	// Reset closes the connection immediately on accept (with SO_LINGER 0,
	// so the client sees a TCP reset rather than a clean EOF).
	Reset bool
	// CutResponseAfter, when > 0, forwards only that many response bytes
	// and then severs the connection — a node dying mid-body.
	CutResponseAfter int
	// Garbage responds with bytes that are not valid HTTP at all.
	Garbage bool
	// TrickleBytes, when > 0, forwards the response in chunks of that many
	// bytes with TrickleDelay between chunks — a slow-loris replica that
	// keeps the connection alive while starving the reader. Unlike Delay
	// (one stall before the first byte), a trickle defeats first-byte
	// timeouts; only a per-attempt deadline bounds it.
	TrickleBytes int
	TrickleDelay time.Duration
	// KillAfter kills the whole proxy once this connection ends: the
	// replica is gone for the rest of the test.
	KillAfter bool
}

// Script decides the fault for the n-th accepted connection (0-based).
type Script func(conn int) Fault

// None is the identity script: every connection is proxied cleanly.
func None(int) Fault { return Fault{} }

// CutFirstThenKill scripts the "replica dies mid-query" scenario: the
// first connection has its response cut after n bytes and the proxy then
// kills itself; there is no second connection.
func CutFirstThenKill(n int) Script {
	return func(conn int) Fault {
		return Fault{CutResponseAfter: n, KillAfter: true}
	}
}

// SlowLoris scripts a replica that answers every connection byte-by-byte:
// chunk response bytes every delay. The connection never dies and never
// completes within any reasonable deadline — the scenario only per-attempt
// timeouts (and hedges racing them) can recover from.
func SlowLoris(chunk int, delay time.Duration) Script {
	if chunk <= 0 {
		chunk = 1
	}
	return func(conn int) Fault {
		return Fault{TrickleBytes: chunk, TrickleDelay: delay}
	}
}

// SeededConfig drives Seeded scripts.
type SeededConfig struct {
	// ResetP, CutP, GarbageP are per-connection fault probabilities
	// (checked in that order).
	ResetP, CutP, GarbageP float64
	// DelayP is the probability of injected latency of up to MaxDelay.
	DelayP   float64
	MaxDelay time.Duration
	// CutAfter is the byte offset used for cuts (default 64).
	CutAfter int
}

// Seeded returns a deterministic random script: the fault for connection n
// depends only on (seed, n).
func Seeded(seed int64, cfg SeededConfig) Script {
	if cfg.CutAfter <= 0 {
		cfg.CutAfter = 64
	}
	return func(conn int) Fault {
		rng := rand.New(rand.NewSource(seed + int64(conn)*2654435761))
		var f Fault
		switch r := rng.Float64(); {
		case r < cfg.ResetP:
			f.Reset = true
		case r < cfg.ResetP+cfg.CutP:
			f.CutResponseAfter = cfg.CutAfter
		case r < cfg.ResetP+cfg.CutP+cfg.GarbageP:
			f.Garbage = true
		}
		if rng.Float64() < cfg.DelayP && cfg.MaxDelay > 0 {
			f.Delay = time.Duration(rng.Int63n(int64(cfg.MaxDelay)))
		}
		return f
	}
}

// Proxy forwards TCP connections to a target address, applying scripted
// faults.
type Proxy struct {
	target string
	script Script
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	next   int
	killed bool

	wg sync.WaitGroup
}

// New starts a proxy on a fresh loopback port in front of target
// (host:port). Close (or Kill) must be called to release it.
func New(target string, script Script) (*Proxy, error) {
	if script == nil {
		script = None
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, script: script, ln: ln, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL for HTTP clients.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Conns reports how many connections have been accepted so far.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next
}

// Kill simulates the replica crashing: active connections are severed and
// the listener closed, so future dials are refused. Idempotent.
func (p *Proxy) Kill() {
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		return
	}
	p.killed = true
	for c := range p.conns {
		hardClose(c)
	}
	p.mu.Unlock()
	p.ln.Close()
}

// Close shuts the proxy down and waits for its goroutines, so leak checks
// stay clean. Safe after Kill.
func (p *Proxy) Close() {
	p.Kill()
	p.wg.Wait()
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.killed {
			p.mu.Unlock()
			hardClose(c)
			continue
		}
		n := p.next
		p.next++
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handle(c, p.script(n))
	}
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(client net.Conn, f Fault) {
	defer p.wg.Done()
	defer p.forget(client)
	if f.KillAfter {
		defer p.Kill()
	}

	if f.Reset {
		hardClose(client)
		return
	}
	if f.Garbage {
		// Read a little of the request so the client finishes writing,
		// then answer with bytes no HTTP client accepts.
		buf := make([]byte, 512)
		client.SetReadDeadline(time.Now().Add(2 * time.Second))
		client.Read(buf)
		client.Write([]byte("\x00\xffnot-http at all\r\n\r\n"))
		client.Close()
		return
	}

	server, err := net.Dial("tcp", p.target)
	if err != nil {
		hardClose(client)
		return
	}
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		hardClose(client)
		hardClose(server)
		return
	}
	p.conns[server] = struct{}{}
	p.mu.Unlock()
	defer p.forget(server)

	// Request side: pump client -> server until the client closes.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		io.Copy(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.CutResponseAfter > 0 {
		io.CopyN(client, server, int64(f.CutResponseAfter))
		hardClose(client)
		hardClose(server)
		return
	}
	if f.TrickleBytes > 0 {
		// Drip the response until either side gives up (the client closing
		// its end — e.g. a per-attempt timeout — breaks the copy), or the
		// proxy is killed (hardClose breaks it too).
		for {
			if _, err := io.CopyN(client, server, int64(f.TrickleBytes)); err != nil {
				if err == io.EOF {
					// Response actually finished; deliver it cleanly so a
					// patient reader still gets a valid reply.
					client.Close()
					server.Close()
				} else {
					hardClose(client)
					hardClose(server)
				}
				return
			}
			time.Sleep(f.TrickleDelay)
		}
	}
	io.Copy(client, server)
	client.Close()
	server.Close()
}

// hardClose drops the connection with SO_LINGER 0 so the peer observes a
// reset instead of an orderly shutdown.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// Fleet is a set of proxies fronting a set of replica addresses, one per
// replica — a convenience for tests that stand up whole shard groups.
type Fleet struct {
	Proxies []*Proxy
}

// NewFleet builds one proxy per target; scripts[i] (nil = None) drives
// target i.
func NewFleet(targets []string, scripts []Script) (*Fleet, error) {
	f := &Fleet{}
	for i, t := range targets {
		var s Script
		if i < len(scripts) {
			s = scripts[i]
		}
		p, err := New(t, s)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("chaos: proxy %d: %w", i, err)
		}
		f.Proxies = append(f.Proxies, p)
	}
	return f, nil
}

// URLs lists the proxies' base URLs in target order.
func (f *Fleet) URLs() []string {
	out := make([]string, len(f.Proxies))
	for i, p := range f.Proxies {
		out[i] = p.URL()
	}
	return out
}

// Close shuts every proxy down.
func (f *Fleet) Close() {
	for _, p := range f.Proxies {
		p.Close()
	}
}
