package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parj/internal/testutil"
)

// backend returns a 512-byte-response HTTP server. Callers must defer
// srv.Close() AFTER registering LeakCheck so the accept loop is gone
// before the leak check polls.
func backend(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("payload-", 64)) // 512 bytes
	}))
}

// client returns an HTTP client that opens a fresh connection per request,
// so connection ordinals match request ordinals deterministically.
func client() *http.Client {
	return &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
}

func TestProxyPassesThrough(t *testing.T) {
	defer testutil.LeakCheck(t)()
	srv := backend(t)
	defer srv.Close()
	p, err := New(strings.TrimPrefix(srv.URL, "http://"), None)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := client().Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) != 512 {
		t.Fatalf("status %d, body %d bytes", resp.StatusCode, len(body))
	}
	if p.Conns() != 1 {
		t.Fatalf("conns %d, want 1", p.Conns())
	}
}

func TestProxyFaults(t *testing.T) {
	defer testutil.LeakCheck(t)()
	srv := backend(t)
	defer srv.Close()
	target := strings.TrimPrefix(srv.URL, "http://")

	cases := []struct {
		name  string
		fault Fault
	}{
		{"reset", Fault{Reset: true}},
		{"cut-mid-body", Fault{CutResponseAfter: 64}},
		{"garbage", Fault{Garbage: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := New(target, func(int) Fault { return c.fault })
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			resp, err := client().Get(p.URL())
			if err == nil {
				// A cut can surface as an error on Get or on body read.
				_, err = io.ReadAll(resp.Body)
				resp.Body.Close()
			}
			if err == nil {
				t.Fatalf("fault %+v: request succeeded", c.fault)
			}
		})
	}
}

func TestProxyKillRefusesNewConnections(t *testing.T) {
	defer testutil.LeakCheck(t)()
	srv := backend(t)
	defer srv.Close()
	p, err := New(strings.TrimPrefix(srv.URL, "http://"), None)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	addr := p.Addr()
	if _, err := client().Get(p.URL()); err != nil {
		t.Fatal(err)
	}
	p.Kill()
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("dial succeeded after Kill")
	}
}

func TestCutFirstThenKill(t *testing.T) {
	defer testutil.LeakCheck(t)()
	srv := backend(t)
	defer srv.Close()
	p, err := New(strings.TrimPrefix(srv.URL, "http://"), CutFirstThenKill(16))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := client().Get(p.URL())
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("first request survived a 16-byte cut")
	}
	// The proxy is now dead: the next dial must be refused.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := net.DialTimeout("tcp", p.Addr(), time.Second); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("proxy still accepting after KillAfter connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSeededScriptDeterministic(t *testing.T) {
	cfg := SeededConfig{ResetP: 0.2, CutP: 0.2, GarbageP: 0.2, DelayP: 0.5, MaxDelay: 10 * time.Millisecond}
	a, b := Seeded(99, cfg), Seeded(99, cfg)
	for i := 0; i < 200; i++ {
		if fmt.Sprint(a(i)) != fmt.Sprint(b(i)) {
			t.Fatalf("connection %d: same seed produced different faults", i)
		}
	}
	diff := false
	c := Seeded(100, cfg)
	for i := 0; i < 200; i++ {
		if fmt.Sprint(a(i)) != fmt.Sprint(c(i)) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical scripts")
	}
}
