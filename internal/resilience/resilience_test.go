package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parj/internal/testutil"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(clk, BreakerOptions{FailureThreshold: 3, OpenFor: time.Second})

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state %v after 2 failures, want closed", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive failure trips it
	if b.State() != Open {
		t.Fatalf("state %v after threshold, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(clk, BreakerOptions{FailureThreshold: 2, OpenFor: time.Second})
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("state %v, want closed (success must reset the streak)", b.State())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(clk, BreakerOptions{FailureThreshold: 1, OpenFor: time.Second, HalfOpenProbes: 1})
	b.Failure()
	if b.State() != Open {
		t.Fatal("want open")
	}
	clk.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed before the open interval elapsed")
	}
	clk.Advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open probe rejected after the interval")
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second concurrent half-open probe allowed")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state %v after probe success, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(clk, BreakerOptions{FailureThreshold: 1, OpenFor: time.Second})
	b.Failure()
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open probe rejected")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state %v after probe failure, want open again", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker allowed a request")
	}
	// And it recovers a second time.
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("second half-open probe rejected")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("want closed after recovery")
	}
}

// TestBreakerHalfOpenProbeContention races N callers for the single
// half-open probe slot: exactly one must be admitted, and the breaker must
// converge open (probe failed) or closed (probe succeeded) regardless of
// how the losers interleave. Run under -race, this also proves the slot
// accounting is data-race-free.
func TestBreakerHalfOpenProbeContention(t *testing.T) {
	for _, probeOK := range []bool{true, false} {
		clk := NewFakeClock(time.Unix(0, 0))
		b := NewBreaker(clk, BreakerOptions{FailureThreshold: 1, OpenFor: time.Second, HalfOpenProbes: 1})
		b.Failure() // trip it
		clk.Advance(time.Second)

		const N = 32
		var admitted atomic.Int64
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(N)
		for i := 0; i < N; i++ {
			go func() {
				defer done.Done()
				start.Wait()
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if got := admitted.Load(); got != 1 {
			t.Fatalf("probeOK=%v: %d concurrent probes admitted, want exactly 1", probeOK, got)
		}
		if probeOK {
			b.Success()
			if b.State() != Closed {
				t.Fatalf("state %v after probe success, want closed", b.State())
			}
			if !b.Allow() {
				t.Fatal("closed breaker rejected")
			}
		} else {
			b.Failure()
			if b.State() != Open {
				t.Fatalf("state %v after probe failure, want open", b.State())
			}
			if b.Allow() {
				t.Fatal("reopened breaker admitted a request")
			}
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	d1 := make([]time.Duration, 6)
	for i := range d1 {
		d1[i] = b.Delay(i, NewJitter(42+int64(i)))
	}
	for i := range d1 {
		if got := b.Delay(i, NewJitter(42+int64(i))); got != d1[i] {
			t.Fatalf("attempt %d: %v then %v — not deterministic for a fixed seed", i, d1[i], got)
		}
		cap := 10 * time.Millisecond << i
		if cap > 80*time.Millisecond {
			cap = 80 * time.Millisecond
		}
		if d1[i] < 0 || d1[i] >= cap {
			t.Fatalf("attempt %d: delay %v outside [0, %v)", i, d1[i], cap)
		}
	}
}

func TestSleepRespectsContext(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Sleep(ctx, clk, time.Hour) }()
	for clk.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep returned %v, want context.Canceled", err)
	}

	// And the clock path. The canceled Sleep's waiter is still registered
	// (FakeClock never reaps abandoned timers, like time.After), so wait
	// for the count to grow past that baseline.
	base := clk.Waiters()
	done2 := make(chan error, 1)
	go func() { done2 <- Sleep(context.Background(), clk, time.Minute) }()
	for clk.Waiters() == base {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Minute)
	if err := <-done2; err != nil {
		t.Fatalf("Sleep returned %v after Advance", err)
	}
}

func TestLatencyTrackerQuantile(t *testing.T) {
	lt := NewLatencyTracker(16)
	if _, ok := lt.Quantile(0.9); ok {
		t.Fatal("quantile reported ok with no samples")
	}
	for i := 1; i <= 10; i++ {
		lt.Record(time.Duration(i) * time.Millisecond)
	}
	q, ok := lt.Quantile(0.9)
	if !ok {
		t.Fatal("quantile not ok with 10 samples")
	}
	if q != 9*time.Millisecond {
		t.Fatalf("p90 of 1..10ms = %v, want 9ms", q)
	}
	// Window slides: flood with 20ms, old samples fall out.
	for i := 0; i < 16; i++ {
		lt.Record(20 * time.Millisecond)
	}
	if q, _ := lt.Quantile(0.5); q != 20*time.Millisecond {
		t.Fatalf("p50 after window slide = %v, want 20ms", q)
	}
}

func TestHealthCheckerFailover(t *testing.T) {
	defer testutil.LeakCheck(t)()
	var mu sync.Mutex
	dead := map[string]bool{"b": true}
	h := NewHealthChecker(RealClock{}, time.Hour, []string{"a", "b"},
		func(ctx context.Context, target string) error {
			mu.Lock()
			defer mu.Unlock()
			if dead[target] {
				return errors.New("down")
			}
			return nil
		})
	defer h.Close()

	// The immediate start-up sweep demotes b without CheckNow and without
	// waiting out the one-hour interval.
	waitFor(t, func() bool { return !h.Healthy("b") })
	if !h.Healthy("a") {
		t.Fatal("a demoted incorrectly")
	}
	// b recovers.
	mu.Lock()
	dead["b"] = false
	mu.Unlock()
	h.CheckNow()
	waitFor(t, func() bool { return h.Healthy("b") })
}

// TestHealthCheckerProbesImmediately is the regression test for the
// start-up gap: a just-constructed checker used to report every endpoint
// healthy until the first interval tick. With a FakeClock that is never
// advanced, the only way the dead target can be demoted is the immediate
// first sweep.
func TestHealthCheckerProbesImmediately(t *testing.T) {
	defer testutil.LeakCheck(t)()
	clk := NewFakeClock(time.Unix(0, 0))
	h := NewHealthChecker(clk, time.Hour, []string{"dead"},
		func(ctx context.Context, target string) error { return errors.New("down") })
	defer h.Close()
	waitFor(t, func() bool { return !h.Healthy("dead") })
}

func TestHealthCheckerSetTargets(t *testing.T) {
	defer testutil.LeakCheck(t)()
	var mu sync.Mutex
	dead := map[string]bool{"a": true, "b": true}
	h := NewHealthChecker(RealClock{}, time.Hour, []string{"a"},
		func(ctx context.Context, target string) error {
			mu.Lock()
			defer mu.Unlock()
			if dead[target] {
				return errors.New("down")
			}
			return nil
		})
	defer h.Close()
	waitFor(t, func() bool { return !h.Healthy("a") })

	// Swap membership: a retired, b joins — b starts healthy (advisory)
	// and the triggered sweep demotes it; a's stale verdict is forgotten.
	h.SetTargets([]string{"b"})
	waitFor(t, func() bool { return !h.Healthy("b") })
	if !h.Healthy("a") {
		t.Fatal("retired target must read healthy (unknown = advisory pass)")
	}
}

func TestHealthCheckerCloseStopsGoroutine(t *testing.T) {
	defer testutil.LeakCheck(t)()
	h := NewHealthChecker(nil, time.Millisecond, []string{"x"},
		func(ctx context.Context, target string) error { return nil })
	h.Close()
	h.Close() // idempotent
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
