package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's current mode.
type BreakerState int

const (
	// Closed passes requests through and counts consecutive failures.
	Closed BreakerState = iota
	// Open rejects requests until the open interval elapses.
	Open
	// HalfOpen admits a bounded number of probe requests; one success
	// closes the breaker, one failure reopens it.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerOptions configures a circuit breaker.
type BreakerOptions struct {
	// FailureThreshold is the number of consecutive failures that opens
	// the breaker (default 5).
	FailureThreshold int
	// OpenFor is how long the breaker rejects before moving to half-open
	// (default 5s).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent trial requests in half-open
	// (default 1), preventing a thundering herd onto a recovering node.
	HalfOpenProbes int
}

func (o BreakerOptions) fill() BreakerOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 5
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 5 * time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 1
	}
	return o
}

// Breaker is a per-node circuit breaker. The coordinator keeps one per
// replica endpoint: transport-level failures trip it, an open breaker
// routes requests to the node's peers, and half-open probes detect
// recovery. Safe for concurrent use.
type Breaker struct {
	mu    sync.Mutex
	clock Clock
	opt   BreakerOptions

	state    BreakerState
	fails    int       // consecutive failures while closed
	until    time.Time // when the open interval ends
	inflight int       // outstanding half-open probes
}

// NewBreaker returns a closed breaker on the given clock (nil = RealClock).
func NewBreaker(clock Clock, opt BreakerOptions) *Breaker {
	if clock == nil {
		clock = RealClock{}
	}
	return &Breaker{clock: clock, opt: opt.fill()}
}

// Allow reports whether a request may be sent to the node now. In half-open
// it also reserves a probe slot; the caller must report the outcome with
// Success or Failure (which releases the slot).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.clock.Now().Before(b.until) {
			return false
		}
		b.state = HalfOpen
		b.inflight = 0
		fallthrough
	default: // HalfOpen
		if b.inflight >= b.opt.HalfOpenProbes {
			return false
		}
		b.inflight++
		return true
	}
}

// Success reports a completed request: it closes a half-open breaker and
// resets the failure streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.inflight > 0 {
		b.inflight--
	}
	b.state = Closed
	b.fails = 0
}

// Failure reports a failed request: it advances the streak in closed state
// (opening at the threshold) and reopens a half-open breaker immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.opt.FailureThreshold {
			b.open()
		}
	case HalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		b.open()
	case Open:
		// A straggler from before the trip; the breaker is already open.
	}
}

// Abandon releases a probe slot reserved by Allow when the request was
// canceled before producing a meaningful outcome (e.g. a hedged attempt
// whose sibling won). It never changes state or the failure streak.
func (b *Breaker) Abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.inflight > 0 {
		b.inflight--
	}
}

// open transitions to Open. Callers hold b.mu.
func (b *Breaker) open() {
	b.state = Open
	b.fails = 0
	b.until = b.clock.Now().Add(b.opt.OpenFor)
}

// State reports the current mode (Open flips to HalfOpen lazily in Allow,
// so an expired Open still reads Open here until the next request).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
