package resilience

import (
	"context"
	"sync"
	"time"
)

// HealthChecker polls a set of targets in the background and exposes an
// up/down verdict per target. The coordinator orders replicas healthy-first,
// so a node that stops answering its health endpoint is routed around even
// before its circuit breaker trips — and a recovered node is routed back to
// without waiting for a live request to probe it.
//
// The target set is live: SetTargets swaps it while the checker runs, which
// is what a reconfigurable topology needs — a freshly admitted replica is
// probed on the next sweep and a retired one stops being probed at all.
type HealthChecker struct {
	probe    func(ctx context.Context, target string) error
	interval time.Duration
	timeout  time.Duration
	clock    Clock

	mu      sync.Mutex
	targets []string
	down    map[string]bool

	stop chan struct{}
	done chan struct{}
	wake chan struct{} // tests and SetTargets poke this to trigger a sweep
}

// NewHealthChecker starts a checker over targets, probing each one every
// interval (per-probe timeout interval/2, floor 50ms). The first sweep runs
// immediately — a just-constructed checker must not report a dead endpoint
// healthy for a whole interval just because no tick has fired yet. Close
// must be called to stop the background goroutine. A nil clock uses the
// wall clock.
func NewHealthChecker(clock Clock, interval time.Duration, targets []string, probe func(ctx context.Context, target string) error) *HealthChecker {
	if clock == nil {
		clock = RealClock{}
	}
	if interval <= 0 {
		interval = time.Second
	}
	timeout := interval / 2
	if timeout < 50*time.Millisecond {
		timeout = 50 * time.Millisecond
	}
	h := &HealthChecker{
		probe:    probe,
		interval: interval,
		timeout:  timeout,
		clock:    clock,
		targets:  append([]string(nil), targets...),
		down:     make(map[string]bool, len(targets)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		wake:     make(chan struct{}, 1),
	}
	for _, t := range targets {
		h.down[t] = false
	}
	go h.run()
	return h
}

func (h *HealthChecker) run() {
	defer close(h.done)
	for {
		h.sweep()
		select {
		case <-h.stop:
			return
		case <-h.clock.After(h.interval):
		case <-h.wake:
		}
	}
}

// sweep probes every current target once.
func (h *HealthChecker) sweep() {
	h.mu.Lock()
	targets := append([]string(nil), h.targets...)
	h.mu.Unlock()
	for _, t := range targets {
		select {
		case <-h.stop:
			return
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
		err := h.probe(ctx, t)
		cancel()
		h.mu.Lock()
		// A target retired mid-sweep must not be resurrected in the map.
		if _, live := h.down[t]; live {
			h.down[t] = err != nil
		}
		h.mu.Unlock()
	}
}

// SetTargets replaces the probed set. New targets start healthy (advisory
// until the next sweep demotes them); removed targets are forgotten. A
// sweep is triggered immediately so membership changes take effect without
// waiting out the interval.
func (h *HealthChecker) SetTargets(targets []string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	next := make(map[string]bool, len(targets))
	for _, t := range targets {
		next[t] = h.down[t] // carry the last verdict for survivors
	}
	h.targets = append(h.targets[:0:0], targets...)
	h.down = next
	h.mu.Unlock()
	h.CheckNow()
}

// Healthy reports the last verdict for target (unknown targets read
// healthy, keeping the checker advisory rather than a gate).
func (h *HealthChecker) Healthy(target string) bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.down[target]
}

// CheckNow triggers an immediate sweep (without waiting for the interval)
// and is safe to call concurrently; a sweep already pending is not doubled.
func (h *HealthChecker) CheckNow() {
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// Close stops the background goroutine and waits for it to exit, so tests
// can assert zero goroutine leaks.
func (h *HealthChecker) Close() {
	if h == nil {
		return
	}
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}
