package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes retry delays: full jitter over an exponentially growing
// cap (delay for attempt i is uniform in [0, min(Max, Base·Factor^i))).
// Full jitter decorrelates retry storms across shards and coordinators —
// deterministic given the Jitter's seed.
type Backoff struct {
	// Base is the cap of the first retry's delay (default 10ms).
	Base time.Duration
	// Max bounds the cap growth (default 1s).
	Max time.Duration
	// Factor multiplies the cap per attempt (default 2).
	Factor float64
}

func (b Backoff) fill() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	return b
}

// Delay returns the wait before retry number attempt (0 = first retry).
func (b Backoff) Delay(attempt int, j *Jitter) time.Duration {
	b = b.fill()
	cap := float64(b.Base)
	for i := 0; i < attempt && cap < float64(b.Max); i++ {
		cap *= b.Factor
	}
	if cap > float64(b.Max) {
		cap = float64(b.Max)
	}
	return time.Duration(j.Float64() * cap)
}

// Jitter is a mutex-guarded seeded random source shared by concurrent
// shard fetches. The same seed yields the same jitter sequence, which keeps
// chaos tests reproducible.
type Jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitter returns a deterministic jitter stream for seed.
func NewJitter(seed int64) *Jitter {
	return &Jitter{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns the next value in [0, 1).
func (j *Jitter) Float64() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rng == nil {
		j.rng = rand.New(rand.NewSource(1))
	}
	return j.rng.Float64()
}

// Intn returns the next value in [0, n); n <= 0 returns 0. Replica
// selection uses it to sample power-of-two-choices candidates from the
// same deterministic stream as retry jitter.
func (j *Jitter) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rng == nil {
		j.rng = rand.New(rand.NewSource(1))
	}
	return j.rng.Intn(n)
}
