// Package resilience provides the fault-tolerance primitives of the
// distributed serving tier: an injectable clock (so every time-based
// behavior is unit-testable without wall-clock sleeps), exponential backoff
// with deterministic jitter, per-node circuit breakers with half-open
// probing, a windowed latency-quantile tracker that drives request hedging,
// and a background health checker for replica failover.
//
// The package is engine-agnostic: it never imports the query engine or the
// wire protocol. The coordinator in internal/cluster composes these
// primitives around internal/remote's shard clients.
package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for everything in this package. Production code uses
// RealClock; tests inject a FakeClock and advance it manually, which makes
// breaker expiry, backoff waits and hedge delays deterministic and instant.
type Clock interface {
	Now() time.Time
	// After behaves like time.After against this clock.
	After(d time.Duration) <-chan time.Time
}

// RealClock is the wall clock.
type RealClock struct{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }

// After returns time.After(d).
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep waits for d on c, returning early with the context's typed error
// when ctx is done first. A non-positive d returns immediately (after a
// context check), without touching the clock.
func Sleep(ctx context.Context, c Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	select {
	case <-c.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FakeClock is a manually advanced Clock for tests. The zero value starts
// at an arbitrary fixed epoch; use NewFakeClock to pick one.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a FakeClock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now.IsZero() {
		c.now = time.Unix(1_000_000, 0)
	}
	return c.now
}

// After returns a channel that fires once Advance moves the clock past d
// from now. A non-positive d fires immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now.IsZero() {
		c.now = time.Unix(1_000_000, 0)
	}
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward and fires every timer that became due.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now.IsZero() {
		c.now = time.Unix(1_000_000, 0)
	}
	c.now = c.now.Add(d)
	var keep []fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
}

// Waiters reports how many timers are pending — tests use it to wait until
// a goroutine has parked on After before advancing.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
