package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"parj/internal/store"
)

// TransportError is a network- or protocol-level failure talking to a
// node: connection refused or reset, a response cut mid-body, or bytes
// that don't decode as the protocol. These are exactly the failures worth
// retrying on a replica and counting against the node's circuit breaker.
type TransportError struct {
	Endpoint string
	Err      error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("remote: %s: %v", e.Endpoint, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Retryable reports whether err may succeed on another replica: transport
// faults and retryable node errors qualify; deterministic node outcomes
// (parse, plan, budget) and deadline/cancel do not.
func Retryable(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		// A transport fault caused by the caller's own expired context is
		// a deadline, not a node failure.
		if errors.Is(te.Err, context.DeadlineExceeded) || errors.Is(te.Err, context.Canceled) {
			return false
		}
		return true
	}
	var ne *NodeError
	if errors.As(err, &ne) {
		return ne.Retryable()
	}
	return false
}

// NodeFault reports whether err should count against the node's circuit
// breaker: transport faults and node-internal failures (panic, internal)
// do; semantic outcomes the node computed correctly (parse, plan, budget,
// deadline) do not — and neither does overload. A 503 is the node working
// exactly as designed under load: tripping a breaker on it would remove a
// healthy-but-busy replica from rotation and dump its share of traffic on
// its peers, amplifying the storm. Overload is a routing signal
// (Overloaded), not a fault.
func NodeFault(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return !errors.Is(te.Err, context.DeadlineExceeded) && !errors.Is(te.Err, context.Canceled)
	}
	var ne *NodeError
	if errors.As(err, &ne) {
		return ne.Kind == KindPanic || ne.Kind == KindInternal
	}
	return false
}

// Overloaded reports whether err is a node's load-shed rejection — the
// outcome the coordinator feeds into its per-endpoint load signal (back
// off this replica briefly, prefer its peers) rather than its breaker.
func Overloaded(err error) bool {
	var ne *NodeError
	return errors.As(err, &ne) && ne.Kind == KindOverload
}

// Client executes shard requests against one node endpoint.
type Client struct {
	endpoint string
	hc       *http.Client
}

// NewClient wraps a node base URL (e.g. "http://10.0.0.3:7070"). Each
// client owns its transport so a chaos-severed connection pool on one
// replica never bleeds into another. timeout bounds a single attempt at
// the transport level as a backstop; per-attempt deadlines normally come
// from the request context.
func NewClient(endpoint string, timeout time.Duration) *Client {
	return &Client{
		endpoint: endpoint,
		hc: &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 4,
				IdleConnTimeout:     30 * time.Second,
			},
		},
	}
}

// Endpoint returns the node's base URL.
func (c *Client) Endpoint() string { return c.endpoint }

// Close releases idle connections.
func (c *Client) Close() {
	if t, ok := c.hc.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// Exec evaluates one shard range on the node.
func (c *Client) Exec(ctx context.Context, req *ExecRequest) (*ExecResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint+ExecPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, &TransportError{Endpoint: c.endpoint, Err: err}
	}
	defer resp.Body.Close()
	// Reading the body can fail mid-stream (chaos cut): that's transport.
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &TransportError{Endpoint: c.endpoint, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var ne ErrorResponse
		if err := json.Unmarshal(raw, &ne); err != nil || ne.Kind == "" {
			return nil, &TransportError{Endpoint: c.endpoint,
				Err: fmt.Errorf("status %d with undecodable error body", resp.StatusCode)}
		}
		out := &NodeError{Kind: ne.Kind, Msg: ne.Error}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			out.RetryAfter = time.Duration(secs) * time.Second
		}
		return nil, out
	}
	var out ExecResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, &TransportError{Endpoint: c.endpoint, Err: fmt.Errorf("malformed response: %w", err)}
	}
	return &out, nil
}

// Write applies one sequenced write batch on the node. A seq-gap refusal
// comes back as a NodeError with KindSeqGap — deterministic, not retryable
// on this replica without a resync.
func (c *Client) Write(ctx context.Context, req *WriteRequest) (*WriteResponse, error) {
	var out WriteResponse
	if err := c.postJSON(ctx, WritePath, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reconcile forces a synchronous reconciliation on the node.
func (c *Client) Reconcile(ctx context.Context) (*WriteResponse, error) {
	var out WriteResponse
	if err := c.postJSON(ctx, ReconcilePath, struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// postJSON is the shared POST-JSON/decode-JSON round trip with the
// protocol's error taxonomy.
func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return &TransportError{Endpoint: c.endpoint, Err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return &TransportError{Endpoint: c.endpoint, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var ne ErrorResponse
		if err := json.Unmarshal(raw, &ne); err != nil || ne.Kind == "" {
			return &TransportError{Endpoint: c.endpoint,
				Err: fmt.Errorf("status %d with undecodable error body", resp.StatusCode)}
		}
		nerr := &NodeError{Kind: ne.Kind, Msg: ne.Error}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			nerr.RetryAfter = time.Duration(secs) * time.Second
		}
		return nerr
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return &TransportError{Endpoint: c.endpoint, Err: fmt.Errorf("malformed response: %w", err)}
	}
	return nil
}

// ErrNotReady reports a node that answered but is not (yet) serving
// queries: still warming its replica, or draining. It is distinct from a
// transport fault — the process is up, the replica isn't.
var ErrNotReady = errors.New("remote: node not ready")

// Ready probes the node's readiness endpoint: nil means the node is loaded
// and accepting queries, ErrNotReady means it answered 503 (warming or
// draining), and a TransportError means it could not be reached at all.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint+ReadyPath, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &TransportError{Endpoint: c.endpoint, Err: err}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%s: %w", c.endpoint, ErrNotReady)
	default:
		return &TransportError{Endpoint: c.endpoint, Err: fmt.Errorf("readyz status %d", resp.StatusCode)}
	}
}

// Statz fetches the node's cumulative statistics.
func (c *Client) Statz(ctx context.Context) (*StatzResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint+StatzPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &TransportError{Endpoint: c.endpoint, Err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &TransportError{Endpoint: c.endpoint, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &TransportError{Endpoint: c.endpoint, Err: fmt.Errorf("statz status %d", resp.StatusCode)}
	}
	var out StatzResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, &TransportError{Endpoint: c.endpoint, Err: fmt.Errorf("malformed statz: %w", err)}
	}
	return &out, nil
}

// Snapshot fetches the node's replica as a snapshot stream and loads it.
// The store's v2 format carries a trailing CRC32, so a stream cut mid-body
// (or corrupted in flight) surfaces as store.ErrCorruptSnapshot from the
// loader — a warming replica can simply retry another peer; it can never
// silently serve a torn replica.
func (c *Client) Snapshot(ctx context.Context) (*store.Store, error) {
	st, _, err := c.SnapshotSeq(ctx)
	return st, err
}

// SnapshotSeq is Snapshot plus the write-stream position: the returned seq
// is the last write batch the snapshot already contains (parsed from
// WriteSeqHeader; 0 when the source predates the write path). A warming
// replica seeds its live handle with it and replays the stream from there.
func (c *Client) SnapshotSeq(ctx context.Context) (*store.Store, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint+SnapshotPath, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, &TransportError{Endpoint: c.endpoint, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusServiceUnavailable {
			return nil, 0, fmt.Errorf("%s: snapshot source: %w", c.endpoint, ErrNotReady)
		}
		return nil, 0, &TransportError{Endpoint: c.endpoint, Err: fmt.Errorf("snapshot status %d", resp.StatusCode)}
	}
	seq, _ := strconv.ParseUint(resp.Header.Get(WriteSeqHeader), 10, 64)
	st, err := store.LoadSnapshot(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("remote: warming from %s: %w", c.endpoint, err)
	}
	return st, seq, nil
}

// Health probes the node's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint+HealthPath, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &TransportError{Endpoint: c.endpoint, Err: err}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &TransportError{Endpoint: c.endpoint, Err: fmt.Errorf("healthz status %d", resp.StatusCode)}
	}
	return nil
}
