package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parj/internal/core"
	"parj/internal/governance"
	"parj/internal/live"
	"parj/internal/optimizer"
	"parj/internal/rdf"
	"parj/internal/rdfs"
	"parj/internal/resilience"
	"parj/internal/sparql"
	"parj/internal/stats"
	"parj/internal/store"
)

// maxRequestBytes caps the /exec request body; a shard request is a query
// plus a handful of integers, so anything bigger is hostile.
const maxRequestBytes = 1 << 20

// maxWriteBytes caps the /write request body; write batches carry triple
// term strings, so they get a roomier (but still bounded) limit.
const maxWriteBytes = 64 << 20

// Node serves shard-execution requests over one full replica of the store.
// It is the handler side of cmd/parj-node and of the loopback test
// clusters; construct with NewNode and mount Handler on an HTTP server.
type Node struct {
	// h is the replica's live store: queries pin one epoch view per
	// request, writes land through /write, reconciliation swaps epochs.
	h *live.Handle

	// hier caches the RDFS hierarchy per store epoch: writes can add
	// schema triples, so the closure is recomputed when the epoch moves.
	hierMu  sync.Mutex
	hierVer uint64
	hier    *rdfs.Hierarchy

	// ready gates /exec and /readyz: a node answers queries only after its
	// replica is loaded and before draining starts.
	ready    atomic.Bool
	draining atomic.Bool

	// admit sheds load when too many shard requests execute at once. It is
	// either the fixed-wait Limiter or the adaptive CoDel controller; a
	// typed-nil value admits everything (both are nil-safe).
	admit admitter
	// adaptive is non-nil when the CoDel controller is in use; it is the
	// source of the queue-delay estimate for expired-on-arrival refusal
	// and /statz.
	adaptive *governance.AdaptiveLimiter

	// Cumulative /statz counters. totals is guarded by statMu; the plain
	// counters are atomic so the hot path never takes the lock.
	queries    atomic.Int64
	rejections atomic.Int64
	sheds      atomic.Int64
	expired    atomic.Int64
	failures   atomic.Int64
	statMu     sync.Mutex
	totals     SchedTotals

	// ExecStarted, when non-nil, runs at the start of every /exec request
	// — chaos tests use it to trigger faults mid-query. Never set in
	// production.
	ExecStarted func(req *ExecRequest)
}

// admitter abstracts the two admission controllers (fixed-wait Limiter and
// adaptive CoDel) behind the node's acquire/release path.
type admitter interface {
	Acquire(ctx context.Context) error
	Release()
	InFlight() int
}

// NodeOptions configures a Node.
type NodeOptions struct {
	// MaxConcurrent caps concurrent /exec evaluations (0 = unlimited);
	// excess requests shed with 503 after AdmissionWait.
	MaxConcurrent int
	AdmissionWait time.Duration
	// AdmissionTarget > 0 replaces the fixed-wait queue with the CoDel
	// controller: queue sojourn above this target for a full
	// AdmissionInterval flips the node into shedding mode, where excess
	// arrivals are rejected after only the target instead of the full
	// AdmissionWait. See governance.AdaptiveLimiter.
	AdmissionTarget time.Duration
	// AdmissionInterval is the adaptive controller's window (0 = default).
	AdmissionInterval time.Duration
	// Clock injects time for the adaptive controller (tests drive a
	// FakeClock); nil = wall clock.
	Clock resilience.Clock
	// NotReady starts the node in not-ready state (cmd/parj-node flips it
	// once the replica is loaded); the zero value is ready immediately,
	// which is what in-process tests want.
	NotReady bool
	// AutoReconcileOps arms background reconciliation: once at least this
	// many write verdicts are pending, a goroutine merges them into a fresh
	// base store (0 = reconcile only on explicit /reconcile).
	AutoReconcileOps int
}

// NewNode wraps a loaded replica. ss may be nil (computed from st).
func NewNode(st *store.Store, ss *stats.Stats, opts NodeOptions) *Node {
	return NewNodeHandle(live.New(st, ss, store.InferBuildOptions(st)), opts)
}

// NewNodeHandle wraps an existing live handle — the durable-node path,
// where the handle comes out of WAL recovery (live.OpenDurable) already
// positioned in the write stream.
func NewNodeHandle(h *live.Handle, opts NodeOptions) *Node {
	n := &Node{h: h}
	n.h.SetAutoReconcile(opts.AutoReconcileOps)
	if opts.AdmissionTarget > 0 {
		n.adaptive = governance.NewAdaptiveLimiter(governance.AdmissionOptions{
			MaxConcurrent: opts.MaxConcurrent,
			MaxWait:       opts.AdmissionWait,
			Target:        opts.AdmissionTarget,
			Interval:      opts.AdmissionInterval,
			Clock:         opts.Clock,
		})
		n.admit = n.adaptive
	} else {
		n.admit = governance.NewLimiter(opts.MaxConcurrent, opts.AdmissionWait)
	}
	n.ready.Store(!opts.NotReady)
	return n
}

// SetReady flips the readiness gate (used by cmd/parj-node after load).
func (n *Node) SetReady(ready bool) { n.ready.Store(ready) }

// StartDrain marks the node as draining: /readyz reports not-ready so a
// fronting load balancer stops routing, while in-flight requests finish.
func (n *Node) StartDrain() { n.draining.Store(true) }

// Ready reports whether the node currently accepts queries.
func (n *Node) Ready() bool { return n.ready.Load() && !n.draining.Load() }

// Store exposes the replica's current effective store (coordinator-side
// decode in loopback setups; merges pending writes if any).
func (n *Node) Store() *store.Store { return n.h.View().Store() }

// Live exposes the replica's live store handle (write-path tests and the
// node binary's warm-from seq seeding).
func (n *Node) Live() *live.Handle { return n.h }

func (n *Node) hierarchy(v *live.View) *rdfs.Hierarchy {
	n.hierMu.Lock()
	defer n.hierMu.Unlock()
	if n.hier == nil || n.hierVer != v.Version() {
		n.hier = rdfs.New(v.Store(), "", "", "")
		n.hierVer = v.Version()
	}
	return n.hier
}

// Handler returns the node's HTTP mux: ExecPath, HealthPath, ReadyPath.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(ExecPath, n.handleExec)
	mux.HandleFunc(WritePath, n.handleWrite)
	mux.HandleFunc(ReconcilePath, n.handleReconcile)
	mux.HandleFunc(HealthPath, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"triples":  n.h.View().ApproxTriples(),
			"inflight": n.admit.InFlight(),
			"ready":    n.Ready(),
		})
	})
	mux.HandleFunc(ReadyPath, func(w http.ResponseWriter, r *http.Request) {
		if !n.Ready() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "state": n.state()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "state": "ready"})
	})
	mux.HandleFunc(StatzPath, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, n.Statz())
	})
	mux.HandleFunc(SnapshotPath, n.handleSnapshot)
	return mux
}

// state names the node's lifecycle phase for /readyz bodies.
func (n *Node) state() string {
	switch {
	case n.draining.Load():
		return "draining"
	case !n.ready.Load():
		return "warming"
	default:
		return "ready"
	}
}

// Statz snapshots the cumulative counters.
func (n *Node) Statz() *StatzResponse {
	n.statMu.Lock()
	totals := n.totals
	n.statMu.Unlock()
	astats := n.adaptive.Stats()
	v := n.h.View()
	d := n.h.Durability()
	return &StatzResponse{
		Ready:            n.Ready(),
		Triples:          v.ApproxTriples(),
		InFlight:         n.admit.InFlight(),
		Queries:          n.queries.Load(),
		Rejections:       n.rejections.Load(),
		Sheds:            n.sheds.Load(),
		Expired:          n.expired.Load(),
		QueueDelayMS:     float64(astats.QueueDelay) / float64(time.Millisecond),
		Shedding:         astats.Shedding,
		Failures:         n.failures.Load(),
		WriteSeq:         n.h.Seq(),
		PendingWrites:    v.Pending(),
		Epoch:            v.Version(),
		WALEnabled:       d.Enabled,
		WALDurableSeq:    d.DurableSeq,
		WALFirstSeq:      d.FirstSeq,
		WALCheckpointSeq: d.CheckpointSeq,
		WALSegments:      d.Segments,
		Sched:            totals,
	}
}

// handleSnapshot streams the replica as a CRC-checked snapshot (format v2)
// so a joining peer can warm from this node. Serving is gated on the
// replica being loaded, not on Ready(): a draining node is still a valid
// snapshot source for its successor.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, KindInternal, errors.New("GET required"))
		return
	}
	if !n.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, KindOverload, errors.New("replica not loaded"))
		return
	}
	// Snapshot the effective store of one pinned view: pending writes are
	// merged in, and the header tells the warming peer which write batches
	// the stream already contains so it can resume the stream right there.
	v := n.h.View()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(WriteSeqHeader, strconv.FormatUint(v.Seq(), 10))
	// A write error here means the peer went away mid-stream; the trailing
	// CRC it never received makes the truncation unambiguous on its side.
	v.Store().Save(w)
}

// handleWrite applies one sequenced write batch to the live store. Writes
// are gated on the replica being loaded, not on Ready(): a draining node
// still in a replica group must keep applying the stream or it would need a
// full resync to ever come back.
func (n *Node) handleWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, KindInternal, errors.New("POST required"))
		return
	}
	if !n.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, KindOverload, errors.New("replica not loaded"))
		return
	}
	var req WriteRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxWriteBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, KindParse, fmt.Errorf("decoding write: %w", err))
		return
	}
	seq, err := n.h.Apply(req.Seq, toRDFTriples(req.Inserts), toRDFTriples(req.Deletes))
	if err != nil {
		if errors.Is(err, live.ErrSeqGap) {
			writeError(w, http.StatusConflict, KindSeqGap, err)
			return
		}
		writeError(w, http.StatusInternalServerError, KindInternal, err)
		return
	}
	v := n.h.View()
	writeJSON(w, http.StatusOK, WriteResponse{Seq: seq, Pending: v.Pending(), Epoch: v.Version()})
}

// handleReconcile merges the pending delta into a fresh base store and
// swaps the epoch, synchronously.
func (n *Node) handleReconcile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, KindInternal, errors.New("POST required"))
		return
	}
	if !n.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, KindOverload, errors.New("replica not loaded"))
		return
	}
	v := n.h.Reconcile()
	writeJSON(w, http.StatusOK, WriteResponse{Seq: v.Seq(), Pending: v.Pending(), Epoch: v.Version()})
}

func toRDFTriples(ts []Triple) []rdf.Triple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]rdf.Triple, len(ts))
	for i, t := range ts {
		out[i] = rdf.Triple{S: t.S, P: t.P, O: t.O}
	}
	return out
}

func (n *Node) handleExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, KindInternal, errors.New("POST required"))
		return
	}
	if !n.Ready() {
		writeError(w, http.StatusServiceUnavailable, KindOverload, errors.New("node not ready"))
		return
	}
	var req ExecRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, KindParse, fmt.Errorf("decoding request: %w", err))
		return
	}
	if hook := n.ExecStarted; hook != nil {
		hook(&req)
	}

	ctx := r.Context()
	// Effective node-side deadline: the smaller of the explicit per-shard
	// timeout and the propagated remaining client budget.
	var budget time.Duration
	if req.TimeoutMS > 0 {
		budget = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if req.DeadlineBudgetMS > 0 {
		b := time.Duration(req.DeadlineBudgetMS) * time.Millisecond
		if budget == 0 || b < budget {
			budget = b
		}
	}
	// Expired-on-arrival refusal: a propagated budget already at or below
	// the admission queue-delay estimate cannot finish here — refuse it
	// before it takes a slot, so the coordinator's attempt fails fast as a
	// deadline (non-retryable) instead of timing out in the queue. Only
	// while saturated: with a free slot the estimate is stale and refusing
	// on it could latch every small-budget client out of an idle node.
	if req.DeadlineBudgetMS > 0 && n.adaptive.Saturated() {
		if est := n.adaptive.QueueDelayEstimate(); est > 0 && budget <= est {
			n.rejections.Add(1)
			n.expired.Add(1)
			writeError(w, http.StatusGatewayTimeout, KindDeadline, fmt.Errorf(
				"%w: deadline budget %v at or below queue-delay estimate %v on arrival",
				governance.ErrDeadlineExceeded, budget, est))
			return
		}
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	if err := n.admit.Acquire(ctx); err != nil {
		n.rejections.Add(1)
		switch {
		case errors.Is(err, governance.ErrOverloaded):
			n.sheds.Add(1)
		case errors.Is(err, governance.ErrDeadlineExceeded), errors.Is(err, governance.ErrCanceled):
			n.expired.Add(1)
		}
		status, kind := statusKind(err)
		writeError(w, status, kind, err)
		return
	}
	defer n.admit.Release()

	n.queries.Add(1)
	resp, err := n.exec(ctx, &req)
	if err != nil {
		n.failures.Add(1)
		status, kind := statusKind(err)
		writeError(w, status, kind, err)
		return
	}
	n.statMu.Lock()
	n.totals.Add(resp.Sched)
	n.statMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// exec evaluates one shard range. Exported logic is kept off the HTTP
// types so loopback tests can call it directly.
func (n *Node) exec(ctx context.Context, req *ExecRequest) (*ExecResponse, error) {
	q, err := sparql.Parse(req.Query)
	if err != nil {
		return nil, &parseError{err}
	}
	// Pin one epoch view for plan and execution: constants, plan and
	// statistics must agree even while writes land concurrently.
	v := n.h.View()
	st := v.Store()
	var x optimizer.Expander
	if req.Entailment {
		x = n.hierarchy(v)
	}
	plan, err := optimizer.OptimizeExpanded(q, st, v.Stats(), x)
	if err != nil {
		return nil, &planError{err}
	}
	if req.TotalShards <= 0 || req.ShardFrom < 0 || req.ShardTo < req.ShardFrom {
		return nil, &planError{fmt.Errorf("invalid shard range [%d, %d) of %d", req.ShardFrom, req.ShardTo, req.TotalShards)}
	}
	strategy := core.Strategy(req.Strategy)
	res, err := core.ExecuteShardRange(st, plan, core.Options{
		Threads:       req.TotalShards,
		Strategy:      strategy,
		Silent:        req.Silent,
		Context:       ctx,
		MaxResultRows: req.MaxResultRows,
		MemoryBudget:  req.MemoryBudget,
		CheckInterval: governance.IntervalForEstimate(plan.EstResultRows()),
	}, req.ShardFrom, req.ShardTo)
	if err != nil {
		return nil, err
	}
	out := &ExecResponse{Count: res.Count, Vars: res.Vars, Stats: res.Stats, Sched: res.Sched}
	if !req.Silent {
		out.Rows = res.Rows
		// DISTINCT materializes rows even under Silent inside core, but
		// core only hands them out when !Silent — which is why the
		// coordinator requests non-silent execution for DISTINCT plans.
	}
	return out, nil
}

// parseError / planError tag deterministic 400-class failures.
type parseError struct{ err error }

func (e *parseError) Error() string { return e.err.Error() }
func (e *parseError) Unwrap() error { return e.err }

type planError struct{ err error }

func (e *planError) Error() string { return e.err.Error() }
func (e *planError) Unwrap() error { return e.err }

// statusKind maps a node-side error onto (HTTP status, wire kind).
func statusKind(err error) (int, string) {
	var pe *parseError
	var le *planError
	var panicErr *governance.PanicError
	switch {
	case errors.As(err, &pe):
		return http.StatusBadRequest, KindParse
	case errors.As(err, &le):
		return http.StatusBadRequest, KindPlan
	case errors.Is(err, governance.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, KindDeadline
	case errors.Is(err, governance.ErrCanceled):
		return http.StatusGatewayTimeout, KindCanceled
	case errors.Is(err, governance.ErrBudgetExceeded):
		return http.StatusRequestEntityTooLarge, KindBudget
	case errors.Is(err, governance.ErrOverloaded):
		return http.StatusServiceUnavailable, KindOverload
	case errors.As(err, &panicErr):
		return http.StatusInternalServerError, KindPanic
	default:
		return http.StatusInternalServerError, KindInternal
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind string, err error) {
	if status == http.StatusServiceUnavailable {
		// Retry-After carries the shed hint from the admission controller
		// (whole seconds, rounded up; minimum 1s for plain overloads).
		secs := int((governance.RetryAfterHint(err, time.Second) + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, ErrorResponse{Kind: kind, Error: err.Error()})
}
