// Package remote implements the stdlib-only HTTP protocol between the
// cluster coordinator and shard nodes. Every node holds a full replica of
// the store (the paper's §6 full-replication cluster model); a request
// names a contiguous range of the deterministic global sharding and the
// node evaluates exactly those shards with its local workers. Because
// sharding is a pure function of (store, plan, total shard count), any
// replica loaded from the same snapshot produces byte-identical shard
// results — which is what makes retries, hedging and replica failover safe.
//
// Wire format: JSON over HTTP. POST /exec evaluates a shard range;
// GET /healthz is liveness; GET /readyz is readiness (load completed and
// not draining). Rows travel dictionary-encoded (uint32 IDs): replicas
// loaded from identical input build identical dictionaries, and the
// coordinator decodes against its own replica.
package remote

import (
	"fmt"
	"time"

	"parj/internal/core"
	"parj/internal/governance"
	"parj/internal/search"
)

// ExecPath is the shard-execution endpoint.
const ExecPath = "/exec"

// HealthPath is the liveness endpoint.
const HealthPath = "/healthz"

// ReadyPath is the readiness endpoint.
const ReadyPath = "/readyz"

// StatzPath is the cumulative statistics endpoint: per-node query counts,
// admission rejections, in-flight requests and summed scheduler activity —
// the wire source a coordinator-side heat tracker polls.
const StatzPath = "/statz"

// SnapshotPath streams the node's replica as a CRC-checked snapshot
// (store format v2). A joining replica warms from a peer by loading this
// stream; the trailing checksum means a connection cut mid-stream is
// detected at load, never served. The response carries WriteSeqHeader so a
// warming replica knows which write batches the snapshot already contains.
const SnapshotPath = "/snapshot"

// WritePath applies one sequenced write batch (inserts and deletes) to the
// node's live store. Batches must arrive in sequence order: a replay is
// idempotent, a gap is refused with KindSeqGap so the coordinator knows the
// replica must resync before it can serve again.
const WritePath = "/write"

// ReconcilePath forces a synchronous reconciliation: the node merges its
// pending delta into a fresh base store and swaps the epoch.
const ReconcilePath = "/reconcile"

// WriteSeqHeader carries the last applied write-batch sequence number on
// snapshot responses, so a replica warmed from the stream can resume the
// write stream exactly where the snapshot left off.
const WriteSeqHeader = "X-Parj-Write-Seq"

// Triple is one term-string triple on the wire. Writes travel as raw terms
// (not dictionary IDs): every replica encodes them against its own
// dictionaries, and because batches apply in identical sequence order with
// deletes before inserts, all replicas assign identical IDs.
type Triple struct {
	S string `json:"s"`
	P string `json:"p"`
	O string `json:"o"`
}

// WriteRequest applies one write batch. Deletes are applied before inserts
// on every replica (the order that keeps dictionary growth deterministic:
// deletes never touch the dictionaries, inserts grow them identically).
type WriteRequest struct {
	// Seq sequences the batch in the coordinator's write stream; 0 means
	// "next" (the direct single-node path).
	Seq     uint64   `json:"seq,omitempty"`
	Inserts []Triple `json:"inserts,omitempty"`
	Deletes []Triple `json:"deletes,omitempty"`
}

// WriteResponse reports the node's write-stream position after an applied
// batch or a reconciliation.
type WriteResponse struct {
	// Seq is the node's last applied write-batch sequence number.
	Seq uint64 `json:"seq"`
	// Pending counts write verdicts not yet reconciled into the base.
	Pending int `json:"pending"`
	// Epoch is the node's store-view version after the operation.
	Epoch uint64 `json:"epoch"`
}

// ExecRequest asks a node to evaluate a shard range of a query.
type ExecRequest struct {
	// Query is the SPARQL source text; the node parses and optimizes it
	// against its replica. Plans are deterministic given identical
	// replicas, so coordinator and node agree on the sharding.
	Query string `json:"query"`
	// Entailment selects RDFS-aware planning.
	Entailment bool `json:"entailment,omitempty"`
	// Strategy is the probe strategy (core.Strategy numeric value).
	Strategy int `json:"strategy"`
	// TotalShards is the global shard count the plan is split into
	// (coordinator shards × threads per shard).
	TotalShards int `json:"total_shards"`
	// ShardFrom/ShardTo select the node's contiguous range [from, to).
	ShardFrom int `json:"shard_from"`
	ShardTo   int `json:"shard_to"`
	// Silent counts rows without returning them.
	Silent bool `json:"silent,omitempty"`
	// TimeoutMS bounds the node-side evaluation wall clock (0 = none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// DeadlineBudgetMS is the client's remaining deadline budget as
	// measured by the coordinator when it launched this attempt (0 = no
	// client deadline). Deadline propagation: the node clamps its own
	// deadline to this budget and refuses work on arrival when the budget
	// is already smaller than its admission queue-delay estimate — a
	// request that would expire in the queue must not burn a slot, and the
	// coordinator must not burn replica attempts on dead requests.
	DeadlineBudgetMS int64 `json:"deadline_budget_ms,omitempty"`
	// MaxResultRows/MemoryBudget forward the coordinator's per-query
	// governance budgets to the node (0 = unlimited).
	MaxResultRows int64 `json:"max_result_rows,omitempty"`
	MemoryBudget  int64 `json:"memory_budget,omitempty"`
}

// ExecResponse carries one shard range's results back.
type ExecResponse struct {
	// Count is the number of result rows the range produced (after the
	// node-local DISTINCT/LIMIT compaction core applies).
	Count int64 `json:"count"`
	// Vars names the projected columns.
	Vars []string `json:"vars"`
	// Rows holds dictionary-encoded projected rows (nil in silent mode).
	Rows [][]uint32 `json:"rows,omitempty"`
	// Stats aggregates probe-strategy statistics across the range.
	Stats search.Stats `json:"stats"`
	// Sched reports the node's per-worker scheduler activity for this
	// range (morsel pulls, steals, claimed tuples, busy time). The
	// coordinator's heat tracker aggregates it into per-shard-group load.
	Sched core.SchedStats `json:"sched"`
}

// SchedTotals is the cumulative, cross-query sum of scheduler activity a
// node has performed — the /statz aggregate of every ExecResponse.Sched.
type SchedTotals struct {
	Morsels int64 `json:"morsels"`
	Steals  int64 `json:"steals"`
	Claims  int64 `json:"claims"`
	Tuples  int64 `json:"tuples"`
	Rows    int64 `json:"rows"`
	BusyNS  int64 `json:"busy_ns"`
}

// Add folds one query's scheduler stats into the totals.
func (t *SchedTotals) Add(s core.SchedStats) {
	for i := range s.Workers {
		w := &s.Workers[i]
		t.Morsels += w.Morsels
		t.Steals += w.Steals
		t.Claims += w.Claims
		t.Tuples += w.Tuples
		t.Rows += w.Rows
		t.BusyNS += int64(w.Busy)
	}
}

// StatzResponse is the /statz JSON body.
type StatzResponse struct {
	// Ready mirrors /readyz (loaded and not draining).
	Ready bool `json:"ready"`
	// Triples is the replica size.
	Triples int `json:"triples"`
	// InFlight is the number of /exec requests currently executing.
	InFlight int `json:"in_flight"`
	// Queries counts /exec requests admitted since start.
	Queries int64 `json:"queries"`
	// Rejections counts /exec requests shed by admission control.
	Rejections int64 `json:"rejections"`
	// Sheds counts /exec requests rejected with overload (a subset of
	// Rejections; the rest are deadline/cancel refusals).
	Sheds int64 `json:"sheds"`
	// Expired counts /exec requests refused because their propagated
	// deadline budget was already spent (or below the queue-delay
	// estimate) on arrival, or expired while queued for admission.
	Expired int64 `json:"expired"`
	// QueueDelayMS is the admission controller's current sojourn-time
	// estimate in milliseconds (0 when the fixed-wait limiter is in use).
	// This is the load signal the coordinator's routing layer reads.
	QueueDelayMS float64 `json:"queue_delay_ms"`
	// Shedding reports whether the adaptive admission controller is
	// currently in shed mode.
	Shedding bool `json:"shedding,omitempty"`
	// Failures counts admitted /exec requests that returned an error.
	Failures int64 `json:"failures"`
	// WriteSeq is the last applied write-batch sequence number — the field a
	// coordinator compares against its own stream position to decide whether
	// a rejoining replica can be caught up by log replay.
	WriteSeq uint64 `json:"write_seq"`
	// PendingWrites counts write verdicts awaiting reconciliation.
	PendingWrites int `json:"pending_writes"`
	// Epoch is the store-view version (advances per write batch and per
	// reconciliation).
	Epoch uint64 `json:"epoch"`
	// WALEnabled reports whether the replica journals writes to a local
	// write-ahead log (cmd/parj-node -wal). When false the remaining WAL
	// fields are zero.
	WALEnabled bool `json:"wal_enabled,omitempty"`
	// WALDurableSeq is the last write batch an fsync covers — the
	// replica's crash-survival floor.
	WALDurableSeq uint64 `json:"wal_durable_seq,omitempty"`
	// WALFirstSeq is the oldest record still replayable from the log.
	WALFirstSeq uint64 `json:"wal_first_seq,omitempty"`
	// WALCheckpointSeq is the newest checkpoint's stream position.
	WALCheckpointSeq uint64 `json:"wal_checkpoint_seq,omitempty"`
	// WALSegments counts live log segment files.
	WALSegments int `json:"wal_segments,omitempty"`
	// Sched sums scheduler activity across all served queries.
	Sched SchedTotals `json:"sched"`
}

// Error kinds: the wire form of the governance error taxonomy. The node
// maps engine errors to kinds; the client maps kinds back to the typed
// sentinels so errors.Is keeps working across the network.
const (
	KindParse    = "parse"    // unparsable query (HTTP 400)
	KindPlan     = "plan"     // optimizer rejection (HTTP 400)
	KindCanceled = "canceled" // request context canceled (HTTP 504)
	KindDeadline = "deadline" // node-side deadline expired (HTTP 504)
	KindBudget   = "budget"   // row/memory budget exceeded (HTTP 413)
	KindOverload = "overload" // node shedding load or not ready (HTTP 503)
	KindPanic    = "panic"    // contained worker panic (HTTP 500)
	KindInternal = "internal" // anything else (HTTP 500)
	KindSeqGap   = "seq_gap"  // write batch skips ahead of the replica (HTTP 409)
)

// ErrorResponse is the JSON error body.
type ErrorResponse struct {
	Kind  string `json:"kind"`
	Error string `json:"error"`
}

// NodeError is a typed node-side failure reconstructed by the client. Its
// Unwrap target is the matching governance sentinel, so callers dispatch
// with errors.Is(err, governance.ErrDeadlineExceeded) etc. exactly as they
// do for local execution.
type NodeError struct {
	Kind string
	Msg  string
	// RetryAfter is the node's suggested backoff before another attempt,
	// parsed from the Retry-After header on 503 responses (0 = none).
	RetryAfter time.Duration
}

func (e *NodeError) Error() string {
	return fmt.Sprintf("remote: node error (%s): %s", e.Kind, e.Msg)
}

// Unwrap maps the kind onto the governance taxonomy.
func (e *NodeError) Unwrap() error {
	switch e.Kind {
	case KindCanceled:
		return governance.ErrCanceled
	case KindDeadline:
		return governance.ErrDeadlineExceeded
	case KindBudget:
		return governance.ErrBudgetExceeded
	case KindOverload:
		return governance.ErrOverloaded
	default:
		return nil
	}
}

// Retryable reports whether the failure may succeed on another replica (or
// on this one later): overload and internal/panic faults are worth
// retrying, while parse/plan/budget outcomes are deterministic and
// deadline/cancel outcomes are bounded by the shard deadline that is
// already lost. Transport-level errors are classified by the client, not
// here.
func (e *NodeError) Retryable() bool {
	switch e.Kind {
	case KindOverload, KindInternal, KindPanic:
		return true
	default:
		return false
	}
}
