package remote

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"parj/internal/governance"
	"parj/internal/rdf"
	"parj/internal/store"
	"parj/internal/testutil"
)

func testStore() *store.Store {
	return store.LoadTriples([]rdf.Triple{
		{S: "<a>", P: "<p>", O: "<b>"},
		{S: "<b>", P: "<p>", O: "<c>"},
		{S: "<c>", P: "<p>", O: "<a>"},
		{S: "<a>", P: "<q>", O: "<c>"},
	}, store.BuildOptions{})
}

func testNode(t *testing.T, opts NodeOptions) (*Node, *Client, func()) {
	t.Helper()
	n := NewNode(testStore(), nil, opts)
	srv := httptest.NewServer(n.Handler())
	return n, NewClient(srv.URL, 5 * time.Second), srv.Close
}

func TestNodeExecRoundTrip(t *testing.T) {
	defer testutil.LeakCheck(t)()
	_, c, stop := testNode(t, NodeOptions{})
	defer stop()
	defer c.Close()

	resp, err := c.Exec(context.Background(), &ExecRequest{
		Query:       `SELECT ?x ?y WHERE { ?x <p> ?y }`,
		TotalShards: 1,
		ShardFrom:   0,
		ShardTo:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != 3 || len(resp.Rows) != 3 {
		t.Fatalf("count %d rows %d, want 3/3", resp.Count, len(resp.Rows))
	}
	if len(resp.Vars) != 2 {
		t.Fatalf("vars %v, want [x y]", resp.Vars)
	}

	// Silent mode counts without shipping rows.
	resp, err = c.Exec(context.Background(), &ExecRequest{
		Query: `SELECT ?x ?y WHERE { ?x <p> ?y }`, TotalShards: 1, ShardTo: 1, Silent: true,
	})
	if err != nil || resp.Count != 3 || resp.Rows != nil {
		t.Fatalf("silent: count %d rows %v err %v", resp.Count, resp.Rows, err)
	}
}

func TestNodeShardRangeSplit(t *testing.T) {
	defer testutil.LeakCheck(t)()
	_, c, stop := testNode(t, NodeOptions{})
	defer stop()
	defer c.Close()

	// The two halves of a 2-shard split must sum to the full count.
	var total int64
	for s := 0; s < 2; s++ {
		resp, err := c.Exec(context.Background(), &ExecRequest{
			Query: `SELECT ?x ?y WHERE { ?x <p> ?y }`, TotalShards: 2, ShardFrom: s, ShardTo: s + 1, Silent: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		total += resp.Count
	}
	if total != 3 {
		t.Fatalf("shard halves sum to %d, want 3", total)
	}
}

func TestNodeErrorTaxonomy(t *testing.T) {
	defer testutil.LeakCheck(t)()
	_, c, stop := testNode(t, NodeOptions{})
	defer stop()
	defer c.Close()

	cases := []struct {
		name      string
		req       ExecRequest
		kind      string
		retryable bool
	}{
		{"parse", ExecRequest{Query: `SELECT WHERE`, TotalShards: 1, ShardTo: 1}, KindParse, false},
		{"bad-range", ExecRequest{Query: `SELECT ?x WHERE { ?x <p> ?y }`, TotalShards: 0}, KindPlan, false},
	}
	for _, tc := range cases {
		_, err := c.Exec(context.Background(), &tc.req)
		var ne *NodeError
		if !errors.As(err, &ne) || ne.Kind != tc.kind {
			t.Fatalf("%s: got %v, want kind %s", tc.name, err, tc.kind)
		}
		if Retryable(err) != tc.retryable {
			t.Errorf("%s: Retryable = %v, want %v", tc.name, Retryable(err), tc.retryable)
		}
	}

	// Budget errors carry the governance sentinel across the wire.
	_, err := c.Exec(context.Background(), &ExecRequest{
		Query: `SELECT ?x ?y WHERE { ?x <p> ?y }`, TotalShards: 1, ShardTo: 1, MaxResultRows: 1,
	})
	if !errors.Is(err, governance.ErrBudgetExceeded) {
		t.Fatalf("budget: got %v, want ErrBudgetExceeded through errors.Is", err)
	}
	if Retryable(err) || NodeFault(err) {
		t.Error("budget exhaustion must be neither retryable nor a node fault")
	}
}

func TestNodeReadiness(t *testing.T) {
	defer testutil.LeakCheck(t)()
	n, c, stop := testNode(t, NodeOptions{NotReady: true})
	defer stop()
	defer c.Close()

	req := &ExecRequest{Query: `SELECT ?x WHERE { ?x <p> ?y }`, TotalShards: 1, ShardTo: 1, Silent: true}
	_, err := c.Exec(context.Background(), req)
	if !errors.Is(err, governance.ErrOverloaded) {
		t.Fatalf("not-ready node returned %v, want ErrOverloaded", err)
	}
	if !Retryable(err) {
		t.Error("not-ready must be retryable (another replica may serve)")
	}

	readyStatus := func() int {
		resp, err := http.Get(c.Endpoint() + ReadyPath)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := readyStatus(); s != http.StatusServiceUnavailable {
		t.Fatalf("readyz on unloaded node = %d, want 503", s)
	}
	n.SetReady(true)
	if s := readyStatus(); s != http.StatusOK {
		t.Fatalf("readyz after load = %d, want 200", s)
	}
	if _, err := c.Exec(context.Background(), req); err != nil {
		t.Fatalf("exec after ready: %v", err)
	}
	n.StartDrain()
	if s := readyStatus(); s != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", s)
	}
	// Liveness stays OK during drain: the process is healthy, just not
	// accepting new work.
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthz while draining: %v", err)
	}
}

func TestClientMalformedResponse(t *testing.T) {
	defer testutil.LeakCheck(t)()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"count": "not-a-number"`))
	}))
	defer srv.Close()
	c := NewClient(srv.URL, time.Second)
	defer c.Close()
	_, err := c.Exec(context.Background(), &ExecRequest{Query: "x", TotalShards: 1, ShardTo: 1})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("malformed body returned %v, want TransportError", err)
	}
	if !Retryable(err) || !NodeFault(err) {
		t.Error("malformed response must be retryable and count as a node fault")
	}
}

func TestClientConnectionRefused(t *testing.T) {
	defer testutil.LeakCheck(t)()
	c := NewClient("http://127.0.0.1:1", time.Second)
	defer c.Close()
	_, err := c.Exec(context.Background(), &ExecRequest{Query: "x", TotalShards: 1, ShardTo: 1})
	var te *TransportError
	if !errors.As(err, &te) || !Retryable(err) || !NodeFault(err) {
		t.Fatalf("refused dial returned %v; want retryable TransportError node fault", err)
	}
}

// TestNodeStatz: the cumulative counters move with traffic — admitted
// queries, shed queries, failures, and summed scheduler activity.
func TestNodeStatz(t *testing.T) {
	defer testutil.LeakCheck(t)()
	_, c, stop := testNode(t, NodeOptions{})
	defer stop()
	defer c.Close()

	req := &ExecRequest{Query: `SELECT ?x ?y WHERE { ?x <p> ?y }`, TotalShards: 1, ShardTo: 1}
	resp, err := c.Exec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Sched.Workers) == 0 || resp.Sched.TotalRows() != 3 {
		t.Fatalf("ExecResponse.Sched = %+v, want worker stats with 3 produced rows", resp.Sched)
	}
	if _, err := c.Exec(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// One failing query (unparsable) counts as admitted + failed.
	if _, err := c.Exec(context.Background(), &ExecRequest{Query: `SELECT WHERE`, TotalShards: 1, ShardTo: 1}); err == nil {
		t.Fatal("parse failure expected")
	}

	sz, err := c.Statz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sz.Queries != 3 || sz.Failures != 1 || sz.Rejections != 0 {
		t.Fatalf("statz queries/failures/rejections = %d/%d/%d, want 3/1/0", sz.Queries, sz.Failures, sz.Rejections)
	}
	if sz.Sched.Rows != 6 || sz.Sched.Morsels < 2 {
		t.Fatalf("statz sched totals = %+v, want 6 rows over >=2 morsels", sz.Sched)
	}
	if !sz.Ready || sz.Triples != 4 || sz.InFlight != 0 {
		t.Fatalf("statz ready/triples/inflight = %v/%d/%d", sz.Ready, sz.Triples, sz.InFlight)
	}
}

// TestSnapshotWarmup: a fresh replica warms from a peer's snapshot stream
// and then answers queries identically.
func TestSnapshotWarmup(t *testing.T) {
	defer testutil.LeakCheck(t)()
	_, c, stop := testNode(t, NodeOptions{})
	defer stop()
	defer c.Close()

	st, err := c.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTriples() != 4 {
		t.Fatalf("warmed replica has %d triples, want 4", st.NumTriples())
	}
	warmed := NewNode(st, nil, NodeOptions{})
	srv := httptest.NewServer(warmed.Handler())
	defer srv.Close()
	wc := NewClient(srv.URL, time.Second)
	defer wc.Close()
	resp, err := wc.Exec(context.Background(), &ExecRequest{
		Query: `SELECT ?x ?y WHERE { ?x <p> ?y }`, TotalShards: 1, ShardTo: 1, Silent: true,
	})
	if err != nil || resp.Count != 3 {
		t.Fatalf("warmed replica count %v err %v, want 3", resp, err)
	}
}

// TestSnapshotCutMidStream: a snapshot stream severed before the trailing
// CRC must fail the load with ErrCorruptSnapshot, never hand back a store.
func TestSnapshotCutMidStream(t *testing.T) {
	defer testutil.LeakCheck(t)()
	n, c, stop := testNode(t, NodeOptions{})
	defer stop()
	defer c.Close()

	// Measure the full snapshot, then serve a truncated prefix of it.
	var whole bytes.Buffer
	if err := n.Store().Save(&whole); err != nil {
		t.Fatal(err)
	}
	cut := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(whole.Bytes()[:whole.Len()-6]) // drop the CRC and then some
	}))
	defer cut.Close()
	cc := NewClient(cut.URL, time.Second)
	defer cc.Close()
	if _, err := cc.Snapshot(context.Background()); !errors.Is(err, store.ErrCorruptSnapshot) {
		t.Fatalf("cut stream returned %v, want ErrCorruptSnapshot", err)
	}
}

// TestClientReady distinguishes "warming" (ErrNotReady) from transport
// failure.
func TestClientReady(t *testing.T) {
	defer testutil.LeakCheck(t)()
	n, c, stop := testNode(t, NodeOptions{NotReady: true})
	defer stop()
	defer c.Close()

	if err := c.Ready(context.Background()); !errors.Is(err, ErrNotReady) {
		t.Fatalf("warming node: %v, want ErrNotReady", err)
	}
	if _, err := c.Snapshot(context.Background()); !errors.Is(err, ErrNotReady) {
		t.Fatalf("snapshot from warming node: %v, want ErrNotReady", err)
	}
	n.SetReady(true)
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("ready node: %v", err)
	}
	dead := NewClient("http://127.0.0.1:1", time.Second)
	defer dead.Close()
	var te *TransportError
	if err := dead.Ready(context.Background()); !errors.As(err, &te) {
		t.Fatalf("dead node: %v, want TransportError", err)
	}
}
