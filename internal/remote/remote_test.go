package remote

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"parj/internal/governance"
	"parj/internal/rdf"
	"parj/internal/store"
	"parj/internal/testutil"
)

func testStore() *store.Store {
	return store.LoadTriples([]rdf.Triple{
		{S: "<a>", P: "<p>", O: "<b>"},
		{S: "<b>", P: "<p>", O: "<c>"},
		{S: "<c>", P: "<p>", O: "<a>"},
		{S: "<a>", P: "<q>", O: "<c>"},
	}, store.BuildOptions{})
}

func testNode(t *testing.T, opts NodeOptions) (*Node, *Client, func()) {
	t.Helper()
	n := NewNode(testStore(), nil, opts)
	srv := httptest.NewServer(n.Handler())
	return n, NewClient(srv.URL, 5 * time.Second), srv.Close
}

func TestNodeExecRoundTrip(t *testing.T) {
	defer testutil.LeakCheck(t)()
	_, c, stop := testNode(t, NodeOptions{})
	defer stop()
	defer c.Close()

	resp, err := c.Exec(context.Background(), &ExecRequest{
		Query:       `SELECT ?x ?y WHERE { ?x <p> ?y }`,
		TotalShards: 1,
		ShardFrom:   0,
		ShardTo:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != 3 || len(resp.Rows) != 3 {
		t.Fatalf("count %d rows %d, want 3/3", resp.Count, len(resp.Rows))
	}
	if len(resp.Vars) != 2 {
		t.Fatalf("vars %v, want [x y]", resp.Vars)
	}

	// Silent mode counts without shipping rows.
	resp, err = c.Exec(context.Background(), &ExecRequest{
		Query: `SELECT ?x ?y WHERE { ?x <p> ?y }`, TotalShards: 1, ShardTo: 1, Silent: true,
	})
	if err != nil || resp.Count != 3 || resp.Rows != nil {
		t.Fatalf("silent: count %d rows %v err %v", resp.Count, resp.Rows, err)
	}
}

func TestNodeShardRangeSplit(t *testing.T) {
	defer testutil.LeakCheck(t)()
	_, c, stop := testNode(t, NodeOptions{})
	defer stop()
	defer c.Close()

	// The two halves of a 2-shard split must sum to the full count.
	var total int64
	for s := 0; s < 2; s++ {
		resp, err := c.Exec(context.Background(), &ExecRequest{
			Query: `SELECT ?x ?y WHERE { ?x <p> ?y }`, TotalShards: 2, ShardFrom: s, ShardTo: s + 1, Silent: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		total += resp.Count
	}
	if total != 3 {
		t.Fatalf("shard halves sum to %d, want 3", total)
	}
}

func TestNodeErrorTaxonomy(t *testing.T) {
	defer testutil.LeakCheck(t)()
	_, c, stop := testNode(t, NodeOptions{})
	defer stop()
	defer c.Close()

	cases := []struct {
		name      string
		req       ExecRequest
		kind      string
		retryable bool
	}{
		{"parse", ExecRequest{Query: `SELECT WHERE`, TotalShards: 1, ShardTo: 1}, KindParse, false},
		{"bad-range", ExecRequest{Query: `SELECT ?x WHERE { ?x <p> ?y }`, TotalShards: 0}, KindPlan, false},
	}
	for _, tc := range cases {
		_, err := c.Exec(context.Background(), &tc.req)
		var ne *NodeError
		if !errors.As(err, &ne) || ne.Kind != tc.kind {
			t.Fatalf("%s: got %v, want kind %s", tc.name, err, tc.kind)
		}
		if Retryable(err) != tc.retryable {
			t.Errorf("%s: Retryable = %v, want %v", tc.name, Retryable(err), tc.retryable)
		}
	}

	// Budget errors carry the governance sentinel across the wire.
	_, err := c.Exec(context.Background(), &ExecRequest{
		Query: `SELECT ?x ?y WHERE { ?x <p> ?y }`, TotalShards: 1, ShardTo: 1, MaxResultRows: 1,
	})
	if !errors.Is(err, governance.ErrBudgetExceeded) {
		t.Fatalf("budget: got %v, want ErrBudgetExceeded through errors.Is", err)
	}
	if Retryable(err) || NodeFault(err) {
		t.Error("budget exhaustion must be neither retryable nor a node fault")
	}
}

func TestNodeReadiness(t *testing.T) {
	defer testutil.LeakCheck(t)()
	n, c, stop := testNode(t, NodeOptions{NotReady: true})
	defer stop()
	defer c.Close()

	req := &ExecRequest{Query: `SELECT ?x WHERE { ?x <p> ?y }`, TotalShards: 1, ShardTo: 1, Silent: true}
	_, err := c.Exec(context.Background(), req)
	if !errors.Is(err, governance.ErrOverloaded) {
		t.Fatalf("not-ready node returned %v, want ErrOverloaded", err)
	}
	if !Retryable(err) {
		t.Error("not-ready must be retryable (another replica may serve)")
	}

	readyStatus := func() int {
		resp, err := http.Get(c.Endpoint() + ReadyPath)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := readyStatus(); s != http.StatusServiceUnavailable {
		t.Fatalf("readyz on unloaded node = %d, want 503", s)
	}
	n.SetReady(true)
	if s := readyStatus(); s != http.StatusOK {
		t.Fatalf("readyz after load = %d, want 200", s)
	}
	if _, err := c.Exec(context.Background(), req); err != nil {
		t.Fatalf("exec after ready: %v", err)
	}
	n.StartDrain()
	if s := readyStatus(); s != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", s)
	}
	// Liveness stays OK during drain: the process is healthy, just not
	// accepting new work.
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthz while draining: %v", err)
	}
}

func TestClientMalformedResponse(t *testing.T) {
	defer testutil.LeakCheck(t)()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"count": "not-a-number"`))
	}))
	defer srv.Close()
	c := NewClient(srv.URL, time.Second)
	defer c.Close()
	_, err := c.Exec(context.Background(), &ExecRequest{Query: "x", TotalShards: 1, ShardTo: 1})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("malformed body returned %v, want TransportError", err)
	}
	if !Retryable(err) || !NodeFault(err) {
		t.Error("malformed response must be retryable and count as a node fault")
	}
}

func TestClientConnectionRefused(t *testing.T) {
	defer testutil.LeakCheck(t)()
	c := NewClient("http://127.0.0.1:1", time.Second)
	defer c.Close()
	_, err := c.Exec(context.Background(), &ExecRequest{Query: "x", TotalShards: 1, ShardTo: 1})
	var te *TransportError
	if !errors.As(err, &te) || !Retryable(err) || !NodeFault(err) {
		t.Fatalf("refused dial returned %v; want retryable TransportError node fault", err)
	}
}
