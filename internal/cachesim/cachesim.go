// Package cachesim provides a set-associative LRU cache hierarchy simulator.
//
// The paper's Table 6 compares binary search against the ID-to-Position
// index using hardware cycle and cache-miss counters (L1/L2/L3). Go exposes
// no stable access to performance counters, so this reproduction drives the
// same search code through a software cache model instead: every memory
// access of the instrumented search routines is replayed through a
// configurable L1/L2/L3 hierarchy, yielding cycle estimates and per-level
// miss counts whose *relative* comparison matches what the hardware
// counters show (the index touches one line per probe; binary search
// touches O(log n) scattered lines).
package cachesim

import "fmt"

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string
	SizeBytes int // total capacity
	Ways      int // associativity
	LineSize  int // bytes per line
	HitCycles int // latency charged on a hit at this level
}

// Config describes a full hierarchy.
type Config struct {
	Levels       []LevelConfig
	MemoryCycles int // latency charged when all levels miss
}

// DefaultConfig models a commodity server core, loosely based on the
// Intel E5 generation used in the paper: 32 KiB 8-way L1, 256 KiB 8-way L2,
// 8 MiB 16-way shared L3, 64-byte lines.
func DefaultConfig() Config {
	return Config{
		Levels: []LevelConfig{
			{Name: "L1", SizeBytes: 32 << 10, Ways: 8, LineSize: 64, HitCycles: 4},
			{Name: "L2", SizeBytes: 256 << 10, Ways: 8, LineSize: 64, HitCycles: 12},
			{Name: "L3", SizeBytes: 8 << 20, Ways: 16, LineSize: 64, HitCycles: 40},
		},
		MemoryCycles: 200,
	}
}

type level struct {
	cfg      LevelConfig
	sets     int
	lineBits uint
	// tags[set*ways ... set*ways+ways-1] hold resident line tags in
	// recency order, most recent first; 0 means empty (tag values are
	// offset by 1 to keep 0 free).
	tags   []uint64
	hits   uint64
	misses uint64
}

func newLevel(cfg LevelConfig) *level {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.LineSize <= 0 {
		panic(fmt.Sprintf("cachesim: invalid level config %+v", cfg))
	}
	lines := cfg.SizeBytes / cfg.LineSize
	sets := lines / cfg.Ways
	if sets == 0 {
		sets = 1
	}
	lb := uint(0)
	for 1<<lb < cfg.LineSize {
		lb++
	}
	return &level{cfg: cfg, sets: sets, lineBits: lb, tags: make([]uint64, sets*cfg.Ways)}
}

// access looks up the line containing addr; returns true on hit. On miss
// the line is installed (LRU eviction).
func (l *level) access(addr uint64) bool {
	line := addr >> l.lineBits
	tag := line + 1
	set := int(line % uint64(l.sets))
	base := set * l.cfg.Ways
	ways := l.tags[base : base+l.cfg.Ways]
	for i, t := range ways {
		if t == tag {
			// Promote to MRU.
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			l.hits++
			return true
		}
	}
	l.misses++
	copy(ways[1:], ways[:len(ways)-1])
	ways[0] = tag
	return false
}

// Hierarchy simulates an inclusive multi-level cache. It implements the
// Tracer interfaces of packages search and posindex. Not safe for
// concurrent use; Table 6 runs single-threaded, as in the paper.
type Hierarchy struct {
	levels    []*level
	memCycles int
	cycles    uint64
	accesses  uint64
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	if len(cfg.Levels) == 0 {
		panic("cachesim: hierarchy needs at least one level")
	}
	h := &Hierarchy{memCycles: cfg.MemoryCycles}
	for _, lc := range cfg.Levels {
		h.levels = append(h.levels, newLevel(lc))
	}
	return h
}

// Access replays one memory access at addr through the hierarchy, charging
// the latency of the first level that hits (or memory), and installing the
// line in every missed level (inclusive fill).
func (h *Hierarchy) Access(addr uint64) {
	h.accesses++
	for i, l := range h.levels {
		if l.access(addr) {
			h.cycles += uint64(l.cfg.HitCycles)
			// Inclusive fill of the levels above already happened in the
			// loop (they missed and installed the line).
			_ = i
			return
		}
	}
	h.cycles += uint64(h.memCycles)
}

// Cycles returns the accumulated simulated cycle count.
func (h *Hierarchy) Cycles() uint64 { return h.cycles }

// Accesses returns the number of accesses replayed.
func (h *Hierarchy) Accesses() uint64 { return h.accesses }

// Misses returns the miss count of the i-th level (0 = L1).
func (h *Hierarchy) Misses(i int) uint64 { return h.levels[i].misses }

// Hits returns the hit count of the i-th level.
func (h *Hierarchy) Hits(i int) uint64 { return h.levels[i].hits }

// Levels returns the number of configured levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// LevelName returns the configured name of the i-th level.
func (h *Hierarchy) LevelName(i int) string { return h.levels[i].cfg.Name }

// Reset clears counters but keeps cache contents, mirroring how hardware
// counters are reset between measured regions while caches stay warm.
func (h *Hierarchy) Reset() {
	h.cycles = 0
	h.accesses = 0
	for _, l := range h.levels {
		l.hits = 0
		l.misses = 0
	}
}

// Flush empties all cache contents and counters.
func (h *Hierarchy) Flush() {
	h.Reset()
	for _, l := range h.levels {
		for i := range l.tags {
			l.tags[i] = 0
		}
	}
}
